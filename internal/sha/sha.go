// Package sha drives early-stopping hyperparameter tuning with Successive
// Halving (§II-A, Fig. 2): a population of trials with sampled
// hyperparameters trains for a few epochs per stage; after each stage the
// bottom-performing half is terminated, until the best configuration
// remains. Each stage runs all surviving trials concurrently under the
// stage's allocation from a partitioning plan, in admission waves when the
// platform concurrency cap binds; the simulated trainer supplies per-trial
// wall time and cost.
package sha

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/planner"
	"repro/internal/sim"
	"repro/internal/trainer"
	"repro/internal/workload"
)

// Trial is one hyperparameter configuration under evaluation.
type Trial struct {
	ID     int
	HP     workload.Hyperparams
	Engine workload.Engine
	Loss   float64
	Alive  bool
	Epochs int
}

// Config describes one tuning run.
type Config struct {
	Workload       *workload.Model
	Trials         int // initial population
	Eta            int // reduction factor (default 2)
	EpochsPerStage int // r_i (default 2)
	// Plan assigns an allocation to every stage; its length must match
	// the SHA stage structure.
	Plan planner.Plan
	// Runner supplies the simulated substrate.
	Runner *trainer.Runner
	// Seed controls hyperparameter sampling and trial stochasticity.
	Seed uint64
	// RealEngines trains LR/SVM trials numerically (slower); by default all
	// trials use the parametric curve engines.
	RealEngines bool
	// ConcurrencyCap, when positive, limits each stage's concurrent
	// functions below the platform cap (the cluster-based Fixed baseline
	// gives every stage an equal 1/d share).
	ConcurrencyCap int
	// Stages, when non-nil, overrides the SHA structure derived from
	// Trials/Eta/EpochsPerStage — used by Hyperband brackets, whose
	// per-stage epoch budgets grow geometrically instead of staying fixed.
	// Stages[0].Trials must equal Trials.
	Stages []planner.Stage
	// Sample, when non-nil, replaces the uniform hyperparameter draw
	// (model-based tuners like BOHB plug in here).
	Sample func(rng *sim.Rand) workload.Hyperparams
	// OnResult, when non-nil, observes every trial after each stage it ran
	// (the feedback channel a model-based sampler learns from).
	OnResult func(*Trial)
}

// StageReport summarizes one executed stage.
type StageReport struct {
	Stage    int
	Trials   int
	Waves    int
	WallTime float64
	Cost     float64
	BestLoss float64
}

// Result summarizes a tuning run.
type Result struct {
	BestTrial *Trial
	JCT       float64
	TotalCost float64
	CommTime  float64 // summed synchronization wall time (per stage maxima)
	Stages    []StageReport
}

// SampleHyperparams draws trial hyperparameters: a log-uniform learning
// rate two decades around the workload's optimum and a uniform momentum.
func SampleHyperparams(w *workload.Model, rng *sim.Rand) workload.Hyperparams {
	exp := (rng.Float64()*2 - 1) * 2 // +/- 2 decades
	return workload.Hyperparams{
		LR:       w.LROpt * math.Pow(10, exp),
		Momentum: rng.Float64() * 0.99,
	}
}

// Run executes the tuning workflow under cfg.Plan.
func Run(cfg Config) (*Result, error) {
	if cfg.Workload == nil || cfg.Runner == nil {
		return nil, fmt.Errorf("sha: nil workload or runner")
	}
	if cfg.Eta < 2 {
		cfg.Eta = 2
	}
	if cfg.EpochsPerStage <= 0 {
		cfg.EpochsPerStage = 2
	}
	stages := cfg.Stages
	if stages == nil {
		if cfg.Trials < cfg.Eta {
			return nil, fmt.Errorf("sha: %d trials cannot be halved", cfg.Trials)
		}
		stages = planner.SHAStages(cfg.Trials, cfg.Eta, cfg.EpochsPerStage)
	} else {
		if len(stages) == 0 || stages[0].Trials != cfg.Trials {
			return nil, fmt.Errorf("sha: explicit stages must start with the trial population (%d)", cfg.Trials)
		}
	}
	if len(cfg.Plan.Stages) != len(stages) {
		return nil, fmt.Errorf("sha: plan has %d stages, structure needs %d", len(cfg.Plan.Stages), len(stages))
	}

	rng := sim.NewRand(cfg.Seed)
	sample := cfg.Sample
	if sample == nil {
		sample = func(rng *sim.Rand) workload.Hyperparams { return SampleHyperparams(cfg.Workload, rng) }
	}
	trials := make([]*Trial, cfg.Trials)
	for i := range trials {
		hp := sample(rng)
		trials[i] = &Trial{ID: i, HP: hp, Alive: true, Loss: math.Inf(1),
			Engine: newEngine(cfg, hp, cfg.Seed+uint64(i)*7919)}
	}

	res := &Result{}
	alive := trials
	capLimit := cfg.Runner.Compute().MaxConcurrency()
	if cfg.ConcurrencyCap > 0 && cfg.ConcurrencyCap < capLimit {
		capLimit = cfg.ConcurrencyCap
	}

	for si, stage := range stages {
		alloc := cfg.Plan.Stages[si]
		perWave := capLimit / alloc.N
		if perWave < 1 {
			perWave = 1
		}
		waves := (len(alive) + perWave - 1) / perWave

		report := StageReport{Stage: si, Trials: len(alive), Waves: waves, BestLoss: math.Inf(1)}
		for wStart := 0; wStart < len(alive); wStart += perWave {
			wEnd := wStart + perWave
			if wEnd > len(alive) {
				wEnd = len(alive)
			}
			waveMax := 0.0
			waveComm := 0.0
			for _, tr := range alive[wStart:wEnd] {
				run, err := cfg.Runner.RunEpochs(cfg.Workload, tr.Engine, alloc, stage.Epochs)
				if err != nil {
					return nil, fmt.Errorf("sha: stage %d trial %d: %w", si, tr.ID, err)
				}
				tr.Loss = run.FinalLoss
				tr.Epochs += run.Epochs
				report.Cost += run.TotalCost
				if run.JCT > waveMax {
					waveMax = run.JCT
				}
				if run.SyncTime > waveComm {
					waveComm = run.SyncTime
				}
				if run.FinalLoss < report.BestLoss {
					report.BestLoss = run.FinalLoss
				}
				if cfg.OnResult != nil {
					cfg.OnResult(tr)
				}
			}
			report.WallTime += waveMax
			res.CommTime += waveComm
		}
		res.JCT += report.WallTime
		res.TotalCost += report.Cost
		res.Stages = append(res.Stages, report)

		// Terminate the bottom performers (Fig. 2): the survivors are the
		// next stage's population.
		sort.Slice(alive, func(i, j int) bool { return alive[i].Loss < alive[j].Loss })
		keep := 1
		if si+1 < len(stages) {
			keep = stages[si+1].Trials
			if keep > len(alive) {
				keep = len(alive)
			}
			if keep < 1 {
				keep = 1
			}
		}
		for _, tr := range alive[keep:] {
			tr.Alive = false
		}
		alive = alive[:keep]
	}
	res.BestTrial = alive[0]
	return res, nil
}

func newEngine(cfg Config, hp workload.Hyperparams, seed uint64) workload.Engine {
	if cfg.RealEngines && cfg.Workload.Real() {
		if eng, err := cfg.Workload.NewRealEngine(hp, 1500, seed); err == nil {
			return eng
		}
	}
	return cfg.Workload.NewCurveEngine(hp, seed)
}
