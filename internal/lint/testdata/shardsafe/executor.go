// executor.go is the fixture's sanctioned concurrency site: the test
// policy lists it shard-exempt, so nothing here may be reported even
// though it uses every construct shardsafe forbids elsewhere.
package shardsafetest

import "sync"

// RunParallel is a miniature window executor: goroutines, a WaitGroup and
// a channel, all legal because this file is shard-exempt.
func RunParallel(fns []func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	for _, fn := range fns {
		wg.Add(1)
		go func(f func()) {
			defer wg.Done()
			f()
		}(fn)
	}
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	}
}
