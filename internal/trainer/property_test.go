package trainer

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/platform"
	"repro/internal/workload"
)

// TestAccountingBalancesAcrossRandomConfigs: for random feasible
// allocations, storages and epoch counts, the time and cost breakdowns
// always reconcile with the totals and the platform meter.
func TestAccountingBalancesAcrossRandomConfigs(t *testing.T) {
	w := workload.MobileNet()
	am := cost.NewModel(w)
	feasible := am.Enumerate(cost.DefaultGrid())
	if err := quick.Check(func(pi uint8, seedRaw uint16, epochsRaw uint8) bool {
		a := feasible[int(pi)%len(feasible)].Alloc
		epochs := int(epochsRaw%8) + 1
		r := NewRunner(uint64(seedRaw) + 1)
		res, err := r.RunEpochs(w, w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, uint64(seedRaw)), a, epochs)
		if err != nil {
			return false
		}
		timeOK := math.Abs(res.ComputeTime+res.SyncTime+res.OverheadTime-res.JCT) < 1e-6*res.JCT
		costOK := math.Abs(res.FunctionCost+res.StorageCost+res.InvokeCost-res.TotalCost) < 1e-9*(1+res.TotalCost)
		meter := r.Compute().Meter()
		meterOK := math.Abs(meter.ComputeCost+meter.InvokeCost-(res.FunctionCost+res.InvokeCost)) < 1e-9
		return timeOK && costOK && meterOK && res.Epochs == epochs && r.Compute().InFlight() == 0
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestJCTGrowsWithEpochs: a longer run never finishes earlier.
func TestJCTGrowsWithEpochs(t *testing.T) {
	w := workload.LRHiggs()
	a := cost.Allocation{N: 10, MemMB: 1769, Storage: platform.S3}
	run := func(epochs int) float64 {
		r := NewRunner(9)
		res, err := r.RunEpochs(w, w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, 9), a, epochs)
		if err != nil {
			t.Fatal(err)
		}
		return res.JCT
	}
	if err := quick.Check(func(aRaw, bRaw uint8) bool {
		lo := int(aRaw%10) + 1
		hi := lo + int(bRaw%10) + 1
		return run(hi) > run(lo)
	}, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestProvisioningPaidOncePerRunner: the second job on the same substrate
// reusing a manually-scaled storage service skips its provisioning delay.
func TestProvisioningPaidOncePerRunner(t *testing.T) {
	w := workload.MobileNet()
	a := cost.Allocation{N: 10, MemMB: 1769, Storage: platform.ElastiCache}
	r := NewRunner(31)
	r.Noise = NoNoise()
	first, err := r.RunEpochs(w, w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, 1), a, 1)
	if err != nil {
		t.Fatal(err)
	}
	second, err := r.RunEpochs(w, w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, 2), a, 1)
	if err != nil {
		t.Fatal(err)
	}
	delay := r.Service(platform.ElastiCache).ProvisionDelay()
	if first.StartupTime < delay {
		t.Errorf("first job startup %g should include the %gs provisioning", first.StartupTime, delay)
	}
	if second.StartupTime >= delay {
		t.Errorf("second job startup %g should have skipped provisioning", second.StartupTime)
	}
}

// TestStorageSwitchPaysProvisioning: an adjustment onto an unprovisioned
// manual service pays its delay exactly once.
func TestStorageSwitchPaysProvisioning(t *testing.T) {
	w := workload.MobileNet()
	r := NewRunner(37)
	r.Noise = NoNoise()
	next := cost.Allocation{N: 10, MemMB: 1769, Storage: platform.ElastiCache}
	cfg := Config{
		Workload:  w,
		Engine:    w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, 3),
		Alloc:     cost.Allocation{N: 10, MemMB: 1769, Storage: platform.S3},
		MaxEpochs: 6,
		Controller: func(epoch int, loss float64, elapsed, spent float64) Decision {
			if epoch == 2 {
				return Decision{NewAlloc: &next}
			}
			return Decision{}
		},
	}
	res, err := r.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	delay := r.Service(platform.ElastiCache).ProvisionDelay()
	adjust := res.OverheadTime - res.StartupTime
	if adjust < delay {
		t.Errorf("adjustment overhead %g should cover ElastiCache provisioning %g", adjust, delay)
	}
}

// TestColdStartOnlyFirstGroup: consecutive same-memory jobs reuse warm
// sandboxes, so the second run's startup is far cheaper.
func TestColdStartOnlyFirstGroup(t *testing.T) {
	w := workload.LRHiggs()
	a := cost.Allocation{N: 10, MemMB: 1769, Storage: platform.S3}
	r := NewRunner(41)
	r.Noise = NoNoise()
	first, _ := r.RunEpochs(w, w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, 1), a, 1)
	second, _ := r.RunEpochs(w, w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, 2), a, 1)
	if second.StartupTime >= first.StartupTime {
		t.Errorf("warm start %g should beat cold start %g", second.StartupTime, first.StartupTime)
	}
}
