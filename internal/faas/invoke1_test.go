package faas

import (
	"errors"
	"testing"

	"repro/internal/pricing"
	"repro/internal/sim"
)

func newTestPlatform(seed uint64) *Platform {
	s := sim.New(seed)
	return New(s, DefaultLimits(), DefaultStartup(), pricing.Default())
}

// TestInvoke1MatchesInvokeGroup pins Invoke1's contract: on twin platforms
// driven identically, Invoke1 produces the same invocation (cold/warm,
// start delay), the same meter and the same admission state as
// InvokeGroup(1, ...), through a warm-reuse cycle.
func TestInvoke1MatchesInvokeGroup(t *testing.T) {
	a, b := newTestPlatform(5), newTestPlatform(5)
	for round := 0; round < 20; round++ {
		memMB := 512 << (round % 3)
		invs, errA := a.InvokeGroup(1, memMB)
		inv, errB := b.Invoke1(memMB)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("round %d: error divergence: group=%v single=%v", round, errA, errB)
		}
		if errA != nil {
			continue
		}
		if invs[0] != inv {
			t.Fatalf("round %d: invocation divergence: group=%+v single=%+v", round, invs[0], inv)
		}
		if round%2 == 1 { // release half so later rounds hit the warm pool
			a.ReleaseGroup(1, memMB, 2.5)
			b.ReleaseGroup(1, memMB, 2.5)
		}
	}
	if a.Meter() != b.Meter() {
		t.Fatalf("meter divergence: group=%+v single=%+v", a.Meter(), b.Meter())
	}
	if a.InFlight() != b.InFlight() || a.WarmTotal() != b.WarmTotal() {
		t.Fatalf("admission state divergence: inflight %d/%d warm %d/%d",
			a.InFlight(), b.InFlight(), a.WarmTotal(), b.WarmTotal())
	}
}

// TestInvoke1DenialIsSentinel: the capacity denial is the plain sentinel
// (errors.Is-able, allocation-free), and denial changes no state.
func TestInvoke1DenialIsSentinel(t *testing.T) {
	s := sim.New(1)
	limits := DefaultLimits()
	limits.MaxConcurrency = 1
	p := New(s, limits, DefaultStartup(), pricing.Default())
	if _, err := p.Invoke1(512); err != nil {
		t.Fatalf("first invoke: %v", err)
	}
	meter := p.Meter()
	_, err := p.Invoke1(512)
	if err != ErrConcurrencyExceeded {
		t.Fatalf("denial error = %v, want the plain ErrConcurrencyExceeded sentinel", err)
	}
	if !errors.Is(err, ErrConcurrencyExceeded) {
		t.Fatal("denial not errors.Is(ErrConcurrencyExceeded)")
	}
	if p.Meter() != meter || p.InFlight() != 1 {
		t.Fatal("denied invocation mutated platform state")
	}
}

// TestInvoke1InvalidMemory mirrors InvokeGroup's validation.
func TestInvoke1InvalidMemory(t *testing.T) {
	p := newTestPlatform(1)
	if _, err := p.Invoke1(64); err == nil {
		t.Fatal("64 MB below MinMemoryMB admitted")
	}
}

// TestInvoke1SteadyStateZeroAlloc: with observability disabled, the
// admit/release cycle (warm reuse, no expiry churn) must not touch the
// heap — this is the per-arrival hot path of the traffic scenarios.
//
// hotpath-gate: faas.Platform.Invoke1
// hotpath-gate: faas.Platform.ReleaseGroup
func TestInvoke1SteadyStateZeroAlloc(t *testing.T) {
	p := newTestPlatform(3)
	p.WarmTTL = 0 // no reclaim events: isolate the admission path itself
	if _, err := p.Invoke1(512); err != nil {
		t.Fatal(err)
	}
	p.ReleaseGroup(1, 512, 1)
	if n := testing.AllocsPerRun(1000, func() {
		inv, err := p.Invoke1(512)
		if err != nil || inv.Cold {
			t.Fatal("warm path not taken")
		}
		p.ReleaseGroup(1, 512, 1)
	}); n != 0 {
		t.Fatalf("warm Invoke1+ReleaseGroup allocates %.1f times per cycle, want 0", n)
	}
}

// TestInvoke1DenialZeroAlloc: the denial storm under a saturated cap is
// also allocation-free.
//
// hotpath-gate: faas.Platform.Invoke1
func TestInvoke1DenialZeroAlloc(t *testing.T) {
	s := sim.New(1)
	limits := DefaultLimits()
	limits.MaxConcurrency = 1
	p := New(s, limits, DefaultStartup(), pricing.Default())
	if _, err := p.Invoke1(512); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(1000, func() {
		if _, err := p.Invoke1(512); err == nil {
			t.Fatal("over-cap invoke admitted")
		}
	}); n != 0 {
		t.Fatalf("Invoke1 denial allocates %.1f times per call, want 0", n)
	}
}
