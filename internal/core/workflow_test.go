package core

import (
	"testing"

	"repro/internal/trainer"
	"repro/internal/workload"
)

func TestWorkflowValidation(t *testing.T) {
	f := New(workload.MobileNet())
	r := trainer.NewRunner(1)
	if _, err := f.RunWorkflow(WorkflowOptions{}, r); err == nil {
		t.Error("no constraint should be rejected")
	}
	if _, err := f.RunWorkflow(WorkflowOptions{Budget: 1, QoS: 1}, r); err == nil {
		t.Error("two constraints should be rejected")
	}
	if _, err := f.RunWorkflow(WorkflowOptions{Budget: 1, TuneShare: 1.5}, r); err == nil {
		t.Error("TuneShare >= 1 should be rejected")
	}
}

func TestWorkflowEndToEndUnderBudget(t *testing.T) {
	f := New(workload.MobileNet())
	// A budget comfortably covering a 32-trial tuning pass plus training.
	out, err := f.RunWorkflow(WorkflowOptions{
		Budget: 500, Trials: 32, Seed: 5,
	}, trainer.NewRunner(5))
	if err != nil {
		t.Fatal(err)
	}
	if out.Tune == nil || out.Train == nil {
		t.Fatal("workflow missing a phase")
	}
	if out.Tune.Run.BestTrial == nil {
		t.Fatal("no tuning winner")
	}
	if out.BestHyperparams != out.Tune.Run.BestTrial.HP {
		t.Error("training phase did not receive the tuning winner's hyperparameters")
	}
	if !out.Train.Result.Converged {
		t.Errorf("training phase did not converge (loss %g)", out.Train.Result.FinalLoss)
	}
	if out.TotalCost > 500 {
		t.Errorf("workflow cost %g blew the overall budget", out.TotalCost)
	}
	if !out.WithinConstraint {
		t.Error("workflow should report the constraint held")
	}
	wantTotal := out.Tune.Run.TotalCost + out.Train.Result.TotalCost
	if out.TotalCost != wantTotal {
		t.Errorf("TotalCost %g != phases sum %g", out.TotalCost, wantTotal)
	}
}

func TestWorkflowUnderDeadline(t *testing.T) {
	f := New(workload.MobileNet())
	// Probe a generous budgeted workflow first to size a realistic deadline.
	probe, err := f.RunWorkflow(WorkflowOptions{Budget: 2000, Trials: 16, Seed: 7}, trainer.NewRunner(7))
	if err != nil {
		t.Fatal(err)
	}
	qos := probe.TotalJCT * 2
	out, err := f.RunWorkflow(WorkflowOptions{QoS: qos, Trials: 16, Seed: 7}, trainer.NewRunner(8))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Train.Result.Converged {
		t.Fatal("deadline workflow did not converge")
	}
	if out.TotalJCT > qos*1.2 {
		t.Errorf("workflow JCT %g blew deadline %g beyond tolerance", out.TotalJCT, qos)
	}
}

func TestWorkflowExhaustedBudgetFails(t *testing.T) {
	f := New(workload.MobileNet())
	// A budget so small the tuning phase alone overruns it.
	if _, err := f.RunWorkflow(WorkflowOptions{Budget: 0.01, Trials: 16, Seed: 9}, trainer.NewRunner(9)); err == nil {
		t.Error("expected an error when tuning consumes the whole budget")
	}
}

func TestTrainWithHyperparamsUsesThem(t *testing.T) {
	f := New(workload.ResNet50())
	good, err := f.TrainWithHyperparams(workload.Hyperparams{LR: f.Workload.LROpt}, Options{Budget: 1e6, Seed: 3}, trainer.NewRunner(3))
	if err != nil {
		t.Fatal(err)
	}
	bad, err := f.TrainWithHyperparams(workload.Hyperparams{LR: f.Workload.LROpt * 500}, Options{Budget: 1e6, Seed: 3}, trainer.NewRunner(4))
	if err != nil {
		t.Fatal(err)
	}
	// A wildly wrong learning rate must need more epochs (or fail).
	if bad.Result.Converged && bad.Result.Epochs <= good.Result.Epochs {
		t.Errorf("bad lr converged in %d epochs <= good lr's %d", bad.Result.Epochs, good.Result.Epochs)
	}
}
