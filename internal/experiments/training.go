package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/predictor"
	"repro/internal/storage"
	"repro/internal/trainer"
	"repro/internal/workload"
)

func init() {
	register("fig12", fig12)
	register("fig13", fig13)
	register("fig15", fig15)
	register("fig17", fig17)
	register("fig18", fig18)
	register("fig21b", fig21b)
	register("fig21c", fig21c)
}

// trainRef probes two unconstrained CE runs to derive binding constraints:
// cheapCost (a cost-minimizing run under a loose deadline) references
// budgets, fastJCT (a JCT-minimizing run under a loose budget) references
// QoS deadlines.
type trainRefs struct {
	cheapCost, cheapJCT float64
	fastCost, fastJCT   float64
}

// budgetRef is a binding-but-workable budget: the geometric mean of the
// cheapest and fastest runs' costs.
func (r trainRefs) budgetRef() float64 { return sqrtProduct(r.cheapCost, r.fastCost) }

// qosRef is a binding-but-workable deadline: the geometric mean of the
// fastest and cheapest runs' JCTs.
func (r trainRefs) qosRef() float64 { return sqrtProduct(r.fastJCT, r.cheapJCT) }

func trainRef(fw *core.Framework, seed uint64) (trainRefs, error) {
	cheap, err := fw.Train(core.Options{QoS: 1e15, Seed: seed}, trainer.NewRunner(seed))
	if err != nil {
		return trainRefs{}, err
	}
	fast, err := fw.Train(core.Options{Budget: 1e15, Seed: seed}, trainer.NewRunner(seed))
	if err != nil {
		return trainRefs{}, err
	}
	return trainRefs{
		cheapCost: cheap.Result.TotalCost, cheapJCT: cheap.Result.JCT,
		fastCost: fast.Result.TotalCost, fastJCT: fast.Result.JCT,
	}, nil
}

// runCE runs CE-scaling training under opt, recording into scope when the
// engine has a collector installed.
func runCE(fw *core.Framework, opt core.Options, runnerSeed uint64, scope string) (*trainer.Result, error) {
	out, err := fw.Train(opt, observed(trainer.NewRunner(runnerSeed), scope))
	if err != nil {
		return nil, err
	}
	return out.Result, nil
}

// runSiren runs the Siren baseline for the same workload/constraint.
func runSiren(fw *core.Framework, budget, qos float64, seed uint64, scope string) (*trainer.Result, error) {
	w := fw.Workload
	est := predictor.NewOffline(w).PredictEpochs(w.TargetLoss, seed)
	siren := baselines.NewSirenTraining(fw.Full, budget, qos, est, seed)
	r := observed(trainer.NewRunner(seed+1), scope)
	return r.Run(trainer.Config{
		Workload:   w,
		Engine:     w.NewEngine(workload.Hyperparams{LR: w.DefaultLR}, seed),
		Alloc:      siren.Initial(),
		TargetLoss: w.TargetLoss,
		MaxEpochs:  2000,
		Controller: siren.Controller(),
	})
}

// runModifiedCirrus runs the modified-Cirrus baseline (online prediction,
// VM-PS pinned, immediate restarts).
func runModifiedCirrus(fw *core.Framework, budget, qos float64, seed uint64, scope string) (*trainer.Result, error) {
	w := fw.Workload
	sched := baselines.ModifiedCirrus(fw.Model, fw.Full, budget, qos, w.TargetLoss, predictor.NewOffline(w), seed)
	alloc, _ := sched.Initial()
	if alloc.N == 0 {
		return nil, fmt.Errorf("modified Cirrus: no feasible VM-PS allocation for %s", w.Name)
	}
	r := observed(trainer.NewRunner(seed+2), scope)
	return r.Run(trainer.Config{
		Workload:   w,
		Engine:     w.NewEngine(workload.Hyperparams{LR: w.DefaultLR}, seed),
		Alloc:      alloc,
		TargetLoss: w.TargetLoss,
		MaxEpochs:  2000,
		Controller: sched.Controller(),
	})
}

var trainOrder = []string{"CE-scaling", "Siren", "Cirrus*"}

// trainSystems runs the Fig. 12/13 system matrix for one model. The three
// systems each build their own scheduler and Runner over the read-only
// framework, so they run as parallel cells merged back in system order.
// scope labels the matrix for trace collection; each system records under
// scope/<system>.
func trainSystems(fw *core.Framework, budget, qos float64, seed uint64, scope string) (map[string]*trainer.Result, error) {
	runs := []struct {
		name string
		f    func() (*trainer.Result, error)
	}{
		{"CE", func() (*trainer.Result, error) {
			return runCE(fw, core.Options{Budget: budget, QoS: qos, Seed: seed}, seed, scope+"/CE-scaling")
		}},
		{"Siren", func() (*trainer.Result, error) { return runSiren(fw, budget, qos, seed, scope+"/Siren") }},
		{"Cirrus*", func() (*trainer.Result, error) { return runModifiedCirrus(fw, budget, qos, seed, scope+"/Cirrus") }},
	}
	results, err := cells(len(runs), func(i int) (*trainer.Result, error) {
		r, err := runs[i].f()
		return r, cellErr(runs[i].name, err)
	})
	if err != nil {
		return nil, err
	}
	return map[string]*trainer.Result{
		"CE-scaling": results[0], "Siren": results[1], "Cirrus*": results[2],
	}, nil
}

// fig12 — training JCT given a budget, with the communication breakdown.
func fig12(seed uint64) (*Table, error) {
	t := &Table{
		ID:      "fig12",
		Title:   "Training JCT given a budget (executed; comm = synchronization share of JCT)",
		Headers: []string{"model", "system", "JCT", "comm time", "comm share", "cost", "converged", "JCT vs Siren"},
		Notes:   "budget = geometric mean of cost-minimizing and JCT-minimizing CE probes; Cirrus* = Cirrus modified with online prediction (VM-PS, immediate restarts); LambdaML omitted as in the paper (offline prediction violates constraints)",
	}
	models := workload.Evaluated()
	blocks, err := cells(len(models), func(i int) ([][]string, error) {
		w := models[i]
		fw := core.New(w)
		probe, err := trainRef(fw, seed)
		if err != nil {
			return nil, fmt.Errorf("%s probe: %w", w.Name, err)
		}
		budget := probe.budgetRef()
		runs, err := trainSystems(fw, budget, 0, seed, "fig12/"+w.Name)
		if err != nil {
			return nil, cellErr(w.Name, err)
		}
		base := runs["Siren"].JCT
		var rows [][]string
		for _, sys := range trainOrder {
			r := runs[sys]
			rows = append(rows, []string{
				w.Name, sys, seconds(r.JCT), seconds(r.SyncTime), pct(r.SyncTime / r.JCT),
				dollars(r.TotalCost), fmt.Sprintf("%v", r.Converged),
				pct(reduction(base, r.JCT)),
			})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	for _, rows := range blocks {
		t.Rows = append(t.Rows, rows...)
	}
	return t, nil
}

// fig13 — training cost given a QoS constraint, with the storage breakdown.
func fig13(seed uint64) (*Table, error) {
	t := &Table{
		ID:      "fig13",
		Title:   "Training cost given a QoS constraint (executed; storage = storage share of cost)",
		Headers: []string{"model", "system", "cost", "storage cost", "storage share", "JCT", "QoS", "cost vs Siren"},
		Notes:   "QoS = geometric mean of the fastest and cheapest probes' JCTs",
	}
	models := workload.Evaluated()
	blocks, err := cells(len(models), func(i int) ([][]string, error) {
		w := models[i]
		fw := core.New(w)
		probe, err := trainRef(fw, seed)
		if err != nil {
			return nil, err
		}
		qos := probe.qosRef()
		runs, err := trainSystems(fw, 0, qos, seed, "fig13/"+w.Name)
		if err != nil {
			return nil, cellErr(w.Name, err)
		}
		base := runs["Siren"].TotalCost
		var rows [][]string
		for _, sys := range trainOrder {
			r := runs[sys]
			rows = append(rows, []string{
				w.Name, sys, dollars(r.TotalCost), dollars(r.StorageCost), pct(r.StorageCost / r.TotalCost),
				seconds(r.JCT), seconds(qos),
				pct(reduction(base, r.TotalCost)),
			})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	for _, rows := range blocks {
		t.Rows = append(t.Rows, rows...)
	}
	return t, nil
}

// fig15 — training for LR-YFCC under varying budget and QoS constraints.
func fig15(seed uint64) (*Table, error) {
	w := workload.LRYFCC()
	fw := core.New(w)
	probe, err := trainRef(fw, seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig15",
		Title:   "Training under varying constraints, LR-YFCC (executed)",
		Headers: []string{"constraint", "system", "JCT", "cost", "converged"},
		Notes:   "multiples of the geometric-mean reference constraints",
	}
	for _, mult := range []float64{0.6, 0.8, 1.0, 1.4} {
		runs, err := trainSystems(fw, probe.budgetRef()*mult, 0, seed, fmt.Sprintf("fig15/budget-%.1fx", mult))
		if err != nil {
			return nil, err
		}
		for _, sys := range trainOrder {
			r := runs[sys]
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("budget %.1fx", mult), sys, seconds(r.JCT), dollars(r.TotalCost), fmt.Sprintf("%v", r.Converged),
			})
		}
	}
	for _, mult := range []float64{0.6, 0.8, 1.0, 1.4} {
		runs, err := trainSystems(fw, 0, probe.qosRef()*mult, seed, fmt.Sprintf("fig15/qos-%.1fx", mult))
		if err != nil {
			return nil, err
		}
		for _, sys := range trainOrder {
			r := runs[sys]
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("QoS %.1fx", mult), sys, seconds(r.JCT), dollars(r.TotalCost), fmt.Sprintf("%v", r.Converged),
			})
		}
	}
	return t, nil
}

// fig17 — training with every system pinned to the same storage
// (MobileNet-Cifar10).
func fig17(seed uint64) (*Table, error) {
	w := workload.MobileNet()
	fw := core.New(w)
	probe, err := trainRef(fw, seed)
	if err != nil {
		return nil, err
	}
	budget := probe.budgetRef()
	t := &Table{
		ID:      "fig17",
		Title:   "Training with all systems pinned to the same storage, MobileNet-Cifar10 (executed)",
		Headers: []string{"storage", "system", "JCT", "comm time", "cost", "storage cost"},
		Notes:   "budget = 1.3x a cost-minimizing CE probe",
	}
	kinds := []storage.Kind{storage.S3, storage.VMPS}
	blocks, err := cells(len(kinds), func(ki int) ([][]string, error) {
		kind := kinds[ki]
		k := kind
		ce, err := runCE(fw, core.Options{Budget: budget, Seed: seed, PinStorage: &k}, seed, "fig17/"+kind.Short()+"/CE-scaling")
		if err != nil {
			return nil, err
		}
		// Siren keeps its per-epoch restart behaviour on the pinned set.
		sirEst := predictor.NewOffline(w).PredictEpochs(w.TargetLoss, seed)
		sir, err := runSirenPinned(fw, baselines.FilterByStorage(fw.Full, kind), budget, sirEst, seed, "fig17/"+kind.Short()+"/Siren")
		if err != nil {
			return nil, err
		}
		// Cirrus: online prediction, immediate restarts, pinned storage.
		cirSched := baselines.ModifiedCirrusPinned(fw.Model, fw.Full, kind, budget, 0, w.TargetLoss, predictor.NewOffline(w), seed)
		cirAlloc, _ := cirSched.Initial()
		r := observed(trainer.NewRunner(seed+5), "fig17/"+kind.Short()+"/Cirrus")
		cir, err := r.Run(trainer.Config{
			Workload: w, Engine: w.NewEngine(workload.Hyperparams{LR: w.DefaultLR}, seed),
			Alloc: cirAlloc, TargetLoss: w.TargetLoss, MaxEpochs: 2000,
			Controller: cirSched.Controller(),
		})
		if err != nil {
			return nil, err
		}
		systems := []struct {
			name string
			r    *trainer.Result
		}{{"CE-scaling", ce}, {"Siren", sir}, {"Cirrus", cir}}
		var rows [][]string
		for _, row := range systems {
			rows = append(rows, []string{
				kind.String(), row.name, seconds(row.r.JCT), seconds(row.r.SyncTime),
				dollars(row.r.TotalCost), dollars(row.r.StorageCost),
			})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	for _, rows := range blocks {
		t.Rows = append(t.Rows, rows...)
	}
	return t, nil
}

// runSirenPinned reproduces Siren's per-epoch adjustment behaviour over an
// arbitrary pinned candidate set (used when Fig. 17 pins Siren to VM-PS).
func runSirenPinned(fw *core.Framework, pts []cost.Point, budget float64, est int, seed uint64, scope string) (*trainer.Result, error) {
	w := fw.Workload
	siren := baselines.NewSirenTrainingUnfiltered(pts, budget, 0, est, seed)
	r := observed(trainer.NewRunner(seed+4), scope)
	return r.Run(trainer.Config{
		Workload:   w,
		Engine:     w.NewEngine(workload.Hyperparams{LR: w.DefaultLR}, seed),
		Alloc:      siren.Initial(),
		TargetLoss: w.TargetLoss,
		MaxEpochs:  2000,
		Controller: siren.Controller(),
	})
}

// fig18 — CE-scaling restricted to one storage service at a time.
func fig18(seed uint64) (*Table, error) {
	t := &Table{
		ID:      "fig18",
		Title:   "CE-scaling training under fixed external storage (D/S/E/V)",
		Headers: []string{"model", "storage", "JCT", "comm time", "cost", "storage cost"},
		Notes:   "N/A: model exceeds DynamoDB's 400KB object limit; budget = 1.3x a cost-minimizing probe",
	}
	models := []*workload.Model{workload.LRHiggs(), workload.MobileNet()}
	blocks, err := cells(len(models), func(mi int) ([][]string, error) {
		w := models[mi]
		fw := core.New(w)
		probe, err := trainRef(fw, seed)
		if err != nil {
			return nil, err
		}
		budget := probe.budgetRef()
		kinds := storage.Kinds()
		return cells(len(kinds), func(ki int) ([]string, error) {
			kind := kinds[ki]
			k := kind
			if !fw.Model.Service(kind).Supports(w.ParamsMB) {
				return []string{w.Name, kind.Short(), "N/A", "N/A", "N/A", "N/A"}, nil
			}
			r, err := runCE(fw, core.Options{Budget: budget, Seed: seed, PinStorage: &k}, seed+uint64(kind), "fig18/"+w.Name+"/"+kind.Short())
			if err != nil {
				return nil, fmt.Errorf("%s/%v: %w", w.Name, kind, err)
			}
			return []string{
				w.Name, kind.Short(), seconds(r.JCT), seconds(r.SyncTime),
				dollars(r.TotalCost), dollars(r.StorageCost),
			}, nil
		})
	})
	if err != nil {
		return nil, err
	}
	for _, rows := range blocks {
		t.Rows = append(t.Rows, rows...)
	}
	return t, nil
}

// fig21b — training scheduling overhead: CE vs WO-pa vs WO-pa-dr.
func fig21b(seed uint64) (*Table, error) {
	w := workload.ResNet50()
	fw := core.New(w)
	probe, err := trainRef(fw, seed)
	if err != nil {
		return nil, err
	}
	budget := probe.budgetRef() * 0.8 // binding, so adjustments happen
	t := &Table{
		ID:      "fig21b",
		Title:   "Training scheduling overhead (planning + adjustment), ResNet50",
		Headers: []string{"variant", "restarts", "planning time", "adjust overhead", "total sched overhead", "JCT"},
		Notes:   "WO-pa searches the full allocation set; WO-pa-dr additionally disables delayed restart; adjust overhead = overhead - initial startup - planning",
	}
	variants := []struct {
		name string
		opt  core.Options
	}{
		{"CE-scaling", core.Options{Budget: budget, Seed: seed}},
		{"WO-pa", core.Options{Budget: budget, Seed: seed, DisablePareto: true}},
		{"WO-pa-dr", core.Options{Budget: budget, Seed: seed, DisablePareto: true, DisableDelayedRestart: true}},
	}
	rows, err := cells(len(variants), func(i int) ([]string, error) {
		v := variants[i]
		r, err := runCE(fw, v.opt, seed, "fig21b/"+v.name)
		if err != nil {
			return nil, cellErr(v.name, err)
		}
		adjust := r.OverheadTime - r.StartupTime - r.PlanningTime
		if adjust < 0 {
			adjust = 0
		}
		return []string{
			v.name, fmt.Sprintf("%d", r.Restarts),
			seconds(r.PlanningTime), seconds(adjust),
			seconds(r.PlanningTime + adjust), seconds(r.JCT),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	return t, nil
}

// fig21c — the impact of the adjustment threshold δ.
func fig21c(seed uint64) (*Table, error) {
	w := workload.ResNet50()
	fw := core.New(w)
	probe, err := trainRef(fw, seed)
	if err != nil {
		return nil, err
	}
	budget := probe.budgetRef() * 0.8
	t := &Table{
		ID:      "fig21c",
		Title:   "Impact of the adjustment threshold δ (ResNet50, budget-constrained)",
		Headers: []string{"delta", "restarts", "planning time", "sched overhead", "JCT", "cost"},
		Notes:   "lower δ reacts to every prediction wobble (frequent restarts); higher δ responds slowly; default 0.1",
	}
	deltas := []float64{0.01, 0.05, 0.1, 0.15, 0.2}
	rows, err := cells(len(deltas), func(i int) ([]string, error) {
		delta := deltas[i]
		r, err := runCE(fw, core.Options{Budget: budget, Seed: seed, Delta: delta}, seed, fmt.Sprintf("fig21c/delta-%.2f", delta))
		if err != nil {
			return nil, err
		}
		adjust := r.OverheadTime - r.StartupTime - r.PlanningTime
		if adjust < 0 {
			adjust = 0
		}
		return []string{
			f2(delta), fmt.Sprintf("%d", r.Restarts),
			seconds(r.PlanningTime), seconds(r.PlanningTime + adjust),
			seconds(r.JCT), dollars(r.TotalCost),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	return t, nil
}
