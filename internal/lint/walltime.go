package lint

import "go/ast"

// Walltime forbids reading the wall clock in deterministic packages.
//
// The DES substrate owns time: every duration in the simulated system is
// derived from the event clock (platform.Clock / sim.Simulation), so a
// single time.Now in a deterministic package silently couples results to
// the host's scheduler and clock resolution. Live-substrate packages
// (livebackend, lambda, distml, the commands) are excluded by the policy's
// deterministic set, not by this analyzer.
var Walltime = &Analyzer{
	Name:  "walltime",
	Doc:   "forbid time.Now/Since/Sleep/timers in deterministic packages",
	Scope: ScopeDeterministic,
	Run:   runWalltime,
}

// wallFuncs are the time package entry points that observe or wait on the
// host clock. Pure constructors and arithmetic (time.Duration, time.Unix,
// Parse, Date) stay legal: they are deterministic functions of their
// arguments.
var wallFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

func runWalltime(p *Pass) {
	inspectAll(p, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pkg, name, ok := pkgSel(p.Info, sel); ok && pkg == "time" && wallFuncs[name] {
			p.Reportf(sel.Pos(), "time.%s reads the wall clock; deterministic packages take time from the DES clock (platform.Clock)", name)
		}
		return true
	})
}
