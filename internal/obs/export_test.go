package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// populate records a fixed event/metric mix into a collector, optionally
// concurrently (one goroutine per scope) to model the experiment engine's
// worker pool.
func populate(c *Collector, parallel bool) {
	scopes := []string{"fig21b/siren", "fig21b/ce", "fig21b/cirrus"}
	var wg sync.WaitGroup
	for i, name := range scopes {
		record := func(i int, o *Observer) {
			o.Trace().SpanAt(float64(i), 1.5, "job", "trainer", "epoch", I("epoch", i), F("loss", 0.5/float64(i+1)))
			o.Trace().InstantAt(float64(i)+1.5, "sched", "scheduler", "decision", S("path", "hold"), B("restart", i == 1))
			o.Stats().Inc("epochs")
			o.Stats().Set("warm", float64(i))
			o.Stats().Observe("epoch_s", 1.5)
		}
		if parallel {
			wg.Add(1)
			go func(i int, name string) {
				defer wg.Done()
				record(i, c.Scope(name))
			}(i, name)
		} else {
			record(i, c.Scope(name))
		}
	}
	wg.Wait()
}

func render(t *testing.T, c *Collector) (chrome, jsonl, metrics string) {
	t.Helper()
	var cb, jb, mb bytes.Buffer
	if err := WriteChromeTrace(&cb, c.Scopes()); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&jb, c.Scopes()); err != nil {
		t.Fatal(err)
	}
	if err := WriteMetricsJSON(&mb, c.Scopes()); err != nil {
		t.Fatal(err)
	}
	return cb.String(), jb.String(), mb.String()
}

// TestExportBytesIdenticalAcrossRunsAndConcurrency is the exporter-level
// statement of the acceptance criterion: same workload → same bytes,
// whether scopes were populated serially or from concurrent goroutines.
func TestExportBytesIdenticalAcrossRunsAndConcurrency(t *testing.T) {
	serial := NewCollector()
	populate(serial, false)
	c1, j1, m1 := render(t, serial)
	for i := 0; i < 3; i++ {
		par := NewCollector()
		populate(par, true)
		c2, j2, m2 := render(t, par)
		if c1 != c2 {
			t.Fatalf("chrome trace differs between serial and parallel population:\n%s\nvs\n%s", c1, c2)
		}
		if j1 != j2 {
			t.Fatalf("jsonl differs:\n%s\nvs\n%s", j1, j2)
		}
		if m1 != m2 {
			t.Fatalf("metrics differ:\n%s\nvs\n%s", m1, m2)
		}
	}
}

// TestChromeTraceIsValidAndStructured parses the emitted document the way
// Perfetto's legacy JSON importer does and checks the structural pieces:
// process/thread metadata, span/instant phases, microsecond timestamps.
func TestChromeTraceIsValidAndStructured(t *testing.T) {
	c := NewCollector()
	populate(c, false)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, c.Scopes()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var phases = map[string]int{}
	var sawProcessName, sawThreadName bool
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases[ph]++
		if ph == "M" {
			switch ev["name"] {
			case "process_name":
				sawProcessName = true
			case "thread_name":
				sawThreadName = true
			}
		}
	}
	if !sawProcessName || !sawThreadName {
		t.Fatalf("missing metadata events: %v", phases)
	}
	if phases["X"] != 3 || phases["i"] != 3 {
		t.Fatalf("phase counts = %v, want 3 X and 3 i", phases)
	}
	// Spot-check the microsecond conversion: scope "fig21b/ce" (i=1)
	// records its span at t=1s → ts=1e6us.
	found := false
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" && ev["ts"] == 1e6 {
			found = true
			if ev["dur"] != 1.5e6 {
				t.Fatalf("dur = %v, want 1.5e6", ev["dur"])
			}
		}
	}
	if !found {
		t.Fatal("span at ts=1e6 not found (seconds→microseconds conversion broken?)")
	}
}

func TestJSONLOneObjectPerLine(t *testing.T) {
	c := NewCollector()
	populate(c, false)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, c.Scopes()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("got %d lines, want 6:\n%s", len(lines), buf.String())
	}
	for _, ln := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(ln), &obj); err != nil {
			t.Fatalf("line not valid JSON: %v\n%s", err, ln)
		}
		for _, k := range []string{"scope", "t", "track", "cat", "name"} {
			if _, ok := obj[k]; !ok {
				t.Fatalf("line missing %q: %s", k, ln)
			}
		}
	}
	// Scopes must appear in sorted order: fig21b/ce before fig21b/cirrus
	// before fig21b/siren.
	ceIdx := strings.Index(buf.String(), "fig21b/ce\"")
	cirrusIdx := strings.Index(buf.String(), "fig21b/cirrus")
	sirenIdx := strings.Index(buf.String(), "fig21b/siren")
	if !(ceIdx < cirrusIdx && cirrusIdx < sirenIdx) {
		t.Fatalf("scopes not in sorted order: ce@%d cirrus@%d siren@%d", ceIdx, cirrusIdx, sirenIdx)
	}
}

func TestWriteTraceFormatByExtension(t *testing.T) {
	o := New()
	o.Trace().InstantAt(1, "trk", "cat", "ev")
	var asJSONL, asChrome bytes.Buffer
	if err := o.WriteTrace(&asJSONL, "out.jsonl"); err != nil {
		t.Fatal(err)
	}
	if err := o.WriteTrace(&asChrome, "out.json"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(asJSONL.String(), "{\"scope\":\"cescale\"") {
		t.Fatalf(".jsonl did not select JSONL: %s", asJSONL.String())
	}
	if !strings.HasPrefix(asChrome.String(), "{\"displayTimeUnit\"") {
		t.Fatalf(".json did not select chrome trace: %s", asChrome.String())
	}
	var nilObs *Observer
	if err := nilObs.WriteTrace(&asChrome, "x.json"); err == nil {
		t.Fatal("nil observer WriteTrace did not error")
	}
	if err := nilObs.WriteMetrics(&asChrome); err == nil {
		t.Fatal("nil observer WriteMetrics did not error")
	}
}

func TestMetricsJSONShape(t *testing.T) {
	c := NewCollector()
	populate(c, false)
	var buf bytes.Buffer
	if err := WriteMetricsJSON(&buf, c.Scopes()); err != nil {
		t.Fatal(err)
	}
	var doc []struct {
		Scope   string   `json:"scope"`
		Metrics Snapshot `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("metrics doc not valid JSON: %v", err)
	}
	if len(doc) != 3 || doc[0].Scope != "fig21b/ce" {
		t.Fatalf("unexpected doc shape: %+v", doc)
	}
	if len(doc[0].Metrics.Counters) != 1 || doc[0].Metrics.Counters[0].Name != "epochs" {
		t.Fatalf("counters: %+v", doc[0].Metrics.Counters)
	}
}
