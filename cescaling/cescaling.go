// Package cescaling is the public API of the CE-scaling reproduction: a
// QoS-aware, cost-efficient dynamic resource allocator for serverless ML
// workflows (Wu et al., IPDPS 2023) together with the simulated serverless
// substrate it runs on.
//
// The typical flow mirrors the paper's Fig. 6 architecture:
//
//	w, _ := cescaling.ModelByName("MobileNet-Cifar10")
//	fw := cescaling.New(w)                  // Pareto profiler
//	runner := cescaling.NewRunner(42)       // simulated substrate
//
//	// Hyperparameter tuning under a budget (greedy heuristic planner):
//	tune, _ := fw.RunHPT(512, 2, 2, cescaling.Options{Budget: 30}, runner)
//
//	// Model training under a QoS deadline (adaptive scheduler):
//	train, _ := fw.Train(cescaling.Options{QoS: 3600}, runner)
//
// Everything is deterministic per seed: repeated runs reproduce identical
// JCT and cost figures.
package cescaling

import (
	"io"

	"fmt"

	"repro/internal/baselines"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/planner"
	"repro/internal/platform"
	"repro/internal/platform/livebackend" //cescalint:allow importboundary -- public facade: wires the live backend behind platform.Backend for NewLiveRunner

	"repro/internal/predictor"
	"repro/internal/sha"
	"repro/internal/storage"
	"repro/internal/trainer"
	"repro/internal/workload"
)

// Core types, re-exported so users never import internal packages.
type (
	// Framework is one CE-scaling instance bound to a workload: Pareto
	// profiler + greedy heuristic planner + adaptive scheduler.
	Framework = core.Framework
	// Options selects the constraint (Budget or QoS) and toggles the
	// Pareto and delayed-restart optimizations.
	Options = core.Options
	// TuneOutcome carries a tuning plan and its measured execution.
	TuneOutcome = core.TuneOutcome
	// TrainOutcome carries a training run and the scheduler that drove it.
	TrainOutcome = core.TrainOutcome
	// WorkflowOptions parameterize an end-to-end workflow (tune + train).
	WorkflowOptions = core.WorkflowOptions
	// WorkflowOutcome reports both phases of an executed workflow.
	WorkflowOutcome = core.WorkflowOutcome

	// Model profiles one ML workload (sizes, compute intensity, loss
	// engine, Table IV configuration).
	Model = workload.Model
	// Hyperparams are the tunables a tuning trial explores.
	Hyperparams = workload.Hyperparams
	// Engine produces per-epoch training losses.
	Engine = workload.Engine

	// Allocation is one point θ = (n, m, s) of the allocation space.
	Allocation = cost.Allocation
	// Point pairs an allocation with its per-epoch time and cost estimates.
	Point = cost.Point
	// Grid is the allocation space to enumerate.
	Grid = cost.Grid
	// CostModel estimates per-epoch and per-job time and cost (Eq. 1-5).
	CostModel = cost.Model

	// Stage is one SHA stage (trials, epochs).
	Stage = planner.Stage
	// Plan assigns an allocation to every tuning stage.
	Plan = planner.Plan
	// PlanResult is a plan with its predicted JCT/cost.
	PlanResult = planner.Result
	// Planner is the greedy heuristic resource-partitioning planner.
	Planner = planner.Planner

	// Runner is the simulated serverless substrate jobs execute on.
	Runner = trainer.Runner
	// TrainJob describes one training job for Runner.Run (allocation,
	// engine, target, optional controller).
	TrainJob = trainer.Config
	// TrainResult summarizes one executed training job.
	TrainResult = trainer.Result
	// TrainController observes epochs and may adjust resources.
	TrainController = trainer.Controller
	// TrainDecision is what a controller may request at an epoch boundary.
	TrainDecision = trainer.Decision
	// TuneRun summarizes one executed tuning workflow.
	TuneRun = sha.Result

	// StorageKind identifies an external storage service.
	StorageKind = platform.StorageKind

	// Backend is the execution substrate behind a Runner; see Config.
	Backend = platform.Backend

	// ClusterSubmission is one job plus its arrival time on a shared
	// substrate.
	ClusterSubmission = cluster.Submission
	// ClusterOutcome reports one completed multi-tenant job.
	ClusterOutcome = cluster.Outcome
	// StorageService models one external storage service.
	StorageService = storage.Service

	// OfflinePredictor is the LambdaML-style sampling predictor.
	OfflinePredictor = predictor.Offline
	// OnlinePredictor is the convergence-curve fitter.
	OnlinePredictor = predictor.Online
)

// Storage service kinds (Table I).
const (
	S3          = storage.S3
	DynamoDB    = storage.DynamoDB
	ElastiCache = storage.ElastiCache
	VMPS        = storage.VMPS
)

// New profiles a workload over the default allocation grid and returns a
// CE-scaling framework for it.
func New(w *Model) *Framework { return core.New(w) }

// NewWithGrid profiles a workload over an explicit grid.
func NewWithGrid(w *Model, g Grid) *Framework { return core.NewWithGrid(w, g) }

// NewRunner returns a deterministic simulated substrate.
func NewRunner(seed uint64) *Runner { return trainer.NewRunner(seed) }

// Config selects the execution substrate behind a Runner.
type Config struct {
	// Backend selects the substrate: "sim" (default) runs everything inside
	// the discrete-event simulation; "live" drives real concurrent workers
	// through the local serverless executor, with model state over HTTP
	// object storage and TCP parameter servers. The controller's decisions
	// are identical on both under the same seed.
	Backend string
	// Seed drives the substrate's deterministic random streams.
	Seed uint64
}

// NewRunnerWithConfig returns a runner on the configured substrate. Close
// the runner with CloseRunner when done: the live substrate holds real
// resources (worker goroutines, sockets, servers).
func NewRunnerWithConfig(cfg Config) (*Runner, error) {
	switch cfg.Backend {
	case "", "sim":
		return trainer.NewRunner(cfg.Seed), nil
	case "live":
		b, err := livebackend.New(livebackend.Config{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		return trainer.NewRunnerOn(b), nil
	default:
		return nil, fmt.Errorf("cescaling: unknown backend %q (want sim or live)", cfg.Backend)
	}
}

// CloseRunner tears down any real resources the runner's substrate holds.
// It is a no-op for the simulated substrate.
func CloseRunner(r *Runner) error { return platform.Close(r.Backend) }

// DefaultGrid returns the allocation grid used by the paper's evaluation.
func DefaultGrid() Grid { return cost.DefaultGrid() }

// Models returns the five evaluated workloads (LR, SVM, MobileNet,
// ResNet50, BERT).
func Models() []*Model { return workload.Evaluated() }

// ModelByName resolves a workload profile ("LR-Higgs", "BERT-IMDb", ...).
func ModelByName(name string) (*Model, error) { return workload.ByName(name) }

// SHAStages builds the successive-halving stage structure.
func SHAStages(trials, eta, epochsPerStage int) []Stage {
	return planner.SHAStages(trials, eta, epochsPerStage)
}

// Pareto returns the Pareto boundary of a set of allocation points.
func Pareto(points []Point) []Point { return cost.Pareto(points) }

// NewOffline returns the sampling-based offline epoch predictor.
func NewOffline(w *Model) *OfflinePredictor { return predictor.NewOffline(w) }

// NewOnline returns the online convergence-curve predictor.
func NewOnline() *OnlinePredictor { return predictor.NewOnline() }

// RunCluster executes multiple fixed-allocation jobs on one shared
// substrate: they contend for the account concurrency cap and queue FIFO.
func RunCluster(r *Runner, subs []ClusterSubmission) ([]*ClusterOutcome, error) {
	return cluster.Run(r, subs)
}

// WriteTraceCSV writes a training run's per-epoch trace as CSV.
func WriteTraceCSV(w io.Writer, trace []trainer.EpochReport) error {
	return trainer.WriteTraceCSV(w, trace)
}

// StorageServices returns the four modeled storage services.
func StorageServices() []*StorageService {
	return storage.All(trainer.NewRunner(0).Prices)
}

// Baseline planners and policies (§IV): LambdaML, Siren and Cirrus over the
// same substrate.
var Baselines = struct {
	LambdaMLPlan func(m *CostModel, stages []Stage, points []Point, budget, qos float64) (PlanResult, error)
	SirenPlan    func(m *CostModel, stages []Stage, points []Point, budget, qos float64) (PlanResult, error)
	CirrusPlan   func(m *CostModel, stages []Stage, points []Point, budget, qos float64) (PlanResult, error)
}{
	LambdaMLPlan: baselines.LambdaMLPlan,
	SirenPlan:    baselines.SirenPlan,
	CirrusPlan:   baselines.CirrusPlan,
}
