package storage

import (
	"errors"
	"testing"

	"repro/internal/pricing"
)

func TestFaultyInjectsDeterministically(t *testing.T) {
	f := NewFaulty(NewStore())
	f.SetErrorRate(0.25)
	var pattern []bool
	fails := 0
	for i := 0; i < 100; i++ {
		err := f.TryPut("k", []float64{1})
		pattern = append(pattern, err != nil)
		if err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("unexpected error: %v", err)
			}
			fails++
		}
	}
	if fails != 25 {
		t.Errorf("fails = %d at rate 0.25 over 100 ops, want 25", fails)
	}
	if got := f.FailCount(); got != 25 {
		t.Errorf("FailCount = %d, want 25", got)
	}
	// A fresh wrapper replays the identical sequence: injection is a
	// function of the op index, not of time or randomness.
	g := NewFaulty(NewStore())
	g.SetErrorRate(0.25)
	for i, want := range pattern {
		if got := g.TryPut("k", []float64{1}) != nil; got != want {
			t.Fatalf("op %d: fail=%v, first run %v", i, got, want)
		}
	}
}

func TestFaultyFailedOpsTouchNothing(t *testing.T) {
	f := NewFaulty(NewStore())
	f.SetErrorRate(1)
	if err := f.TryPut("k", []float64{42}); !errors.Is(err, ErrInjected) {
		t.Fatalf("TryPut err = %v", err)
	}
	if f.Store().Len() != 0 {
		t.Error("failed Put wrote to the store")
	}
	if _, _, err := f.TryGet("k"); !errors.Is(err, ErrInjected) {
		t.Fatalf("TryGet err = %v", err)
	}
	// Rate 0 restores normal behavior on the same wrapper.
	f.SetErrorRate(0)
	if err := f.TryPut("k", []float64{42}); err != nil {
		t.Fatal(err)
	}
	v, ok, err := f.TryGet("k")
	if err != nil || !ok || len(v) != 1 || v[0] != 42 {
		t.Fatalf("TryGet = %v %v %v", v, ok, err)
	}
	if _, ok, err := f.TryGet("absent"); err != nil || ok {
		t.Fatalf("absent key: ok=%v err=%v", ok, err)
	}
}

func TestDegradedScalesLatencyNotCost(t *testing.T) {
	svc := NewS3(pricing.Default())
	factor := 1.0
	d := NewDegraded(svc, func() float64 { return factor })

	if got, want := d.TransferTime(10, 80), svc.TransferTime(10, 80); got != want {
		t.Errorf("neutral TransferTime %g != %g", got, want)
	}
	factor = 3
	if got, want := d.TransferTime(10, 80), 3*svc.TransferTime(10, 80); got != want {
		t.Errorf("degraded TransferTime %g, want %g", got, want)
	}
	if got, want := d.SyncTime(10, 80), 3*svc.SyncTime(10, 80); got != want {
		t.Errorf("degraded SyncTime %g, want %g", got, want)
	}
	// Slower, not cheaper: cost and capability methods delegate unchanged.
	if d.SyncRequestCost(10, 80) != svc.SyncRequestCost(10, 80) ||
		d.RuntimeCost(100) != svc.RuntimeCost(100) ||
		d.ChargesByRequest() != svc.ChargesByRequest() ||
		d.ProvisionDelay() != svc.ProvisionDelay() ||
		d.Supports(80) != svc.Supports(80) ||
		d.Kind() != svc.Kind() {
		t.Error("cost/capability methods did not delegate unchanged")
	}
	// A factor below 1 never speeds storage up; nil factor is neutral.
	factor = 0.25
	if got, want := d.TransferTime(10, 80), svc.TransferTime(10, 80); got != want {
		t.Errorf("sub-1 factor applied: %g != %g", got, want)
	}
	n := NewDegraded(svc, nil)
	if got, want := n.SyncTime(10, 80), svc.SyncTime(10, 80); got != want {
		t.Errorf("nil factor: %g != %g", got, want)
	}
}
