// Package ml is a real mini-batch SGD engine for linear models: logistic
// regression, linear SVM (hinge loss) and linear regression (squared loss),
// all with optional L2 regularization. It supplies the genuine stochastic
// convergence behaviour the paper's online-prediction experiments depend on
// (§II-C2): the LR/SVM workloads in this repository actually train on data,
// they are not scripted curves.
//
// The engine is deliberately storage-agnostic: workers compute gradients on
// their shards and the Bulk Synchronous Parallel reduction is plain vector
// addition, so the simulated trainer can route the exchange through any
// storage.Store.
//
// The numeric path is allocation-free in the steady state: workers own
// pre-sized gradient scratch buffers, the trainer aggregates worker
// gradients in place, and the gradient/loss kernels process rows four at a
// time with per-row summation order preserved, so results are bit-identical
// to the naive loops.
package ml

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/dataset"
	"repro/internal/sim"
)

// Objective is a differentiable training objective over a linear model.
type Objective interface {
	// Name identifies the objective ("logistic", "hinge", "squared").
	Name() string
	// Gradient adds the average gradient over the rows idx of m, evaluated
	// at weights w, into grad (which the caller has zeroed or is
	// accumulating into deliberately). It runs once per worker per BSP
	// iteration — the innermost loop of every simulated training trial —
	// so every implementation must be allocation-free.
	//
	//cescalint:hotpath
	Gradient(w []float64, m *dataset.Matrix, idx []int, grad []float64)
	// Loss returns the average loss over all rows of m at weights w. It
	// closes every epoch, so implementations share Gradient's obligation.
	//
	//cescalint:hotpath
	Loss(w []float64, m *dataset.Matrix) float64
}

// Logistic is the logistic-regression objective with labels in {-1, +1}:
// loss = log(1 + exp(-y w·x)) + (L2/2)|w|².
type Logistic struct{ L2 float64 }

// Name implements Objective.
func (Logistic) Name() string { return "logistic" }

// Gradient implements Objective.
func (l Logistic) Gradient(w []float64, m *dataset.Matrix, idx []int, grad []float64) {
	inv := 1 / float64(len(idx))
	k := 0
	for ; k+4 <= len(idx); k += 4 {
		i0, i1, i2, i3 := idx[k], idx[k+1], idx[k+2], idx[k+3]
		r0, r1, r2, r3 := m.Row(i0), m.Row(i1), m.Row(i2), m.Row(i3)
		d0, d1, d2, d3 := dot4(w, r0, r1, r2, r3)
		y0, y1, y2, y3 := m.Y[i0], m.Y[i1], m.Y[i2], m.Y[i3]
		// d/dw log(1+exp(-y w·x)) = -y x sigmoid(-y w·x)
		c0 := -y0 * Sigmoid(-y0*d0) * inv
		c1 := -y1 * Sigmoid(-y1*d1) * inv
		c2 := -y2 * Sigmoid(-y2*d2) * inv
		c3 := -y3 * Sigmoid(-y3*d3) * inv
		axpy4(c0, c1, c2, c3, r0, r1, r2, r3, grad)
	}
	for ; k < len(idx); k++ {
		r := idx[k]
		row := m.Row(r)
		y := m.Y[r]
		coeff := -y * Sigmoid(-y*Dot(w, row)) * inv
		Axpy(coeff, row, grad)
	}
	if l.L2 > 0 {
		Axpy(l.L2, w, grad)
	}
}

// Loss implements Objective.
func (l Logistic) Loss(w []float64, m *dataset.Matrix) float64 {
	var sum float64
	r := 0
	for ; r+4 <= m.Rows; r += 4 {
		d0, d1, d2, d3 := dot4(w, m.Row(r), m.Row(r+1), m.Row(r+2), m.Row(r+3))
		sum += Log1pExp(-m.Y[r] * d0)
		sum += Log1pExp(-m.Y[r+1] * d1)
		sum += Log1pExp(-m.Y[r+2] * d2)
		sum += Log1pExp(-m.Y[r+3] * d3)
	}
	for ; r < m.Rows; r++ {
		sum += Log1pExp(-m.Y[r] * Dot(w, m.Row(r)))
	}
	loss := sum / float64(m.Rows)
	if l.L2 > 0 {
		n := Norm2(w)
		loss += l.L2 / 2 * n * n
	}
	return loss
}

// Hinge is the linear-SVM objective: loss = max(0, 1 - y w·x) + (L2/2)|w|².
type Hinge struct{ L2 float64 }

// Name implements Objective.
func (Hinge) Name() string { return "hinge" }

// Gradient implements Objective (subgradient at the hinge point). The dot
// products are batched four rows at a time; the subgradient of each active
// row is applied individually and in row order, keeping skip semantics and
// accumulation order identical to the scalar loop.
func (h Hinge) Gradient(w []float64, m *dataset.Matrix, idx []int, grad []float64) {
	inv := 1 / float64(len(idx))
	k := 0
	for ; k+4 <= len(idx); k += 4 {
		i0, i1, i2, i3 := idx[k], idx[k+1], idx[k+2], idx[k+3]
		r0, r1, r2, r3 := m.Row(i0), m.Row(i1), m.Row(i2), m.Row(i3)
		d0, d1, d2, d3 := dot4(w, r0, r1, r2, r3)
		if y := m.Y[i0]; y*d0 < 1 {
			Axpy(-y*inv, r0, grad)
		}
		if y := m.Y[i1]; y*d1 < 1 {
			Axpy(-y*inv, r1, grad)
		}
		if y := m.Y[i2]; y*d2 < 1 {
			Axpy(-y*inv, r2, grad)
		}
		if y := m.Y[i3]; y*d3 < 1 {
			Axpy(-y*inv, r3, grad)
		}
	}
	for ; k < len(idx); k++ {
		r := idx[k]
		row := m.Row(r)
		y := m.Y[r]
		if y*Dot(w, row) < 1 {
			Axpy(-y*inv, row, grad)
		}
	}
	if h.L2 > 0 {
		Axpy(h.L2, w, grad)
	}
}

// Loss implements Objective.
func (h Hinge) Loss(w []float64, m *dataset.Matrix) float64 {
	var sum float64
	r := 0
	for ; r+4 <= m.Rows; r += 4 {
		d0, d1, d2, d3 := dot4(w, m.Row(r), m.Row(r+1), m.Row(r+2), m.Row(r+3))
		if v := 1 - m.Y[r]*d0; v > 0 {
			sum += v
		}
		if v := 1 - m.Y[r+1]*d1; v > 0 {
			sum += v
		}
		if v := 1 - m.Y[r+2]*d2; v > 0 {
			sum += v
		}
		if v := 1 - m.Y[r+3]*d3; v > 0 {
			sum += v
		}
	}
	for ; r < m.Rows; r++ {
		if v := 1 - m.Y[r]*Dot(w, m.Row(r)); v > 0 {
			sum += v
		}
	}
	loss := sum / float64(m.Rows)
	if h.L2 > 0 {
		n := Norm2(w)
		loss += h.L2 / 2 * n * n
	}
	return loss
}

// Squared is the linear-regression objective: loss = (w·x - y)²/2 + (L2/2)|w|².
type Squared struct{ L2 float64 }

// Name implements Objective.
func (Squared) Name() string { return "squared" }

// Gradient implements Objective.
func (s Squared) Gradient(w []float64, m *dataset.Matrix, idx []int, grad []float64) {
	inv := 1 / float64(len(idx))
	k := 0
	for ; k+4 <= len(idx); k += 4 {
		i0, i1, i2, i3 := idx[k], idx[k+1], idx[k+2], idx[k+3]
		r0, r1, r2, r3 := m.Row(i0), m.Row(i1), m.Row(i2), m.Row(i3)
		d0, d1, d2, d3 := dot4(w, r0, r1, r2, r3)
		c0 := (d0 - m.Y[i0]) * inv
		c1 := (d1 - m.Y[i1]) * inv
		c2 := (d2 - m.Y[i2]) * inv
		c3 := (d3 - m.Y[i3]) * inv
		axpy4(c0, c1, c2, c3, r0, r1, r2, r3, grad)
	}
	for ; k < len(idx); k++ {
		r := idx[k]
		row := m.Row(r)
		coeff := (Dot(w, row) - m.Y[r]) * inv
		Axpy(coeff, row, grad)
	}
	if s.L2 > 0 {
		Axpy(s.L2, w, grad)
	}
}

// Loss implements Objective.
func (s Squared) Loss(w []float64, m *dataset.Matrix) float64 {
	var sum float64
	r := 0
	for ; r+4 <= m.Rows; r += 4 {
		d0, d1, d2, d3 := dot4(w, m.Row(r), m.Row(r+1), m.Row(r+2), m.Row(r+3))
		e0 := d0 - m.Y[r]
		e1 := d1 - m.Y[r+1]
		e2 := d2 - m.Y[r+2]
		e3 := d3 - m.Y[r+3]
		sum += e0 * e0 / 2
		sum += e1 * e1 / 2
		sum += e2 * e2 / 2
		sum += e3 * e3 / 2
	}
	for ; r < m.Rows; r++ {
		d := Dot(w, m.Row(r)) - m.Y[r]
		sum += d * d / 2
	}
	loss := sum / float64(m.Rows)
	if s.L2 > 0 {
		n := Norm2(w)
		loss += s.L2 / 2 * n * n
	}
	return loss
}

// ObjectiveByName returns the named objective with the given L2 strength.
func ObjectiveByName(name string, l2 float64) (Objective, error) {
	switch name {
	case "logistic":
		return Logistic{L2: l2}, nil
	case "hinge":
		return Hinge{L2: l2}, nil
	case "squared":
		return Squared{L2: l2}, nil
	default:
		return nil, fmt.Errorf("ml: unknown objective %q", name)
	}
}

// Worker computes gradients over one data shard with its own batch cursor,
// mirroring one serverless function in the BSP loop.
type Worker struct {
	Shard   *dataset.Matrix
	perm    []int
	pos     int
	rng     *sim.Rand
	scratch []float64 // reused by Gradient between calls
}

// NewWorker returns a worker over shard using rng for batch shuffling.
func NewWorker(shard *dataset.Matrix, rng *sim.Rand) *Worker {
	w := &Worker{Shard: shard, rng: rng}
	w.reshuffle()
	return w
}

// reshuffle refills the worker's permutation in place, consuming the same
// RNG draws and producing the same ordering as rng.Perm (so the shuffle
// stream is unchanged) without reallocating.
func (w *Worker) reshuffle() {
	n := w.Shard.Rows
	if cap(w.perm) < n {
		//cescalint:allow hotpath -- amortized: the permutation buffer is sized once per shard; steady-state epochs reuse it
		w.perm = make([]int, n)
	}
	p := w.perm[:n]
	for i := range p {
		j := w.rng.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	w.perm = p
	w.pos = 0
}

// NextBatch returns the indices of the next mini-batch of up to size rows,
// reshuffling when the shard is exhausted.
func (w *Worker) NextBatch(size int) []int {
	if size <= 0 || size > w.Shard.Rows {
		size = w.Shard.Rows
	}
	if w.pos+size > len(w.perm) {
		w.reshuffle()
	}
	b := w.perm[w.pos : w.pos+size]
	w.pos += size
	return b
}

// GradientInto computes the worker's average gradient at weights wvec over
// its next mini-batch of size batch, writing it into the caller-owned grad
// (len(grad) must equal len(wvec); it is zeroed first).
func (w *Worker) GradientInto(obj Objective, wvec []float64, batch int, grad []float64) {
	Zero(grad)
	obj.Gradient(wvec, w.Shard, w.NextBatch(batch), grad)
}

// Gradient computes the worker's average gradient at weights wvec over its
// next mini-batch of size batch. The returned slice is the worker's own
// scratch buffer: it is valid until the next Gradient call on this worker,
// which keeps the steady-state loop allocation-free. Callers that need the
// value to outlive the next call must copy it (or use GradientInto).
func (w *Worker) Gradient(obj Objective, wvec []float64, batch int) []float64 {
	if cap(w.scratch) < len(wvec) {
		w.scratch = make([]float64, len(wvec))
	}
	g := w.scratch[:len(wvec)]
	w.GradientInto(obj, wvec, batch, g)
	return g
}

// Config parameterizes a BSP training run.
type Config struct {
	Objective    Objective
	Workers      int
	BatchPerWkr  int // mini-batch rows per worker per iteration
	LearningRate float64
	Seed         uint64
}

// Trainer runs synchronous (BSP) mini-batch SGD across in-memory workers.
// The simulated serverless trainer wraps this with timing, billing and
// storage routing; Trainer itself is pure math and is also usable directly.
type Trainer struct {
	cfg     Config
	data    *dataset.Matrix
	workers []*Worker
	weights []float64
	epoch   int

	// Pre-sized scratch for the BSP loop: one backing array holding every
	// worker's gradient plus the aggregation vector, so the steady-state
	// epoch path allocates nothing.
	grads [][]float64
	sum   []float64
}

// parallelGradFloor is the per-worker batch work (rows × features) below
// which fanning gradient computation out to goroutines costs more than it
// saves; typical SHA-trial batches sit far below it, so the steady-state
// path stays single-threaded, deterministic and allocation-free.
const parallelGradFloor = 1 << 17

// NewTrainer partitions data across cfg.Workers workers and zero-initializes
// the model. Sharding goes through the dataset shard cache, so concurrent
// trials over the same matrix share one read-only partitioning.
func NewTrainer(data *dataset.Matrix, cfg Config) (*Trainer, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("ml: need at least one worker, got %d", cfg.Workers)
	}
	if cfg.Objective == nil {
		return nil, fmt.Errorf("ml: nil objective")
	}
	if cfg.LearningRate <= 0 {
		return nil, fmt.Errorf("ml: non-positive learning rate %g", cfg.LearningRate)
	}
	if data.Rows < cfg.Workers {
		return nil, fmt.Errorf("ml: %d rows cannot feed %d workers", data.Rows, cfg.Workers)
	}
	t := &Trainer{cfg: cfg, data: data, weights: make([]float64, data.Cols)}
	shards := data.Shards(cfg.Workers)
	seedRng := sim.NewRand(cfg.Seed)
	for i, sh := range shards {
		t.workers = append(t.workers, NewWorker(sh, sim.NewRand(seedRng.Uint64()+uint64(i))))
	}
	buf := make([]float64, (len(t.workers)+1)*data.Cols)
	t.grads = make([][]float64, len(t.workers))
	for i := range t.grads {
		t.grads[i] = buf[i*data.Cols : (i+1)*data.Cols]
	}
	t.sum = buf[len(t.workers)*data.Cols:]
	return t, nil
}

// Weights returns the live weight vector (callers must not mutate it).
func (t *Trainer) Weights() []float64 { return t.weights }

// SetWeights replaces the model (used when resuming after a resource
// adjustment restart).
func (t *Trainer) SetWeights(w []float64) { t.weights = Clone(w) }

// Epoch reports how many epochs have completed.
func (t *Trainer) Epoch() int { return t.epoch }

// IterationsPerEpoch returns how many BSP iterations one epoch takes: each
// worker consumes its shard once per epoch, batch rows at a time.
func (t *Trainer) IterationsPerEpoch() int {
	minRows := t.workers[0].Shard.Rows
	for _, w := range t.workers[1:] {
		if w.Shard.Rows < minRows {
			minRows = w.Shard.Rows
		}
	}
	b := t.cfg.BatchPerWkr
	if b <= 0 || b > minRows {
		b = minRows
	}
	k := minRows / b
	if k < 1 {
		k = 1
	}
	return k
}

// WorkerGradients computes each worker's mini-batch gradient at the current
// weights. The returned slices are the trainer's pre-sized scratch buffers:
// they are valid until the next WorkerGradients or RunIteration call. Small
// batches are computed inline (per-worker RNG streams make the result
// independent of execution order); large ones fan out across OS threads.
func (t *Trainer) WorkerGradients() [][]float64 {
	batch := t.cfg.BatchPerWkr
	if batch <= 0 || batch > t.workers[0].Shard.Rows {
		batch = t.workers[0].Shard.Rows
	}
	if len(t.workers) > 1 && runtime.GOMAXPROCS(0) > 1 && batch*t.data.Cols >= parallelGradFloor {
		//cescalint:allow hotpath -- large-batch fan-out: steady-state batches sit below parallelGradFloor and take the inline loop
		return t.parallelGradients()
	}
	for i, w := range t.workers {
		w.GradientInto(t.cfg.Objective, t.weights, t.cfg.BatchPerWkr, t.grads[i])
	}
	return t.grads
}

// parallelGradients fans the per-worker gradient computation out across OS
// threads. Per-worker RNG streams make the result independent of execution
// order, so it is bit-identical to the inline loop; it allocates (WaitGroup
// closures, semaphore channel) and is only taken above parallelGradFloor.
func (t *Trainer) parallelGradients() [][]float64 {
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, w := range t.workers {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, w *Worker) {
			defer wg.Done()
			w.GradientInto(t.cfg.Objective, t.weights, t.cfg.BatchPerWkr, t.grads[i])
			<-sem
		}(i, w)
	}
	wg.Wait()
	return t.grads
}

// ApplyAggregate applies the sum of worker gradients (dividing by the number
// of workers to average) with one SGD step.
func (t *Trainer) ApplyAggregate(sum []float64) {
	Axpy(-t.cfg.LearningRate/float64(len(t.workers)), sum, t.weights)
}

// RunIteration performs one full BSP iteration in-memory (gradients +
// aggregate + step) and is the building block RunEpoch uses. The
// aggregation reuses the trainer's scratch vector and folds worker
// gradients in index order, so it allocates nothing and matches the
// sequential reduction bit for bit.
func (t *Trainer) RunIteration() {
	grads := t.WorkerGradients()
	Zero(t.sum)
	for _, g := range grads {
		Add(g, t.sum)
	}
	t.ApplyAggregate(t.sum)
}

// RunEpoch performs one epoch of BSP iterations and returns the full-data
// training loss at the end of the epoch. This is the engine's steady-state
// entry point — one call per simulated epoch across every trial — and the
// whole iteration chain beneath it (WorkerGradients, GradientInto, batch
// cursoring, aggregation, the epoch-end Loss) is verified allocation-free.
//
//cescalint:hotpath
func (t *Trainer) RunEpoch() float64 {
	k := t.IterationsPerEpoch()
	for i := 0; i < k; i++ {
		t.RunIteration()
	}
	t.epoch++
	return t.Loss()
}

// Loss returns the average loss over the entire dataset at the current
// weights.
func (t *Trainer) Loss() float64 {
	return t.cfg.Objective.Loss(t.weights, t.data)
}

// Accuracy returns classification accuracy (sign agreement) over the whole
// dataset; it is meaningful only for ±1-labelled data.
func (t *Trainer) Accuracy() float64 {
	correct := 0
	for r := 0; r < t.data.Rows; r++ {
		pred := 1.0
		if Dot(t.weights, t.data.Row(r)) < 0 {
			pred = -1
		}
		if pred == t.data.Y[r] {
			correct++
		}
	}
	return float64(correct) / float64(t.data.Rows)
}

// TrainToLoss runs epochs until the loss reaches target or maxEpochs is hit,
// returning the per-epoch loss trace.
func (t *Trainer) TrainToLoss(target float64, maxEpochs int) []float64 {
	var trace []float64
	for e := 0; e < maxEpochs; e++ {
		loss := t.RunEpoch()
		trace = append(trace, loss)
		if loss <= target || math.IsNaN(loss) {
			break
		}
	}
	return trace
}
