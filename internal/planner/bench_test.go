package planner

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/workload"
)

func benchPlanner(b *testing.B) *Planner {
	b.Helper()
	m := cost.NewModel(workload.MobileNet())
	pareto := m.ParetoSet(cost.DefaultGrid())
	pl, err := New(m, SHAStages(256, 2, 2), pareto)
	if err != nil {
		b.Fatal(err)
	}
	return pl
}

func BenchmarkPlanMinJCT(b *testing.B) {
	pl := benchPlanner(b)
	budget := pl.OptimalStatic(0, 1e15).Cost * 1.3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := pl.PlanMinJCT(budget); !res.Feasible {
			b.Fatal("infeasible")
		}
	}
}

func BenchmarkExactMinJCT(b *testing.B) {
	pl := benchPlanner(b)
	budget := pl.OptimalStatic(0, 1e15).Cost * 1.3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := pl.ExactMinJCT(budget, 2000); !ok {
			b.Fatal("no plan")
		}
	}
}
