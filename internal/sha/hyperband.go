package sha

import (
	"fmt"
	"math"

	"repro/internal/planner"
	"repro/internal/trainer"
	"repro/internal/workload"
)

// Hyperband runs several Successive-Halving brackets that trade the number
// of configurations against the per-configuration epoch budget (Li et al.;
// the paper notes in §II-A that its partitioning applies to such
// SHA-derived tuners unchanged, and this driver demonstrates it: each
// bracket's stage structure feeds the same greedy heuristic planner).
type HyperbandConfig struct {
	Workload *workload.Model
	// MaxEpochs is R: the largest epoch budget any single trial may get.
	MaxEpochs int
	// Eta is the reduction factor (default 3, Hyperband's canonical value).
	Eta int
	// PlanBracket maps a bracket's stage structure to a partitioning plan
	// (CE-scaling's planner, a static plan, ...). Required.
	PlanBracket func(stages []planner.Stage) (planner.Plan, error)
	Runner      *trainer.Runner
	Seed        uint64
}

// Bracket describes one Hyperband bracket before execution.
type Bracket struct {
	S      int // bracket index (s_max down to 0)
	Stages []planner.Stage
}

// BracketReport is one executed bracket.
type BracketReport struct {
	Bracket  Bracket
	Result   *Result
	BestLoss float64
}

// HyperbandResult aggregates the full run.
type HyperbandResult struct {
	Brackets  []BracketReport
	Best      *Trial
	JCT       float64 // brackets run sequentially
	TotalCost float64
}

// Brackets enumerates the Hyperband bracket structure for (R, eta):
// s_max = floor(log_eta R); bracket s starts with
// n = ceil((s_max+1)/(s+1) * eta^s) trials at r = R / eta^s epochs, then
// halves by eta while multiplying the per-stage epochs by eta.
func Brackets(maxEpochs, eta int) []Bracket {
	if eta < 2 {
		eta = 3
	}
	sMax := int(math.Floor(math.Log(float64(maxEpochs)) / math.Log(float64(eta))))
	var out []Bracket
	for s := sMax; s >= 0; s-- {
		n := int(math.Ceil(float64(sMax+1) / float64(s+1) * math.Pow(float64(eta), float64(s))))
		r := float64(maxEpochs) * math.Pow(float64(eta), -float64(s))
		var stages []planner.Stage
		trials := n
		epochs := r
		for i := 0; i <= s; i++ {
			e := int(math.Max(1, math.Round(epochs)))
			stages = append(stages, planner.Stage{Trials: trials, Epochs: e})
			trials = int(math.Max(1, math.Floor(float64(trials)/float64(eta))))
			epochs *= float64(eta)
		}
		out = append(out, Bracket{S: s, Stages: stages})
	}
	return out
}

// RunHyperband executes every bracket sequentially and returns the overall
// winner (lowest final loss across brackets).
func RunHyperband(cfg HyperbandConfig) (*HyperbandResult, error) {
	if cfg.Workload == nil || cfg.Runner == nil || cfg.PlanBracket == nil {
		return nil, fmt.Errorf("sha: hyperband needs workload, runner and a bracket planner")
	}
	if cfg.Eta < 2 {
		cfg.Eta = 3
	}
	if cfg.MaxEpochs < cfg.Eta {
		return nil, fmt.Errorf("sha: MaxEpochs %d below eta %d", cfg.MaxEpochs, cfg.Eta)
	}
	out := &HyperbandResult{}
	for bi, br := range Brackets(cfg.MaxEpochs, cfg.Eta) {
		if br.Stages[0].Trials < 2 {
			// A single-trial bracket is plain training, not tuning; still
			// runnable but cannot halve. Run it as one stage.
			br.Stages = br.Stages[:1]
		}
		plan, err := cfg.PlanBracket(br.Stages)
		if err != nil {
			return nil, fmt.Errorf("sha: planning bracket s=%d: %w", br.S, err)
		}
		res, err := Run(Config{
			Workload: cfg.Workload,
			Trials:   br.Stages[0].Trials,
			Eta:      cfg.Eta,
			Stages:   br.Stages,
			Plan:     plan,
			Runner:   cfg.Runner,
			Seed:     cfg.Seed + uint64(bi)*1009,
		})
		if err != nil {
			return nil, fmt.Errorf("sha: bracket s=%d: %w", br.S, err)
		}
		out.Brackets = append(out.Brackets, BracketReport{
			Bracket: br, Result: res, BestLoss: res.BestTrial.Loss,
		})
		out.JCT += res.JCT
		out.TotalCost += res.TotalCost
		if out.Best == nil || res.BestTrial.Loss < out.Best.Loss {
			out.Best = res.BestTrial
		}
	}
	return out, nil
}
