package ml

import "math"

// Dot returns the inner product of a and b; the slices must have equal
// length (callers guarantee this; a mismatch panics via bounds checks).
func Dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes y += alpha * x in place.
func Axpy(alpha float64, x, y []float64) {
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Zero clears x in place.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Clone returns a copy of x.
func Clone(x []float64) []float64 {
	c := make([]float64, len(x))
	copy(c, x)
	return c
}

// Add computes y += x element-wise in place.
func Add(x, y []float64) {
	for i, v := range x {
		y[i] += v
	}
}

// Sigmoid returns 1/(1+e^-z), computed stably for large |z|.
func Sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// Log1pExp returns log(1 + e^z) without overflow.
func Log1pExp(z float64) float64 {
	if z > 30 {
		return z
	}
	if z < -30 {
		return math.Exp(z)
	}
	return math.Log1p(math.Exp(z))
}
