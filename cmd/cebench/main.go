// Command cebench regenerates the paper's evaluation artifacts on the
// simulated substrate.
//
// Usage:
//
//	cebench [-seed N] <experiment-id>... | all | list
//
// Experiment ids follow the paper's numbering: fig3, fig4, fig7, fig9,
// fig10, fig11, fig12, fig13, fig14, fig15, fig16, fig17, fig18, fig19,
// fig20, fig21a, fig21b, fig21c, tab1, tab2, tab4.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", 2023, "deterministic experiment seed")
	format := flag.String("format", "text", "output format: text | json | csv | html")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cebench [-seed N] [-format text|json|csv] <experiment-id>... | all | list\n\nexperiments:\n")
		for _, id := range experiments.IDs() {
			fmt.Fprintf(os.Stderr, "  %s\n", id)
		}
	}
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if args[0] == "list" {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	ids := args
	if args[0] == "all" {
		ids = experiments.IDs()
	}
	exit := 0
	var collected []*experiments.Table
	for _, id := range ids {
		start := time.Now()
		tab, err := experiments.Run(id, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cebench: %s: %v\n", id, err)
			exit = 1
			continue
		}
		switch *format {
		case "json", "html":
			collected = append(collected, tab)
		case "csv":
			fmt.Print(tab.CSV())
			fmt.Println()
		default:
			fmt.Print(tab.String())
			fmt.Printf("(generated in %s)\n\n", time.Since(start).Round(time.Millisecond))
		}
	}
	switch {
	case *format == "json" && len(collected) > 0:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(collected); err != nil {
			fmt.Fprintf(os.Stderr, "cebench: encoding: %v\n", err)
			exit = 1
		}
	case *format == "html" && len(collected) > 0:
		fmt.Print(experiments.HTMLReport(collected))
	}
	os.Exit(exit)
}
