package trainer

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteTraceCSV writes a job's per-epoch trace as CSV (header row first):
// epoch, loss, allocation dimensions, wall time and cost components. The
// cescale CLI exposes this for offline analysis of scheduling decisions.
func WriteTraceCSV(w io.Writer, trace []EpochReport) error {
	cw := csv.NewWriter(w)
	header := []string{
		"epoch", "loss", "functions", "memory_mb", "storage",
		"time_sec", "compute_sec", "sync_sec", "cost_usd", "storage_cost_usd",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, e := range trace {
		row := []string{
			fmt.Sprintf("%d", e.Epoch),
			fmt.Sprintf("%.6f", e.Loss),
			fmt.Sprintf("%d", e.Alloc.N),
			fmt.Sprintf("%d", e.Alloc.MemMB),
			e.Alloc.Storage.String(),
			fmt.Sprintf("%.3f", e.Time),
			fmt.Sprintf("%.3f", e.ComputeTime),
			fmt.Sprintf("%.3f", e.SyncTime),
			fmt.Sprintf("%.6f", e.Cost),
			fmt.Sprintf("%.6f", e.StorageCost),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
