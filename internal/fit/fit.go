// Package fit provides small-scale nonlinear least squares (a damped
// Gauss-Newton / Levenberg-Marquardt solver) for the convergence-curve
// families used in online epoch prediction. Following Optimus [16] and the
// paper's loss-curve fitter, training loss is modeled as
//
//	l(e) = 1/(a*e + b) + c      (InverseLinear)
//
// with a > 0, b > 0: loss decreases hyperbolically toward the floor c.
// A power-law family l(e) = a*e^(-b) + c is provided as an alternative.
package fit

import (
	"errors"
	"fmt"
	"math"
)

// Model is a parametric curve family for least-squares fitting. Eval,
// Jacobian, and Clamp run once per data point per solver iteration inside
// Fitter.Fit, so they are hotpath-annotated: every implementation must be
// allocation-free (cescalint enforces this). Guess may allocate — the
// Fitter prefers the GuessInto seam and only falls back to Guess for
// models outside the built-in families.
type Model interface {
	// NumParams returns the parameter count p.
	NumParams() int
	// Eval returns the model value at x under params (length p).
	//
	//cescalint:hotpath
	Eval(params []float64, x float64) float64
	// Jacobian writes d(Eval)/d(params) at x into out (length p).
	//
	//cescalint:hotpath
	Jacobian(params []float64, x float64, out []float64)
	// Guess returns a starting point from the data.
	Guess(xs, ys []float64) []float64
	// Clamp projects params back into the model's valid region in place.
	//
	//cescalint:hotpath
	Clamp(params []float64)
}

// InverseLinear is l(x) = 1/(a*x + b) + c with a, b > 0.
type InverseLinear struct{}

// NumParams implements Model.
func (InverseLinear) NumParams() int { return 3 }

// Eval implements Model.
func (InverseLinear) Eval(p []float64, x float64) float64 {
	return 1/(p[0]*x+p[1]) + p[2]
}

// Jacobian implements Model.
func (InverseLinear) Jacobian(p []float64, x float64, out []float64) {
	den := p[0]*x + p[1]
	inv2 := -1 / (den * den)
	out[0] = inv2 * x
	out[1] = inv2
	out[2] = 1
}

// Guess implements Model: assume the last observation is near the floor and
// the first sets the initial offset.
func (m InverseLinear) Guess(xs, ys []float64) []float64 {
	out := make([]float64, 3)
	m.GuessInto(xs, ys, out)
	return out
}

// GuessInto is Guess without the allocation: it writes the starting point
// into out (length 3). The Fitter uses it to keep cold fits heap-free.
func (InverseLinear) GuessInto(xs, ys, out []float64) {
	first, last := ys[0], ys[len(ys)-1]
	c := last - 0.1*math.Abs(first-last) - 1e-3
	b := 1.0
	if diff := first - c; diff > 1e-9 {
		b = 1 / diff
	}
	a := 0.1
	if n := len(xs); n > 1 {
		if diff := ys[n-1] - c; diff > 1e-9 && xs[n-1] > xs[0] {
			a = (1/diff - b) / (xs[n-1] - xs[0])
			if a <= 0 {
				a = 0.1
			}
		}
	}
	out[0], out[1], out[2] = a, b, c
}

// Clamp implements Model.
func (InverseLinear) Clamp(p []float64) {
	if p[0] < 1e-9 {
		p[0] = 1e-9
	}
	if p[1] < 1e-9 {
		p[1] = 1e-9
	}
}

// PowerLaw is l(x) = a*x^(-b) + c with a > 0, b in (0, 5].
type PowerLaw struct{}

// NumParams implements Model.
func (PowerLaw) NumParams() int { return 3 }

// Eval implements Model.
func (PowerLaw) Eval(p []float64, x float64) float64 {
	if x < 1e-12 {
		x = 1e-12
	}
	return p[0]*math.Pow(x, -p[1]) + p[2]
}

// Jacobian implements Model.
func (PowerLaw) Jacobian(p []float64, x float64, out []float64) {
	if x < 1e-12 {
		x = 1e-12
	}
	xb := math.Pow(x, -p[1])
	out[0] = xb
	out[1] = -p[0] * xb * math.Log(x)
	out[2] = 1
}

// Guess implements Model.
func (m PowerLaw) Guess(xs, ys []float64) []float64 {
	out := make([]float64, 3)
	m.GuessInto(xs, ys, out)
	return out
}

// GuessInto is Guess without the allocation (see InverseLinear.GuessInto).
func (PowerLaw) GuessInto(xs, ys, out []float64) {
	first, last := ys[0], ys[len(ys)-1]
	c := last - 0.1*math.Abs(first-last) - 1e-3
	a := first - c
	if a <= 0 {
		a = 1
	}
	out[0], out[1], out[2] = a, 0.5, c
}

// Clamp implements Model.
func (PowerLaw) Clamp(p []float64) {
	if p[0] < 1e-9 {
		p[0] = 1e-9
	}
	if p[1] < 1e-3 {
		p[1] = 1e-3
	}
	if p[1] > 5 {
		p[1] = 5
	}
}

// Options tunes the solver.
type Options struct {
	MaxIter int     // default 200
	Tol     float64 // relative SSE improvement tolerance, default 1e-10
}

// ErrInsufficientData is returned when there are fewer points than params.
var ErrInsufficientData = errors.New("fit: fewer observations than parameters")

// Result carries the fitted parameters and goodness of fit.
type Result struct {
	Params []float64
	SSE    float64 // sum of squared residuals
	RMSE   float64
	Iters  int
}

// Fit solves min_params sum_i (model(x_i) - y_i)^2 by Levenberg-Marquardt.
func Fit(m Model, xs, ys []float64, opts Options) (Result, error) {
	if len(xs) != len(ys) {
		return Result{}, fmt.Errorf("fit: len(xs)=%d != len(ys)=%d", len(xs), len(ys))
	}
	p := m.NumParams()
	n := len(xs)
	if n < p {
		return Result{}, fmt.Errorf("%w: %d < %d", ErrInsufficientData, n, p)
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 200
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-10
	}

	params := m.Guess(xs, ys)
	m.Clamp(params)
	sse := sumSquares(m, params, xs, ys)
	lambda := 1e-3

	jac := make([]float64, p)
	jtj := make([][]float64, p)
	for i := range jtj {
		jtj[i] = make([]float64, p)
	}
	jtr := make([]float64, p)
	iters := 0

	for ; iters < opts.MaxIter; iters++ {
		// Build normal equations J^T J and J^T r.
		for i := range jtj {
			for j := range jtj[i] {
				jtj[i][j] = 0
			}
			jtr[i] = 0
		}
		for k := 0; k < n; k++ {
			m.Jacobian(params, xs[k], jac)
			r := m.Eval(params, xs[k]) - ys[k]
			for i := 0; i < p; i++ {
				jtr[i] += jac[i] * r
				for j := 0; j <= i; j++ {
					jtj[i][j] += jac[i] * jac[j]
				}
			}
		}
		for i := 0; i < p; i++ {
			for j := i + 1; j < p; j++ {
				jtj[i][j] = jtj[j][i]
			}
		}

		improved := false
		for attempt := 0; attempt < 20; attempt++ {
			delta, ok := solveDamped(jtj, jtr, lambda)
			if !ok {
				lambda *= 10
				continue
			}
			trial := make([]float64, p)
			for i := range trial {
				trial[i] = params[i] - delta[i]
			}
			m.Clamp(trial)
			trialSSE := sumSquares(m, trial, xs, ys)
			if trialSSE < sse {
				rel := (sse - trialSSE) / (sse + 1e-30)
				params, sse = trial, trialSSE
				lambda = math.Max(lambda/3, 1e-12)
				improved = true
				if rel < opts.Tol {
					iters++
					return finish(params, sse, n, iters), nil
				}
				break
			}
			lambda *= 10
			if lambda > 1e12 {
				break
			}
		}
		if !improved {
			break
		}
	}
	return finish(params, sse, n, iters), nil
}

func finish(params []float64, sse float64, n, iters int) Result {
	return Result{Params: params, SSE: sse, RMSE: math.Sqrt(sse / float64(n)), Iters: iters}
}

func sumSquares(m Model, params, xs, ys []float64) float64 {
	var s float64
	for i := range xs {
		r := m.Eval(params, xs[i]) - ys[i]
		s += r * r
	}
	return s
}

// solveDamped solves (A + lambda*diag(A)) x = b by Gaussian elimination with
// partial pivoting; ok=false when the system is singular.
func solveDamped(a [][]float64, b []float64, lambda float64) ([]float64, bool) {
	p := len(b)
	// Copy with Marquardt damping on the diagonal.
	m := make([][]float64, p)
	for i := range m {
		m[i] = make([]float64, p+1)
		copy(m[i], a[i])
		d := a[i][i] * lambda
		if d == 0 {
			d = lambda
		}
		m[i][i] += d
		m[i][p] = b[i]
	}
	for col := 0; col < p; col++ {
		pivot := col
		for r := col + 1; r < p; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-300 {
			return nil, false
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := col + 1; r < p; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c <= p; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, p)
	for i := p - 1; i >= 0; i-- {
		s := m[i][p]
		for j := i + 1; j < p; j++ {
			s -= m[i][j] * x[j]
		}
		x[i] = s / m[i][i]
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, false
		}
	}
	return x, true
}

// MaxSolvableX bounds what SolveForX will report as a meaningful epoch
// count. A target epsilon above the asymptote c makes 1/(target-c) overflow
// toward +Inf; anything beyond this bound is "the curve effectively never
// gets there" and must be ok=false, not a non-finite value leaked to
// callers whose contract promises a usable x.
const MaxSolvableX = 1e9

// SolveForX returns the smallest x >= 1 at which the fitted InverseLinear
// curve reaches target, or ok=false when the curve never reaches it (target
// at or below the asymptote c) or only reaches it at an absurd x (target so
// close to c that 1/(target-c) is non-finite or beyond MaxSolvableX).
func SolveForX(params []float64, target float64) (float64, bool) {
	a, b, c := params[0], params[1], params[2]
	if target <= c || a <= 0 {
		return 0, false
	}
	x := (1/(target-c) - b) / a
	if math.IsNaN(x) || math.IsInf(x, 0) || x > MaxSolvableX {
		return 0, false
	}
	if x < 1 {
		x = 1
	}
	return x, true
}
