package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/obs"
)

// renderMacro runs macro-day at the given kernel configuration and returns
// the rendered table plus the merged trace and metrics exports.
func renderMacro(t *testing.T, seed uint64, shards, workers int) (table, trace, metrics string) {
	t.Helper()
	SetMacroSharding(shards, workers)
	defer SetMacroSharding(0, 0)
	c := obs.NewCollector()
	SetCollector(c)
	defer SetCollector(nil)

	tab, err := Run("macro-day", seed)
	if err != nil {
		t.Fatalf("macro-day(shards=%d workers=%d): %v", shards, workers, err)
	}
	var tb, mb bytes.Buffer
	if err := obs.WriteJSONL(&tb, c.Scopes()); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteMetricsJSON(&mb, c.Scopes()); err != nil {
		t.Fatal(err)
	}
	return tab.String(), tb.String(), mb.String()
}

// TestMacroDayShardMatrix is the acceptance gate for the sharded kernel:
// the macro scenario's table, trace export and metrics export must be
// byte-identical at every (shards, workers) combination, including the
// parallel executor, because the merge order of every simultaneous event
// pair is pinned by globally unique priorities.
func TestMacroDayShardMatrix(t *testing.T) {
	SetMacroScale(9, 300)
	defer SetMacroScale(0, 0)

	refTab, refTrace, refMetrics := renderMacro(t, 11, 1, 1)
	if refTrace == "" || len(refTrace) < 100 {
		t.Fatalf("reference trace implausibly small: %d bytes", len(refTrace))
	}
	for _, shards := range []int{1, 2, 8} {
		for _, workers := range []int{1, 8} {
			if shards == 1 && workers == 1 {
				continue
			}
			name := fmt.Sprintf("shards=%d,workers=%d", shards, workers)
			tab, trace, metrics := renderMacro(t, 11, shards, workers)
			if tab != refTab {
				t.Errorf("%s: table diverges from shards=1,workers=1:\n--- ref\n%s\n--- got\n%s", name, refTab, tab)
			}
			if trace != refTrace {
				t.Errorf("%s: trace export diverges (%d vs %d bytes)", name, len(refTrace), len(trace))
			}
			if metrics != refMetrics {
				t.Errorf("%s: metrics export diverges", name)
			}
		}
	}
}

// TestMacroDaySeedSensitivity guards against the scenario collapsing into
// a constant: different seeds must produce different traffic.
func TestMacroDaySeedSensitivity(t *testing.T) {
	SetMacroScale(4, 120)
	defer SetMacroScale(0, 0)
	a, err := Run("macro-day", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("macro-day", 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() == b.String() {
		t.Fatal("macro-day output identical across seeds")
	}
}

// TestMacroDayExercisesContention checks the scenario actually stresses the
// shared-account paths: the default-scale run must record retries and warm
// starts, and the coordinator must have run shedding windows.
func TestMacroDayExercisesContention(t *testing.T) {
	if testing.Short() {
		t.Skip("default-scale macro run skipped in -short mode")
	}
	tab, err := Run("macro-day", 7)
	if err != nil {
		t.Fatal(err)
	}
	total := tab.Rows[len(tab.Rows)-1]
	// Columns: class tenants memMB completed retried shed dropped cold cost$.
	if total[3] == "0" {
		t.Error("no completions")
	}
	if total[4] == "0" {
		t.Error("no retries: concurrency caps never bound")
	}
	if total[5] == "0" {
		t.Error("no sheds: coordinator feedback loop never fired")
	}
	if total[7] == "0" {
		t.Error("no cold starts")
	}
}
