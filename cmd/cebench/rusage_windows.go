package main

import "errors"

// peakRSSKB has no getrusage equivalent wired up on Windows; -rusage
// reports the limitation instead of silently printing nothing.
func peakRSSKB() (int64, error) {
	return 0, errors.New("peak RSS reporting not supported on windows")
}
