package faas

import (
	"errors"
	"math"
	"testing"

	"repro/internal/obs"
	"repro/internal/pricing"
	"repro/internal/sim"
)

// --- warm-pool expiry bookkeeping (FIFO head-pop regression tests) ---

// TestWarmPoolInterleavings drives the exact sequence the bugfix targets:
// Prewarm → takeWarm (via InvokeGroup) → TTL-fire → DropWarm, checking the
// count and pending-reclaim invariants after every step.
func TestWarmPoolInterleavings(t *testing.T) {
	s := sim.New(1)
	p := NewDefault(s)

	if err := p.Prewarm(5, 1769); err != nil {
		t.Fatal(err)
	}
	if p.WarmCount(1769) != 5 || p.PendingExpiries(1769) != 5 || p.WarmTotal() != 5 {
		t.Fatalf("after Prewarm: warm=%d pending=%d total=%d", p.WarmCount(1769), p.PendingExpiries(1769), p.WarmTotal())
	}

	// Consume two warm sandboxes before any reclaim fires: both the count
	// and the pending-reclaim queue must shrink in lockstep.
	s.RunUntil(sim.Time(p.WarmTTL / 2))
	if _, err := p.InvokeGroup(2, 1769); err != nil {
		t.Fatal(err)
	}
	if p.WarmCount(1769) != 3 || p.PendingExpiries(1769) != 3 {
		t.Fatalf("after takeWarm x2: warm=%d pending=%d", p.WarmCount(1769), p.PendingExpiries(1769))
	}

	// Let the remaining three reclaims fire.
	s.RunUntil(sim.Time(p.WarmTTL + 1))
	if p.WarmCount(1769) != 0 || p.PendingExpiries(1769) != 0 || p.WarmTotal() != 0 {
		t.Fatalf("after TTL fire: warm=%d pending=%d total=%d", p.WarmCount(1769), p.PendingExpiries(1769), p.WarmTotal())
	}

	// Release the in-flight group: sandboxes come back warm with fresh
	// reclaims; DropWarm must cancel them all without disturbing later runs.
	p.ReleaseGroup(2, 1769, 10)
	if p.WarmCount(1769) != 2 || p.PendingExpiries(1769) != 2 {
		t.Fatalf("after release: warm=%d pending=%d", p.WarmCount(1769), p.PendingExpiries(1769))
	}
	p.DropWarm(1769)
	if p.WarmCount(1769) != 0 || p.PendingExpiries(1769) != 0 || p.WarmTotal() != 0 {
		t.Fatalf("after DropWarm: warm=%d pending=%d total=%d", p.WarmCount(1769), p.PendingExpiries(1769), p.WarmTotal())
	}
	s.RunUntil(1e9)
	if p.WarmCount(1769) != 0 || p.WarmTotal() != 0 {
		t.Fatalf("cancelled reclaims still fired: warm=%d total=%d", p.WarmCount(1769), p.WarmTotal())
	}
}

// TestWarmPoolChurnKeepsBookkeepingConsistent hammers the queue through many
// Prewarm/consume/expire rounds across two memory sizes — the Prewarm-scale
// churn that made the old identity-scan removal quadratic — and checks the
// invariant pending == warm (which holds while WarmTTL is enabled and
// constant) the whole way.
func TestWarmPoolChurnKeepsBookkeepingConsistent(t *testing.T) {
	s := sim.New(7)
	p := NewDefault(s)
	p.WarmLimit = 0 // exercise churn beyond any cap

	check := func(step string) {
		t.Helper()
		for _, mem := range []int{512, 1769} {
			if p.PendingExpiries(mem) != p.WarmCount(mem) {
				t.Fatalf("%s: mem=%d pending=%d != warm=%d", step, mem, p.PendingExpiries(mem), p.WarmCount(mem))
			}
		}
		if p.WarmTotal() != p.WarmCount(512)+p.WarmCount(1769) {
			t.Fatalf("%s: warmTotal=%d != %d+%d", step, p.WarmTotal(), p.WarmCount(512), p.WarmCount(1769))
		}
	}

	for round := 0; round < 60; round++ {
		mem := 512
		if round%2 == 1 {
			mem = 1769
		}
		if err := p.Prewarm(40, mem); err != nil {
			t.Fatal(err)
		}
		check("prewarm")
		// Consume some warm sandboxes (partial: leaves reclaims pending).
		if _, err := p.InvokeGroup(15, mem); err != nil {
			t.Fatal(err)
		}
		check("invoke")
		p.ReleaseGroup(15, mem, 1)
		check("release")
		// Advance partway so later rounds interleave with earlier
		// rounds' reclaims firing.
		s.RunUntil(s.Now() + sim.Time(p.WarmTTL/7))
		check("advance")
	}
	s.RunUntil(s.Now() + sim.Time(p.WarmTTL+1))
	check("drain")
	if p.WarmTotal() != 0 {
		t.Fatalf("pool not fully reclaimed after drain: %d", p.WarmTotal())
	}
}

// TestWarmExpiryLoweredTTLClampsToScheduleOrder: lowering WarmTTL mid-run
// must not let a later-provisioned sandbox expire before earlier ones. The
// expiry queue's head-pop fast path and takeWarm's cancel-the-earliest both
// assume reclaims fire in schedule (FIFO) order — before the fix a lowered
// TTL scheduled new reclaims ahead of pending ones, violating that order:
// the new sandboxes died first, takeWarm cancelled the wrong (out-of-order)
// reclaims, and removal degraded to the O(n) scan fallback. The fix clamps
// a new reclaim to fire no earlier than the queue's latest pending
// deadline, so the pool drains oldest-first at every TTL setting.
func TestWarmExpiryLoweredTTLClampsToScheduleOrder(t *testing.T) {
	s := sim.New(1)
	p := NewDefault(s)

	if err := p.Prewarm(2, 1769); err != nil { // reclaims scheduled for t=600
		t.Fatal(err)
	}
	p.WarmTTL = 10
	if err := p.Prewarm(2, 1769); err != nil { // t=10 nominal, clamped to 600
		t.Fatal(err)
	}
	// Nothing may expire before the earlier sandboxes' deadline: the
	// later-provisioned pair is clamped behind them, not reclaimed first.
	s.RunUntil(20)
	if p.WarmCount(1769) != 4 || p.PendingExpiries(1769) != 4 {
		t.Fatalf("lowered TTL fired ahead of pending reclaims: warm=%d pending=%d, want 4/4",
			p.WarmCount(1769), p.PendingExpiries(1769))
	}
	// Consuming one sandbox still cancels the earliest pending reclaim.
	if _, err := p.InvokeGroup(1, 1769); err != nil {
		t.Fatal(err)
	}
	if p.WarmCount(1769) != 3 || p.PendingExpiries(1769) != 3 {
		t.Fatalf("after takeWarm: warm=%d pending=%d", p.WarmCount(1769), p.PendingExpiries(1769))
	}
	s.RunUntil(601)
	if p.WarmCount(1769) != 0 || p.PendingExpiries(1769) != 0 {
		t.Fatalf("after clamped fire: warm=%d pending=%d", p.WarmCount(1769), p.PendingExpiries(1769))
	}

	// Once the old deadlines have passed, the lowered TTL applies cleanly.
	if err := p.Prewarm(1, 1769); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(612)
	if p.WarmCount(1769) != 0 {
		t.Fatalf("post-drain sandbox ignored the lowered TTL: warm=%d", p.WarmCount(1769))
	}
}

// TestWarmExpiryRaisedTTLKeepsOrder: raising the TTL naturally schedules
// later than every pending reclaim; the clamp must not disturb that.
func TestWarmExpiryRaisedTTLKeepsOrder(t *testing.T) {
	s := sim.New(1)
	p := NewDefault(s)
	p.WarmTTL = 10
	if err := p.Prewarm(1, 1769); err != nil { // reclaim at t=10
		t.Fatal(err)
	}
	p.WarmTTL = 100
	if err := p.Prewarm(1, 1769); err != nil { // reclaim at t=100
		t.Fatal(err)
	}
	s.RunUntil(11)
	if p.WarmCount(1769) != 1 || p.PendingExpiries(1769) != 1 {
		t.Fatalf("after first fire: warm=%d pending=%d", p.WarmCount(1769), p.PendingExpiries(1769))
	}
	s.RunUntil(101)
	if p.WarmCount(1769) != 0 || p.PendingExpiries(1769) != 0 {
		t.Fatalf("after second fire: warm=%d pending=%d", p.WarmCount(1769), p.PendingExpiries(1769))
	}
}

// --- Prewarm cap (typed-error boundary tests) ---

func TestPrewarmCapBoundary(t *testing.T) {
	s := sim.New(1)
	p := NewDefault(s)
	cap := p.Limits().MaxConcurrency
	if p.WarmLimit != cap {
		t.Fatalf("WarmLimit default = %d, want MaxConcurrency %d", p.WarmLimit, cap)
	}

	// Exactly at the cap: admitted.
	if err := p.Prewarm(cap, 1769); err != nil {
		t.Fatalf("Prewarm at cap rejected: %v", err)
	}
	if p.WarmTotal() != cap {
		t.Fatalf("WarmTotal = %d, want %d", p.WarmTotal(), cap)
	}

	// One past the cap: typed error, no state change, no billing.
	before := p.Meter()
	err := p.Prewarm(1, 512)
	if !errors.Is(err, ErrWarmPoolExceeded) {
		t.Fatalf("Prewarm past cap: err = %v, want ErrWarmPoolExceeded", err)
	}
	if p.WarmTotal() != cap || p.WarmCount(512) != 0 {
		t.Fatalf("rejected Prewarm changed state: total=%d warm512=%d", p.WarmTotal(), p.WarmCount(512))
	}
	if after := p.Meter(); after != before {
		t.Fatalf("rejected Prewarm billed: %+v -> %+v", before, after)
	}

	// Consuming a sandbox frees cap headroom again.
	if _, err := p.InvokeGroup(1, 1769); err != nil {
		t.Fatal(err)
	}
	if err := p.Prewarm(1, 512); err != nil {
		t.Fatalf("Prewarm after freeing headroom rejected: %v", err)
	}

	// The cap spans memory sizes: it bounds the account-wide pool.
	if err := p.Prewarm(1, 1024); !errors.Is(err, ErrWarmPoolExceeded) {
		t.Fatalf("cross-size Prewarm past cap: err = %v, want ErrWarmPoolExceeded", err)
	}
}

func TestPrewarmCapDisabled(t *testing.T) {
	s := sim.New(1)
	p := NewDefault(s)
	p.WarmLimit = 0
	if err := p.Prewarm(p.Limits().MaxConcurrency+100, 512); err != nil {
		t.Fatalf("WarmLimit=0 should disable the cap: %v", err)
	}
}

// --- billing edge coverage ---

// TestInvokeGroupAtExactlyMaxConcurrency admits a group that fills the
// account cap to the last slot and checks the bill covers every instance.
func TestInvokeGroupAtExactlyMaxConcurrency(t *testing.T) {
	s := sim.New(1)
	p := NewDefault(s)
	n := p.Limits().MaxConcurrency

	invs, err := p.InvokeGroup(n, 512)
	if err != nil {
		t.Fatalf("InvokeGroup at exactly MaxConcurrency rejected: %v", err)
	}
	if len(invs) != n || p.InFlight() != n {
		t.Fatalf("admitted %d, in flight %d, want %d", len(invs), p.InFlight(), n)
	}
	if _, err := p.InvokeGroup(1, 512); !errors.Is(err, ErrConcurrencyExceeded) {
		t.Fatalf("one past cap: err = %v, want ErrConcurrencyExceeded", err)
	}
	m := p.Meter()
	if m.Invocations != uint64(n) {
		t.Fatalf("Invocations = %d, want %d", m.Invocations, n)
	}
	wantInvoke := float64(n) * pricing.Default().FunctionInvoke
	if math.Abs(m.InvokeCost-wantInvoke) > 1e-9 {
		t.Fatalf("InvokeCost = %g, want %g", m.InvokeCost, wantInvoke)
	}
	p.ReleaseGroup(n, 512, 1)
	if p.InFlight() != 0 {
		t.Fatalf("in flight after release = %d", p.InFlight())
	}
}

// TestReleaseWarmReturnThenExpiryPreservesWarmCount checks the warm-return
// path end to end: released sandboxes appear in WarmCount, survive until
// their TTL, then expire without double-decrement.
func TestReleaseWarmReturnThenExpiryPreservesWarmCount(t *testing.T) {
	s := sim.New(1)
	p := NewDefault(s)

	if _, err := p.InvokeGroup(3, 1769); err != nil {
		t.Fatal(err)
	}
	p.ReleaseGroup(3, 1769, 5)
	if p.WarmCount(1769) != 3 {
		t.Fatalf("warm after release = %d, want 3", p.WarmCount(1769))
	}
	// Reuse one warm sandbox partway through the TTL; its reclaim must be
	// cancelled while the other two stay on schedule.
	s.RunUntil(sim.Time(p.WarmTTL / 2))
	invs, err := p.InvokeGroup(1, 1769)
	if err != nil {
		t.Fatal(err)
	}
	if invs[0].Cold {
		t.Fatal("expected a warm start from the returned sandbox")
	}
	if p.WarmCount(1769) != 2 {
		t.Fatalf("warm after reuse = %d, want 2", p.WarmCount(1769))
	}
	s.RunUntil(sim.Time(p.WarmTTL + 1))
	if p.WarmCount(1769) != 0 {
		t.Fatalf("warm after expiry = %d, want 0", p.WarmCount(1769))
	}
	// Releasing the reused instance after the others expired restarts the
	// cycle cleanly.
	p.ReleaseGroup(1, 1769, 5)
	if p.WarmCount(1769) != 1 || p.PendingExpiries(1769) != 1 {
		t.Fatalf("warm=%d pending=%d after late release", p.WarmCount(1769), p.PendingExpiries(1769))
	}
}

// TestMeterGBSecondsMatchesPricing cross-checks the meter's GB-seconds and
// compute-cost accounting against pricing.ComputeOnlyCost on the same
// inputs.
func TestMeterGBSecondsMatchesPricing(t *testing.T) {
	s := sim.New(1)
	p := NewDefault(s)
	pb := pricing.Default()

	cases := []struct {
		n, memMB    int
		secondsEach float64
	}{
		{4, 1769, 12.5},
		{1, 128, 0.001},
		{10, 10240, 3600},
	}
	var wantGBs, wantCost float64
	for _, c := range cases {
		if _, err := p.InvokeGroup(c.n, c.memMB); err != nil {
			t.Fatal(err)
		}
		p.ReleaseGroup(c.n, c.memMB, c.secondsEach)
		wantGBs += float64(c.n) * c.secondsEach * float64(c.memMB) / 1024
		wantCost += float64(c.n) * pb.ComputeOnlyCost(c.secondsEach, float64(c.memMB))
	}
	m := p.Meter()
	if math.Abs(m.GBSeconds-wantGBs) > 1e-9*wantGBs {
		t.Fatalf("GBSeconds = %g, want %g", m.GBSeconds, wantGBs)
	}
	if math.Abs(m.ComputeCost-wantCost) > 1e-9*wantCost {
		t.Fatalf("ComputeCost = %g, want %g", m.ComputeCost, wantCost)
	}
	// All cases ran at or above the 1 ms minimum bill, so the meter's
	// GB-seconds times the per-GB-second rate must reproduce the compute
	// bill exactly.
	if math.Abs(m.GBSeconds*pb.FunctionGBSecond-m.ComputeCost) > 1e-9*m.ComputeCost {
		t.Fatalf("GBSeconds*rate = %g != ComputeCost %g", m.GBSeconds*pb.FunctionGBSecond, m.ComputeCost)
	}
}

// TestMeterMinimumBillEdge: below the 1 ms billing granularity the bill uses
// the floored duration while GBSeconds records actual compute — the two
// accounts intentionally diverge.
func TestMeterMinimumBillEdge(t *testing.T) {
	s := sim.New(1)
	p := NewDefault(s)
	pb := pricing.Default()
	if _, err := p.InvokeGroup(1, 1024); err != nil {
		t.Fatal(err)
	}
	p.ReleaseGroup(1, 1024, 0.0001) // 0.1 ms, under the 1 ms floor
	m := p.Meter()
	wantGBs := 0.0001 * 1024.0 / 1024
	if math.Abs(m.GBSeconds-wantGBs) > 1e-15 {
		t.Fatalf("GBSeconds = %g, want actual %g", m.GBSeconds, wantGBs)
	}
	wantCost := pb.ComputeOnlyCost(0.0001, 1024)
	if math.Abs(m.ComputeCost-wantCost) > 1e-15 {
		t.Fatalf("ComputeCost = %g, want %g", m.ComputeCost, wantCost)
	}
	if m.ComputeCost <= m.GBSeconds*pb.FunctionGBSecond {
		t.Fatalf("min-bill floor not applied: cost %g vs unfloored %g", m.ComputeCost, m.GBSeconds*pb.FunctionGBSecond)
	}
}

// --- observability instrumentation ---

func TestPlatformObservability(t *testing.T) {
	s := sim.New(1)
	p := NewDefault(s)
	o := obs.New()
	p.SetObserver(o)

	if _, err := p.InvokeGroup(2, 1769); err != nil {
		t.Fatal(err)
	}
	p.ReleaseGroup(2, 1769, 10)
	if err := p.Prewarm(1, 512); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(sim.Time(p.WarmTTL + 1))

	st := o.Stats()
	if got := st.Counter("faas.invocations"); got != 3 {
		t.Fatalf("faas.invocations = %v, want 3", got)
	}
	if got := st.Counter("faas.cold_starts"); got != 2 {
		t.Fatalf("faas.cold_starts = %v, want 2", got)
	}
	if got := st.Counter("faas.warm_expired"); got != 3 {
		t.Fatalf("faas.warm_expired = %v, want 3", got)
	}
	if got := st.Gauge("faas.in_flight_peak"); got != 2 {
		t.Fatalf("faas.in_flight_peak = %v, want 2", got)
	}
	wantGBs := 2 * 10 * 1769.0 / 1024
	if got := st.Counter("faas.gb_seconds"); math.Abs(got-wantGBs) > 1e-9 {
		t.Fatalf("faas.gb_seconds = %v, want %v", got, wantGBs)
	}
	names := map[string]bool{}
	for _, ev := range o.Trace().Events() {
		names[ev.Name] = true
		if ev.Track != "faas" || ev.Cat != "faas" {
			t.Fatalf("unexpected track/cat: %+v", ev)
		}
	}
	for _, want := range []string{"invoke_group", "release_group", "prewarm"} {
		if !names[want] {
			t.Fatalf("missing trace event %q (got %v)", want, names)
		}
	}
}

// BenchmarkWarmPoolExpiry measures Prewarm-scale reclaim churn (3000
// sandboxes, the account burst limit). The head-pop queue keeps each fired
// reclaim O(1); the old identity scan + element copy made this quadratic.
func BenchmarkWarmPoolExpiry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.New(1)
		p := NewDefault(s)
		if err := p.Prewarm(3000, 1769); err != nil {
			b.Fatal(err)
		}
		s.RunUntil(sim.Time(p.WarmTTL + 1))
		if p.WarmTotal() != 0 {
			b.Fatal("pool not drained")
		}
	}
}
