// Command cebench regenerates the paper's evaluation artifacts on the
// simulated substrate.
//
// Usage:
//
//	cebench [-seed N] [-parallel P] <experiment-id>... | all | list
//
// Experiment ids follow the paper's numbering: fig3, fig4, fig7, fig9,
// fig10, fig11, fig12, fig13, fig14, fig15, fig16, fig17, fig18, fig19,
// fig20, fig21a, fig21b, fig21c, tab1, tab2, tab4.
//
// Artifacts run on a bounded worker pool (-parallel, default GOMAXPROCS)
// and print in request order; every experiment derives all randomness from
// -seed, so the tables on stdout are byte-identical at any parallelism.
// Wall-clock diagnostics (per-artifact and total) go to stderr in every
// format, keeping stdout deterministic.
//
// Profiling hooks (-cpuprofile, -memprofile, -trace) write pprof/trace
// artifacts covering the experiment run, for `go tool pprof` and
// `go tool trace`; see EXPERIMENTS.md "How to profile cebench".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	// run carries the exit code out so deferred profile/trace writers run
	// before the process exits.
	os.Exit(run())
}

func run() int {
	seed := flag.Uint64("seed", 2023, "deterministic experiment seed")
	format := flag.String("format", "text", "output format: text | json | csv | html")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size across and within artifacts (1 = fully serial)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (after the run, post-GC) to this file")
	tracefile := flag.String("trace", "", "write a runtime execution trace of the experiment run to this file")
	// Deterministic observability: events are stamped with each cell's
	// simulated clock and scopes export in sorted order, so the files are
	// byte-identical at any -parallel level. Stdout is unaffected.
	traceOut := flag.String("trace-out", "", "write the experiments' event trace to this file (.jsonl = JSON lines, else Chrome trace-event JSON for Perfetto)")
	metricsOut := flag.String("metrics-out", "", "write the experiments' metrics snapshot to this JSON file")
	// Sharded-kernel knobs: shards/sim-workers reconfigure the DES kernel
	// inside sharded scenarios (currently macro-day); tables and trace
	// exports are byte-identical at every setting, only wall-clock moves.
	shards := flag.Int("shards", 0, "kernel shards for sharded scenarios (0 = scenario default)")
	simWorkers := flag.Int("sim-workers", 0, "concurrent shards per conservative window (0 = scenario default)")
	macroTenants := flag.Int("macro-tenants", 0, "macro-day tenant count (0 = default 32)")
	macroPerTenant := flag.Int("macro-per-tenant", 0, "macro-day invocations per tenant (0 = default 1500)")
	chaosTenants := flag.Int("chaos-tenants", 0, "macro-chaos tenant count (0 = default 24)")
	chaosPerTenant := flag.Int("chaos-per-tenant", 0, "macro-chaos invocations per tenant (0 = default 1000)")
	fleetTenants := flag.Int("fleet-tenants", 0, "macro-fleet concurrent controller count (0 = default 48)")
	// Traffic-engine knobs (macro-trace): arrival process, population and
	// horizon; -trace-file installs an Azure-style per-minute-count file for
	// -traffic-kind trace (rows replayed round-robin across tenants).
	trafficKind := flag.String("traffic-kind", "", "macro-trace arrival process: poisson|bursty|diurnal|trace (empty = diurnal)")
	trafficTenants := flag.Int("traffic-tenants", 0, "macro-trace tenant count (0 = default 24)")
	trafficRate := flag.Float64("traffic-rate", 0, "macro-trace mean arrivals/sec per tenant (0 = default 0.5)")
	trafficHorizon := flag.Float64("traffic-horizon", 0, "macro-trace horizon in seconds (0 = default 1800)")
	traceFile := flag.String("trace-file", "", "per-minute-count trace file for -traffic-kind trace")
	rusage := flag.Bool("rusage", false, "report peak RSS to stderr after the run (VmHWM on Linux, getrusage elsewhere)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cebench [-seed N] [-format text|json|csv|html] [-parallel P] <experiment-id>... | all | list\n\nexperiments:\n")
		for _, id := range experiments.IDs() {
			fmt.Fprintf(os.Stderr, "  %s\n", id)
		}
	}
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		return 2
	}
	if args[0] == "list" {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return 0
	}
	ids := args
	all := args[0] == "all"
	if all {
		ids = experiments.IDs()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cebench: cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cebench: cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *tracefile != "" {
		f, err := os.Create(*tracefile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cebench: trace: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			fmt.Fprintf(os.Stderr, "cebench: trace: %v\n", err)
			return 1
		}
		defer trace.Stop()
	}

	var collector *obs.Collector
	if *traceOut != "" || *metricsOut != "" {
		collector = obs.NewCollector()
		experiments.SetCollector(collector)
	}

	experiments.SetParallelism(*parallel)
	experiments.SetMacroSharding(*shards, *simWorkers)
	experiments.SetMacroScale(*macroTenants, *macroPerTenant)
	experiments.SetChaosScale(*chaosTenants, *chaosPerTenant)
	experiments.SetFleetScale(*fleetTenants)
	experiments.SetTrafficScale(*trafficTenants, *trafficRate, *trafficHorizon)
	if err := experiments.SetTrafficKind(*trafficKind); err != nil {
		fmt.Fprintf(os.Stderr, "cebench: %v\n", err)
		return 2
	}
	if *traceFile != "" {
		// File I/O stays out here: internal/traffic is a deterministic
		// package (no os imports); it parses from memory.
		data, err := os.ReadFile(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cebench: trace-file: %v\n", err)
			return 1
		}
		if err := experiments.SetTraceData(data); err != nil {
			fmt.Fprintf(os.Stderr, "cebench: trace-file: %v\n", err)
			return 1
		}
	}
	start := time.Now()
	outcomes := experiments.RunAll(ids, *seed)
	total := time.Since(start)

	if collector != nil {
		if err := exportCollector(collector, *traceOut, *metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "cebench: %v\n", err)
			return 1
		}
	}

	if *memprofile != "" {
		// Stop the CPU-facing instrumentation windows at the run boundary so
		// the heap profile reflects steady state after the experiments.
		runtime.GC()
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cebench: memprofile: %v\n", err)
			return 1
		}
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cebench: memprofile: %v\n", err)
			f.Close()
			return 1
		}
		f.Close()
	}

	exit := 0
	var collected []*experiments.Table
	for _, o := range outcomes {
		if o.Err != nil {
			fmt.Fprintf(os.Stderr, "cebench: %s: %v\n", o.ID, o.Err)
			exit = 1
			continue
		}
		fmt.Fprintf(os.Stderr, "cebench: %s in %s\n", o.ID, o.Elapsed.Round(time.Millisecond))
		switch *format {
		case "json", "html":
			collected = append(collected, o.Table)
		case "csv":
			fmt.Print(o.Table.CSV())
			fmt.Println()
		default:
			fmt.Print(o.Table.String())
			fmt.Println()
		}
	}
	switch {
	case *format == "json" && len(collected) > 0:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(collected); err != nil {
			fmt.Fprintf(os.Stderr, "cebench: encoding: %v\n", err)
			exit = 1
		}
	case *format == "html" && len(collected) > 0:
		fmt.Print(experiments.HTMLReport(collected))
	}
	if all {
		fmt.Fprintf(os.Stderr, "cebench: %d artifacts in %s (parallel=%d)\n",
			len(ids), total.Round(time.Millisecond), experiments.Parallelism())
	}
	if *rusage {
		if hwm, err := peakRSSKB(); err == nil {
			fmt.Fprintf(os.Stderr, "cebench: peak RSS %d kB (cores=%d)\n", hwm, runtime.NumCPU())
		} else {
			fmt.Fprintf(os.Stderr, "cebench: rusage unavailable: %v\n", err)
		}
	}
	return exit
}

// exportCollector writes the merged per-cell trace and/or metrics files.
func exportCollector(c *obs.Collector, tracePath, metricsPath string) error {
	scopes := c.Scopes()
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := obs.WriteTrace(f, tracePath, scopes); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "cebench: wrote event trace (%d scopes) to %s\n", len(scopes), tracePath)
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := obs.WriteMetricsJSON(f, scopes); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "cebench: wrote metrics (%d scopes) to %s\n", len(scopes), metricsPath)
	}
	return nil
}
