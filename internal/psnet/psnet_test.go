package psnet

import (
	"math"
	"sync"
	"testing"
	"time"
)

func startServer(t *testing.T, workers int, lr float64) (*Server, string) {
	t.Helper()
	s, err := NewServer(workers, lr)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(0, 0.1); err == nil {
		t.Error("zero workers should be rejected")
	}
	if _, err := NewServer(2, 0); err == nil {
		t.Error("zero lr should be rejected")
	}
}

func TestInitPullRoundTrip(t *testing.T) {
	_, addr := startServer(t, 1, 0.5)
	c, err := Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Init([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	model, round, err := c.Pull()
	if err != nil {
		t.Fatal(err)
	}
	if round != 0 || len(model) != 3 || model[1] != 2 {
		t.Errorf("Pull = %v round %d", model, round)
	}
}

func TestInitFirstWins(t *testing.T) {
	_, addr := startServer(t, 1, 0.5)
	c, _ := Dial(addr, 0)
	defer c.Close()
	c.Init([]float64{1})
	c.Init([]float64{99})
	model, _, _ := c.Pull()
	if model[0] != 1 {
		t.Errorf("second Init overwrote the model: %v", model)
	}
}

func TestPullBeforeInitFails(t *testing.T) {
	_, addr := startServer(t, 1, 0.5)
	c, _ := Dial(addr, 0)
	defer c.Close()
	if _, _, err := c.Pull(); err == nil {
		t.Error("Pull before Init should fail")
	}
}

func TestSingleWorkerSGDStep(t *testing.T) {
	s, addr := startServer(t, 1, 0.5)
	c, _ := Dial(addr, 0)
	defer c.Close()
	c.Init([]float64{10, 20})
	round, err := c.Push(0, []float64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if round != 1 {
		t.Errorf("round after push = %d, want 1", round)
	}
	model := s.Model()
	// model -= lr/1 * grad = [10-1, 20-2]
	if model[0] != 9 || model[1] != 18 {
		t.Errorf("model = %v, want [9 18]", model)
	}
}

func TestBSPBarrierAveragesAllWorkers(t *testing.T) {
	const n = 4
	s, addr := startServer(t, n, 1.0)
	clients := make([]*Client, n)
	for i := range clients {
		c, err := Dial(addr, i)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}
	clients[0].Init([]float64{0})

	// All workers push concurrently; each blocks until the round closes.
	var wg sync.WaitGroup
	rounds := make([]int, n)
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			r, err := c.Push(0, []float64{float64(i + 1)}) // grads 1..4
			if err != nil {
				t.Error(err)
				return
			}
			rounds[i] = r
		}(i, c)
	}
	wg.Wait()
	for i, r := range rounds {
		if r != 1 {
			t.Errorf("worker %d saw round %d, want 1", i, r)
		}
	}
	// Average gradient = (1+2+3+4)/4 = 2.5; lr 1.0 -> model = -2.5.
	if m := s.Model(); math.Abs(m[0]+2.5) > 1e-12 {
		t.Errorf("model = %v, want [-2.5]", m)
	}
}

func TestStaleRoundRejected(t *testing.T) {
	_, addr := startServer(t, 1, 1.0)
	c, _ := Dial(addr, 0)
	defer c.Close()
	c.Init([]float64{0})
	if _, err := c.Push(0, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Push(0, []float64{1}); err == nil {
		t.Error("pushing the old round again should be rejected as stale")
	}
}

func TestDimensionMismatchRejected(t *testing.T) {
	_, addr := startServer(t, 1, 1.0)
	c, _ := Dial(addr, 0)
	defer c.Close()
	c.Init([]float64{0, 0})
	if _, err := c.Push(0, []float64{1}); err == nil {
		t.Error("wrong-dimension gradient should be rejected")
	}
}

func TestDuplicatePushRejected(t *testing.T) {
	_, addr := startServer(t, 2, 1.0)
	c0, _ := Dial(addr, 0)
	defer c0.Close()
	c0b, _ := Dial(addr, 0) // same worker id, second connection
	defer c0b.Close()
	c0.Init([]float64{0})

	errs := make(chan error, 2)
	go func() {
		_, err := c0.Push(0, []float64{1})
		errs <- err
	}()
	// The second push for worker 0 must be rejected while the first blocks.
	_, err := c0b.Push(0, []float64{1})
	if err == nil {
		t.Error("duplicate worker push should be rejected")
	}
	// Unblock the round with the missing worker.
	c1, _ := Dial(addr, 1)
	defer c1.Close()
	if _, err := c1.Push(0, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := <-errs; err != nil {
		t.Fatalf("first worker's push failed: %v", err)
	}
}

func TestManyRoundsConverge(t *testing.T) {
	// Minimize f(x) = (x-3)^2 with two workers both pushing the exact
	// gradient 2(x-3); plain SGD converges to 3.
	const n = 2
	s, addr := startServer(t, n, 0.2)
	clients := make([]*Client, n)
	for i := range clients {
		c, err := Dial(addr, i)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}
	clients[0].Init([]float64{0})
	for round := 0; round < 40; round++ {
		model := s.Model()
		grad := 2 * (model[0] - 3)
		var wg sync.WaitGroup
		for _, c := range clients {
			wg.Add(1)
			go func(c *Client) {
				defer wg.Done()
				if _, err := c.Push(round, []float64{grad}); err != nil {
					t.Error(err)
				}
			}(c)
		}
		wg.Wait()
	}
	if m := s.Model(); math.Abs(m[0]-3) > 1e-3 {
		t.Errorf("converged to %v, want ~3", m)
	}
	pushes, _ := s.Stats()
	if pushes != 80 {
		t.Errorf("pushes = %d, want 80", pushes)
	}
}

func TestLinkDelayDegradesOneWorker(t *testing.T) {
	s, addr := startServer(t, 1, 0.5)
	c, err := Dial(addr, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Init([]float64{1}); err != nil {
		t.Fatal(err)
	}

	s.SetLinkDelay(3, 30*time.Millisecond)
	start := time.Now()
	if _, _, err := c.Pull(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("degraded link round trip %v, want >= 30ms", d)
	}

	// Other links are untouched: a second worker's connection replies fast.
	other, err := Dial(addr, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	start = time.Now()
	if _, _, err := other.Pull(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d >= 30*time.Millisecond {
		t.Errorf("undegraded link round trip %v, want fast", d)
	}

	// The wildcard covers workers without explicit entries; clearing an
	// entry restores it to the wildcard, and clearing the wildcard restores
	// full speed.
	s.SetLinkDelay(-1, 30*time.Millisecond)
	start = time.Now()
	if _, _, err := other.Pull(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("wildcard-degraded round trip %v, want >= 30ms", d)
	}
	s.SetLinkDelay(-1, 0)
	s.SetLinkDelay(3, 0)
	start = time.Now()
	if _, _, err := c.Pull(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d >= 30*time.Millisecond {
		t.Errorf("restored link round trip %v, want fast", d)
	}
}
