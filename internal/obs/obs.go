// Package obs is the deterministic observability layer: tracing and metrics
// whose clock is the discrete-event simulation clock, not wall time.
//
// Every event carries an explicit timestamp in seconds supplied by the
// instrumented component (the DES clock, a job's own timeline, or — on the
// live substrate only — seconds since the backend started). The package
// itself never reads a wall clock, so it passes the walltime analyzer and
// traces are byte-identical run to run: the same simulation produces the
// same events with the same timestamps in the same order, regardless of the
// host, the load, or the experiment engine's parallelism level.
//
// The layer is built for a zero-cost disabled path: a nil *Observer (and nil
// *Tracer, *Metrics, *Counter, ...) is a valid no-op sink, and hot paths
// guard event construction with Enabled() so that disabled tracing performs
// no allocation at all (the RunEpoch benchmark's 0 allocs/op guarantee from
// the numeric hot-path optimization is preserved).
//
// Two exporters serialize recorded data deterministically: a JSONL event log
// (one JSON object per line) and the Chrome trace-event format loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing. A Collector merges many
// single-writer scopes (one per experiment cell) into one trace, ordered by
// scope name, which is what keeps cebench -trace-out byte-identical across
// -parallel levels.
package obs

// Arg is one key=value attachment on a trace event. Values are either
// numeric or strings; the helpers F, I, B and S construct them.
type Arg struct {
	Key   string
	Str   string
	Num   float64
	IsStr bool
}

// F attaches a float value.
func F(key string, v float64) Arg { return Arg{Key: key, Num: v} }

// I attaches an integer value.
func I(key string, v int) Arg { return Arg{Key: key, Num: float64(v)} }

// B attaches a boolean value (rendered as the strings "true"/"false").
func B(key string, v bool) Arg {
	if v {
		return Arg{Key: key, Str: "true", IsStr: true}
	}
	return Arg{Key: key, Str: "false", IsStr: true}
}

// S attaches a string value.
func S(key, v string) Arg { return Arg{Key: key, Str: v, IsStr: true} }

// value returns the arg's JSON-encodable value.
func (a Arg) value() any {
	if a.IsStr {
		return a.Str
	}
	return a.Num
}

// Observer bundles a Tracer and a Metrics registry: the handle every
// instrumented component holds. A nil *Observer is a valid disabled sink.
type Observer struct {
	tracer  *Tracer
	metrics *Metrics
}

// New returns an enabled observer whose events carry caller-supplied
// timestamps (the deterministic configuration).
func New() *Observer {
	return &Observer{tracer: NewTracer(nil), metrics: NewMetrics()}
}

// NewWithClock returns an enabled observer whose convenience methods stamp
// events from clock. The deterministic packages pass a DES-clock closure;
// the live backend passes seconds-since-start wall time.
func NewWithClock(clock func() float64) *Observer {
	return &Observer{tracer: NewTracer(clock), metrics: NewMetrics()}
}

// Enabled reports whether the observer records anything. Hot paths must
// guard argument construction behind it so the disabled path allocates
// nothing.
//
//cescalint:hotpath
func (o *Observer) Enabled() bool { return o != nil }

// Trace returns the observer's tracer (nil when disabled).
func (o *Observer) Trace() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// Stats returns the observer's metrics registry (nil when disabled).
func (o *Observer) Stats() *Metrics {
	if o == nil {
		return nil
	}
	return o.metrics
}
