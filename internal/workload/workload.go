// Package workload defines the evaluated ML models as profiles combining
//
//   - the model size M (the unit of every parameter synchronization),
//   - a compute-intensity model u(m): seconds to process 1 MB of training
//     data given a function with memory m (CPU share is proportional to
//     memory, as on Lambda),
//   - a loss engine producing the per-epoch training loss.
//
// LR and SVM train for real via the internal/ml SGD engine on synthetic
// data (so convergence is genuinely stochastic); MobileNet, ResNet50 and
// BERT-base use parametric convergence curves l(e) = 1/(a*e+b) + c with
// noise and a hyperparameter response surface (the DESIGN.md substitution),
// using the paper's model sizes (12 MB / 89 MB / 340 MB) and Table IV
// configurations.
package workload

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/ml"
	"repro/internal/sim"
)

// Hyperparams are the tunables a hyperparameter-tuning trial explores.
type Hyperparams struct {
	LR       float64 // learning rate
	Momentum float64 // kept for trial diversity; affects curve speed mildly
}

// Engine produces the per-epoch training loss of one training job (or one
// tuning trial). Loss depends only on epochs run, never on the resource
// allocation: under BSP the model state lives in external storage, so
// scaling functions changes wall-clock time and cost but not the statistics
// (the assumption Eq. 13-16 rest on).
type Engine interface {
	// NextEpoch advances one epoch and returns the training loss after it.
	NextEpoch() float64
	// EpochsRun reports how many epochs have completed.
	EpochsRun() int
	// Loss returns the most recent loss (initial loss before any epoch).
	Loss() float64
}

// Snapshotter is implemented by engines whose training state can be
// serialized to a float vector; the trainer checkpoints this state through
// external storage so a restarted function group resumes rather than
// retrains (the delayed-restart handoff of Fig. 8).
type Snapshotter interface {
	// Snapshot returns the engine state as a vector.
	Snapshot() []float64
	// Restore replaces the engine state with a previous Snapshot.
	Restore(state []float64) error
}

// CurveParams parameterizes the parametric convergence family
// l(e) = 1/(A*e + B) + C.
type CurveParams struct {
	A, B, C float64
	// Noise is the multiplicative log-normal sigma applied to (l - C).
	Noise float64
}

// Eval returns the noiseless curve value after e epochs.
func (cp CurveParams) Eval(e float64) float64 {
	return 1/(cp.A*e+cp.B) + cp.C
}

// EpochsToReach returns the smallest whole number of epochs at which the
// noiseless curve reaches target, or ok=false if target <= C.
func (cp CurveParams) EpochsToReach(target float64) (int, bool) {
	if target <= cp.C || cp.A <= 0 {
		return 0, false
	}
	e := (1/(target-cp.C) - cp.B) / cp.A
	if e < 1 {
		e = 1
	}
	return int(math.Ceil(e - 1e-9)), true
}

// Model profiles one evaluated ML workload.
type Model struct {
	Name       string
	Dataset    dataset.Spec
	ParamsMB   float64 // M: model size exchanged at each synchronization
	TargetLoss float64 // Table IV objective value
	Batch      int     // b_z: per-function mini-batch rows (Table IV)
	DefaultLR  float64 // Table IV learning rate

	// UBase is the time (seconds) one full vCPU takes to process 1 MB of
	// this workload's training data; u(m) = UBase / cpuShare(m).
	UBase float64
	// VCPUCap bounds how many vCPUs the workload can exploit.
	VCPUCap float64
	// MinMemoryMB is the smallest function memory that can run the workload
	// (model + runtime + working set).
	MinMemoryMB int

	// Curve drives the parametric loss engine and seeds offline prediction.
	Curve CurveParams
	// Objective names the internal/ml objective for real training ("" for
	// curve-only models).
	Objective string
	// GenFlip / GenNoise configure the synthetic data generator for real
	// training so the Table IV target loss is reachable.
	GenFlip  float64
	GenNoise float64
	// LROpt is the learning rate at which the curve response peaks.
	LROpt float64
}

// Real reports whether the model trains numerically (LR/SVM).
func (m *Model) Real() bool { return m.Objective != "" }

// U returns u(m): seconds to process 1 MB of training data in a function
// with memMB memory, given vCPU share memMB/1769 capped at the workload's
// parallelism limit.
func (m *Model) U(memMB int) float64 {
	share := float64(memMB) / 1769
	if share > m.VCPUCap {
		share = m.VCPUCap
	}
	if share <= 0 {
		return math.Inf(1)
	}
	return m.UBase / share
}

// Feasible reports whether a function of memMB can run the workload when
// the dataset is split across n functions (it must hold the model, the
// runtime and its data partition).
func (m *Model) Feasible(n, memMB int) bool {
	if memMB < m.MinMemoryMB {
		return false
	}
	partition := m.Dataset.PartitionSizeMB(n)
	// Runtime + model replica + partition must fit with some headroom.
	need := 150 + 2*m.ParamsMB + 1.2*partition
	return float64(memMB) >= need
}

// LRHiggs returns logistic regression on Higgs (Table IV row 1).
func LRHiggs() *Model {
	return &Model{
		Name: "LR-Higgs", Dataset: dataset.Higgs(), ParamsMB: 0.001,
		TargetLoss: 0.66, Batch: 10_000, DefaultLR: 0.01,
		UBase: 0.25, VCPUCap: 2, MinMemoryMB: 256,
		Curve:     CurveParams{A: 0.054, B: 5.78, C: 0.52, Noise: 0.03},
		Objective: "logistic", GenFlip: 0.22, LROpt: 0.01,
	}
}

// SVMHiggs returns a linear SVM on Higgs (Table IV row 1).
func SVMHiggs() *Model {
	return &Model{
		Name: "SVM-Higgs", Dataset: dataset.Higgs(), ParamsMB: 0.004,
		TargetLoss: 0.48, Batch: 10_000, DefaultLR: 0.01,
		UBase: 0.22, VCPUCap: 2, MinMemoryMB: 256,
		Curve:     CurveParams{A: 0.205, B: 1.54, C: 0.35, Noise: 0.03},
		Objective: "hinge", GenFlip: 0.09, LROpt: 0.01,
	}
}

// LRYFCC returns least-squares regression on the YFCC subset (Table IV row
// 2; target loss 50 is squared loss).
func LRYFCC() *Model {
	return &Model{
		Name: "LR-YFCC", Dataset: dataset.YFCC(), ParamsMB: 0.13,
		TargetLoss: 50, Batch: 800, DefaultLR: 0.01,
		UBase: 0.3, VCPUCap: 2, MinMemoryMB: 512,
		Curve:     CurveParams{A: 0.0019, B: 0.0078, C: 32, Noise: 0.03},
		Objective: "squared", GenNoise: 8, LROpt: 0.01,
	}
}

// SVMYFCC returns a linear SVM on the YFCC subset (squared-loss target per
// Table IV).
func SVMYFCC() *Model {
	return &Model{
		Name: "SVM-YFCC", Dataset: dataset.YFCC(), ParamsMB: 0.13,
		TargetLoss: 50, Batch: 800, DefaultLR: 0.01,
		UBase: 0.28, VCPUCap: 2, MinMemoryMB: 512,
		Curve:     CurveParams{A: 0.0021, B: 0.0078, C: 30, Noise: 0.03},
		Objective: "squared", GenNoise: 7.5, LROpt: 0.01,
	}
}

// MobileNet returns MobileNet on Cifar10 (12 MB parameters, Table IV row 3).
func MobileNet() *Model {
	return &Model{
		Name: "MobileNet-Cifar10", Dataset: dataset.Cifar10(), ParamsMB: 12,
		TargetLoss: 0.2, Batch: 128, DefaultLR: 0.01,
		UBase: 40, VCPUCap: 6, MinMemoryMB: 512,
		Curve: CurveParams{A: 0.21, B: 0.44, C: 0.05, Noise: 0.04},
		LROpt: 0.01,
	}
}

// ResNet50 returns ResNet50 on Cifar10 (89 MB parameters, Table IV row 4).
func ResNet50() *Model {
	return &Model{
		Name: "ResNet50-Cifar10", Dataset: dataset.Cifar10(), ParamsMB: 89,
		TargetLoss: 0.4, Batch: 32, DefaultLR: 0.01,
		UBase: 55, VCPUCap: 6, MinMemoryMB: 1024,
		Curve: CurveParams{A: 0.082, B: 0.45, C: 0.1, Noise: 0.04},
		LROpt: 0.01,
	}
}

// BERT returns BERT-base on IMDb (340 MB parameters, Table IV row 5).
func BERT() *Model {
	return &Model{
		Name: "BERT-IMDb", Dataset: dataset.IMDb(), ParamsMB: 340,
		TargetLoss: 0.6, Batch: 32, DefaultLR: 0.00005,
		UBase: 60, VCPUCap: 6, MinMemoryMB: 2048,
		Curve: CurveParams{A: 0.053, B: 2.94, C: 0.35, Noise: 0.03},
		LROpt: 0.00005,
	}
}

// Evaluated returns the five models of the paper's evaluation, in figure
// order (LR, SVM, MobileNet, ResNet50, BERT).
func Evaluated() []*Model {
	return []*Model{LRHiggs(), SVMHiggs(), MobileNet(), ResNet50(), BERT()}
}

// ByName resolves a model profile by name.
func ByName(name string) (*Model, error) {
	for _, m := range append(Evaluated(), LRYFCC(), SVMYFCC()) {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown model %q", name)
}

// IterationsPerEpoch returns k = D/(n*b_z): the BSP iterations one epoch
// takes with n functions, each consuming Batch rows per iteration.
func (m *Model) IterationsPerEpoch(n int) int {
	if n < 1 {
		n = 1
	}
	k := m.Dataset.Samples / (n * m.Batch)
	if k < 1 {
		k = 1
	}
	return k
}

// --- Loss engines ---

// curveEngine draws per-epoch losses from the parametric family with a
// hyperparameter response surface: learning rates away from LROpt slow the
// curve and raise its floor, which is what gives SHA something to select on.
type curveEngine struct {
	params CurveParams
	rng    *sim.Rand
	epoch  int
	last   float64
}

// NewCurveEngine returns a parametric engine for hyperparameters hp.
func (m *Model) NewCurveEngine(hp Hyperparams, seed uint64) Engine {
	cp := m.Curve
	if hp.LR > 0 && m.LROpt > 0 {
		d := math.Log10(hp.LR / m.LROpt)
		speed := math.Exp(-d * d / 2) // 1 at the optimum, slower away
		cp.A *= speed * (0.9 + 0.2*math.Abs(hp.Momentum))
		cp.C += (m.firstLoss() - cp.C) * 0.4 * (1 - speed) // bad lr raises floor
	}
	rng := sim.NewRand(seed)
	// Per-trial curve-speed variation models run-to-run stochasticity.
	cp.A *= rng.LogNormal(0, 0.10)
	return &curveEngine{params: cp, rng: rng, last: cp.Eval(0)}
}

func (m *Model) firstLoss() float64 { return m.Curve.Eval(0) }

func (e *curveEngine) NextEpoch() float64 {
	e.epoch++
	base := e.params.Eval(float64(e.epoch))
	if e.params.Noise > 0 {
		base = e.params.C + (base-e.params.C)*e.rng.LogNormal(0, e.params.Noise)
	}
	e.last = base
	return base
}

func (e *curveEngine) EpochsRun() int { return e.epoch }
func (e *curveEngine) Loss() float64  { return e.last }

// Snapshot implements Snapshotter: [epoch, lastLoss].
func (e *curveEngine) Snapshot() []float64 {
	return []float64{float64(e.epoch), e.last}
}

// Restore implements Snapshotter.
func (e *curveEngine) Restore(state []float64) error {
	if len(state) != 2 {
		return fmt.Errorf("workload: curve snapshot has %d values, want 2", len(state))
	}
	e.epoch = int(state[0])
	e.last = state[1]
	return nil
}

// realEngine trains a linear model for real on synthetic data.
type realEngine struct {
	trainer *ml.Trainer
	last    float64
}

// RealEngineRows is the default in-memory sample size for real engines; the
// nominal dataset Spec still drives timing and billing.
const RealEngineRows = 4000

// NewRealEngine returns a real-SGD engine for hyperparameters hp, or an
// error for curve-only models.
func (m *Model) NewRealEngine(hp Hyperparams, rows int, seed uint64) (Engine, error) {
	if !m.Real() {
		return nil, fmt.Errorf("workload: %s has no real training engine", m.Name)
	}
	if rows <= 0 {
		rows = RealEngineRows
	}
	obj, err := ml.ObjectiveByName(m.Objective, 1e-4)
	if err != nil {
		return nil, err
	}
	features := m.Dataset.Features
	if features > 256 {
		features = 256
	}
	// Generation goes through the process-wide cache: engines created with
	// the same generator parameters (every compared system in a figure, or
	// repeated trials at one seed) share a single read-only matrix, bit-
	// identical to generating it fresh from seed ^ 0xda7a.
	var data *dataset.Matrix
	if m.Dataset.Task == dataset.Regression {
		data = dataset.CachedRegression(seed^0xda7a, dataset.GenConfig{Samples: rows, Features: features, NoiseStd: m.GenNoise})
	} else {
		data = dataset.CachedBinary(seed^0xda7a, dataset.GenConfig{Samples: rows, Features: features, NoiseFlip: m.GenFlip})
	}
	lr := hp.LR
	if lr <= 0 {
		lr = m.DefaultLR
	}
	// The in-memory worker count is fixed: it reflects the statistics of
	// BSP training, not the simulated function count.
	tr, err := ml.NewTrainer(data, ml.Config{
		Objective:    obj,
		Workers:      8,
		BatchPerWkr:  rows / 8 / 5,
		LearningRate: lr * lrScale(m.Objective),
		Seed:         seed,
	})
	if err != nil {
		return nil, err
	}
	return &realEngine{trainer: tr, last: tr.Loss()}, nil
}

// lrScale maps the paper's nominal learning rates (tuned for their feature
// scaling) onto rates that behave equivalently on our standard-normal
// synthetic features.
func lrScale(objective string) float64 {
	switch objective {
	case "squared":
		return 0.2
	case "hinge":
		return 3
	default:
		return 1.5
	}
}

func (e *realEngine) NextEpoch() float64 {
	e.last = e.trainer.RunEpoch()
	return e.last
}

func (e *realEngine) EpochsRun() int { return e.trainer.Epoch() }
func (e *realEngine) Loss() float64  { return e.last }

// Snapshot implements Snapshotter: [epoch, lastLoss, weights...].
func (e *realEngine) Snapshot() []float64 {
	w := e.trainer.Weights()
	out := make([]float64, 0, len(w)+2)
	out = append(out, float64(e.trainer.Epoch()), e.last)
	return append(out, w...)
}

// Restore implements Snapshotter. The epoch counter of the underlying
// trainer advances only through training, so Restore applies the weights
// and loss; the trainer resumes from equivalent state.
func (e *realEngine) Restore(state []float64) error {
	if len(state) < 2 {
		return fmt.Errorf("workload: real snapshot has %d values, want >= 2", len(state))
	}
	e.last = state[1]
	e.trainer.SetWeights(state[2:])
	return nil
}

// NewEngine returns the preferred engine for the model: real SGD when
// available, the parametric curve otherwise.
func (m *Model) NewEngine(hp Hyperparams, seed uint64) Engine {
	if m.Real() {
		if e, err := m.NewRealEngine(hp, 0, seed); err == nil {
			return e
		}
	}
	return m.NewCurveEngine(hp, seed)
}
