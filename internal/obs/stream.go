package obs

import (
	"math"
	"sort"
)

// Streaming aggregation for high-rate workloads: fixed-size accumulators
// that retain no per-observation record, so a traffic scenario can measure
// tens of millions of invocations with memory proportional to the tenant
// count, not the invocation count. Hist is the single-writer value-type
// counterpart of the registry-bound Histogram (no lock, no map lookup);
// Jain is the fairness index computed at report boundaries.

// Hist is a standalone fixed-bucket histogram: Counts[i] tallies
// observations v <= Bounds[i], the final slot counts overflow (+Inf). It is
// a plain value owned by a single writer — Observe is lock-free and
// allocation-free — which is what per-tenant streaming aggregation needs
// where the registry's mutex-and-map Histogram would dominate the hot path.
type Hist struct {
	bounds []float64
	counts []uint64
	sum    float64
	total  uint64
}

// NewHist returns a histogram with the given sorted bucket upper bounds
// (copied; an implicit +Inf overflow bucket is appended).
func NewHist(bounds []float64) *Hist {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Hist{bounds: b, counts: make([]uint64, len(b)+1)}
}

// LatencyBuckets is the default bound set for end-to-end invocation
// latencies: sub-100ms warm hits through multi-minute queueing collapse.
var LatencyBuckets = []float64{
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300, 600,
}

// Observe records v. Values exactly on a bucket's upper bound land in that
// bucket (v <= bound), matching the registry Histogram's semantics.
//
//cescalint:hotpath
func (h *Hist) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.total++
}

// Total reports how many values were observed.
func (h *Hist) Total() uint64 { return h.total }

// Sum reports the running sum of observed values.
func (h *Hist) Sum() float64 { return h.sum }

// Mean reports the running mean (0 with no observations).
func (h *Hist) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Quantile returns the upper bound of the bucket containing the q-quantile
// (0 <= q <= 1) — a deterministic, conservative estimate. Observations in
// the overflow bucket report +Inf; an empty histogram reports 0.
func (h *Hist) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// Merge adds o's counts into h. Both histograms must share identical
// bounds; Merge panics otherwise, because silently mixing bucket layouts
// would corrupt every quantile read afterwards.
func (h *Hist) Merge(o *Hist) {
	if len(h.bounds) != len(o.bounds) {
		panic("obs: Hist.Merge with different bucket layouts")
	}
	for i, b := range h.bounds {
		if b != o.bounds[i] {
			panic("obs: Hist.Merge with different bucket layouts")
		}
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.sum += o.sum
	h.total += o.total
}

// Snapshot returns a point-in-time copy in the registry's export shape.
func (h *Hist) Snapshot() HistSnapshot {
	return HistSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Total:  h.total,
	}
}

// Jain returns Jain's fairness index (sum x)^2 / (n * sum x^2) over the
// values, summed in slice order so the float result is deterministic for a
// deterministic input order. The index is 1 when all values are equal and
// approaches 1/n as one value dominates. Degenerate inputs (no values, or
// all zero) report 1: an empty fleet is trivially fair.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
