// Package maordertest seeds order-dependent map iterations for the
// maporder analyzer's golden test.
package maordertest

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// BadPrint emits rows in randomized map order.
func BadPrint(m map[string]int, w io.Writer) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // finding: Fprintf in map range
	}
}

// BadBuilder streams bytes in randomized map order.
func BadBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // finding: WriteString in map range
	}
	return b.String()
}

// BadAppend freezes map order into the returned slice.
func BadAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // finding: append to outer slice, never sorted
	}
	return out
}

// LegalSortedKeys is the canonical sorted-keys idiom: the collected slice
// is sorted before anyone iterates it, so no finding.
func LegalSortedKeys(m map[string]int, w io.Writer) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// LegalInnerAccum only touches state scoped inside the loop body.
func LegalInnerAccum(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		n := 0
		for _, v := range vs {
			n += v
		}
		total += n
	}
	return total
}
