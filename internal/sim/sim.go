// Package sim provides a small deterministic discrete-event simulation
// kernel: a virtual clock, an event queue ordered by (time, priority,
// insertion order), and named pseudo-random streams.
//
// The kernel is deliberately callback-based rather than goroutine-based so
// that simulations are fully deterministic and cheap: an event is a closure
// scheduled at an absolute virtual time, and Run drains the queue in order.
// All simulated subsystems in this repository (the serverless platform, the
// storage services, the distributed trainer) advance time only through this
// kernel.
//
// The event queue is an inlined binary heap over a plain slice (no
// container/heap interface boxing), and fired or reaped events return to a
// per-simulation free list, so the steady-state hot loop — schedule, pop,
// fire — allocates nothing. The (time, priority, sequence) total order is
// identical to the reference container/heap implementation (asserted by the
// kernel equivalence test).
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, measured in seconds since the start of
// the simulation. A float64 keeps the arithmetic in the analytical models
// and the simulator identical.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration = float64

// Seconds returns the time as a plain float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) }

// AsStdDuration converts a virtual duration to a time.Duration for display.
func AsStdDuration(d Duration) time.Duration {
	return time.Duration(d * float64(time.Second))
}

func (t Time) String() string {
	return fmt.Sprintf("t=%.3fs", float64(t))
}

// Event is a scheduled callback. Events compare by time, then priority
// (lower runs first), then insertion sequence, which makes simultaneous
// events deterministic.
//
// Ownership: the pointer returned by Schedule is valid for Cancel/At until
// the event fires or its cancellation is reaped by the run loop; afterwards
// the kernel recycles the object for a future Schedule. Holding an Event
// past its firing and calling methods on it is a caller bug (it may now be
// a different scheduled event).
type Event struct {
	at       Time
	priority int
	seq      uint64
	fn       func()
	canceled bool
}

// At reports the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Cancel marks the event so that it will be skipped when its time comes.
// Canceling an already-fired event is a no-op.
func (e *Event) Cancel() { e.canceled = true }

// Canceled reports whether Cancel has been called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// eventLess is the queue's total order: (time, priority, sequence).
func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.priority != b.priority {
		return a.priority < b.priority
	}
	return a.seq < b.seq
}

// Simulation owns a virtual clock and an event queue.
// The zero value is not usable; construct with New.
type Simulation struct {
	now     Time
	queue   []*Event // binary min-heap ordered by eventLess
	seq     uint64
	running bool
	rng     map[string]*Rand
	seed    uint64
	fired   uint64

	// free holds recycled events; arena is the tail of the current
	// allocation block new events are carved from. Together they make the
	// steady-state schedule/fire loop allocation-free.
	free   []*Event
	arena  []Event
	allocs uint64 // events carved from fresh arena blocks (tests assert reuse)
}

// arenaChunk is how many events one arena block holds: large enough to
// amortize the block allocation, small enough not to bloat tiny simulations.
const arenaChunk = 64

// New returns a simulation whose named random streams derive from seed.
func New(seed uint64) *Simulation {
	return &Simulation{rng: make(map[string]*Rand), seed: seed}
}

// Now returns the current virtual time.
func (s *Simulation) Now() Time { return s.now }

// EventsFired reports how many events have executed so far.
func (s *Simulation) EventsFired() uint64 { return s.fired }

// Pending reports how many events are queued (including canceled ones that
// have not yet been skipped).
func (s *Simulation) Pending() int { return len(s.queue) }

// newEvent returns a zeroed event from the free list or the arena.
func (s *Simulation) newEvent() *Event {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return e
	}
	if len(s.arena) == 0 {
		s.arena = make([]Event, arenaChunk)
	}
	e := &s.arena[0]
	s.arena = s.arena[1:]
	s.allocs++
	return e
}

// recycle returns a fired or reaped event to the free list. The closure is
// dropped so the kernel does not pin caller state between reuses.
func (s *Simulation) recycle(e *Event) {
	e.fn = nil
	e.canceled = false
	s.free = append(s.free, e)
}

// Schedule queues fn to run at absolute virtual time at. Scheduling in the
// past (before Now) panics: that is always a bug in the caller.
func (s *Simulation) Schedule(at Time, fn func()) *Event {
	return s.SchedulePriority(at, 0, fn)
}

// ScheduleAfter queues fn to run d seconds from now. Negative d panics.
func (s *Simulation) ScheduleAfter(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: ScheduleAfter with negative delay %g", d))
	}
	return s.Schedule(s.now+Time(d), fn)
}

// SchedulePriority is Schedule with an explicit tie-break priority; among
// events at the same instant, lower priority values run first.
func (s *Simulation) SchedulePriority(at Time, priority int, fn func()) *Event {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	if math.IsNaN(float64(at)) || math.IsInf(float64(at), 0) {
		panic(fmt.Sprintf("sim: scheduling event at non-finite time %v", float64(at)))
	}
	e := s.newEvent()
	e.at, e.priority, e.seq, e.fn = at, priority, s.seq, fn
	s.seq++
	s.heapPush(e)
	return e
}

// heapPush appends e and sifts it up to its ordered position.
func (s *Simulation) heapPush(e *Event) {
	q := append(s.queue, e)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(q[i], q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	s.queue = q
}

// heapPop removes and returns the minimum event.
func (s *Simulation) heapPop() *Event {
	q := s.queue
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = nil
	q = q[:n]
	s.queue = q
	// Sift the moved element down to restore the heap order.
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && eventLess(q[r], q[l]) {
			m = r
		}
		if !eventLess(q[m], q[i]) {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	return top
}

// Run drains the event queue until it is empty, advancing the clock to each
// event's time before invoking it. Events may schedule further events.
func (s *Simulation) Run() {
	s.RunUntil(Time(math.Inf(1)))
}

// RunUntil drains events with time <= limit. The clock is left at the last
// executed event's time, or at limit when limit is finite and ahead of the
// clock (RunUntil never moves the clock backwards: a limit already in the
// past leaves the clock where it is).
func (s *Simulation) RunUntil(limit Time) {
	if s.running {
		panic("sim: Run re-entered")
	}
	s.running = true
	defer func() { s.running = false }()
	for len(s.queue) > 0 {
		next := s.queue[0]
		if next.at > limit {
			if !math.IsInf(float64(limit), 1) && limit > s.now {
				s.now = limit
			}
			return
		}
		s.heapPop()
		if next.canceled {
			s.recycle(next)
			continue
		}
		s.now = next.at
		s.fired++
		fn := next.fn
		next.fn = nil
		fn()
		s.recycle(next)
	}
	if !math.IsInf(float64(limit), 1) && limit > s.now {
		s.now = limit
	}
}

// Step executes exactly one pending (non-canceled) event and reports whether
// one was executed.
func (s *Simulation) Step() bool {
	for len(s.queue) > 0 {
		next := s.heapPop()
		if next.canceled {
			s.recycle(next)
			continue
		}
		s.now = next.at
		s.fired++
		fn := next.fn
		next.fn = nil
		fn()
		s.recycle(next)
		return true
	}
	return false
}

// Rand returns the named deterministic random stream, creating it on first
// use. Streams with the same name under the same simulation seed always
// produce the same sequence, independent of other streams, so adding a new
// consumer of randomness does not perturb existing experiments.
func (s *Simulation) Rand(name string) *Rand {
	if r, ok := s.rng[name]; ok {
		return r
	}
	r := NewRand(s.seed ^ hashString(name))
	s.rng[name] = r
	return r
}

func hashString(name string) uint64 {
	// FNV-1a, inlined to avoid pulling hash/fnv into the hot path.
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}
