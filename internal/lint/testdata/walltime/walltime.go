// Package walltimetest seeds wall-clock violations for the walltime
// analyzer's golden test.
package walltimetest

import "time"

// Clock is a stand-in for an injected deterministic clock.
type Clock func() float64

// Bad reads the wall clock three ways.
func Bad() time.Duration {
	start := time.Now()          // finding: Now
	time.Sleep(time.Millisecond) // finding: Sleep
	t := time.NewTimer(time.Second)
	t.Stop()
	return time.Since(start) // finding: Since
}

// Allowed carries a reasoned pragma, so it must not be reported.
func Allowed() time.Time {
	//cescalint:allow walltime -- seeded pragma: stderr-only diagnostic in the golden fixture
	return time.Now()
}

// Legal uses only deterministic time arithmetic.
func Legal(c Clock) time.Duration {
	return time.Duration(c() * float64(time.Second))
}
