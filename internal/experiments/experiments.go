// Package experiments regenerates every table and figure of the paper's
// evaluation section over the simulated substrate. Each experiment is a
// named function producing a Table whose rows mirror the series the paper
// reports; cmd/cebench prints them and the root bench_test.go exposes one
// benchmark per artifact.
//
// Scaling note: the paper tunes 16384 trials over 14 stages on AWS. The
// trial populations here are scaled (256-512 trials) so that an experiment
// matrix of 4 systems x 5 models executes in seconds; the stage structure,
// reduction factor, epochs per stage and all mechanisms are unchanged, and
// every scaled quantity is noted in the table's Notes field.
package experiments

import (
	"fmt"
	"html/template"
	"sort"
	"strings"
)

// Table is one regenerated artifact.
type Table struct {
	ID      string // "fig9", "tab2", ...
	Title   string
	Headers []string
	Rows    [][]string
	Notes   string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (header row first); the title
// and notes travel as "#"-prefixed comment lines.
func (t *Table) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n", t.ID, t.Title)
	writeCSVRow(&b, t.Headers)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "# note: %s\n", t.Notes)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			fmt.Fprintf(b, "%q", c)
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

// HTML renders the table as a standalone HTML fragment (cebench stitches
// fragments into a self-contained report).
func (t *Table) HTML() string {
	var b strings.Builder
	fmt.Fprintf(&b, "<section id=%q>\n<h2>%s: %s</h2>\n<table>\n<thead><tr>",
		template.HTMLEscapeString(t.ID), template.HTMLEscapeString(t.ID), template.HTMLEscapeString(t.Title))
	for _, h := range t.Headers {
		fmt.Fprintf(&b, "<th>%s</th>", template.HTMLEscapeString(h))
	}
	b.WriteString("</tr></thead>\n<tbody>\n")
	for _, row := range t.Rows {
		b.WriteString("<tr>")
		for _, c := range row {
			fmt.Fprintf(&b, "<td>%s</td>", template.HTMLEscapeString(c))
		}
		b.WriteString("</tr>\n")
	}
	b.WriteString("</tbody>\n</table>\n")
	if t.Notes != "" {
		fmt.Fprintf(&b, "<p class=\"note\">%s</p>\n", template.HTMLEscapeString(t.Notes))
	}
	b.WriteString("</section>\n")
	return b.String()
}

// HTMLReport wraps rendered tables into one self-contained document.
func HTMLReport(tables []*Table) string {
	var b strings.Builder
	b.WriteString(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>CE-scaling reproduction report</title>
<style>
body{font-family:sans-serif;max-width:72rem;margin:2rem auto;padding:0 1rem}
table{border-collapse:collapse;margin:.5rem 0}
th,td{border:1px solid #ccc;padding:.25rem .6rem;text-align:left;font-size:.9rem}
th{background:#f0f0f0}
.note{color:#555;font-size:.85rem}
h2{margin-top:2rem}
</style></head><body>
<h1>CE-scaling reproduction report</h1>
<p>Regenerated tables and figures (see EXPERIMENTS.md for paper-vs-measured commentary).</p>
`)
	for _, t := range tables {
		b.WriteString(t.HTML())
	}
	b.WriteString("</body></html>\n")
	return b.String()
}

// Runner produces one artifact. Implementations must be deterministic for a
// given seed.
type Runner func(seed uint64) (*Table, error)

// registry maps experiment ids to runners, populated by init functions in
// the per-area files.
var registry = map[string]Runner{}

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = r
}

// IDs returns every registered experiment id in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Get returns the runner for id.
func Get(id string) (Runner, bool) {
	r, ok := registry[id]
	return r, ok
}

// Run executes the experiment id with the given seed.
func Run(id string, seed uint64) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	return r(seed)
}

// --- shared formatting helpers ---

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }

func seconds(v float64) string {
	switch {
	case v >= 3600:
		return fmt.Sprintf("%.2fh", v/3600)
	case v >= 60:
		return fmt.Sprintf("%.1fm", v/60)
	default:
		return fmt.Sprintf("%.1fs", v)
	}
}

func dollars(v float64) string {
	if v < 0.01 {
		return fmt.Sprintf("$%.4f", v)
	}
	return fmt.Sprintf("$%.2f", v)
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// reduction returns "x vs y" improvement as a fraction (positive = better).
func reduction(base, ours float64) float64 {
	if base <= 0 {
		return 0
	}
	return (base - ours) / base
}
