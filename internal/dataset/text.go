package dataset

import (
	"math"

	"repro/internal/sim"
)

// TextCorpus is a synthetic sentiment corpus: token-id documents with ±1
// labels, standing in for IMDb-style review data. Documents follow a
// Zipf-like token distribution with a class-dependent bias over a sentiment
// lexicon, so a linear classifier over token features is learnable but not
// trivially separable.
type TextCorpus struct {
	Docs   [][]int
	Labels []float64
	Vocab  int
}

// TextConfig controls corpus generation.
type TextConfig struct {
	Docs   int
	Vocab  int
	AvgLen int
	// LexiconFrac is the fraction of the vocabulary acting as sentiment
	// tokens (half positive, half negative).
	LexiconFrac float64
	// Signal boosts the probability of class-consistent sentiment tokens;
	// 0 means unlearnable, 2-4 gives IMDb-like difficulty.
	Signal float64
}

// GenerateText produces a corpus under cfg using rng.
func GenerateText(rng *sim.Rand, cfg TextConfig) *TextCorpus {
	if cfg.Vocab < 10 {
		cfg.Vocab = 10
	}
	if cfg.AvgLen < 4 {
		cfg.AvgLen = 4
	}
	if cfg.LexiconFrac <= 0 || cfg.LexiconFrac > 0.5 {
		cfg.LexiconFrac = 0.1
	}
	lexicon := int(float64(cfg.Vocab) * cfg.LexiconFrac)
	if lexicon < 2 {
		lexicon = 2
	}
	half := lexicon / 2

	// Zipf-ish sampler over the vocabulary via inverse-CDF on 1/(rank+1).
	cdf := make([]float64, cfg.Vocab)
	total := 0.0
	for i := range cdf {
		total += 1 / float64(i+2)
		cdf[i] = total
	}
	sample := func() int {
		u := rng.Float64() * total
		lo, hi := 0, cfg.Vocab-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}

	c := &TextCorpus{Vocab: cfg.Vocab}
	for d := 0; d < cfg.Docs; d++ {
		label := 1.0
		if rng.Float64() < 0.5 {
			label = -1
		}
		// Document length: geometric-ish around AvgLen.
		length := 1 + int(rng.Exp(float64(cfg.AvgLen-1)))
		doc := make([]int, 0, length)
		for t := 0; t < length; t++ {
			tok := sample()
			// Class-consistent sentiment boost: re-draw sentiment tokens of
			// the wrong polarity with probability proportional to Signal.
			if tok < lexicon && cfg.Signal > 0 {
				positive := tok < half
				wants := label > 0
				if positive != wants && rng.Float64() < cfg.Signal/(1+cfg.Signal) {
					// Flip into the class-consistent half of the lexicon.
					if wants {
						tok = rng.Intn(half)
					} else {
						tok = half + rng.Intn(lexicon-half)
					}
				}
			}
			doc = append(doc, tok)
		}
		c.Docs = append(c.Docs, doc)
		c.Labels = append(c.Labels, label)
	}
	return c
}

// AvgLen returns the mean document length.
func (c *TextCorpus) AvgLen() float64 {
	if len(c.Docs) == 0 {
		return 0
	}
	total := 0
	for _, d := range c.Docs {
		total += len(d)
	}
	return float64(total) / float64(len(c.Docs))
}

// Vectorize folds token counts into dim features with multiplicative
// hashing (signed, feature-hashing style) and l2-normalizes each row,
// returning a Matrix the SGD engine can train on directly.
func (c *TextCorpus) Vectorize(dim int) *Matrix {
	if dim < 2 {
		dim = 2
	}
	m := &Matrix{Rows: len(c.Docs), Cols: dim,
		X: make([]float64, len(c.Docs)*dim),
		Y: append([]float64(nil), c.Labels...)}
	for r, doc := range c.Docs {
		row := m.X[r*dim : (r+1)*dim]
		for _, tok := range doc {
			h := hashToken(uint64(tok))
			idx := int(h % uint64(dim))
			sign := 1.0
			if (h>>63)&1 == 1 {
				sign = -1
			}
			row[idx] += sign
		}
		// l2 normalize so the learning rate is scale-free.
		var norm float64
		for _, v := range row {
			norm += v * v
		}
		if norm > 0 {
			inv := 1 / math.Sqrt(norm)
			for i := range row {
				row[i] *= inv
			}
		}
	}
	return m
}

// hashToken is splitmix64 over the token id (a stable stateless hash).
func hashToken(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
