package scheduler

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/platform"
	"repro/internal/predictor"
	"repro/internal/workload"
)

// syntheticCandidates builds a tiny, fully controlled frontier.
func syntheticCandidates() []cost.Point {
	return []cost.Point{
		{Alloc: cost.Allocation{N: 50, MemMB: 4096, Storage: platform.ElastiCache}, Time: 10, Cost: 1.0},
		{Alloc: cost.Allocation{N: 20, MemMB: 2048, Storage: platform.VMPS}, Time: 20, Cost: 0.5},
		{Alloc: cost.Allocation{N: 10, MemMB: 1769, Storage: platform.VMPS}, Time: 40, Cost: 0.25},
		{Alloc: cost.Allocation{N: 5, MemMB: 1024, Storage: platform.S3}, Time: 80, Cost: 0.1},
	}
}

func newSynthetic(budget, qos float64) *Scheduler {
	return New(Config{
		Candidates: syntheticCandidates(),
		Budget:     budget,
		QoS:        qos,
		TargetLoss: 0.1,
		Offline:    predictor.NewOffline(workload.MobileNet()),
	})
}

func TestCandidatesSortedByTime(t *testing.T) {
	// Feed them reversed; New must sort.
	cands := syntheticCandidates()
	for i, j := 0, len(cands)-1; i < j; i, j = i+1, j-1 {
		cands[i], cands[j] = cands[j], cands[i]
	}
	s := New(Config{Candidates: cands, Budget: 1, TargetLoss: 0.1,
		Offline: predictor.NewOffline(workload.MobileNet())})
	for i := 1; i < len(s.cfg.Candidates); i++ {
		if s.cfg.Candidates[i].Time < s.cfg.Candidates[i-1].Time {
			t.Fatal("candidates not sorted by time")
		}
	}
	if s.fastest().N != 50 {
		t.Errorf("fastest = %+v", s.fastest())
	}
	if s.cheapest().N != 5 {
		t.Errorf("cheapest = %+v", s.cheapest())
	}
}

func TestSelectBestBudgetCase(t *testing.T) {
	s := newSynthetic(10, 0)
	// 10 epochs at cost<=1.0 total budget: only the 0.1-cost point fits
	// (10 x 0.1 = 1 <= 10? all fit: 10x1.0=10 <= 10). Fastest affordable wins.
	a, ok := s.selectBest(10, 0, 0)
	if !ok || a.N != 50 {
		t.Errorf("selectBest = %+v ok=%v, want the fastest (all affordable)", a, ok)
	}
	// With 9 already spent, only cheap points remain affordable.
	a, ok = s.selectBest(10, 0, 9)
	if !ok || a.N != 5 {
		t.Errorf("selectBest with spent=9 = %+v ok=%v, want the cheapest", a, ok)
	}
	// Nothing fits.
	if _, ok := s.selectBest(10, 0, 9.99); ok {
		t.Error("infeasible projection should fail")
	}
}

func TestSelectBestQoSCase(t *testing.T) {
	s := newSynthetic(0, 500)
	// 10 epochs, deadline 500: all fit except the 80s point at elapsed 0?
	// 10x80 = 800 > 500: excluded. Cheapest fitting = the 40s point.
	a, ok := s.selectBest(10, 0, 0)
	if !ok || a.N != 10 {
		t.Errorf("selectBest = %+v ok=%v, want the 40s/0.25 point", a, ok)
	}
	// With elapsed 350, only the 10s point projects under the deadline.
	a, ok = s.selectBest(10, 350, 0)
	if !ok || a.N != 50 {
		t.Errorf("selectBest elapsed=350 = %+v ok=%v, want the fastest", a, ok)
	}
}

func TestSelectBestRelaxed(t *testing.T) {
	s := newSynthetic(0, 500)
	// Strictly nothing at elapsed=420 (10x10=100 > 80 headroom), but a 15%
	// stretch admits the fastest (elapsed+100 = 520 <= 575).
	if _, ok := s.selectBest(10, 420, 0); ok {
		t.Fatal("strict selection should fail")
	}
	a, ok := s.selectBestRelaxed(10, 420, 0, 1.15)
	if !ok || a.N != 50 {
		t.Errorf("relaxed = %+v ok=%v", a, ok)
	}
}

func TestEscalateQoSMovesOneStepFaster(t *testing.T) {
	s := newSynthetic(0, 1000)
	s.alloc = s.cfg.Candidates[2].Alloc // the 40s point
	next := s.escalate()
	if next != s.cfg.Candidates[1].Alloc {
		t.Errorf("escalate = %+v, want one step faster", next)
	}
	s.alloc = s.cfg.Candidates[0].Alloc // already fastest
	if got := s.escalate(); got != s.alloc {
		t.Errorf("escalate at the top should stay, got %+v", got)
	}
	s.alloc = cost.Allocation{N: 999} // unknown
	if got := s.escalate(); got != s.fastest() {
		t.Errorf("escalate from unknown should jump to fastest, got %+v", got)
	}
}

func TestEscalateBudgetMovesOneStepCheaper(t *testing.T) {
	s := newSynthetic(10, 0)
	s.alloc = s.cfg.Candidates[1].Alloc // cost 0.5
	next := s.escalate()
	if next != s.cfg.Candidates[2].Alloc { // cost 0.25 is the next cheaper
		t.Errorf("escalate = %+v, want the next-cheaper point", next)
	}
	s.alloc = s.cfg.Candidates[3].Alloc // already cheapest
	if got := s.escalate(); got != s.alloc {
		t.Errorf("escalate at the bottom should stay, got %+v", got)
	}
}

func TestWorthSwitchingHysteresis(t *testing.T) {
	s := newSynthetic(1000, 0)
	s.alloc = s.cfg.Candidates[1].Alloc // 20s/0.5
	// Switching to the 10s point halves the time: worth it.
	if !s.worthSwitching(s.cfg.Candidates[0].Alloc, 10, 0, 0) {
		t.Error("2x speedup should be worth a restart")
	}
	// A hypothetical marginal candidate: inject a nearly identical point.
	s.cfg.Candidates = append(s.cfg.Candidates, cost.Point{
		Alloc: cost.Allocation{N: 21, MemMB: 2048, Storage: platform.VMPS}, Time: 19.5, Cost: 0.49,
	})
	if s.worthSwitching(s.cfg.Candidates[len(s.cfg.Candidates)-1].Alloc, 10, 0, 0) {
		t.Error("a 2.5% gain should not justify a restart")
	}
	// But staying put while the budget projection fails forces the switch.
	if !s.worthSwitching(s.cfg.Candidates[len(s.cfg.Candidates)-1].Alloc, 10, 0, 999) {
		t.Error("budget violation must force the switch")
	}
}
