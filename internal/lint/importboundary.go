package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// ImportBoundary enforces the platform layering on deterministic packages.
//
// The PR1 refactor put a substrate-agnostic seam (internal/platform)
// between the CE-scaling logic and where it runs; determinism of the sim
// path depends on that seam staying sealed. Deterministic packages must
// not import the live substrate (platform/livebackend, lambda, psnet,
// objstore, distml — the policy's forbid list) nor reach for the host
// (net, os): all time, randomness, and I/O arrive through injected
// interfaces. Process output (os.Stdout, fmt.Print*) is reserved for the
// policy's output set — the experiment renderers and commands — so every
// byte on stdout has exactly one, auditable, producer.
var ImportBoundary = &Analyzer{
	Name:  "importboundary",
	Doc:   "keep deterministic packages off the live substrate, the network, and process I/O",
	Scope: ScopeDeterministic,
	Run:   runImportBoundary,
}

func runImportBoundary(p *Pass) {
	isOutput := p.Policy.IsOutput(p.Path)
	for _, file := range p.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			switch {
			case p.Policy.ForbiddenImport(path):
				p.Reportf(imp.Pos(), "deterministic package imports %s (live/external substrate); depend on internal/platform interfaces instead", path)
			case path == "os" && !isOutput:
				p.Reportf(imp.Pos(), "deterministic package imports os; process I/O is reserved for the policy's output packages")
			}
		}
	}
	if isOutput {
		return
	}
	inspectAll(p, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, name, ok := pkgSel(p.Info, sel)
		if !ok {
			return true
		}
		switch {
		case pkg == "os" && (name == "Stdout" || name == "Stderr" || name == "Stdin"):
			p.Reportf(sel.Pos(), "os.%s in a deterministic package; only the policy's output packages touch process streams", name)
		case pkg == "fmt" && strings.HasPrefix(name, "Print"):
			p.Reportf(sel.Pos(), "fmt.%s writes to process stdout; deterministic packages return values and let an output package print", name)
		}
		return true
	})
}
