package ml

import (
	"testing"

	"repro/internal/sim"
)

// TestNextBatchLargerThanShard: a batch size exceeding the shard clamps to
// the full shard, every call returns all rows, and the cursor never runs
// past the permutation.
func TestNextBatchLargerThanShard(t *testing.T) {
	shard := binData(25, 3, 0, 1)
	w := NewWorker(shard, sim.NewRand(1))
	for call := 0; call < 5; call++ {
		b := w.NextBatch(100)
		if len(b) != 25 {
			t.Fatalf("call %d: batch of %d rows, want full shard (25)", call, len(b))
		}
		seen := make(map[int]bool, len(b))
		for _, idx := range b {
			if idx < 0 || idx >= 25 {
				t.Fatalf("call %d: index %d out of shard range", call, idx)
			}
			seen[idx] = true
		}
		if len(seen) != 25 {
			t.Fatalf("call %d: %d distinct rows, want 25", call, len(seen))
		}
	}
}

// TestNextBatchExactlyConsumesShard: batches that tile the shard exactly
// trigger a reshuffle on the next call, and each pass covers every row
// exactly once.
func TestNextBatchExactlyConsumesShard(t *testing.T) {
	const rows, batch = 60, 20
	shard := binData(rows, 2, 0, 2)
	w := NewWorker(shard, sim.NewRand(9))
	for pass := 0; pass < 4; pass++ {
		counts := make([]int, rows)
		for i := 0; i < rows/batch; i++ {
			b := w.NextBatch(batch)
			if len(b) != batch {
				t.Fatalf("pass %d: batch len %d, want %d", pass, len(b), batch)
			}
			for _, idx := range b {
				counts[idx]++
			}
		}
		for idx, c := range counts {
			if c != 1 {
				t.Fatalf("pass %d: row %d drawn %d times, want exactly once", pass, idx, c)
			}
		}
	}
}

// TestShuffleStreamDeterministicAcrossReshuffles locks the shuffle stream:
// the in-place reshuffle must consume the RNG exactly like rng.Perm did, so
// a worker's batch sequence over many reshuffles equals the reference
// sequence built from Perm on an identical RNG stream.
func TestShuffleStreamDeterministicAcrossReshuffles(t *testing.T) {
	const rows, batch, passes = 30, 10, 5
	shard := binData(rows, 2, 0, 3)
	const seed = 77
	w := NewWorker(shard, sim.NewRand(seed))

	ref := sim.NewRand(seed)
	var want []int
	for p := 0; p < passes; p++ {
		want = append(want, ref.Perm(rows)...)
	}
	var got []int
	for len(got) < len(want) {
		got = append(got, w.NextBatch(batch)...)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("shuffle stream diverges from rng.Perm reference at draw %d: got %d, want %d", i, got[i], want[i])
		}
	}

	// And two workers with identical seeds stay in lockstep.
	w1 := NewWorker(shard, sim.NewRand(5))
	w2 := NewWorker(shard, sim.NewRand(5))
	for call := 0; call < 4*rows/batch; call++ {
		b1, b2 := w1.NextBatch(batch), w2.NextBatch(batch)
		for i := range b1 {
			if b1[i] != b2[i] {
				t.Fatalf("call %d: same-seed workers diverged", call)
			}
		}
	}
}

// TestGradientMatchesGradientInto: the scratch-returning Gradient and the
// caller-owned-buffer GradientInto produce identical vectors when driven by
// identical batch streams.
func TestGradientMatchesGradientInto(t *testing.T) {
	shard := binData(120, 8, 0.1, 11)
	obj := Logistic{L2: 1e-3}
	wvec := make([]float64, shard.Cols)
	rng := sim.NewRand(4)
	for i := range wvec {
		wvec[i] = rng.NormFloat64()
	}
	w1 := NewWorker(shard, sim.NewRand(21))
	w2 := NewWorker(shard, sim.NewRand(21))
	dst := make([]float64, shard.Cols)
	for iter := 0; iter < 6; iter++ {
		g := w1.Gradient(obj, wvec, 30)
		w2.GradientInto(obj, wvec, 30, dst)
		for i := range g {
			if g[i] != dst[i] {
				t.Fatalf("iter %d: Gradient and GradientInto differ at dim %d: %g vs %g", iter, i, g[i], dst[i])
			}
		}
	}
}

// TestGradientScratchReused documents the zero-alloc contract: Gradient
// returns the worker's scratch buffer, so the next call overwrites it.
func TestGradientScratchReused(t *testing.T) {
	shard := binData(100, 4, 0.1, 13)
	w := NewWorker(shard, sim.NewRand(1))
	wvec := make([]float64, shard.Cols)
	g1 := w.Gradient(Logistic{}, wvec, 25)
	g2 := w.Gradient(Logistic{}, wvec, 25)
	if &g1[0] != &g2[0] {
		t.Error("Gradient should reuse the worker scratch buffer between calls")
	}
}

// TestRunEpochMatchesNaiveReference cross-checks the fused, zero-alloc
// epoch path against a naive re-implementation (fresh allocations, scalar
// reduction) driven by identically seeded workers: the loss traces must be
// bit-identical.
func TestRunEpochMatchesNaiveReference(t *testing.T) {
	data := binData(600, 16, 0.15, 17)
	cfg := Config{Objective: Logistic{L2: 1e-4}, Workers: 4, BatchPerWkr: 30, LearningRate: 0.2, Seed: 41}
	tr, err := NewTrainer(data, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Naive reference: same shard/RNG construction as NewTrainer, scalar
	// gradient accumulation row by row via the Objective interface, fresh
	// slices everywhere.
	shards := data.Partition(cfg.Workers)
	seedRng := sim.NewRand(cfg.Seed)
	workers := make([]*Worker, cfg.Workers)
	for i := range workers {
		workers[i] = NewWorker(shards[i], sim.NewRand(seedRng.Uint64()+uint64(i)))
	}
	weights := make([]float64, data.Cols)
	refEpoch := func() float64 {
		k := shards[0].Rows
		for _, s := range shards {
			if s.Rows < k {
				k = s.Rows
			}
		}
		k /= cfg.BatchPerWkr
		for it := 0; it < k; it++ {
			sum := make([]float64, data.Cols)
			for _, w := range workers {
				g := make([]float64, data.Cols)
				w.GradientInto(cfg.Objective, weights, cfg.BatchPerWkr, g)
				Add(g, sum)
			}
			Axpy(-cfg.LearningRate/float64(cfg.Workers), sum, weights)
		}
		return cfg.Objective.Loss(weights, data)
	}

	for e := 0; e < 5; e++ {
		got := tr.RunEpoch()
		want := refEpoch()
		if got != want {
			t.Fatalf("epoch %d: fused path loss %v, reference %v", e, got, want)
		}
	}
}
