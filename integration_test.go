// Integration tests exercising the public API end to end: the full Fig. 6
// pipeline (profile -> plan -> execute) and its invariants, through
// repro/cescaling only.
package repro_test

import (
	"math"
	"testing"

	"repro/cescaling"
)

func TestIntegrationProfilePlanExecute(t *testing.T) {
	w, err := cescaling.ModelByName("MobileNet-Cifar10")
	if err != nil {
		t.Fatal(err)
	}
	fw := cescaling.New(w)

	// Profile: a nonempty frontier, strictly ordered.
	if len(fw.Pareto) < 5 {
		t.Fatalf("frontier too small: %d", len(fw.Pareto))
	}
	for i := 1; i < len(fw.Pareto); i++ {
		if fw.Pareto[i].Time <= fw.Pareto[i-1].Time || fw.Pareto[i].Cost >= fw.Pareto[i-1].Cost {
			t.Fatal("frontier ordering violated")
		}
	}

	// Plan tuning under a budget derived from the frontier itself.
	budget := fw.Pareto[len(fw.Pareto)-1].Cost * 64 * 2 * 4 // rough but generous
	tune, err := fw.RunHPT(64, 2, 2, cescaling.Options{Budget: budget, Seed: 11}, cescaling.NewRunner(11))
	if err != nil {
		t.Fatal(err)
	}
	// The plan's predicted JCT should be in the ballpark of the measured
	// one (the validation experiments quantify this precisely; here we
	// guard against order-of-magnitude drift).
	ratio := tune.Run.JCT / tune.Plan.JCT
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("measured tuning JCT %g vs planned %g (ratio %.2f)", tune.Run.JCT, tune.Plan.JCT, ratio)
	}

	// Train the tuning winner under a deadline.
	probe, err := fw.Train(cescaling.Options{Budget: 1e12, Seed: 12}, cescaling.NewRunner(12))
	if err != nil {
		t.Fatal(err)
	}
	train, err := fw.Train(cescaling.Options{QoS: probe.Result.JCT * 2, Seed: 12}, cescaling.NewRunner(13))
	if err != nil {
		t.Fatal(err)
	}
	if !train.Result.Converged {
		t.Fatal("training did not converge")
	}
	if train.Result.TotalCost > probe.Result.TotalCost {
		t.Errorf("deadline run ($%.2f) should be cheaper than the fastest run ($%.2f)",
			train.Result.TotalCost, probe.Result.TotalCost)
	}
}

func TestIntegrationWorkflow(t *testing.T) {
	w, _ := cescaling.ModelByName("MobileNet-Cifar10")
	fw := cescaling.New(w)
	out, err := fw.RunWorkflow(cescaling.WorkflowOptions{
		Budget: 600, Trials: 32, Seed: 21,
	}, cescaling.NewRunner(21))
	if err != nil {
		t.Fatal(err)
	}
	if !out.WithinConstraint || !out.Train.Result.Converged {
		t.Errorf("workflow: within=%v converged=%v", out.WithinConstraint, out.Train.Result.Converged)
	}
	if math.Abs(out.TotalCost-(out.Tune.Run.TotalCost+out.Train.Result.TotalCost)) > 1e-9 {
		t.Error("workflow totals do not add up")
	}
}

func TestIntegrationDeterminismAcrossRuns(t *testing.T) {
	run := func() (float64, float64) {
		w, _ := cescaling.ModelByName("ResNet50-Cifar10")
		fw := cescaling.New(w)
		out, err := fw.Train(cescaling.Options{Budget: 1e6, Seed: 31}, cescaling.NewRunner(31))
		if err != nil {
			t.Fatal(err)
		}
		return out.Result.JCT, out.Result.TotalCost
	}
	j1, c1 := run()
	j2, c2 := run()
	if j1 != j2 || c1 != c2 {
		t.Errorf("public API runs are not deterministic: (%g, %g) vs (%g, %g)", j1, c1, j2, c2)
	}
}

func TestIntegrationBaselinesComparable(t *testing.T) {
	// The baselines plan over the same substrate, so CE's plan should never
	// be slower than the static S3 plan it generalizes, at equal budget.
	w, _ := cescaling.ModelByName("BERT-IMDb")
	fw := cescaling.New(w)
	stages := cescaling.SHAStages(64, 2, 2)
	static, err := cescaling.Baselines.LambdaMLPlan(fw.Model, stages, fw.Full, 1e9, 0)
	if err != nil {
		t.Fatal(err)
	}
	budget := static.Cost * 1.3
	ce, _, err := fw.PlanHPT(64, 2, 2, cescaling.Options{Budget: budget, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	staticB, err := cescaling.Baselines.LambdaMLPlan(fw.Model, stages, fw.Full, budget, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ce.JCT > staticB.JCT*(1+1e-9) {
		t.Errorf("CE plan JCT %g worse than static S3 %g at equal budget", ce.JCT, staticB.JCT)
	}
}
