package planner

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/workload"
)

// TestGreedyRespectsRandomBudgets: for any budget above the cheapest static
// plan, the greedy result is feasible and never worse than the optimal
// static plan within that budget.
func TestGreedyRespectsRandomBudgets(t *testing.T) {
	pl := newPlanner(t, workload.MobileNet(), SHAStages(128, 2, 2))
	cheapest := pl.OptimalStatic(0, 1e15)
	if err := quick.Check(func(raw uint16) bool {
		mult := 1.05 + float64(raw)/65535*2 // 1.05x .. 3.05x
		budget := cheapest.Cost * mult
		res := pl.PlanMinJCT(budget)
		if !res.Feasible || res.Cost > budget*(1+1e-9) {
			return false
		}
		static := pl.OptimalStatic(budget, 0)
		return res.JCT <= static.JCT*(1+1e-9)
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestGreedyRespectsRandomDeadlines mirrors the budget property for the
// cost-minimization variant.
func TestGreedyRespectsRandomDeadlines(t *testing.T) {
	pl := newPlanner(t, workload.MobileNet(), SHAStages(128, 2, 2))
	fastest := pl.OptimalStatic(1e15, 0)
	if err := quick.Check(func(raw uint16) bool {
		mult := 1.1 + float64(raw)/65535*3 // 1.1x .. 4.1x
		qos := fastest.JCT * mult
		res := pl.PlanMinCost(qos)
		if !res.Feasible || res.JCT > qos*(1+1e-9) {
			return false
		}
		static := pl.OptimalStatic(0, qos)
		return res.Cost <= static.Cost*(1+1e-9)
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestJCTAdditivity: the plan JCT equals the sum of its transition-aware
// stage times for random plans.
func TestJCTAdditivity(t *testing.T) {
	pl := newPlanner(t, workload.LRHiggs(), SHAStages(64, 2, 2))
	rng := sim.NewRand(17)
	for trial := 0; trial < 50; trial++ {
		p := Uniform(pl.P[0].Alloc, len(pl.Stages))
		for i := range p.Stages {
			p.Stages[i] = pl.P[rng.Intn(len(pl.P))].Alloc
		}
		var sum float64
		for i, a := range p.Stages {
			cold := i == 0 || a.MemMB != p.Stages[i-1].MemMB
			sum += pl.stageTimeWavesCold(i, a, pl.waves(i, a), cold)
		}
		if got := pl.JCT(p); math.Abs(got-sum) > 1e-9*sum {
			t.Fatalf("JCT %g != stage sum %g", got, sum)
		}
	}
}

// TestCostAdditivityAndMonotonicity: plan cost sums stage costs, and every
// stage cost grows with the trial count.
func TestCostAdditivityAndMonotonicity(t *testing.T) {
	plSmall := newPlanner(t, workload.ResNet50(), []Stage{{Trials: 8, Epochs: 2}, {Trials: 4, Epochs: 2}})
	plBig := newPlanner(t, workload.ResNet50(), []Stage{{Trials: 16, Epochs: 2}, {Trials: 8, Epochs: 2}})
	for _, pt := range plSmall.P {
		small := plSmall.StageCost(0, pt.Alloc)
		big := plBig.StageCost(0, pt.Alloc)
		if big <= small {
			t.Fatalf("%v: doubling trials did not raise stage cost (%g vs %g)", pt.Alloc, small, big)
		}
	}
}

// TestMoveCandidatesDirections: upgrades propose strictly faster per-epoch
// allocations, cheapenings strictly cheaper ones.
func TestMoveCandidatesDirections(t *testing.T) {
	pl := newPlanner(t, workload.MobileNet(), SHAStages(32, 2, 2))
	mid := pl.P[len(pl.P)/2]
	plan := Uniform(mid.Alloc, len(pl.Stages))
	for _, cand := range pl.moveCandidates(plan, 0, true) {
		j := pl.index(cand.Stages[0])
		if pl.P[j].Time >= mid.Time {
			t.Fatalf("upgrade proposed %v, not faster than %v", cand.Stages[0], mid.Alloc)
		}
	}
	for _, cand := range pl.moveCandidates(plan, 0, false) {
		j := pl.index(cand.Stages[0])
		if pl.P[j].Cost >= mid.Cost {
			t.Fatalf("cheapen proposed %v, not cheaper than %v", cand.Stages[0], mid.Alloc)
		}
	}
}

// TestStageTimeCappedNeverFaster: a concurrency share can only slow a stage.
func TestStageTimeCappedNeverFaster(t *testing.T) {
	pl := newPlanner(t, workload.LRHiggs(), SHAStages(512, 2, 2))
	share := pl.ConcurrencyShare()
	if err := quick.Check(func(si, pi uint8) bool {
		i := int(si) % len(pl.Stages)
		a := pl.P[int(pi)%len(pl.P)].Alloc
		return pl.StageTimeCapped(i, a, share) >= pl.StageTime(i, a)-1e-9
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
