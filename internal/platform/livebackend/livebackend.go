// Package livebackend adapts the live execution substrates
// (internal/lambda + internal/objstore + internal/psnet) to the platform
// interfaces, so the CE-scaling controller — unchanged — drives real
// concurrent workers instead of discrete-event models.
//
// A function group invoked through Compute is n real invocations inside the
// local serverless executor: each worker is a goroutine occupying an
// execution environment (cold/warm, concurrency-capped) for the group's
// lifetime. At every epoch boundary the trainer calls RunEpoch and the group
// executes one real synchronization barrier over the wire: under a stateless
// storage kind every worker uploads a gradient-sized object to the HTTP
// object store, a designated worker aggregates and re-publishes the model,
// and everyone re-pulls it (the paper's (3n-2) pattern); under VM-PS every
// worker pushes to the group's TCP parameter server and blocks until the
// round's aggregated update lands (the (2n-2) pattern). Checkpoints written
// through ParamStore travel over real HTTP. Algorithm 2's delayed restart
// therefore overlaps a second real worker group with the running epoch, and
// re-allocation tears groups down and spins them up for real.
//
// Timing, billing and randomness come from a shadow simulated substrate with
// the same seed: the controller's decision inputs (epoch-time and cost
// metering, start delays, noise draws) are identical on both backends, which
// is what makes sim/live decision parity testable, while the training
// statistics stay with the job's loss engine. The live substrate contributes
// the actual execution: environments, sockets, barriers and payloads.
package livebackend

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/distml"
	"repro/internal/lambda"
	"repro/internal/objstore"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/platform/simbackend"
	"repro/internal/pricing"
	"repro/internal/psnet"
	"repro/internal/sim"
)

// Config parameterizes the live substrate.
type Config struct {
	// Seed drives the shadow metering substrate and all named random
	// streams; equal seeds make sim and live decisions comparable.
	Seed uint64
	// MaxConcurrency caps concurrent worker invocations (default 3000, the
	// same account cap the shadow platform enforces).
	MaxConcurrency int
	// WorkerTimeout bounds one worker invocation's lifetime (default 6h —
	// a worker lives as long as its group).
	WorkerTimeout time.Duration
	// SpawnTimeout bounds how long InvokeGroup waits for all workers to be
	// live inside their execution environments (default 30s).
	SpawnTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrency <= 0 {
		c.MaxConcurrency = 3000
	}
	if c.WorkerTimeout <= 0 {
		c.WorkerTimeout = 6 * time.Hour
	}
	if c.SpawnTimeout <= 0 {
		c.SpawnTimeout = 30 * time.Second
	}
	return c
}

// Backend is the live substrate behind the platform interfaces.
type Backend struct {
	cfg     Config
	shadow  *simbackend.Backend
	invoker *lambda.Invoker

	obj     *objstore.Server
	httpSrv *http.Server
	client  *objstore.Client
	objURL  string

	start time.Time
	obs   *obs.Observer

	mu         sync.Mutex
	groups     []*liveGroup
	nextGID    int
	registered map[int]string // memMB -> function name
	barriers   uint64
	psRounds   int
	closed     bool

	ckptMu sync.Mutex
	ckpt   []float64
}

// New starts the live substrate: a local object store served over HTTP on a
// loopback socket, a serverless function executor, and a shadow metering
// substrate seeded with cfg.Seed.
func New(cfg Config) (*Backend, error) {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("livebackend: object store listener: %w", err)
	}
	obj := objstore.NewServer()
	srv := &http.Server{Handler: obj}
	go srv.Serve(ln)
	url := "http://" + ln.Addr().String()
	b := &Backend{
		cfg:        cfg,
		shadow:     simbackend.New(cfg.Seed),
		invoker:    lambda.NewInvoker(cfg.MaxConcurrency),
		obj:        obj,
		httpSrv:    srv,
		client:     objstore.NewClient(url),
		objURL:     url,
		start:      time.Now(),
		registered: make(map[int]string),
	}
	return b, nil
}

// Compute implements platform.Backend.
func (b *Backend) Compute() platform.Compute { return liveCompute{b} }

// Params implements platform.Backend.
func (b *Backend) Params() platform.ParamStore { return liveParams{b} }

// Clock implements platform.Backend. Now is wall time since the backend
// started; Advance drives the shadow substrate's virtual clock so its
// time-based behaviour (warm-sandbox expiry) matches the sim backend.
func (b *Backend) Clock() platform.Clock { return liveClock{b} }

// Rand implements platform.Backend with the shadow's named streams, so
// noise draws are identical to the sim backend under the same seed.
func (b *Backend) Rand(name string) *sim.Rand { return b.shadow.Rand(name) }

// Prices implements platform.Backend.
func (b *Backend) Prices() pricing.PriceBook { return b.shadow.Prices() }

// Name implements platform.Backend.
func (b *Backend) Name() string { return "live" }

// ObjectStoreURL returns the HTTP address of the backing object store.
func (b *Backend) ObjectStoreURL() string { return b.objURL }

// SetObserver implements platform.Observable. Unlike the sim backend, live
// events are stamped with wall-clock seconds since the backend started —
// the substrate executes for real, so its traces record what actually
// happened, when, and are NOT byte-identical across runs. The shadow
// metering substrate stays unobserved to keep modeled and measured
// timestamps out of the same scope.
func (b *Backend) SetObserver(o *obs.Observer) { b.obs = o }

// now is the wall-clock trace timestamp: seconds since the backend started.
func (b *Backend) now() float64 { return time.Since(b.start).Seconds() }

// observeStats copies the substrate's cumulative counters into the
// observer's metrics so an exported snapshot reflects the real work done.
func (b *Backend) observeStats() {
	if !b.obs.Enabled() {
		return
	}
	s := b.Stats()
	st := b.obs.Stats()
	st.Set("live.invocations", float64(s.Invocations))
	st.Set("live.cold_starts", float64(s.ColdStarts))
	st.Set("live.epoch_barriers", float64(s.EpochBarriers))
	st.Set("live.ps_rounds", float64(s.PSRounds))
	st.Set("live.obj_puts", float64(s.ObjPuts))
	st.Set("live.obj_gets", float64(s.ObjGets))
	os := b.obj.Stats()
	st.Set("live.obj_bytes_in", float64(os.BytesIn))
	st.Set("live.obj_bytes_out", float64(os.BytesOut))
}

// Stats summarizes the real work the substrate performed.
type Stats struct {
	Invocations   uint64 // worker invocations dispatched
	ColdStarts    uint64 // fresh execution environments created
	EpochBarriers uint64 // real synchronization barriers executed
	PSRounds      int    // BSP rounds completed by parameter servers
	ObjPuts       uint64 // object-store writes (gradients, models, checkpoints)
	ObjGets       uint64 // object-store reads
	LiveGroups    int    // worker groups currently admitted
}

// Stats returns a snapshot of the live substrate's counters.
func (b *Backend) Stats() Stats {
	ls := b.invoker.Stats()
	os := b.obj.Stats()
	b.mu.Lock()
	defer b.mu.Unlock()
	rounds := b.psRounds
	for _, g := range b.groups {
		if g.ps != nil {
			rounds += g.ps.Round()
		}
	}
	return Stats{
		Invocations:   ls.Invocations,
		ColdStarts:    ls.ColdStarts,
		EpochBarriers: b.barriers,
		PSRounds:      rounds,
		ObjPuts:       os.Puts,
		ObjGets:       os.Gets,
		LiveGroups:    len(b.groups),
	}
}

// Close tears down every live group, the parameter servers and the object
// store. It implements platform.Closer.
func (b *Backend) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	groups := append([]*liveGroup(nil), b.groups...)
	b.groups = nil
	b.mu.Unlock()
	for _, g := range groups {
		g.shutdown()
	}
	return b.httpSrv.Close()
}

// --- Compute ---

type liveCompute struct{ b *Backend }

func (c liveCompute) InvokeGroup(n, memMB int) ([]platform.Invocation, error) {
	invs, err := c.b.shadow.Compute().InvokeGroup(n, memMB)
	if err != nil {
		return nil, err
	}
	if err := c.b.spawnGroup(n, memMB); err != nil {
		c.b.shadow.Compute().ReleaseGroup(n, memMB, 0)
		return nil, err
	}
	return invs, nil
}

func (c liveCompute) ReleaseGroup(n, memMB int, secondsEach float64) {
	c.b.releaseGroup(n, memMB)
	c.b.shadow.Compute().ReleaseGroup(n, memMB, secondsEach)
}

func (c liveCompute) BillCompute(n, memMB int, secondsEach float64) {
	c.b.shadow.Compute().BillCompute(n, memMB, secondsEach)
}

func (c liveCompute) ColdStartEstimate(memMB int) float64 {
	return c.b.shadow.Compute().ColdStartEstimate(memMB)
}

func (c liveCompute) MaxConcurrency() int { return c.b.cfg.MaxConcurrency }

func (c liveCompute) InFlight() int { return c.b.invoker.InFlight() }

func (c liveCompute) Meter() platform.ComputeMeter { return c.b.shadow.Compute().Meter() }

// --- ParamStore ---

type liveParams struct{ b *Backend }

func (p liveParams) Service(kind platform.StorageKind) platform.StorageService {
	return p.b.shadow.Params().Service(kind)
}

func (p liveParams) Put(key string, vec []float64) error {
	p.b.ckptMu.Lock()
	p.b.ckpt = append([]float64(nil), vec...)
	p.b.ckptMu.Unlock()
	return p.b.client.Put(key, distml.EncodeVec(vec))
}

func (p liveParams) Get(key string) ([]float64, bool, error) {
	data, ok, err := p.b.client.Get(key)
	if err != nil || !ok {
		return nil, false, err
	}
	vec, err := distml.DecodeVec(data)
	if err != nil {
		return nil, false, err
	}
	return vec, true, nil
}

func (p liveParams) LoadCost(n int) float64 { return p.b.shadow.Params().LoadCost(n) }

func (p liveParams) Stats() platform.StoreStats {
	st := p.b.obj.Stats()
	return platform.StoreStats{Puts: st.Puts, Gets: st.Gets}
}

// --- Clock ---

type liveClock struct{ b *Backend }

func (c liveClock) Now() float64 { return time.Since(c.b.start).Seconds() }

func (c liveClock) Advance(d float64) { c.b.shadow.Clock().Advance(d) }

// --- Live worker groups ---

type workerHello struct {
	Group  int `json:"group"`
	Worker int `json:"worker"`
}

type epochCmd struct {
	kind  platform.StorageKind
	model []float64
	epoch int
}

type liveGroup struct {
	id, n, memMB int
	b            *Backend

	cmds    []chan epochCmd
	acks    chan error
	enter   chan struct{}
	fail    chan error
	stop    chan struct{}
	stopped sync.Once
	done    sync.WaitGroup

	psOnce sync.Once
	ps     *psnet.Server
	psAddr string
	psErr  error

	epoch int
}

// ensureRegistered installs the worker handler for memMB (once per size).
func (b *Backend) ensureRegisteredLocked(memMB int) (string, error) {
	if name, ok := b.registered[memMB]; ok {
		return name, nil
	}
	name := fmt.Sprintf("ce-worker-%dmb", memMB)
	err := b.invoker.Register(name, lambda.Registration{
		MemoryMB: memMB,
		Timeout:  b.cfg.WorkerTimeout,
		Handler:  b.workerHandler,
	})
	if err != nil {
		return "", err
	}
	b.registered[memMB] = name
	return name, nil
}

// spawnGroup dispatches n real worker invocations and waits until every one
// is live inside its execution environment.
func (b *Backend) spawnGroup(n, memMB int) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return fmt.Errorf("livebackend: backend closed")
	}
	name, err := b.ensureRegisteredLocked(memMB)
	if err != nil {
		b.mu.Unlock()
		return err
	}
	g := &liveGroup{
		id: b.nextGID, n: n, memMB: memMB, b: b,
		cmds:  make([]chan epochCmd, n),
		acks:  make(chan error, n),
		enter: make(chan struct{}, n),
		fail:  make(chan error, n),
		stop:  make(chan struct{}),
	}
	for i := range g.cmds {
		g.cmds[i] = make(chan epochCmd, 1)
	}
	b.nextGID++
	b.groups = append(b.groups, g)
	b.mu.Unlock()

	g.done.Add(n)
	for i := 0; i < n; i++ {
		payload, _ := json.Marshal(workerHello{Group: g.id, Worker: i})
		go func() {
			defer g.done.Done()
			deadline := time.Now().Add(5 * time.Second)
			for {
				_, err := b.invoker.Invoke(name, payload)
				if errors.Is(err, lambda.ErrThrottled) && time.Now().Before(deadline) {
					time.Sleep(time.Millisecond) // queue and retry, as bursts do
					continue
				}
				if err != nil {
					g.fail <- err
				}
				return
			}
		}()
	}

	spawnStart := b.now()
	timeout := time.After(b.cfg.SpawnTimeout)
	for entered := 0; entered < n; {
		select {
		case <-g.enter:
			entered++
		case err := <-g.fail:
			b.removeGroup(g)
			g.shutdown()
			return fmt.Errorf("livebackend: spawning group (n=%d mem=%dMB): %w", n, memMB, err)
		case <-timeout:
			b.removeGroup(g)
			g.shutdown()
			return fmt.Errorf("livebackend: group (n=%d mem=%dMB) not live after %s", n, memMB, b.cfg.SpawnTimeout)
		}
	}
	if b.obs.Enabled() {
		b.obs.Trace().SpanAt(spawnStart, b.now()-spawnStart, "live", "live", "group_spawn",
			obs.I("group", g.id), obs.I("n", n), obs.I("mem_mb", memMB))
		b.obs.Stats().Inc("live.group_spawns")
	}
	return nil
}

func (b *Backend) groupByID(id int) *liveGroup {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, g := range b.groups {
		if g.id == id {
			return g
		}
	}
	return nil
}

// findGroup returns the oldest admitted group matching (n, memMB) — the same
// FIFO identity the trainer uses when it releases a superseded group.
func (b *Backend) findGroup(n, memMB int) *liveGroup {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, g := range b.groups {
		if g.n == n && g.memMB == memMB {
			return g
		}
	}
	return nil
}

func (b *Backend) removeGroup(g *liveGroup) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, have := range b.groups {
		if have == g {
			b.groups = append(b.groups[:i], b.groups[i+1:]...)
			break
		}
	}
}

// releaseGroup tears down the oldest group matching (n, memMB), waiting for
// its workers to drain so their execution environments return to the warm
// pool before the caller proceeds.
func (b *Backend) releaseGroup(n, memMB int) {
	g := b.findGroup(n, memMB)
	if g == nil {
		return
	}
	b.removeGroup(g)
	var wire psnet.WireStats
	if g.ps != nil {
		wire = g.ps.WireStats()
	}
	rounds := g.shutdown()
	b.mu.Lock()
	b.psRounds += rounds
	b.mu.Unlock()
	if b.obs.Enabled() {
		b.obs.Trace().InstantAt(b.now(), "live", "live", "group_release",
			obs.I("group", g.id), obs.I("n", n), obs.I("mem_mb", memMB), obs.I("ps_rounds", rounds))
		st := b.obs.Stats()
		st.Inc("live.group_releases")
		st.Add("live.ps_bytes_in", float64(wire.BytesIn))
		st.Add("live.ps_bytes_out", float64(wire.BytesOut))
		b.observeStats()
	}
}

// shutdown stops the group's workers and its parameter server, returning the
// BSP rounds the server completed.
func (g *liveGroup) shutdown() int {
	g.stopped.Do(func() { close(g.stop) })
	g.done.Wait()
	rounds := 0
	if g.ps != nil {
		rounds = g.ps.Round()
		g.ps.Close()
	}
	return rounds
}

// RunEpoch implements platform.GroupRunner: one real synchronization barrier
// across the group currently serving the allocation (n, memMB), using the
// allocation's storage kind for the wire pattern.
func (b *Backend) RunEpoch(n, memMB int, kind platform.StorageKind) error {
	g := b.findGroup(n, memMB)
	if g == nil {
		return fmt.Errorf("livebackend: no live group for (n=%d mem=%dMB)", n, memMB)
	}
	b.ckptMu.Lock()
	model := append([]float64(nil), b.ckpt...)
	b.ckptMu.Unlock()
	if len(model) == 0 {
		model = []float64{float64(g.epoch)}
	}
	g.epoch++
	cmd := epochCmd{kind: kind, model: model, epoch: g.epoch}
	barrierStart := b.now()
	for i := 0; i < g.n; i++ {
		g.cmds[i] <- cmd
	}
	var firstErr error
	for i := 0; i < g.n; i++ {
		if err := <-g.acks; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	b.mu.Lock()
	b.barriers++
	b.mu.Unlock()
	if b.obs.Enabled() {
		dur := b.now() - barrierStart
		b.obs.Trace().SpanAt(barrierStart, dur, "live", "live", "epoch_barrier",
			obs.I("group", g.id), obs.I("n", n), obs.I("mem_mb", memMB),
			obs.S("storage", kind.String()), obs.I("epoch", g.epoch))
		b.obs.Stats().Observe("live.barrier_s", dur)
	}
	return firstErr
}

// workerHandler is the lambda handler for one live worker: it joins its
// group and serves epoch barriers until the group is released.
func (b *Backend) workerHandler(c lambda.Context, payload []byte) ([]byte, error) {
	var hello workerHello
	if err := json.Unmarshal(payload, &hello); err != nil {
		return nil, fmt.Errorf("livebackend: worker payload: %w", err)
	}
	g := b.groupByID(hello.Group)
	if g == nil {
		return nil, fmt.Errorf("livebackend: worker joined unknown group %d", hello.Group)
	}
	g.enter <- struct{}{}
	var psc *psnet.Client
	defer func() {
		if psc != nil {
			psc.Close()
		}
	}()
	for {
		select {
		case <-g.stop:
			return []byte("released"), nil
		case cmd := <-g.cmds[hello.Worker]:
			g.acks <- g.workerEpoch(hello.Worker, &psc, cmd)
		}
	}
}

// workerEpoch executes one worker's share of an epoch barrier.
func (g *liveGroup) workerEpoch(w int, psc **psnet.Client, cmd epochCmd) error {
	if cmd.kind == platform.VMPS {
		return g.paramServerEpoch(w, psc, cmd)
	}
	return g.objectStoreEpoch(w, cmd)
}

// paramServerEpoch runs the (2n-2) pattern: pull the model from the group's
// TCP parameter server, then push a gradient and block until the round's
// aggregated update is applied (the real BSP barrier).
func (g *liveGroup) paramServerEpoch(w int, psc **psnet.Client, cmd epochCmd) error {
	g.psOnce.Do(func() {
		srv, err := psnet.NewServer(g.n, 0.01)
		if err != nil {
			g.psErr = err
			return
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			g.psErr = err
			return
		}
		g.ps = srv
		g.psAddr = addr
	})
	if g.psErr != nil {
		return g.psErr
	}
	if *psc == nil {
		c, err := psnet.Dial(g.psAddr, w)
		if err != nil {
			return err
		}
		*psc = c
	}
	if err := (*psc).Init(cmd.model); err != nil {
		return err
	}
	model, round, err := (*psc).Pull()
	if err != nil {
		return err
	}
	// The statistics live in the job's loss engine; the wire carries
	// model-sized payloads and a zero gradient keeps the server's state
	// consistent while the aggregation and the round barrier run for real.
	_, err = (*psc).Push(round, make([]float64, len(model)))
	return err
}

// objectStoreEpoch runs the (3n-2) stateless pattern over HTTP: every worker
// uploads its gradient object, worker 0 collects all n, aggregates and
// publishes the model, and every worker re-pulls it.
func (g *liveGroup) objectStoreEpoch(w int, cmd epochCmd) error {
	client := g.b.client
	pfx := fmt.Sprintf("live/g%d/e%d", g.id, cmd.epoch)
	grad := make([]float64, len(cmd.model))
	if err := client.Put(fmt.Sprintf("%s/grad/%d", pfx, w), distml.EncodeVec(grad)); err != nil {
		return err
	}
	if w == 0 {
		sum := make([]float64, len(cmd.model))
		for j := 0; j < g.n; j++ {
			key := fmt.Sprintf("%s/grad/%d", pfx, j)
			vec, err := pollGet(client, key)
			if err != nil {
				return err
			}
			for i := range vec {
				if i < len(sum) {
					sum[i] += vec[i]
				}
			}
		}
		model := append([]float64(nil), cmd.model...)
		for i := range model {
			model[i] -= sum[i] / float64(g.n)
		}
		if err := client.Put(pfx+"/model", distml.EncodeVec(model)); err != nil {
			return err
		}
		for j := 0; j < g.n; j++ {
			client.Delete(fmt.Sprintf("%s/grad/%d", pfx, j))
		}
	}
	_, err := pollGet(client, pfx+"/model")
	return err
}

// pollGet polls the object store until key appears (workers poll for the
// aggregated model, the step the paper's request accounting includes).
func pollGet(client *objstore.Client, key string) ([]float64, error) {
	for attempt := 0; ; attempt++ {
		data, ok, err := client.Get(key)
		if err != nil {
			return nil, err
		}
		if ok {
			return distml.DecodeVec(data)
		}
		if attempt > 200000 {
			return nil, fmt.Errorf("livebackend: %s never appeared", key)
		}
		time.Sleep(50 * time.Microsecond)
	}
}
