package sim

// Tests for the sharded kernel: the generation-counter fix for the
// free-list reuse hazard, the Post mailbox contract, and the determinism
// matrix — a randomized cross-shard workload must produce event-for-event
// identical traces at every shard count and worker count, and match the
// single-queue container/heap reference.

import (
	"fmt"
	"math"
	"testing"
)

// TestStaleCancelIsNoOp is the regression test for the free-list reuse
// hazard: before the generation counter, an Event pointer held past its
// firing aliased whatever event had reused the recycled slot, so a stale
// Cancel silently canceled an unrelated event. The handle's generation must
// make that Cancel a no-op.
func TestStaleCancelIsNoOp(t *testing.T) {
	s := New(1)
	stale := s.Schedule(1, func() {})
	s.RunUntil(2) // fires and recycles the event behind `stale`

	ran := false
	fresh := s.Schedule(3, func() { ran = true }) // reuses the recycled slot
	stale.Cancel()                                // must not touch `fresh`
	if fresh.Canceled() {
		t.Fatal("stale Cancel canceled an unrelated event that reused the slot")
	}
	if stale.Canceled() {
		t.Fatal("stale handle reports Canceled after its event already fired")
	}
	if stale.At() != 0 {
		t.Fatalf("stale handle At() = %v, want 0", stale.At())
	}
	s.Run()
	if !ran {
		t.Fatal("event canceled through a stale handle to a recycled slot")
	}
}

// TestStaleCancelStrictModePanics pins the debug mode: with strict cancel
// on, the same stale Cancel panics instead of no-opping.
func TestStaleCancelStrictModePanics(t *testing.T) {
	s := New(1)
	s.SetStrictCancel(true)
	stale := s.Schedule(1, func() {})
	s.RunUntil(2)
	s.Schedule(3, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from stale Cancel in strict mode")
		}
	}()
	stale.Cancel()
}

// TestZeroEventIsInert: the zero handle supports Cancel/Canceled/At as
// no-ops, so callers can keep Event fields without a validity flag.
func TestZeroEventIsInert(t *testing.T) {
	var e Event
	e.Cancel()
	if e.Canceled() || e.At() != 0 {
		t.Fatalf("zero Event not inert: Canceled=%v At=%v", e.Canceled(), e.At())
	}
}

// TestCancelDuringOwnFireIsNoOp preserves the historical semantics: an
// event canceling itself from inside its own callback has no effect (it
// already fired) and must not poison the recycled slot.
func TestCancelDuringOwnFireIsNoOp(t *testing.T) {
	s := New(1)
	var self Event
	self = s.Schedule(1, func() { self.Cancel() })
	ran := false
	s.Run()
	// The slot is reused by the next schedule; it must arrive uncanceled.
	next := s.Schedule(2, func() { ran = true })
	if next.Canceled() {
		t.Fatal("slot reused from a self-canceled event came back canceled")
	}
	s.Run()
	if !ran {
		t.Fatal("event on a reused slot did not run")
	}
	if got := s.EventsFired(); got != 2 {
		t.Fatalf("EventsFired = %d, want 2", got)
	}
}

// TestShardScheduleAndMerge: events on several shards fire in global
// (time, priority, sequence, shard) order under sequential execution.
func TestShardScheduleAndMerge(t *testing.T) {
	s := New(1)
	s.EnsureShards(3)
	var order []string
	for i := 0; i < 3; i++ {
		i := i
		sh := s.Shard(i)
		sh.Schedule(Time(3-i), func() { order = append(order, fmt.Sprintf("a%d", i)) })
		sh.SchedulePriority(5, i, func() { order = append(order, fmt.Sprintf("b%d", i)) })
	}
	s.Run()
	want := []string{"a2", "a1", "a0", "b0", "b1", "b2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.EventsFired() != 6 {
		t.Fatalf("EventsFired = %d, want 6", s.EventsFired())
	}
}

// TestRunUntilClampsEveryShard: a finite limit moves every shard clock
// forward to the limit, and never backwards.
func TestRunUntilClampsEveryShard(t *testing.T) {
	s := New(1)
	s.EnsureShards(2)
	s.Shard(1).Schedule(20, func() {})
	s.RunUntil(10)
	if got := s.Shard(1).Now(); got != 10 {
		t.Fatalf("shard 1 clock = %v, want 10", got)
	}
	if got := s.Now(); got != 10 {
		t.Fatalf("main clock = %v, want 10", got)
	}
	s.RunUntil(7)
	if got := s.Shard(1).Now(); got != 10 {
		t.Fatalf("RunUntil moved shard 1 clock backwards: %v", got)
	}
	s.Run()
	if got := s.Horizon(); got != 20 {
		t.Fatalf("Horizon = %v, want 20", got)
	}
}

// TestPostContract covers the mailbox rules: Post panics without a finite
// lookahead, panics when the target time violates the lookahead gap, and
// otherwise delivers at a window barrier in (time, priority) order.
func TestPostContract(t *testing.T) {
	t.Run("requires finite lookahead", func(t *testing.T) {
		s := New(1)
		s.EnsureShards(2)
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic: Post with infinite lookahead")
			}
		}()
		s.Shard(0).Post(s.Shard(1), 10, 0, func() {})
	})
	t.Run("enforces lookahead gap", func(t *testing.T) {
		s := New(1)
		s.EnsureShards(2)
		s.SetLookahead(5)
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic: Post inside the lookahead gap")
			}
		}()
		s.Shard(0).Post(s.Shard(1), 4.9, 0, func() {})
	})
	t.Run("delivers across shards", func(t *testing.T) {
		s := New(1)
		s.EnsureShards(2)
		s.SetLookahead(1)
		var got []string
		a, b := s.Shard(0), s.Shard(1)
		a.Schedule(1, func() {
			got = append(got, "a@1")
			a.Post(b, 2.5, 0, func() { got = append(got, fmt.Sprintf("b@%v", b.Now())) })
		})
		b.Schedule(2, func() { got = append(got, "b@2") })
		s.Run()
		want := []string{"a@1", "b@2", "b@t=2.500s"}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("got %v, want %v", got, want)
		}
		if s.Pending() != 0 {
			t.Fatalf("Pending = %d after Run, want 0", s.Pending())
		}
	})
}

// TestCrossShardSchedulePanics: an event on one shard scheduling directly
// onto another shard is an ownership violation the sequential path detects.
func TestCrossShardSchedulePanics(t *testing.T) {
	s := New(1)
	s.EnsureShards(2)
	s.SetLookahead(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: cross-shard Schedule instead of Post")
		}
	}()
	s.Shard(0).Schedule(1, func() {
		s.Shard(1).Schedule(2, func() {})
	})
	s.Run()
}

// TestCrossShardPostOwnershipPanics: Post must go through the outbox of
// the shard whose event is executing — routing a post through another
// shard's outbox would race on it in parallel windows and would check the
// lookahead against the wrong clock.
func TestCrossShardPostOwnershipPanics(t *testing.T) {
	s := New(1)
	s.EnsureShards(2)
	s.SetLookahead(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: post through a foreign shard's outbox")
		}
	}()
	s.Shard(0).Schedule(1, func() {
		// The event runs on shard 0 but posts through shard 1's outbox.
		s.Shard(1).Post(s.Shard(0), 5, 0, func() {})
	})
	s.Run()
}

// TestShardFreeListsStayZeroAlloc: the per-shard arenas recycle just like
// the single-queue kernel's, including for posted events.
func TestShardFreeListsStayZeroAlloc(t *testing.T) {
	s := New(1)
	s.EnsureShards(2)
	s.SetLookahead(1)
	a, b := s.Shard(0), s.Shard(1)
	n := 0
	var ping func()
	ping = func() {
		n++
		if n < 100000 {
			// Alternate a local chain step and a cross-shard post.
			a.ScheduleAfter(0.5, func() {})
			a.PostAfter(b, 1, 0, func() {})
			a.ScheduleAfter(1, ping)
		}
	}
	a.ScheduleAfter(1, ping)
	s.Run()
	if a.allocs > 3*arenaChunk || b.allocs > 3*arenaChunk {
		t.Fatalf("shard arenas not recycling: allocs a=%d b=%d, want <= %d each", a.allocs, b.allocs, 3*arenaChunk)
	}
}

// --- randomized cross-shard workload, cross-checked against the reference ---

// actorWorld abstracts "which kernel runs the workload" so the exact same
// actor logic drives the sharded kernel (at any shard/worker count) and the
// single-queue container/heap reference. Actors follow the shard ownership
// rules: an actor only schedules onto itself, sends to other actors go
// through post with at least actorLookahead of delay, and every event
// carries a globally unique priority so the merge order is fully determined
// by (time, priority) — which is what makes the firing sequence invariant
// across shard layouts.
type actorWorld interface {
	scheduleSelf(actor int, at Time, pri int, fn func())
	post(from, to int, at Time, pri int, fn func())
	now(actor int) Time
	run()
	fired() uint64
}

const actorLookahead = 2.0

type shardedWorld struct {
	s      *Simulation
	shards int
}

func newShardedWorld(seed uint64, shards, workers int) *shardedWorld {
	s := New(seed)
	s.EnsureShards(shards)
	s.SetLookahead(actorLookahead)
	s.SetWorkers(workers)
	return &shardedWorld{s: s, shards: shards}
}

func (w *shardedWorld) shardOf(actor int) *Shard { return w.s.Shard(actor % w.shards) }
func (w *shardedWorld) scheduleSelf(actor int, at Time, pri int, fn func()) {
	w.shardOf(actor).SchedulePriority(at, pri, fn)
}
func (w *shardedWorld) post(from, to int, at Time, pri int, fn func()) {
	w.shardOf(from).Post(w.shardOf(to), at, pri, fn)
}
func (w *shardedWorld) now(actor int) Time { return w.shardOf(actor).Now() }
func (w *shardedWorld) run()               { w.s.Run() }
func (w *shardedWorld) fired() uint64      { return w.s.EventsFired() }

// refWorld runs the same workload on the test-only container/heap kernel:
// posts are plain schedules (a single queue has no barriers to wait for).
type refWorld struct{ s *refSim }

func (w *refWorld) scheduleSelf(actor int, at Time, pri int, fn func()) { w.s.schedule(at, pri, fn) }
func (w *refWorld) post(_, _ int, at Time, pri int, fn func())          { w.s.schedule(at, pri, fn) }
func (w *refWorld) now(int) Time                                        { return w.s.now }
func (w *refWorld) run()                                                { w.s.run() }
func (w *refWorld) fired() uint64                                       { return w.s.fired }

// driveActors runs a randomized actor storm: each actor advances a local
// chain (drawing from its own stream, so draws are independent of execution
// interleaving) and periodically fires a message at a neighbour, who
// schedules a follow-up. Returns one firing trace per actor.
func driveActors(w actorWorld, seed uint64, actors int) [][]string {
	rngs := make([]*Rand, actors)
	traces := make([][]string, actors)
	for a := range rngs {
		rngs[a] = NewRand(seed ^ uint64(a*7919+1))
	}
	record := func(a int, kind string, k int) {
		traces[a] = append(traces[a], fmt.Sprintf("%s%d@%.9f", kind, k, float64(w.now(a))))
	}
	var step func(a, k int)
	onMsg := func(to, k int) {
		record(to, "m", k)
		if k%3 == 0 {
			// A message can spawn local follow-up work on the receiver.
			w.scheduleSelf(to, w.now(to)+Time(rngs[to].Float64()), to*1_000_000+900_000+k, func() { record(to, "f", k) })
		}
	}
	step = func(a, k int) {
		record(a, "s", k)
		if k >= 60 {
			return
		}
		d := 0.2 + rngs[a].Float64()
		w.scheduleSelf(a, w.now(a)+Time(d), a*1_000_000+k+1, func() { step(a, k+1) })
		if k%5 == 2 {
			to := (a + 1 + k%3) % actors
			at := w.now(a) + Time(actorLookahead+rngs[a].Float64())
			w.post(a, to, at, 10_000_000+to*100_000+a*1_000+k, func() { onMsg(to, k) })
		}
	}
	for a := 0; a < actors; a++ {
		a := a
		w.scheduleSelf(a, Time(rngs[a].Float64()), a*1_000_000, func() { step(a, 0) })
	}
	w.run()
	return traces
}

// TestCrossShardWorkloadMatrix is the kernel-level determinism matrix: the
// randomized actor workload must produce event-for-event identical
// per-actor traces — and the same global event count — at shard counts
// {1, 2, 8} x workers {1, 8}, all equal to the single-queue reference.
func TestCrossShardWorkloadMatrix(t *testing.T) {
	const actors = 9
	for seed := uint64(1); seed <= 3; seed++ {
		ref := driveActors(&refWorld{s: &refSim{}}, seed, actors)
		refFired := func() uint64 {
			w := &refWorld{s: &refSim{}}
			driveActors(w, seed, actors)
			return w.fired()
		}()
		for _, shards := range []int{1, 2, 8} {
			for _, workers := range []int{1, 8} {
				w := newShardedWorld(seed, shards, workers)
				got := driveActors(w, seed, actors)
				for a := range ref {
					if len(got[a]) != len(ref[a]) {
						t.Fatalf("seed %d shards=%d workers=%d: actor %d fired %d events, reference %d",
							seed, shards, workers, a, len(got[a]), len(ref[a]))
					}
					for i := range ref[a] {
						if got[a][i] != ref[a][i] {
							t.Fatalf("seed %d shards=%d workers=%d: actor %d trace diverges at %d: %q vs %q",
								seed, shards, workers, a, i, got[a][i], ref[a][i])
						}
					}
				}
				if w.fired() != refFired {
					t.Fatalf("seed %d shards=%d workers=%d: fired %d, reference %d", seed, shards, workers, w.fired(), refFired)
				}
			}
		}
	}
}

// TestLookaheadWindowsMatchSingleWindow: the same single-shard workload run
// with a tiny finite lookahead (thousands of windows) and with the default
// infinite lookahead (one window) must fire identically — windowing is pure
// execution policy, never semantics.
func TestLookaheadWindowsMatchSingleWindow(t *testing.T) {
	run := func(lookahead float64) []string {
		s := New(3)
		if lookahead > 0 {
			s.SetLookahead(lookahead)
		}
		var tr []string
		driveWorkloadInto(s, &tr)
		return tr
	}
	base := run(0)
	for _, L := range []float64{0.25, 1, 7.5} {
		got := run(L)
		if len(got) != len(base) {
			t.Fatalf("L=%g: %d events vs %d", L, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("L=%g: trace diverges at %d: %q vs %q", L, i, got[i], base[i])
			}
		}
	}
}

// driveWorkloadInto reuses the kernel-reference storm generator against a
// provided simulation, collecting the trace.
func driveWorkloadInto(s *Simulation, trace *[]string) {
	rng := NewRand(99)
	var spawn func(depth, id int)
	spawn = func(depth, id int) {
		at := s.Now() + Time(rng.Float64()*4)
		if rng.Float64() < 0.3 {
			at = Time(math.Ceil(float64(at)))
		}
		pri := rng.Intn(3) - 1
		s.SchedulePriority(at, pri, func() {
			*trace = append(*trace, fmt.Sprintf("%d@%.6f/p%d", id, float64(s.Now()), pri))
			if depth > 0 {
				n := rng.Intn(3)
				for i := 0; i < n; i++ {
					spawn(depth-1, id*10+i)
				}
			}
		})
	}
	for root := 0; root < 30; root++ {
		spawn(3, root)
	}
	s.Run()
}

// TestRandCreationInsideParallelWindowPanics: stream creation is a setup
// operation; the first use of a new name inside a parallel window must
// panic instead of racing on the stream map.
func TestRandCreationInsideParallelWindowPanics(t *testing.T) {
	s := New(1)
	s.EnsureShards(2)
	s.SetLookahead(1)
	s.SetWorkers(2)
	panicked := make(chan any, 2)
	for i := 0; i < 2; i++ {
		i := i
		s.Shard(i).Schedule(1, func() {
			defer func() {
				if r := recover(); r != nil {
					panicked <- r
				}
			}()
			s.Rand(fmt.Sprintf("late-%d", i))
		})
	}
	s.Run()
	if len(panicked) != 2 {
		t.Fatalf("expected both in-window Rand creations to panic, got %d panics", len(panicked))
	}
}
