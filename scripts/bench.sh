#!/bin/sh
# Performance snapshot for the PR 3 perf pass: microbenchmarks of the
# real-ML numeric kernels (internal/ml), the dataset shard/generation caches
# (internal/dataset) and the DES kernel (internal/sim), plus the end-to-end
# `cebench all` wall clock at -parallel 1 and at the binary's actual
# GOMAXPROCS. Writes the measurements to BENCH_PR3.json next to the
# hardcoded pre-PR baseline (measured on the same host before the kernel
# rewrite and caches), so the repo records a perf trajectory.
#
# The recorded "parallelism" is the GOMAXPROCS the cebench binary itself
# reports for the parallel run (parsed from its stderr), not a guess from
# nproc — BENCH_PR2.json recorded 1 for exactly that reason, hiding the
# serial-vs-parallel comparison.
#
#   scripts/bench.sh                 # full run, writes BENCH_PR3.json
#   BENCH_COUNT=5 scripts/bench.sh   # more benchmark samples for benchstat
#   BENCH_OUT=/tmp/b.json scripts/bench.sh
set -eu

cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-BENCH_PR3.json}"
COUNT="${BENCH_COUNT:-1}"
SEED=2023
MICRO=/tmp/cebench_micro_bench.txt

echo "== microbenchmarks (ml kernels + dataset caches + sim kernel), count=$COUNT"
go test -run '^$' \
	-bench 'BenchmarkGradientLogistic$|BenchmarkGradientHinge$|BenchmarkGradientSquared$|BenchmarkWorkerGradient$|BenchmarkRunEpoch$|BenchmarkLoss$|BenchmarkPartition$|BenchmarkShards$|BenchmarkGenerateBinary$|BenchmarkCachedBinary$|BenchmarkScheduleRun$|BenchmarkScheduleRunFanout' \
	-benchmem -count "$COUNT" ./internal/ml/ ./internal/dataset/ ./internal/sim/ | tee "$MICRO"

echo "== cebench all wall clock (seed $SEED)"
go build -o /tmp/cebench.bench ./cmd/cebench

t0=$(date +%s%3N)
/tmp/cebench.bench -seed "$SEED" -format csv -parallel 1 all >/dev/null 2>&1
t1=$(date +%s%3N)
serial_ms=$((t1 - t0))
echo "serial (parallel=1): ${serial_ms}ms"

t0=$(date +%s%3N)
/tmp/cebench.bench -seed "$SEED" -format csv all >/dev/null 2>/tmp/cebench_par_err.txt
t1=$(date +%s%3N)
parallel_ms=$((t1 - t0))
# The binary reports the worker-pool size it actually used (= GOMAXPROCS
# unless overridden); take it from the summary line on stderr.
PAR="$(sed -n 's/.*(parallel=\([0-9]*\)).*/\1/p' /tmp/cebench_par_err.txt | tail -1)"
[ -n "$PAR" ] || PAR=1
echo "parallel (parallel=$PAR): ${parallel_ms}ms"

# Summarize microbenchmarks into JSON: mean ns/op and allocs/op per name.
awk -v serial_ms="$serial_ms" -v parallel_ms="$parallel_ms" -v par="$PAR" -v seed="$SEED" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	for (i = 2; i <= NF; i++) {
		if ($(i) == "ns/op")     { ns[name] += $(i-1); nsn[name]++ }
		if ($(i) == "allocs/op") { al[name] += $(i-1); aln[name]++ }
	}
}
END {
	printf "{\n"
	printf "  \"pr\": 3,\n"
	printf "  \"seed\": %d,\n", seed
	printf "  \"note\": \"after = this tree (fused 4-row gradient/loss kernels, zero-alloc epoch path, shard + generation caches); before = pre-PR3 scalar kernels and per-trial generation measured on the same host with these benchmarks\",\n"
	printf "  \"before\": {\n"
	printf "    \"BenchmarkGradientLogistic\": {\"ns_per_op\": 112938, \"allocs_per_op\": 0},\n"
	printf "    \"BenchmarkGradientHinge\": {\"ns_per_op\": 85109, \"allocs_per_op\": 0},\n"
	printf "    \"BenchmarkGradientSquared\": {\"ns_per_op\": 86970, \"allocs_per_op\": 0},\n"
	printf "    \"BenchmarkWorkerGradient\": {\"ns_per_op\": 16889, \"allocs_per_op\": 1},\n"
	printf "    \"BenchmarkRunEpoch\": {\"ns_per_op\": 1157558, \"allocs_per_op\": 147},\n"
	printf "    \"BenchmarkLoss\": {\"ns_per_op\": 470318, \"allocs_per_op\": 0},\n"
	printf "    \"BenchmarkPartition\": {\"ns_per_op\": 381.1, \"allocs_per_op\": 9},\n"
	printf "    \"BenchmarkGenerateBinary\": {\"ns_per_op\": 6360742, \"allocs_per_op\": 4},\n"
	printf "    \"cebench_all_serial_ms\": 7169,\n"
	printf "    \"cebench_all_parallel_ms\": 7518\n"
	printf "  },\n"
	printf "  \"after\": {\n"
	first = 1
	for (name in ns) {
		if (!first) printf ",\n"
		first = 0
		printf "    \"%s\": {\"ns_per_op\": %.2f", name, ns[name] / nsn[name]
		if (aln[name] > 0) printf ", \"allocs_per_op\": %.1f", al[name] / aln[name]
		printf "}"
	}
	if (!first) printf ",\n"
	printf "    \"cebench_all_serial_ms\": %d,\n", serial_ms
	printf "    \"cebench_all_parallel_ms\": %d,\n", parallel_ms
	printf "    \"parallelism\": %d\n", par
	printf "  }\n"
	printf "}\n"
}' "$MICRO" > "$OUT"

echo "wrote $OUT"
