package lint

import (
	"go/ast"
	"go/token"
)

// FPReduce forbids scheduling-order-dependent floating-point reduction in
// deterministic packages.
//
// Float addition is not associative, so `sum += x` is only deterministic
// when the terms arrive in a fixed order. Two constructs break that: a
// compound assignment to a shared float inside a `go func` closure (terms
// arrive in goroutine-scheduling order) and one inside a map range (terms
// arrive in randomized map order). The legal pattern — used throughout the
// trainer and the experiment engine — reduces into per-index slots
// (results[i] += ...) and sums the slots in a fixed serial loop; indexed
// or field-projected accumulation is therefore exempt, only bare shared
// scalars are flagged.
var FPReduce = &Analyzer{
	Name:  "fpreduce",
	Doc:   "forbid shared float accumulation in goroutines and map iteration",
	Scope: ScopeDeterministic,
	Run:   runFPReduce,
}

func runFPReduce(p *Pass) {
	inspectAll(p, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.GoStmt:
			if fl, ok := v.Call.Fun.(*ast.FuncLit); ok {
				checkFloatAccum(p, fl.Body, fl, "a goroutine closure: summation order follows the scheduler")
			}
		case *ast.RangeStmt:
			if isMapType(p.Info, v.X) {
				checkFloatAccum(p, v.Body, v, "a map iteration: summation order follows randomized map order")
			}
		}
		return true
	})
}

// checkFloatAccum flags compound float assignments to bare identifiers
// declared outside owner.
func checkFloatAccum(p *Pass, body *ast.BlockStmt, owner ast.Node, context string) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		for _, lhs := range as.Lhs {
			// Indexed slots (acc[i] += ...) are the sanctioned fixed-order
			// reduction pattern; only a bare shared scalar is order-unsafe.
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			tv, ok := p.Info.Types[lhs]
			if !ok || tv.Type == nil || !isFloat(tv.Type) {
				continue
			}
			obj := objectOf(p.Info, id)
			if obj == nil || declaredWithin(obj, owner) {
				continue
			}
			p.Reportf(as.Pos(), "floating-point %s on %s (declared outside) inside %s; reduce into per-index slots and sum serially in fixed order", as.Tok, id.Name, context)
		}
		return true
	})
}
