// Package scheduler implements the paper's adaptive resource scheduler for
// model training (§III-D, Algorithm 2): start from an offline-predicted
// allocation, fit the convergence curve online after every epoch, and when
// the predicted total number of epochs drifts by more than δ re-select the
// best allocation from the Pareto set — under either a budget (minimize
// JCT) or a QoS deadline (minimize cost). Switches use the trainer's
// delayed restart to hide adjustment overhead unless disabled (the
// WO-pa / WO-pa-dr ablations of §IV-G).
package scheduler

import (
	"math"
	"sort"

	"repro/internal/cost"
	"repro/internal/obs"
	"repro/internal/predictor"
	"repro/internal/trainer"
)

// Config parameterizes one adaptive scheduling session.
type Config struct {
	Model *cost.Model
	// Candidates is the allocation set searched at every adjustment —
	// normally the Pareto set; the WO-pa ablation passes the full
	// enumeration instead.
	Candidates []cost.Point
	// Frontier, when set and Candidates is empty, supplies the candidate
	// set as an immutable shared Pareto boundary (cost.ParetoFrontier).
	// The scheduler searches the shared points directly — no per-session
	// copy, no re-sort — which is what lets thousands of fleet tenants
	// share one frontier instance.
	Frontier *cost.Frontier

	// Exactly one of Budget (minimize JCT, Eq. 13-14) or QoS (minimize
	// cost, Eq. 15-16) must be positive.
	Budget float64
	QoS    float64

	TargetLoss float64
	// Delta is the prediction-drift threshold δ that triggers adjustment
	// (default 0.1, §IV-G).
	Delta float64
	// DelayedRestart enables the Fig. 8 overlap optimization.
	DelayedRestart bool
	// PlanningSecondsPerCandidate models the decision latency per candidate
	// allocation evaluated (the §IV-G scheduling-overhead metric).
	PlanningSecondsPerCandidate float64
	// OnlineTuning, when non-nil, switches the online curve fitter to the
	// fleet configuration (bounded history, warm-started budget-limited
	// refits; see predictor.Tuning). Nil keeps the historical exact
	// configuration and its bit-identical outputs.
	OnlineTuning *predictor.Tuning
	// Offline supplies the warm-start epoch estimate; required.
	Offline *predictor.Offline
	// OfflineSeed seeds the offline sampling run.
	OfflineSeed uint64
	// Obs, when set, records the per-epoch decision log (observed loss,
	// fitted prediction, drift vs δ, path taken, allocation chosen) as
	// trace instants on the job's timeline. Nil disables recording.
	Obs *obs.Observer
}

// Scheduler drives one training job. Create with New, obtain the initial
// allocation from Initial, and wire Controller into the trainer.
type Scheduler struct {
	cfg    Config
	online *predictor.Online

	alloc          cost.Allocation
	lastPrediction int // latest predicted total epochs (the e of Alg. 2)
	spent          float64
	// panicked marks that the last adjustment was a constraint-pressure
	// fallback; while set, the scheduler re-evaluates every epoch instead
	// of waiting for δ drift, so an over-pessimistic early prediction does
	// not pin the job to an extreme allocation.
	panicked bool
	// ordered records (once, at New) that the candidates form a strict
	// frontier — strictly ascending Time, strictly descending Cost — so
	// selection can binary-search instead of scanning. Arbitrary candidate
	// sets (the WO-pa full enumeration) fall back to the linear reference.
	ordered bool

	// Metrics.
	Restarts        int
	Adjustments     int
	CandidatesSeen  int
	PlanningSeconds float64
}

// New returns a scheduler for cfg with defaults applied. The candidate set
// is sorted by ascending epoch time, so index 0 is always the fastest
// allocation (the panic fallback under deadline pressure). A shared
// cost.Frontier is adopted as-is — it is already time-sorted and immutable,
// so no per-session copy is made.
func New(cfg Config) *Scheduler {
	if cfg.Delta <= 0 {
		cfg.Delta = 0.1
	}
	if cfg.PlanningSecondsPerCandidate <= 0 {
		cfg.PlanningSecondsPerCandidate = 0.05
	}
	if cfg.Frontier != nil && len(cfg.Candidates) == 0 {
		cfg.Candidates = cfg.Frontier.Points()
	} else {
		cands := make([]cost.Point, len(cfg.Candidates))
		copy(cands, cfg.Candidates)
		sort.Slice(cands, func(i, j int) bool { return cands[i].Time < cands[j].Time })
		cfg.Candidates = cands
	}
	online := predictor.NewOnline()
	if cfg.OnlineTuning != nil {
		online.ApplyTuning(*cfg.OnlineTuning)
	}
	return &Scheduler{cfg: cfg, online: online, ordered: strictFrontier(cfg.Candidates)}
}

// strictFrontier reports whether candidates are strictly ascending in Time
// and strictly descending in Cost — the Pareto-boundary shape that makes
// constrained selection binary-searchable.
func strictFrontier(c []cost.Point) bool {
	if len(c) == 0 {
		return false
	}
	for i := 1; i < len(c); i++ {
		if c[i].Time <= c[i-1].Time || c[i].Cost >= c[i-1].Cost {
			return false
		}
	}
	return true
}

// Alloc returns the scheduler's current allocation.
func (s *Scheduler) Alloc() cost.Allocation { return s.alloc }

// fastest returns the lowest-epoch-time candidate.
func (s *Scheduler) fastest() cost.Allocation { return s.cfg.Candidates[0].Alloc }

// cheapest returns the lowest-epoch-cost candidate.
func (s *Scheduler) cheapest() cost.Allocation {
	best := s.cfg.Candidates[0]
	for _, p := range s.cfg.Candidates[1:] {
		if p.Cost < best.Cost {
			best = p
		}
	}
	return best.Alloc
}

// escalate moves the current allocation one step along the time-sorted
// candidate list: toward faster under a QoS deadline, toward cheaper (in
// epoch cost) under a budget.
func (s *Scheduler) escalate() cost.Allocation {
	idx := -1
	for i, p := range s.cfg.Candidates {
		if p.Alloc == s.alloc {
			idx = i
			break
		}
	}
	if s.cfg.QoS > 0 {
		switch {
		case idx < 0:
			return s.fastest()
		case idx > 0:
			return s.cfg.Candidates[idx-1].Alloc
		default:
			return s.alloc
		}
	}
	// Budget case: find a cheaper-per-epoch candidate than the current one.
	if idx < 0 {
		return s.cheapest()
	}
	cur := s.cfg.Candidates[idx]
	best := cur
	for _, p := range s.cfg.Candidates {
		if p.Cost < cur.Cost && (best == cur || p.Cost > best.Cost) {
			best = p
		}
	}
	return best.Alloc
}

// Initial computes the starting allocation (Algorithm 2 lines 2-7): an
// offline epoch estimate followed by a constrained selection over the
// candidate set.
func (s *Scheduler) Initial() (cost.Allocation, int) {
	est := s.cfg.Offline.PredictEpochs(s.cfg.TargetLoss, s.cfg.OfflineSeed)
	s.lastPrediction = est
	if a, ok := s.selectBest(est, 0, 0); ok {
		s.alloc = a
	} else if len(s.cfg.Candidates) > 0 {
		// Nothing satisfies the constraint under the estimate: fall back to
		// the cheapest candidate (budget case) or fastest (QoS case).
		if s.cfg.Budget > 0 {
			s.alloc = s.cheapest()
		} else {
			s.alloc = s.fastest()
		}
	}
	return s.alloc, est
}

// selectBest is select_best_allocation(b, P, e): pick the allocation that
// optimizes the objective for `remaining` further epochs, subject to the
// remaining budget (budget case) or the remaining deadline headroom
// (elapsed so far + remaining epochs, QoS case).
func (s *Scheduler) selectBest(remaining int, elapsed, spent float64) (cost.Allocation, bool) {
	return s.selectBestRelaxed(remaining, elapsed, spent, 1)
}

// selectBestRelaxed is selectBest with the constraint scaled by relax >= 1;
// the scheduler prefers a mildly stretched constraint over flapping to an
// extreme allocation when online predictions are noisy.
//
// The modeled planning overhead (§IV-G) charges every candidate regardless
// of how the optimum is located: Algorithm 2's select_best_allocation is
// defined over the whole set, and the accounting must not change because
// the implementation got smarter. The repeated addition (rather than one
// multiply) keeps the accumulated float bit-identical to the historical
// per-candidate loop.
func (s *Scheduler) selectBestRelaxed(remaining int, elapsed, spent float64, relax float64) (cost.Allocation, bool) {
	if remaining < 1 {
		remaining = 1
	}
	for range s.cfg.Candidates {
		s.CandidatesSeen++
		s.PlanningSeconds += s.cfg.PlanningSecondsPerCandidate
	}
	if s.ordered {
		return s.selectBinary(remaining, elapsed, spent, relax)
	}
	return s.selectLinear(remaining, elapsed, spent, relax)
}

// selectLinear is the reference O(P) scan, kept for arbitrary candidate
// sets (the WO-pa full enumeration) and as the oracle the binary-search
// path is property-tested against.
func (s *Scheduler) selectLinear(remaining int, elapsed, spent float64, relax float64) (cost.Allocation, bool) {
	bestVal := math.Inf(1)
	var best cost.Allocation
	found := false
	for _, p := range s.cfg.Candidates {
		t := float64(remaining) * p.Time
		c := float64(remaining) * p.Cost
		if s.cfg.Budget > 0 {
			if spent+c > s.cfg.Budget*relax {
				continue
			}
			if t < bestVal {
				bestVal, best, found = t, p.Alloc, true
			}
		} else {
			if elapsed+t > s.cfg.QoS*relax {
				continue
			}
			if c < bestVal {
				bestVal, best, found = c, p.Alloc, true
			}
		}
	}
	return best, found
}

// selectBinary exploits the strict frontier order — Time strictly
// ascending, Cost strictly descending — to binary-search the constrained
// optimum in O(log P). It evaluates the same feasibility expressions as
// selectLinear on the candidates it probes, and resolves rounding ties the
// same way the linear scan's strict `<` does (first index achieving the
// optimal value), so the returned decision is bit-identical.
func (s *Scheduler) selectBinary(remaining int, elapsed, spent float64, relax float64) (cost.Allocation, bool) {
	cands := s.cfg.Candidates
	r := float64(remaining)
	if s.cfg.Budget > 0 {
		// Feasibility spent + r*Cost <= Budget*relax is monotone along the
		// frontier (Cost descending), so the feasible set is a suffix. Time
		// ascends, so the minimum-JCT feasible candidate is the suffix's
		// first element.
		limit := s.cfg.Budget * relax
		lo, hi := 0, len(cands)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if spent+r*cands[mid].Cost > limit {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == len(cands) {
			return cost.Allocation{}, false
		}
		return cands[lo].Alloc, true
	}
	// QoS: feasibility elapsed + r*Time <= QoS*relax is monotone (Time
	// ascending), so the feasible set is a prefix; Cost descends, so the
	// minimum-cost feasible candidate sits at the prefix's end.
	limit := s.cfg.QoS * relax
	lo, hi := 0, len(cands)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if elapsed+r*cands[mid].Time > limit {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == 0 {
		return cost.Allocation{}, false
	}
	// Strictly descending Cost can still collide after the r*Cost rounding;
	// the linear scan's strict `<` keeps the first index of a tied run, so
	// walk back over exact float ties.
	j := lo - 1
	tied := r * cands[j].Cost
	for j > 0 && r*cands[j-1].Cost == tied {
		j--
	}
	return cands[j].Alloc, true
}

// worthSwitching reports whether moving to next is predicted to improve the
// objective by at least 10% over staying put for the remaining epochs, or
// whether staying would violate the constraint. Restarts are not free, so
// marginal predicted gains do not justify one.
func (s *Scheduler) worthSwitching(next cost.Allocation, remaining int, elapsed, spent float64) bool {
	var cur, nxt *cost.Point
	for i := range s.cfg.Candidates {
		switch s.cfg.Candidates[i].Alloc {
		case s.alloc:
			cur = &s.cfg.Candidates[i]
		case next:
			nxt = &s.cfg.Candidates[i]
		}
	}
	if cur == nil || nxt == nil {
		return true // unknown current point: trust the re-selection
	}
	r := float64(remaining)
	if s.cfg.Budget > 0 {
		if spent+r*cur.Cost > s.cfg.Budget {
			return true // staying blows the budget
		}
		return r*nxt.Time < 0.9*r*cur.Time
	}
	if elapsed+r*cur.Time > s.cfg.QoS {
		return true // staying blows the deadline
	}
	return r*nxt.Cost < 0.9*r*cur.Cost
}

// Controller returns the trainer hook implementing Algorithm 2 lines 8-15:
// the decide method as a bound value. The binding allocates once per job at
// wiring time; the per-epoch decide calls it funnels are allocation-free in
// steady state (cescalint-verified, gated by TestSteadyStateZeroAlloc).
func (s *Scheduler) Controller() trainer.Controller {
	return s.decide
}

// decide is the per-epoch Algorithm 2 body (lines 8-15): observe the loss,
// refit, and re-select the allocation when the prediction drifts past δ.
//
//cescalint:hotpath
func (s *Scheduler) decide(epoch int, loss float64, elapsed, spent float64) trainer.Decision {
	s.online.Observe(epoch, loss)
	s.spent = spent

	planningBefore := s.PlanningSeconds
	dec := trainer.Decision{}

	if s.cfg.Budget > 0 && spent >= s.cfg.Budget {
		dec.Stop = true
		//cescalint:allow hotpath -- observability: logDecision self-gates on Obs.Enabled; the steady-state gate runs disabled
		s.logDecision(elapsed, epoch, loss, 0, 0, "stop-budget", dec)
		return dec
	}

	// path names the Alg. 2 branch this epoch took, for the decision log:
	// no-prediction (line 8's fit not ready), within-delta (line 9 false),
	// then for adjustments which selector produced the candidate —
	// select (line 10), relax (the 1.15-stretched retry), or
	// escalate-panic (constraint unmeetable under every candidate).
	path := "no-prediction"
	var drift float64
	predicted, ok := s.online.PredictTotalEpochs(s.cfg.TargetLoss)
	if ok {
		path = "within-delta"
		drift = math.Abs(float64(predicted-s.lastPrediction)) / math.Max(float64(s.lastPrediction), 1)
		if drift > s.cfg.Delta || s.panicked {
			s.lastPrediction = predicted
			remaining := predicted - epoch
			if remaining < 1 {
				remaining = 1
			}
			path = "select"
			next, found := s.selectBest(remaining, elapsed, spent)
			if !found {
				// Mild stretch before panicking: a noisy prediction
				// that barely misses the constraint should not flap
				// the job to an extreme allocation.
				path = "relax"
				next, found = s.selectBestRelaxed(remaining, elapsed, spent, 1.15)
			}
			if found {
				s.panicked = false
			} else if len(s.cfg.Candidates) > 0 {
				// The constraint can no longer be met under any
				// allocation. Escalate one step along the frontier —
				// faster under a deadline, cheaper under a budget —
				// rather than flapping straight to the extreme: the
				// panicked flag re-evaluates every epoch, so genuine
				// pressure keeps escalating while a one-epoch fit
				// wobble costs only one step.
				path = "escalate-panic"
				next = s.escalate()
				found = true
				s.panicked = true
			}
			if found && next != s.alloc && s.worthSwitching(next, remaining, elapsed, spent) {
				s.alloc = next
				s.Restarts++
				s.Adjustments++
				//cescalint:allow hotpath -- next escapes only on an adjustment epoch (restart); within-delta epochs never reach this
				dec.NewAlloc = &next
				dec.Delayed = s.cfg.DelayedRestart
			}
		}
	}
	dec.PlanningSeconds = s.PlanningSeconds - planningBefore
	//cescalint:allow hotpath -- observability: logDecision self-gates on Obs.Enabled; the steady-state gate runs disabled
	s.logDecision(elapsed, epoch, loss, predicted, drift, path, dec)
	return dec
}

// logDecision records one per-epoch decision-log instant: the Alg. 2 inputs
// (observed loss, fitted total-epoch prediction, drift vs δ), the branch
// taken, and the outcome (restart issued, allocation chosen). Timestamps
// are on the job's own timeline (elapsed seconds), matching the trainer's
// spans.
func (s *Scheduler) logDecision(elapsed float64, epoch int, loss float64, predicted int, drift float64, path string, dec trainer.Decision) {
	if !s.cfg.Obs.Enabled() {
		return
	}
	restart := dec.NewAlloc != nil
	args := []obs.Arg{
		obs.I("epoch", epoch),
		obs.F("loss", loss),
		obs.I("predicted_total", predicted),
		obs.F("drift", drift),
		obs.F("delta", s.cfg.Delta),
		obs.S("path", path),
		obs.B("restart", restart),
		obs.B("stop", dec.Stop),
		obs.I("alloc_n", s.alloc.N),
		obs.I("alloc_mem_mb", s.alloc.MemMB),
		obs.S("alloc_storage", s.alloc.Storage.String()),
	}
	if restart {
		args = append(args, obs.B("delayed", dec.Delayed))
	}
	s.cfg.Obs.Trace().InstantAt(elapsed, "scheduler", "scheduler", "decision", args...)
	s.cfg.Obs.Stats().Inc("scheduler.decisions")
	s.cfg.Obs.Stats().Inc("scheduler.path." + path)
	if restart {
		s.cfg.Obs.Stats().Inc("scheduler.restarts")
	}
}
