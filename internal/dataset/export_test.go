package dataset

// SetGenCacheCapForTest shrinks the generation-cache budget and clears the
// cache so eviction can be exercised with small matrices. The returned
// function restores the previous budget (and clears again).
func SetGenCacheCapForTest(floats int) (restore func()) {
	genCache.Lock()
	prev := genCacheMaxFloats
	genCacheMaxFloats = floats
	genCache.m = make(map[genKey]*Matrix)
	genCache.order = nil
	genCache.floats = 0
	genCache.Unlock()
	return func() {
		genCache.Lock()
		genCacheMaxFloats = prev
		genCache.m = make(map[genKey]*Matrix)
		genCache.order = nil
		genCache.floats = 0
		genCache.Unlock()
	}
}

// GenCacheLenForTest reports how many matrices the generation cache holds.
func GenCacheLenForTest() int {
	genCache.Lock()
	defer genCache.Unlock()
	return len(genCache.m)
}
