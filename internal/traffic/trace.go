package traffic

import (
	"fmt"
	"io"
	"math"
)

// Trace holds parsed per-minute invocation counts: one row per tenant
// (function), one column per minute, Azure-functions-trace style. Rows
// are stored concatenated in a single backing slice with an offset table
// — two allocations for the whole trace instead of one per row — and may
// be ragged (rows keep their own length).
type Trace struct {
	counts  []uint32
	offsets []int32 // row i is counts[offsets[i]:offsets[i+1]]
}

// Rows returns the number of rows in the trace.
func (t Trace) Rows() int {
	if len(t.offsets) == 0 {
		return 0
	}
	return len(t.offsets) - 1
}

// Row returns row i's per-minute counts. The slice aliases the trace's
// backing store; callers must not mutate it.
func (t Trace) Row(i int) []uint32 {
	return t.counts[t.offsets[i]:t.offsets[i+1]]
}

// Minutes returns the length of row i.
func (t Trace) Minutes(i int) int {
	return int(t.offsets[i+1] - t.offsets[i])
}

// RowTotal returns the total invocation count of row i.
func (t Trace) RowTotal(i int) uint64 {
	var sum uint64
	for _, c := range t.Row(i) {
		sum += uint64(c)
	}
	return sum
}

// Total returns the total invocation count across all rows.
func (t Trace) Total() uint64 {
	var sum uint64
	for _, c := range t.counts {
		sum += uint64(c)
	}
	return sum
}

// MakeTrace builds a Trace from explicit rows (test and synthesis
// convenience; the rows are copied).
func MakeTrace(rows [][]uint32) Trace {
	var t Trace
	t.offsets = make([]int32, 1, len(rows)+1)
	for _, r := range rows {
		t.counts = append(t.counts, r...)
		t.offsets = append(t.offsets, int32(len(t.counts)))
	}
	return t
}

// Parser parses per-minute-count trace files. The format is one row per
// line, counts separated by commas, spaces or tabs; blank lines and
// lines starting with '#' are skipped; CRLF is accepted.
//
// The parser reads the input in fixed-size chunks and converts digits to
// ints in place — no line splitting, no string materialization, no
// per-token garbage. Its internal buffers are reused across Parse calls,
// so steady-state reparsing allocates nothing; consequently the returned
// Trace aliases the parser's buffers and is valid only until the next
// Parse call (use the package-level ParseTrace for a one-shot parse that
// owns its memory).
type Parser struct {
	buf     []byte
	counts  []uint32
	offsets []int32

	// Scan state, kept on the Parser (not in closures) so the byte loop's
	// helpers are plain method calls and the whole parse stays off the heap.
	cur     uint64 // value of the number being scanned
	inNum   bool   // digits pending in cur
	rowOpen bool   // current line has produced at least one count
}

// NewParser returns a parser with a default 64 KiB read buffer.
func NewParser() *Parser {
	return &Parser{buf: make([]byte, 64<<10)}
}

// flushNum closes the number being scanned, if any, appending it to the
// current row.
func (p *Parser) flushNum() {
	if p.inNum {
		//cescalint:allow hotpath -- amortized: counts grows to the trace high-water mark, then is reused
		p.counts = append(p.counts, uint32(p.cur))
		p.cur, p.inNum, p.rowOpen = 0, false, true
	}
}

// endRow closes the current row, if it produced any counts.
func (p *Parser) endRow() {
	if p.rowOpen {
		//cescalint:allow hotpath -- amortized: offsets grows to the trace row count, then is reused
		p.offsets = append(p.offsets, int32(len(p.counts)))
		p.rowOpen = false
	}
}

// Parse reads an entire trace from r. See the Parser doc for the format
// and the aliasing caveat.
//
//cescalint:hotpath
func (p *Parser) Parse(r io.Reader) (Trace, error) {
	p.counts = p.counts[:0]
	//cescalint:allow hotpath -- amortized: offsets grows to the trace row count, then is reused
	p.offsets = append(p.offsets[:0], 0)
	p.cur, p.inNum, p.rowOpen = 0, false, false
	var (
		inComment bool   // discarding until end of line
		atStart   = true // at the first byte of a line ('#' legal here)
		line      = 1
	)
	for {
		//cescalint:allow hotpath -- caller-supplied io.Reader; the steady-state gate reuses a bytes.Reader
		n, err := r.Read(p.buf)
		for _, b := range p.buf[:n] {
			if inComment {
				if b == '\n' {
					inComment, atStart = false, true
					line++
				}
				continue
			}
			switch {
			case b >= '0' && b <= '9':
				p.cur = p.cur*10 + uint64(b-'0')
				if p.cur > math.MaxUint32 {
					//cescalint:allow hotpath -- cold path: malformed-input error
					return Trace{}, fmt.Errorf("traffic: line %d: count overflows uint32", line)
				}
				p.inNum, atStart = true, false
			case b == ',' || b == ' ' || b == '\t':
				p.flushNum()
				atStart = false
			case b == '\n':
				p.flushNum()
				p.endRow()
				atStart = true
				line++
			case b == '\r':
				// handled by the following '\n'
			case b == '#' && atStart:
				inComment = true
			default:
				//cescalint:allow hotpath -- cold path: malformed-input error
				return Trace{}, fmt.Errorf("traffic: line %d: unexpected byte %q", line, b)
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			//cescalint:allow hotpath -- cold path: reader failure error
			return Trace{}, fmt.Errorf("traffic: read: %w", err)
		}
	}
	p.flushNum()
	p.endRow()
	return Trace{counts: p.counts, offsets: p.offsets}, nil
}

// ParseTrace is the one-shot convenience: it parses r with a fresh
// parser, so the returned Trace owns its memory.
func ParseTrace(r io.Reader) (Trace, error) {
	return NewParser().Parse(r)
}
