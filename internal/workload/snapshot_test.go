package workload

import (
	"math"
	"testing"
)

func TestCurveEngineSnapshotRestore(t *testing.T) {
	m := MobileNet()
	eng := m.NewCurveEngine(Hyperparams{LR: m.DefaultLR}, 5)
	snap, ok := eng.(Snapshotter)
	if !ok {
		t.Fatal("curve engine should snapshot")
	}
	for e := 0; e < 5; e++ {
		eng.NextEpoch()
	}
	state := snap.Snapshot()
	if len(state) != 2 {
		t.Fatalf("curve snapshot has %d values", len(state))
	}
	lossAt, epochAt := eng.Loss(), eng.EpochsRun()
	eng.NextEpoch()
	eng.NextEpoch()
	if err := snap.Restore(state); err != nil {
		t.Fatal(err)
	}
	if eng.Loss() != lossAt || eng.EpochsRun() != epochAt {
		t.Errorf("restore: loss %g epoch %d, want %g %d", eng.Loss(), eng.EpochsRun(), lossAt, epochAt)
	}
	if err := snap.Restore([]float64{1}); err == nil {
		t.Error("short state accepted")
	}
}

func TestRealEngineSnapshotRestore(t *testing.T) {
	m := LRHiggs()
	e, err := m.NewRealEngine(Hyperparams{LR: m.DefaultLR}, 1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	eng := e.(Snapshotter)
	for i := 0; i < 3; i++ {
		e.NextEpoch()
	}
	state := eng.Snapshot()
	lossAt := e.Loss()
	if e.EpochsRun() != 3 {
		t.Fatalf("EpochsRun = %d", e.EpochsRun())
	}
	for i := 0; i < 3; i++ {
		e.NextEpoch()
	}
	if err := eng.Restore(state); err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Loss()-lossAt) > 1e-12 {
		t.Errorf("restored loss %g, want %g", e.Loss(), lossAt)
	}
	// Training resumes from the restored weights: the next epoch's loss
	// should track where the snapshot left off, not the later state.
	next := e.NextEpoch()
	if next > lossAt*1.1 {
		t.Errorf("post-restore epoch regressed: %g from %g", next, lossAt)
	}
	if err := eng.Restore([]float64{1}); err == nil {
		t.Error("short state accepted")
	}
}

func TestRealEngineLossAccessor(t *testing.T) {
	m := SVMHiggs()
	e, err := m.NewRealEngine(Hyperparams{LR: m.DefaultLR}, 800, 9)
	if err != nil {
		t.Fatal(err)
	}
	initial := e.Loss()
	if initial <= 0 {
		t.Fatalf("initial loss %g", initial)
	}
	after := e.NextEpoch()
	if e.Loss() != after {
		t.Error("Loss() should return the latest epoch's loss")
	}
	if e.EpochsRun() != 1 {
		t.Errorf("EpochsRun = %d, want 1", e.EpochsRun())
	}
}
