package experiments

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func withParallelism(t *testing.T, p int) {
	t.Helper()
	prev := Parallelism()
	SetParallelism(p)
	t.Cleanup(func() { SetParallelism(prev) })
}

func TestCellsOrderAndCompleteness(t *testing.T) {
	for _, p := range []int{1, 2, 8, 64} {
		withParallelism(t, p)
		got, err := cells(100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("p=%d: cell %d = %d, want %d", p, i, v, i*i)
			}
		}
	}
}

func TestCellsLowestIndexErrorWins(t *testing.T) {
	withParallelism(t, 8)
	errLow, errHigh := errors.New("low"), errors.New("high")
	// Run repeatedly: under racy selection the later error could win.
	for round := 0; round < 20; round++ {
		_, err := cells(16, func(i int) (int, error) {
			switch i {
			case 3:
				return 0, errLow
			case 12:
				return 0, errHigh
			}
			return i, nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("round %d: got %v, want the lowest-index error", round, err)
		}
	}
}

func TestCellsRunsEveryIndexOnce(t *testing.T) {
	withParallelism(t, 8)
	var calls [257]atomic.Int32
	_, err := cells(len(calls), func(i int) (struct{}, error) {
		calls[i].Add(1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range calls {
		if n := calls[i].Load(); n != 1 {
			t.Fatalf("cell %d ran %d times", i, n)
		}
	}
}

func TestSetParallelismClamps(t *testing.T) {
	withParallelism(t, 4)
	SetParallelism(0)
	if Parallelism() != 1 {
		t.Fatalf("Parallelism() = %d after SetParallelism(0), want 1", Parallelism())
	}
	SetParallelism(-3)
	if Parallelism() != 1 {
		t.Fatalf("Parallelism() = %d after SetParallelism(-3), want 1", Parallelism())
	}
}

func TestCellErr(t *testing.T) {
	if cellErr("x", nil) != nil {
		t.Fatal("cellErr(nil) must stay nil")
	}
	base := errors.New("boom")
	err := cellErr("stage", base)
	if !errors.Is(err, base) {
		t.Fatal("cellErr must wrap the cause")
	}
	if got, want := err.Error(), "stage: boom"; got != want {
		t.Fatalf("cellErr message %q, want %q", got, want)
	}
}

func TestRunAllMatchesRun(t *testing.T) {
	withParallelism(t, 4)
	ids := []string{"tab1", "tab4"}
	outcomes := RunAll(ids, 7)
	for i, id := range ids {
		want, err := Run(id, 7)
		if err != nil {
			t.Fatal(err)
		}
		if outcomes[i].Err != nil {
			t.Fatalf("%s: %v", id, outcomes[i].Err)
		}
		if got := outcomes[i].Table.String(); got != want.String() {
			t.Fatalf("%s: RunAll table differs from Run:\n%s\nvs\n%s", id, got, fmt.Sprintf("%v", want))
		}
	}
}
