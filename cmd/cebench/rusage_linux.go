package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"syscall"
)

// peakRSSKB reports the process high-water-mark resident set in kB:
// VmHWM from /proc/self/status, falling back to getrusage (ru_maxrss is
// already kB on Linux) if procfs is unavailable.
func peakRSSKB() (int64, error) {
	if v, err := procVmHWMKB(); err == nil {
		return v, nil
	}
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0, err
	}
	return int64(ru.Maxrss), nil
}

func procVmHWMKB() (int64, error) {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
			v := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(rest), "kB"))
			return strconv.ParseInt(v, 10, 64)
		}
	}
	return 0, fmt.Errorf("no VmHWM in /proc/self/status")
}
