package ml

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %g, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Errorf("Dot(nil) = %g, want 0", got)
	}
}

func TestAxpy(t *testing.T) {
	y := []float64{1, 1}
	Axpy(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("Axpy = %v, want [7 9]", y)
	}
}

func TestScaleAndZero(t *testing.T) {
	x := []float64{2, -4}
	Scale(0.5, x)
	if x[0] != 1 || x[1] != -2 {
		t.Errorf("Scale = %v", x)
	}
	Zero(x)
	if x[0] != 0 || x[1] != 0 {
		t.Errorf("Zero = %v", x)
	}
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm2 = %g, want 5", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	x := []float64{1, 2}
	c := Clone(x)
	c[0] = 99
	if x[0] != 1 {
		t.Error("Clone aliases its input")
	}
}

func TestAdd(t *testing.T) {
	y := []float64{1, 2}
	Add([]float64{10, 20}, y)
	if y[0] != 11 || y[1] != 22 {
		t.Errorf("Add = %v", y)
	}
}

func TestSigmoidStable(t *testing.T) {
	cases := map[float64]float64{0: 0.5, 1000: 1, -1000: 0}
	for z, want := range cases {
		if got := Sigmoid(z); math.Abs(got-want) > 1e-9 {
			t.Errorf("Sigmoid(%g) = %g, want %g", z, got, want)
		}
	}
	if err := quick.Check(func(z float64) bool {
		if math.IsNaN(z) {
			return true
		}
		s := Sigmoid(z)
		return s >= 0 && s <= 1 && !math.IsNaN(s)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestSigmoidSymmetry(t *testing.T) {
	if err := quick.Check(func(z float64) bool {
		if math.IsNaN(z) || math.Abs(z) > 500 {
			return true
		}
		return math.Abs(Sigmoid(z)+Sigmoid(-z)-1) < 1e-12
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestLog1pExp(t *testing.T) {
	if got := Log1pExp(0); math.Abs(got-math.Log(2)) > 1e-12 {
		t.Errorf("Log1pExp(0) = %g, want ln2", got)
	}
	if got := Log1pExp(100); math.Abs(got-100) > 1e-9 {
		t.Errorf("Log1pExp(100) = %g, want ~100", got)
	}
	if got := Log1pExp(-100); got <= 0 || got > 1e-40 {
		t.Errorf("Log1pExp(-100) = %g, want tiny positive", got)
	}
}
