package lint

import "go/ast"

// GlobalRand forbids the process-global math/rand generator everywhere.
//
// Package-level rand functions (rand.Intn, rand.Float64, rand.Perm, ...)
// share one generator across every caller in the process, so any
// reordering — a new goroutine, a test running first, a library drawing
// one extra value — shifts the stream under every experiment. rand.Seed
// is worse: it reseeds that shared stream for everyone. A seeded
// *rand.Rand (or internal/sim's named streams) must be threaded
// explicitly; constructing one (rand.New, rand.NewSource) and naming the
// types stays legal.
var GlobalRand = &Analyzer{
	Name:  "globalrand",
	Doc:   "forbid process-global math/rand functions and rand.Seed",
	Scope: ScopeAll,
	Run:   runGlobalRand,
}

// randOK lists the math/rand (and v2) names that do not touch the global
// generator: explicit constructors and type names.
var randOK = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"Rand":       true,
	"Source":     true,
	"Source64":   true,
	"Zipf":       true,
	"PCG":        true,
	"ChaCha8":    true,
}

func runGlobalRand(p *Pass) {
	inspectAll(p, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, name, ok := pkgSel(p.Info, sel)
		if !ok || (pkg != "math/rand" && pkg != "math/rand/v2") || randOK[name] {
			return true
		}
		if name == "Seed" {
			p.Reportf(sel.Pos(), "rand.Seed reseeds the process-global generator under every caller; construct a seeded *rand.Rand instead")
		} else {
			p.Reportf(sel.Pos(), "rand.%s draws from the process-global generator; thread a seeded *rand.Rand explicitly", name)
		}
		return true
	})
}
