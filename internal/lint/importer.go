package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// moduleImporter resolves imports for type-checking without any network or
// third-party machinery: standard-library packages come from the compiler's
// export data (go/importer, "gc"), and packages inside this module are
// parsed and type-checked from source, recursively, with results cached for
// the whole run.
type moduleImporter struct {
	root   string // module root directory
	module string // module path ("repro")
	fset   *token.FileSet
	std    types.Importer
	pkgs   map[string]*types.Package
}

func newModuleImporter(root, module string, fset *token.FileSet) *moduleImporter {
	return &moduleImporter{
		root:   root,
		module: module,
		fset:   fset,
		std:    importer.ForCompiler(fset, "gc", nil),
		pkgs:   make(map[string]*types.Package),
	}
}

func (m *moduleImporter) inModule(path string) bool {
	return path == m.module || strings.HasPrefix(path, m.module+"/")
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if !m.inModule(path) {
		return m.std.Import(path)
	}
	if pkg, ok := m.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(m.root, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, m.module), "/")))
	files, err := m.parseDir(dir)
	if err != nil {
		return nil, fmt.Errorf("import %q: %w", path, err)
	}
	conf := types.Config{Importer: m}
	pkg, err := conf.Check(path, m.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("import %q: %w", path, err)
	}
	m.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses the non-test Go files of one package directory, honouring
// build constraints via go/build.
func (m *moduleImporter) parseDir(dir string) ([]*ast.File, error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(m.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}
