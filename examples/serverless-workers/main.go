// Serverless workers end to end: take CE-scaling's allocation decision,
// register a training-worker function with the local serverless executor,
// fan out one invocation per function in the plan, and let the workers run
// real BSP SGD through an HTTP object store — the whole Fig. 1 pipeline
// with actual code in the functions.
//
// Run with:
//
//	go run ./examples/serverless-workers
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"repro/cescaling"
	"repro/internal/dataset"
	"repro/internal/distml"
	"repro/internal/lambda"
	"repro/internal/ml"
	"repro/internal/objstore"
	"repro/internal/sim"
)

// workerPayload is the configuration each function invocation receives —
// the analogue of the JSON configuration file the paper's implementation
// hands to Lambda.
type workerPayload struct {
	WorkerID int     `json:"worker_id"`
	Workers  int     `json:"workers"`
	Rounds   int     `json:"rounds"`
	Batch    int     `json:"batch"`
	LR       float64 `json:"lr"`
	StoreURL string  `json:"store_url"`
	Seed     uint64  `json:"seed"`
}

func main() {
	// 1. CE-scaling decides the shape of the job. We only borrow its
	//    function count here: this example executes with real goroutine
	//    workers, so the memory/storage dimensions are fixed by the host.
	w, err := cescaling.ModelByName("LR-Higgs")
	if err != nil {
		log.Fatal(err)
	}
	fw := cescaling.New(w)
	var plan cescaling.Point
	for _, p := range fw.Pareto {
		if p.Alloc.N <= 8 { // keep the local fan-out tractable
			plan = p
			break
		}
	}
	if plan.Alloc.N == 0 {
		plan = fw.Pareto[len(fw.Pareto)-1]
	}
	n := plan.Alloc.N
	if n > 8 {
		n = 8
	}
	fmt.Printf("CE-scaling picked %v; fanning out %d worker functions locally\n\n", plan.Alloc, n)

	// 2. A real object store for parameter synchronization.
	store := objstore.NewServer()
	ts := httptest.NewServer(store)
	defer ts.Close()

	// 3. The training data, sharded exactly as the functions will see it.
	data := dataset.GenerateBinary(sim.NewRand(5), dataset.GenConfig{
		Samples: 1600, Features: 12, NoiseFlip: 0.05,
	})
	shards := data.Partition(n)
	const (
		rounds = 40
		batch  = 40
		lr     = 0.5
	)

	// 4. Register the worker function: one invocation trains one shard for
	//    the full job, synchronizing per round through the store (the
	//    stateless (3n-2) pattern; worker 0 aggregates).
	inv := lambda.NewInvoker(64)
	err = inv.Register("train-worker", lambda.Registration{
		MemoryMB: plan.Alloc.MemMB,
		Timeout:  time.Minute,
		Handler: func(c lambda.Context, payload []byte) ([]byte, error) {
			var p workerPayload
			if err := json.Unmarshal(payload, &p); err != nil {
				return nil, err
			}
			client := objstore.NewClient(p.StoreURL)
			worker := ml.NewWorker(shards[p.WorkerID], sim.NewRand(p.Seed+uint64(p.WorkerID)))
			obj := ml.Logistic{}
			for round := 0; round < p.Rounds; round++ {
				model, err := waitModel(client, round)
				if err != nil {
					return nil, err
				}
				grad := worker.Gradient(obj, model, p.Batch)
				if err := client.Put(fmt.Sprintf("grads/%d/%d", round, p.WorkerID), distml.EncodeVec(grad)); err != nil {
					return nil, err
				}
				if p.WorkerID == 0 {
					sum := make([]float64, len(model))
					for j := 0; j < p.Workers; j++ {
						g, err := waitKey(client, fmt.Sprintf("grads/%d/%d", round, j))
						if err != nil {
							return nil, err
						}
						ml.Add(g, sum)
					}
					ml.Axpy(-p.LR/float64(p.Workers), sum, model)
					if err := client.Put(fmt.Sprintf("model/%d", round+1), distml.EncodeVec(model)); err != nil {
						return nil, err
					}
				}
			}
			return []byte(fmt.Sprintf("worker %d done (%s start)", p.WorkerID, startKind(c.Cold))), nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 5. Seed the model and invoke the whole group, like the paper's
	//    configuration file invoking n functions.
	client := objstore.NewClient(ts.URL)
	if err := client.Put("model/0", distml.EncodeVec(make([]float64, data.Cols))); err != nil {
		log.Fatal(err)
	}
	payloads := make([][]byte, n)
	for i := range payloads {
		payloads[i], _ = json.Marshal(workerPayload{
			WorkerID: i, Workers: n, Rounds: rounds, Batch: batch, LR: lr,
			StoreURL: ts.URL, Seed: 5,
		})
	}
	start := time.Now()
	results, err := inv.Map("train-worker", payloads)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			log.Fatalf("worker %d: %v", r.Index, r.Err)
		}
		fmt.Printf("  %s\n", r.Response)
	}

	// 6. Inspect the result.
	final, err := waitKey(client, fmt.Sprintf("model/%d", rounds))
	if err != nil {
		log.Fatal(err)
	}
	loss := ml.Logistic{}.Loss(final, data)
	st := store.Stats()
	is := inv.Stats()
	fmt.Printf("\ntrained %d rounds across %d functions in %s\n", rounds, n, time.Since(start).Round(time.Millisecond))
	fmt.Printf("final full-data logloss: %.4f\n", loss)
	fmt.Printf("storage requests: %d PUTs, %d GETs\n", st.Puts, st.Gets)
	fmt.Printf("executor: %d invocations, %d cold starts, %d ms billed\n",
		is.Invocations, is.ColdStarts, is.BilledMS)
}

func startKind(cold bool) string {
	if cold {
		return "cold"
	}
	return "warm"
}

func waitModel(c *objstore.Client, round int) ([]float64, error) {
	return waitKey(c, fmt.Sprintf("model/%d", round))
}

func waitKey(c *objstore.Client, key string) ([]float64, error) {
	for i := 0; i < 200000; i++ {
		data, ok, err := c.Get(key)
		if err != nil {
			return nil, err
		}
		if ok {
			return distml.DecodeVec(data)
		}
		time.Sleep(50 * time.Microsecond)
	}
	return nil, fmt.Errorf("key %s never appeared", key)
}
