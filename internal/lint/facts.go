package lint

import (
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// fnInfo is the hotpath analyzer's exported fact about one module function:
// whether its body is allocation-free given its (already-final) callee
// facts, why not, and which call edges and pragmas its verdict rests on.
// Facts are keyed by types.Object, which the shared importer keeps
// pointer-identical across packages.
type fnInfo struct {
	obj      *types.Func
	pos      token.Pos
	hot      bool // annotated //cescalint:hotpath (comment or policy)
	implRoot bool // implements a hotpath-annotated interface method
	clean    bool
	reason   string         // first allocation reason when !clean
	calls    []types.Object // statically resolved module callees
	pragmas  []*pragma      // hotpath allow-pragmas that cleansed sites here
}

// ifaceFact is one hotpath-annotated interface method. Packages that
// declare types implementing the interface must keep the implementing
// method allocation-free; callers through the interface trust it.
type ifaceFact struct {
	method *types.Func
	iface  *types.Interface
	name   string // "pkg/path.Iface.Method", the sort and message key
}

// factStore shares hotpath facts across the parallel driver. The scheduler
// runs a package only after its module imports completed, so reads of an
// import's facts always see final values; the mutex only orders the raw map
// access.
type factStore struct {
	module string // module path; fact-bearing packages all live under it
	mu     sync.Mutex
	fns    map[types.Object]*fnInfo
	order  []*fnInfo // export order, for map-free iteration
	byPr   map[*pragma]*fnInfo
	ifaces []*ifaceFact
}

func newFactStore(module string) *factStore {
	return &factStore{
		module: module,
		fns:    make(map[types.Object]*fnInfo),
		byPr:   make(map[*pragma]*fnInfo),
	}
}

// exportFns publishes one package's function facts.
func (s *factStore) exportFns(infos []*fnInfo) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, fi := range infos {
		s.fns[fi.obj] = fi
		s.order = append(s.order, fi)
		for _, p := range fi.pragmas {
			s.byPr[p] = fi
		}
	}
}

// exportIface publishes one hotpath-annotated interface method.
func (s *factStore) exportIface(f *ifaceFact) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ifaces = append(s.ifaces, f)
}

// fn returns the fact for one module function, or nil if its package was
// not analyzed in this run.
func (s *factStore) fn(obj types.Object) *fnInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fns[obj]
}

// fnOfPragma returns the function whose cleanliness the hotpath pragma
// contributed to, or nil if the pragma cleansed nothing.
func (s *factStore) fnOfPragma(p *pragma) *fnInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byPr[p]
}

// ifacesVisibleTo returns the annotated interface methods declared in pkg
// or any module package in its import closure, sorted by name so
// implementation obligations are checked in a deterministic order at any
// parallelism. The walk stays strictly inside the module: facts only come
// from module packages, and reading a standard-library package's import
// list would race with the shared gc export-data importer, which completes
// std packages lazily while other workers hold references to them.
func (s *factStore) ifacesVisibleTo(pkg *types.Package) []*ifaceFact {
	inModule := func(p *types.Package) bool {
		return p.Path() == s.module || strings.HasPrefix(p.Path(), s.module+"/")
	}
	closure := map[*types.Package]bool{pkg: true}
	var walk func(p *types.Package)
	walk = func(p *types.Package) {
		for _, imp := range p.Imports() {
			if !closure[imp] && inModule(imp) {
				closure[imp] = true
				walk(imp)
			}
		}
	}
	walk(pkg)
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*ifaceFact
	for _, f := range s.ifaces {
		if closure[f.method.Pkg()] {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// consumedFunctions walks the call graph from every hotpath root (annotated
// functions and interface implementations) through clean module callees and
// returns the set of functions whose cleanliness those roots consumed. A
// hotpath pragma inside a clean-but-unconsumed function cleansed an
// allocation nobody relies on and is reported stale.
func (s *factStore) consumedFunctions() map[types.Object]bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	consumed := make(map[types.Object]bool)
	var queue []*fnInfo
	for _, fi := range s.order {
		if fi.hot || fi.implRoot {
			queue = append(queue, fi)
		}
	}
	for len(queue) > 0 {
		fi := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, callee := range fi.calls {
			cf := s.fns[callee]
			if cf == nil || !cf.clean || consumed[cf.obj] {
				continue
			}
			consumed[cf.obj] = true
			queue = append(queue, cf)
		}
	}
	return consumed
}
