package scheduler

// Benchmarks for the per-epoch Algorithm-2 decision path (fit -> predict ->
// select -> decision-log). These are the fleet-cost numbers: a macro-fleet
// run multiplies ns/decision by (tenants x epochs), so the steady-state
// decision must be allocation-free and cheap. scripts/bench.sh records the
// before/after numbers into BENCH_PR7.json.

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/predictor"
	"repro/internal/workload"
)

// benchCurve is the loss feed: a clean inverse-linear descent toward a 0.40
// floor with a deterministic +-2% alternation so the online prediction
// wobbles by a few epochs every observation — enough drift to trigger the
// full select path when delta is tiny, while the huge budget keeps the
// chosen allocation stable (steady state: no restarts, no allocations).
func benchCurve(epoch int) float64 {
	l := 1/(0.01*float64(epoch)+1) + 0.40
	if epoch%2 == 0 {
		return l * 1.02
	}
	return l * 0.98
}

// newBenchScheduler builds a session over the real MobileNet Pareto
// frontier with a pre-warmed online fitter, bypassing Initial (the offline
// sampling predictor is setup cost, not per-decision cost).
func newBenchScheduler(b *testing.B, delta float64) *Scheduler {
	b.Helper()
	m := cost.NewModel(workload.MobileNet())
	pareto := m.ParetoSet(cost.DefaultGrid())
	if len(pareto) == 0 {
		b.Fatal("empty pareto set")
	}
	s := New(Config{
		Model:      m,
		Candidates: pareto,
		Budget:     1e12,
		TargetLoss: 0.42,
		Delta:      delta,
	})
	s.alloc = s.cfg.Candidates[0].Alloc
	s.lastPrediction = 1
	s.online.Window = 32
	for e := 1; e <= 32; e++ {
		s.online.Observe(e, benchCurve(e))
	}
	return s
}

// runDecisions drives n steady-state controller decisions.
func runDecisions(s *Scheduler, start, n int) {
	ctrl := s.Controller()
	for i := 0; i < n; i++ {
		epoch := start + i%4096
		dec := ctrl(epoch, benchCurve(epoch), float64(i)*10, float64(i)*1e-6)
		if dec.Stop {
			panic("bench decision stopped")
		}
	}
}

// BenchmarkDecisionSteadyState measures the full per-epoch decision with a
// tiny delta, so nearly every epoch runs fit -> predict -> select -> log.
func BenchmarkDecisionSteadyState(b *testing.B) {
	s := newBenchScheduler(b, 1e-9)
	runDecisions(s, 33, 64) // settle the fitter and the allocation choice
	b.ReportAllocs()
	b.ResetTimer()
	runDecisions(s, 97, b.N)
}

// BenchmarkDecisionWithinDelta measures the fit+predict-only epochs (the
// delta gate holds, no reselection) — the cheapest steady-state decision.
func BenchmarkDecisionWithinDelta(b *testing.B) {
	s := newBenchScheduler(b, 1e9)
	runDecisions(s, 33, 64)
	b.ReportAllocs()
	b.ResetTimer()
	runDecisions(s, 97, b.N)
}

// BenchmarkDecisionFleet measures the per-epoch decision under the fleet
// tuning (bounded window, warm-started refits with a small LM budget) —
// the configuration macro-fleet multiplies by the tenant count, and the
// one BENCH_PR7.json's steady-state ≥3x gate is judged on.
func BenchmarkDecisionFleet(b *testing.B) {
	s := newBenchScheduler(b, 1e-9)
	s.online.ApplyTuning(predictor.Tuning{FixedWindow: 32, WarmStart: true, RefitBudget: 10})
	runDecisions(s, 33, 64)
	b.ReportAllocs()
	b.ResetTimer()
	runDecisions(s, 97, b.N)
}

// BenchmarkSelectBest measures one constrained selection over the real
// Pareto frontier (the candidate-scan component of a decision).
func BenchmarkSelectBest(b *testing.B) {
	s := newBenchScheduler(b, 0.1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.selectBest(100+i%7, 0, 0); !ok {
			b.Fatal("selection failed")
		}
	}
}

// BenchmarkSelectBestFullEnum measures the same selection over the full
// feasible enumeration (the WO-pa ablation's candidate set).
func BenchmarkSelectBestFullEnum(b *testing.B) {
	m := cost.NewModel(workload.MobileNet())
	full := m.Enumerate(cost.DefaultGrid())
	s := New(Config{Model: m, Candidates: full, Budget: 1e12, TargetLoss: 0.42})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.selectBest(100+i%7, 0, 0); !ok {
			b.Fatal("selection failed")
		}
	}
}
