package predictor

import (
	"math"
	"testing"

	"repro/internal/workload"
)

// groundTruthEpochs runs the engine until target and returns the epoch count.
func groundTruthEpochs(m *workload.Model, seed uint64, target float64) int {
	eng := m.NewEngine(workload.Hyperparams{LR: m.DefaultLR}, seed)
	for e := 1; e <= 10000; e++ {
		if eng.NextEpoch() <= target {
			return e
		}
	}
	return 10000
}

func TestOfflinePredictsRightOrderOfMagnitude(t *testing.T) {
	m := workload.MobileNet()
	truth := groundTruthEpochs(m, 100, m.TargetLoss)
	pred := NewOffline(m).PredictEpochs(m.TargetLoss, 1)
	if pred < truth/5 || pred > truth*5 {
		t.Errorf("offline prediction %d wildly off truth %d", pred, truth)
	}
}

func TestOfflineWorksForRealModels(t *testing.T) {
	m := workload.LRHiggs()
	pred := NewOffline(m).PredictEpochs(m.TargetLoss, 2)
	if pred < 1 || pred > 100000 {
		t.Errorf("offline prediction %d out of sane range", pred)
	}
}

func TestOfflinePredictionsVaryAcrossSeeds(t *testing.T) {
	m := workload.ResNet50()
	o := NewOffline(m)
	a, b := o.PredictEpochs(m.TargetLoss, 1), o.PredictEpochs(m.TargetLoss, 99)
	if a == b {
		t.Skip("identical predictions possible but unlikely; rerun with new seeds")
	}
}

func TestOnlineNotReadyEarly(t *testing.T) {
	o := NewOnline()
	o.Observe(1, 1.0)
	o.Observe(2, 0.8)
	if o.Ready() {
		t.Error("2 observations should not be enough")
	}
	if _, ok := o.PredictTotalEpochs(0.5); ok {
		t.Error("prediction before ready should fail")
	}
}

func TestOnlineRecoversCurve(t *testing.T) {
	m := workload.MobileNet()
	truth := groundTruthEpochs(m, 7, m.TargetLoss)
	eng := m.NewCurveEngine(workload.Hyperparams{LR: m.DefaultLR}, 7)
	o := NewOnline()
	var pred int
	for e := 1; e <= truth/2+2; e++ {
		o.Observe(e, eng.NextEpoch())
	}
	pred, ok := o.PredictTotalEpochs(m.TargetLoss)
	if !ok {
		t.Fatal("online prediction unavailable at half horizon")
	}
	relErr := math.Abs(float64(pred-truth)) / float64(truth)
	if relErr > 0.5 {
		t.Errorf("online prediction %d vs truth %d (err %.0f%%)", pred, truth, relErr*100)
	}
}

func TestOnlineErrorShrinksWithObservations(t *testing.T) {
	// Fig. 4(b): the online error decreases as training progresses.
	// Average over several seeds to wash out noise.
	m := workload.ResNet50()
	const seeds = 8
	errAt := func(fraction float64) float64 {
		var sum float64
		for s := uint64(0); s < seeds; s++ {
			truth := groundTruthEpochs(m, 200+s, m.TargetLoss)
			eng := m.NewCurveEngine(workload.Hyperparams{LR: m.DefaultLR}, 200+s)
			o := NewOnline()
			upto := int(float64(truth) * fraction)
			if upto < 4 {
				upto = 4
			}
			for e := 1; e <= upto; e++ {
				o.Observe(e, eng.NextEpoch())
			}
			if pred, ok := o.PredictTotalEpochs(m.TargetLoss); ok {
				sum += math.Abs(float64(pred-truth)) / float64(truth)
			} else {
				sum += 1
			}
		}
		return sum / seeds
	}
	early, late := errAt(0.2), errAt(0.8)
	if late >= early {
		t.Errorf("online error should shrink: early %.3f, late %.3f", early, late)
	}
	if late > 0.25 {
		t.Errorf("late online error %.3f too high; paper reports ~5%%", late)
	}
}

func TestOnlineBeatsOfflineOnAverage(t *testing.T) {
	// Finding 2: online prediction is more accurate than offline sampling.
	m := workload.MobileNet()
	const seeds = 10
	var offErr, onErr float64
	for s := uint64(0); s < seeds; s++ {
		truth := groundTruthEpochs(m, 300+s, m.TargetLoss)
		off := NewOffline(m).PredictEpochs(m.TargetLoss, 300+s)
		offErr += math.Abs(float64(off-truth)) / float64(truth)

		eng := m.NewCurveEngine(workload.Hyperparams{LR: m.DefaultLR}, 300+s)
		o := NewOnline()
		for e := 1; e <= truth*3/4; e++ {
			o.Observe(e, eng.NextEpoch())
		}
		if pred, ok := o.PredictTotalEpochs(m.TargetLoss); ok {
			onErr += math.Abs(float64(pred-truth)) / float64(truth)
		} else {
			onErr += 1
		}
	}
	if onErr >= offErr {
		t.Errorf("online total error %.3f should beat offline %.3f", onErr/seeds, offErr/seeds)
	}
}

func TestPredictTotalNeverBelowObserved(t *testing.T) {
	o := NewOnline()
	// A curve that has already passed the target.
	losses := []float64{1.0, 0.5, 0.3, 0.2, 0.15, 0.12}
	for i, l := range losses {
		o.Observe(i+1, l)
	}
	total, ok := o.PredictTotalEpochs(0.5)
	if !ok {
		t.Fatal("prediction should be available")
	}
	if total < len(losses) {
		t.Errorf("total %d below observed %d", total, len(losses))
	}
}

func TestPredictRemaining(t *testing.T) {
	m := workload.BERT()
	eng := m.NewCurveEngine(workload.Hyperparams{LR: m.DefaultLR}, 5)
	o := NewOnline()
	for e := 1; e <= 8; e++ {
		o.Observe(e, eng.NextEpoch())
	}
	total, ok1 := o.PredictTotalEpochs(m.TargetLoss)
	rem, ok2 := o.PredictRemaining(m.TargetLoss)
	if !ok1 || !ok2 {
		t.Fatal("predictions unavailable")
	}
	if rem != total-8 {
		t.Errorf("remaining %d != total %d - 8", rem, total)
	}
}

func TestUnreachableTargetReported(t *testing.T) {
	o := NewOnline()
	// Flat losses: floor ~0.5, target 0.1 unreachable.
	for e := 1; e <= 10; e++ {
		o.Observe(e, 0.5+0.001/float64(e))
	}
	if _, ok := o.PredictTotalEpochs(0.1); ok {
		t.Error("target below the fitted floor should be unreachable")
	}
}

func TestWindowLimitsFit(t *testing.T) {
	o := NewOnline()
	o.Window = 5
	for e := 1; e <= 20; e++ {
		o.Observe(e, 1.0/float64(e)+0.2)
	}
	if _, ok := o.Curve(); !ok {
		t.Fatal("windowed fit failed")
	}
}

func TestCurveCaching(t *testing.T) {
	o := NewOnline()
	for e := 1; e <= 6; e++ {
		o.Observe(e, 1.0/float64(e)+0.3)
	}
	view, ok := o.Curve()
	if !ok {
		t.Fatal("fit failed")
	}
	// Curve returns a view of predictor-owned storage: copy before
	// observing more, or the comparison would be against itself.
	p1 := append([]float64(nil), view...)
	p2, _ := o.Curve()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Error("cached curve changed without new observations")
		}
	}
	o.Observe(7, 0.44)
	p3, _ := o.Curve()
	same := true
	for i := range p1 {
		if p1[i] != p3[i] {
			same = false
		}
	}
	if same {
		t.Error("new observation should refresh the fit")
	}
}

// TestDegenerateFitTargetJustAboveFloor is the predictor/scheduler-level
// regression for the SolveForX (+Inf, true) leak. With plateaued losses and
// a target an epsilon above the fitted floor, the pre-fix chain solved to an
// astronomical epoch count that the clamps silently turned into "reachable
// at the 8x-horizon cap" — the scheduler would then keep budgeting for a
// target the curve never meets. Post-fix the degenerate solve reports
// unreachable, matching the plateau.
func TestDegenerateFitTargetJustAboveFloor(t *testing.T) {
	o := NewOnline()
	// Converged: the loss has flattened at ~0.6.
	losses := []float64{1.0, 0.8, 0.7, 0.65, 0.62, 0.61, 0.605, 0.602, 0.601, 0.6005}
	for i, y := range losses {
		o.Observe(i+1, y)
	}
	params, ok := o.Curve()
	if !ok {
		t.Fatal("fit failed")
	}
	// A 1e-12 gap is representable above a ~0.6 floor (1e-300 would round
	// away) yet solves to ~1e12 epochs — absurd, and pre-fix reported it
	// reachable at the clamped horizon.
	target := params[2] + 1e-12
	if total, ok := o.PredictTotalEpochs(target); ok {
		t.Fatalf("epsilon-above-floor target on a plateau reported reachable: total=%d", total)
	}
	if rem, ok := o.PredictRemaining(target); ok {
		t.Fatalf("epsilon-above-floor target on a plateau reported remaining=%d", rem)
	}
}

// TestRemainingNeverNegativeOrHuge pins the bound the scheduler relies on:
// whenever the predictor offers a remaining-epochs estimate, it is in
// [0, 8x the observed horizon] — a degenerate fit must not leak a negative
// or unbounded remaining into allocation selection.
func TestRemainingNeverNegativeOrHuge(t *testing.T) {
	curves := []func(e float64) float64{
		func(e float64) float64 { return 1/(0.2*e+1) + 0.5 },      // clean descent
		func(e float64) float64 { return 0.5 + 0.001/e },          // near-flat
		func(e float64) float64 { return 0.6 + 0.2*math.Exp(-e) }, // fast plateau
	}
	for ci, f := range curves {
		o := NewOnline()
		for e := 1; e <= 12; e++ {
			o.Observe(e, f(float64(e)))
		}
		params, ok := o.Curve()
		if !ok {
			continue
		}
		// Probe targets from comfortably reachable down to degenerate
		// epsilon-above-floor.
		for _, gap := range []float64{0.1, 1e-3, 1e-6, 1e-9, 1e-100, 1e-300} {
			target := params[2] + gap
			rem, ok := o.PredictRemaining(target)
			if !ok {
				continue
			}
			if rem < 0 || rem > 8*12 {
				t.Fatalf("curve %d gap %g: remaining=%d outside [0, 96]", ci, gap, rem)
			}
		}
	}
}
