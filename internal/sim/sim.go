// Package sim provides a small deterministic discrete-event simulation
// kernel: a virtual clock, an event queue ordered by (time, priority,
// insertion order), and named pseudo-random streams.
//
// The kernel is deliberately callback-based rather than goroutine-based so
// that simulations are fully deterministic and cheap: an event is a closure
// scheduled at an absolute virtual time, and Run drains the queue in order.
// All simulated subsystems in this repository (the serverless platform, the
// storage services, the distributed trainer) advance time only through this
// kernel.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, measured in seconds since the start of
// the simulation. A float64 keeps the arithmetic in the analytical models
// and the simulator identical.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration = float64

// Seconds returns the time as a plain float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) }

// AsStdDuration converts a virtual duration to a time.Duration for display.
func AsStdDuration(d Duration) time.Duration {
	return time.Duration(d * float64(time.Second))
}

func (t Time) String() string {
	return fmt.Sprintf("t=%.3fs", float64(t))
}

// Event is a scheduled callback. Events compare by time, then priority
// (lower runs first), then insertion sequence, which makes simultaneous
// events deterministic.
type Event struct {
	at       Time
	priority int
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 when not queued
}

// At reports the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Cancel marks the event so that it will be skipped when its time comes.
// Canceling an already-fired event is a no-op.
func (e *Event) Cancel() { e.canceled = true }

// Canceled reports whether Cancel has been called on the event.
func (e *Event) Canceled() bool { return e.canceled }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	if q[i].priority != q[j].priority {
		return q[i].priority < q[j].priority
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Simulation owns a virtual clock and an event queue.
// The zero value is not usable; construct with New.
type Simulation struct {
	now     Time
	queue   eventQueue
	seq     uint64
	running bool
	rng     map[string]*Rand
	seed    uint64
	fired   uint64
}

// New returns a simulation whose named random streams derive from seed.
func New(seed uint64) *Simulation {
	return &Simulation{rng: make(map[string]*Rand), seed: seed}
}

// Now returns the current virtual time.
func (s *Simulation) Now() Time { return s.now }

// EventsFired reports how many events have executed so far.
func (s *Simulation) EventsFired() uint64 { return s.fired }

// Pending reports how many events are queued (including canceled ones that
// have not yet been skipped).
func (s *Simulation) Pending() int { return len(s.queue) }

// Schedule queues fn to run at absolute virtual time at. Scheduling in the
// past (before Now) panics: that is always a bug in the caller.
func (s *Simulation) Schedule(at Time, fn func()) *Event {
	return s.SchedulePriority(at, 0, fn)
}

// ScheduleAfter queues fn to run d seconds from now. Negative d panics.
func (s *Simulation) ScheduleAfter(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: ScheduleAfter with negative delay %g", d))
	}
	return s.Schedule(s.now+Time(d), fn)
}

// SchedulePriority is Schedule with an explicit tie-break priority; among
// events at the same instant, lower priority values run first.
func (s *Simulation) SchedulePriority(at Time, priority int, fn func()) *Event {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	if math.IsNaN(float64(at)) || math.IsInf(float64(at), 0) {
		panic(fmt.Sprintf("sim: scheduling event at non-finite time %v", float64(at)))
	}
	e := &Event{at: at, priority: priority, seq: s.seq, fn: fn, index: -1}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// Run drains the event queue until it is empty, advancing the clock to each
// event's time before invoking it. Events may schedule further events.
func (s *Simulation) Run() {
	s.RunUntil(Time(math.Inf(1)))
}

// RunUntil drains events with time <= limit. The clock is left at the last
// executed event's time (or at limit if an event beyond it remains queued
// and limit is finite).
func (s *Simulation) RunUntil(limit Time) {
	if s.running {
		panic("sim: Run re-entered")
	}
	s.running = true
	defer func() { s.running = false }()
	for len(s.queue) > 0 {
		next := s.queue[0]
		if next.at > limit {
			if !math.IsInf(float64(limit), 1) {
				s.now = limit
			}
			return
		}
		heap.Pop(&s.queue)
		if next.canceled {
			continue
		}
		s.now = next.at
		s.fired++
		next.fn()
	}
	if !math.IsInf(float64(limit), 1) && limit > s.now {
		s.now = limit
	}
}

// Step executes exactly one pending (non-canceled) event and reports whether
// one was executed.
func (s *Simulation) Step() bool {
	for len(s.queue) > 0 {
		next := heap.Pop(&s.queue).(*Event)
		if next.canceled {
			continue
		}
		s.now = next.at
		s.fired++
		next.fn()
		return true
	}
	return false
}

// Rand returns the named deterministic random stream, creating it on first
// use. Streams with the same name under the same simulation seed always
// produce the same sequence, independent of other streams, so adding a new
// consumer of randomness does not perturb existing experiments.
func (s *Simulation) Rand(name string) *Rand {
	if r, ok := s.rng[name]; ok {
		return r
	}
	r := NewRand(s.seed ^ hashString(name))
	s.rng[name] = r
	return r
}

func hashString(name string) uint64 {
	// FNV-1a, inlined to avoid pulling hash/fnv into the hot path.
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}
