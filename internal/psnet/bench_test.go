package psnet

import "testing"

func BenchmarkPushPullRound(b *testing.B) {
	s, err := NewServer(1, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(addr, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.Init(make([]float64, 512)); err != nil {
		b.Fatal(err)
	}
	grad := make([]float64, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Pull(); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Push(i, grad); err != nil {
			b.Fatal(err)
		}
	}
}
