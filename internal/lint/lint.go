// Package lint is cescalint: a determinism-enforcing static-analysis
// driver for the CE-scaling tree.
//
// Every result this reproduction publishes rests on two invariants the
// compiler cannot check: bit-identical determinism and allocation-free
// steady-state hot paths. Stdout must be byte-identical at any -parallel
// level, the DES clock must never read wall time, floating-point summation
// order must be fixed, and the per-decision / per-event paths that give the
// fleet results their throughput must never touch the heap. Runtime tests
// catch a violation only when one happens to exercise it; cescalint makes
// the invariants structural by failing `make check` at parse time.
//
// The driver walks the module, type-checks each package with the standard
// library's export data plus the module's own source (zero dependencies, no
// network), and runs a pluggable set of domain analyzers. Packages are
// analyzed in dependency order by a bounded worker pool: analyzers may
// export facts about a package's objects (the hotpath analyzer publishes
// per-function allocation summaries keyed by types.Object) and read the
// facts of every import. Findings print deterministically — sorted by
// file:line:column, byte-identical at any parallelism — and can be
// suppressed only by an explicit, reasoned pragma on the offending line or
// the line above:
//
//	//cescalint:allow walltime -- stderr-only diagnostic, never on stdout
//
// A pragma that names an unknown analyzer, omits the "-- reason", or
// suppresses no finding at all (a stale pragma) is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Scope declares which packages an analyzer runs on.
type Scope int

const (
	// ScopeAll runs the analyzer on every package in the module.
	ScopeAll Scope = iota
	// ScopeDeterministic runs the analyzer only on packages the policy
	// marks deterministic.
	ScopeDeterministic
)

// An Analyzer is one domain check over a type-checked package.
type Analyzer struct {
	Name  string
	Doc   string
	Scope Scope
	Run   func(*Pass)
}

// All returns the full analyzer suite, in a fixed order.
func All() []*Analyzer {
	return []*Analyzer{Walltime, GlobalRand, MapOrder, FPReduce, ImportBoundary, Shardsafe, Hotpath}
}

// A Finding is one rule violation at a source position. File is relative to
// the module root so output is stable across checkouts.
type Finding struct {
	File     string
	Line     int
	Col      int
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Fset   *token.FileSet
	Path   string // import path of the package under analysis
	Files  []*ast.File
	Pkg    *types.Package
	Info   *types.Info
	Policy *Policy

	analyzer string
	findings *[]Finding
	module   string          // module path, for module-membership tests
	pragmas  []*pragma       // every allow-pragma in the package
	hotDirs  []*hotDirective // every //cescalint:hotpath annotation
	facts    *factStore      // cross-package allocation facts (hotpath)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowPragmaAt returns the allow-pragma for analyzer name covering pos (its
// own line or the line above), or nil. Unlike suppress, this is consulted
// during analysis — the hotpath analyzer uses it to cleanse allocation
// sites before cleanliness propagates through the call graph.
func (p *Pass) allowPragmaAt(pos token.Pos, name string) *pragma {
	position := p.Fset.Position(pos)
	for _, pr := range p.pragmas {
		if pr.analyzer == name && pr.file == position.Filename &&
			(pr.line == position.Line || pr.line == position.Line-1) {
			return pr
		}
	}
	return nil
}

// A Target is one package directory to lint, with the import path it is
// analyzed under.
type Target struct {
	Dir  string
	Path string
}

// Runner drives the analyzer suite over a module.
type Runner struct {
	Root      string // module root directory (holds go.mod)
	Module    string // module path
	Policy    *Policy
	Analyzers []*Analyzer
	Parallel  int // max packages analyzed concurrently; <=0 means GOMAXPROCS

	fset *token.FileSet
	imp  *moduleImporter
}

// NewRunner returns a Runner over the module rooted at root with the full
// analyzer suite.
func NewRunner(root, module string, policy *Policy) *Runner {
	fset := token.NewFileSet()
	return &Runner{
		Root:      root,
		Module:    module,
		Policy:    policy,
		Analyzers: All(),
		fset:      fset,
		imp:       newModuleImporter(root, module, fset),
	}
}

// DiscoverTargets walks the module tree and returns every package directory
// (skipping testdata and hidden directories), sorted by import path.
func (r *Runner) DiscoverTargets() ([]Target, error) {
	var targets []Target
	err := filepath.WalkDir(r.Root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != r.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if _, err := build.ImportDir(path, 0); err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				return nil // directory without Go files; keep walking
			}
			return err
		}
		rel, err := filepath.Rel(r.Root, path)
		if err != nil {
			return err
		}
		importPath := r.Module
		if rel != "." {
			importPath = r.Module + "/" + filepath.ToSlash(rel)
		}
		targets = append(targets, Target{Dir: path, Path: importPath})
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].Path < targets[j].Path })
	return targets, nil
}

// pkgResult is what one worker produces for one target package.
type pkgResult struct {
	findings []Finding
	pragmas  []*pragma
	hotDirs  []*hotDirective
}

// Run lints the given targets and returns all surviving findings sorted by
// (file, line, column, analyzer, message). Packages are analyzed by a
// bounded worker pool in module-dependency order, so fact-producing
// analyzers always see their imports' facts; findings are merged in target
// order and globally sorted, which makes the output byte-identical at any
// Parallel level.
func (r *Runner) Run(targets []Target) ([]Finding, error) {
	facts := newFactStore(r.Module)

	// Build the dependency graph restricted to the target set. go/build
	// gives the import lists without a full parse.
	index := make(map[string]int, len(targets))
	for i, t := range targets {
		index[t.Path] = i
	}
	dependents := make([][]int, len(targets))
	indegree := make([]int, len(targets))
	for i, t := range targets {
		bp, err := build.ImportDir(t.Dir, 0)
		if err != nil {
			return nil, err
		}
		for _, imp := range bp.Imports {
			if j, ok := index[imp]; ok && j != i {
				dependents[j] = append(dependents[j], i)
				indegree[i]++
			}
		}
	}
	// Kahn dry run: a cycle would starve the worker pool, so reject it
	// up front (the Go compiler forbids import cycles; this guards
	// against broken fixtures only).
	{
		deg := append([]int(nil), indegree...)
		queue := make([]int, 0, len(targets))
		for i, d := range deg {
			if d == 0 {
				queue = append(queue, i)
			}
		}
		seen := 0
		for len(queue) > 0 {
			i := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			seen++
			for _, j := range dependents[i] {
				if deg[j]--; deg[j] == 0 {
					queue = append(queue, j)
				}
			}
		}
		if seen != len(targets) {
			return nil, fmt.Errorf("import cycle among lint targets")
		}
	}

	workers := r.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(targets) {
		workers = len(targets)
	}
	if workers < 1 {
		workers = 1
	}

	results := make([]pkgResult, len(targets))
	errs := make([]error, len(targets))
	ready := make(chan int, len(targets)) // buffered: sends under mu never block
	var mu sync.Mutex
	remaining := len(targets)
	for i, d := range indegree {
		if d == 0 {
			ready <- i
		}
	}
	if remaining == 0 {
		close(ready)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ready {
				res, err := r.runPackage(targets[i], facts)
				mu.Lock()
				results[i], errs[i] = res, err
				for _, j := range dependents[i] {
					if indegree[j]--; indegree[j] == 0 {
						ready <- j
					}
				}
				if remaining--; remaining == 0 {
					close(ready)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	var findings []Finding
	for _, res := range results {
		findings = append(findings, res.findings...)
	}
	findings = append(findings, r.stalePragmaFindings(results, facts)...)

	for i := range findings {
		if rel, err := filepath.Rel(r.Root, findings[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].File = filepath.ToSlash(rel)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return findings, nil
}

// runPackage type-checks one target through the shared importer cache and
// runs every applicable analyzer, then filters findings through the file's
// allow-pragmas.
func (r *Runner) runPackage(t Target, facts *factStore) (pkgResult, error) {
	lp, err := r.imp.load(t.Path)
	if err != nil {
		return pkgResult{}, err
	}
	pragmas, hotDirs, findings := r.collectPragmas(lp.files)
	if !r.Policy.Covers(t.Path) && len(lp.files) > 0 {
		position := r.fset.Position(lp.files[0].Pos())
		findings = append(findings, Finding{
			File: position.Filename, Line: position.Line, Col: position.Column,
			Analyzer: "policy",
			Message:  fmt.Sprintf("package %s is not covered by cescalint.policy; add it to the deterministic, output, or unchecked set", t.Path),
		})
	}
	for _, a := range r.Analyzers {
		if a.Scope == ScopeDeterministic && !r.Policy.IsDeterministic(t.Path) {
			continue
		}
		pass := &Pass{
			Fset:     r.fset,
			Path:     t.Path,
			Files:    lp.files,
			Pkg:      lp.pkg,
			Info:     lp.info,
			Policy:   r.Policy,
			analyzer: a.Name,
			findings: &findings,
			module:   r.Module,
			pragmas:  pragmas,
			hotDirs:  hotDirs,
			facts:    facts,
		}
		a.Run(pass)
	}
	return pkgResult{findings: suppress(findings, pragmas), pragmas: pragmas, hotDirs: hotDirs}, nil
}

// stalePragmaFindings is the end-of-run audit: every pragma and hotpath
// directive must have earned its keep. An allow-pragma is live when it
// suppressed a finding (marked by suppress) or, for hotpath pragmas, when
// it cleansed an allocation site that hot-path cleanliness actually
// consumed — inside an annotated function, or inside a clean function
// reachable from one through clean calls. Everything else rotted and is a
// finding.
func (r *Runner) stalePragmaFindings(results []pkgResult, facts *factStore) []Finding {
	consumed := facts.consumedFunctions()
	var findings []Finding
	for _, res := range results {
		for _, p := range res.pragmas {
			live := p.used
			if fn := facts.fnOfPragma(p); fn != nil {
				live = live || fn.hot || fn.implRoot || (fn.clean && consumed[fn.obj])
			}
			if !live {
				findings = append(findings, Finding{
					File: p.file, Line: p.line, Col: p.col,
					Analyzer: "pragma",
					Message:  fmt.Sprintf("stale pragma: //cescalint:allow %s suppresses no finding; remove it", p.analyzer),
				})
			}
		}
		for _, d := range res.hotDirs {
			if !d.used {
				findings = append(findings, Finding{
					File: d.file, Line: d.line, Col: d.col,
					Analyzer: "pragma",
					Message:  "stale directive: //cescalint:hotpath attaches to no function or interface-method declaration",
				})
			}
		}
	}
	return findings
}

// pragma is one parsed //cescalint:allow comment.
type pragma struct {
	file     string
	line     int
	col      int
	analyzer string
	used     bool // set when the pragma suppresses a finding
}

// hotDirective is one //cescalint:hotpath annotation comment. The hotpath
// analyzer marks it used when it attaches to a function or interface-method
// declaration; an unattached directive is reported stale.
type hotDirective struct {
	file string
	line int
	col  int
	pos  token.Pos
	used bool
}

const pragmaPrefix = "//cescalint:"

// collectPragmas parses every cescalint directive in files. Malformed
// directives (unknown verb, unknown analyzer name, missing reason) are
// returned as findings so a misspelled suppression cannot silently widen
// the allowed surface.
func (r *Runner) collectPragmas(files []*ast.File) ([]*pragma, []*hotDirective, []Finding) {
	known := make(map[string]bool, len(r.Analyzers))
	for _, a := range r.Analyzers {
		known[a.Name] = true
	}
	var pragmas []*pragma
	var hotDirs []*hotDirective
	var findings []Finding
	report := func(pos token.Pos, format string, args ...any) {
		position := r.fset.Position(pos)
		findings = append(findings, Finding{
			File:     position.Filename,
			Line:     position.Line,
			Col:      position.Column,
			Analyzer: "pragma",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, pragmaPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, pragmaPrefix)
				if rest == "hotpath" || strings.HasPrefix(rest, "hotpath ") {
					after := strings.TrimSpace(strings.TrimPrefix(rest, "hotpath"))
					if after != "" && !strings.HasPrefix(after, "--") {
						report(c.Pos(), "cescalint:hotpath directive takes no arguments (an optional `-- note` is allowed)")
						continue
					}
					position := r.fset.Position(c.Pos())
					hotDirs = append(hotDirs, &hotDirective{
						file: position.Filename, line: position.Line, col: position.Column, pos: c.Pos(),
					})
					continue
				}
				if !strings.HasPrefix(rest, "allow ") && rest != "allow" {
					verb := "(empty)"
					if fs := strings.Fields(rest); len(fs) > 0 {
						verb = fs[0]
					}
					report(c.Pos(), "unknown cescalint directive %q (want \"allow\" or \"hotpath\")", verb)
					continue
				}
				spec := strings.TrimPrefix(rest, "allow")
				name, reason, hasReason := strings.Cut(spec, "--")
				name = strings.TrimSpace(name)
				if name == "" {
					report(c.Pos(), "cescalint:allow pragma names no analyzer")
					continue
				}
				if !known[name] {
					report(c.Pos(), "cescalint:allow pragma names unknown analyzer %q", name)
					continue
				}
				if !hasReason || strings.TrimSpace(reason) == "" {
					report(c.Pos(), "cescalint:allow %s pragma requires a reason: `//cescalint:allow %s -- <why>`", name, name)
					continue
				}
				position := r.fset.Position(c.Pos())
				pragmas = append(pragmas, &pragma{
					file: position.Filename, line: position.Line, col: position.Column, analyzer: name,
				})
			}
		}
	}
	return pragmas, hotDirs, findings
}

// suppress drops findings covered by a same-analyzer pragma on the finding's
// own line or the line directly above it, marking each covering pragma used
// for the end-of-run stale audit.
func suppress(findings []Finding, pragmas []*pragma) []Finding {
	if len(pragmas) == 0 {
		return findings
	}
	kept := findings[:0]
	for _, f := range findings {
		allowed := false
		for _, p := range pragmas {
			if p.analyzer == f.Analyzer && p.file == f.File && (p.line == f.Line || p.line == f.Line-1) {
				p.used = true
				allowed = true
			}
		}
		if !allowed {
			kept = append(kept, f)
		}
	}
	return kept
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (root, module string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if path, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(path), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
