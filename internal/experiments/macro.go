package experiments

// macro-day is the sharded-kernel macro scenario: a full simulated day of
// serverless ML inference traffic across many tenant accounts, each tenant
// owning one faas.Platform pinned to a kernel shard (tenant t -> shard
// t%shards). Tenants interact only through the two shared-account
// resources the sharded kernel models as cross-shard interaction points:
//
//   - a shared parameter store (checkpoints land in per-tenant namespaces
//     of one storage.Store, whose mutex-guarded counters are
//     order-independent sums), and
//   - a shard-0 coordinator that tenants report to once per minute via
//     sim.Post and that posts load-shedding directives back.
//
// The scenario is the acceptance workload for the sharded kernel: its
// table and its obs trace must be byte-identical at every (shards,
// workers) setting. That holds because every event that can share a
// timestamp with another tenant's event (minute-aligned reports, absorbs
// and sheds) carries a globally unique priority, so the kernel's
// (time, priority) merge order never depends on per-shard sequence
// numbers; see DESIGN.md "Sharded kernel".
//
// Scaling note: the registered default is 32 tenants x 1500 invocations
// (48k arrivals) so the determinism matrix and the smoke tests run in
// well under a second; scripts/bench.sh raises it to 64 x 15625 = 1M
// invocations via SetMacroScale.

import (
	"fmt"
	"math"

	"repro/internal/faas"
	"repro/internal/obs"
	"repro/internal/platform/simbackend"
	"repro/internal/sim"
	"repro/internal/storage"
	"sync/atomic"
)

func init() { register("macro-day", runMacroDay) }

// Macro scale and sharding knobs, overridable by cmd/cebench flags and by
// scripts/bench.sh. Zero means "use the registered default".
var (
	macroTenants   atomic.Int64
	macroPerTenant atomic.Int64
	macroShards    atomic.Int64
	macroWorkers   atomic.Int64
)

// SetMacroScale overrides the macro-day population: tenants accounts with
// perTenant invocations each. Zero restores the default (32 x 1500).
func SetMacroScale(tenants, perTenant int) {
	macroTenants.Store(int64(tenants))
	macroPerTenant.Store(int64(perTenant))
}

// SetMacroSharding overrides how macro-day configures the kernel. Zero
// restores the defaults (8 shards, 1 worker). The table and trace are
// byte-identical at every setting; only wall-clock time changes.
func SetMacroSharding(shards, workers int) {
	macroShards.Store(int64(shards))
	macroWorkers.Store(int64(workers))
}

const (
	macroDay       = 86400.0 // one simulated day, seconds
	macroLookahead = 30.0    // conservative window: no cross-shard effect sooner
	macroReportGap = 60.0    // tenants report to the coordinator once a minute
	macroMaxRetry  = 3       // invocation attempts before a drop
	macroCkptEvery = 64      // checkpoint cadence, in completions per tenant

	// Priority bands. Every minute-aligned event class gets a band and
	// every tenant a distinct priority within it, so simultaneous events
	// always differ in (time, priority) and the merge order is independent
	// of shard count. Lower value fires first: at t = m*60+30 a shed
	// directive (issued at the previous absorb) applies before that
	// minute's absorbs are processed.
	priShed   = 500_000
	priReport = 1_000_000
	priAbsorb = 2_000_000
)

// macroTenant is one serverless account: its own platform (concurrency
// cap, warm pool, meter), rand streams and observability scope, all owned
// by a single kernel shard.
type macroTenant struct {
	id    int
	memMB int
	plat  *faas.Platform
	sh    *sim.Shard
	arr   *sim.Rand // arrival-time jitter
	svc   *sim.Rand // service-time draws
	rty   *sim.Rand // retry backoff jitter
	ckpt  *storage.Namespaced

	perTenant int
	phase     float64 // diurnal peak offset, tenant-specific
	shedUntil sim.Time

	completed, retried, shed, dropped, cold uint64
}

// arrivalAt returns the k-th arrival time: stratified uniform positions
// (k+u)/N warped by a monotone diurnal curve g(pos) = pos - a*cos(2*pi*pos
// + phi) + a*cos(phi) with a = 0.5/(2*pi), so the instantaneous rate swings
// between 0.5x and 1.5x of the mean while arrivals stay strictly ordered
// (g' = 1 + 0.5*sin(...) > 0) and g(0) = 0.
func (tn *macroTenant) arrivalAt(k int) sim.Time {
	const a = 0.5 / (2 * math.Pi)
	pos := (float64(k) + tn.arr.Float64()) / float64(tn.perTenant)
	g := pos - a*math.Cos(2*math.Pi*pos+tn.phase) + a*math.Cos(tn.phase)
	return sim.Time(macroDay * g)
}

// arrive handles the k-th arrival: it schedules the next one (keeping at
// most one pending arrival per tenant in the heap) and admits this one
// unless a coordinator shed directive is in force.
func (tn *macroTenant) arrive(k int) {
	if k+1 < tn.perTenant {
		next := tn.arrivalAt(k + 1)
		tn.sh.SchedulePriority(next, tn.id, func() { tn.arrive(k + 1) })
	}
	if tn.sh.Now() < tn.shedUntil {
		tn.shed++
		return
	}
	tn.tryInvoke(0)
}

func (tn *macroTenant) tryInvoke(attempt int) {
	invs, err := tn.plat.InvokeGroup(1, tn.memMB)
	if err != nil {
		if attempt+1 >= macroMaxRetry {
			tn.dropped++
			return
		}
		tn.retried++
		backoff := sim.Duration(math.Ldexp(0.5, attempt) * tn.rty.Jitter(0.2))
		at := tn.sh.Now() + sim.Time(backoff)
		tn.sh.SchedulePriority(at, tn.id, func() { tn.tryInvoke(attempt + 1) })
		return
	}
	if invs[0].Cold {
		tn.cold++
	}
	service := tn.svc.LogNormal(math.Log(40), 0.5)
	done := tn.sh.Now() + sim.Time(invs[0].StartDelay+service)
	tn.sh.SchedulePriority(done, tn.id, func() {
		tn.plat.ReleaseGroup(1, tn.memMB, service)
		tn.completed++
		if tn.completed%macroCkptEvery == 0 {
			tn.ckpt.Put(fmt.Sprintf("ckpt/%d", tn.completed/macroCkptEvery), []float64{float64(tn.completed), service})
		}
	})
}

// report snapshots the tenant's load and posts it to the coordinator,
// arriving exactly one lookahead later; it then schedules the next minute's
// report while arrivals can still be outstanding.
func (tn *macroTenant) report(coord *macroCoordinator, at sim.Time) {
	inFlight := tn.plat.InFlight()
	tn.sh.Post(coord.sh, at+sim.Time(macroLookahead), priAbsorb+tn.id, func() {
		coord.absorb(tn.id, inFlight)
	})
	next := at + sim.Time(macroReportGap)
	if float64(next) <= macroDay {
		tn.sh.SchedulePriority(next, priReport+tn.id, func() { tn.report(coord, next) })
	}
}

// macroCoordinator is the shard-0 control loop: once all tenants' reports
// for a minute have arrived it compares total in-flight load against the
// fleet's admission budget and posts shed directives to the most loaded
// tenants, arriving another lookahead later.
type macroCoordinator struct {
	sh       *sim.Shard
	tenants  []*macroTenant
	inFlight []int
	scope    *obs.Observer

	seen      int
	threshold int
	sheds     uint64
}

func (c *macroCoordinator) absorb(tenant, inFlight int) {
	c.inFlight[tenant] = inFlight
	c.seen++
	if c.seen < len(c.tenants) {
		return
	}
	c.seen = 0
	total := 0
	for _, n := range c.inFlight {
		total += n
	}
	now := c.sh.Now()
	over := total - c.threshold
	if over > 0 {
		// Shed the most loaded tenants, ties broken by tenant id: both the
		// victim set and the directive order are fixed by (load, id), never
		// by shard layout.
		for shedCount := 0; over > 0 && shedCount < len(c.tenants); shedCount++ {
			worst := -1
			for t, n := range c.inFlight {
				if n > 0 && (worst < 0 || n > c.inFlight[worst]) {
					worst = t
				}
			}
			if worst < 0 {
				break
			}
			tn := c.tenants[worst]
			at := now + sim.Time(macroLookahead)
			c.sh.Post(tn.sh, at, priShed+tn.id, func() {
				tn.shedUntil = at + sim.Time(macroReportGap)
			})
			c.sheds++
			over -= c.inFlight[worst]
			c.inFlight[worst] = 0
		}
	}
	if c.scope != nil {
		c.scope.Trace().InstantAt(float64(now), "macro", "coordinator", "window",
			obs.I("in_flight", total), obs.I("threshold", c.threshold), obs.I("sheds_total", int(c.sheds)))
	}
}

func runMacroDay(seed uint64) (*Table, error) {
	tenants := int(macroTenants.Load())
	perTenant := int(macroPerTenant.Load())
	if tenants <= 0 {
		tenants = 32
	}
	if perTenant <= 0 {
		perTenant = 1500
	}
	shards := int(macroShards.Load())
	workers := int(macroWorkers.Load())
	if shards <= 0 {
		shards = 8
	}
	if workers <= 0 {
		workers = 1
	}

	b := simbackend.New(seed)
	b.ConfigureSharding(shards, workers, macroLookahead)
	s := b.Sim()
	collector := activeCollector.Load()

	// Per-tenant concurrency caps sized near the mean in-flight load, so the
	// diurnal peak produces real contention (retries, drops) at any scale.
	meanService := 40 * math.Exp(0.5*0.5/2) // LogNormal(ln 40, 0.5) mean
	perCap := int(float64(perTenant) * meanService / macroDay)
	if perCap < 2 {
		perCap = 2
	}

	// The shedding budget sits just below the fleet's typical aggregate
	// in-flight load (staggered diurnal phases keep the total near its
	// mean), so the coordinator genuinely sheds during busy windows.
	coord := &macroCoordinator{
		sh:        s.Shard(0),
		inFlight:  make([]int, tenants),
		threshold: tenants * perCap * 2 / 5,
	}
	if collector != nil {
		coord.scope = collector.Scope("macro-day/coordinator")
	}

	fleet := make([]*macroTenant, tenants)
	for t := 0; t < tenants; t++ {
		name := obs.ScopeName("macro-day", "t", t, tenants)
		limits := faas.DefaultLimits()
		limits.MaxConcurrency = perCap
		plat := b.TenantPlatform(name, t%shards, limits)
		tn := &macroTenant{
			id:        t,
			memMB:     512 << (t % 3),
			plat:      plat,
			sh:        plat.Shard(),
			arr:       s.Rand(name + "/arrivals"),
			svc:       s.Rand(name + "/service"),
			rty:       s.Rand(name + "/retry"),
			ckpt:      b.Store().Namespace(name),
			perTenant: perTenant,
			phase:     2 * math.Pi * float64(t) / float64(tenants),
		}
		if collector != nil {
			plat.SetObserver(collector.Scope(name))
		}
		fleet[t] = tn

		tn.sh.SchedulePriority(tn.arrivalAt(0), tn.id, func() { tn.arrive(0) })
		first := sim.Time(macroReportGap)
		tn.sh.SchedulePriority(first, priReport+tn.id, func() { tn.report(coord, first) })
	}
	coord.tenants = fleet

	s.Run()

	if n := s.Pending(); n != 0 {
		return nil, fmt.Errorf("macro-day: %d events still pending after Run", n)
	}

	// Aggregate per memory class, always in tenant order so every float sum
	// has a fixed term order.
	type classRow struct {
		tenants, memMB                          int
		completed, retried, shed, dropped, cold uint64
		cost                                    float64
	}
	classes := make([]classRow, 3)
	var total classRow
	for t, tn := range fleet {
		c := &classes[t%3]
		c.tenants++
		c.memMB = tn.memMB
		c.completed += tn.completed
		c.retried += tn.retried
		c.shed += tn.shed
		c.dropped += tn.dropped
		c.cold += tn.cold
		m := tn.plat.Meter()
		c.cost += m.Total()
	}
	for _, c := range classes {
		total.tenants += c.tenants
		total.completed += c.completed
		total.retried += c.retried
		total.shed += c.shed
		total.dropped += c.dropped
		total.cold += c.cold
		total.cost += c.cost
	}

	row := func(label string, c classRow, memMB string) []string {
		return []string{
			label, fmt.Sprintf("%d", c.tenants), memMB,
			fmt.Sprintf("%d", c.completed), fmt.Sprintf("%d", c.retried),
			fmt.Sprintf("%d", c.shed), fmt.Sprintf("%d", c.dropped),
			fmt.Sprintf("%d", c.cold), f4(c.cost),
		}
	}
	tab := &Table{
		ID:      "macro-day",
		Title:   "Macro day: multi-tenant inference fleet with coordinator shedding",
		Headers: []string{"class", "tenants", "memMB", "completed", "retried", "shed", "dropped", "cold", "cost$"},
	}
	for i, c := range classes {
		tab.Rows = append(tab.Rows, row(fmt.Sprintf("mem-%d", i), c, fmt.Sprintf("%d", c.memMB)))
	}
	tab.Rows = append(tab.Rows, row("TOTAL", total, "-"))
	st := b.Store().Stats()
	tab.Notes = fmt.Sprintf(
		"%d tenants x %d arrivals over a 24h simulated day; per-tenant concurrency cap %d, coordinator budget %d, checkpoints every %d completions (puts=%d); events=%d",
		tenants, perTenant, perCap, coord.threshold, macroCkptEvery, st.Puts, s.EventsFired())
	return tab, nil
}
