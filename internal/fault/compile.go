package fault

import "repro/internal/sim"

// Ops is the set of platform mutators a compiled schedule drives. Nil
// members skip their event kinds. Window hooks are called with the window's
// factor (and rate) at From and with the neutral value (factor 1, rate 0)
// at To, so a hook only ever observes the currently active window.
type Ops struct {
	// Kill terminates n in-flight sandboxes (faas.Platform.KillSandboxes).
	Kill func(n int)
	// Reclaim removes n warm sandboxes (faas.Platform.ReclaimWarm).
	Reclaim func(n int)
	// Straggler sets the active compute-slowdown factor (1 = none).
	Straggler func(factor float64)
	// Brownout sets the active storage degradation (latFactor 1 and
	// errRate 0 = none).
	Brownout func(latFactor, errRate float64)
	// ColdSpike sets the active cold-start multiplier (1 = none).
	ColdSpike func(factor float64)
	// Link sets the active network multiplier for one worker link (-1 =
	// every worker; 1 = none).
	Link func(link int, factor float64)
}

// Compile schedules the fault events onto a kernel shard, mutating platform
// state through ops as simulated time reaches them. Every scheduled event
// carries the given priority: give each tenant a distinct priority (the
// macro-scenario banding pattern) so simultaneous fault events on different
// shards keep a globally unique (time, priority) and the kernel's merge
// order stays independent of the shard layout. Returns the number of kernel
// events scheduled.
func Compile(s *Schedule, sh *sim.Shard, priority int, ops Ops) int {
	if !s.Active() {
		return 0
	}
	n := 0
	schedule := func(at float64, fn func()) {
		sh.SchedulePriority(sim.Time(at), priority, fn)
		n++
	}
	for _, e := range s.events {
		e := e
		switch e.Kind {
		case KillSandbox:
			if ops.Kill != nil {
				schedule(e.At, func() { ops.Kill(e.Count) })
			}
		case ReclaimWarm:
			if ops.Reclaim != nil {
				schedule(e.At, func() { ops.Reclaim(e.Count) })
			}
		case Straggler:
			if ops.Straggler != nil {
				schedule(e.From, func() { ops.Straggler(e.Factor) })
				schedule(e.To, func() { ops.Straggler(1) })
			}
		case Brownout:
			if ops.Brownout != nil {
				schedule(e.From, func() { ops.Brownout(e.Factor, e.ErrorRate) })
				schedule(e.To, func() { ops.Brownout(1, 0) })
			}
		case ColdSpike:
			if ops.ColdSpike != nil {
				schedule(e.From, func() { ops.ColdSpike(e.Factor) })
				schedule(e.To, func() { ops.ColdSpike(1) })
			}
		case LinkDegrade:
			if ops.Link != nil {
				schedule(e.From, func() { ops.Link(e.Link, e.Factor) })
				schedule(e.To, func() { ops.Link(e.Link, 1) })
			}
		}
	}
	return n
}
