// Package pragmatest seeds malformed suppression pragmas for the driver's
// pragma-validation test: a misspelled analyzer or a missing reason is
// itself a finding, and a malformed pragma suppresses nothing.
package pragmatest

import "time"

// Suppressed carries a well-formed pragma: no walltime finding.
func Suppressed() time.Time {
	//cescalint:allow walltime -- seeded fixture: legitimate suppression
	return time.Now()
}

// Misspelled names an analyzer that does not exist, so the pragma is a
// finding and the time.Now below is still reported.
func Misspelled() time.Time {
	//cescalint:allow waltime -- typo in the analyzer name
	return time.Now()
}

// MissingReason omits the mandatory "-- <why>" tail.
func MissingReason() time.Time {
	//cescalint:allow walltime
	return time.Now()
}

// UnknownVerb uses a directive that is not "allow".
func UnknownVerb() time.Time {
	//cescalint:deny walltime -- no such directive
	return time.Now()
}
