// Package stalepragma seeds suppressions that rot: well-formed pragmas
// that no longer suppress anything, and a hotpath directive attached to
// nothing. Each is a finding, so the allowed surface cannot silently grow.
package stalepragma

import "time"

// Fresh is covered: the pragma suppresses a real walltime finding and
// stays silent.
func Fresh() time.Time {
	//cescalint:allow walltime -- fixture: proves a live pragma stays silent
	return time.Now()
}

// Stale suppresses nothing: the wall-clock read it once guarded is gone.
func Stale(d time.Duration) time.Duration {
	//cescalint:allow walltime -- fixture: the guarded call was deleted
	return 2 * d
}

// orphan cleanses an allocation no hot path consumes; the pragma is dead
// weight and must surface.
func orphan(n int) []int {
	//cescalint:allow hotpath -- fixture: nobody hot calls this
	return make([]int, n)
}

// floating carries a hotpath directive that attaches to no declaration.
func floating() int {
	//cescalint:hotpath
	return 0
}
