GO ?= go

.PHONY: check fmt vet build lint test race trace-check shard-check bench benchfull

check: fmt vet build lint test race trace-check shard-check

fmt:
	@out="$$(gofmt -s -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt -s needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# cescalint: the determinism- and allocation-enforcing static-analysis
# suite (walltime, globalrand, maporder, fpreduce, importboundary,
# shardsafe, hotpath, pragma staleness, policy completeness). Package sets
# live in cescalint.policy; //cescalint:hotpath marks functions that must
# be allocation-free in steady state. See DESIGN.md "Determinism
# invariants" and README "Lint" for the annotation/pragma workflow.
lint:
	$(GO) run ./cmd/cescalint ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./...

# trace-check: the observability determinism gate. Runs one small figure
# twice with -trace-out (serial, then 8-way parallel) and requires the
# trace, metrics and stdout bytes to match exactly — and the stdout to match
# a run with tracing off.
trace-check:
	sh scripts/trace_check.sh

# shard-check: the sharded-kernel determinism gate. Runs the kernel's
# cross-shard workload matrix plus the macro-day (event-path), macro-fleet
# (control-path), macro-trace (open-loop traffic) and macro-chaos
# (fault-injection) scenarios across shard and worker counts, requiring
# event-for-event equivalence with the single-queue reference and
# byte-identical tables, traces and metrics everywhere.
shard-check:
	$(GO) test -run 'TestCrossShardWorkloadMatrix|TestLookaheadWindowsMatchSingleWindow|TestShardScheduleAndMerge' ./internal/sim/
	$(GO) test -run 'TestMacroDayShardMatrix|TestMacroFleetShardMatrix|TestMacroTraceShardMatrix|TestMacroTraceKindsShardStable|TestMacroChaosShardMatrix' ./internal/experiments/

# Smoke-run the numeric-path benchmarks (ml kernels, dataset caches, DES
# kernel, decision path) at a fixed small iteration count: fast enough for
# CI, enough to catch kernels that re-grow allocations. The zero-alloc gates
# (testing.AllocsPerRun on the steady-state fit/observe/decision paths) run
# first and fail hard if the hot paths touch the heap. scripts/bench.sh does
# the real measured runs into BENCH_PR*.json.
bench:
	$(GO) test -run 'TestFitterZeroAlloc|TestFixedWindowObserveZeroAlloc|TestDecisionZeroAlloc' \
		./internal/fit/ ./internal/predictor/ ./internal/scheduler/
	$(GO) test -run 'TestHistObserveZeroAlloc|TestCursorNextZeroAlloc|TestInvoke1SteadyStateZeroAlloc|TestInvoke1DenialZeroAlloc' \
		./internal/obs/ ./internal/traffic/ ./internal/faas/
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=100x \
		./internal/ml/ ./internal/dataset/
	$(GO) test -run '^$$' -bench . -benchtime=100x \
		./internal/sim/ ./internal/cost/ ./internal/fit/ ./internal/scheduler/ ./internal/traffic/

benchfull:
	$(GO) test -bench=. -benchtime=1x ./...
