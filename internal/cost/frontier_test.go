package cost

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/workload"
)

// TestFrontierInterned: two independent models with the same analytic
// configuration must share one *Frontier instance — that sharing is what
// keeps a 10k-tenant fleet from holding 10k boundary copies.
func TestFrontierInterned(t *testing.T) {
	g := DefaultGrid()
	f1 := NewModel(workload.MobileNet()).ParetoFrontier(g)
	f2 := NewModel(workload.MobileNet()).ParetoFrontier(g)
	if f1 != f2 {
		t.Error("equal-config models should intern to the same *Frontier")
	}
	f3 := NewModel(workload.ResNet50()).ParetoFrontier(g)
	if f3 == f1 {
		t.Error("different workloads must not share a frontier")
	}
	m := NewModel(workload.MobileNet())
	m.StragglerSigma = 0.2
	if f4 := m.ParetoFrontier(g); f4 == f1 {
		t.Error("different model noise must not share a frontier")
	}
	// Repeated calls on one model return the same instance (no rebuild).
	m2 := NewModel(workload.MobileNet())
	if m2.ParetoFrontier(g) != m2.ParetoFrontier(g) {
		t.Error("ParetoFrontier should be stable per model")
	}
}

// TestFrontierMatchesParetoSet: the shared view and the copying API must
// expose identical boundaries, and ParetoSet copies must be independent.
func TestFrontierMatchesParetoSet(t *testing.T) {
	m := NewModel(workload.MobileNet())
	g := DefaultGrid()
	f := m.ParetoFrontier(g)
	set := m.ParetoSet(g)
	if f.Len() != len(set) {
		t.Fatalf("frontier len %d != pareto set len %d", f.Len(), len(set))
	}
	for i := range set {
		if f.At(i) != set[i] {
			t.Errorf("point %d: frontier %+v != set %+v", i, f.At(i), set[i])
		}
	}
	set[0].Cost = -1
	if f.At(0).Cost == -1 {
		t.Error("mutating a ParetoSet copy reached the shared frontier")
	}
	if f.Points()[0] != f.At(0) {
		t.Error("Points and At disagree")
	}
}

// TestFrontierStrictOrder: an interned frontier is strictly ascending in
// Time and strictly descending in Cost — the invariant the scheduler's
// binary-search selection depends on.
func TestFrontierStrictOrder(t *testing.T) {
	for _, w := range []*workload.Model{workload.MobileNet(), workload.ResNet50()} {
		f := NewModel(w).ParetoFrontier(DefaultGrid())
		pts := f.Points()
		if len(pts) == 0 {
			t.Fatalf("%s: empty frontier", w.Name)
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].Time <= pts[i-1].Time {
				t.Errorf("%s: Time not strictly ascending at %d", w.Name, i)
			}
			if pts[i].Cost >= pts[i-1].Cost {
				t.Errorf("%s: Cost not strictly descending at %d", w.Name, i)
			}
		}
	}
}

// TestFrontierNilSafe: a nil frontier behaves as empty.
func TestFrontierNilSafe(t *testing.T) {
	var f *Frontier
	if f.Len() != 0 || f.Points() != nil {
		t.Error("nil frontier should be empty")
	}
}

func TestNewFrontierParetoizes(t *testing.T) {
	pts := []Point{
		{Alloc: Allocation{N: 1}, Time: 3, Cost: 1},
		{Alloc: Allocation{N: 2}, Time: 1, Cost: 3},
		{Alloc: Allocation{N: 3}, Time: 2, Cost: 5}, // dominated by N=2? no: time 2>1, cost 5>3 -> dominated
	}
	f := NewFrontier(pts)
	if f.Len() != 2 {
		t.Fatalf("want 2 boundary points, got %d", f.Len())
	}
	if f.At(0).Alloc.N != 2 || f.At(1).Alloc.N != 1 {
		t.Errorf("unexpected boundary: %+v", f.Points())
	}
}

// TestDenseTableCoherent: estimates served from the dense grid table must
// be bit-identical to fresh computation and to sync.Map-cached values
// (lookups before and after the table is built agree).
func TestDenseTableCoherent(t *testing.T) {
	g := DefaultGrid()
	before := NewModel(workload.MobileNet())
	after := NewModel(workload.MobileNet())
	after.ParetoFrontier(g) // builds the dense table up front
	for _, n := range g.Ns {
		for _, mem := range g.MemsMB {
			for _, s := range g.Storages {
				a := Allocation{N: n, MemMB: mem, Storage: s}
				if !before.Feasible(a) {
					continue
				}
				bt, at_ := before.EpochTime(a), after.EpochTime(a)
				bc, ac := before.EpochCost(a), after.EpochCost(a)
				if bt != at_ || bc != ac {
					t.Fatalf("%v: table (%v,%v) != computed (%v,%v)", a, at_, ac, bt, bc)
				}
			}
		}
	}
	// Off-grid probes still work (sync.Map fallback path).
	off := Allocation{N: 7, MemMB: 1536, Storage: g.Storages[0]}
	if after.Feasible(off) {
		if after.EpochTime(off) != before.EpochTime(off) {
			t.Error("off-grid estimate mismatch")
		}
	}
}

func TestGridsEqual(t *testing.T) {
	g := DefaultGrid()
	h := DefaultGrid()
	if !gridsEqual(g, h) {
		t.Error("identical grids should compare equal")
	}
	h.Ns = append([]int(nil), g.Ns...)
	h.Ns[0]++
	if gridsEqual(g, h) {
		t.Error("differing Ns should compare unequal")
	}
	if gridsEqual(g, Grid{Ns: g.Ns, MemsMB: g.MemsMB[:1], Storages: g.Storages}) {
		t.Error("differing lengths should compare unequal")
	}
}

// TestEnumerateReturnsPrivateCopies: Enumerate's result must stay mutable
// by the caller without corrupting the shared table.
func TestEnumerateReturnsPrivateCopies(t *testing.T) {
	m := NewModel(workload.MobileNet())
	g := DefaultGrid()
	a := m.Enumerate(g)
	b := m.Enumerate(g)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("enumerate sizes: %d vs %d", len(a), len(b))
	}
	a[0].Cost = -42
	if b[0].Cost == -42 || m.Enumerate(g)[0].Cost == -42 {
		t.Error("Enumerate results share backing storage")
	}
}

// paretoReference is the pre-fast-path implementation: unconditional
// copy+sort+sweep. The fast path must be observationally identical.
func paretoReference(points []Point) []Point {
	if len(points) == 0 {
		return nil
	}
	sorted := make([]Point, len(points))
	copy(sorted, points)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Time != sorted[j].Time {
			return sorted[i].Time < sorted[j].Time
		}
		return sorted[i].Cost < sorted[j].Cost
	})
	var front []Point
	best := sorted[0].Cost + 1
	for _, p := range sorted {
		if p.Cost < best {
			front = append(front, p)
			best = p.Cost
		}
	}
	return front
}

// TestParetoFastPathEquivalent: on randomized inputs — shuffled, sorted,
// with duplicated times and duplicated (Time, Cost) pairs — Pareto must
// return exactly what the unconditional copy+sort reference returns, and
// must not mutate its input.
func TestParetoFastPathEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		pts := make([]Point, n)
		for i := range pts {
			// Small integer coordinates force plenty of ties.
			pts[i] = Point{
				Alloc: Allocation{N: i + 1},
				Time:  float64(1 + rng.Intn(8)),
				Cost:  float64(1 + rng.Intn(8)),
			}
		}
		if trial%3 == 0 {
			// Exercise the fast path: strictly sorted input.
			sort.Slice(pts, func(i, j int) bool {
				if pts[i].Time != pts[j].Time {
					return pts[i].Time < pts[j].Time
				}
				return pts[i].Cost < pts[j].Cost
			})
			dedup := pts[:0]
			for _, p := range pts {
				if len(dedup) == 0 || p.Time != dedup[len(dedup)-1].Time || p.Cost != dedup[len(dedup)-1].Cost {
					dedup = append(dedup, p)
				}
			}
			pts = dedup
		}
		orig := append([]Point(nil), pts...)
		want := paretoReference(pts)
		got := Pareto(pts)
		if len(want) != len(got) {
			t.Fatalf("trial %d: len %d != %d", trial, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: point %d: got %+v want %+v", trial, i, got[i], want[i])
			}
		}
		for i := range orig {
			if pts[i] != orig[i] {
				t.Fatalf("trial %d: Pareto mutated its input at %d", trial, i)
			}
		}
	}
}

// TestParetoFastPathOnFrontier: re-paretoizing a frontier (strictly sorted
// by construction) is the identity and runs allocation-light (no copy+sort).
func TestParetoFastPathOnFrontier(t *testing.T) {
	front := NewModel(workload.MobileNet()).ParetoSet(DefaultGrid())
	if !strictlySorted(front) {
		t.Fatal("frontier should be strictly sorted")
	}
	again := Pareto(front)
	if len(again) != len(front) {
		t.Fatalf("re-pareto changed size: %d -> %d", len(front), len(again))
	}
	for i := range front {
		if again[i] != front[i] {
			t.Errorf("point %d changed: %+v -> %+v", i, front[i], again[i])
		}
	}
}

func TestStrictlySorted(t *testing.T) {
	cases := []struct {
		pts  []Point
		want bool
	}{
		{nil, true},
		{[]Point{{Time: 1, Cost: 5}}, true},
		{[]Point{{Time: 1, Cost: 5}, {Time: 2, Cost: 3}}, true},
		{[]Point{{Time: 1, Cost: 3}, {Time: 1, Cost: 5}}, true},  // tie on time, cost ascending
		{[]Point{{Time: 1, Cost: 5}, {Time: 1, Cost: 5}}, false}, // duplicate pair: unsafe
		{[]Point{{Time: 2, Cost: 5}, {Time: 1, Cost: 3}}, false},
		{[]Point{{Time: 1, Cost: 5}, {Time: 1, Cost: 3}}, false},
	}
	for i, c := range cases {
		if got := strictlySorted(c.pts); got != c.want {
			t.Errorf("case %d: strictlySorted=%v want %v", i, got, c.want)
		}
	}
}
