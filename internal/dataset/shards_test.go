package dataset_test

// Shard-cache and generation-cache correctness: cached results must be
// bit-identical to the uncached primitives, shared across callers, and
// aliasing-safe (training on shared shards never mutates the data). The
// tests live in an external package so they can drive the real SGD engine
// over shared shards without an import cycle.

import (
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ml"
	"repro/internal/sim"
)

func genMatrix(rows, cols int, seed uint64) *dataset.Matrix {
	return dataset.GenerateBinary(sim.NewRand(seed), dataset.GenConfig{Samples: rows, Features: cols, NoiseFlip: 0.1})
}

func TestShardsMatchPartition(t *testing.T) {
	m := genMatrix(103, 4, 1)
	for _, n := range []int{1, 3, 8, 103, 200} {
		want := m.Partition(n)
		got := m.Shards(n)
		if len(got) != len(want) {
			t.Fatalf("n=%d: %d shards, want %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i].Rows != want[i].Rows || got[i].Cols != want[i].Cols {
				t.Fatalf("n=%d shard %d: shape (%d,%d), want (%d,%d)",
					n, i, got[i].Rows, got[i].Cols, want[i].Rows, want[i].Cols)
			}
			if &got[i].X[0] != &want[i].X[0] || &got[i].Y[0] != &want[i].Y[0] {
				t.Fatalf("n=%d shard %d: cached shard views different rows than Partition", n, i)
			}
		}
	}
}

func TestShardsMemoized(t *testing.T) {
	m := genMatrix(50, 3, 2)
	a := m.Shards(4)
	b := m.Shards(4)
	if len(a) != len(b) {
		t.Fatal("repeated Shards calls disagree on shard count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("shard %d: repeated calls returned distinct *Matrix values", i)
		}
	}
	// Clamped counts share the clamped entry.
	c := m.Shards(50)
	d := m.Shards(99)
	if len(c) != 50 || len(d) != 50 || c[0] != d[0] {
		t.Error("shard counts clamped to Rows should share one cache entry")
	}
}

// TestSharedShardsAliasingSafe trains two concurrent-style trials over the
// same cached shards and verifies that mutating trial state (weights) never
// mutates the shared data.
func TestSharedShardsAliasingSafe(t *testing.T) {
	m := genMatrix(400, 6, 3)
	xSum, ySum := checksum(m.X), checksum(m.Y)

	mkTrainer := func(seed uint64) *ml.Trainer {
		tr, err := ml.NewTrainer(m, ml.Config{
			Objective: ml.Logistic{L2: 1e-4}, Workers: 4, BatchPerWkr: 20,
			LearningRate: 0.5, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	t1, t2 := mkTrainer(1), mkTrainer(2)
	for e := 0; e < 3; e++ {
		t1.RunEpoch()
		t2.RunEpoch()
	}
	if checksum(m.X) != xSum || checksum(m.Y) != ySum {
		t.Fatal("training over shared shards mutated the dataset")
	}
	// Both trainers saw the same shard views.
	s1, s2 := m.Shards(4), m.Shards(4)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("shard %d not shared between trials", i)
		}
	}
}

// TestSharedDataTrainsIdenticallyToPrivateData: a trial over the shared
// cached matrix must produce the same loss trace as a trial over its own
// private copy (the old per-trial behaviour).
func TestSharedDataTrainsIdenticallyToPrivateData(t *testing.T) {
	shared := dataset.CachedBinary(9, dataset.GenConfig{Samples: 300, Features: 5, NoiseFlip: 0.2})
	private := dataset.GenerateBinary(sim.NewRand(9), dataset.GenConfig{Samples: 300, Features: 5, NoiseFlip: 0.2})

	run := func(m *dataset.Matrix) []float64 {
		tr, err := ml.NewTrainer(m, ml.Config{
			Objective: ml.Logistic{}, Workers: 3, BatchPerWkr: 25, LearningRate: 0.3, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr.TrainToLoss(0, 4)
	}
	a, b := run(shared), run(private)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("epoch %d: shared-data loss %v, private-data loss %v", i, a[i], b[i])
		}
	}
}

func TestCachedGenerationBitIdentical(t *testing.T) {
	cfg := dataset.GenConfig{Samples: 200, Features: 7, NoiseFlip: 0.15}
	cached := dataset.CachedBinary(42, cfg)
	fresh := dataset.GenerateBinary(sim.NewRand(42), cfg)
	matricesEqual(t, cached, fresh)

	rcfg := dataset.GenConfig{Samples: 150, Features: 6, NoiseStd: 2}
	rc := dataset.CachedRegression(43, rcfg)
	rf := dataset.GenerateRegression(sim.NewRand(43), rcfg)
	matricesEqual(t, rc, rf)

	// Repeated lookups return the same shared matrix.
	if dataset.CachedBinary(42, cfg) != cached {
		t.Error("repeated CachedBinary should return the cached matrix")
	}
	// Different seeds or kinds are distinct entries.
	if dataset.CachedBinary(44, cfg) == cached {
		t.Error("different seed must not share a cache entry")
	}
}

func TestGenCacheEvictionRegeneratesIdentically(t *testing.T) {
	restore := dataset.SetGenCacheCapForTest(2000) // each 100×7 matrix is 800 floats
	defer restore()

	cfg := dataset.GenConfig{Samples: 100, Features: 7, NoiseFlip: 0.1}
	first := dataset.CachedBinary(1, cfg)
	for seed := uint64(2); seed < 6; seed++ {
		dataset.CachedBinary(seed, cfg)
	}
	if n := dataset.GenCacheLenForTest(); n > 3 {
		t.Fatalf("cache holds %d matrices, want eviction to bound it", n)
	}
	// The evicted entry regenerates bit-identically (a new allocation).
	again := dataset.CachedBinary(1, cfg)
	matricesEqual(t, first, again)
}

// TestConcurrentCacheAccess hammers the generation and shard caches from
// many goroutines (the parallel experiment engine's access pattern); run
// under -race it proves the sharing is synchronized, and every caller must
// observe the same matrices.
func TestConcurrentCacheAccess(t *testing.T) {
	restore := dataset.SetGenCacheCapForTest(1 << 20)
	defer restore()
	cfg := dataset.GenConfig{Samples: 120, Features: 8, NoiseFlip: 0.1}

	const goroutines = 8
	got := make([]*dataset.Matrix, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				m := dataset.CachedBinary(7, cfg)
				m.Shards(3 + i%4)
				got[g] = m
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if got[g] != got[0] {
			t.Fatalf("goroutine %d saw a different cached matrix", g)
		}
	}
	fresh := dataset.GenerateBinary(sim.NewRand(7), cfg)
	matricesEqual(t, got[0], fresh)
}

func matricesEqual(t *testing.T, a, b *dataset.Matrix) {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols {
		t.Fatalf("shape (%d,%d) vs (%d,%d)", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatalf("X[%d]: %v vs %v", i, a.X[i], b.X[i])
		}
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			t.Fatalf("Y[%d]: %v vs %v", i, a.Y[i], b.Y[i])
		}
	}
}

func checksum(xs []float64) float64 {
	var s float64
	for i, x := range xs {
		s += x * float64(i+1)
	}
	return s
}
