#!/bin/sh
# Full gate: formatting, vet, build, tests, and the race detector on every
# package that runs real goroutine concurrency. Same steps as `make check`.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
out="$(gofmt -l .)"
if [ -n "$out" ]; then
	echo "gofmt needed on:"
	echo "$out"
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (live substrate + parallel engine)"
go test -race \
	./internal/distml/... \
	./internal/psnet/... \
	./internal/objstore/... \
	./internal/lambda/... \
	./internal/platform/livebackend/...
go test -race -run 'TestCells|TestRunAll|Memo|Concurrent' \
	./internal/experiments/ ./internal/cost/ ./internal/dataset/

echo "== determinism gate (parallel == serial, kernel == reference heap)"
go test -run 'TestParallelOutputsMatchSerial|TestRunAllPreservesRequestOrder' .
go test -run 'TestKernelMatchesReferenceHeap|TestRunUntilNeverMovesClockBackwards' ./internal/sim/

echo "== benchmark smoke (sim/cost at 1x, numeric path at 100x, same as make bench)"
go test -run '^$' -bench . -benchtime=1x ./internal/sim/ ./internal/cost/
go test -run '^$' -bench . -benchmem -benchtime=100x ./internal/ml/ ./internal/dataset/

echo "OK"
