// Package hotpathreg is the seeded-regression fixture the tentpole
// demands: an innocuous-looking closure capture inside an annotated
// function. The helper closure reads naturally — and allocates on every
// call, because it captures the receiver.
package hotpathreg

// Window is a rolling sum with a fixed-capacity buffer.
type Window struct {
	buf []float64
	pos int
	sum float64
}

// Observe folds one sample into the window; it sits on the per-event path
// and must never touch the heap.
//
//cescalint:hotpath
func (w *Window) Observe(v float64) float64 {
	shift := func(x float64) {
		w.sum += x - w.buf[w.pos]
		w.buf[w.pos] = x
	}
	shift(v)
	w.pos++
	if w.pos == len(w.buf) {
		w.pos = 0
	}
	return w.sum
}
