// Package shardsafetest seeds concurrency-outside-the-executor violations
// for the shardsafe analyzer's golden test. The sibling executor.go is
// listed shard-exempt in the test policy and must stay silent.
package shardsafetest

import "sync" // finding: sync import

// Kernel is a stand-in event kernel type.
type Kernel struct {
	mu   sync.Mutex // relies on the flagged import; not itself a finding
	done chan int   // finding: channel type
}

// Bad spawns a goroutine and selects on a channel outside the executor.
func Bad(k *Kernel) {
	go func() { // finding: go statement
		k.mu.Lock()
		defer k.mu.Unlock()
	}()
	select { // finding: select statement
	case <-k.done:
	default:
	}
}

// MakeChan returns a fresh channel.
func MakeChan() chan int { // finding: channel type
	//cescalint:allow shardsafe -- seeded pragma: channel handed to the exempt executor
	return make(chan int)
}

// Legal schedules through plain function values; no concurrency.
func Legal(fns []func()) {
	for _, fn := range fns {
		fn()
	}
}
