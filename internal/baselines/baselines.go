// Package baselines implements the comparison systems of §IV as allocation
// policies over the same simulated substrate:
//
//   - LambdaML [14]: static allocation with offline sampling-based epoch
//     prediction, S3 as the only storage (CE-scaling minus the greedy
//     heuristic planner and minus online adaptation).
//   - Siren [9]: deep-RL allocator modeled by its documented behaviour —
//     S3-only storage, per-epoch resource adjustment with exploration noise
//     and full (immediate) function restarts, and a bias toward granting
//     early tuning stages more resources.
//   - Cirrus [4]: static allocation pinned to a VM parameter server; the
//     "modified Cirrus" of §IV-C adds CE-scaling's online prediction but
//     keeps VM-PS storage and immediate restarts.
//
// Every policy consumes the same cost.Model estimates and drives the same
// trainer, so differences in JCT/cost reflect policy, not substrate.
package baselines

import (
	"math"
	"sort"

	"repro/internal/cost"
	"repro/internal/planner"
	"repro/internal/predictor"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/trainer"
)

// FilterByStorage returns the subset of points using the given service.
func FilterByStorage(points []cost.Point, kind storage.Kind) []cost.Point {
	var out []cost.Point
	for _, p := range points {
		if p.Alloc.Storage == kind {
			out = append(out, p)
		}
	}
	return out
}

// --- Hyperparameter-tuning plans ---

// StaticPlanPinned is the optimal uniform allocation over candidates pinned
// to one storage service.
func StaticPlanPinned(m *cost.Model, stages []planner.Stage, points []cost.Point, kind storage.Kind, budget, qos float64) (planner.Result, error) {
	sub := FilterByStorage(points, kind)
	pl, err := planner.New(m, stages, sub)
	if err != nil {
		return planner.Result{}, err
	}
	return pl.OptimalStatic(budget, qos), nil
}

// LambdaMLPlan is the static baseline: the optimal uniform allocation over
// S3-only candidates (Fig. 9-10 "LambdaML").
func LambdaMLPlan(m *cost.Model, stages []planner.Stage, points []cost.Point, budget, qos float64) (planner.Result, error) {
	return StaticPlanPinned(m, stages, points, storage.S3, budget, qos)
}

// SirenPlan models Siren's tuning behaviour: an S3-only static plan whose
// early stages are then upgraded while the constraint allows — the paper's
// observation that Siren's RL "tends to allocate more resources in the
// early stages", wasting them on trials that will be terminated.
func SirenPlan(m *cost.Model, stages []planner.Stage, points []cost.Point, budget, qos float64) (planner.Result, error) {
	return SirenPlanPinned(m, stages, points, storage.S3, budget, qos)
}

// SirenPlanPinned is SirenPlan over an arbitrary pinned storage service
// (the Fig. 16 same-storage comparison).
func SirenPlanPinned(m *cost.Model, stages []planner.Stage, points []cost.Point, kind storage.Kind, budget, qos float64) (planner.Result, error) {
	s3 := FilterByStorage(points, kind)
	// The upgrade ladder below walks toward lower indices = faster
	// allocations, so the candidate list must be time-sorted.
	sort.Slice(s3, func(i, j int) bool { return s3[i].Time < s3[j].Time })
	pl, err := planner.New(m, stages, s3)
	if err != nil {
		return planner.Result{}, err
	}
	// Siren warm-starts from the *cheapest* plan satisfying the constraint
	// and then spends its headroom on early stages (the opposite of
	// CE-scaling's recycling), so under a budget its slack goes to trials
	// that will be terminated. Under a QoS constraint upgrades never
	// violate the deadline, so Siren's over-allocation is bounded by a
	// spending cap instead (its RL reward trades speed against cost, with
	// the documented early-stage bias).
	var res planner.Result
	if budget > 0 {
		res = pl.OptimalStatic(0, math.Inf(1)) // cheapest static
		if res.Cost > budget {
			res = pl.OptimalStatic(budget, 0)
		}
	} else {
		res = pl.OptimalStatic(0, qos)
	}
	plan := res.Plan.Clone()
	costCap := math.Inf(1)
	if qos > 0 {
		costCap = res.Cost * 1.6
	}
	// Front-to-back: early stages soak up the headroom first (the bias),
	// then whatever remains trickles to later stages.
	for i := 0; i < len(stages); i++ {
		idx := indexOf(s3, plan.Stages[i])
		for idx > 0 {
			trial := plan.Clone()
			trial.Stages[i] = s3[idx-1].Alloc
			jct, c := pl.JCT(trial), pl.Cost(trial)
			// Siren's RL maximizes stage speed, so it never picks an
			// upgrade that slows the stage down (e.g. one that triggers
			// extra admission waves).
			if pl.StageTime(i, trial.Stages[i]) > pl.StageTime(i, plan.Stages[i]) {
				break
			}
			if (budget > 0 && c > budget) || (qos > 0 && jct > qos) || c > costCap {
				break
			}
			plan = trial
			idx--
		}
	}
	jct, c := pl.JCT(plan), pl.Cost(plan)
	feasible := (budget <= 0 || c <= budget) && (qos <= 0 || jct <= qos)
	return planner.Result{Plan: plan, JCT: jct, Cost: c, Feasible: feasible, Evaluated: res.Evaluated}, nil
}

// CirrusPlan is the static plan pinned to VM-PS storage.
func CirrusPlan(m *cost.Model, stages []planner.Stage, points []cost.Point, budget, qos float64) (planner.Result, error) {
	vm := FilterByStorage(points, storage.VMPS)
	pl, err := planner.New(m, stages, vm)
	if err != nil {
		return planner.Result{}, err
	}
	return pl.OptimalStatic(budget, qos), nil
}

func indexOf(points []cost.Point, a cost.Allocation) int {
	for i, p := range points {
		if p.Alloc == a {
			return i
		}
	}
	return -1
}

// --- Training controllers ---

// SirenTraining adjusts resources every epoch with exploration noise,
// S3-only candidates and immediate restarts.
type SirenTraining struct {
	candidates []cost.Point
	budget     float64
	qos        float64
	rng        *sim.Rand
	current    cost.Allocation
	estimated  int

	Restarts int
}

// NewSirenTraining returns Siren's training policy over the full S3
// allocation enumeration (Siren does not prune with a Pareto front).
// estimate is Siren's up-front epoch estimate (its RL model's output, which
// we take from the offline predictor). points must contain at least one S3
// allocation.
func NewSirenTraining(points []cost.Point, budget, qos float64, estimate int, seed uint64) *SirenTraining {
	cands := FilterByStorage(points, storage.S3)
	if len(cands) == 0 {
		panic("baselines: Siren needs at least one S3 allocation; pass the full enumeration")
	}
	return NewSirenTrainingUnfiltered(cands, budget, qos, estimate, seed)
}

// NewSirenTrainingUnfiltered builds the Siren policy over a caller-chosen
// candidate set (used when an experiment pins Siren to a non-S3 service).
func NewSirenTrainingUnfiltered(points []cost.Point, budget, qos float64, estimate int, seed uint64) *SirenTraining {
	if len(points) == 0 {
		panic("baselines: Siren needs a non-empty candidate set")
	}
	cands := make([]cost.Point, len(points))
	copy(cands, points)
	sort.Slice(cands, func(i, j int) bool { return cands[i].Time < cands[j].Time })
	return &SirenTraining{
		candidates: cands,
		budget:     budget, qos: qos,
		rng:       sim.NewRand(seed),
		estimated: estimate,
	}
}

// Initial picks Siren's starting allocation.
func (s *SirenTraining) Initial() cost.Allocation {
	s.current = s.pick(s.estimated, 0, 0)
	return s.current
}

// pick selects the constrained optimum among S3 candidates, then applies
// exploration noise of ±1 position.
func (s *SirenTraining) pick(remaining int, elapsed, spent float64) cost.Allocation {
	if remaining < 1 {
		remaining = 1
	}
	bestIdx := -1
	bestVal := math.Inf(1)
	for i, p := range s.candidates {
		t := float64(remaining) * p.Time
		c := float64(remaining) * p.Cost
		if s.budget > 0 {
			if spent+c > s.budget {
				continue
			}
			if t < bestVal {
				bestVal, bestIdx = t, i
			}
		} else {
			if elapsed+t > s.qos {
				continue
			}
			if c < bestVal {
				bestVal, bestIdx = c, i
			}
		}
	}
	if bestIdx < 0 {
		// Constraint hopeless: cheapest under budget, fastest under QoS.
		if s.budget > 0 {
			bestIdx = len(s.candidates) - 1
		} else {
			bestIdx = 0
		}
	}
	// RL exploration: wander one step on the frontier.
	bestIdx += s.rng.Intn(3) - 1
	if bestIdx < 0 {
		bestIdx = 0
	}
	if bestIdx >= len(s.candidates) {
		bestIdx = len(s.candidates) - 1
	}
	return s.candidates[bestIdx].Alloc
}

// Controller returns the per-epoch hook: re-pick every epoch, restart
// immediately whenever the pick changes.
func (s *SirenTraining) Controller() trainer.Controller {
	return func(epoch int, loss float64, elapsed, spent float64) trainer.Decision {
		if s.budget > 0 && spent >= s.budget {
			return trainer.Decision{Stop: true}
		}
		remaining := s.estimated - epoch
		next := s.pick(remaining, elapsed, spent)
		// Siren's decision latency: its RL inference is cheap, but it runs
		// every epoch over all S3 candidates.
		dec := trainer.Decision{PlanningSeconds: 0.05 * float64(len(s.candidates))}
		if next != s.current {
			s.current = next
			s.Restarts++
			dec.NewAlloc = &next
			dec.Delayed = false // Siren stops and restarts functions
		}
		return dec
	}
}

// ModifiedCirrus is the §IV-C training baseline: CE-scaling's online
// prediction, but storage pinned to VM-PS and immediate (not delayed)
// restarts.
func ModifiedCirrus(m *cost.Model, points []cost.Point, budget, qos, targetLoss float64, off *predictor.Offline, seed uint64) *scheduler.Scheduler {
	return ModifiedCirrusPinned(m, points, storage.VMPS, budget, qos, targetLoss, off, seed)
}

// ModifiedCirrusPinned is ModifiedCirrus over an arbitrary pinned storage
// service (the Fig. 17 same-storage comparison).
func ModifiedCirrusPinned(m *cost.Model, points []cost.Point, kind storage.Kind, budget, qos, targetLoss float64, off *predictor.Offline, seed uint64) *scheduler.Scheduler {
	return scheduler.New(scheduler.Config{
		Model:          m,
		Candidates:     cost.Pareto(FilterByStorage(points, kind)),
		Budget:         budget,
		QoS:            qos,
		TargetLoss:     targetLoss,
		DelayedRestart: false,
		Offline:        off,
		OfflineSeed:    seed,
	})
}
