package sim

import "math"

// Rand is a small, fast, deterministic PRNG (splitmix64 core) used for all
// stochastic behaviour in the simulator. It is intentionally independent of
// math/rand so that experiment outputs are stable across Go releases.
type Rand struct {
	state uint64
	// spare holds a cached second normal deviate from the Box-Muller pair.
	spare    float64
	hasSpare bool
}

// NewRand returns a stream seeded with seed.
func NewRand(seed uint64) *Rand {
	// Avoid the all-zero state producing a weak opening sequence.
	return &Rand{state: seed + 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 random bits (splitmix64).
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// NormFloat64 returns a standard normal deviate via Box-Muller.
func (r *Rand) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	mul := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * mul
	r.hasSpare = true
	return u * mul
}

// LogNormal returns exp(N(mu, sigma)). With mu=0 the median is 1, which makes
// it convenient as a multiplicative noise factor.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Exp returns an exponentially distributed value with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Jitter returns 1 + uniform(-frac, +frac), a bounded multiplicative noise
// factor.
func (r *Rand) Jitter(frac float64) float64 {
	return 1 + frac*(2*r.Float64()-1)
}
