package dataset

import (
	"sync"

	"repro/internal/sim"
)

// newGenRand seeds the generator stream exactly as callers previously did
// with sim.NewRand, so cached and fresh generation consume identical draws.
func newGenRand(seed uint64) *sim.Rand { return sim.NewRand(seed) }

// Generation cache: Successive-Halving and the experiment matrix construct
// many real-training engines with identical generator parameters — every
// compared system in a figure, and every budget/QoS multiplier, regenerates
// the same synthetic matrix from the same seed. Generating a 4000×256
// matrix costs milliseconds; memoizing it turns the repeats into pointer
// returns and lets all those trials share one read-only matrix (and, via
// Matrix.Shards, one partitioning).
//
// Cached generation is bit-identical to fresh generation: the cache key
// captures every input of the generator (kind, seed, normalized GenConfig)
// and a miss simply runs the generator on a fresh RNG seeded with the key's
// seed. Eviction is therefore safe — a re-miss regenerates the exact same
// matrix — so the cache is bounded FIFO by retained element count.

type genKey struct {
	regression bool
	seed       uint64
	cfg        GenConfig
}

// genCacheMaxFloats bounds the total float64 elements (X plus Y) retained
// by the generation cache (~64 MB); oldest entries are evicted first. It is
// a variable only so tests can exercise eviction cheaply.
var genCacheMaxFloats = 1 << 23

var genCache = struct {
	sync.Mutex
	m      map[genKey]*Matrix
	order  []genKey
	floats int
}{m: make(map[genKey]*Matrix)}

// normalize applies the generator's own defaulting so equivalent configs
// share a cache entry.
func (cfg GenConfig) normalize() GenConfig {
	if cfg.Scale == 0 {
		cfg.Scale = 1
	}
	return cfg
}

func cachedGenerate(regression bool, seed uint64, cfg GenConfig, gen func() *Matrix) *Matrix {
	key := genKey{regression: regression, seed: seed, cfg: cfg.normalize()}
	genCache.Lock()
	if m, ok := genCache.m[key]; ok {
		genCache.Unlock()
		return m
	}
	genCache.Unlock()

	// Generate outside the lock; concurrent misses on the same key produce
	// bit-identical matrices, and the first one stored wins.
	m := gen()

	genCache.Lock()
	defer genCache.Unlock()
	if prev, ok := genCache.m[key]; ok {
		return prev
	}
	genCache.m[key] = m
	genCache.order = append(genCache.order, key)
	genCache.floats += len(m.X) + len(m.Y)
	for genCache.floats > genCacheMaxFloats && len(genCache.order) > 1 {
		oldest := genCache.order[0]
		genCache.order = genCache.order[1:]
		if old, ok := genCache.m[oldest]; ok {
			genCache.floats -= len(old.X) + len(old.Y)
			delete(genCache.m, oldest)
		}
	}
	return m
}

// CachedBinary returns GenerateBinary(sim.NewRand(seed), cfg), memoized
// process-wide. The returned matrix is shared and must be treated as
// read-only.
func CachedBinary(seed uint64, cfg GenConfig) *Matrix {
	return cachedGenerate(false, seed, cfg, func() *Matrix {
		return GenerateBinary(newGenRand(seed), cfg)
	})
}

// CachedRegression returns GenerateRegression(sim.NewRand(seed), cfg),
// memoized process-wide. The returned matrix is shared and must be treated
// as read-only.
func CachedRegression(seed uint64, cfg GenConfig) *Matrix {
	return cachedGenerate(true, seed, cfg, func() *Matrix {
		return GenerateRegression(newGenRand(seed), cfg)
	})
}
