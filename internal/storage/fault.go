package storage

import (
	"errors"

	"repro/internal/fault"
)

// ErrInjected is the sentinel a Faulty store returns for an injected
// failure. Callers distinguish it from real corruption with errors.Is and
// answer with their retry policy, not a panic.
var ErrInjected = errors.New("storage: injected fault")

// Faulty wraps a Store with deterministic error injection for brownout
// windows: every rate-th operation fails (a fault.Gate accumulator, no
// randomness), so a schedule + seed reproduces the exact same sequence of
// failed Puts and Gets on every run and shard layout. The wrapped store is
// untouched by failed operations — an injected Put writes nothing.
type Faulty struct {
	st    *Store
	gate  fault.Gate
	rate  float64
	fails uint64
}

// NewFaulty wraps st with an error gate at rate 0 (no injection).
func NewFaulty(st *Store) *Faulty { return &Faulty{st: st} }

// SetErrorRate sets the injected failure rate in [0, 1]; out-of-range
// values are clamped. Changing the rate keeps the gate's accumulator, so a
// brownout window's failures stay proportional to the ops inside it.
func (f *Faulty) SetErrorRate(rate float64) {
	if rate < 0 {
		rate = 0
	} else if rate > 1 {
		rate = 1
	}
	f.rate = rate
}

// ErrorRate returns the current injected failure rate.
func (f *Faulty) ErrorRate() float64 { return f.rate }

// Store returns the wrapped store (for fault-free access paths).
func (f *Faulty) Store() *Store { return f.st }

// FailCount returns how many operations have been failed by injection.
func (f *Faulty) FailCount() uint64 { return f.fails }

// TryPut stores vec under key, or fails deterministically per the error
// rate without writing anything.
func (f *Faulty) TryPut(key string, vec []float64) error {
	if f.gate.Fail(f.rate) {
		f.fails++
		return ErrInjected
	}
	f.st.Put(key, vec)
	return nil
}

// TryGet reads key, or fails deterministically per the error rate. ok
// reports key presence only when err is nil.
func (f *Faulty) TryGet(key string) (vec []float64, ok bool, err error) {
	if f.gate.Fail(f.rate) {
		f.fails++
		return nil, false, ErrInjected
	}
	vec, ok = f.st.Get(key)
	return vec, ok, nil
}

// Degraded wraps a Service, multiplying its latency-bearing times by a
// caller-supplied factor (storage brownouts: elevated latency while the
// window is active). The factor is sampled per call so one wrapper tracks a
// schedule-driven value; factors below 1 are treated as 1 — a brownout
// never speeds storage up. Cost methods delegate unchanged: a browned-out
// service is slower, not cheaper, which is exactly what makes the paper's
// cost/JCT trade-off shift under faults.
type Degraded struct {
	svc    *Service
	factor func() float64
}

// NewDegraded wraps svc; factor is sampled on every timing query. A nil
// factor means no degradation.
func NewDegraded(svc *Service, factor func() float64) *Degraded {
	return &Degraded{svc: svc, factor: factor}
}

func (d *Degraded) scale() float64 {
	if d.factor == nil {
		return 1
	}
	if f := d.factor(); f > 1 {
		return f
	}
	return 1
}

// Kind returns the wrapped service's kind.
func (d *Degraded) Kind() Kind { return d.svc.Kind() }

// TransferTime is the wrapped transfer time under the current degradation.
func (d *Degraded) TransferTime(n int, sizeMB float64) float64 {
	return d.svc.TransferTime(n, sizeMB) * d.scale()
}

// SyncTime is the wrapped synchronization time under the current
// degradation.
func (d *Degraded) SyncTime(n int, modelMB float64) float64 {
	return d.svc.SyncTime(n, modelMB) * d.scale()
}

// SyncRequestCost delegates unchanged.
func (d *Degraded) SyncRequestCost(n int, modelMB float64) float64 {
	return d.svc.SyncRequestCost(n, modelMB)
}

// RuntimeCost delegates unchanged.
func (d *Degraded) RuntimeCost(seconds float64) float64 { return d.svc.RuntimeCost(seconds) }

// ChargesByRequest delegates unchanged.
func (d *Degraded) ChargesByRequest() bool { return d.svc.ChargesByRequest() }

// ProvisionDelay delegates unchanged.
func (d *Degraded) ProvisionDelay() float64 { return d.svc.ProvisionDelay() }

// Supports delegates unchanged.
func (d *Degraded) Supports(modelMB float64) bool { return d.svc.Supports(modelMB) }
