package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig3", "fig4", "fig7", "fig9", "fig10", "fig11", "fig12", "fig13",
		"fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
		"fig21a", "fig21b", "fig21c", "tab1", "tab2", "tab4", "fig2", "fig19x",
		"abl-gap", "abl-workflow", "abl-asp", "abl-hyperband", "abl-pocket", "abl-faults", "abl-bohb", "abl-cluster",
		"macro-day", "macro-fleet", "macro-trace", "macro-chaos", "fault-restart",
	}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d experiments, want %d: %v", len(IDs()), len(want), IDs())
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("fig99", 1); err == nil {
		t.Error("unknown id should error")
	}
}

func TestTableString(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Headers: []string{"a", "bb"},
		Rows: [][]string{{"1", "2"}}, Notes: "n"}
	s := tab.String()
	for _, want := range []string{"== x: demo ==", "a", "bb", "note: n"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

// fastExperiments are cheap enough to execute fully in unit tests; the
// heavyweight matrices are exercised by the benchmarks.
var fastExperiments = []string{"tab1", "tab4", "fig7", "fig19", "fig20", "fig21a"}

func TestFastExperimentsProduceRows(t *testing.T) {
	for _, id := range fastExperiments {
		tab, err := Run(id, 1)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s produced no rows", id)
		}
		for ri, row := range tab.Rows {
			if len(row) != len(tab.Headers) {
				t.Errorf("%s row %d has %d cells, want %d", id, ri, len(row), len(tab.Headers))
			}
		}
	}
}

func TestTab1MatchesPaperTableI(t *testing.T) {
	tab, err := Run("tab1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("tab1 has %d rows, want 4", len(tab.Rows))
	}
	if tab.Rows[0][0] != "S3" || tab.Rows[0][2] != "High" {
		t.Errorf("S3 row wrong: %v", tab.Rows[0])
	}
	if tab.Rows[3][0] != "VM-PS" || tab.Rows[3][3] != "Execution time" {
		t.Errorf("VM-PS row wrong: %v", tab.Rows[3])
	}
}

func TestFig19ErrorsSingleDigit(t *testing.T) {
	tab, err := Run("fig19", 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		for _, col := range []int{3, 6} { // JCT err, cost err
			v := strings.TrimSuffix(row[col], "%")
			e, err := strconv.ParseFloat(v, 64)
			if err != nil {
				t.Fatalf("unparseable error cell %q", row[col])
			}
			if e > 25 {
				t.Errorf("validation error %s%% too large for %s (model broken?)", v, row[0])
			}
		}
	}
}

func TestFig7MarksParetoMembers(t *testing.T) {
	tab, err := Run("fig7", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 50 {
		t.Fatalf("fig7 sampled %d allocations, want 50", len(tab.Rows))
	}
	stars := 0
	for _, row := range tab.Rows {
		if row[3] == "*" {
			stars++
		}
	}
	if stars == 0 {
		t.Error("no sampled allocation lies on the Pareto boundary")
	}
	if stars == len(tab.Rows) {
		t.Error("every sampled allocation on the boundary; pruning trivial")
	}
}

func TestDeterministicTables(t *testing.T) {
	for _, id := range []string{"fig19", "tab2"} {
		a, err := Run(id, 7)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(id, 7)
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Errorf("%s is not deterministic", id)
		}
	}
}

func TestTab2DynamoNA(t *testing.T) {
	tab, err := Run("tab2", 2)
	if err != nil {
		t.Fatal(err)
	}
	sawNA, sawValue := false, false
	for _, row := range tab.Rows {
		if row[2] == "DynamoDB" {
			switch {
			case strings.Contains(row[1], "MobileNet") && row[3] == "N/A":
				sawNA = true
			case strings.Contains(row[1], "LR") && row[3] != "N/A":
				sawValue = true
			}
		}
	}
	if !sawNA {
		t.Error("MobileNet on DynamoDB should be N/A")
	}
	if !sawValue {
		t.Error("LR on DynamoDB should have values")
	}
}
