package sha

import (
	"errors"
	"math"
	"sort"

	"repro/internal/sim"
	"repro/internal/workload"
)

// TPESampler is a BOHB-style model-based configuration sampler (Falkner et
// al.; the paper's [20]): instead of sampling hyperparameters uniformly, it
// splits the observed configurations into a good and a bad set by loss
// quantile, fits kernel density estimates over log10(lr) for both, and
// proposes the candidate maximizing the good/bad density ratio. The paper
// notes its partitioning applies to BOHB unchanged (§II-A); RunBOHB
// demonstrates that combination.
type TPESampler struct {
	// Gamma is the good-set quantile (default 0.25).
	Gamma float64
	// MinObs is how many observations are required before the model is
	// trusted (uniform sampling until then; default 8).
	MinObs int
	// Candidates is how many proposals the ratio ranks (default 24).
	Candidates int

	obs []tpeObs
	rng *sim.Rand
}

type tpeObs struct {
	logLR    float64
	momentum float64
	loss     float64
}

// NewTPESampler returns a sampler with defaults, seeded deterministically.
func NewTPESampler(seed uint64) *TPESampler {
	return &TPESampler{Gamma: 0.25, MinObs: 8, Candidates: 24, rng: sim.NewRand(seed)}
}

// Observe records a finished trial's configuration and loss.
func (s *TPESampler) Observe(hp workload.Hyperparams, loss float64) {
	if hp.LR <= 0 || math.IsNaN(loss) || math.IsInf(loss, 0) {
		return
	}
	s.obs = append(s.obs, tpeObs{logLR: math.Log10(hp.LR), momentum: hp.Momentum, loss: loss})
}

// Observations reports how many results the model has seen.
func (s *TPESampler) Observations() int { return len(s.obs) }

// Suggest proposes the next configuration for workload w.
func (s *TPESampler) Suggest(w *workload.Model) workload.Hyperparams {
	if len(s.obs) < s.MinObs {
		return SampleHyperparams(w, s.rng)
	}
	sorted := make([]tpeObs, len(s.obs))
	copy(sorted, s.obs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].loss < sorted[j].loss })
	nGood := int(math.Ceil(s.Gamma * float64(len(sorted))))
	if nGood < 2 {
		nGood = 2
	}
	good, bad := sorted[:nGood], sorted[nGood:]
	if len(bad) < 2 {
		return SampleHyperparams(w, s.rng)
	}

	goodKDE := newKDE(extractLogLR(good))
	badKDE := newKDE(extractLogLR(bad))

	// Sample candidates from the good KDE, keep the best density ratio.
	bestRatio := math.Inf(-1)
	var bestLR float64
	for c := 0; c < s.Candidates; c++ {
		x := goodKDE.sample(s.rng)
		ratio := goodKDE.density(x) / math.Max(badKDE.density(x), 1e-12)
		if ratio > bestRatio {
			bestRatio = ratio
			bestLR = x
		}
	}
	// Momentum: re-use a good observation's momentum with jitter.
	m := good[s.rng.Intn(len(good))].momentum
	m += 0.05 * s.rng.NormFloat64()
	if m < 0 {
		m = 0
	}
	if m > 0.99 {
		m = 0.99
	}
	return workload.Hyperparams{LR: math.Pow(10, bestLR), Momentum: m}
}

func extractLogLR(obs []tpeObs) []float64 {
	out := make([]float64, len(obs))
	for i, o := range obs {
		out[i] = o.logLR
	}
	return out
}

// kde is a 1-D Gaussian kernel density estimate with Silverman bandwidth.
type kde struct {
	points    []float64
	bandwidth float64
}

func newKDE(points []float64) *kde {
	n := float64(len(points))
	var mean, sq float64
	for _, p := range points {
		mean += p
	}
	mean /= n
	for _, p := range points {
		sq += (p - mean) * (p - mean)
	}
	std := math.Sqrt(sq / n)
	bw := 1.06 * std * math.Pow(n, -0.2)
	if bw < 0.05 {
		bw = 0.05 // floor so degenerate sets still smooth
	}
	return &kde{points: points, bandwidth: bw}
}

func (k *kde) density(x float64) float64 {
	var sum float64
	inv := 1 / (k.bandwidth * math.Sqrt(2*math.Pi))
	for _, p := range k.points {
		z := (x - p) / k.bandwidth
		sum += inv * math.Exp(-z*z/2)
	}
	return sum / float64(len(k.points))
}

func (k *kde) sample(rng *sim.Rand) float64 {
	p := k.points[rng.Intn(len(k.points))]
	return p + k.bandwidth*rng.NormFloat64()
}

// RunBOHB is Hyperband with TPE sampling: trial configurations come from a
// sampler shared across brackets, so later brackets exploit what earlier
// ones learned. The per-bracket resource partitioning still comes from
// cfg.PlanBracket (CE-scaling's planner or a static plan).
func RunBOHB(cfg HyperbandConfig) (*HyperbandResult, *TPESampler, error) {
	sampler := NewTPESampler(cfg.Seed ^ 0xb0b)
	if cfg.Workload == nil || cfg.Runner == nil || cfg.PlanBracket == nil {
		return nil, nil, errBOHBConfig
	}
	if cfg.Eta < 2 {
		cfg.Eta = 3
	}
	if cfg.MaxEpochs < cfg.Eta {
		return nil, nil, errBOHBConfig
	}
	out := &HyperbandResult{}
	for bi, br := range Brackets(cfg.MaxEpochs, cfg.Eta) {
		if br.Stages[0].Trials < 2 {
			br.Stages = br.Stages[:1]
		}
		plan, err := cfg.PlanBracket(br.Stages)
		if err != nil {
			return nil, nil, err
		}
		res, err := Run(Config{
			Workload: cfg.Workload,
			Trials:   br.Stages[0].Trials,
			Eta:      cfg.Eta,
			Stages:   br.Stages,
			Plan:     plan,
			Runner:   cfg.Runner,
			Seed:     cfg.Seed + uint64(bi)*1013,
			Sample:   func(rng *sim.Rand) workload.Hyperparams { return sampler.Suggest(cfg.Workload) },
			OnResult: func(tr *Trial) { sampler.Observe(tr.HP, tr.Loss) },
		})
		if err != nil {
			return nil, nil, err
		}
		out.Brackets = append(out.Brackets, BracketReport{Bracket: br, Result: res, BestLoss: res.BestTrial.Loss})
		out.JCT += res.JCT
		out.TotalCost += res.TotalCost
		if out.Best == nil || res.BestTrial.Loss < out.Best.Loss {
			out.Best = res.BestTrial
		}
	}
	return out, sampler, nil
}

var errBOHBConfig = errors.New("bohb: invalid configuration (need workload, runner, planner and MaxEpochs >= eta)")
