package traffic

import (
	"bytes"
	"strings"
	"testing"
)

func parseString(t *testing.T, s string) Trace {
	t.Helper()
	tr, err := ParseTrace(strings.NewReader(s))
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	return tr
}

func wantRows(t *testing.T, tr Trace, rows [][]uint32) {
	t.Helper()
	if tr.Rows() != len(rows) {
		t.Fatalf("parsed %d rows, want %d", tr.Rows(), len(rows))
	}
	for i, want := range rows {
		got := tr.Row(i)
		if len(got) != len(want) {
			t.Fatalf("row %d has %d counts, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Errorf("row %d col %d = %d, want %d", i, j, got[j], want[j])
			}
		}
	}
}

func TestParseTraceBasic(t *testing.T) {
	tr := parseString(t, "1,2,3\n0,0,7\n")
	wantRows(t, tr, [][]uint32{{1, 2, 3}, {0, 0, 7}})
	if tr.Total() != 13 || tr.RowTotal(1) != 7 || tr.Minutes(0) != 3 {
		t.Errorf("totals: Total=%d RowTotal(1)=%d Minutes(0)=%d", tr.Total(), tr.RowTotal(1), tr.Minutes(0))
	}
}

func TestParseTraceSeparatorsAndJunk(t *testing.T) {
	// Comments, blank lines, CRLF, mixed separators, no trailing newline,
	// ragged rows.
	in := "# azure-style per-minute counts\n\n1 2\t3\r\n\r\n4,5\n6"
	tr := parseString(t, in)
	wantRows(t, tr, [][]uint32{{1, 2, 3}, {4, 5}, {6}})
}

func TestParseTraceMaxUint32(t *testing.T) {
	tr := parseString(t, "4294967295\n")
	wantRows(t, tr, [][]uint32{{4294967295}})
}

func TestParseTraceErrors(t *testing.T) {
	for _, in := range []string{
		"1,2,x\n",         // junk byte
		"4294967296\n",    // uint32 overflow
		"1 2\n3 # nope\n", // comment not at line start
	} {
		if _, err := ParseTrace(strings.NewReader(in)); err == nil {
			t.Errorf("ParseTrace(%q) succeeded, want error", in)
		}
	}
}

func TestParseTraceEmpty(t *testing.T) {
	tr := parseString(t, "# only a comment\n\n")
	if tr.Rows() != 0 {
		t.Fatalf("empty input parsed to %d rows", tr.Rows())
	}
}

// TestParserReuse: a reused parser reproduces the same trace and, in
// steady state, allocates nothing — the zero-alloc contract the
// benchmark measures.
//
// hotpath-gate: traffic.Parser.Parse
func TestParserReuse(t *testing.T) {
	in := []byte("8,0,3\n1,1,1,1\n")
	p := NewParser()
	first, err := p.Parse(bytes.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	total, rows := first.Total(), first.Rows()
	r := bytes.NewReader(in)
	if n := testing.AllocsPerRun(100, func() {
		r.Reset(in)
		tr, err := p.Parse(r)
		if err != nil || tr.Total() != total || tr.Rows() != rows {
			t.Fatalf("reused parse diverged: %v %d/%d", err, tr.Total(), tr.Rows())
		}
	}); n != 0 {
		t.Errorf("reused Parse allocates %.1f times per call, want 0", n)
	}
}

// TestMakeTraceCopies: MakeTrace must not alias the caller's rows.
func TestMakeTraceCopies(t *testing.T) {
	row := []uint32{1, 2}
	tr := MakeTrace([][]uint32{row})
	row[0] = 99
	if tr.Row(0)[0] != 1 {
		t.Error("MakeTrace aliased the caller's row")
	}
}

// synthTraceBytes builds a deterministic ~rows×minutes CSV trace without
// any randomness (benchmarks must not depend on rand ordering).
func synthTraceBytes(rows, minutes int) []byte {
	var b bytes.Buffer
	for r := 0; r < rows; r++ {
		for m := 0; m < minutes; m++ {
			if m > 0 {
				b.WriteByte(',')
			}
			// Small varied counts with plenty of zeros, like real traces.
			v := (r*7 + m*13) % 23
			if v > 9 {
				v = 0
			}
			b.WriteByte(byte('0' + v))
		}
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// BenchmarkParseTrace measures the zero-alloc parser on a 128-row,
// 1440-minute (one simulated day) trace.
func BenchmarkParseTrace(b *testing.B) {
	in := synthTraceBytes(128, 1440)
	p := NewParser()
	r := bytes.NewReader(in)
	b.SetBytes(int64(len(in)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(in)
		if _, err := p.Parse(r); err != nil {
			b.Fatal(err)
		}
	}
}
