package scheduler

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/platform"
	"repro/internal/predictor"
	"repro/internal/trainer"
	"repro/internal/workload"
)

// newEdgeSession builds a real scheduling session over a small Pareto set, the
// way core wires one (which scheduler cannot import without a cycle).
func newEdgeSession(t *testing.T, w *workload.Model, delta float64, seed uint64) *Scheduler {
	t.Helper()
	m := cost.NewModel(w)
	full := m.Enumerate(cost.Grid{
		Ns:       []int{5, 10, 20, 40},
		MemsMB:   []int{1024, 1769, 3072},
		Storages: platform.StorageKinds(),
	})
	if len(full) == 0 {
		t.Fatal("no feasible allocations")
	}
	return New(Config{
		Model:          m,
		Candidates:     cost.Pareto(full),
		QoS:            6 * 3600,
		TargetLoss:     w.TargetLoss,
		Delta:          delta,
		DelayedRestart: true,
		Offline:        predictor.NewOffline(w),
		OfflineSeed:    seed,
	})
}

// runRecorded executes one scheduled job capped at maxEpochs, recording the
// epoch of every re-allocation decision the scheduler issued.
func runRecorded(t *testing.T, delta float64, seed uint64, maxEpochs int) (*trainer.Runner, *trainer.Result, []int) {
	t.Helper()
	w := workload.MobileNet()
	sched := newEdgeSession(t, w, delta, seed)
	alloc, _ := sched.Initial()
	if alloc.N == 0 {
		t.Fatal("no initial allocation")
	}
	inner := sched.Controller()
	var triggers []int
	record := func(epoch int, loss float64, elapsed, spent float64) trainer.Decision {
		dec := inner(epoch, loss, elapsed, spent)
		if dec.NewAlloc != nil {
			triggers = append(triggers, epoch)
		}
		return dec
	}
	r := trainer.NewRunner(seed)
	res, err := r.Run(trainer.Config{
		Workload:   w,
		Engine:     w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, seed),
		Alloc:      alloc,
		TargetLoss: w.TargetLoss,
		MaxEpochs:  maxEpochs,
		Controller: record,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r, res, triggers
}

// TestDelayedRestartOnFinalEpoch re-runs a recorded session capped exactly
// at the epoch of its first δ trigger: the delayed-restart group is invoked
// on the job's final epoch and never takes over, so Finish must release both
// the active and the pending group (nothing stays admitted).
func TestDelayedRestartOnFinalEpoch(t *testing.T) {
	const (
		delta = 0.001
		seed  = 5
	)
	_, _, triggers := runRecorded(t, delta, seed, 80)
	if len(triggers) == 0 {
		t.Fatal("no δ trigger fired in 80 epochs; loosen the test's delta")
	}
	first := triggers[0]

	r, res, again := runRecorded(t, delta, seed, first)
	if len(again) == 0 || again[0] != first {
		t.Fatalf("replay diverged: triggers %v, want first at %d", again, first)
	}
	if res.Epochs != first {
		t.Fatalf("job ran %d epochs, want %d", res.Epochs, first)
	}
	// The pending group never took over: no trainer-side restart happened,
	// and Finish released every admitted function.
	if res.Restarts != 0 {
		t.Errorf("pending switch on the final epoch counted %d restarts", res.Restarts)
	}
	if inFlight := r.Compute().InFlight(); inFlight != 0 {
		t.Errorf("%d functions still admitted after Finish", inFlight)
	}
}

// TestBackToBackDeltaTriggers picks a seed whose early drift keeps the
// scheduler re-allocating on consecutive epochs: a new trigger lands
// immediately after the previous delayed restart takes over. The group
// lifecycle must stay consistent — every takeover counted, no stacked
// pendings, nothing left admitted.
func TestBackToBackDeltaTriggers(t *testing.T) {
	const (
		delta = 0.001
		seed  = 2
	)
	r, res, triggers := runRecorded(t, delta, seed, 80)
	backToBack := false
	for i := 1; i < len(triggers); i++ {
		if triggers[i] == triggers[i-1]+1 {
			backToBack = true
			break
		}
	}
	if !backToBack {
		t.Fatalf("no back-to-back triggers in %v; loosen the test's delta", triggers)
	}
	// Every delayed switch issued before the final epoch must have taken
	// over exactly once (pendings take over at the end of the next epoch,
	// so they can never stack).
	takeovers := 0
	for _, e := range triggers {
		if e < res.Epochs {
			takeovers++
		}
	}
	if res.Restarts != takeovers {
		t.Errorf("trainer recorded %d restarts, want %d (one per trigger before the last epoch)", res.Restarts, takeovers)
	}
	if inFlight := r.Compute().InFlight(); inFlight != 0 {
		t.Errorf("%d functions still admitted after Finish", inFlight)
	}
	// A delayed trigger at epoch e takes over at the end of epoch e+1, so the
	// allocation changes at epoch e+2 (Trace[e+1] vs Trace[e]). Even when the
	// next trigger fires back-to-back at e+1, the takeover order keeps each
	// switch visible for exactly one epoch.
	for _, e := range triggers {
		if e+1 < len(res.Trace) {
			if res.Trace[e+1].Alloc == res.Trace[e].Alloc {
				t.Errorf("trigger at epoch %d did not change the allocation of epoch %d", e, e+2)
			}
		}
	}
}
