package objstore

import (
	"net/http/httptest"
	"testing"
)

func BenchmarkPutGet(b *testing.B) {
	srv := NewServer()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL)
	payload := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Put("bench", payload); err != nil {
			b.Fatal(err)
		}
		if _, ok, err := c.Get("bench"); err != nil || !ok {
			b.Fatal(err)
		}
	}
}
