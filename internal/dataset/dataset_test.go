package dataset

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestProfilesMatchPaper(t *testing.T) {
	h := Higgs()
	if h.Samples != 11_000_000 || h.Features != 28 || h.Task != BinaryClassification {
		t.Errorf("Higgs profile wrong: %+v", h)
	}
	c := Cifar10()
	if c.Samples != 60_000 || c.Classes != 10 {
		t.Errorf("Cifar10 profile wrong: %+v", c)
	}
	i := IMDb()
	if i.Samples != 25_000 || i.Features != 292 {
		t.Errorf("IMDb profile wrong: %+v", i)
	}
	y := YFCC()
	if y.Features != 4096 || y.Task != Regression {
		t.Errorf("YFCC profile wrong: %+v", y)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"Higgs", "higgs", "YFCC", "Cifar10", "cifar", "IMDb", "imdb"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("mnist"); err == nil {
		t.Error("ByName of unknown dataset should fail")
	}
}

func TestPartitionSizeMB(t *testing.T) {
	h := Higgs()
	if got := h.PartitionSizeMB(10); math.Abs(got-h.SizeMB/10) > 1e-9 {
		t.Errorf("PartitionSizeMB(10) = %g", got)
	}
	if got := h.PartitionSizeMB(0); got != h.SizeMB {
		t.Errorf("PartitionSizeMB(0) = %g, want full size", got)
	}
}

func TestGenerateBinaryShapeAndLabels(t *testing.T) {
	m := GenerateBinary(sim.NewRand(1), GenConfig{Samples: 100, Features: 8})
	if m.Rows != 100 || m.Cols != 8 || len(m.X) != 800 || len(m.Y) != 100 {
		t.Fatalf("bad shape: %d x %d, len X %d, len Y %d", m.Rows, m.Cols, len(m.X), len(m.Y))
	}
	for i, y := range m.Y {
		if y != 1 && y != -1 {
			t.Fatalf("label %d = %g, want ±1", i, y)
		}
	}
}

func TestGenerateBinaryDeterministic(t *testing.T) {
	a := GenerateBinary(sim.NewRand(7), GenConfig{Samples: 50, Features: 4, NoiseFlip: 0.1})
	b := GenerateBinary(sim.NewRand(7), GenConfig{Samples: 50, Features: 4, NoiseFlip: 0.1})
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatal("generation is not deterministic")
		}
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			t.Fatal("labels are not deterministic")
		}
	}
}

func TestGenerateBinarySeparable(t *testing.T) {
	// With no label noise the data must be perfectly linearly separable by
	// the (hidden) generating hyperplane; verify both classes appear with
	// reasonable balance.
	m := GenerateBinary(sim.NewRand(3), GenConfig{Samples: 2000, Features: 10})
	pos := 0
	for _, y := range m.Y {
		if y > 0 {
			pos++
		}
	}
	frac := float64(pos) / float64(m.Rows)
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("class balance %g, want ~0.5", frac)
	}
}

func TestNoiseFlipRate(t *testing.T) {
	clean := GenerateBinary(sim.NewRand(5), GenConfig{Samples: 20000, Features: 6})
	noisy := GenerateBinary(sim.NewRand(5), GenConfig{Samples: 20000, Features: 6, NoiseFlip: 0.25})
	flipped := 0
	for i := range clean.Y {
		if clean.Y[i] != noisy.Y[i] {
			flipped++
		}
	}
	rate := float64(flipped) / float64(len(clean.Y))
	if rate < 0.22 || rate > 0.28 {
		t.Errorf("flip rate = %g, want ~0.25", rate)
	}
}

func TestGenerateRegressionNoise(t *testing.T) {
	m := GenerateRegression(sim.NewRand(9), GenConfig{Samples: 5000, Features: 16, NoiseStd: 2})
	if m.Rows != 5000 || m.Cols != 16 {
		t.Fatalf("bad shape %dx%d", m.Rows, m.Cols)
	}
	// Labels should have variance ≈ sum(w_i^2) + noise^2 > noise^2.
	var mean, sq float64
	for _, y := range m.Y {
		mean += y
	}
	mean /= float64(len(m.Y))
	for _, y := range m.Y {
		sq += (y - mean) * (y - mean)
	}
	variance := sq / float64(len(m.Y))
	if variance < 4 {
		t.Errorf("label variance %g too small; signal missing", variance)
	}
}

func TestRowView(t *testing.T) {
	m := GenerateBinary(sim.NewRand(2), GenConfig{Samples: 10, Features: 3})
	r := m.Row(4)
	if len(r) != 3 {
		t.Fatalf("Row length %d", len(r))
	}
	r[0] = 42
	if m.X[12] != 42 {
		t.Error("Row should be a view into X")
	}
}

func TestPartitionCoversAllRowsOnce(t *testing.T) {
	if err := quick.Check(func(rowsRaw, nRaw uint8) bool {
		rows := int(rowsRaw%200) + 1
		n := int(nRaw%16) + 1
		m := &Matrix{Rows: rows, Cols: 2, X: make([]float64, rows*2), Y: make([]float64, rows)}
		for i := range m.Y {
			m.Y[i] = float64(i)
		}
		parts := m.Partition(n)
		total := 0
		next := 0.0
		for _, p := range parts {
			total += p.Rows
			if p.Rows == 0 {
				return false
			}
			for _, y := range p.Y {
				if y != next {
					return false
				}
				next++
			}
		}
		return total == rows
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPartitionBalance(t *testing.T) {
	m := &Matrix{Rows: 103, Cols: 1, X: make([]float64, 103), Y: make([]float64, 103)}
	parts := m.Partition(10)
	for _, p := range parts {
		if p.Rows < 10 || p.Rows > 11 {
			t.Errorf("shard rows = %d, want 10 or 11", p.Rows)
		}
	}
}

func TestTrainingSampleCapsScale(t *testing.T) {
	m := Higgs().TrainingSample(sim.NewRand(1), 5000)
	if m.Rows != 5000 {
		t.Errorf("rows = %d, want 5000", m.Rows)
	}
	if m.Cols != 28 {
		t.Errorf("cols = %d, want 28 (below cap)", m.Cols)
	}
	y := YFCC().TrainingSample(sim.NewRand(1), 1000)
	if y.Cols != 256 {
		t.Errorf("YFCC cols = %d, want capped 256", y.Cols)
	}
}

func TestTaskString(t *testing.T) {
	if BinaryClassification.String() != "binary" || Regression.String() != "regression" || MultiClass.String() != "multiclass" {
		t.Error("Task String values wrong")
	}
}
