package storage

import "testing"

func TestNamespacedViewsAreDisjoint(t *testing.T) {
	st := NewStore()
	a, b := st.Namespace("tenant-a"), st.Namespace("tenant-b")
	a.Put("ckpt/0", []float64{1, 2})
	b.Put("ckpt/0", []float64{3})

	got, ok := a.Get("ckpt/0")
	if !ok || len(got) != 2 || got[0] != 1 {
		t.Fatalf("a.Get = %v, %v; want [1 2]", got, ok)
	}
	if got, ok := b.Get("ckpt/0"); !ok || len(got) != 1 || got[0] != 3 {
		t.Fatalf("b.Get = %v, %v; want [3]", got, ok)
	}
	if st.Len() != 2 {
		t.Fatalf("Len = %d, want 2 distinct namespaced keys", st.Len())
	}
	if _, ok := st.Get("tenant-a/ckpt/0"); !ok {
		t.Fatal("namespaced key not visible under its full name")
	}

	a.Delete("ckpt/0")
	if _, ok := a.Get("ckpt/0"); ok {
		t.Fatal("a's key survived Delete")
	}
	if _, ok := b.Get("ckpt/0"); !ok {
		t.Fatal("Delete in namespace a removed b's key")
	}
	if p := a.Prefix(); p != "tenant-a/" {
		t.Fatalf("Prefix = %q", p)
	}
}
