#!/bin/sh
# Full gate: formatting (with simplification), vet, build, the determinism
# lint suite, shuffled tests, the race detector on the whole module, the
# byte-identical-output gates, and a benchmark smoke run. Same steps as
# `make check`.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt -s"
out="$(gofmt -s -l .)"
if [ -n "$out" ]; then
	echo "gofmt -s needed on:"
	echo "$out"
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== cescalint (determinism + hotpath allocation lint, fails fast before tests)"
go run ./cmd/cescalint ./...

echo "== go test (shuffled, catches test-order dependence)"
go test -shuffle=on ./...

echo "== go test -race (whole module)"
go test -race ./...

echo "== determinism gate (parallel == serial, kernel == reference heap)"
go test -run 'TestParallelOutputsMatchSerial|TestRunAllPreservesRequestOrder' .
go test -run 'TestKernelMatchesReferenceHeap|TestRunUntilNeverMovesClockBackwards' ./internal/sim/

echo "== shard determinism gate (byte-identical at every shard count and worker count)"
go test -run 'TestCrossShardWorkloadMatrix|TestLookaheadWindowsMatchSingleWindow|TestShardScheduleAndMerge' ./internal/sim/
go test -run 'TestMacroDayShardMatrix|TestMacroFleetShardMatrix|TestMacroTraceShardMatrix|TestMacroTraceKindsShardStable|TestMacroChaosShardMatrix' ./internal/experiments/
go build -o /tmp/cebench.check ./cmd/cebench
/tmp/cebench.check -shards 1 -sim-workers 1 macro-day 2>/dev/null > /tmp/cebench.shards1.txt
/tmp/cebench.check -shards 8 -sim-workers 8 macro-day 2>/dev/null > /tmp/cebench.shards8.txt
cmp /tmp/cebench.shards1.txt /tmp/cebench.shards8.txt || {
	echo "cebench macro-day stdout differs between shards=1 and shards=8/workers=8"; exit 1;
}

echo "== macro-fleet determinism matrix (1000 controllers, shards x workers x -parallel)"
for cfg in "1 1" "1 8" "8 1" "8 8"; do
	set -- $cfg
	/tmp/cebench.check -fleet-tenants 1000 -shards "$1" -sim-workers "$2" \
		macro-fleet 2>/dev/null > "/tmp/cebench.fleet.s$1w$2.txt"
done
for f in /tmp/cebench.fleet.s1w8.txt /tmp/cebench.fleet.s8w1.txt /tmp/cebench.fleet.s8w8.txt; do
	cmp /tmp/cebench.fleet.s1w1.txt "$f" || {
		echo "cebench macro-fleet stdout differs across the shard matrix ($f)"; exit 1;
	}
done
/tmp/cebench.check -fleet-tenants 1000 -parallel 8 macro-fleet 2>/dev/null > /tmp/cebench.fleet.p8.txt
/tmp/cebench.check -fleet-tenants 1000 -parallel 1 macro-fleet 2>/dev/null > /tmp/cebench.fleet.p1.txt
cmp /tmp/cebench.fleet.p1.txt /tmp/cebench.fleet.p8.txt || {
	echo "cebench macro-fleet stdout differs between -parallel 1 and -parallel 8"; exit 1;
}

echo "== macro-trace determinism matrix (open-loop traffic, shards x workers x -parallel)"
for cfg in "1 1" "1 8" "2 8" "8 1" "8 8"; do
	set -- $cfg
	/tmp/cebench.check -traffic-tenants 48 -traffic-rate 1 -traffic-horizon 900 \
		-shards "$1" -sim-workers "$2" macro-trace 2>/dev/null > "/tmp/cebench.traffic.s$1w$2.txt"
done
for f in /tmp/cebench.traffic.s1w8.txt /tmp/cebench.traffic.s2w8.txt /tmp/cebench.traffic.s8w1.txt /tmp/cebench.traffic.s8w8.txt; do
	cmp /tmp/cebench.traffic.s1w1.txt "$f" || {
		echo "cebench macro-trace stdout differs across the shard matrix ($f)"; exit 1;
	}
done
/tmp/cebench.check -traffic-tenants 48 -traffic-rate 1 -traffic-horizon 900 -parallel 8 \
	macro-trace 2>/dev/null > /tmp/cebench.traffic.p8.txt
/tmp/cebench.check -traffic-tenants 48 -traffic-rate 1 -traffic-horizon 900 -parallel 1 \
	macro-trace 2>/dev/null > /tmp/cebench.traffic.p1.txt
cmp /tmp/cebench.traffic.p1.txt /tmp/cebench.traffic.p8.txt || {
	echo "cebench macro-trace stdout differs between -parallel 1 and -parallel 8"; exit 1;
}
printf '12,3,0,7,1,9\n0,8,2,4,6,0\n5,5,5,5,5,5\n' > /tmp/cebench.traffic.trace
/tmp/cebench.check -traffic-kind trace -trace-file /tmp/cebench.traffic.trace -traffic-tenants 6 \
	-shards 1 -sim-workers 1 macro-trace 2>/dev/null > /tmp/cebench.replay.s1w1.txt
/tmp/cebench.check -traffic-kind trace -trace-file /tmp/cebench.traffic.trace -traffic-tenants 6 \
	-shards 8 -sim-workers 8 macro-trace 2>/dev/null > /tmp/cebench.replay.s8w8.txt
cmp /tmp/cebench.replay.s1w1.txt /tmp/cebench.replay.s8w8.txt || {
	echo "cebench macro-trace trace replay differs between shards=1 and shards=8/workers=8"; exit 1;
}

echo "== macro-chaos determinism matrix (fault injection, shards x workers)"
for cfg in "1 1" "2 8" "8 1" "8 8"; do
	set -- $cfg
	/tmp/cebench.check -shards "$1" -sim-workers "$2" \
		macro-chaos 2>/dev/null > "/tmp/cebench.chaos.s$1w$2.txt"
done
for f in /tmp/cebench.chaos.s2w8.txt /tmp/cebench.chaos.s8w1.txt /tmp/cebench.chaos.s8w8.txt; do
	cmp /tmp/cebench.chaos.s1w1.txt "$f" || {
		echo "cebench macro-chaos stdout differs across the shard matrix ($f)"; exit 1;
	}
done

echo "== trace-check (observability export byte-identical across -parallel)"
sh scripts/trace_check.sh

echo "== zero-alloc gates (steady-state fit/observe/decision/traffic/invoke must not touch the heap)"
go test -run 'TestFitterZeroAlloc|TestFixedWindowObserveZeroAlloc|TestDecisionZeroAlloc' \
	./internal/fit/ ./internal/predictor/ ./internal/scheduler/
go test -run 'TestHistObserveZeroAlloc|TestCursorNextZeroAlloc|TestInvoke1SteadyStateZeroAlloc|TestInvoke1DenialZeroAlloc' \
	./internal/obs/ ./internal/traffic/ ./internal/faas/

echo "== benchmark smoke (sim/cost/fit/scheduler/traffic at 1x, numeric path at 100x, same as make bench)"
go test -run '^$' -bench . -benchtime=1x ./internal/sim/ ./internal/cost/ ./internal/fit/ ./internal/scheduler/ ./internal/traffic/
go test -run '^$' -bench . -benchmem -benchtime=100x ./internal/ml/ ./internal/dataset/

echo "OK"
