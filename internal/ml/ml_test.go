package ml

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/sim"
)

func binData(n, d int, flip float64, seed uint64) *dataset.Matrix {
	return dataset.GenerateBinary(sim.NewRand(seed), dataset.GenConfig{Samples: n, Features: d, NoiseFlip: flip})
}

// numericalGradient checks an analytic gradient against finite differences.
func numericalGradient(t *testing.T, obj Objective, m *dataset.Matrix) {
	t.Helper()
	w := make([]float64, m.Cols)
	rng := sim.NewRand(99)
	for i := range w {
		w[i] = rng.NormFloat64() * 0.3
	}
	idx := make([]int, m.Rows)
	for i := range idx {
		idx[i] = i
	}
	grad := make([]float64, len(w))
	obj.Gradient(w, m, idx, grad)
	const h = 1e-6
	for i := range w {
		wp, wm := Clone(w), Clone(w)
		wp[i] += h
		wm[i] -= h
		num := (obj.Loss(wp, m) - obj.Loss(wm, m)) / (2 * h)
		if math.Abs(num-grad[i]) > 1e-4*(1+math.Abs(num)) {
			t.Errorf("%s: grad[%d] = %g, numerical %g", obj.Name(), i, grad[i], num)
		}
	}
}

func TestLogisticGradientMatchesNumerical(t *testing.T) {
	numericalGradient(t, Logistic{L2: 0.01}, binData(60, 5, 0.1, 1))
}

func TestSquaredGradientMatchesNumerical(t *testing.T) {
	m := dataset.GenerateRegression(sim.NewRand(2), dataset.GenConfig{Samples: 60, Features: 5, NoiseStd: 1})
	numericalGradient(t, Squared{L2: 0.01}, m)
}

func TestHingeGradientMatchesNumericalAwayFromKink(t *testing.T) {
	// The hinge is non-differentiable at y w·x == 1; with random w the
	// measure of kink points is zero, so finite differences still agree.
	numericalGradient(t, Hinge{L2: 0.01}, binData(60, 5, 0.1, 3))
}

func TestObjectiveByName(t *testing.T) {
	for _, name := range []string{"logistic", "hinge", "squared"} {
		obj, err := ObjectiveByName(name, 0.1)
		if err != nil {
			t.Fatalf("ObjectiveByName(%q): %v", name, err)
		}
		if obj.Name() != name {
			t.Errorf("Name = %q, want %q", obj.Name(), name)
		}
	}
	if _, err := ObjectiveByName("mse", 0); err == nil {
		t.Error("unknown objective should error")
	}
}

func TestLogisticTrainingConverges(t *testing.T) {
	data := binData(4000, 10, 0, 5)
	tr, err := NewTrainer(data, Config{Objective: Logistic{}, Workers: 4, BatchPerWkr: 100, LearningRate: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	initial := tr.Loss()
	trace := tr.TrainToLoss(0.3, 50)
	if len(trace) == 0 {
		t.Fatal("no epochs ran")
	}
	final := trace[len(trace)-1]
	if final >= initial {
		t.Fatalf("loss did not decrease: %g -> %g", initial, final)
	}
	if final > 0.35 {
		t.Errorf("separable data should reach low logloss, got %g", final)
	}
	if acc := tr.Accuracy(); acc < 0.9 {
		t.Errorf("accuracy = %g, want > 0.9 on separable data", acc)
	}
}

func TestHingeTrainingConverges(t *testing.T) {
	data := binData(4000, 10, 0, 7)
	tr, err := NewTrainer(data, Config{Objective: Hinge{L2: 0.001}, Workers: 4, BatchPerWkr: 100, LearningRate: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr.TrainToLoss(0.2, 60)
	if acc := tr.Accuracy(); acc < 0.9 {
		t.Errorf("SVM accuracy = %g, want > 0.9", acc)
	}
}

func TestSquaredTrainingConverges(t *testing.T) {
	data := dataset.GenerateRegression(sim.NewRand(11), dataset.GenConfig{Samples: 4000, Features: 8, NoiseStd: 0.5})
	tr, err := NewTrainer(data, Config{Objective: Squared{}, Workers: 2, BatchPerWkr: 100, LearningRate: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	initial := tr.Loss()
	trace := tr.TrainToLoss(0.2, 80)
	final := trace[len(trace)-1]
	if final >= initial/2 {
		t.Errorf("regression barely converged: %g -> %g", initial, final)
	}
}

func TestNoisyDataHasLossFloor(t *testing.T) {
	// With 22% label flips the logloss cannot approach zero; it should
	// plateau near the Bayes floor (~0.5-0.7), the regime the Higgs
	// experiments target (target loss 0.66).
	data := binData(6000, 10, 0.22, 13)
	tr, err := NewTrainer(data, Config{Objective: Logistic{}, Workers: 4, BatchPerWkr: 150, LearningRate: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	trace := tr.TrainToLoss(0.01, 60)
	final := trace[len(trace)-1]
	if final < 0.4 {
		t.Errorf("loss %g below plausible Bayes floor for 22%% flip noise", final)
	}
	if final > 0.69 {
		t.Errorf("loss %g did not improve below chance (ln2)", final)
	}
}

func TestTrainerRejectsBadConfig(t *testing.T) {
	data := binData(10, 2, 0, 1)
	cases := []Config{
		{Objective: Logistic{}, Workers: 0, LearningRate: 0.1},
		{Objective: nil, Workers: 1, LearningRate: 0.1},
		{Objective: Logistic{}, Workers: 1, LearningRate: 0},
		{Objective: Logistic{}, Workers: 100, LearningRate: 0.1}, // more workers than rows
	}
	for i, cfg := range cases {
		if _, err := NewTrainer(data, cfg); err == nil {
			t.Errorf("case %d: config %+v should be rejected", i, cfg)
		}
	}
}

func TestIterationsPerEpoch(t *testing.T) {
	data := binData(1000, 4, 0, 1)
	tr, err := NewTrainer(data, Config{Objective: Logistic{}, Workers: 4, BatchPerWkr: 50, LearningRate: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.IterationsPerEpoch(); got != 5 { // 250 rows per shard / 50
		t.Errorf("IterationsPerEpoch = %d, want 5", got)
	}
	// Full-shard batches collapse to one iteration per epoch.
	tr2, _ := NewTrainer(data, Config{Objective: Logistic{}, Workers: 4, BatchPerWkr: 0, LearningRate: 0.1, Seed: 1})
	if got := tr2.IterationsPerEpoch(); got != 1 {
		t.Errorf("full-batch IterationsPerEpoch = %d, want 1", got)
	}
}

func TestWorkerBatchesCoverShard(t *testing.T) {
	shard := binData(100, 2, 0, 1)
	w := NewWorker(shard, sim.NewRand(1))
	seen := make(map[int]bool)
	for i := 0; i < 10; i++ {
		for _, idx := range w.NextBatch(10) {
			seen[idx] = true
		}
	}
	if len(seen) != 100 {
		t.Errorf("10 batches of 10 covered %d distinct rows, want 100", len(seen))
	}
}

func TestWorkerReshuffles(t *testing.T) {
	shard := binData(20, 2, 0, 1)
	w := NewWorker(shard, sim.NewRand(1))
	first := append([]int(nil), w.NextBatch(20)...)
	second := w.NextBatch(20)
	same := true
	for i := range first {
		if first[i] != second[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("second pass used an identical permutation; reshuffle missing")
	}
}

func TestWorkerGradientsMatchSequential(t *testing.T) {
	data := binData(400, 6, 0.1, 21)
	tr, err := NewTrainer(data, Config{Objective: Logistic{}, Workers: 4, BatchPerWkr: 25, LearningRate: 0.1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	grads := tr.WorkerGradients()
	if len(grads) != 4 {
		t.Fatalf("got %d gradients", len(grads))
	}
	for i, g := range grads {
		if len(g) != data.Cols {
			t.Errorf("gradient %d has %d dims", i, len(g))
		}
		if Norm2(g) == 0 {
			t.Errorf("gradient %d is zero", i)
		}
	}
}

func TestSetWeightsRestoresState(t *testing.T) {
	data := binData(500, 4, 0, 23)
	tr, _ := NewTrainer(data, Config{Objective: Logistic{}, Workers: 2, BatchPerWkr: 50, LearningRate: 0.3, Seed: 1})
	tr.RunEpoch()
	snapshot := Clone(tr.Weights())
	lossAt := tr.Loss()
	tr.RunEpoch()
	tr.SetWeights(snapshot)
	if got := tr.Loss(); math.Abs(got-lossAt) > 1e-12 {
		t.Errorf("restored loss %g, want %g", got, lossAt)
	}
}

func TestDeterministicTraining(t *testing.T) {
	run := func() []float64 {
		tr, _ := NewTrainer(binData(800, 5, 0.1, 31), Config{Objective: Logistic{}, Workers: 4, BatchPerWkr: 40, LearningRate: 0.2, Seed: 7})
		return tr.TrainToLoss(0, 5)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("training not deterministic at epoch %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestGradientStepReducesLossProperty(t *testing.T) {
	// For a smooth convex objective a sufficiently small full-batch step
	// must not increase the loss.
	data := binData(200, 4, 0.1, 41)
	obj := Logistic{}
	idx := make([]int, data.Rows)
	for i := range idx {
		idx[i] = i
	}
	if err := quick.Check(func(seed uint16) bool {
		rng := sim.NewRand(uint64(seed))
		w := make([]float64, data.Cols)
		for i := range w {
			w[i] = rng.NormFloat64()
		}
		before := obj.Loss(w, data)
		grad := make([]float64, len(w))
		obj.Gradient(w, data, idx, grad)
		Axpy(-1e-3, grad, w)
		return obj.Loss(w, data) <= before+1e-12
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLogisticOnHashedText(t *testing.T) {
	// End-to-end text classification: synthetic reviews -> hashing
	// vectorizer -> logistic regression, the IMDb-style pipeline.
	corpus := dataset.GenerateText(sim.NewRand(3), dataset.TextConfig{
		Docs: 2000, Vocab: 5000, AvgLen: 80, LexiconFrac: 0.1, Signal: 4,
	})
	m := corpus.Vectorize(256)
	tr, err := NewTrainer(m, Config{Objective: Logistic{}, Workers: 4, BatchPerWkr: 50, LearningRate: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr.TrainToLoss(0.35, 60)
	if acc := tr.Accuracy(); acc < 0.8 {
		t.Errorf("text-classification accuracy %g, want > 0.8", acc)
	}
}
