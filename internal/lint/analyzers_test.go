package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current analyzer output")

// testPolicy marks the testdata fixtures deterministic (they are linted
// under their natural import paths) and seeds a forbid list for the
// importboundary fixture.
const testPolicy = `
deterministic repro/internal/lint/testdata/...
forbid repro/internal/lambda
forbid net
shard-restricted repro/internal/lint/testdata/shardsafe
shard-exempt repro/internal/lint/testdata/shardsafe/executor.go
`

func testRunner(t *testing.T) *Runner {
	t.Helper()
	root, module, err := FindModule(".")
	if err != nil {
		t.Fatalf("FindModule: %v", err)
	}
	pol, err := ParsePolicy([]byte(testPolicy), "test.policy")
	if err != nil {
		t.Fatalf("ParsePolicy: %v", err)
	}
	return NewRunner(root, module, pol)
}

func fixtureTarget(t *testing.T, name string) Target {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return Target{Dir: dir, Path: "repro/internal/lint/testdata/" + name}
}

func render(findings []Finding) string {
	var b strings.Builder
	for _, f := range findings {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// goldenFixtures maps each golden name to the lint targets it runs.
// hotpathfacts is a two-package run: the annotated callers live in outer,
// the verdicts they depend on are facts exported by inner.
var goldenFixtures = []struct {
	name    string
	targets []string
}{
	{"walltime", nil},
	{"globalrand", nil},
	{"maporder", nil},
	{"fpreduce", nil},
	{"importboundary", nil},
	{"pragma", nil},
	{"shardsafe", nil},
	{"hotpath", nil},
	{"hotpathreg", nil},
	{"hotpathfacts", []string{"hotpathfacts/inner", "hotpathfacts/outer"}},
	{"stalepragma", nil},
}

// TestAnalyzersGolden proves each analyzer catches its seeded violations —
// and nothing else — by comparing against a golden transcript.
func TestAnalyzersGolden(t *testing.T) {
	for _, fx := range goldenFixtures {
		name := fx.name
		t.Run(name, func(t *testing.T) {
			r := testRunner(t)
			names := fx.targets
			if names == nil {
				names = []string{name}
			}
			var targets []Target
			for _, n := range names {
				targets = append(targets, fixtureTarget(t, n))
			}
			findings, err := r.Run(targets)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if len(findings) == 0 {
				t.Fatalf("fixture %s produced no findings; seeded violations missed", name)
			}
			got := render(findings)
			goldenPath := filepath.Join("testdata", name, "golden.txt")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestUnknownPragmaAnalyzerIsFinding pins the satellite requirement
// explicitly: a misspelled analyzer name in an allow-pragma is itself a
// finding, and the malformed pragma suppresses nothing.
func TestUnknownPragmaAnalyzerIsFinding(t *testing.T) {
	r := testRunner(t)
	findings, err := r.Run([]Target{fixtureTarget(t, "pragma")})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var misspellReported, missingReason, unknownVerb bool
	walltimeLines := 0
	for _, f := range findings {
		if f.Analyzer == "pragma" && strings.Contains(f.Message, `unknown analyzer "waltime"`) {
			misspellReported = true
		}
		if f.Analyzer == "pragma" && strings.Contains(f.Message, "requires a reason") {
			missingReason = true
		}
		if f.Analyzer == "pragma" && strings.Contains(f.Message, "unknown cescalint directive") {
			unknownVerb = true
		}
		if f.Analyzer == "walltime" {
			walltimeLines++
		}
	}
	if !misspellReported {
		t.Error("misspelled analyzer name in pragma was not reported")
	}
	if !missingReason {
		t.Error("pragma without -- reason was not reported")
	}
	if !unknownVerb {
		t.Error("unknown cescalint directive was not reported")
	}
	// Suppressed() is covered by a valid pragma; the other three time.Now
	// calls sit under malformed pragmas and must still be findings.
	if walltimeLines != 3 {
		t.Errorf("want 3 unsuppressed walltime findings, got %d", walltimeLines)
	}
}

// TestPolicyGapIsFinding pins the completeness satellite: a package in no
// policy set is itself a finding, attributed to the policy pseudo-analyzer.
func TestPolicyGapIsFinding(t *testing.T) {
	root, module, err := FindModule(".")
	if err != nil {
		t.Fatalf("FindModule: %v", err)
	}
	// Deliberately cover everything under testdata except policygap.
	pol, err := ParsePolicy([]byte("deterministic repro/internal/lint/testdata/hotpath"), "test.policy")
	if err != nil {
		t.Fatalf("ParsePolicy: %v", err)
	}
	r := NewRunner(root, module, pol)
	findings, err := r.Run([]Target{fixtureTarget(t, "policygap")})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(findings) != 1 {
		t.Fatalf("want exactly the policy-gap finding, got %d: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "policy" || !strings.Contains(f.Message, "not covered by cescalint.policy") {
		t.Errorf("unexpected finding: %v", f)
	}
	// The same package under a policy that lists it (unchecked) is silent.
	pol2, err := ParsePolicy([]byte("unchecked repro/internal/lint/testdata/policygap"), "test.policy")
	if err != nil {
		t.Fatalf("ParsePolicy: %v", err)
	}
	r2 := NewRunner(root, module, pol2)
	findings, err = r2.Run([]Target{fixtureTarget(t, "policygap")})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(findings) != 0 {
		t.Errorf("unchecked package must lint silent, got %v", findings)
	}
}

// TestPolicyHotpathEntry proves the policy file can annotate functions
// without touching their source: a `hotpath` line turns PolicyHot — silent
// in the golden run — into a finding at its println site.
func TestPolicyHotpathEntry(t *testing.T) {
	root, module, err := FindModule(".")
	if err != nil {
		t.Fatalf("FindModule: %v", err)
	}
	pol, err := ParsePolicy([]byte(testPolicy+"\nhotpath repro/internal/lint/testdata/hotpath.PolicyHot\n"), "test.policy")
	if err != nil {
		t.Fatalf("ParsePolicy: %v", err)
	}
	r := NewRunner(root, module, pol)
	findings, err := r.Run([]Target{fixtureTarget(t, "hotpath")})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	seen := false
	for _, f := range findings {
		if f.Analyzer == "hotpath" && strings.Contains(f.Message, "print/println") {
			seen = true
		}
	}
	if !seen {
		t.Error("policy hotpath entry did not annotate PolicyHot: no print/println finding")
	}
}
