package experiments

// macro-trace is the traffic-engine macro scenario: T tenants generating
// open-loop invocation streams from internal/traffic's lazy arrival
// cursors (Poisson, bursty, diurnal, or Azure-style trace replay) against
// one shared serverless account. It is the workload the PR8 traffic work
// exists for: macro-day synthesizes its arrivals from a closed-form curve
// and macro-fleet is decision-bound, while macro-trace generates tens of
// millions of arrivals from a stochastic process or a trace file without
// ever materializing them.
//
// Memory discipline (the headline property, measured by scripts/bench.sh):
//
//   - Each tenant keeps exactly one pending pump event. When the pump
//     fires it drains the cursor only up to traceBatchWindow seconds ahead
//     and injects those arrivals with sim.ScheduleBatch (bulk heapify —
//     burst minutes amortize their sift cost), then reschedules itself at
//     the first arrival past the window. Pending events and RSS are
//     O(tenants), independent of horizon and trace length.
//   - Measurement is streaming: per-tenant fixed-bucket latency
//     histograms (obs.Hist), running cost counters, and Jain's fairness
//     index computed at minute boundaries by the shard-0 coordinator. No
//     per-invocation record is ever retained.
//
// Sharing layout (macro-fleet convention): tenants live on shard t%shards;
// the account platform is owned by shard 0 and mutates only inside shard-0
// events reached via sim.Post round trips, with retries run shard-0-local
// on a deterministic backoff. Every event that can share a timestamp with
// another tenant's event carries a globally unique priority (band + tenant
// id), so the table, trace and metrics are byte-identical at every
// (shards, workers, cebench -parallel) setting.
//
// Scaling note: the registered default is 24 tenants x 0.5/s x 1800 s
// (~21.6k arrivals) so smoke tests run in milliseconds; scripts/bench.sh
// raises it to 128 x 1.0/s x 86400 s (>=10M arrivals) via SetTrafficScale
// / cebench -traffic-* flags.

import (
	"bytes"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/faas"
	"repro/internal/obs"
	"repro/internal/platform/simbackend"
	"repro/internal/pricing"
	"repro/internal/sim"
	"repro/internal/traffic"
)

func init() { register("macro-trace", runMacroTrace) }

// Traffic knobs, overridable by cmd/cebench flags and scripts/bench.sh.
// Zero means "use the registered default". Sharding reuses the macro knobs
// (SetMacroSharding / cebench -shards, -sim-workers).
var (
	trafficTenants     atomic.Int64
	trafficRateBits    atomic.Uint64
	trafficHorizonBits atomic.Uint64
	trafficKindPlus1   atomic.Int64                  // 0 = default (diurnal), else Kind+1
	trafficTrace       atomic.Pointer[traffic.Trace] // parsed -trace-file payload
)

// SetTrafficScale overrides the macro-trace population: tenants streams at
// rate arrivals/second each over horizon seconds. Zeros restore the
// defaults (24 x 0.5/s x 1800 s).
func SetTrafficScale(tenants int, rate, horizon float64) {
	trafficTenants.Store(int64(tenants))
	trafficRateBits.Store(math.Float64bits(rate))
	trafficHorizonBits.Store(math.Float64bits(horizon))
}

// SetTrafficKind overrides the macro-trace arrival process
// (poisson|bursty|diurnal|trace); the empty string restores the default
// (diurnal).
func SetTrafficKind(kind string) error {
	if kind == "" {
		trafficKindPlus1.Store(0)
		return nil
	}
	k, err := traffic.ParseKind(kind)
	if err != nil {
		return err
	}
	trafficKindPlus1.Store(int64(k) + 1)
	return nil
}

// SetTraceData parses an Azure-style per-minute-count trace (see
// internal/traffic) and installs it for the "trace" kind; tenants replay
// rows round-robin. Nil or empty clears the installed trace.
func SetTraceData(data []byte) error {
	if len(data) == 0 {
		trafficTrace.Store(nil)
		return nil
	}
	tr, err := traffic.ParseTrace(bytes.NewReader(data))
	if err != nil {
		return err
	}
	trafficTrace.Store(&tr)
	return nil
}

const (
	traceLookahead   = 5.0  // conservative window: every cross-shard Post delay
	traceBatchWindow = 1.0  // how far ahead one pump drains its cursor
	traceReportGap   = 60.0 // per-tenant fairness reports, once a minute
	traceMaxRetry    = 4    // invoke attempts per arrival before a drop

	// Per-invocation service time: LogNormal(ln 0.4, 0.6) seconds, an
	// inference-serving-like distribution with a heavy right tail.
	traceSvcMedian = 0.4
	traceSvcSigma  = 0.6

	// Priority bands (+ tenant id within each): releases beat invokes at
	// equal timestamps so freed capacity is visible to same-instant
	// requests; pumps beat the arrivals they inject at the same instant.
	priTracePump    = 0
	priTraceArrive  = 1_000_000
	priTraceRelease = 2_000_000
	priTraceInvoke  = 3_000_000
	priTraceRetry   = 4_000_000
	priTraceGrant   = 5_000_000
	priTraceDone    = 6_000_000
	priTraceReport  = 7_000_000
	priTraceAbsorb  = 8_000_000
)

// traceAccount is the shared serverless account on shard 0. Every Invoke1
// and ReleaseGroup call happens inside a shard-0 event, so the platform's
// warm pool, meter and concurrency gate mutate in one deterministic order.
type traceAccount struct {
	sh               *sim.Shard
	plat             *faas.Platform
	free             *invFrame // frame pool; get/put only inside shard-0 events
	denials, retries uint64
}

// invFrame carries one arrival through admit -> grant -> done -> release.
// Frames are pooled on the account (acquired at admission, freed at release
// or final denial — both shard-0 events) and their stage closures are bound
// once at construction, so the steady-state invocation pipeline performs
// zero heap allocations. A frame is only ever touched by its own causally
// ordered event chain; cross-shard hops go through sim.Post, whose mailbox
// handoff orders the memory accesses.
type invFrame struct {
	ac      *traceAccount
	tn      *traceTenant
	arrT    sim.Time
	attempt int     // admission attempts already made
	delay   float64 // startup delay of the granted invocation
	cold    bool
	held    float64 // startup + service, set on grant, read at release

	invokeFn, grantFn, doneFn, releaseFn func()
	next                                 *invFrame
}

func (ac *traceAccount) get() *invFrame {
	fr := ac.free
	if fr == nil {
		//cescalint:allow hotpath -- pool refill: one frame (plus its four bound stage closures) per concurrency high-water mark; steady state recycles via the free list
		return newInvFrame(ac)
	}
	ac.free = fr.next
	return fr
}

// newInvFrame allocates a fresh frame and binds its stage closures once; it
// runs only while the in-flight count is still climbing to its high-water
// mark, after which every arrival reuses a pooled frame.
func newInvFrame(ac *traceAccount) *invFrame {
	fr := &invFrame{ac: ac}
	fr.invokeFn = fr.invoke
	fr.grantFn = fr.grant
	fr.doneFn = fr.done
	fr.releaseFn = fr.release
	return fr
}

func (ac *traceAccount) put(fr *invFrame) {
	fr.tn = nil
	fr.next = ac.free
	ac.free = fr
}

// admit starts one arrival's admission on shard 0. The arrival instant is
// recovered from the fire time: the tenant's invoke post travels exactly
// one lookahead, so no per-arrival closure is needed to carry it.
//
//cescalint:hotpath
func (ac *traceAccount) admit(tn *traceTenant) {
	fr := ac.get()
	fr.tn = tn
	fr.arrT = ac.sh.Now() - sim.Time(traceLookahead)
	fr.attempt = 0
	fr.invoke()
}

// invoke tries to admit the frame's arrival, retrying shard-0-locally with
// deterministic exponential backoff while the account is at its cap; the
// grant (or final denial) posts back to the tenant's shard one lookahead
// later.
func (fr *invFrame) invoke() {
	ac, tn := fr.ac, fr.tn
	inv, err := ac.plat.Invoke1(tn.memMB)
	if err != nil {
		if fr.attempt+1 >= traceMaxRetry {
			ac.denials++
			ac.sh.Post(tn.sh, ac.sh.Now()+sim.Time(traceLookahead), priTraceGrant+tn.id, tn.dropFn)
			ac.put(fr)
			return
		}
		ac.retries++
		at := ac.sh.Now() + sim.Time(math.Ldexp(traceLookahead, fr.attempt))
		fr.attempt++
		ac.sh.SchedulePriority(at, priTraceRetry+tn.id, fr.invokeFn)
		return
	}
	fr.delay, fr.cold = inv.StartDelay, inv.Cold
	ac.sh.Post(tn.sh, ac.sh.Now()+sim.Time(traceLookahead), priTraceGrant+tn.id, fr.grantFn)
}

// grant runs on the tenant's shard once the account admits the arrival.
//
//cescalint:hotpath
func (fr *invFrame) grant() { fr.tn.granted(fr) }

// done runs on the tenant's shard when the invocation's service completes.
//
//cescalint:hotpath
func (fr *invFrame) done() { fr.tn.finish(fr) }

// release runs on shard 0: return the capacity and warm instance to the
// account, then recycle the frame.
//
//cescalint:hotpath
func (fr *invFrame) release() {
	fr.ac.plat.ReleaseGroup(1, fr.tn.memMB, fr.held)
	fr.ac.put(fr)
}

// traceTenant is one open-loop request stream: a lazy arrival cursor, the
// pump that schedules it, and streaming per-tenant aggregates (histogram,
// counters, running cost) — O(1) state regardless of how many invocations
// flow through.
type traceTenant struct {
	id     int
	memMB  int
	sh     *sim.Shard
	ac     *traceAccount
	cursor traffic.Cursor
	svc    *sim.Rand
	prices pricing.PriceBook

	pumpFn, arriveFn, admitFn, dropFn func()
	batch                             []sim.BatchEvent

	hist        obs.Hist
	cost        float64
	reportUntil float64
	window      uint64 // completions since the last fairness report

	arrivals, completed, dropped, cold uint64
}

// pump fires at the time of the tenant's next arrival. It injects that
// arrival plus every further arrival inside the next traceBatchWindow
// seconds as one ScheduleBatch (bulk heapify: a bursty spike pays O(burst)
// sift work, not O(burst log heap)), then reschedules itself at the first
// arrival past the window — at most one pending pump per tenant, ever.
//
//cescalint:hotpath
func (tn *traceTenant) pump() {
	now := tn.sh.Now()
	cutoff := float64(now) + traceBatchWindow
	//cescalint:allow hotpath -- amortized: batch grows to the per-window high-water arrival count, then append reuses the capacity
	tn.batch = append(tn.batch[:0], sim.BatchEvent{At: now, Pri: priTraceArrive + tn.id, Fn: tn.arriveFn})
	for {
		t, ok := tn.cursor.Next()
		if !ok {
			break
		}
		if t >= cutoff {
			tn.sh.SchedulePriority(sim.Time(t), priTracePump+tn.id, tn.pumpFn)
			break
		}
		//cescalint:allow hotpath -- amortized: batch grows to the per-window high-water arrival count, then append reuses the capacity
		tn.batch = append(tn.batch, sim.BatchEvent{At: sim.Time(t), Pri: priTraceArrive + tn.id, Fn: tn.arriveFn})
	}
	tn.arrivals += uint64(len(tn.batch))
	tn.sh.ScheduleBatch(tn.batch)
}

// arrive posts this arrival's admission request to the account. The post
// travels exactly one lookahead, so the account recovers the arrival
// instant from its own clock — no per-arrival closure.
//
//cescalint:hotpath
func (tn *traceTenant) arrive() {
	tn.sh.Post(tn.ac.sh, tn.sh.Now()+sim.Time(traceLookahead), priTraceInvoke+tn.id, tn.admitFn)
}

// admit is the shard-0 side of arrive, bound once per tenant.
func (tn *traceTenant) admit() { tn.ac.admit(tn) }

// granted runs on the tenant's shard once the account admits the arrival:
// draw the service time, bill tenant-side, and schedule completion.
func (tn *traceTenant) granted(fr *invFrame) {
	if fr.cold {
		tn.cold++
	}
	tn.cost += tn.prices.FunctionInvoke
	service := tn.svc.LogNormal(math.Log(traceSvcMedian), traceSvcSigma)
	fr.held = fr.delay + service
	tn.sh.SchedulePriority(tn.sh.Now()+sim.Time(fr.held), priTraceDone+tn.id, fr.doneFn)
}

// finish streams the invocation into the tenant's aggregates — histogram
// bucket, counters, running cost — and posts the release back to the
// account. Nothing per-invocation survives past the frame's release.
func (tn *traceTenant) finish(fr *invFrame) {
	now := tn.sh.Now()
	tn.completed++
	tn.window++
	tn.hist.Observe(float64(now - fr.arrT))
	tn.cost += tn.prices.ComputeOnlyCost(fr.held, float64(tn.memMB))
	tn.sh.Post(tn.ac.sh, now+sim.Time(traceLookahead), priTraceRelease+tn.id, fr.releaseFn)
}

// drop records a final denial from the account.
//
//cescalint:hotpath
func (tn *traceTenant) drop() { tn.dropped++ }

// report posts the tenant's last-minute completion count to the fairness
// coordinator and resets the window.
func (tn *traceTenant) report(coord *traceCoordinator, at sim.Time) {
	w := tn.window
	tn.window = 0
	id := tn.id
	tn.sh.Post(coord.sh, at+sim.Time(traceLookahead), priTraceAbsorb+id,
		func() { coord.absorb(id, w) })
	next := at + sim.Time(traceReportGap)
	if float64(next) <= tn.reportUntil {
		tn.sh.SchedulePriority(next, priTraceReport+id, func() { tn.report(coord, next) })
	}
}

// traceCoordinator computes Jain's fairness index over the tenants'
// per-minute completion counts at every report boundary — a streaming
// scalar per window, never a table of per-tenant history.
type traceCoordinator struct {
	sh     *sim.Shard
	window []float64
	seen   int
	scope  *obs.Observer

	windows int
	jainSum float64
	jainMin float64
}

func (c *traceCoordinator) absorb(tenant int, completions uint64) {
	c.window[tenant] = float64(completions)
	c.seen++
	if c.seen < len(c.window) {
		return
	}
	c.seen = 0
	j := obs.Jain(c.window)
	c.windows++
	c.jainSum += j
	if j < c.jainMin {
		c.jainMin = j
	}
	if c.scope != nil {
		c.scope.Trace().InstantAt(float64(c.sh.Now()), "macro", "coordinator", "fairness",
			obs.F("jain", j), obs.I("windows", c.windows))
	}
}

// qstr renders a conservative histogram quantile (a bucket upper bound).
func qstr(v float64) string {
	if math.IsInf(v, 1) {
		return fmt.Sprintf(">%g", obs.LatencyBuckets[len(obs.LatencyBuckets)-1])
	}
	return fmt.Sprintf("%g", v)
}

func runMacroTrace(seed uint64) (*Table, error) {
	tenants := int(trafficTenants.Load())
	if tenants <= 0 {
		tenants = 24
	}
	rate := math.Float64frombits(trafficRateBits.Load())
	if rate <= 0 {
		rate = 0.5
	}
	horizon := math.Float64frombits(trafficHorizonBits.Load())
	if horizon <= 0 {
		horizon = 1800
	}
	kind := traffic.Diurnal
	if k := trafficKindPlus1.Load(); k > 0 {
		kind = traffic.Kind(k - 1)
	}
	var tr traffic.Trace
	if kind == traffic.TraceReplay {
		p := trafficTrace.Load()
		if p == nil || p.Rows() == 0 {
			return nil, fmt.Errorf("macro-trace: kind trace needs trace data (cebench -trace-file)")
		}
		tr = *p
	}
	shards := int(macroShards.Load())
	workers := int(macroWorkers.Load())
	if shards <= 0 {
		shards = 8
	}
	if workers <= 0 {
		workers = 1
	}

	b := simbackend.New(seed)
	b.ConfigureSharding(shards, workers, traceLookahead)
	s := b.Sim()
	collector := activeCollector.Load()
	pb := pricing.Default()

	// Build tenants in id order (setup is deterministic in tenant order)
	// and accumulate the fleet's expected aggregate rate so the shared cap
	// can be sized for real contention at the diurnal/bursty peaks.
	fleet := make([]*traceTenant, tenants)
	aggRate := 0.0
	for t := 0; t < tenants; t++ {
		name := obs.ScopeName("macro-trace", "t", t, tenants)
		cfg := traffic.Config{Kind: kind, Horizon: horizon}
		switch kind {
		case traffic.TraceReplay:
			cfg.Trace, cfg.Row = tr, t%tr.Rows()
			if m := tr.Minutes(cfg.Row); m > 0 {
				aggRate += float64(tr.RowTotal(cfg.Row)) / (60 * float64(m))
			}
		default:
			// Per-tenant rate draw: tenants are unequal on purpose, so the
			// fairness index has something to measure.
			shape := s.Rand(name + "/shape")
			cfg.Rate = rate * shape.LogNormal(0, 0.25)
			aggRate += cfg.Rate
			if kind == traffic.Diurnal {
				// One full cycle inside the horizon, peaks staggered so the
				// aggregate still swings (a uniform stagger would cancel).
				cfg.Period = horizon
				cfg.Phase = horizon * float64(t) / float64(2*tenants)
			}
		}
		tn := &traceTenant{
			id:          t,
			memMB:       512 << (t % 3),
			sh:          s.Shard(t % shards),
			cursor:      cfg.Cursor(s.Rand(name + "/arrivals")),
			svc:         s.Rand(name + "/service"),
			prices:      pb,
			hist:        *obs.NewHist(obs.LatencyBuckets),
			reportUntil: horizon,
		}
		tn.pumpFn = tn.pump
		tn.arriveFn = tn.arrive
		tn.admitFn = tn.admit
		tn.dropFn = tn.drop
		fleet[t] = tn
	}

	// Cap the shared account near the fleet's mean in-flight demand. An
	// admitted arrival occupies the account from Invoke1 until its release
	// posts back: two lookaheads plus startup plus service.
	meanService := traceSvcMedian * math.Exp(traceSvcSigma*traceSvcSigma/2)
	meanHeld := 2*traceLookahead + faas.DefaultStartup().Warm + meanService
	capacity := int(1.1 * aggRate * meanHeld)
	if capacity < 4 {
		capacity = 4
	}
	limits := faas.DefaultLimits()
	limits.MaxConcurrency = capacity
	acPlat := b.TenantPlatform("macro-trace/account", 0, limits)
	if collector != nil {
		acPlat.SetObserver(collector.Scope("macro-trace/account"))
	}
	ac := &traceAccount{sh: acPlat.Shard(), plat: acPlat}

	coord := &traceCoordinator{sh: s.Shard(0), window: make([]float64, tenants), jainMin: math.Inf(1)}
	if collector != nil {
		coord.scope = collector.Scope("macro-trace/coordinator")
	}

	for _, tn := range fleet {
		tn.ac = ac
		if t0, ok := tn.cursor.Next(); ok {
			tn.sh.SchedulePriority(sim.Time(t0), priTracePump+tn.id, tn.pumpFn)
		}
		first := sim.Time(traceReportGap)
		if float64(first) <= tn.reportUntil {
			tn := tn
			tn.sh.SchedulePriority(first, priTraceReport+tn.id, func() { tn.report(coord, first) })
		}
	}

	s.Run()

	if n := s.Pending(); n != 0 {
		return nil, fmt.Errorf("macro-trace: %d events still pending after Run", n)
	}

	// Aggregate per memory class, always in tenant order so histogram
	// merges and float sums have a fixed term order.
	type classAgg struct {
		tenants, memMB                     int
		arrivals, completed, dropped, cold uint64
		hist                               obs.Hist
		cost                               float64
	}
	classes := make([]classAgg, 3)
	total := classAgg{hist: *obs.NewHist(obs.LatencyBuckets)}
	for i := range classes {
		classes[i].hist = *obs.NewHist(obs.LatencyBuckets)
	}
	for t, tn := range fleet {
		c := &classes[t%3]
		c.tenants++
		c.memMB = tn.memMB
		c.arrivals += tn.arrivals
		c.completed += tn.completed
		c.dropped += tn.dropped
		c.cold += tn.cold
		c.hist.Merge(&tn.hist)
		c.cost += tn.cost
	}
	for i := range classes {
		c := &classes[i]
		total.tenants += c.tenants
		total.arrivals += c.arrivals
		total.completed += c.completed
		total.dropped += c.dropped
		total.cold += c.cold
		total.hist.Merge(&c.hist)
		total.cost += c.cost
	}

	row := func(label string, c classAgg, memMB string) []string {
		return []string{
			label, fmt.Sprintf("%d", c.tenants), memMB,
			fmt.Sprintf("%d", c.arrivals), fmt.Sprintf("%d", c.completed),
			fmt.Sprintf("%d", c.dropped), fmt.Sprintf("%d", c.cold),
			qstr(c.hist.Quantile(0.5)), qstr(c.hist.Quantile(0.95)), f4(c.cost),
		}
	}
	tab := &Table{
		ID:      "macro-trace",
		Title:   "Macro trace: open-loop traffic streams on one shared account",
		Headers: []string{"class", "tenants", "memMB", "arrivals", "completed", "dropped", "cold", "p50s", "p95s", "cost$"},
	}
	for i, c := range classes {
		tab.Rows = append(tab.Rows, row(fmt.Sprintf("mem-%d", i), c, fmt.Sprintf("%d", c.memMB)))
	}
	tab.Rows = append(tab.Rows, row("TOTAL", total, "-"))

	jainMean, jainMin := 1.0, 1.0
	if coord.windows > 0 {
		jainMean, jainMin = coord.jainSum/float64(coord.windows), coord.jainMin
	}
	meter := acPlat.Meter()
	tab.Notes = fmt.Sprintf(
		"kind=%s tenants=%d rate=%g/s horizon=%gs batch-window=%gs; shared account cap %d (denials=%d retries=%d account $%.2f); jain mean=%.4f min=%.4f windows=%d; invocations=%d; events=%d",
		kind, tenants, rate, horizon, traceBatchWindow, capacity, ac.denials, ac.retries,
		meter.Total(), jainMean, jainMin, coord.windows, total.arrivals, s.EventsFired())
	return tab, nil
}
