package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Hotpath statically verifies that designated functions are allocation-free
// in steady state.
//
// The fleet-scale numbers all rest on zero-allocation hot paths: the
// Algorithm-2 decision, the DES schedule/batch kernel, faas.Invoke1, the
// traffic cursors and the ml epoch loop. Runtime AllocsPerRun gates catch a
// regression only on the inputs a benchmark happens to exercise; this
// analyzer makes the contract structural. A function annotated
// //cescalint:hotpath (on its declaration, on an interface method, or
// listed as `hotpath <pkg>.<Func>` in cescalint.policy) is walked for
// allocation sites — make/new, slice and map literals, &composite
// literals, address-of-local escapes, growing appends, capturing closures,
// bound method values, value-to-interface boxing, variadic argument
// slices, string concatenation and conversion, go/defer statements, map
// iteration, and calls the analyzer cannot prove allocation-free — and the
// verdict propagates through the call graph: a hotpath function may only
// call functions that are themselves hotpath-clean. Cross-package
// propagation uses the driver's fact store, keyed by types.Object.
//
// A dynamic call is trusted only through an interface method that is
// itself annotated; every type implementing such an interface must keep
// its implementing method clean, which the analyzer enforces in the
// package declaring the type. Individual sites with a proven-benign
// allocation (amortized high-water appends, Enabled-gated tracing, cold
// validation paths) are cleansed by a reasoned pragma on the site:
//
//	//cescalint:allow hotpath -- amortized: refills the free list once per arena
var Hotpath = &Analyzer{
	Name:  "hotpath",
	Doc:   "verify annotated functions are allocation-free, propagating through the call graph",
	Scope: ScopeAll,
	Run:   runHotpath,
}

// dirtSite is one potential allocation inside a function body.
type dirtSite struct {
	pos token.Pos
	msg string
}

// callEdge is one statically resolved call to a module function.
type callEdge struct {
	pos    token.Pos
	callee *types.Func
}

// fnScan is the per-function working state before fixpoint.
type fnScan struct {
	fi    *fnInfo
	dirt  []dirtSite
	edges []callEdge
}

// funcKey renders a *types.Func as "<pkg-path>.<Func>" or
// "<pkg-path>.<Type>.<Method>", the form cescalint.policy and findings use.
func funcKey(f *types.Func) string {
	key := ""
	if f.Pkg() != nil {
		key = f.Pkg().Path() + "."
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			key += n.Obj().Name() + "."
		}
	}
	return key + f.Name()
}

func runHotpath(p *Pass) {
	h := &hotpathPass{
		Pass:    p,
		trusted: make(map[*types.Func]bool),
		hot:     make(map[*types.Func]bool),
		byObj:   make(map[types.Object]*fnScan),
	}
	h.collectAnnotations()
	h.scanPackage()
	h.fixpoint()
	h.checkImplementations()
	h.report()
	h.export()
}

type hotpathPass struct {
	*Pass
	trusted     map[*types.Func]bool // annotated interface methods, local + imported
	hot         map[*types.Func]bool // annotated concrete functions
	localIfaces []*ifaceFact
	scans       []*fnScan
	byObj       map[types.Object]*fnScan
}

// collectAnnotations resolves //cescalint:hotpath directives (function doc
// comments and interface-method docs) plus policy `hotpath` entries, and
// marks each matched directive used so unattached ones surface as stale.
func (h *hotpathPass) collectAnnotations() {
	for _, f := range h.facts.ifacesVisibleTo(h.Pkg) {
		h.trusted[f.method] = true
	}
	markDoc := func(doc ...*ast.CommentGroup) bool {
		found := false
		for _, cg := range doc {
			if cg == nil {
				continue
			}
			for _, d := range h.hotDirs {
				if d.pos >= cg.Pos() && d.pos <= cg.End() {
					d.used = true
					found = true
				}
			}
		}
		return found
	}
	for _, file := range h.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, _ := h.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			if markDoc(fd.Doc) || h.Policy.IsHotpathFunc(funcKey(obj)) {
				h.hot[obj] = true
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			it, ok := n.(*ast.InterfaceType)
			if !ok || it.Methods == nil {
				return true
			}
			for _, field := range it.Methods.List {
				if len(field.Names) == 0 {
					continue // embedded interface
				}
				if !markDoc(field.Doc, field.Comment) {
					continue
				}
				m, _ := h.Info.Defs[field.Names[0]].(*types.Func)
				if m == nil {
					continue
				}
				h.trusted[m] = true
				h.localIfaces = append(h.localIfaces, &ifaceFact{
					method: m,
					iface:  m.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface),
					name:   ifaceMethodName(m),
				})
			}
			return true
		})
	}
}

// ifaceMethodName renders an interface method as "<pkg>.<Iface>.<Method>"
// ("error.Error" for the universe-scope error interface).
func ifaceMethodName(m *types.Func) string {
	recv := m.Type().(*types.Signature).Recv().Type()
	if n, ok := recv.(*types.Named); ok {
		if n.Obj().Pkg() == nil {
			return n.Obj().Name() + "." + m.Name()
		}
		return n.Obj().Pkg().Path() + "." + n.Obj().Name() + "." + m.Name()
	}
	return funcKey(m)
}

// scanPackage builds the dirt and call-edge summary for every function
// declaration in the package, in file order.
func (h *hotpathPass) scanPackage() {
	for _, file := range h.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, _ := h.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			sc := &fnScan{fi: &fnInfo{obj: obj, pos: fd.Name.Pos(), hot: h.hot[obj]}}
			if fd.Body == nil {
				sc.dirt = append(sc.dirt, dirtSite{fd.Name.Pos(), fmt.Sprintf("hotpath function %s has no body to verify", funcKey(obj))})
			} else {
				h.scanBody(sc, fd, fd.Body, obj.Type().(*types.Signature))
			}
			h.scans = append(h.scans, sc)
			h.byObj[obj] = sc
		}
	}
}

// addDirt records one allocation site unless a hotpath pragma on the site
// cleanses it; cleansing pragmas are remembered on the function so the
// end-of-run audit can tell load-bearing pragmas from stale ones.
func (h *hotpathPass) addDirt(sc *fnScan, pos token.Pos, format string, args ...any) {
	if pr := h.allowPragmaAt(pos, "hotpath"); pr != nil {
		sc.fi.pragmas = append(sc.fi.pragmas, pr)
		return
	}
	sc.dirt = append(sc.dirt, dirtSite{pos, fmt.Sprintf(format, args...)})
}

// scanBody walks one function (or function-literal) body collecting dirt
// sites and call edges. sig is the body's own signature, used for return
// boxing; nested literals recurse with theirs.
func (h *hotpathPass) scanBody(sc *fnScan, decl *ast.FuncDecl, body *ast.BlockStmt, sig *types.Signature) {
	// Expressions appearing as a call's function are calls, not bound
	// method values; collect them (over nested literals too) up front.
	calledFuns := make(map[ast.Expr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			calledFuns[astUnparen(call.Fun)] = true
		}
		return true
	})
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if isBuiltinNamed(h.Info, x.Fun, "panic") {
				return false // a panic path never returns; its arguments are not steady state
			}
			h.scanCall(sc, x)
		case *ast.FuncLit:
			if name := capturedVar(h.Info, decl, x); name != "" {
				h.addDirt(sc, x.Pos(), "func literal captures %s and allocates a closure", name)
			}
			if litSig, ok := h.Info.Types[x].Type.(*types.Signature); ok {
				h.scanNested(sc, decl, x.Body, litSig)
			}
			return false
		case *ast.CompositeLit:
			if tv, ok := h.Info.Types[x]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					h.addDirt(sc, x.Pos(), "slice literal allocates")
				case *types.Map:
					h.addDirt(sc, x.Pos(), "map literal allocates")
				default:
					h.checkCompositeBoxing(sc, x, tv.Type)
				}
			}
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				break
			}
			switch op := astUnparen(x.X).(type) {
			case *ast.CompositeLit:
				if tv, ok := h.Info.Types[op]; ok && tv.Type != nil {
					switch tv.Type.Underlying().(type) {
					case *types.Slice, *types.Map:
						// the literal itself reports
					default:
						h.addDirt(sc, x.Pos(), "&composite literal allocates")
					}
				}
			case *ast.Ident:
				if v, ok := h.Info.Uses[op].(*types.Var); ok && !v.IsField() && declaredWithin(v, decl) {
					h.addDirt(sc, x.Pos(), "taking the address of %s may move it to the heap", op.Name)
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if tv, ok := h.Info.Types[x]; ok && tv.Value == nil && isStringType(tv.Type) {
					h.addDirt(sc, x.Pos(), "string concatenation allocates")
				}
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 {
				if tv, ok := h.Info.Types[x.Lhs[0]]; ok && isStringType(tv.Type) {
					h.addDirt(sc, x.Pos(), "string concatenation allocates")
				}
			}
			if x.Tok == token.ASSIGN && len(x.Lhs) == len(x.Rhs) {
				for i, lhs := range x.Lhs {
					if tv, ok := h.Info.Types[lhs]; ok && tv.Type != nil {
						h.checkBoxing(sc, tv.Type, x.Rhs[i])
					}
				}
			}
		case *ast.ValueSpec:
			if x.Type != nil {
				if tv, ok := h.Info.Types[x.Type]; ok && tv.Type != nil {
					for _, v := range x.Values {
						h.checkBoxing(sc, tv.Type, v)
					}
				}
			}
		case *ast.ReturnStmt:
			if sig.Results() != nil && len(x.Results) == sig.Results().Len() {
				for i, res := range x.Results {
					h.checkBoxing(sc, sig.Results().At(i).Type(), res)
				}
			}
		case *ast.RangeStmt:
			if isMapType(h.Info, x.X) {
				h.addDirt(sc, x.Pos(), "map iteration is order-nondeterministic; iterate a sorted slice instead")
			}
		case *ast.GoStmt:
			h.addDirt(sc, x.Pos(), "go statement allocates a goroutine")
		case *ast.DeferStmt:
			h.addDirt(sc, x.Pos(), "defer may allocate in a hot loop")
		case *ast.SelectorExpr:
			if sel, ok := h.Info.Selections[x]; ok && sel.Kind() == types.MethodVal && !calledFuns[x] {
				h.addDirt(sc, x.Pos(), "bound method value allocates a closure")
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

// scanNested re-walks a function literal's body under the literal's own
// signature (so return-boxing checks use the right result types) while
// charging dirt to the enclosing declaration.
func (h *hotpathPass) scanNested(sc *fnScan, decl *ast.FuncDecl, body *ast.BlockStmt, sig *types.Signature) {
	h.scanBody(sc, decl, body, sig)
}

// scanCall classifies one call: conversion, builtin, static module call
// (edge), trusted or untrusted dynamic call, or external function.
func (h *hotpathPass) scanCall(sc *fnScan, call *ast.CallExpr) {
	fun := astUnparen(call.Fun)

	// Type conversions.
	if tv, ok := h.Info.Types[fun]; ok && tv.IsType() {
		h.checkConversion(sc, call, tv.Type)
		return
	}
	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := h.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				h.addDirt(sc, call.Pos(), "make allocates")
			case "new":
				h.addDirt(sc, call.Pos(), "new allocates")
			case "append":
				h.addDirt(sc, call.Pos(), "append may grow its backing array and allocate")
			case "print", "println":
				h.addDirt(sc, call.Pos(), "print/println is not allocation-free")
			}
			return
		}
	}

	dirtBefore := len(sc.dirt)

	// Dynamic interface calls: trusted only through an annotated method.
	if selExpr, ok := fun.(*ast.SelectorExpr); ok {
		if sel, ok := h.Info.Selections[selExpr]; ok && sel.Kind() == types.MethodVal && types.IsInterface(sel.Recv()) {
			m := sel.Obj().(*types.Func)
			if o := m.Origin(); o != nil {
				m = o
			}
			if !h.trusted[m] {
				h.addDirt(sc, call.Pos(), "dynamic call through %s; annotate the interface method //cescalint:hotpath or pragma this call", ifaceMethodName(m))
			}
			h.checkCallArgs(sc, call, dirtBefore)
			return
		}
	}

	if callee := staticCallee(h.Info, fun); callee != nil {
		switch {
		case callee.Pkg() == nil:
			// universe scope (unsafe, error): nothing to do
		case callee.Pkg() == h.Pkg || h.inModule(callee.Pkg().Path()):
			if pr := h.allowPragmaAt(call.Pos(), "hotpath"); pr != nil {
				sc.fi.pragmas = append(sc.fi.pragmas, pr)
			} else {
				sc.edges = append(sc.edges, callEdge{call.Pos(), callee})
			}
		case !allowedExternal(callee):
			h.addDirt(sc, call.Pos(), "calls %s, which cescalint cannot prove allocation-free", funcKey(callee))
		}
	} else {
		h.addDirt(sc, call.Pos(), "call through a function value cannot be proven allocation-free")
	}
	h.checkCallArgs(sc, call, dirtBefore)
}

// checkCallArgs flags variadic argument slices and value-to-interface
// boxing at a call site — but only when the call itself was not already
// reported, so one bad call yields one finding, not three.
func (h *hotpathPass) checkCallArgs(sc *fnScan, call *ast.CallExpr, dirtBefore int) {
	if len(sc.dirt) > dirtBefore {
		return
	}
	tv, ok := h.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) > params.Len()-1 {
		h.addDirt(sc, call.Pos(), "variadic call allocates its argument slice")
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic() && call.Ellipsis == token.NoPos && params.Len() > 0:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case sig.Variadic() && params.Len() > 0:
			pt = params.At(params.Len() - 1).Type()
		}
		if pt != nil {
			h.checkBoxing(sc, pt, arg)
		}
	}
}

// checkConversion flags allocating conversions: to/from string (except
// string-to-string) and value-to-interface boxing. Constant-folded
// conversions are free.
func (h *hotpathPass) checkConversion(sc *fnScan, call *ast.CallExpr, dst types.Type) {
	if len(call.Args) != 1 {
		return
	}
	if tv, ok := h.Info.Types[call]; ok && tv.Value != nil {
		return // constant conversion, folded at compile time
	}
	if _, ok := dst.Underlying().(*types.Interface); ok {
		h.checkBoxing(sc, dst, call.Args[0])
		return
	}
	srcTV, ok := h.Info.Types[call.Args[0]]
	if !ok || srcTV.Type == nil {
		return
	}
	src := srcTV.Type
	dstStr, srcStr := isStringType(dst), isStringType(src)
	switch {
	case dstStr && srcStr:
	case dstStr:
		h.addDirt(sc, call.Pos(), "conversion from %s to string allocates", h.typeStr(src))
	case srcStr && isByteOrRuneSlice(dst):
		h.addDirt(sc, call.Pos(), "conversion from string to %s allocates", h.typeStr(dst))
	}
}

// checkBoxing flags storing a concrete, non-pointer-shaped value into an
// interface: the conversion copies the value to the heap.
func (h *hotpathPass) checkBoxing(sc *fnScan, dst types.Type, src ast.Expr) {
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := h.Info.Types[src]
	if !ok || tv.Type == nil || tv.IsNil() {
		return
	}
	if types.IsInterface(tv.Type) || pointerShaped(tv.Type) {
		return
	}
	h.addDirt(sc, src.Pos(), "converting %s to interface %s allocates (boxing)", h.typeStr(tv.Type), h.typeStr(dst))
}

// checkCompositeBoxing flags interface-typed elements and fields inside a
// stack-allocated (struct or array) composite literal.
func (h *hotpathPass) checkCompositeBoxing(sc *fnScan, lit *ast.CompositeLit, t types.Type) {
	switch u := t.Underlying().(type) {
	case *types.Array:
		for _, el := range lit.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			h.checkBoxing(sc, u.Elem(), el)
		}
	case *types.Struct:
		for i, el := range lit.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok {
					for j := 0; j < u.NumFields(); j++ {
						if u.Field(j).Name() == id.Name {
							h.checkBoxing(sc, u.Field(j).Type(), kv.Value)
							break
						}
					}
				}
			} else if i < u.NumFields() {
				h.checkBoxing(sc, u.Field(i).Type(), el)
			}
		}
	}
}

// fixpoint propagates dirtiness through same-package call edges until
// stable. Imported callees already have final facts (the driver runs
// packages in dependency order); a module callee with no fact at all —
// only possible when linting a package subset — is treated as dirty.
func (h *hotpathPass) fixpoint() {
	for _, sc := range h.scans {
		sc.fi.clean = len(sc.dirt) == 0
		if len(sc.dirt) > 0 {
			sc.fi.reason = h.dirtReason(sc.dirt[0])
		}
		for _, e := range sc.edges {
			sc.fi.calls = append(sc.fi.calls, e.callee)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, sc := range h.scans {
			if !sc.fi.clean {
				continue
			}
			for _, e := range sc.edges {
				if ok, reason := h.edgeClean(e); !ok {
					sc.fi.clean = false
					sc.fi.reason = fmt.Sprintf("calls %s, which is not allocation-free: %s", funcKey(e.callee), truncateReason(reason))
					changed = true
					break
				}
			}
		}
	}
}

// edgeClean resolves one call edge against local scans or the fact store.
func (h *hotpathPass) edgeClean(e callEdge) (bool, string) {
	if sc, ok := h.byObj[e.callee]; ok {
		return sc.fi.clean, sc.fi.reason
	}
	if fi := h.facts.fn(e.callee); fi != nil {
		return fi.clean, fi.reason
	}
	return false, "package not analyzed in this run"
}

// dirtReason renders a dirt site as an exported fact reason with a short
// position so cross-package findings point at the original allocation.
func (h *hotpathPass) dirtReason(d dirtSite) string {
	pos := h.Fset.Position(d.pos)
	return fmt.Sprintf("%s at %s:%d", d.msg, filepath.Base(pos.Filename), pos.Line)
}

// truncateReason keeps chained cross-function reasons readable.
func truncateReason(s string) string {
	const max = 160
	if len(s) <= max {
		return s
	}
	return s[:max-3] + "..."
}

// checkImplementations enforces the interface side of the trust bargain:
// for every hotpath-annotated interface method visible to this package,
// every named type declared here that implements the interface must keep
// the implementing method allocation-free.
func (h *hotpathPass) checkImplementations() {
	ifaces := append(append([]*ifaceFact(nil), h.facts.ifacesVisibleTo(h.Pkg)...), h.localIfaces...)
	sort.Slice(ifaces, func(i, j int) bool { return ifaces[i].name < ifaces[j].name })
	scope := h.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || types.IsInterface(named) {
			continue
		}
		for _, ifc := range ifaces {
			if !types.Implements(named, ifc.iface) && !types.Implements(types.NewPointer(named), ifc.iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, ifc.method.Pkg(), ifc.method.Name())
			m, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			if o := m.Origin(); o != nil {
				m = o
			}
			if recv := m.Type().(*types.Signature).Recv(); recv == nil || types.IsInterface(recv.Type()) {
				continue // promoted from an embedded interface; no concrete body here
			}
			if sc, local := h.byObj[m]; local {
				sc.fi.implRoot = true
				if !sc.fi.clean && !sc.fi.hot {
					h.Reportf(sc.fi.pos, "%s implements hotpath-annotated %s and must be allocation-free: %s",
						funcKey(m), ifc.name, truncateReason(sc.fi.reason))
				}
			} else if fi := h.facts.fn(m); fi != nil && !fi.clean {
				h.Reportf(tn.Pos(), "%s (embedded in %s) implements hotpath-annotated %s and must be allocation-free: %s",
					funcKey(m), name, ifc.name, truncateReason(fi.reason))
			}
		}
	}
}

// report emits site-level findings inside annotated functions: every
// surviving dirt site, and every call to a function that is not
// allocation-free, carrying the callee's own first reason.
func (h *hotpathPass) report() {
	for _, sc := range h.scans {
		if !sc.fi.hot {
			continue
		}
		for _, d := range sc.dirt {
			h.Reportf(d.pos, "%s", d.msg)
		}
		for _, e := range sc.edges {
			if ok, reason := h.edgeClean(e); !ok {
				h.Reportf(e.pos, "calls %s, which is not allocation-free: %s", funcKey(e.callee), truncateReason(reason))
			}
		}
	}
}

// export publishes this package's facts for dependent packages and the
// end-of-run stale-pragma audit.
func (h *hotpathPass) export() {
	infos := make([]*fnInfo, 0, len(h.scans))
	for _, sc := range h.scans {
		infos = append(infos, sc.fi)
	}
	h.facts.exportFns(infos)
	for _, f := range h.localIfaces {
		h.facts.exportIface(f)
	}
}

// inModule reports whether path names a package of the module under
// analysis, whose facts the fact store carries.
func (h *hotpathPass) inModule(path string) bool {
	return path == h.module || strings.HasPrefix(path, h.module+"/")
}

// typeStr renders a type relative to the package under analysis.
func (h *hotpathPass) typeStr(t types.Type) string {
	return types.TypeString(t, types.RelativeTo(h.Pkg))
}

// astUnparen strips parentheses.
func astUnparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// isBuiltinNamed reports whether e resolves to the named builtin.
func isBuiltinNamed(info *types.Info, e ast.Expr, name string) bool {
	id, ok := astUnparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// staticCallee resolves a call's target to a declared function or method,
// or nil for calls through function values.
func staticCallee(info *types.Info, fun ast.Expr) *types.Func {
	switch x := astUnparen(fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[x].(*types.Func); ok {
			if o := f.Origin(); o != nil {
				return o
			}
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				if o := f.Origin(); o != nil {
					return o
				}
				return f
			}
			return nil
		}
		if f, ok := info.Uses[x.Sel].(*types.Func); ok {
			return f // qualified pkg.Func
		}
	}
	return nil
}

// allowedExternal is the closed allowlist of non-module functions known to
// be allocation-free: pure math, binary search, and scheduler reads.
// Everything else outside the module is conservatively dirty.
func allowedExternal(f *types.Func) bool {
	pkg := f.Pkg()
	if pkg == nil {
		return true
	}
	switch pkg.Path() {
	case "math", "math/bits":
		return true
	case "sort":
		switch f.Name() {
		case "Search", "SearchFloat64s", "SearchInts", "SearchStrings":
			return true
		}
	case "runtime":
		switch f.Name() {
		case "GOMAXPROCS", "NumCPU":
			return true
		}
	}
	return false
}

// capturedVar returns the name of the first variable a function literal
// captures from its enclosing declaration, or "" for capture-free literals
// (which compile to static function values and do not allocate).
func capturedVar(info *types.Info, decl *ast.FuncDecl, lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if declaredWithin(v, decl) && !declaredWithin(v, lit) {
			name = v.Name()
			return false
		}
		return true
	})
	return name
}

// pointerShaped reports whether converting t to an interface stores the
// value directly in the interface word, with no heap copy.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Struct:
		return u.NumFields() == 0
	case *types.Array:
		return u.Len() == 0
	}
	return false
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
