#!/bin/sh
# Full gate: formatting (with simplification), vet, build, the determinism
# lint suite, shuffled tests, the race detector on the whole module, the
# byte-identical-output gates, and a benchmark smoke run. Same steps as
# `make check`.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt -s"
out="$(gofmt -s -l .)"
if [ -n "$out" ]; then
	echo "gofmt -s needed on:"
	echo "$out"
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== cescalint (determinism lint, fails fast before tests)"
go run ./cmd/cescalint ./...

echo "== go test (shuffled, catches test-order dependence)"
go test -shuffle=on ./...

echo "== go test -race (whole module)"
go test -race ./...

echo "== determinism gate (parallel == serial, kernel == reference heap)"
go test -run 'TestParallelOutputsMatchSerial|TestRunAllPreservesRequestOrder' .
go test -run 'TestKernelMatchesReferenceHeap|TestRunUntilNeverMovesClockBackwards' ./internal/sim/

echo "== shard determinism gate (byte-identical at every shard count and worker count)"
go test -run 'TestCrossShardWorkloadMatrix|TestLookaheadWindowsMatchSingleWindow|TestShardScheduleAndMerge' ./internal/sim/
go test -run 'TestMacroDayShardMatrix|TestMacroFleetShardMatrix' ./internal/experiments/
go build -o /tmp/cebench.check ./cmd/cebench
/tmp/cebench.check -shards 1 -sim-workers 1 macro-day 2>/dev/null > /tmp/cebench.shards1.txt
/tmp/cebench.check -shards 8 -sim-workers 8 macro-day 2>/dev/null > /tmp/cebench.shards8.txt
cmp /tmp/cebench.shards1.txt /tmp/cebench.shards8.txt || {
	echo "cebench macro-day stdout differs between shards=1 and shards=8/workers=8"; exit 1;
}

echo "== macro-fleet determinism matrix (1000 controllers, shards x workers x -parallel)"
for cfg in "1 1" "1 8" "8 1" "8 8"; do
	set -- $cfg
	/tmp/cebench.check -fleet-tenants 1000 -shards "$1" -sim-workers "$2" \
		macro-fleet 2>/dev/null > "/tmp/cebench.fleet.s$1w$2.txt"
done
for f in /tmp/cebench.fleet.s1w8.txt /tmp/cebench.fleet.s8w1.txt /tmp/cebench.fleet.s8w8.txt; do
	cmp /tmp/cebench.fleet.s1w1.txt "$f" || {
		echo "cebench macro-fleet stdout differs across the shard matrix ($f)"; exit 1;
	}
done
/tmp/cebench.check -fleet-tenants 1000 -parallel 8 macro-fleet 2>/dev/null > /tmp/cebench.fleet.p8.txt
/tmp/cebench.check -fleet-tenants 1000 -parallel 1 macro-fleet 2>/dev/null > /tmp/cebench.fleet.p1.txt
cmp /tmp/cebench.fleet.p1.txt /tmp/cebench.fleet.p8.txt || {
	echo "cebench macro-fleet stdout differs between -parallel 1 and -parallel 8"; exit 1;
}

echo "== trace-check (observability export byte-identical across -parallel)"
sh scripts/trace_check.sh

echo "== zero-alloc gates (steady-state fit/observe/decision must not touch the heap)"
go test -run 'TestFitterZeroAlloc|TestFixedWindowObserveZeroAlloc|TestDecisionZeroAlloc' \
	./internal/fit/ ./internal/predictor/ ./internal/scheduler/

echo "== benchmark smoke (sim/cost/fit/scheduler at 1x, numeric path at 100x, same as make bench)"
go test -run '^$' -bench . -benchtime=1x ./internal/sim/ ./internal/cost/ ./internal/fit/ ./internal/scheduler/
go test -run '^$' -bench . -benchmem -benchtime=100x ./internal/ml/ ./internal/dataset/

echo "OK"
