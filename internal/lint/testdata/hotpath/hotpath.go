// Package hotpath seeds one allocation construct per annotated function,
// plus clean paths that must stay silent: the golden transcript pins both
// what the analyzer catches and what it trusts.
package hotpath

import (
	"fmt"
	"sort"
)

// Clean is annotated and allocation-free: arithmetic, binary search, and a
// call into an unannotated helper whose cleanliness propagates.
//
//cescalint:hotpath
func Clean(xs []float64, x float64) float64 {
	i := sort.SearchFloat64s(xs, x)
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return scale(xs[i], 2)
}

// scale is not annotated; Clean's verdict depends on it staying clean.
func scale(v, k float64) float64 { return v * k }

//cescalint:hotpath
func MakeNew(n int) []float64 {
	buf := make([]float64, n)
	p := new(float64)
	buf[0] = *p
	return buf
}

//cescalint:hotpath
func Literals(n int) int {
	xs := []int{1, 2, n}
	m := map[string]int{"a": 1}
	return xs[0] + m["a"]
}

type point struct{ x, y float64 }

//cescalint:hotpath
func AmpLiteral(a, b float64) *point {
	return &point{a, b}
}

//cescalint:hotpath
func AddressOfLocal(v float64) float64 {
	p := &v
	return *p
}

//cescalint:hotpath
func Append(dst []float64, v float64) []float64 {
	return append(dst, v)
}

//cescalint:hotpath
func Capture(n int) int {
	total := 0
	add := func(k int) { total += k }
	add(n)
	return total
}

type counter struct{ n int }

func (c *counter) inc() { c.n++ }

//cescalint:hotpath
func MethodValue(c *counter) func() {
	return c.inc
}

//cescalint:hotpath
func Boxing(v float64) any {
	return v
}

// Variadic is itself clean; callers pay for the argument slice.
//
//cescalint:hotpath
func Variadic(vs ...float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	return vs[0]
}

//cescalint:hotpath
func CallsVariadic(a, b float64) float64 {
	return Variadic(a, b)
}

//cescalint:hotpath
func Concat(a, b string) string {
	return a + b
}

//cescalint:hotpath
func ToString(bs []byte) string {
	return string(bs)
}

//cescalint:hotpath
func FromString(s string) []byte {
	return []byte(s)
}

//cescalint:hotpath
func Format(v float64) string {
	return fmt.Sprintf("%v", v)
}

//cescalint:hotpath
func MapRange(m map[int]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}

//cescalint:hotpath
func Spawn(ch chan int) {
	go send(ch)
}

func send(ch chan int) { ch <- 1 }

//cescalint:hotpath
func Deferred(c *counter) {
	defer c.inc()
	c.n++
}

// dirty is unannotated; its verdict reaches annotated callers as a reason.
func dirty(n int) []int { return make([]int, n) }

//cescalint:hotpath
func CallsDirty(n int) int {
	return len(dirty(n))
}

// refill carries the sanctioned amortized-growth idiom: the allocation is
// real but cleansed by a reasoned pragma, and annotated callers stay clean.
func refill(buf []int) []int {
	if cap(buf) == len(buf) {
		//cescalint:allow hotpath -- amortized: doubles the high-water buffer once per growth
		return append(buf, 0)
	}
	return buf[:len(buf)+1]
}

//cescalint:hotpath
func UsesRefill(buf []int) []int {
	return refill(buf)
}

// Stepper's Step is annotated on the interface: dynamic calls through it
// are trusted, and every implementing type owes a clean Step.
type Stepper interface {
	// Step folds one sample into the cursor.
	//
	//cescalint:hotpath
	Step(v float64) float64
}

type cleanStepper struct{ acc float64 }

func (s *cleanStepper) Step(v float64) float64 { s.acc += v; return s.acc }

type dirtyStepper struct{ log []float64 }

func (s *dirtyStepper) Step(v float64) float64 {
	s.log = append(s.log, v)
	return v
}

//cescalint:hotpath
func Drive(s Stepper, v float64) float64 {
	return s.Step(v)
}

// Untrusted has no hotpath annotation, so calling through it is opaque.
type Untrusted interface {
	Get() float64
}

//cescalint:hotpath
func DynamicCall(u Untrusted) float64 {
	return u.Get()
}

// PolicyHot is annotated only by a `hotpath` policy entry in
// TestPolicyHotpathEntry; the golden run must stay silent about it.
func PolicyHot(n int) int {
	println(n)
	return n
}
