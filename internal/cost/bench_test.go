package cost

import (
	"testing"

	"repro/internal/workload"
)

func BenchmarkEnumerate(b *testing.B) {
	m := NewModel(workload.MobileNet())
	g := DefaultGrid()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pts := m.Enumerate(g); len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkPareto(b *testing.B) {
	m := NewModel(workload.MobileNet())
	pts := m.Enumerate(DefaultGrid())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if front := Pareto(pts); len(front) == 0 {
			b.Fatal("no front")
		}
	}
}
