// Benchmarks regenerating every table and figure of the paper's evaluation:
// one benchmark per artifact, each executing the full experiment on the
// simulated substrate. Run them all with
//
//	go test -bench=. -benchmem
//
// and print the regenerated tables with -v via cmd/cebench.
package repro_test

import (
	"testing"

	"repro/internal/experiments"
)

// benchSeed matches cmd/cebench's default so benchmark runs regenerate the
// same rows EXPERIMENTS.md records.
const benchSeed = 2023

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Run(id, benchSeed)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// Table I — storage service characteristics.
func BenchmarkTable1StorageCharacteristics(b *testing.B) { benchExperiment(b, "tab1") }

// Table II — storage services under a static allocation, normalized to S3.
func BenchmarkTable2StorageComparison(b *testing.B) { benchExperiment(b, "tab2") }

// Table IV — experimental configurations.
func BenchmarkTable4Configurations(b *testing.B) { benchExperiment(b, "tab4") }

// Fig. 3 — per-stage JCT when reallocating stage-1 resources.
func BenchmarkFig3Reallocation(b *testing.B) { benchExperiment(b, "fig3") }

// Fig. 4 — offline vs online epoch-prediction error.
func BenchmarkFig4PredictionError(b *testing.B) { benchExperiment(b, "fig4") }

// Fig. 7 — the cost-JCT scatter and its Pareto boundary.
func BenchmarkFig7Pareto(b *testing.B) { benchExperiment(b, "fig7") }

// Fig. 9 — hyperparameter-tuning JCT given a budget (4 systems x 5 models).
func BenchmarkFig9HPTGivenBudget(b *testing.B) { benchExperiment(b, "fig9") }

// Fig. 10 — hyperparameter-tuning cost given a QoS constraint.
func BenchmarkFig10HPTGivenQoS(b *testing.B) { benchExperiment(b, "fig10") }

// Fig. 11 — normalized per-trial budget per stage.
func BenchmarkFig11StageAllocation(b *testing.B) { benchExperiment(b, "fig11") }

// Fig. 12 — training JCT given a budget (3 systems x 5 models).
func BenchmarkFig12TrainingGivenBudget(b *testing.B) { benchExperiment(b, "fig12") }

// Fig. 13 — training cost given a QoS constraint.
func BenchmarkFig13TrainingGivenQoS(b *testing.B) { benchExperiment(b, "fig13") }

// Fig. 14 — hyperparameter tuning under varying constraints (LR-YFCC).
func BenchmarkFig14ConstraintSweepHPT(b *testing.B) { benchExperiment(b, "fig14") }

// Fig. 15 — training under varying constraints (LR-YFCC).
func BenchmarkFig15ConstraintSweepTraining(b *testing.B) { benchExperiment(b, "fig15") }

// Fig. 16 — tuning with all systems pinned to the same storage.
func BenchmarkFig16SameStorageHPT(b *testing.B) { benchExperiment(b, "fig16") }

// Fig. 17 — training with all systems pinned to the same storage.
func BenchmarkFig17SameStorageTraining(b *testing.B) { benchExperiment(b, "fig17") }

// Fig. 18 — CE-scaling under each fixed storage service.
func BenchmarkFig18FixedStorage(b *testing.B) { benchExperiment(b, "fig18") }

// Fig. 19 — analytical model validation sweeping the function count.
func BenchmarkFig19ValidationFunctions(b *testing.B) { benchExperiment(b, "fig19") }

// Fig. 20 — analytical model validation sweeping the memory size.
func BenchmarkFig20ValidationMemory(b *testing.B) { benchExperiment(b, "fig20") }

// Fig. 21(a) — planner overhead with and without Pareto pruning.
func BenchmarkFig21aPlannerOverhead(b *testing.B) { benchExperiment(b, "fig21a") }

// Fig. 21(b) — training scheduling overhead (WO-pa, WO-pa-dr ablations).
func BenchmarkFig21bSchedulerOverhead(b *testing.B) { benchExperiment(b, "fig21b") }

// Fig. 21(c) — the impact of the adjustment threshold delta.
func BenchmarkFig21cDeltaSweep(b *testing.B) { benchExperiment(b, "fig21c") }

// Ablation — greedy planner vs exact multiple-choice-knapsack optimum.
func BenchmarkAblationOptimalityGap(b *testing.B) { benchExperiment(b, "abl-gap") }

// Ablation — the end-to-end workflow of Fig. 1 (tune, then train winner).
func BenchmarkAblationWorkflow(b *testing.B) { benchExperiment(b, "abl-workflow") }

// Ablation — BSP vs asynchronous training under identical allocations.
func BenchmarkAblationASP(b *testing.B) { benchExperiment(b, "abl-asp") }

// Ablation — CE-scaling's partitioning applied to Hyperband brackets.
func BenchmarkAblationHyperband(b *testing.B) { benchExperiment(b, "abl-hyperband") }

// Fig. 2 — the Successive-Halving procedure trace.
func BenchmarkFig2SHAProcedure(b *testing.B) { benchExperiment(b, "fig2") }

// Ablation — a fifth storage service (Pocket-style) in the allocation space.
func BenchmarkAblationPocket(b *testing.B) { benchExperiment(b, "abl-pocket") }

// Ablation — failure injection and the value of per-epoch checkpointing.
func BenchmarkAblationFaults(b *testing.B) { benchExperiment(b, "abl-faults") }

// Ablation — BOHB's model-based sampling over the same brackets.
func BenchmarkAblationBOHB(b *testing.B) { benchExperiment(b, "abl-bohb") }

// Extension — model validation across every storage service.
func BenchmarkFig19xValidationStorages(b *testing.B) { benchExperiment(b, "fig19x") }

// Ablation — multi-tenant contention on one serverless account.
func BenchmarkAblationCluster(b *testing.B) { benchExperiment(b, "abl-cluster") }

// Macro — open-loop traffic streams (lazy arrival cursors, batch
// injection, streaming aggregation) on one shared account, default scale.
func BenchmarkMacroTrace(b *testing.B) { benchExperiment(b, "macro-trace") }
