package planner

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/workload"
)

func TestExactWithinBudget(t *testing.T) {
	pl := newPlanner(t, workload.MobileNet(), SHAStages(128, 2, 2))
	cheapest := pl.OptimalStatic(0, 1e15)
	budget := cheapest.Cost * 1.3
	res, ok := pl.ExactMinJCT(budget, 2000)
	if !ok {
		t.Fatal("exact solver found no plan under a workable budget")
	}
	if !res.Feasible || res.Cost > budget*(1+1e-9) {
		t.Errorf("exact plan cost %g exceeds budget %g", res.Cost, budget)
	}
	if len(res.Plan.Stages) != len(pl.Stages) {
		t.Errorf("plan has %d stages, want %d", len(res.Plan.Stages), len(pl.Stages))
	}
}

func TestExactNeverWorseThanGreedy(t *testing.T) {
	for _, w := range []*workload.Model{workload.LRHiggs(), workload.MobileNet(), workload.BERT()} {
		pl := newPlanner(t, w, SHAStages(128, 2, 2))
		cheapest := pl.OptimalStatic(0, 1e15)
		for _, mult := range []float64{1.1, 1.3, 1.8} {
			budget := cheapest.Cost * mult
			greedy := pl.PlanMinJCT(budget)
			exact, ok := pl.ExactMinJCT(budget, 4000)
			if !ok {
				t.Fatalf("%s x%.1f: exact found nothing", w.Name, mult)
			}
			// Allow a sliver for budget discretization (costs round up, so
			// the exact plan may skip a choice the greedy can afford).
			if exact.JCT > greedy.JCT*1.02 {
				t.Errorf("%s x%.1f: exact JCT %g worse than greedy %g", w.Name, mult, exact.JCT, greedy.JCT)
			}
		}
	}
}

func TestGreedyOptimalityGapModerate(t *testing.T) {
	// The paper argues the greedy heuristic suffices; quantify: within 25%
	// of the exact optimum across the evaluated models at a binding budget.
	for _, w := range []*workload.Model{workload.LRHiggs(), workload.MobileNet(), workload.ResNet50()} {
		pl := newPlanner(t, w, SHAStages(256, 2, 2))
		cheapest := pl.OptimalStatic(0, 1e15)
		budget := cheapest.Cost * 1.3
		greedy := pl.PlanMinJCT(budget)
		exact, ok := pl.ExactMinJCT(budget, 4000)
		if !ok {
			t.Fatalf("%s: exact found nothing", w.Name)
		}
		gap := (greedy.JCT - exact.JCT) / exact.JCT
		if gap > 0.25 {
			t.Errorf("%s: greedy optimality gap %.1f%% too large (greedy %g, exact %g)",
				w.Name, 100*gap, greedy.JCT, exact.JCT)
		}
	}
}

func TestExactImpossibleBudget(t *testing.T) {
	pl := newPlanner(t, workload.MobileNet(), SHAStages(64, 2, 2))
	if res, ok := pl.ExactMinJCT(1e-6, 1000); ok {
		t.Errorf("impossible budget returned a plan costing %g", res.Cost)
	}
}

func TestExactRespectsTransitionColdStarts(t *testing.T) {
	// The DP's JCT must equal the planner's own JCT evaluation of the
	// reconstructed plan (the transition-aware accounting matches).
	pl := newPlanner(t, workload.ResNet50(), SHAStages(64, 2, 2))
	cheapest := pl.OptimalStatic(0, 1e15)
	res, ok := pl.ExactMinJCT(cheapest.Cost*1.5, 3000)
	if !ok {
		t.Fatal("no plan")
	}
	if got := pl.JCT(res.Plan); got != res.JCT {
		t.Errorf("reported JCT %g != re-evaluated %g", res.JCT, got)
	}
}

func TestExactHandlesSingleStage(t *testing.T) {
	w := workload.MobileNet()
	m := cost.NewModel(w)
	pareto := m.ParetoSet(cost.DefaultGrid())
	pl, err := New(m, []Stage{{Trials: 4, Epochs: 2}}, pareto)
	if err != nil {
		t.Fatal(err)
	}
	res, ok := pl.ExactMinJCT(1e6, 1000)
	if !ok {
		t.Fatal("single-stage exact failed")
	}
	// With an unconstrained budget the single stage picks the per-stage
	// fastest allocation.
	best := pl.StageTime(0, res.Plan.Stages[0])
	for _, p := range pareto {
		if pl.StageTime(0, p.Alloc) < best-1e-9 {
			t.Errorf("exact picked %v (%.1fs) but %v is faster (%.1fs)",
				res.Plan.Stages[0], best, p.Alloc, pl.StageTime(0, p.Alloc))
			break
		}
	}
}
