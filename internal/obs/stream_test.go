package obs

import (
	"math"
	"testing"
)

func TestHistObserveAndQuantile(t *testing.T) {
	h := NewHist([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 10} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	// v <= bound semantics: 0.5,1 -> bucket 0; 1.5,2 -> bucket 1; 3 -> bucket 2;
	// 10 -> overflow.
	want := []uint64{2, 2, 1, 1}
	for i, c := range want {
		if snap.Counts[i] != c {
			t.Errorf("bucket %d = %d, want %d", i, snap.Counts[i], c)
		}
	}
	if h.Total() != 6 || h.Sum() != 18 {
		t.Errorf("total=%d sum=%g, want 6 and 18", h.Total(), h.Sum())
	}
	if got := h.Mean(); got != 3 {
		t.Errorf("mean=%g, want 3", got)
	}
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("p50=%g, want 2 (3rd of 6 observations is in the <=2 bucket)", got)
	}
	if got := h.Quantile(1); !math.IsInf(got, 1) {
		t.Errorf("p100=%g, want +Inf (overflow bucket occupied)", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("q=0 -> %g, want first occupied bucket's bound 1", got)
	}
}

func TestHistQuantileEmpty(t *testing.T) {
	h := NewHist([]float64{1, 2})
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", got)
	}
	if h.Mean() != 0 {
		t.Errorf("empty histogram mean = %g, want 0", h.Mean())
	}
}

func TestHistMerge(t *testing.T) {
	a, b := NewHist([]float64{1, 2}), NewHist([]float64{1, 2})
	a.Observe(0.5)
	b.Observe(1.5)
	b.Observe(9)
	a.Merge(b)
	snap := a.Snapshot()
	for i, want := range []uint64{1, 1, 1} {
		if snap.Counts[i] != want {
			t.Errorf("merged bucket %d = %d, want %d", i, snap.Counts[i], want)
		}
	}
	if a.Total() != 3 || a.Sum() != 11 {
		t.Errorf("merged total=%d sum=%g, want 3 and 11", a.Total(), a.Sum())
	}
}

func TestHistMergeLayoutMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Merge across bucket layouts did not panic")
		}
	}()
	NewHist([]float64{1, 2}).Merge(NewHist([]float64{1, 3}))
}

// hotpath-gate: obs.Hist.Observe
func TestHistObserveZeroAlloc(t *testing.T) {
	h := NewHist(LatencyBuckets)
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.3) }); n != 0 {
		t.Fatalf("Hist.Observe allocates %.1f times per call; streaming aggregation must be allocation-free", n)
	}
}

func TestJain(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 1},
		{[]float64{0, 0, 0}, 1},
		{[]float64{5, 5, 5, 5}, 1},
		{[]float64{1, 0, 0, 0}, 0.25},      // one tenant hogs: 1/n
		{[]float64{4, 2}, 36.0 / (2 * 20)}, // (4+2)^2 / (2*(16+4))
	}
	for _, c := range cases {
		if got := Jain(c.xs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Jain(%v) = %g, want %g", c.xs, got, c.want)
		}
	}
}
