package faas

import (
	"testing"

	"repro/internal/sim"
)

func TestKillSandboxesClampsAndDecrements(t *testing.T) {
	s := sim.New(1)
	p := NewDefault(s)
	if _, err := p.InvokeGroup(10, 1769); err != nil {
		t.Fatal(err)
	}
	if got := p.KillSandboxes(3); got != 3 {
		t.Fatalf("killed %d, want 3", got)
	}
	if p.InFlight() != 7 {
		t.Fatalf("in flight %d, want 7", p.InFlight())
	}
	// Killing more than exist clamps; the count never goes negative.
	if got := p.KillSandboxes(100); got != 7 {
		t.Fatalf("killed %d, want 7", got)
	}
	if p.InFlight() != 0 {
		t.Fatalf("in flight %d, want 0", p.InFlight())
	}
	if got := p.KillSandboxes(1); got != 0 {
		t.Fatalf("killed %d from an empty platform", got)
	}
	// Killed sandboxes died — they are not warm capacity.
	if p.WarmTotal() != 0 {
		t.Fatalf("warm total %d after kills, want 0", p.WarmTotal())
	}
	// Replacements for killed sandboxes re-admit normally.
	if _, err := p.InvokeGroup(10, 1769); err != nil {
		t.Fatal(err)
	}
	if p.InFlight() != 10 {
		t.Fatalf("in flight %d after re-admission, want 10", p.InFlight())
	}
}

func TestReclaimWarmEvictsSmallestFirstAndCancelsExpiries(t *testing.T) {
	s := sim.New(1)
	p := NewDefault(s)
	if err := p.Prewarm(3, 512); err != nil {
		t.Fatal(err)
	}
	if err := p.Prewarm(2, 1769); err != nil {
		t.Fatal(err)
	}
	if got := p.ReclaimWarm(4); got != 4 {
		t.Fatalf("reclaimed %d, want 4", got)
	}
	if p.WarmCount(512) != 0 || p.WarmCount(1769) != 1 || p.WarmTotal() != 1 {
		t.Fatalf("warm after reclaim: 512=%d 1769=%d total=%d, want 0/1/1",
			p.WarmCount(512), p.WarmCount(1769), p.WarmTotal())
	}
	// The evicted sandboxes' scheduled TTL reclaims were cancelled — a TTL
	// roll must not double-decrement the pool.
	if p.PendingExpiries(512) != 0 || p.PendingExpiries(1769) != 1 {
		t.Fatalf("pending expiries 512=%d 1769=%d, want 0/1",
			p.PendingExpiries(512), p.PendingExpiries(1769))
	}
	s.RunUntil(DefaultWarmTTL + 1)
	if p.WarmTotal() != 0 {
		t.Fatalf("warm total %d after TTL, want 0", p.WarmTotal())
	}
	if got := p.ReclaimWarm(5); got != 0 {
		t.Fatalf("reclaimed %d from an empty pool", got)
	}
}

func TestColdSpikeFactorScalesDrawsNotEstimates(t *testing.T) {
	s1 := sim.New(1)
	calm := NewDefault(s1)
	s2 := sim.New(1)
	spiked := NewDefault(s2)
	spiked.SetColdSpikeFactor(4)

	base, err := calm.InvokeGroup(1, 1769)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := spiked.InvokeGroup(1, 1769)
	if err != nil {
		t.Fatal(err)
	}
	if !base[0].Cold || !hot[0].Cold {
		t.Fatal("expected cold starts")
	}
	// Same seed, same jitter draw: the spike is an exact multiplier.
	if got, want := hot[0].StartDelay, 4*base[0].StartDelay; got != want {
		t.Errorf("spiked cold start %g, want %g", got, want)
	}
	// The analytical estimate keeps the calm model.
	if calm.ColdStartEstimate(1769) != spiked.ColdStartEstimate(1769) {
		t.Error("ColdStartEstimate changed under a spike")
	}
	// Warm starts are unaffected.
	spiked.ReleaseGroup(1, 1769, 1)
	warm, err := spiked.InvokeGroup(1, 1769)
	if err != nil {
		t.Fatal(err)
	}
	if warm[0].Cold || warm[0].StartDelay != spiked.WarmStart() {
		t.Errorf("warm start affected by spike: %+v", warm[0])
	}
	// Factors below 1 reset to neutral.
	spiked.SetColdSpikeFactor(0)
	spiked.ReleaseGroup(1, 1769, 1)
	if spiked.coldSpike != 1 {
		t.Errorf("coldSpike = %g after reset, want 1", spiked.coldSpike)
	}
}
