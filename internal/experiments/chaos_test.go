package experiments

import (
	"bytes"
	"fmt"
	"strconv"
	"testing"

	"repro/internal/obs"
)

// renderChaos runs macro-chaos at the given kernel configuration and
// returns the rendered table plus the merged trace and metrics exports.
func renderChaos(t *testing.T, seed uint64, shards, workers int) (table, trace, metrics string) {
	t.Helper()
	SetMacroSharding(shards, workers)
	defer SetMacroSharding(0, 0)
	c := obs.NewCollector()
	SetCollector(c)
	defer SetCollector(nil)

	tab, err := Run("macro-chaos", seed)
	if err != nil {
		t.Fatalf("macro-chaos(shards=%d workers=%d): %v", shards, workers, err)
	}
	var tb, mb bytes.Buffer
	if err := obs.WriteJSONL(&tb, c.Scopes()); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteMetricsJSON(&mb, c.Scopes()); err != nil {
		t.Fatal(err)
	}
	return tab.String(), tb.String(), mb.String()
}

// TestMacroChaosShardMatrix is the acceptance gate for the fault subsystem
// on the sharded kernel: compiled fault events mutate live platform state
// (kills cancel pending completions, reclaims walk the warm pool, brownouts
// gate the shared store) and the scenario's table, trace export and metrics
// export must still be byte-identical at every (shards, workers)
// combination, because every fault event carries a globally unique
// (time, priority) and every error gate is tenant-private.
func TestMacroChaosShardMatrix(t *testing.T) {
	SetChaosScale(9, 300)
	defer SetChaosScale(0, 0)

	refTab, refTrace, refMetrics := renderChaos(t, 11, 1, 1)
	if refTrace == "" || len(refTrace) < 100 {
		t.Fatalf("reference trace implausibly small: %d bytes", len(refTrace))
	}
	for _, shards := range []int{1, 2, 8} {
		for _, workers := range []int{1, 8} {
			if shards == 1 && workers == 1 {
				continue
			}
			name := fmt.Sprintf("shards=%d,workers=%d", shards, workers)
			tab, trace, metrics := renderChaos(t, 11, shards, workers)
			if tab != refTab {
				t.Errorf("%s: table diverges from shards=1,workers=1:\n--- ref\n%s\n--- got\n%s", name, refTab, tab)
			}
			if trace != refTrace {
				t.Errorf("%s: trace export diverges (%d vs %d bytes)", name, len(refTrace), len(trace))
			}
			if metrics != refMetrics {
				t.Errorf("%s: metrics export diverges", name)
			}
		}
	}
}

// TestMacroChaosSeedSensitivity guards against the scenario collapsing into
// a constant: different seeds must produce different traffic.
func TestMacroChaosSeedSensitivity(t *testing.T) {
	SetChaosScale(4, 120)
	defer SetChaosScale(0, 0)
	a, err := Run("macro-chaos", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("macro-chaos", 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() == b.String() {
		t.Fatal("macro-chaos output identical across seeds")
	}
}

// TestMacroChaosExercisesFaults checks the default-scale run actually
// drives every fault path: sandbox kills, warm reclaims, checkpoint
// retries, cold starts and monitor sheds must all be nonzero.
func TestMacroChaosExercisesFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("default-scale chaos run skipped in -short mode")
	}
	tab, err := Run("macro-chaos", 7)
	if err != nil {
		t.Fatal(err)
	}
	total := tab.Rows[len(tab.Rows)-1]
	// Columns: profile tenants completed killed reclaimed retried shed
	// dropped ckpt_retry ckpt_drop cold cost$.
	for _, col := range []struct {
		idx  int
		name string
	}{
		{2, "completions"}, {3, "kills"}, {4, "reclaims"},
		{6, "sheds"}, {8, "checkpoint retries"}, {10, "cold starts"},
	} {
		if total[col.idx] == "0" {
			t.Errorf("no %s: the %s fault path never fired", col.name, col.name)
		}
	}
	// Kills re-admit their victims: nothing may be lost from the ledger.
	completed, _ := strconv.Atoi(total[2])
	shed, _ := strconv.Atoi(total[6])
	dropped, _ := strconv.Atoi(total[7])
	if got := completed + shed + dropped; got != 24*1000 {
		t.Errorf("arrival ledger: completed+shed+dropped = %d, want %d", got, 24*1000)
	}
}

// TestFaultRestartFigure checks the recovery-policy figure's invariants:
// both faulted policies record the schedule's failures and cost more than
// the calm run, and the figure never reports a degraded or diverged run at
// this schedule (the brownout stays below retry exhaustion).
func TestFaultRestartFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("three full training runs skipped in -short mode")
	}
	tab, err := Run("fault-restart", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want no-fault/immediate/delayed", len(tab.Rows))
	}
	// Columns: policy JCT overhead failures restarts ckpt_retries degraded
	// cost converged.
	for _, row := range tab.Rows[1:] {
		if row[3] == "0" {
			t.Errorf("%s: no failures recorded under the kill schedule", row[0])
		}
		if row[8] != "true" {
			t.Errorf("%s: run did not converge", row[0])
		}
	}
	calm, imm := tab.Rows[0], tab.Rows[1]
	if calm[3] != "0" {
		t.Errorf("no-fault row records failures: %s", calm[3])
	}
	if imm[5] == "0" {
		t.Error("immediate: brownout never forced a checkpoint retry")
	}
}
