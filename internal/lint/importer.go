package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
	"sync"
)

// loadedPkg is one module package parsed and type-checked exactly once per
// run. Analyzers and the importer share the same *types.Package and
// *types.Info, so a types.Object seen while analyzing package A is
// pointer-identical to the one seen while analyzing any package that
// imports A — the property the hotpath fact store is keyed on.
type loadedPkg struct {
	dir   string
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
	err   error
	ready chan struct{} // closed when the fields above are final
}

// moduleImporter resolves imports for type-checking without any network or
// third-party machinery: standard-library packages come from the compiler's
// export data (go/importer, "gc"), and packages inside this module are
// parsed and type-checked from source, recursively, with results cached and
// shared across the whole run. All methods are safe for concurrent use by
// the parallel driver; concurrent loads of the same path block on one
// in-flight load rather than duplicating it.
type moduleImporter struct {
	root   string // module root directory
	module string // module path ("repro")
	fset   *token.FileSet
	std    types.Importer
	stdMu  sync.Mutex // the gc export-data importer is not concurrency-safe
	mu     sync.Mutex // guards pkgs
	pkgs   map[string]*loadedPkg
}

func newModuleImporter(root, module string, fset *token.FileSet) *moduleImporter {
	return &moduleImporter{
		root:   root,
		module: module,
		fset:   fset,
		std:    importer.ForCompiler(fset, "gc", nil),
		pkgs:   make(map[string]*loadedPkg),
	}
}

func (m *moduleImporter) inModule(path string) bool {
	return path == m.module || strings.HasPrefix(path, m.module+"/")
}

// dirFor maps a module import path to its directory under the module root.
func (m *moduleImporter) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, m.module), "/")
	return filepath.Join(m.root, filepath.FromSlash(rel))
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if !m.inModule(path) {
		m.stdMu.Lock()
		defer m.stdMu.Unlock()
		return m.std.Import(path)
	}
	lp, err := m.load(path)
	if err != nil {
		return nil, err
	}
	return lp.pkg, nil
}

// load parses and type-checks the module package at path, memoized for the
// run. The driver analyzes packages in dependency order, so by the time a
// worker loads its target every module dependency is already cached; lazy
// recursive loads only happen for packages outside the target set (single
// fixture runs).
func (m *moduleImporter) load(path string) (*loadedPkg, error) {
	m.mu.Lock()
	if lp, ok := m.pkgs[path]; ok {
		m.mu.Unlock()
		<-lp.ready
		return lp, lp.err
	}
	lp := &loadedPkg{dir: m.dirFor(path), ready: make(chan struct{})}
	m.pkgs[path] = lp
	m.mu.Unlock()
	defer close(lp.ready)

	lp.files, lp.err = m.parseDir(lp.dir)
	if lp.err != nil {
		lp.err = fmt.Errorf("load %q: %w", path, lp.err)
		return lp, lp.err
	}
	lp.info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: m}
	lp.pkg, lp.err = conf.Check(path, m.fset, lp.files, lp.info)
	if lp.err != nil {
		lp.err = fmt.Errorf("typecheck %s: %w", path, lp.err)
	}
	return lp, lp.err
}

// parseDir parses the non-test Go files of one package directory, honouring
// build constraints via go/build. The shared FileSet is safe for concurrent
// AddFile, so parallel workers may parse distinct directories at once.
func (m *moduleImporter) parseDir(dir string) ([]*ast.File, error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(m.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}
