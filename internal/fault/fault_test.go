package fault

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestNewValidatesEvents(t *testing.T) {
	bad := []Event{
		KillAt(10, 0),                  // zero count
		KillAt(-1, 2),                  // negative time
		StragglerWindow(10, 5, 2),      // inverted window
		StragglerWindow(0, 10, 0.5),    // speedup factor
		BrownoutWindow(0, 10, 2, 1.5),  // rate > 1
		BrownoutWindow(0, 10, 2, -0.1), // rate < 0
		{Kind: Straggler, From: 0, To: 5, Factor: 2, ErrorRate: 0.5}, // rate on non-brownout
		LinkDegradeWindow(0, 5, -2, 2),                               // link < -1
	}
	for i, e := range bad {
		if _, err := New(e); err == nil {
			t.Errorf("event %d (%+v) accepted, want error", i, e)
		}
	}
	if _, err := New(StragglerWindow(0, 10, 2), StragglerWindow(5, 15, 3)); err == nil {
		t.Error("overlapping same-kind windows accepted")
	}
	if _, err := New(LinkDegradeWindow(0, 10, 1, 2), LinkDegradeWindow(5, 15, 2, 2)); err != nil {
		t.Errorf("overlapping windows on distinct links rejected: %v", err)
	}
	if _, err := New(StragglerWindow(0, 10, 2), BrownoutWindow(5, 15, 2, 0.1)); err != nil {
		t.Errorf("overlapping windows of distinct kinds rejected: %v", err)
	}
	if _, err := New(StragglerWindow(0, 10, 2), StragglerWindow(10, 20, 3)); err != nil {
		t.Errorf("adjacent half-open windows rejected: %v", err)
	}
}

func TestNilAndEmptySchedulesAreInert(t *testing.T) {
	for name, s := range map[string]*Schedule{"nil": nil, "empty": MustNew()} {
		if s.Active() {
			t.Errorf("%s schedule Active", name)
		}
		if f := s.StragglerFactor(5); f != 1 {
			t.Errorf("%s StragglerFactor = %g", name, f)
		}
		if lat, rate, on := s.BrownoutAt(5); lat != 1 || rate != 0 || on {
			t.Errorf("%s BrownoutAt = %g %g %v", name, lat, rate, on)
		}
		if _, _, ok := s.NextInstant(-1, math.Inf(1)); ok {
			t.Errorf("%s NextInstant found an event", name)
		}
		if n := s.KillsIn(0, math.Inf(1)); n != 0 {
			t.Errorf("%s KillsIn = %d", name, n)
		}
	}
}

func TestWindowQueries(t *testing.T) {
	s := MustNew(
		StragglerWindow(100, 200, 3),
		ColdSpikeWindow(50, 150, 4),
		BrownoutWindow(120, 180, 2.5, 0.25),
		LinkDegradeWindow(10, 20, 1, 6),
		LinkDegradeWindow(30, 40, -1, 7),
	)
	if f := s.StragglerFactor(99.9); f != 1 {
		t.Errorf("before window: %g", f)
	}
	if f := s.StragglerFactor(100); f != 3 {
		t.Errorf("at From: %g", f)
	}
	if f := s.StragglerFactor(200); f != 1 {
		t.Errorf("at To (half-open): %g", f)
	}
	if f := s.ColdSpikeFactor(149); f != 4 {
		t.Errorf("cold spike: %g", f)
	}
	if lat, rate, on := s.BrownoutAt(150); lat != 2.5 || rate != 0.25 || !on {
		t.Errorf("BrownoutAt(150) = %g %g %v", lat, rate, on)
	}
	if lat, _, on := s.BrownoutAt(180); lat != 1 || on {
		t.Errorf("BrownoutAt(180) = %g %v", lat, on)
	}
	if f := s.LinkFactor(15, 1); f != 6 {
		t.Errorf("link 1: %g", f)
	}
	if f := s.LinkFactor(15, 2); f != 1 {
		t.Errorf("link 2 inside link-1 window: %g", f)
	}
	if f := s.LinkFactor(35, 2); f != 7 {
		t.Errorf("wildcard link window: %g", f)
	}
}

func TestInstantCursor(t *testing.T) {
	s := MustNew(
		KillAt(300, 1),
		ReclaimAt(100, 5),
		StragglerWindow(0, 1000, 2),
		KillAt(150, 2),
	)
	ev, idx, ok := s.NextInstant(-1, 200)
	if !ok || ev.Kind != ReclaimWarm || ev.At != 100 {
		t.Fatalf("first instant = %+v ok=%v", ev, ok)
	}
	ev, idx, ok = s.NextInstant(idx, 200)
	if !ok || ev.Kind != KillSandbox || ev.At != 150 {
		t.Fatalf("second instant = %+v ok=%v", ev, ok)
	}
	if _, _, ok = s.NextInstant(idx, 200); ok {
		t.Fatal("instant at 300 returned before 200")
	}
	ev, _, ok = s.NextInstant(idx, 1000)
	if !ok || ev.At != 300 {
		t.Fatalf("third instant = %+v ok=%v", ev, ok)
	}
	if n := s.KillsIn(0, 1000); n != 3 {
		t.Errorf("KillsIn(0,1000) = %d, want 3", n)
	}
	if n := s.KillsIn(200, 1000); n != 1 {
		t.Errorf("KillsIn(200,1000) = %d, want 1", n)
	}
}

func TestGateIsDeterministicAndProportional(t *testing.T) {
	var g Gate
	fails := 0
	const ops, rate = 1000, 0.25
	pattern := make([]bool, ops)
	for i := range pattern {
		pattern[i] = g.Fail(rate)
		if pattern[i] {
			fails++
		}
	}
	if fails != ops*rate {
		t.Errorf("fails = %d, want %g", fails, ops*rate)
	}
	// Same sequence again after Reset: byte-identical decisions.
	g.Reset()
	for i := range pattern {
		if got := g.Fail(rate); got != pattern[i] {
			t.Fatalf("op %d: %v != first run %v", i, got, pattern[i])
		}
	}
	if g.Fail(0) {
		t.Error("rate 0 failed an op")
	}
	if !g.Fail(1) {
		t.Error("rate 1 passed an op")
	}
}

func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseBackoff: 0.5, MaxBackoff: 3}
	want := []float64{0.5, 1, 2, 3, 3}
	for i, w := range want {
		if got := p.Backoff(i); got != w {
			t.Errorf("Backoff(%d) = %g, want %g", i, got, w)
		}
	}
	if got, w := p.TotalBackoff(), 0.5+1+2+3; got != w {
		t.Errorf("TotalBackoff = %g, want %g", got, w)
	}
	var zero RetryPolicy
	if zero.OrDefault() != DefaultRetryPolicy() {
		t.Error("zero policy does not default")
	}
	if p.OrDefault() != p {
		t.Error("explicit policy overridden by default")
	}
}

func TestCompileDrivesOpsInOrder(t *testing.T) {
	s := sim.New(1)
	sch := MustNew(
		KillAt(50, 2),
		ReclaimAt(10, 3),
		StragglerWindow(20, 60, 2),
		BrownoutWindow(30, 40, 3, 0.5),
		ColdSpikeWindow(45, 55, 4),
		LinkDegradeWindow(5, 15, -1, 2),
	)
	var log []string
	n := Compile(sch, s.Main(), 7, Ops{
		Kill:      func(n int) { log = append(log, "kill") },
		Reclaim:   func(n int) { log = append(log, "reclaim") },
		Straggler: func(f float64) { log = append(log, "strag") },
		Brownout:  func(lat, rate float64) { log = append(log, "brown") },
		ColdSpike: func(f float64) { log = append(log, "cold") },
		Link:      func(link int, f float64) { log = append(log, "link") },
	})
	if n != 10 {
		t.Fatalf("Compile scheduled %d events, want 10", n)
	}
	s.Run()
	want := []string{"link", "reclaim", "link", "strag", "brown", "brown", "cold", "kill", "cold", "strag"}
	if len(log) != len(want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

func TestCompileSkipsNilOpsAndInactiveSchedules(t *testing.T) {
	s := sim.New(1)
	if n := Compile(nil, s.Main(), 0, Ops{}); n != 0 {
		t.Errorf("nil schedule compiled %d events", n)
	}
	sch := MustNew(KillAt(1, 1), StragglerWindow(2, 3, 2))
	if n := Compile(sch, s.Main(), 0, Ops{Kill: func(int) {}}); n != 1 {
		t.Errorf("nil-ops compile scheduled %d events, want 1", n)
	}
	s.Run()
}
