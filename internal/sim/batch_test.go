package sim

import (
	"fmt"
	"testing"
)

// batchFiringOrder runs one simulation scheduling the given (time, pri)
// pairs — either individually or through ScheduleBatch in chunks — and
// returns the indices in firing order.
func batchFiringOrder(pairs [][2]float64, chunk int) []int {
	s := New(1)
	sh := s.Main()
	var got []int
	if chunk <= 0 {
		for i, p := range pairs {
			i := i
			sh.SchedulePriority(Time(p[0]), int(p[1]), func() { got = append(got, i) })
		}
	} else {
		for lo := 0; lo < len(pairs); lo += chunk {
			hi := lo + chunk
			if hi > len(pairs) {
				hi = len(pairs)
			}
			batch := make([]BatchEvent, 0, hi-lo)
			for i := lo; i < hi; i++ {
				i := i
				batch = append(batch, BatchEvent{At: Time(pairs[i][0]), Pri: int(pairs[i][1]), Fn: func() { got = append(got, i) }})
			}
			sh.ScheduleBatch(batch)
		}
	}
	s.Run()
	return got
}

// TestScheduleBatchMatchesIndividual pins the batch API's contract: the
// firing order is identical to scheduling the same entries one by one, for
// both the small-batch (sift-up) and large-batch (bottom-up heapify) paths.
func TestScheduleBatchMatchesIndividual(t *testing.T) {
	r := NewRand(42)
	const n = 500
	pairs := make([][2]float64, n)
	for i := range pairs {
		// Coarse times + small priority range force plenty of ties, which
		// the per-shard sequence numbers must break in insertion order.
		pairs[i] = [2]float64{float64(r.Intn(40)), float64(r.Intn(3))}
	}
	ref := batchFiringOrder(pairs, 0)
	if len(ref) != n {
		t.Fatalf("reference fired %d events, want %d", len(ref), n)
	}
	for _, chunk := range []int{1, 7, 64, n} {
		got := batchFiringOrder(pairs, chunk)
		if fmt.Sprint(got) != fmt.Sprint(ref) {
			t.Errorf("chunk=%d: firing order diverges from individual scheduling", chunk)
		}
	}
}

// TestScheduleBatchHeapifyPath forces the bottom-up heapify branch (batch
// much larger than the pending queue) and checks full ordering.
func TestScheduleBatchHeapifyPath(t *testing.T) {
	s := New(7)
	sh := s.Main()
	var got []Time
	sh.Schedule(5, func() { got = append(got, sh.Now()) })
	r := NewRand(9)
	batch := make([]BatchEvent, 300)
	for i := range batch {
		at := Time(r.Float64() * 100)
		batch[i] = BatchEvent{At: at, Fn: func() { got = append(got, sh.Now()) }}
	}
	sh.ScheduleBatch(batch)
	s.Run()
	if len(got) != 301 {
		t.Fatalf("fired %d events, want 301", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("event %d fired at %v after %v", i, got[i], got[i-1])
		}
	}
}

// TestScheduleBatchFromEvent checks an event may batch onto its own shard
// mid-run (the arrival-pump pattern) including entries at the current
// instant, and that the new events fire in the same run.
func TestScheduleBatchFromEvent(t *testing.T) {
	s := New(3)
	sh := s.Main()
	fired := 0
	sh.Schedule(10, func() {
		sh.ScheduleBatch([]BatchEvent{
			{At: 10, Pri: 1, Fn: func() { fired++ }},
			{At: 12, Fn: func() { fired++ }},
		})
	})
	s.Run()
	if fired != 2 {
		t.Fatalf("batch scheduled mid-run fired %d events, want 2", fired)
	}
}

func TestScheduleBatchPastTimePanics(t *testing.T) {
	s := New(1)
	sh := s.Main()
	sh.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("batch entry in the past did not panic")
			}
		}()
		sh.ScheduleBatch([]BatchEvent{{At: 5, Fn: func() {}}})
	})
	s.Run()
}

func TestScheduleBatchCrossShardPanics(t *testing.T) {
	s := New(1)
	s.EnsureShards(2)
	s.SetLookahead(1)
	other := s.Shard(1)
	s.Main().Schedule(1, func() {
		defer func() {
			if recover() == nil {
				t.Error("cross-shard ScheduleBatch did not panic")
			}
		}()
		other.ScheduleBatch([]BatchEvent{{At: 2, Fn: func() {}}})
	})
	s.Run()
}

// TestScheduleBatchRecyclesSlots verifies batch slots return to the free
// list like individually scheduled ones: a steady-state pump does not grow
// the arena.
func TestScheduleBatchRecyclesSlots(t *testing.T) {
	s := New(1)
	sh := s.Main()
	batch := make([]BatchEvent, 64)
	for round := 0; round < 50; round++ {
		at := Time(round * 10)
		for i := range batch {
			batch[i] = BatchEvent{At: at + Time(float64(i)*0.1), Fn: func() {}}
		}
		sh.ScheduleBatch(batch)
		s.Run()
	}
	if sh.allocs > 128 {
		t.Fatalf("steady-state batch pump carved %d fresh slots; free list not reused", sh.allocs)
	}
}
