package sim

import (
	"fmt"
	"math"
)

// Event is a handle to a scheduled callback. Events compare by time, then
// priority (lower runs first), then insertion sequence, which makes
// simultaneous events deterministic.
//
// The handle is a small value (not a pointer into the kernel): it pairs the
// event's arena slot with the generation the slot had when the event was
// scheduled. Once the event fires or its cancellation is reaped, the kernel
// bumps the slot's generation and recycles it, so a stale handle no longer
// matches and Cancel/Canceled on it are safe no-ops (or panics under
// SetStrictCancel) instead of silently acting on an unrelated event that
// reused the slot. The zero Event is inert.
type Event struct {
	slot *eventSlot
	gen  uint64
}

// At reports the virtual time the event is scheduled for, or 0 when the
// handle is zero or stale.
func (e Event) At() Time {
	if e.slot == nil || e.slot.gen != e.gen {
		return 0
	}
	return e.slot.at
}

// Cancel marks the event so that it will be skipped when its time comes.
// Canceling an already-fired (or already-reaped) event is a no-op: the
// handle's generation no longer matches the recycled slot.
func (e Event) Cancel() {
	slot := e.slot
	if slot == nil {
		return
	}
	if slot.gen != e.gen {
		if slot.sh.sim.strictCancel {
			panic("sim: Cancel on a stale event handle (event already fired or reaped)")
		}
		return
	}
	sh := slot.sh
	if d := sh.sim.draining; d != nil && d != sh {
		panic(fmt.Sprintf("sim: shard %d canceled an event owned by shard %d; cross-shard interaction must go through Post", d.idx, sh.idx))
	}
	if sh.sim.parallelActive && !sh.executing {
		panic(fmt.Sprintf("sim: event on shard %d canceled from another shard inside a parallel window", sh.idx))
	}
	slot.canceled = true
}

// Canceled reports whether Cancel has been called on the event. A zero or
// stale handle reports false (the event it referred to is gone), or panics
// under SetStrictCancel.
func (e Event) Canceled() bool {
	if e.slot == nil {
		return false
	}
	if e.slot.gen != e.gen {
		if e.slot.sh.sim.strictCancel {
			panic("sim: Canceled on a stale event handle (event already fired or reaped)")
		}
		return false
	}
	return e.slot.canceled
}

// eventSlot is the arena-resident payload of one scheduled event. The
// comparison keys live in the heap entries; the slot carries the closure
// and the generation counter that invalidates stale handles.
type eventSlot struct {
	fn       func()
	at       Time
	gen      uint64
	canceled bool
	sh       *Shard
}

// heapEntry is one element of a shard's binary heap: the (time, priority,
// sequence) ordering keys inline — so sift comparisons never chase the slot
// pointer — plus the slot holding the payload.
type heapEntry struct {
	at   Time
	pri  int
	seq  uint64
	slot *eventSlot
}

// entryLess is a shard-local queue's total order: (time, priority,
// sequence).
func entryLess(a, b *heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.pri != b.pri {
		return a.pri < b.pri
	}
	return a.seq < b.seq
}

// postMsg is one pending cross-shard send, buffered in the sender's outbox
// until the next window barrier.
type postMsg struct {
	to  *Shard
	at  Time
	pri int
	fn  func()
}

// Shard is one event queue with its own clock, sequence counter and event
// arena. All state a shard's events mutate belongs to that shard alone;
// cross-shard interaction goes through Post.
type Shard struct {
	sim *Simulation
	idx int
	now Time

	heap  []heapEntry
	seq   uint64
	fired uint64

	// free holds recycled slots; arena is the tail of the current
	// allocation block new slots are carved from. Together they make the
	// steady-state schedule/fire loop allocation-free.
	free   []*eventSlot
	arena  []eventSlot
	allocs uint64 // slots carved from fresh arena blocks (tests assert reuse)

	// outbox buffers cross-shard posts until the next window barrier.
	outbox []postMsg

	// executing is true while this shard drains events (set and read by
	// the goroutine draining the shard).
	executing bool
}

// arenaChunk is how many event slots one arena block holds: large enough
// to amortize the block allocation, small enough not to bloat tiny
// simulations.
const arenaChunk = 64

func newShard(s *Simulation, idx int) *Shard {
	return &Shard{sim: s, idx: idx}
}

// Index reports the shard's position in the simulation's shard set.
func (sh *Shard) Index() int { return sh.idx }

// Now returns the shard's current virtual time.
func (sh *Shard) Now() Time { return sh.now }

// EventsFired reports how many events have executed on this shard.
func (sh *Shard) EventsFired() uint64 { return sh.fired }

// Sim returns the owning simulation.
func (sh *Shard) Sim() *Simulation { return sh.sim }

// Rand returns the named deterministic random stream of the owning
// simulation (see Simulation.Rand for the creation and ownership rules).
func (sh *Shard) Rand(name string) *Rand { return sh.sim.Rand(name) }

// Schedule queues fn to run on this shard at absolute virtual time at.
// Scheduling in the past (before the shard's Now) panics.
//
//cescalint:hotpath
func (sh *Shard) Schedule(at Time, fn func()) Event {
	return sh.SchedulePriority(at, 0, fn)
}

// ScheduleAfter queues fn to run on this shard d seconds from the shard's
// now. Negative d panics.
//
//cescalint:hotpath
func (sh *Shard) ScheduleAfter(d Duration, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: ScheduleAfter with negative delay %g", d))
	}
	return sh.SchedulePriority(sh.now+Time(d), 0, fn)
}

// SchedulePriority is Schedule with an explicit tie-break priority; among
// events at the same instant, lower priority values run first.
//
// Only the shard's own events (or setup code running outside Run) may
// schedule onto it; an event on another shard must use Post instead, and
// the kernel panics on violations it can observe.
//
//cescalint:hotpath
func (sh *Shard) SchedulePriority(at Time, priority int, fn func()) Event {
	s := sh.sim
	if d := s.draining; d != nil && d != sh {
		panic(fmt.Sprintf("sim: shard %d scheduled onto shard %d; cross-shard sends must go through Post", d.idx, sh.idx))
	}
	if s.parallelActive && !sh.executing {
		panic(fmt.Sprintf("sim: schedule onto shard %d from another shard inside a parallel window; use Post", sh.idx))
	}
	if at < sh.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, sh.now))
	}
	if math.IsNaN(float64(at)) || math.IsInf(float64(at), 0) {
		panic(fmt.Sprintf("sim: scheduling event at non-finite time %v", float64(at)))
	}
	slot := sh.newSlot()
	slot.fn, slot.at = fn, at
	slot.canceled = false
	sh.enqueue2(at, priority, slot)
	return Event{slot: slot, gen: slot.gen}
}

// Post sends fn to run on shard to at absolute time at with the given
// tie-break priority. Posts are the only sanctioned cross-shard channel:
// they are buffered in the sender's outbox and delivered at the next window
// barrier, and must target a time at least one lookahead past the sender's
// clock — that gap is what lets shards execute a window concurrently
// without observing each other. Posting to the shard itself is allowed and
// follows the same rules. Post requires a finite lookahead
// (Simulation.SetLookahead).
//
//cescalint:hotpath
func (sh *Shard) Post(to *Shard, at Time, priority int, fn func()) {
	s := sh.sim
	if to == nil || to.sim != s {
		panic("sim: Post to a shard of a different simulation")
	}
	// Like Schedule, Post may only be called through the shard whose event
	// is currently executing (or from setup code outside Run): the outbox
	// is single-writer, and the lookahead check below is only meaningful
	// against the true sender's clock.
	if d := s.draining; d != nil && d != sh {
		panic(fmt.Sprintf("sim: shard %d posted through shard %d's outbox; events post through their own shard", d.idx, sh.idx))
	}
	if s.parallelActive && !sh.executing {
		panic(fmt.Sprintf("sim: post through shard %d's outbox from another shard inside a parallel window", sh.idx))
	}
	if math.IsInf(s.lookahead, 1) {
		panic("sim: Post requires a finite lookahead; call SetLookahead before Run")
	}
	if math.IsNaN(float64(at)) || math.IsInf(float64(at), 0) {
		panic(fmt.Sprintf("sim: posting event at non-finite time %v", float64(at)))
	}
	if at < sh.now+Time(s.lookahead) {
		panic(fmt.Sprintf("sim: post at %v violates lookahead: sender shard %d is at %v with lookahead %g", at, sh.idx, sh.now, s.lookahead))
	}
	//cescalint:allow hotpath -- amortized: outbox grows to the per-window high-water post count, then is reused
	sh.outbox = append(sh.outbox, postMsg{to: to, at: at, pri: priority, fn: fn})
}

// PostAfter is Post at d seconds from the shard's now; d below the
// lookahead panics.
func (sh *Shard) PostAfter(to *Shard, d Duration, priority int, fn func()) {
	sh.Post(to, sh.now+Time(d), priority, fn)
}

// BatchEvent is one entry of a ScheduleBatch bulk injection.
type BatchEvent struct {
	At  Time
	Pri int
	Fn  func()
}

// ScheduleBatch schedules every entry onto this shard under the same rules
// as SchedulePriority (own-shard only, no past or non-finite times), with
// sequence numbers assigned in slice order — so the firing order among
// same-(time, priority) entries is the slice order, exactly as if each had
// been scheduled individually.
//
// The point of the batch form is amortization for burst arrivals: when the
// batch is large relative to the pending queue the heap is rebuilt bottom-up
// (Floyd) in O(pending + batch) instead of paying O(batch * log(pending))
// sift-ups; small batches fall back to individual pushes. Batch events
// return no handles and cannot be canceled.
//
//cescalint:hotpath
func (sh *Shard) ScheduleBatch(batch []BatchEvent) {
	s := sh.sim
	if d := s.draining; d != nil && d != sh {
		panic(fmt.Sprintf("sim: shard %d batch-scheduled onto shard %d; cross-shard sends must go through Post", d.idx, sh.idx))
	}
	if s.parallelActive && !sh.executing {
		panic(fmt.Sprintf("sim: batch schedule onto shard %d from another shard inside a parallel window; use Post", sh.idx))
	}
	for i := range batch {
		at := batch[i].At
		if at < sh.now {
			panic(fmt.Sprintf("sim: batch entry %d scheduled at %v before now %v", i, at, sh.now))
		}
		if math.IsNaN(float64(at)) || math.IsInf(float64(at), 0) {
			panic(fmt.Sprintf("sim: batch entry %d scheduled at non-finite time %v", i, float64(at)))
		}
	}
	// Below the amortization break-even, individual sift-ups are cheaper
	// than re-heapifying the whole queue.
	if len(batch)*8 < len(sh.heap) {
		for i := range batch {
			slot := sh.newSlot()
			slot.fn, slot.at = batch[i].Fn, batch[i].At
			slot.canceled = false
			sh.enqueue2(batch[i].At, batch[i].Pri, slot)
		}
		return
	}
	q := sh.heap
	if need := len(q) + len(batch); cap(q) < need {
		//cescalint:allow hotpath -- amortized: grows the heap once to the batch high-water mark, then is reused
		grown := make([]heapEntry, len(q), need)
		copy(grown, q)
		q = grown
	}
	for i := range batch {
		slot := sh.newSlot()
		slot.fn, slot.at = batch[i].Fn, batch[i].At
		slot.canceled = false
		//cescalint:allow hotpath -- no growth: capacity was reserved above, append only extends the length
		q = append(q, heapEntry{at: batch[i].At, pri: batch[i].Pri, seq: sh.seq, slot: slot})
		sh.seq++
	}
	for i := len(q)/2 - 1; i >= 0; i-- {
		siftDown(q, i)
	}
	sh.heap = q
}

// enqueue inserts an already-validated event (a delivered post) into the
// shard's heap, assigning the next sequence number.
func (sh *Shard) enqueue(at Time, priority int, fn func()) {
	slot := sh.newSlot()
	slot.fn, slot.at = fn, at
	slot.canceled = false
	sh.enqueue2(at, priority, slot)
}

// enqueue2 pushes slot onto the heap under (at, priority, next sequence).
func (sh *Shard) enqueue2(at Time, priority int, slot *eventSlot) {
	sh.heapPush(heapEntry{at: at, pri: priority, seq: sh.seq, slot: slot})
	sh.seq++
}

// newSlot returns a slot from the free list or the arena.
func (sh *Shard) newSlot() *eventSlot {
	if n := len(sh.free); n > 0 {
		slot := sh.free[n-1]
		sh.free[n-1] = nil
		sh.free = sh.free[:n-1]
		return slot
	}
	if len(sh.arena) == 0 {
		//cescalint:allow hotpath -- amortized: one arena block per arenaChunk fresh slots; steady state recycles via the free list
		block := make([]eventSlot, arenaChunk)
		for i := range block {
			block[i].sh = sh
		}
		sh.arena = block
	}
	slot := &sh.arena[0]
	sh.arena = sh.arena[1:]
	sh.allocs++
	return slot
}

// recycle returns a fired or reaped slot to the free list, bumping its
// generation so outstanding handles go stale. The closure is dropped so the
// kernel does not pin caller state between reuses.
func (sh *Shard) recycle(slot *eventSlot) {
	slot.fn = nil
	slot.canceled = false
	slot.gen++
	sh.free = append(sh.free, slot)
}

// eligible reports whether the shard has an event inside the window bound.
func (sh *Shard) eligible(bound Time, inclusive bool) bool {
	if len(sh.heap) == 0 {
		return false
	}
	at := sh.heap[0].at
	return at < bound || (inclusive && at == bound)
}

// drain executes the shard's events up to the window bound (exclusive, or
// inclusive at the caller's RunUntil limit), advancing the shard clock to
// each event's time before invoking it. Events fired here may schedule
// further events onto this shard — including inside the same window — and
// post to other shards.
func (sh *Shard) drain(bound Time, inclusive bool) {
	sh.executing = true
	for len(sh.heap) > 0 {
		at := sh.heap[0].at
		if at > bound || (at == bound && !inclusive) {
			break
		}
		e := sh.heapPop()
		slot := e.slot
		if slot.canceled {
			sh.recycle(slot)
			continue
		}
		sh.now = e.at
		sh.fired++
		fn := slot.fn
		slot.fn = nil
		fn()
		sh.recycle(slot)
	}
	sh.executing = false
}

// drainOne pops the shard's head entry and, unless it is a canceled event
// being reaped, fires it. Used by the sequential multi-shard merge loop,
// which re-picks the globally minimal shard between events.
func (sh *Shard) drainOne() {
	e := sh.heapPop()
	slot := e.slot
	if slot.canceled {
		sh.recycle(slot)
		return
	}
	sh.now = e.at
	sh.fired++
	fn := slot.fn
	slot.fn = nil
	sh.executing = true
	fn()
	sh.executing = false
	sh.recycle(slot)
}

// heapPush appends e and sifts it up to its ordered position.
func (sh *Shard) heapPush(e heapEntry) {
	//cescalint:allow hotpath -- amortized: heap grows to the high-water pending-event count, then is reused
	q := append(sh.heap, e)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !entryLess(&q[i], &q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	sh.heap = q
}

// heapPop removes and returns the minimum entry.
func (sh *Shard) heapPop() heapEntry {
	q := sh.heap
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = heapEntry{}
	q = q[:n]
	sh.heap = q
	siftDown(q, 0)
	return top
}

// siftDown restores the heap order below index i after q[i] was replaced.
func siftDown(q []heapEntry, i int) {
	n := len(q)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && entryLess(&q[r], &q[l]) {
			m = r
		}
		if !entryLess(&q[m], &q[i]) {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
}
