#!/bin/sh
# Performance snapshot for the PR 8 traffic-engine pass: the zero-alloc
# trace parser and arrival-cursor microbenchmarks, the kernel's bulk
# ScheduleBatch vs individual scheduling, and the macro-trace scenario —
# 128 open-loop tenant streams (>=10M invocations over a 24h horizon) on
# one shared serverless account — at shards=1 and shards=8 with the
# parallel window executor. Writes BENCH_PR8.json plus the unified
# BENCH.json ({bench, value, unit, pr} rows) covering the measured PR8
# numbers and the curated headline numbers from BENCH_PR2/3/6/7.
#
# Honesty notes:
#   - There is no pre-PR8 traffic engine to diff against; the throughput
#     bar is PR6's macro-day rate on this host (1,839,964 events/sec at
#     shards=1, BENCH_PR6.json) and the run fails if macro-trace lands
#     under it. macro-trace fires ~6 events per invocation (pump, arrive,
#     admit, grant, done, release) versus macro-day's ~2, so clearing the
#     bar means the per-event cost got cheaper, not the events simpler.
#   - The memory discipline claim (peak RSS is O(tenants), independent of
#     invocation count) is demonstrated by running the same 128 tenants at
#     two trace lengths (24h and 12h): invocations halve, RSS stays flat.
#   - On a 1-CPU container the shards=8/workers=8 run measures executor
#     overhead, not speedup; determinism holds at every setting regardless.
#
#   scripts/bench.sh                  # full run, writes BENCH_PR8.json + BENCH.json
#   BENCH_COUNT=5 scripts/bench.sh    # more benchmark samples for benchstat
#   BENCH_OUT=/tmp/b.json scripts/bench.sh
#   TRAFFIC_TENANTS=256 scripts/bench.sh
set -eu

cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-BENCH_PR8.json}"
UNIFIED="${BENCH_UNIFIED_OUT:-BENCH.json}"
COUNT="${BENCH_COUNT:-1}"
SEED=2023
TENANTS="${TRAFFIC_TENANTS:-128}"
RATE="${TRAFFIC_RATE:-1}"
HORIZON="${TRAFFIC_HORIZON:-86400}"
MICRO=/tmp/cebench_pr8_bench.txt

echo "== zero-alloc gates (steady-state fit/observe/decision/traffic/invoke must not touch the heap)"
go test -run 'TestFitterZeroAlloc|TestFixedWindowObserveZeroAlloc|TestDecisionZeroAlloc' \
	./internal/fit/ ./internal/predictor/ ./internal/scheduler/
go test -run 'TestHistObserveZeroAlloc|TestCursorNextZeroAlloc|TestInvoke1SteadyStateZeroAlloc|TestInvoke1DenialZeroAlloc' \
	./internal/obs/ ./internal/traffic/ ./internal/faas/

echo "== traffic-engine microbenchmarks, count=$COUNT"
go test -run '^$' -bench 'BenchmarkParseTrace$' \
	-benchmem -count "$COUNT" ./internal/traffic/ | tee "$MICRO"
go test -run '^$' -bench 'BenchmarkScheduleBatch$|BenchmarkScheduleBurstIndividual$|BenchmarkScheduleRun$' \
	-benchmem -count "$COUNT" ./internal/sim/ | tee -a "$MICRO"

echo "== macro-trace: $TENANTS open-loop streams x ${RATE}/s x ${HORIZON}s (seed $SEED)"
go build -o /tmp/cebench.bench ./cmd/cebench

run_trace() { # $1=shards $2=workers $3=horizon $4=stdout-file $5=stderr-file
	/tmp/cebench.bench -seed "$SEED" -rusage \
		-traffic-tenants "$TENANTS" -traffic-rate "$RATE" -traffic-horizon "$3" \
		-shards "$1" -sim-workers "$2" macro-trace >"$4" 2>"$5"
}

t0=$(date +%s%3N)
run_trace 1 1 "$HORIZON" /tmp/trace.s1.txt /tmp/trace.s1.err
t1=$(date +%s%3N)
s1_ms=$((t1 - t0))

t0=$(date +%s%3N)
run_trace 8 8 "$HORIZON" /tmp/trace.s8.txt /tmp/trace.s8.err
t1=$(date +%s%3N)
s8_ms=$((t1 - t0))

cmp /tmp/trace.s1.txt /tmp/trace.s8.txt || {
	echo "macro-trace stdout differs between shards=1 and shards=8"; exit 1;
}

HALF_HORIZON="$(awk -v h="$HORIZON" 'BEGIN { printf "%g", h / 2 }')"
run_trace 1 1 "$HALF_HORIZON" /tmp/trace.half.txt /tmp/trace.half.err

INV="$(sed -n 's/.*invocations=\([0-9]*\).*/\1/p' /tmp/trace.s1.txt | tail -1)"
EVENTS="$(sed -n 's/.*events=\([0-9]*\).*/\1/p' /tmp/trace.s1.txt | tail -1)"
RSS1="$(sed -n 's/.*peak RSS \([0-9]*\) kB.*/\1/p' /tmp/trace.s1.err | tail -1)"
RSS8="$(sed -n 's/.*peak RSS \([0-9]*\) kB.*/\1/p' /tmp/trace.s8.err | tail -1)"
CORES="$(sed -n 's/.*cores=\([0-9]*\).*/\1/p' /tmp/trace.s1.err | tail -1)"
INV_HALF="$(sed -n 's/.*invocations=\([0-9]*\).*/\1/p' /tmp/trace.half.txt | tail -1)"
RSS_HALF="$(sed -n 's/.*peak RSS \([0-9]*\) kB.*/\1/p' /tmp/trace.half.err | tail -1)"
[ -n "$INV" ] || INV=0
[ -n "$EVENTS" ] || EVENTS=0
[ -n "$RSS1" ] || RSS1=0
[ -n "$RSS8" ] || RSS8=0
[ -n "$CORES" ] || CORES=0
[ -n "$INV_HALF" ] || INV_HALF=0
[ -n "$RSS_HALF" ] || RSS_HALF=0

echo "shards=1/workers=1: ${s1_ms}ms, peak RSS ${RSS1}kB"
echo "shards=8/workers=8: ${s8_ms}ms, peak RSS ${RSS8}kB"
echo "invocations: $INV ($INV_HALF at half horizon), events: $EVENTS (byte-identical stdout across configs)"
echo "half-horizon peak RSS: ${RSS_HALF}kB (flat RSS at half the invocations => O(tenants) memory)"

if [ "$INV" -lt 10000000 ] && [ "$TENANTS" -eq 128 ] && [ "$HORIZON" = 86400 ]; then
	echo "macro-trace produced $INV invocations, expected >= 10M at the default scale"; exit 1
fi
awk -v e="$EVENTS" -v ms="$s1_ms" 'BEGIN {
	eps = ms > 0 ? e * 1000.0 / ms : 0
	printf "events/sec (shards=1): %.0f (bar: 1839964, PR6 macro-day on this host)\n", eps
	if (eps < 1839964) { print "macro-trace events/sec under the PR6 macro-day bar"; exit 1 }
}'

# Summarize microbenchmarks into BENCH_PR8.json: mean ns/op, MB/s and
# allocs/op per name, then the macro-trace numbers.
awk -v s1_ms="$s1_ms" -v s8_ms="$s8_ms" -v inv="$INV" -v events="$EVENTS" \
	-v rss1="$RSS1" -v rss8="$RSS8" -v cores="$CORES" -v seed="$SEED" \
	-v tenants="$TENANTS" -v rate="$RATE" -v horizon="$HORIZON" \
	-v half_horizon="$HALF_HORIZON" -v inv_half="$INV_HALF" -v rss_half="$RSS_HALF" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	for (i = 2; i <= NF; i++) {
		if ($(i) == "ns/op")     { ns[name] += $(i-1); nsn[name]++ }
		if ($(i) == "MB/s")      { mb[name] += $(i-1); mbn[name]++ }
		if ($(i) == "allocs/op") { al[name] += $(i-1); aln[name]++ }
	}
}
END {
	printf "{\n"
	printf "  \"pr\": 8,\n"
	printf "  \"seed\": %d,\n", seed
	printf "  \"note\": \"Traffic engine: lazy arrival cursors (one pending pump event per tenant), zero-alloc trace parsing, bulk ScheduleBatch injection, pooled invocation frames and streaming per-tenant aggregation. No pre-PR8 traffic path exists, so the throughput bar is PR6 macro-day on this host (1839964 events/sec, shards=1) and the memory claim is shown by two trace lengths: half the horizon halves invocations while peak RSS stays flat (O(tenants)). events_per_sec are honest single-host numbers; with cores=1 the shards=8/workers=8 run measures executor overhead, not speedup.\",\n"
	printf "  \"after\": {\n"
	for (name in ns) {
		printf "    \"%s\": {\"ns_per_op\": %.2f", name, ns[name] / nsn[name]
		if (mbn[name] > 0) printf ", \"mb_per_sec\": %.2f", mb[name] / mbn[name]
		if (aln[name] > 0) printf ", \"allocs_per_op\": %.1f", al[name] / aln[name]
		printf "},\n"
	}
	printf "    \"macro_trace\": {\n"
	printf "      \"tenants\": %d,\n", tenants
	printf "      \"rate_per_sec\": %g,\n", rate
	printf "      \"horizon_s\": %g,\n", horizon
	printf "      \"invocations\": %d,\n", inv
	printf "      \"events\": %d,\n", events
	printf "      \"cores\": %d,\n", cores
	eps1 = s1_ms > 0 ? events * 1000.0 / s1_ms : 0
	eps8 = s8_ms > 0 ? events * 1000.0 / s8_ms : 0
	printf "      \"shards1_ms\": %d,\n", s1_ms
	printf "      \"shards1_events_per_sec\": %.0f,\n", eps1
	printf "      \"shards1_peak_rss_kb\": %d,\n", rss1
	printf "      \"shards8_workers8_ms\": %d,\n", s8_ms
	printf "      \"shards8_workers8_events_per_sec\": %.0f,\n", eps8
	printf "      \"shards8_workers8_peak_rss_kb\": %d,\n", rss8
	printf "      \"half_horizon_s\": %g,\n", half_horizon
	printf "      \"half_horizon_invocations\": %d,\n", inv_half
	printf "      \"half_horizon_peak_rss_kb\": %d,\n", rss_half
	if (rss_half > 0) printf "      \"rss_full_over_half\": %.3f,\n", rss1 / rss_half
	printf "      \"pr6_macro_day_events_per_sec_bar\": 1839964,\n"
	printf "      \"stdout_identical_across_configs\": true\n"
	printf "    }\n"
	printf "  }\n"
	printf "}\n"
}' "$MICRO" > "$OUT"

echo "wrote $OUT"

# The unified perf trajectory: one flat {bench, value, unit, pr} row per
# headline number. PR2/3/6/7 rows are the recorded results from
# BENCH_PR2/3/6/7.json (same host); PR8 rows are this run.
PARSE_MBPS="$(awk '/^BenchmarkParseTrace/ { for (i = 2; i <= NF; i++) if ($(i) == "MB/s") { s += $(i-1); n++ } } END { printf "%.2f", (n > 0 ? s / n : 0) }' "$MICRO")"
BATCH_NS="$(awk '/^BenchmarkScheduleBatch-/ || /^BenchmarkScheduleBatch / { for (i = 2; i <= NF; i++) if ($(i) == "ns/op") { s += $(i-1); n++ } } END { printf "%.2f", (n > 0 ? s / n : 0) }' "$MICRO")"
awk -v s1_ms="$s1_ms" -v inv="$INV" -v events="$EVENTS" -v rss1="$RSS1" \
	-v rss_half="$RSS_HALF" -v parse_mbps="$PARSE_MBPS" -v batch_ns="$BATCH_NS" '
BEGIN {
	eps1 = s1_ms > 0 ? events * 1000.0 / s1_ms : 0
	printf "[\n"
	printf "  {\"bench\": \"sim_schedule_run\", \"value\": 12.33, \"unit\": \"ns/op\", \"pr\": 2},\n"
	printf "  {\"bench\": \"cebench_all_parallel\", \"value\": 7518, \"unit\": \"ms\", \"pr\": 2},\n"
	printf "  {\"bench\": \"ml_run_epoch\", \"value\": 507633, \"unit\": \"ns/op\", \"pr\": 3},\n"
	printf "  {\"bench\": \"cebench_all_serial\", \"value\": 3768, \"unit\": \"ms\", \"pr\": 3},\n"
	printf "  {\"bench\": \"macro_day_shards1\", \"value\": 1839964, \"unit\": \"events/s\", \"pr\": 6},\n"
	printf "  {\"bench\": \"macro_day_shards1_peak_rss\", \"value\": 10024, \"unit\": \"kB\", \"pr\": 6},\n"
	printf "  {\"bench\": \"decision_fleet\", \"value\": 1398, \"unit\": \"ns/op\", \"pr\": 7},\n"
	printf "  {\"bench\": \"macro_fleet_shards1\", \"value\": 138182, \"unit\": \"decisions/s\", \"pr\": 7},\n"
	printf "  {\"bench\": \"trace_parse\", \"value\": %s, \"unit\": \"MB/s\", \"pr\": 8},\n", parse_mbps
	printf "  {\"bench\": \"sim_schedule_batch\", \"value\": %s, \"unit\": \"ns/op\", \"pr\": 8},\n", batch_ns
	printf "  {\"bench\": \"macro_trace_invocations\", \"value\": %d, \"unit\": \"invocations\", \"pr\": 8},\n", inv
	printf "  {\"bench\": \"macro_trace_shards1\", \"value\": %.0f, \"unit\": \"events/s\", \"pr\": 8},\n", eps1
	printf "  {\"bench\": \"macro_trace_shards1_peak_rss\", \"value\": %d, \"unit\": \"kB\", \"pr\": 8},\n", rss1
	printf "  {\"bench\": \"macro_trace_half_horizon_peak_rss\", \"value\": %d, \"unit\": \"kB\", \"pr\": 8}\n", rss_half
	printf "]\n"
}' > "$UNIFIED"

echo "wrote $UNIFIED"
