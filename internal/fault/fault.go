// Package fault is the deterministic fault-schedule subsystem: faults are
// explicit event lists — sandbox kills and warm-pool spot reclaims at fixed
// instants, straggler-slowdown / storage-brownout / cold-start-spike windows
// over fixed intervals — validated once and then queried or compiled onto
// the DES kernel. Nothing in a schedule draws randomness at query time, so
// the same schedule against the same seed reproduces the same run byte for
// byte at every shard and worker count (the macro-chaos acceptance matrix).
//
// A schedule stresses three different guarantees of the reproduction:
//
//   - instant events (KillSandbox, ReclaimWarm) mutate real faas.Platform
//     state — in-flight and warm counts drop mid-epoch — and the trainer
//     reacts through its existing checkpoint/restart machinery;
//   - window events (Straggler, Brownout, ColdSpike, LinkDegrade) inflate
//     the observations the Algorithm-2 controller plans from, so re-planning
//     shows up in the decision log as ordinary path= entries;
//   - Brownout error rates drive the trainer's bounded retry/backoff policy
//     into graceful degradation (checkpoint-less mode with a Degraded flag)
//     instead of a panic.
package fault

import (
	"fmt"
	"sort"
)

// Kind identifies one fault event type.
type Kind uint8

const (
	// KillSandbox terminates Count in-flight sandboxes at time At: the BSP
	// barrier aborts and the epoch retries from the last checkpoint.
	KillSandbox Kind = iota
	// ReclaimWarm removes Count warm sandboxes from the pool at time At
	// (spot reclamation of the idle fleet): later invocations cold-start.
	ReclaimWarm
	// Straggler multiplies compute time by Factor over [From, To).
	Straggler
	// Brownout degrades storage over [From, To): transfer/sync latency is
	// multiplied by Factor and a deterministic fraction ErrorRate of
	// storage operations fail.
	Brownout
	// ColdSpike multiplies cold-start latency by Factor over [From, To)
	// (platform incident windows).
	ColdSpike
	// LinkDegrade multiplies the network time of worker Link (-1 = every
	// worker) by Factor over [From, To).
	LinkDegrade
)

func (k Kind) String() string {
	switch k {
	case KillSandbox:
		return "kill"
	case ReclaimWarm:
		return "reclaim"
	case Straggler:
		return "straggler"
	case Brownout:
		return "brownout"
	case ColdSpike:
		return "cold-spike"
	case LinkDegrade:
		return "link-degrade"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// instant reports whether the kind fires at one instant (At) rather than
// holding over a window (From, To).
func (k Kind) instant() bool { return k == KillSandbox || k == ReclaimWarm }

// Event is one fault. Instant kinds use At and Count; window kinds use
// [From, To) with Factor (and ErrorRate / Link where applicable).
type Event struct {
	Kind Kind

	At    float64 // instant kinds: when the fault fires
	Count int     // instant kinds: how many sandboxes

	From, To  float64 // window kinds: half-open active interval
	Factor    float64 // window kinds: latency/compute multiplier (>= 1)
	ErrorRate float64 // Brownout: deterministic failed-op fraction in [0, 1]
	Link      int     // LinkDegrade: worker index, -1 for all
}

// start returns the time the event takes effect, the sort key of a schedule.
func (e Event) start() float64 {
	if e.Kind.instant() {
		return e.At
	}
	return e.From
}

// KillAt returns a KillSandbox event: n in-flight sandboxes die at time t.
func KillAt(t float64, n int) Event { return Event{Kind: KillSandbox, At: t, Count: n} }

// ReclaimAt returns a ReclaimWarm event: n warm sandboxes are reclaimed at t.
func ReclaimAt(t float64, n int) Event { return Event{Kind: ReclaimWarm, At: t, Count: n} }

// StragglerWindow returns a compute-slowdown window.
func StragglerWindow(from, to, factor float64) Event {
	return Event{Kind: Straggler, From: from, To: to, Factor: factor}
}

// BrownoutWindow returns a storage-degradation window: latency scaled by
// latFactor, a deterministic errRate fraction of operations failing.
func BrownoutWindow(from, to, latFactor, errRate float64) Event {
	return Event{Kind: Brownout, From: from, To: to, Factor: latFactor, ErrorRate: errRate}
}

// ColdSpikeWindow returns a cold-start-latency spike window.
func ColdSpikeWindow(from, to, factor float64) Event {
	return Event{Kind: ColdSpike, From: from, To: to, Factor: factor}
}

// LinkDegradeWindow returns a per-link network-degradation window; link -1
// degrades every worker's link.
func LinkDegradeWindow(from, to float64, link int, factor float64) Event {
	return Event{Kind: LinkDegrade, From: from, To: to, Factor: factor, Link: link}
}

// Schedule is a validated, time-sorted fault event list. The zero value and
// nil are both valid empty schedules; every query is nil-safe, so a
// *Schedule can thread through configuration untouched.
type Schedule struct {
	events []Event
}

// New validates events and returns them as a schedule sorted by effect
// time. Windows of the same kind (and, for LinkDegrade, the same link) must
// not overlap: each query then has at most one active window per kind, so
// the compiled start/end events and the direct time queries always agree.
func New(events ...Event) (*Schedule, error) {
	evs := make([]Event, len(events))
	copy(evs, events)
	for i, e := range evs {
		if e.Kind.instant() {
			if e.Count <= 0 {
				return nil, fmt.Errorf("fault: %s event %d: Count %d, want > 0", e.Kind, i, e.Count)
			}
			if e.At < 0 {
				return nil, fmt.Errorf("fault: %s event %d: At %g, want >= 0", e.Kind, i, e.At)
			}
			continue
		}
		if !(e.From >= 0 && e.To > e.From) {
			return nil, fmt.Errorf("fault: %s event %d: window [%g, %g) invalid", e.Kind, i, e.From, e.To)
		}
		if e.Factor < 1 {
			return nil, fmt.Errorf("fault: %s event %d: Factor %g, want >= 1", e.Kind, i, e.Factor)
		}
		if e.Kind == Brownout && (e.ErrorRate < 0 || e.ErrorRate > 1) {
			return nil, fmt.Errorf("fault: brownout event %d: ErrorRate %g, want in [0, 1]", i, e.ErrorRate)
		}
		if e.Kind != Brownout && e.ErrorRate != 0 {
			return nil, fmt.Errorf("fault: %s event %d: ErrorRate is brownout-only", e.Kind, i)
		}
		if e.Kind == LinkDegrade && e.Link < -1 {
			return nil, fmt.Errorf("fault: link-degrade event %d: Link %d, want >= -1", i, e.Link)
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].start() < evs[j].start() })
	for i, e := range evs {
		if e.Kind.instant() {
			continue
		}
		for _, o := range evs[i+1:] {
			if o.Kind != e.Kind || o.From >= e.To {
				continue
			}
			if e.Kind == LinkDegrade && o.Link != e.Link {
				continue
			}
			return nil, fmt.Errorf("fault: overlapping %s windows [%g, %g) and [%g, %g)",
				e.Kind, e.From, e.To, o.From, o.To)
		}
	}
	return &Schedule{events: evs}, nil
}

// MustNew is New panicking on invalid events (for fixed literal schedules).
func MustNew(events ...Event) *Schedule {
	s, err := New(events...)
	if err != nil {
		panic(err)
	}
	return s
}

// Active reports whether the schedule holds any events. The trainer swaps
// its synthetic dice-roll failure model for the schedule only when Active:
// attaching an empty schedule leaves every result bit-identical.
func (s *Schedule) Active() bool { return s != nil && len(s.events) > 0 }

// Len returns the event count.
func (s *Schedule) Len() int {
	if s == nil {
		return 0
	}
	return len(s.events)
}

// Events returns a copy of the sorted event list.
func (s *Schedule) Events() []Event {
	if s == nil {
		return nil
	}
	return append([]Event(nil), s.events...)
}

// factorAt scans for the kind's window covering t. Schedules are sorted by
// start time, so the scan stops at the first window opening after t; with
// non-overlapping same-kind windows at most one can match. The per-epoch
// decision path queries this several times per epoch, so it must stay
// allocation-free.
//
//cescalint:hotpath
func (s *Schedule) factorAt(kind Kind, t float64, link int) float64 {
	if s == nil {
		return 1
	}
	for _, e := range s.events {
		if e.start() > t {
			break
		}
		if e.Kind != kind || t >= e.To {
			continue
		}
		if kind == LinkDegrade && e.Link != -1 && e.Link != link {
			continue
		}
		return e.Factor
	}
	return 1
}

// StragglerFactor returns the compute-time multiplier active at t (1 when
// no straggler window covers t).
//
//cescalint:hotpath
func (s *Schedule) StragglerFactor(t float64) float64 { return s.factorAt(Straggler, t, 0) }

// ColdSpikeFactor returns the cold-start multiplier active at t.
//
//cescalint:hotpath
func (s *Schedule) ColdSpikeFactor(t float64) float64 { return s.factorAt(ColdSpike, t, 0) }

// LinkFactor returns the network-time multiplier for worker link at t.
//
//cescalint:hotpath
func (s *Schedule) LinkFactor(t float64, link int) float64 { return s.factorAt(LinkDegrade, t, link) }

// BrownoutAt returns the storage state at t: the latency multiplier, the
// deterministic error rate, and whether a brownout window covers t.
//
//cescalint:hotpath
func (s *Schedule) BrownoutAt(t float64) (latFactor, errRate float64, active bool) {
	if s == nil {
		return 1, 0, false
	}
	for _, e := range s.events {
		if e.From > t {
			break
		}
		if e.Kind == Brownout && t < e.To {
			return e.Factor, e.ErrorRate, true
		}
	}
	return 1, 0, false
}

// NextInstant returns the first instant event (kill or reclaim) after index
// cursor that takes effect strictly before `before`, along with its index.
// Callers keep the returned index as the new cursor so each instant fires
// exactly once; start from cursor -1.
//
//cescalint:hotpath
func (s *Schedule) NextInstant(cursor int, before float64) (ev Event, idx int, ok bool) {
	if s == nil {
		return Event{}, cursor, false
	}
	for i := cursor + 1; i < len(s.events); i++ {
		e := s.events[i]
		if !e.Kind.instant() {
			continue
		}
		if e.At >= before {
			return Event{}, cursor, false
		}
		return e, i, true
	}
	return Event{}, cursor, false
}

// KillsIn counts the sandboxes KillSandbox events terminate in [from, to)
// (the planner's what-if query).
//
//cescalint:hotpath
func (s *Schedule) KillsIn(from, to float64) int {
	if s == nil {
		return 0
	}
	n := 0
	for _, e := range s.events {
		if e.start() >= to {
			break
		}
		if e.Kind == KillSandbox && e.At >= from && e.At < to {
			n += e.Count
		}
	}
	return n
}

// Gate is the deterministic substitute for a random error source inside
// brownout windows: an accumulator fails exactly every 1/rate-th operation,
// so the failed-op set depends only on the operation sequence, never on a
// random stream or on shard layout. The zero value is ready to use.
type Gate struct {
	acc float64
}

// Fail reports whether the next operation fails under the given error rate,
// advancing the accumulator.
//
//cescalint:hotpath
func (g *Gate) Fail(rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	g.acc += rate
	if g.acc >= 1 {
		g.acc--
		return true
	}
	return false
}

// Reset clears the accumulator.
func (g *Gate) Reset() { g.acc = 0 }

// RetryPolicy bounds how the trainer and planner respond to injected
// storage errors: at most MaxAttempts tries per operation with exponential
// backoff between them. Exhausting the attempts is not an error — callers
// degrade gracefully (checkpoint-less mode with a Degraded flag).
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per operation (>= 1).
	MaxAttempts int
	// BaseBackoff is the wait before the second attempt, in seconds;
	// attempt k waits BaseBackoff * 2^(k-1).
	BaseBackoff float64
	// MaxBackoff caps any single wait (0 = uncapped).
	MaxBackoff float64
}

// DefaultRetryPolicy returns the calibration the trainer uses: four
// attempts, 0.25 s initial backoff, 4 s cap.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseBackoff: 0.25, MaxBackoff: 4}
}

// OrDefault returns the policy, or DefaultRetryPolicy for the zero value.
func (p RetryPolicy) OrDefault() RetryPolicy {
	if p.MaxAttempts <= 0 {
		return DefaultRetryPolicy()
	}
	return p
}

// Backoff returns the wait after failed attempt number `attempt` (0-based):
// BaseBackoff doubled per attempt, clamped to MaxBackoff.
func (p RetryPolicy) Backoff(attempt int) float64 {
	b := p.BaseBackoff
	for i := 0; i < attempt; i++ {
		b *= 2
		if p.MaxBackoff > 0 && b >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if p.MaxBackoff > 0 && b > p.MaxBackoff {
		return p.MaxBackoff
	}
	return b
}

// TotalBackoff returns the wall time a fully exhausted operation spends
// waiting between its attempts (the planner's worst-case what-if penalty).
func (p RetryPolicy) TotalBackoff() float64 {
	t := 0.0
	for i := 0; i+1 < p.MaxAttempts; i++ {
		t += p.Backoff(i)
	}
	return t
}
