package fit

import "testing"

func BenchmarkFitInverseLinear(b *testing.B) {
	xs, ys := genInverseLinear(0.2, 1.0, 0.5, 0.02, 40, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(InverseLinear{}, xs, ys, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitPowerLaw(b *testing.B) {
	m := PowerLaw{}
	var xs, ys []float64
	for e := 1; e <= 40; e++ {
		xs = append(xs, float64(e))
		ys = append(ys, m.Eval([]float64{2, 0.7, 0.3}, float64(e)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(m, xs, ys, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFitterCold is the zero-alloc replacement for the package Fit on
// the same dataset as BenchmarkFitInverseLinear (bit-identical results).
func BenchmarkFitterCold(b *testing.B) {
	xs, ys := genInverseLinear(0.2, 1.0, 0.5, 0.02, 40, 1)
	f, err := NewFitter(InverseLinear{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Fit(xs, ys, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFitterWarm measures the steady-state online refit: same data
// window shifting by one observation per call, seeded from the previous
// optimum.
func BenchmarkFitterWarm(b *testing.B) {
	xs, ys := genInverseLinear(0.2, 1.0, 0.5, 0.02, 136, 1)
	f, err := NewFitter(InverseLinear{})
	if err != nil {
		b.Fatal(err)
	}
	f.SetWarmStart(true)
	const w = 40
	if _, err := f.Fit(xs[:w], ys[:w], Options{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := (i + 1) % (len(xs) - w)
		if _, err := f.Fit(xs[lo:lo+w], ys[lo:lo+w], Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
