// Package simbackend adapts the discrete-event simulation substrate
// (internal/faas + internal/storage + internal/sim) to the platform
// interfaces. It is the default backend: every experiment and every seed
// test runs on it, and its construction is bit-identical to the historical
// trainer.NewRunner wiring so existing results do not move.
package simbackend

import (
	"repro/internal/faas"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/pricing"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Backend is the DES substrate behind the platform interfaces.
type Backend struct {
	sim      *sim.Simulation
	plat     *faas.Platform
	store    *storage.Store
	prices   pricing.PriceBook
	services map[storage.Kind]*storage.Service
	obs      *obs.Observer

	compute simCompute
	params  simParams
	clock   simClock
}

// New returns a deterministic simulated substrate seeded with seed, wired
// exactly like the historical default runner: default platform limits,
// startup model, price book and one storage model per extended kind.
func New(seed uint64) *Backend {
	s := sim.New(seed)
	pb := pricing.Default()
	b := &Backend{
		sim:      s,
		plat:     faas.NewDefault(s),
		store:    storage.NewStore(),
		prices:   pb,
		services: make(map[storage.Kind]*storage.Service),
	}
	for _, k := range storage.ExtendedKinds() {
		b.services[k] = storage.New(k, pb)
	}
	b.compute = simCompute{b}
	b.params = simParams{b}
	b.clock = simClock{b}
	return b
}

// Compute implements platform.Backend.
func (b *Backend) Compute() platform.Compute { return b.compute }

// Params implements platform.Backend.
func (b *Backend) Params() platform.ParamStore { return b.params }

// Clock implements platform.Backend.
func (b *Backend) Clock() platform.Clock { return b.clock }

// Rand implements platform.Backend via the simulation's named streams.
func (b *Backend) Rand(name string) *sim.Rand { return b.sim.Rand(name) }

// Prices implements platform.Backend.
func (b *Backend) Prices() pricing.PriceBook { return b.prices }

// Name implements platform.Backend.
func (b *Backend) Name() string { return "sim" }

// SetObserver implements platform.Observable: the serverless platform's
// events/metrics and the parameter-store operation counters all record into
// o, stamped with the DES clock.
func (b *Backend) SetObserver(o *obs.Observer) {
	b.obs = o
	b.plat.SetObserver(o)
}

// Sim exposes the discrete-event kernel for drivers that schedule their own
// events on the shared virtual clock (the multi-tenant cluster scheduler).
func (b *Backend) Sim() *sim.Simulation { return b.sim }

// ConfigureSharding implements platform.ShardedKernel: it grows the kernel
// to at least shards shards, sets the conservative lookahead window (the
// minimum delay of any cross-shard Post; pass +Inf for none) and bounds how
// many shards may advance concurrently inside one window. Call before
// driving events; the defaults (1 shard, 1 worker, infinite lookahead)
// reproduce the historical single-queue backend exactly.
func (b *Backend) ConfigureSharding(shards, workers int, lookahead float64) {
	b.sim.EnsureShards(shards)
	b.sim.SetWorkers(workers)
	b.sim.SetLookahead(lookahead)
}

// TenantPlatform returns a new serverless account owned by kernel shard
// `shard`, with its own limits and its own startup-jitter stream derived
// from name. Tenant accounts on distinct shards advance concurrently inside
// lookahead windows; the backend's default platform (shard 0) is untouched.
func (b *Backend) TenantPlatform(name string, shard int, limits faas.Limits) *faas.Platform {
	return faas.NewOnShard(b.sim.Shard(shard), "faas.startup/"+name, limits, faas.DefaultStartup(), b.prices)
}

// Platform exposes the underlying simulated serverless platform.
func (b *Backend) Platform() *faas.Platform { return b.plat }

// Store exposes the underlying in-memory parameter store.
func (b *Backend) Store() *storage.Store { return b.store }

// --- Compute adapter ---

type simCompute struct{ b *Backend }

func (c simCompute) InvokeGroup(n, memMB int) ([]platform.Invocation, error) {
	invs, err := c.b.plat.InvokeGroup(n, memMB)
	if err != nil {
		return nil, err
	}
	out := make([]platform.Invocation, len(invs))
	for i, inv := range invs {
		out[i] = platform.Invocation{MemMB: inv.MemMB, StartDelay: inv.StartDelay, Cold: inv.Cold}
	}
	return out, nil
}

func (c simCompute) ReleaseGroup(n, memMB int, secondsEach float64) {
	c.b.plat.ReleaseGroup(n, memMB, secondsEach)
}

func (c simCompute) BillCompute(n, memMB int, secondsEach float64) {
	c.b.plat.BillCompute(n, memMB, secondsEach)
}

func (c simCompute) ColdStartEstimate(memMB int) float64 {
	return c.b.plat.ColdStartEstimate(memMB)
}

func (c simCompute) MaxConcurrency() int { return c.b.plat.Limits().MaxConcurrency }

func (c simCompute) InFlight() int { return c.b.plat.InFlight() }

func (c simCompute) Meter() platform.ComputeMeter {
	m := c.b.plat.Meter()
	return platform.ComputeMeter{
		Invocations: m.Invocations,
		GBSeconds:   m.GBSeconds,
		InvokeCost:  m.InvokeCost,
		ComputeCost: m.ComputeCost,
	}
}

// --- ParamStore adapter ---

type simParams struct{ b *Backend }

func (p simParams) Service(kind platform.StorageKind) platform.StorageService {
	return p.b.services[kind]
}

func (p simParams) Put(key string, vec []float64) error {
	p.b.store.Put(key, vec)
	if p.b.obs.Enabled() {
		p.b.obs.Stats().Inc("store.puts")
		p.b.obs.Stats().Add("store.put_floats", float64(len(vec)))
	}
	return nil
}

func (p simParams) Get(key string) ([]float64, bool, error) {
	vec, ok := p.b.store.Get(key)
	if p.b.obs.Enabled() {
		p.b.obs.Stats().Inc("store.gets")
		p.b.obs.Stats().Add("store.get_floats", float64(len(vec)))
	}
	return vec, ok, nil
}

func (p simParams) LoadCost(n int) float64 { return storage.LoadCost(p.b.prices, n) }

func (p simParams) Stats() platform.StoreStats {
	st := p.b.store.Stats()
	return platform.StoreStats{Puts: st.Puts, Gets: st.Gets}
}

// --- Clock adapter ---

type simClock struct{ b *Backend }

func (c simClock) Now() float64 { return float64(c.b.sim.Now()) }

func (c simClock) Advance(d float64) {
	if d <= 0 {
		return
	}
	c.b.sim.RunUntil(c.b.sim.Now() + sim.Time(d))
}
