package trainer

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/platform"
	"repro/internal/workload"
)

func failureJob(rate float64, noCheckpoint bool, seed uint64) (*Result, error) {
	w := workload.MobileNet()
	r := NewRunner(seed)
	r.Noise.FailureRate = rate
	return r.Run(Config{
		Workload:          w,
		Engine:            w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, seed),
		Alloc:             cost.Allocation{N: 10, MemMB: 1769, Storage: platform.S3},
		TargetLoss:        w.TargetLoss,
		MaxEpochs:         400,
		DisableCheckpoint: noCheckpoint,
	})
}

func TestNoFailuresWithoutInjection(t *testing.T) {
	res, err := failureJob(0, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 || res.FailureTime != 0 {
		t.Errorf("failures injected without a rate: %d / %g", res.Failures, res.FailureTime)
	}
}

func TestFailuresSlowTheJobButItConverges(t *testing.T) {
	clean, err := failureJob(0, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := failureJob(0.01, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !faulty.Converged {
		t.Fatalf("checkpointed job should survive failures (loss %g)", faulty.FinalLoss)
	}
	if faulty.Failures == 0 {
		t.Fatal("1% per-function failure rate at n=10 should produce failures")
	}
	if faulty.JCT <= clean.JCT {
		t.Errorf("failures should inflate JCT: %g vs clean %g", faulty.JCT, clean.JCT)
	}
	// Checkpointing bounds the damage: the same number of engine epochs.
	if faulty.Epochs != clean.Epochs {
		t.Errorf("checkpointed epochs %d != clean %d", faulty.Epochs, clean.Epochs)
	}
	if faulty.FailureTime <= 0 {
		t.Error("failure time not accounted")
	}
}

func TestFailureAccountingBalances(t *testing.T) {
	res, err := failureJob(0.02, false, 3)
	if err != nil {
		t.Fatal(err)
	}
	sum := res.ComputeTime + res.SyncTime + res.OverheadTime
	if diff := sum - res.JCT; diff > 1e-6*res.JCT || diff < -1e-6*res.JCT {
		t.Errorf("JCT %g != components %g", res.JCT, sum)
	}
	if res.FailureTime > res.OverheadTime {
		t.Error("failure time exceeds total overhead")
	}
}

func TestCheckpointingBeatsNoCheckpointUnderFailures(t *testing.T) {
	// The point of checkpointing through storage: with per-epoch
	// checkpoints a crash retries one epoch; without them it loses all
	// progress, so the job needs far more wall epochs (or never finishes).
	with, err := failureJob(0.008, false, 5)
	if err != nil {
		t.Fatal(err)
	}
	without, err := failureJob(0.008, true, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !with.Converged {
		t.Fatal("checkpointed run should converge")
	}
	if without.Converged && without.Epochs <= with.Epochs {
		t.Errorf("no-checkpoint run converged in %d epochs <= checkpointed %d; restarts had no cost",
			without.Epochs, with.Epochs)
	}
}

func TestFailedAttemptsAreBilled(t *testing.T) {
	clean, err := failureJob(0, false, 7)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := failureJob(0.02, false, 7)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Failures == 0 {
		t.Skip("no failures drawn at this seed")
	}
	// Same engine epochs, strictly more bill: the platform charges for
	// crashed attempts too.
	if faulty.TotalCost <= clean.TotalCost {
		t.Errorf("faulty cost %g should exceed clean %g", faulty.TotalCost, clean.TotalCost)
	}
}
