package lint

import (
	"go/ast"
	"path/filepath"
	"strconv"
)

// Shardsafe confines concurrency to the sharded kernel's sanctioned
// executor file.
//
// The DES kernel's determinism argument (DESIGN.md "Sharded kernel") rests
// on there being exactly one place where goroutines exist: the conservative
// window executor, which only runs whole shards between barriers. Any other
// goroutine, channel, select, or sync/atomic use inside the kernel package
// would create an ordering the (time, priority, seq) merge does not govern,
// and such a bug can stay invisible for months because a 1-CPU run
// serializes it away. Shardsafe makes the confinement structural: the
// policy marks the kernel package `shard-restricted`, lists the executor
// as `shard-exempt`, and every concurrency construct elsewhere in the
// package fails `make check` at parse time. Test files are not linted
// (the importer only loads production sources), so tests remain free to
// spawn goroutines at the kernel.
var Shardsafe = &Analyzer{
	Name:  "shardsafe",
	Doc:   "confine goroutines, channels, select and sync to the sanctioned parallel executor file in shard-restricted packages",
	Scope: ScopeAll,
	Run:   runShardsafe,
}

func runShardsafe(p *Pass) {
	if !p.Policy.IsShardRestricted(p.Path) {
		return
	}
	for _, f := range p.Files {
		name := p.Path + "/" + filepath.Base(p.Fset.Position(f.Pos()).Filename)
		if p.Policy.IsShardExempt(name) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "sync" || path == "sync/atomic" {
				p.Reportf(imp.Pos(), "import %q outside the shard-exempt executor; kernel synchronization lives only in the sanctioned parallel executor file", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.GoStmt:
				p.Reportf(v.Pos(), "go statement outside the shard-exempt executor; shards may only run concurrently under the sanctioned window executor")
			case *ast.SelectStmt:
				p.Reportf(v.Pos(), "select statement outside the shard-exempt executor; cross-shard communication goes through Post mailboxes, not channels")
			case *ast.ChanType:
				p.Reportf(v.Pos(), "channel type outside the shard-exempt executor; cross-shard communication goes through Post mailboxes, not channels")
			}
			return true
		})
	}
}
