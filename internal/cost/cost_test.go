package cost

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/storage"
	"repro/internal/workload"
)

func lrModel() *Model   { return NewModel(workload.LRHiggs()) }
func mnModel() *Model   { return NewModel(workload.MobileNet()) }
func bertModel() *Model { return NewModel(workload.BERT()) }

func TestFeasibility(t *testing.T) {
	m := lrModel()
	cases := []struct {
		a    Allocation
		want bool
	}{
		{Allocation{N: 10, MemMB: 1769, Storage: storage.S3}, true},
		{Allocation{N: 0, MemMB: 1769, Storage: storage.S3}, false},       // no functions
		{Allocation{N: 5000, MemMB: 1769, Storage: storage.S3}, false},    // over concurrency cap
		{Allocation{N: 10, MemMB: 64, Storage: storage.S3}, false},        // invalid memory
		{Allocation{N: 1, MemMB: 1769, Storage: storage.S3}, false},       // 2.4GB partition won't fit
		{Allocation{N: 10, MemMB: 1769, Storage: storage.DynamoDB}, true}, // small model fits Dynamo
	}
	for _, c := range cases {
		if got := m.Feasible(c.a); got != c.want {
			t.Errorf("Feasible(%v) = %v, want %v", c.a, got, c.want)
		}
	}
	// MobileNet (12MB) exceeds DynamoDB's 400KB item limit.
	if mnModel().Feasible(Allocation{N: 10, MemMB: 1769, Storage: storage.DynamoDB}) {
		t.Error("MobileNet on DynamoDB must be infeasible (N/A in Table II)")
	}
}

func TestEpochTimeComponents(t *testing.T) {
	m := lrModel()
	a := Allocation{N: 10, MemMB: 1769, Storage: storage.S3}
	// k = 11M / (10 * 10k) = 110 iterations.
	if k := m.Iterations(a); k != 110 {
		t.Fatalf("k = %d, want 110", k)
	}
	// Compute: partition (D/10) at UBase (1 vCPU at 1769MB), inflated by
	// the expected straggler penalty for n=10.
	straggler := math.Exp(m.StragglerSigma * math.Sqrt(2*math.Log(10)))
	wantCompute := m.Workload.Dataset.SizeMB / 10 * m.Workload.UBase * straggler
	if got := m.ComputeTime(a); math.Abs(got-wantCompute) > 1e-9 {
		t.Errorf("ComputeTime = %g, want %g", got, wantCompute)
	}
	// Disabling the correction recovers the bare Eq. 2 term. (A fresh model:
	// Model embeds its memoization caches and must not be copied.)
	noStrag := lrModel()
	noStrag.StragglerSigma = 0
	if got, want := noStrag.ComputeTime(a), m.Workload.Dataset.SizeMB/10*m.Workload.UBase; math.Abs(got-want) > 1e-9 {
		t.Errorf("bare ComputeTime = %g, want %g", got, want)
	}
	// Sync: 110 iterations of the S3 (3n-2) pattern.
	svc := m.Service(storage.S3)
	wantSync := 110 * svc.SyncTime(10, m.Workload.ParamsMB)
	if got := m.SyncTime(a); math.Abs(got-wantSync) > 1e-9 {
		t.Errorf("SyncTime = %g, want %g", got, wantSync)
	}
	if got := m.EpochTime(a); math.Abs(got-(wantCompute+wantSync)) > 1e-9 {
		t.Errorf("EpochTime = %g, want %g", got, wantCompute+wantSync)
	}
	// Load: partition at B_S3.
	if got, want := m.LoadTime(a), m.Workload.Dataset.SizeMB/10/80; math.Abs(got-want) > 1e-9 {
		t.Errorf("LoadTime = %g, want %g", got, want)
	}
}

func TestMoreMemoryFasterEpochUntilCap(t *testing.T) {
	m := mnModel()
	base := Allocation{N: 10, MemMB: 1024, Storage: storage.S3}
	faster := Allocation{N: 10, MemMB: 4096, Storage: storage.S3}
	if m.EpochTime(faster) >= m.EpochTime(base) {
		t.Error("more memory should shorten the epoch")
	}
}

func TestMoreFunctionsShiftTimeToSync(t *testing.T) {
	m := bertModel()
	few := Allocation{N: 5, MemMB: 4096, Storage: storage.S3}
	many := Allocation{N: 50, MemMB: 4096, Storage: storage.S3}
	if m.ComputeTime(many) >= m.ComputeTime(few) {
		t.Error("more functions should cut per-function compute")
	}
	fewSyncPerIter := m.Service(storage.S3).SyncTime(5, 340)
	manySyncPerIter := m.Service(storage.S3).SyncTime(50, 340)
	if manySyncPerIter <= fewSyncPerIter {
		t.Error("per-iteration sync must grow with function count")
	}
}

func TestVMPSSyncsFasterThanS3ForBigModels(t *testing.T) {
	m := bertModel()
	s3 := Allocation{N: 10, MemMB: 4096, Storage: storage.S3}
	vm := Allocation{N: 10, MemMB: 4096, Storage: storage.VMPS}
	if m.SyncTime(vm) >= m.SyncTime(s3) {
		t.Error("VM-PS should synchronize a 340MB model faster than S3")
	}
}

func TestStorageCostModels(t *testing.T) {
	m := lrModel()
	s3 := Allocation{N: 10, MemMB: 1769, Storage: storage.S3}
	vm := Allocation{N: 10, MemMB: 1769, Storage: storage.VMPS}
	if m.StorageEpochCost(s3) <= 0 {
		t.Error("S3 epoch storage cost should be positive (request charges)")
	}
	if m.StorageEpochCost(vm) <= 0 {
		t.Error("VM-PS epoch storage cost should be positive (runtime charges)")
	}
	if got := m.EpochCost(s3); got <= m.FunctionEpochCost(s3) {
		t.Error("EpochCost should include storage")
	}
}

func TestJobCostIncludesInvocationAndLoad(t *testing.T) {
	m := lrModel()
	a := Allocation{N: 10, MemMB: 1769, Storage: storage.S3}
	oneEpoch := m.JobCost(a, 1)
	perEpoch := m.EpochCost(a)
	if oneEpoch <= perEpoch {
		t.Error("JobCost must add invocation + load charges on top of the epoch bill")
	}
	// Job cost grows with epochs.
	if m.JobCost(a, 10) <= m.JobCost(a, 5) {
		t.Error("JobCost not monotone in epochs")
	}
}

func TestJobTimeComposition(t *testing.T) {
	m := lrModel()
	a := Allocation{N: 10, MemMB: 1769, Storage: storage.S3}
	t10 := m.JobTime(a, 10)
	t11 := m.JobTime(a, 11)
	if diff := t11 - t10; math.Abs(diff-m.EpochTime(a)) > 1e-9 {
		t.Errorf("JobTime epoch increment = %g, want EpochTime %g", diff, m.EpochTime(a))
	}
	if t10 <= 10*m.EpochTime(a) {
		t.Error("JobTime should include startup and load")
	}
}

func TestRuntimeChargedStorageBillsWholeJob(t *testing.T) {
	m := bertModel()
	a := Allocation{N: 10, MemMB: 4096, Storage: storage.VMPS}
	job := m.JobCost(a, 10)
	funcs := 10*m.FunctionEpochCost(a) + m.InvocationCost(a)
	vmBill := m.Service(storage.VMPS).RuntimeCost(m.JobTime(a, 10))
	if job < funcs+vmBill-1e-9 {
		t.Errorf("JobCost %g must cover functions %g + VM runtime %g", job, funcs, vmBill)
	}
}

func TestEnumerateSkipsInfeasible(t *testing.T) {
	m := mnModel()
	pts := m.Enumerate(DefaultGrid())
	if len(pts) == 0 {
		t.Fatal("no feasible allocations enumerated")
	}
	for _, p := range pts {
		if !m.Feasible(p.Alloc) {
			t.Errorf("enumerated infeasible allocation %v", p.Alloc)
		}
		if p.Alloc.Storage == storage.DynamoDB {
			t.Errorf("MobileNet enumeration must exclude DynamoDB, got %v", p.Alloc)
		}
	}
}

func TestParetoBoundaryProperties(t *testing.T) {
	m := lrModel()
	pts := m.Enumerate(DefaultGrid())
	front := Pareto(pts)
	if len(front) == 0 || len(front) > len(pts) {
		t.Fatalf("front size %d of %d points", len(front), len(pts))
	}
	// Sorted by time ascending, cost strictly descending.
	for i := 1; i < len(front); i++ {
		if front[i].Time <= front[i-1].Time {
			t.Errorf("front not strictly increasing in time at %d", i)
		}
		if front[i].Cost >= front[i-1].Cost {
			t.Errorf("front not strictly decreasing in cost at %d", i)
		}
	}
	// No point dominates a front member.
	for _, f := range front {
		for _, p := range pts {
			if p.Alloc != f.Alloc && Dominates(p, f) {
				t.Errorf("front member %v dominated by %v", f.Alloc, p.Alloc)
			}
		}
	}
	// Every non-front point is dominated by some front member.
	inFront := make(map[Allocation]bool, len(front))
	for _, f := range front {
		inFront[f.Alloc] = true
	}
	for _, p := range pts {
		if inFront[p.Alloc] {
			continue
		}
		dominated := false
		for _, f := range front {
			if Dominates(f, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Errorf("non-front point %v is not dominated", p.Alloc)
		}
	}
}

func TestParetoPrunesSubstantially(t *testing.T) {
	// Fig. 7 / §IV-G: the Pareto subset must be much smaller than Θ.
	m := lrModel()
	pts := m.Enumerate(DefaultGrid())
	front := Pareto(pts)
	if len(front)*3 > len(pts) {
		t.Errorf("Pareto front %d of %d points prunes too little", len(front), len(pts))
	}
}

func TestParetoEmptyAndSingle(t *testing.T) {
	if Pareto(nil) != nil {
		t.Error("Pareto(nil) should be nil")
	}
	one := []Point{{Time: 1, Cost: 1}}
	if got := Pareto(one); len(got) != 1 {
		t.Errorf("Pareto of single point = %d elements", len(got))
	}
}

func TestParetoSyntheticProperty(t *testing.T) {
	if err := quick.Check(func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		pts := make([]Point, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			pts = append(pts, Point{
				Alloc: Allocation{N: i},
				Time:  float64(raw[i]%1000) + 1,
				Cost:  float64(raw[i+1]%1000) + 1,
			})
		}
		front := Pareto(pts)
		for _, f := range front {
			for _, p := range pts {
				if Dominates(p, f) {
					return false
				}
			}
		}
		return len(front) >= 1
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDominates(t *testing.T) {
	a := Point{Time: 1, Cost: 1}
	b := Point{Time: 2, Cost: 2}
	c := Point{Time: 1, Cost: 2}
	if !Dominates(a, b) || Dominates(b, a) {
		t.Error("strict domination failed")
	}
	if !Dominates(a, c) {
		t.Error("equal-in-one domination failed")
	}
	if Dominates(a, a) {
		t.Error("a point must not dominate itself")
	}
}
