package fit

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// fitterDatasets builds a diverse corpus of observation sets: clean curves,
// noisy curves, short series, plateaus, random walks — everything the
// online predictor can throw at the solver, including data that exercises
// the failed-attempt and singular-system paths.
func fitterDatasets() (names []string, sets [][2][]float64) {
	add := func(name string, xs, ys []float64) {
		names = append(names, name)
		sets = append(sets, [2][]float64{xs, ys})
	}
	for seed := uint64(1); seed <= 6; seed++ {
		xs, ys := genInverseLinear(0.05+0.1*float64(seed), 0.5+0.3*float64(seed), 0.2+0.1*float64(seed), 0.02, 10+int(seed)*7, seed)
		add("noisy", xs, ys)
	}
	xs, ys := genInverseLinear(0.3, 0.8, 0.5, 0, 30, 1)
	add("clean", xs, ys)
	add("minimal", []float64{1, 2, 3}, []float64{1, 0.8, 0.7})
	add("plateau", []float64{1, 2, 3, 4, 5, 6}, []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5})
	add("ascending", []float64{1, 2, 3, 4, 5}, []float64{0.1, 0.2, 0.4, 0.8, 1.6})
	rng := sim.NewRand(99)
	var wx, wy []float64
	v := 1.0
	for e := 1; e <= 40; e++ {
		v += 0.1 * rng.NormFloat64()
		wx = append(wx, float64(e))
		wy = append(wy, v)
	}
	add("walk", wx, wy)
	return names, sets
}

// TestFitterColdBitIdentical is the refactoring gate: a cold Fitter fit
// must reproduce the package-level Fit bit for bit — parameters, SSE, RMSE
// and iteration count — on every corpus dataset and both model families.
func TestFitterColdBitIdentical(t *testing.T) {
	names, sets := fitterDatasets()
	for _, m := range []Model{InverseLinear{}, PowerLaw{}} {
		f, err := NewFitter(m)
		if err != nil {
			t.Fatal(err)
		}
		for si, set := range sets {
			xs, ys := set[0], set[1]
			want, errWant := Fit(m, xs, ys, Options{})
			got, errGot := f.Fit(xs, ys, Options{})
			if (errWant == nil) != (errGot == nil) {
				t.Fatalf("%T %s: err mismatch: Fit=%v Fitter=%v", m, names[si], errWant, errGot)
			}
			if errWant != nil {
				continue
			}
			for i := range want.Params {
				if want.Params[i] != got.Params[i] {
					t.Errorf("%T %s: param %d: Fit=%v Fitter=%v", m, names[si], i, want.Params[i], got.Params[i])
				}
			}
			if want.SSE != got.SSE || want.RMSE != got.RMSE || want.Iters != got.Iters {
				t.Errorf("%T %s: SSE/RMSE/Iters: Fit=(%v,%v,%d) Fitter=(%v,%v,%d)",
					m, names[si], want.SSE, want.RMSE, want.Iters, got.SSE, got.RMSE, got.Iters)
			}
		}
	}
}

// TestFitterColdBitIdenticalNonDefaultOptions repeats the gate with explicit
// solver options (fewer iterations, looser tolerance).
func TestFitterColdBitIdenticalNonDefaultOptions(t *testing.T) {
	xs, ys := genInverseLinear(0.2, 1.0, 0.5, 0.02, 40, 5)
	f, err := NewFitter(InverseLinear{})
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{{MaxIter: 3}, {Tol: 1e-4}, {MaxIter: 50, Tol: 1e-6}} {
		want, _ := Fit(InverseLinear{}, xs, ys, opts)
		got, _ := f.Fit(xs, ys, opts)
		for i := range want.Params {
			if want.Params[i] != got.Params[i] {
				t.Errorf("opts %+v: param %d: Fit=%v Fitter=%v", opts, i, want.Params[i], got.Params[i])
			}
		}
		if want.Iters != got.Iters {
			t.Errorf("opts %+v: iters Fit=%d Fitter=%d", opts, want.Iters, got.Iters)
		}
	}
}

func TestFitterErrors(t *testing.T) {
	f, err := NewFitter(InverseLinear{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Fit([]float64{1, 2, 3}, []float64{1}, Options{}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := f.Fit([]float64{1, 2}, []float64{1, 0.9}, Options{}); err == nil {
		t.Error("insufficient data should fail")
	}
	if _, err := NewFitter(twoParamModel{}); err == nil {
		t.Error("non-3-param model should be rejected")
	}
}

// twoParamModel exercises the NewFitter arity check.
type twoParamModel struct{}

func (twoParamModel) NumParams() int                      { return 2 }
func (twoParamModel) Eval(p []float64, x float64) float64 { return p[0]*x + p[1] }
func (twoParamModel) Jacobian(p []float64, x float64, out []float64) {
	out[0], out[1] = x, 1
}
func (twoParamModel) Guess(xs, ys []float64) []float64 { return []float64{0, 0} }
func (twoParamModel) Clamp(p []float64)                {}

// TestFitterWarmStartConverges: a warm refit over a one-observation-extended
// series must converge in no more iterations than the cold fit and land on
// an (almost) equally good optimum.
func TestFitterWarmStartConverges(t *testing.T) {
	xs, ys := genInverseLinear(0.2, 1.0, 0.5, 0.01, 60, 7)
	f, err := NewFitter(InverseLinear{})
	if err != nil {
		t.Fatal(err)
	}
	f.SetWarmStart(true)
	if _, err := f.Fit(xs[:40], ys[:40], Options{}); err != nil {
		t.Fatal(err)
	}
	coldIters, warmIters := 0, 0
	for n := 41; n <= 60; n++ {
		cold, err := Fit(InverseLinear{}, xs[:n], ys[:n], Options{})
		if err != nil {
			t.Fatal(err)
		}
		warm, err := f.Fit(xs[:n], ys[:n], Options{})
		if err != nil {
			t.Fatal(err)
		}
		coldIters += cold.Iters
		warmIters += warm.Iters
		if warm.SSE > cold.SSE*1.01+1e-12 {
			t.Errorf("n=%d: warm SSE %g much worse than cold %g", n, warm.SSE, cold.SSE)
		}
		if math.Abs(warm.Params[2]-0.5) > 0.05 {
			t.Errorf("n=%d: warm floor %g drifted from 0.5", n, warm.Params[2])
		}
	}
	if warmIters > coldIters {
		t.Errorf("warm refits took %d iterations, cold %d — warm start is not helping", warmIters, coldIters)
	}
}

// TestFitterWarmStartToggle: disabling warm start forgets the stored
// parameters and reproduces the cold path bit for bit.
func TestFitterWarmStartToggle(t *testing.T) {
	xs, ys := genInverseLinear(0.25, 1.2, 0.4, 0.02, 30, 9)
	f, err := NewFitter(InverseLinear{})
	if err != nil {
		t.Fatal(err)
	}
	f.SetWarmStart(true)
	if _, err := f.Fit(xs, ys, Options{}); err != nil {
		t.Fatal(err)
	}
	f.SetWarmStart(false)
	got, err := f.Fit(xs, ys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Fit(InverseLinear{}, xs, ys, Options{})
	for i := range want.Params {
		if want.Params[i] != got.Params[i] {
			t.Errorf("param %d after toggle-off: Fit=%v Fitter=%v", i, want.Params[i], got.Params[i])
		}
	}
	// Reset keeps warm mode but forgets the seed: next fit is cold again.
	f.SetWarmStart(true)
	if _, err := f.Fit(xs, ys, Options{}); err != nil {
		t.Fatal(err)
	}
	f.Reset()
	got, err = f.Fit(xs, ys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Params {
		if want.Params[i] != got.Params[i] {
			t.Errorf("param %d after Reset: Fit=%v Fitter=%v", i, want.Params[i], got.Params[i])
		}
	}
}

// TestFitterResultAliasing documents the Result.Params contract: the slice
// aliases Fitter storage and is rewritten by the next Fit call.
func TestFitterResultAliasing(t *testing.T) {
	xs1, ys1 := genInverseLinear(0.2, 1.0, 0.5, 0, 20, 1)
	xs2, ys2 := genInverseLinear(0.4, 0.5, 0.3, 0, 20, 2)
	f, err := NewFitter(InverseLinear{})
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := f.Fit(xs1, ys1, Options{})
	c0 := r1.Params[2]
	r2, _ := f.Fit(xs2, ys2, Options{})
	if &r1.Params[0] != &r2.Params[0] {
		t.Fatal("Result.Params should alias the Fitter's storage")
	}
	if r1.Params[2] == c0 && math.Abs(c0-0.3) > 0.1 {
		// r1's view must now show the second fit's floor (~0.3, not ~0.5).
		t.Errorf("aliased params not rewritten: %v", r1.Params)
	}
}

// TestFitterZeroAlloc is the steady-state gate: warm and cold refits must
// not touch the heap.
// hotpath-gate: fit.Fitter.Fit
func TestFitterZeroAlloc(t *testing.T) {
	xs, ys := genInverseLinear(0.2, 1.0, 0.5, 0.01, 40, 3)
	f, err := NewFitter(InverseLinear{})
	if err != nil {
		t.Fatal(err)
	}
	f.SetWarmStart(true)
	if _, err := f.Fit(xs, ys, Options{}); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if _, err := f.Fit(xs, ys, Options{}); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("warm Fitter.Fit allocates %.1f/op, want 0", avg)
	}
	f.SetWarmStart(false)
	if avg := testing.AllocsPerRun(100, func() {
		if _, err := f.Fit(xs, ys, Options{}); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("cold Fitter.Fit allocates %.1f/op, want 0", avg)
	}
}
