GO ?= go

# Packages that run real goroutine concurrency (live substrate) and must
# stay race-clean.
RACE_PKGS := ./internal/distml/... ./internal/psnet/... ./internal/objstore/... \
             ./internal/lambda/... ./internal/platform/livebackend/...

.PHONY: check fmt vet build test race bench benchfull

check: fmt vet build test race

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)
	$(GO) test -race -run 'TestCells|TestRunAll|Memo|Concurrent' \
		./internal/experiments/ ./internal/cost/ ./internal/dataset/

# Smoke-run the numeric-path benchmarks (ml kernels, dataset caches, DES
# kernel) at a fixed small iteration count: fast enough for CI, enough to
# catch kernels that re-grow allocations. scripts/bench.sh does the real
# measured runs into BENCH_PR*.json.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=100x \
		./internal/ml/ ./internal/dataset/
	$(GO) test -run '^$$' -bench . -benchtime=100x ./internal/sim/ ./internal/cost/

benchfull:
	$(GO) test -bench=. -benchtime=1x ./...
