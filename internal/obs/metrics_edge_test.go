package obs

import (
	"math"
	"testing"
)

// The registry histogram's documented invariants — exact-bound placement,
// the implicit overflow bucket, and DefineHistogram being a no-op once the
// histogram exists — were documented but untested. These tests pin them.

func histSnap(t *testing.T, m *Metrics, name string) HistSnapshot {
	t.Helper()
	for _, h := range m.Snapshot().Histograms {
		if h.Name == name {
			return h.Hist
		}
	}
	t.Fatalf("histogram %q not in snapshot", name)
	return HistSnapshot{}
}

// TestHistogramExactBoundLandsInBucket: a value exactly equal to a bucket's
// upper bound counts in that bucket (v <= bound), not the next one.
func TestHistogramExactBoundLandsInBucket(t *testing.T) {
	m := NewMetrics()
	m.DefineHistogram("h", []float64{1, 10, 100})
	m.Observe("h", 1)
	m.Observe("h", 10)
	m.Observe("h", 100)
	s := histSnap(t, m, "h")
	for i, want := range []uint64{1, 1, 1, 0} {
		if s.Counts[i] != want {
			t.Errorf("bucket %d = %d, want %d (exact-bound values must land in their own bucket)", i, s.Counts[i], want)
		}
	}
}

// TestHistogramOverflowBucket: values above every bound land in the
// implicit +Inf bucket, and the bucket layout has exactly len(bounds)+1
// slots.
func TestHistogramOverflowBucket(t *testing.T) {
	m := NewMetrics()
	m.DefineHistogram("h", []float64{1, 2})
	m.Observe("h", 2.0000001)
	m.Observe("h", 1e18)
	m.Observe("h", math.Inf(1))
	s := histSnap(t, m, "h")
	if len(s.Counts) != len(s.Bounds)+1 {
		t.Fatalf("%d counts for %d bounds, want bounds+1", len(s.Counts), len(s.Bounds))
	}
	if over := s.Counts[len(s.Counts)-1]; over != 3 {
		t.Errorf("overflow bucket = %d, want 3", over)
	}
	if s.Total != 3 {
		t.Errorf("total = %d, want 3", s.Total)
	}
}

// TestDefineHistogramAfterObserveIsNoOp: once a histogram exists (created
// implicitly by Observe with default buckets), DefineHistogram must not
// replace it — counts are never silently dropped.
func TestDefineHistogramAfterObserveIsNoOp(t *testing.T) {
	m := NewMetrics()
	m.Observe("h", 0.5)
	m.DefineHistogram("h", []float64{42})
	s := histSnap(t, m, "h")
	if len(s.Bounds) != len(defaultBuckets) {
		t.Fatalf("bounds redefined to %v; DefineHistogram after Observe must be a no-op", s.Bounds)
	}
	if s.Total != 1 {
		t.Errorf("total = %d, want 1 (observation dropped by redefinition)", s.Total)
	}
	// And the reverse order works: define first, observe into it.
	m.DefineHistogram("g", []float64{42})
	m.Observe("g", 1)
	if g := histSnap(t, m, "g"); len(g.Bounds) != 1 || g.Bounds[0] != 42 {
		t.Errorf("pre-defined bounds %v, want [42]", g.Bounds)
	}
}

// TestDefineHistogramCopiesBounds: the caller's slice must not alias the
// histogram's internal bounds.
func TestDefineHistogramCopiesBounds(t *testing.T) {
	m := NewMetrics()
	bounds := []float64{1, 2, 3}
	m.DefineHistogram("h", bounds)
	bounds[0] = 99
	m.Observe("h", 1)
	s := histSnap(t, m, "h")
	if s.Bounds[0] != 1 {
		t.Error("DefineHistogram aliased the caller's bounds slice")
	}
	if s.Counts[0] != 1 {
		t.Error("mutating the caller's slice after DefineHistogram changed bucketing")
	}
}
