// Package lambda is a local serverless function executor with the
// programming model the paper's system drives through its JSON plans:
// named functions with a memory size, invoked in parallel under an
// account-level concurrency cap, with cold/warm execution environments,
// per-invocation deadlines and duration metering.
//
// Handlers run as goroutines in this process — the local analogue of
// Lambda's execution environments — so a CE-scaling plan can be carried out
// for real: register a worker handler, fan out one invocation per function
// in the plan, and let the workers synchronize through internal/objstore or
// internal/psnet (see examples/serverless-workers).
package lambda

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Context carries per-invocation metadata into a handler.
type Context struct {
	// Ctx is canceled at the invocation deadline.
	Ctx context.Context
	// RequestID uniquely identifies the invocation.
	RequestID string
	// FunctionName and MemoryMB echo the registration.
	FunctionName string
	MemoryMB     int
	// Cold reports whether a fresh execution environment was created.
	Cold bool
}

// Handler processes one invocation payload.
type Handler func(c Context, payload []byte) ([]byte, error)

// Registration configures one function.
type Registration struct {
	MemoryMB int
	Timeout  time.Duration // default 15 minutes (Lambda's maximum)
	Handler  Handler
}

// Errors.
var (
	ErrNotRegistered = errors.New("lambda: function not registered")
	ErrThrottled     = errors.New("lambda: concurrency limit exceeded")
	ErrTimeout       = errors.New("lambda: invocation timed out")
)

// Stats aggregates executor metrics.
type Stats struct {
	Invocations uint64
	ColdStarts  uint64
	Errors      uint64
	Throttles   uint64
	// BilledMS accumulates handler wall time in milliseconds (per-ms
	// billing granularity, like the platform's).
	BilledMS uint64
}

type function struct {
	reg  Registration
	warm int // idle environments available
}

// Invoker executes registered functions.
type Invoker struct {
	mu        sync.Mutex
	functions map[string]*function
	inFlight  int
	maxConc   int
	nextID    uint64
	stats     Stats
}

// NewInvoker returns an executor with the given account concurrency cap.
func NewInvoker(maxConcurrency int) *Invoker {
	if maxConcurrency < 1 {
		maxConcurrency = 1
	}
	return &Invoker{functions: make(map[string]*function), maxConc: maxConcurrency}
}

// Register installs a function under name. Re-registering replaces the
// handler and drops its warm environments (a code deploy).
func (inv *Invoker) Register(name string, reg Registration) error {
	if name == "" || reg.Handler == nil {
		return fmt.Errorf("lambda: registration needs a name and a handler")
	}
	if reg.MemoryMB < 128 || reg.MemoryMB > 10240 {
		return fmt.Errorf("lambda: memory %d MB outside [128, 10240]", reg.MemoryMB)
	}
	if reg.Timeout <= 0 {
		reg.Timeout = 15 * time.Minute
	}
	inv.mu.Lock()
	inv.functions[name] = &function{reg: reg}
	inv.mu.Unlock()
	return nil
}

// Stats returns a metrics snapshot.
func (inv *Invoker) Stats() Stats {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	return inv.stats
}

// InFlight reports currently executing invocations.
func (inv *Invoker) InFlight() int {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	return inv.inFlight
}

// admit reserves a concurrency slot and an environment; it reports whether
// the environment is cold.
func (inv *Invoker) admit(name string) (*function, Context, error) {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	fn, ok := inv.functions[name]
	if !ok {
		return nil, Context{}, fmt.Errorf("%w: %q", ErrNotRegistered, name)
	}
	if inv.inFlight >= inv.maxConc {
		inv.stats.Throttles++
		return nil, Context{}, fmt.Errorf("%w: %d in flight", ErrThrottled, inv.inFlight)
	}
	inv.inFlight++
	inv.nextID++
	inv.stats.Invocations++
	cold := fn.warm == 0
	if cold {
		inv.stats.ColdStarts++
	} else {
		fn.warm--
	}
	c := Context{
		RequestID:    fmt.Sprintf("req-%08d", inv.nextID),
		FunctionName: name,
		MemoryMB:     fn.reg.MemoryMB,
		Cold:         cold,
	}
	return fn, c, nil
}

func (inv *Invoker) release(fn *function, dur time.Duration, failed bool) {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	inv.inFlight--
	fn.warm++ // the environment is reusable
	ms := uint64(dur.Milliseconds())
	if ms == 0 {
		ms = 1
	}
	inv.stats.BilledMS += ms
	if failed {
		inv.stats.Errors++
	}
}

// Invoke runs the function synchronously and returns its response.
func (inv *Invoker) Invoke(name string, payload []byte) ([]byte, error) {
	fn, c, err := inv.admit(name)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), fn.reg.Timeout)
	defer cancel()
	c.Ctx = ctx

	start := time.Now()
	type outcome struct {
		resp []byte
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		resp, err := fn.reg.Handler(c, payload)
		done <- outcome{resp, err}
	}()
	select {
	case out := <-done:
		inv.release(fn, time.Since(start), out.err != nil)
		return out.resp, out.err
	case <-ctx.Done():
		inv.release(fn, time.Since(start), true)
		return nil, fmt.Errorf("%w: %s after %s", ErrTimeout, name, fn.reg.Timeout)
	}
}

// Result is one fan-out invocation's outcome.
type Result struct {
	Index    int
	Response []byte
	Err      error
}

// Map fans payloads out as concurrent invocations of name and gathers the
// results in input order. Invocations beyond the concurrency cap queue
// rather than throttle (the burst behaviour a training job wants).
func (inv *Invoker) Map(name string, payloads [][]byte) ([]Result, error) {
	inv.mu.Lock()
	_, registered := inv.functions[name]
	inv.mu.Unlock()
	if !registered {
		return nil, fmt.Errorf("%w: %q", ErrNotRegistered, name)
	}
	results := make([]Result, len(payloads))
	var wg sync.WaitGroup
	for i, p := range payloads {
		wg.Add(1)
		go func(i int, p []byte) {
			defer wg.Done()
			for {
				resp, err := inv.Invoke(name, p)
				if errors.Is(err, ErrThrottled) {
					time.Sleep(time.Millisecond) // queue and retry
					continue
				}
				results[i] = Result{Index: i, Response: resp, Err: err}
				return
			}
		}(i, p)
	}
	wg.Wait()
	return results, nil
}

// Prewarm provisions n idle environments for name.
func (inv *Invoker) Prewarm(name string, n int) error {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	fn, ok := inv.functions[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotRegistered, name)
	}
	fn.warm += n
	return nil
}
