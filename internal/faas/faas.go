// Package faas models a Lambda-like serverless platform: function
// specifications with memory-proportional CPU share, cold/warm start
// behaviour, an account-level concurrency cap, and a billing meter charging
// per invocation and per GB-second.
//
// The platform is intentionally decoupled from what the functions compute:
// the trainer decides how long a function "runs" (from the workload's compute
// model) and reports that runtime here for billing, while the platform
// contributes startup latency, concurrency admission and metering. This
// mirrors how a scheduler perceives AWS Lambda: it can only observe start
// latency, duration and the resulting bill.
package faas

import (
	"errors"
	"fmt"

	"repro/internal/obs"
	"repro/internal/pricing"
	"repro/internal/sim"
)

// Limits captures the platform's account limits (AWS Lambda defaults).
type Limits struct {
	MinMemoryMB    int // smallest allocatable function memory
	MaxMemoryMB    int // largest allocatable function memory
	MaxConcurrency int // account-level concurrent execution cap
	FullVCPUAtMB   int // memory at which a function gets one full vCPU
	MaxVCPU        float64
}

// DefaultLimits returns AWS Lambda's published limits: 128–10240 MB memory,
// 3000 burst concurrency, one full vCPU at 1769 MB, up to 6 vCPUs.
func DefaultLimits() Limits {
	return Limits{
		MinMemoryMB:    128,
		MaxMemoryMB:    10240,
		MaxConcurrency: 3000,
		FullVCPUAtMB:   1769,
		MaxVCPU:        6,
	}
}

// CPUShare returns the fraction of vCPUs a function with memMB memory
// receives (linear in memory, as Lambda allocates).
func (l Limits) CPUShare(memMB int) float64 {
	share := float64(memMB) / float64(l.FullVCPUAtMB)
	if share > l.MaxVCPU {
		share = l.MaxVCPU
	}
	return share
}

// ValidateMemory reports whether memMB is an allocatable function size.
func (l Limits) ValidateMemory(memMB int) error {
	if memMB < l.MinMemoryMB || memMB > l.MaxMemoryMB {
		return fmt.Errorf("faas: memory %d MB outside [%d, %d]", memMB, l.MinMemoryMB, l.MaxMemoryMB)
	}
	return nil
}

// StartupModel parameterizes cold- and warm-start latency.
type StartupModel struct {
	ColdBase   float64 // seconds: sandbox + runtime initialization
	ColdPerGB  float64 // seconds per GB of function memory (snapshot restore)
	Warm       float64 // seconds for a warm invocation
	JitterFrac float64 // multiplicative uniform jitter on cold starts
}

// DefaultStartup returns a Lambda-like startup model: ~1.5-3 s cold starts
// for ML runtimes, ~20 ms warm starts.
func DefaultStartup() StartupModel {
	return StartupModel{ColdBase: 1.6, ColdPerGB: 0.5, Warm: 0.02, JitterFrac: 0.25}
}

// ErrConcurrencyExceeded is returned when an invocation burst would exceed
// the account concurrency cap.
var ErrConcurrencyExceeded = errors.New("faas: concurrency limit exceeded")

// ErrWarmPoolExceeded is returned when Prewarm would grow the warm pool past
// the platform's warm-environment cap.
var ErrWarmPoolExceeded = errors.New("faas: warm pool limit exceeded")

// Meter accumulates the platform bill.
type Meter struct {
	Invocations uint64
	GBSeconds   float64
	InvokeCost  float64
	ComputeCost float64
}

// Total returns the platform bill so far.
func (m *Meter) Total() float64 { return m.InvokeCost + m.ComputeCost }

// expiryQueue holds the pending warm-sandbox reclaim events for one memory
// size in schedule order. Reclaims fire in that same order (the TTL is
// constant between schedule and fire in normal operation), so both consuming
// a sandbox (takeWarm cancels the earliest reclaim) and a reclaim firing
// remove the head: O(1) pops instead of the identity scan + element copy
// that went quadratic under Prewarm-scale churn. The queue keeps a dead
// prefix instead of re-slicing so pushes never mutate a shared backing array
// out from under a previous slice header, and compacts once the prefix
// dominates.
type expiryQueue struct {
	evs  []sim.Event
	head int
	// lastAt is the fire time of the most recently scheduled reclaim. New
	// reclaims are clamped to fire no earlier (see addWarm), which is what
	// upholds the schedule-order invariant when WarmTTL changes mid-run.
	lastAt sim.Time
}

func (q *expiryQueue) len() int {
	if q == nil {
		return 0
	}
	return len(q.evs) - q.head
}

func (q *expiryQueue) push(ev sim.Event) { q.evs = append(q.evs, ev) }

// popHead removes and returns the earliest pending reclaim (the zero,
// inert Event if empty).
func (q *expiryQueue) popHead() sim.Event {
	if q == nil || q.head >= len(q.evs) {
		return sim.Event{}
	}
	ev := q.evs[q.head]
	q.evs[q.head] = sim.Event{}
	q.head++
	q.maybeCompact()
	return ev
}

// remove drops a fired reclaim event from the queue. Reclaims fire in
// schedule order (addWarm clamps new deadlines behind pending ones, so even
// a mid-run WarmTTL change cannot reorder them) and the head is the common
// case; the scan fallback stays as defense in depth — popping the wrong
// entry would leave this fired (and soon recycled) event in the queue for
// takeWarm to Cancel later. (Since the kernel's generation counters made
// stale Cancel a no-op that mistake would no longer corrupt an unrelated
// event, but it would still leak a dead queue entry.)
func (q *expiryQueue) remove(ev sim.Event) {
	if q == nil {
		return
	}
	if q.head < len(q.evs) && q.evs[q.head] == ev {
		q.evs[q.head] = sim.Event{}
		q.head++
		q.maybeCompact()
		return
	}
	for j := q.head; j < len(q.evs); j++ {
		if q.evs[j] == ev {
			copy(q.evs[j:], q.evs[j+1:])
			q.evs[len(q.evs)-1] = sim.Event{}
			q.evs = q.evs[:len(q.evs)-1]
			return
		}
	}
}

// maybeCompact slides pending events to the front once the dead prefix is
// both large and the majority of the slice, bounding memory at O(pending).
func (q *expiryQueue) maybeCompact() {
	if q.head >= 32 && q.head*2 >= len(q.evs) {
		n := copy(q.evs, q.evs[q.head:])
		clear(q.evs[n:])
		q.evs = q.evs[:n]
		q.head = 0
	}
}

// cancelAll cancels every pending reclaim (used by DropWarm).
func (q *expiryQueue) cancelAll() {
	if q == nil {
		return
	}
	for _, ev := range q.evs[q.head:] {
		ev.Cancel()
	}
}

// Platform is one simulated serverless region/account.
//
// A Platform is owned by one kernel shard: its clock, its expiry events and
// its startup-jitter stream all live on that shard, so independent accounts
// (one per tenant) placed on different shards can advance concurrently
// inside the kernel's lookahead windows. The default constructors bind the
// main shard, which preserves the historical single-queue behavior exactly.
type Platform struct {
	sh      *sim.Shard
	rng     *sim.Rand // startup-jitter stream, captured at construction
	limits  Limits
	startup StartupModel
	prices  pricing.PriceBook

	// WarmTTL is how long an idle sandbox survives before the platform
	// reclaims it (Lambda keeps environments warm for minutes, not hours).
	// Zero disables expiry.
	WarmTTL float64

	// WarmLimit caps the total number of warm sandboxes Prewarm may
	// provision across all memory sizes, so a planner bug cannot grow the
	// pool (and the invoice) without bound. Defaults to
	// Limits.MaxConcurrency; zero or negative disables the cap.
	WarmLimit int

	inFlight     int
	peakInFlight int
	warm         map[int]int // memory MB -> warm sandboxes available
	warmTotal    int         // sum over warm, kept for O(1) cap checks
	// expiry holds the scheduled reclaim events per memory size; each
	// release schedules one reclaim WarmTTL later, so a sandbox unused for
	// a full TTL disappears.
	expiry map[int]*expiryQueue
	meter  Meter
	obs    *obs.Observer
	// coldSpike multiplies cold-start draws while a fault schedule's
	// cold-spike window is active (see SetColdSpikeFactor); 0 means unset.
	coldSpike float64
}

// DefaultWarmTTL is the idle lifetime of a warm sandbox (10 minutes,
// Lambda-like).
const DefaultWarmTTL = 600

// New returns a platform bound to the simulation's main shard, drawing
// startup jitter from the "faas.startup" stream (the historical wiring).
func New(s *sim.Simulation, limits Limits, startup StartupModel, pb pricing.PriceBook) *Platform {
	return NewOnShard(s.Main(), "faas.startup", limits, startup, pb)
}

// NewOnShard returns a platform owned by the given kernel shard, drawing
// startup jitter from the named stream. Per-tenant accounts use one shard
// and one distinct stream name each, so every tenant's jitter sequence is
// independent of how many other tenants exist and of the shard layout.
func NewOnShard(sh *sim.Shard, randStream string, limits Limits, startup StartupModel, pb pricing.PriceBook) *Platform {
	return &Platform{
		sh: sh, rng: sh.Rand(randStream),
		limits: limits, startup: startup, prices: pb,
		WarmTTL:   DefaultWarmTTL,
		WarmLimit: limits.MaxConcurrency,
		warm:      make(map[int]int),
		expiry:    make(map[int]*expiryQueue),
	}
}

// NewDefault returns a platform with default limits, startup and prices.
func NewDefault(s *sim.Simulation) *Platform {
	return New(s, DefaultLimits(), DefaultStartup(), pricing.Default())
}

// SetObserver attaches an observability sink. Events are stamped with the
// simulation clock; a nil observer (the default) disables recording.
func (p *Platform) SetObserver(o *obs.Observer) { p.obs = o }

// Limits returns the platform's account limits.
func (p *Platform) Limits() Limits { return p.limits }

// Shard returns the kernel shard that owns this platform's clock and
// events.
func (p *Platform) Shard() *sim.Shard { return p.sh }

// Meter returns a snapshot of the bill so far.
func (p *Platform) Meter() Meter { return p.meter }

// InFlight reports how many function instances are currently admitted.
func (p *Platform) InFlight() int { return p.inFlight }

// WarmCount reports how many warm sandboxes exist for the given memory size.
func (p *Platform) WarmCount(memMB int) int { return p.warm[memMB] }

// WarmTotal reports how many warm sandboxes exist across all memory sizes.
func (p *Platform) WarmTotal() int { return p.warmTotal }

// PendingExpiries reports how many reclaim events are scheduled for the
// given memory size (test/diagnostic hook; equals WarmCount while WarmTTL
// is enabled and constant).
func (p *Platform) PendingExpiries(memMB int) int { return p.expiry[memMB].len() }

// Invocation describes one admitted function instance.
type Invocation struct {
	MemMB      int
	StartDelay float64 // cold- or warm-start latency in seconds
	Cold       bool
}

// InvokeGroup admits n concurrent functions of memMB memory, consuming warm
// sandboxes first. It returns one Invocation per function (with its
// individual start latency) and charges the per-invocation fee immediately.
// The group counts against the concurrency cap until ReleaseGroup.
func (p *Platform) InvokeGroup(n, memMB int) ([]Invocation, error) {
	if n <= 0 {
		return nil, fmt.Errorf("faas: InvokeGroup with n=%d", n)
	}
	if err := p.limits.ValidateMemory(memMB); err != nil {
		return nil, err
	}
	if p.inFlight+n > p.limits.MaxConcurrency {
		return nil, fmt.Errorf("%w: %d in flight + %d requested > %d",
			ErrConcurrencyExceeded, p.inFlight, n, p.limits.MaxConcurrency)
	}
	p.inFlight += n
	if p.inFlight > p.peakInFlight {
		p.peakInFlight = p.inFlight
	}
	rng := p.rng
	out := make([]Invocation, n)
	cold := 0
	for i := range out {
		inv := Invocation{MemMB: memMB}
		if p.warm[memMB] > 0 {
			p.takeWarm(memMB)
			inv.StartDelay = p.startup.Warm
		} else {
			inv.Cold = true
			cold++
			inv.StartDelay = p.coldStart(memMB, rng)
		}
		out[i] = inv
		p.meter.Invocations++
		p.meter.InvokeCost += p.prices.FunctionInvoke
	}
	if p.obs.Enabled() {
		st := p.obs.Stats()
		st.Add("faas.invocations", float64(n))
		st.Add("faas.cold_starts", float64(cold))
		st.Add("faas.warm_starts", float64(n-cold))
		st.Add("faas.invoke_cost", float64(n)*p.prices.FunctionInvoke)
		st.Set("faas.in_flight", float64(p.inFlight))
		st.SetMax("faas.in_flight_peak", float64(p.peakInFlight))
		st.Set("faas.warm_total", float64(p.warmTotal))
		for _, inv := range out {
			if inv.Cold {
				st.Observe("faas.cold_start_s", inv.StartDelay)
			}
		}
		p.obs.Trace().InstantAt(float64(p.sh.Now()), "faas", "faas", "invoke_group",
			obs.I("n", n), obs.I("mem_mb", memMB), obs.I("cold", cold),
			obs.I("in_flight", p.inFlight), obs.I("cap", p.limits.MaxConcurrency))
	}
	return out, nil
}

// Invoke1 admits a single function of memMB memory: the arrival-path fast
// path of InvokeGroup(1, memMB) for trace-driven traffic, where every
// invocation is its own admission decision and the per-call slice
// allocation (and wrapped error construction) of the group API would
// dominate at tens of millions of arrivals. Semantics are identical to
// InvokeGroup(1, memMB) — same warm-pool consumption, same jitter draw,
// same billing and observability counters — except that the concurrency
// denial returns the plain ErrConcurrencyExceeded sentinel, so the
// admit/deny round trip performs no heap allocation at all when
// observability is disabled.
//
//cescalint:hotpath
func (p *Platform) Invoke1(memMB int) (Invocation, error) {
	//cescalint:allow hotpath -- cold path: allocates only when rejecting an invalid memory size
	if err := p.limits.ValidateMemory(memMB); err != nil {
		return Invocation{}, err
	}
	if p.inFlight+1 > p.limits.MaxConcurrency {
		return Invocation{}, ErrConcurrencyExceeded
	}
	p.inFlight++
	if p.inFlight > p.peakInFlight {
		p.peakInFlight = p.inFlight
	}
	inv := Invocation{MemMB: memMB}
	if p.warm[memMB] > 0 {
		p.takeWarm(memMB)
		inv.StartDelay = p.startup.Warm
	} else {
		inv.Cold = true
		inv.StartDelay = p.coldStart(memMB, p.rng)
	}
	p.meter.Invocations++
	p.meter.InvokeCost += p.prices.FunctionInvoke
	if p.obs.Enabled() {
		//cescalint:allow hotpath -- observability: reached only with obs enabled; the steady-state gate runs disabled
		p.observeInvoke1(inv)
	}
	return inv, nil
}

// observeInvoke1 records one admission in the metrics registry. Kept out of
// Invoke1's body so the hot path carries a single Enabled-gated call.
func (p *Platform) observeInvoke1(inv Invocation) {
	st := p.obs.Stats()
	st.Add("faas.invocations", 1)
	if inv.Cold {
		st.Inc("faas.cold_starts")
		st.Observe("faas.cold_start_s", inv.StartDelay)
	} else {
		st.Inc("faas.warm_starts")
	}
	st.Add("faas.invoke_cost", p.prices.FunctionInvoke)
	st.Set("faas.in_flight", float64(p.inFlight))
	st.SetMax("faas.in_flight_peak", float64(p.peakInFlight))
	st.Set("faas.warm_total", float64(p.warmTotal))
}

// takeWarm consumes one warm sandbox and cancels its pending reclaim.
func (p *Platform) takeWarm(memMB int) {
	p.warm[memMB]--
	p.warmTotal--
	// popHead on an empty queue returns the zero handle; Cancel on it is
	// a no-op.
	p.expiry[memMB].popHead().Cancel()
}

// addWarm returns sandboxes to the pool and schedules their idle reclaim.
func (p *Platform) addWarm(memMB, n int) {
	p.warm[memMB] += n
	p.warmTotal += n
	if p.WarmTTL <= 0 {
		return
	}
	q := p.expiry[memMB]
	if q == nil {
		q = &expiryQueue{}
		p.expiry[memMB] = q
	}
	// Clamp the fire time so reclaims always fire in schedule (FIFO) order
	// even if WarmTTL was lowered mid-run: a sandbox provisioned later never
	// expires before one provisioned earlier. With a constant TTL the clamp
	// never binds (now is monotone), so steady-state behavior is unchanged.
	at := p.sh.Now() + sim.Time(p.WarmTTL)
	if at < q.lastAt {
		at = q.lastAt
	}
	q.lastAt = at
	for i := 0; i < n; i++ {
		var ev sim.Event
		ev = p.sh.Schedule(at, func() {
			if p.warm[memMB] > 0 {
				p.warm[memMB]--
				p.warmTotal--
			}
			p.expiry[memMB].remove(ev)
			if p.obs.Enabled() {
				p.obs.Stats().Inc("faas.warm_expired")
				p.obs.Stats().Set("faas.warm_total", float64(p.warmTotal))
			}
		})
		q.push(ev)
	}
}

func (p *Platform) coldStart(memMB int, rng *sim.Rand) float64 {
	d := p.startup.ColdBase + p.startup.ColdPerGB*float64(memMB)/1024
	if p.startup.JitterFrac > 0 {
		d *= rng.Jitter(p.startup.JitterFrac)
	}
	if p.coldSpike > 1 {
		d *= p.coldSpike
	}
	return d
}

// ColdStartEstimate returns the deterministic (jitter-free) cold-start
// latency the analytical models use.
func (p *Platform) ColdStartEstimate(memMB int) float64 {
	return p.startup.ColdBase + p.startup.ColdPerGB*float64(memMB)/1024
}

// WarmStart returns the warm invocation latency.
func (p *Platform) WarmStart() float64 { return p.startup.Warm }

// ReleaseGroup ends n concurrent functions of memMB memory, billing their
// compute time (seconds each) and returning their sandboxes to the warm
// pool for later reuse.
//
//cescalint:hotpath
func (p *Platform) ReleaseGroup(n, memMB int, secondsEach float64) {
	if n <= 0 {
		return
	}
	if n > p.inFlight {
		panic(fmt.Sprintf("faas: releasing %d instances with only %d in flight", n, p.inFlight))
	}
	p.inFlight -= n
	//cescalint:allow hotpath -- warm reclaim closures: scheduled only when WarmTTL > 0; the steady-state gate disables expiry
	p.addWarm(memMB, n)
	p.BillCompute(n, memMB, secondsEach)
	if p.obs.Enabled() {
		//cescalint:allow hotpath -- observability: reached only with obs enabled; the steady-state gate runs disabled
		p.observeReleaseGroup(n, memMB, secondsEach)
	}
}

// observeReleaseGroup records one release in the observability sinks. Kept
// out of ReleaseGroup's body so the hot path carries a single Enabled-gated
// call.
func (p *Platform) observeReleaseGroup(n, memMB int, secondsEach float64) {
	st := p.obs.Stats()
	st.Set("faas.in_flight", float64(p.inFlight))
	st.Set("faas.warm_total", float64(p.warmTotal))
	p.obs.Trace().InstantAt(float64(p.sh.Now()), "faas", "faas", "release_group",
		obs.I("n", n), obs.I("mem_mb", memMB), obs.F("seconds_each", secondsEach),
		obs.I("in_flight", p.inFlight), obs.I("warm_total", p.warmTotal))
}

// BillCompute charges compute time for n functions of memMB that each ran
// secondsEach, without touching admission state. The trainer uses this for
// per-epoch billing while instances stay admitted across epochs.
func (p *Platform) BillCompute(n, memMB int, secondsEach float64) {
	if n <= 0 || secondsEach <= 0 {
		return
	}
	cost := float64(n) * p.prices.ComputeOnlyCost(secondsEach, float64(memMB))
	p.meter.ComputeCost += cost
	gbs := float64(n) * secondsEach * float64(memMB) / 1024
	p.meter.GBSeconds += gbs
	if p.obs.Enabled() {
		//cescalint:allow hotpath -- observability: reached only with obs enabled; the steady-state gate runs disabled
		p.observeBillCompute(gbs, cost)
	}
}

// observeBillCompute records one billing event in the metrics registry.
func (p *Platform) observeBillCompute(gbs, cost float64) {
	p.obs.Stats().Add("faas.gb_seconds", gbs)
	p.obs.Stats().Add("faas.compute_cost", cost)
}

// Prewarm provisions n warm sandboxes of memMB (the greedy planner pre-warms
// the next SHA stage's functions while the current stage runs). Prewarming
// charges invocation fees but no compute. The pool is capped at WarmLimit
// total sandboxes: exceeding it returns ErrWarmPoolExceeded and provisions
// nothing.
func (p *Platform) Prewarm(n, memMB int) error {
	if err := p.limits.ValidateMemory(memMB); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	if p.WarmLimit > 0 && p.warmTotal+n > p.WarmLimit {
		return fmt.Errorf("%w: %d warm + %d requested > %d",
			ErrWarmPoolExceeded, p.warmTotal, n, p.WarmLimit)
	}
	p.addWarm(memMB, n)
	p.meter.Invocations += uint64(n)
	p.meter.InvokeCost += float64(n) * p.prices.FunctionInvoke
	if p.obs.Enabled() {
		st := p.obs.Stats()
		st.Add("faas.invocations", float64(n))
		st.Add("faas.prewarmed", float64(n))
		st.Add("faas.invoke_cost", float64(n)*p.prices.FunctionInvoke)
		st.Set("faas.warm_total", float64(p.warmTotal))
		p.obs.Trace().InstantAt(float64(p.sh.Now()), "faas", "faas", "prewarm",
			obs.I("n", n), obs.I("mem_mb", memMB), obs.I("warm_total", p.warmTotal))
	}
	return nil
}

// DropWarm evicts warm sandboxes immediately and cancels their reclaims.
func (p *Platform) DropWarm(memMB int) {
	p.warmTotal -= p.warm[memMB]
	delete(p.warm, memMB)
	p.expiry[memMB].cancelAll()
	delete(p.expiry, memMB)
	if p.obs.Enabled() {
		p.obs.Stats().Set("faas.warm_total", float64(p.warmTotal))
	}
}
