package predictor

import (
	"testing"
)

func TestDescendingDetection(t *testing.T) {
	mk := func(ys ...float64) *Online {
		o := NewOnline()
		for i, y := range ys {
			o.Observe(i+1, y)
		}
		return o
	}
	if !mk(1.0, 0.9).descending() {
		t.Error("too few points should default to descending")
	}
	if !mk(1.0, 0.8, 0.65, 0.5, 0.4).descending() {
		t.Error("a steep curve should count as descending")
	}
	if mk(0.5, 0.5001, 0.4999, 0.5, 0.50001).descending() {
		t.Error("a plateau should not count as descending")
	}
	if mk(0.5, 0.55, 0.6, 0.65, 0.7).descending() {
		t.Error("an increasing curve should not count as descending")
	}
}

func TestConstrainedSolveExactOnCleanData(t *testing.T) {
	// ys = 1/(0.5 e + 1) + 0.2: with c pinned at exactly the floor grid
	// value the linear fit is exact; pick a target the curve reaches.
	o := NewOnline()
	for e := 1; e <= 8; e++ {
		o.Observe(e, 1/(0.5*float64(e)+1)+0.2)
	}
	// target 0.4: the floor grid {0.2,0.4,0.6,0.8,0.9}x0.4 brackets the
	// true floor 0.2 between 0.16 and 0.24 without hitting it, so expect
	// the right neighborhood rather than the exact answer.
	e, ok := o.constrainedSolve(0.4)
	if !ok {
		t.Fatal("constrained solve failed")
	}
	// True solution: 1/(0.5e+1) = 0.2 -> e = 6; the grid bias lands within
	// ~±40%.
	if e < 3.5 || e > 9 {
		t.Errorf("constrained solve e = %g, want near 6", e)
	}
}

func TestConstrainedSolveAlreadyBelowFloor(t *testing.T) {
	o := NewOnline()
	o.Observe(1, 1.0)
	o.Observe(2, 0.05) // below every pinned floor for target 0.4
	e, ok := o.constrainedSolve(0.4)
	if !ok || e != 2 {
		t.Errorf("already-reached case: e=%g ok=%v, want 2 true", e, ok)
	}
}

func TestConstrainedSolveRejectsFlatData(t *testing.T) {
	o := NewOnline()
	for e := 1; e <= 6; e++ {
		o.Observe(e, 0.5) // zero slope -> a <= 0 under every pinned c
	}
	if _, ok := o.constrainedSolve(0.1); ok {
		t.Error("flat observations should not solve")
	}
}

func TestPinnedFitSSEDiscriminates(t *testing.T) {
	// Data generated with floor 0.2: the pinned fit at c=0.2 must have a
	// lower SSE than at a badly wrong floor.
	o := NewOnline()
	for e := 1; e <= 10; e++ {
		o.Observe(e, 1/(0.3*float64(e)+0.8)+0.2)
	}
	_, sseGood, ok1 := o.pinnedFit(0.4, 0.2)
	_, sseBad, ok2 := o.pinnedFit(0.4, 0.36)
	if !ok1 || !ok2 {
		t.Fatal("pinned fits failed")
	}
	if sseGood >= sseBad {
		t.Errorf("SSE at the true floor (%g) should beat a wrong floor (%g)", sseGood, sseBad)
	}
}

func TestClampEpochs(t *testing.T) {
	cases := map[float64]int{-5: 1, 0: 1, 0.4: 1, 3.2: 4, 200000: 100000}
	for in, want := range cases {
		if got := clampEpochs(in); got != want {
			t.Errorf("clampEpochs(%g) = %d, want %d", in, got, want)
		}
	}
}
