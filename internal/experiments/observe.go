package experiments

// Observability plumbing for the experiment engine. cmd/cebench installs a
// collector before RunAll; every executed training cell then records its
// trace and metrics into a scope named after the artifact and cell (e.g.
// "fig12/LR-YFCC/Siren"). Scope names are unique per cell and each cell is
// the sole writer of its scope, so the merged export stays byte-identical
// at any engine parallelism.

import (
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/trainer"
)

// activeCollector is the engine-wide observability sink; nil means tracing
// is off (the default) and every helper below is a no-op.
var activeCollector atomic.Pointer[obs.Collector]

// SetCollector points the training helpers' observability at c; nil
// detaches. Install before RunAll — swapping mid-run would split a batch's
// scopes across collectors.
func SetCollector(c *obs.Collector) { activeCollector.Store(c) }

// observed attaches the collector scope named name to r when collection is
// on, and returns r so call sites can chain it around trainer.NewRunner.
func observed(r *trainer.Runner, name string) *trainer.Runner {
	if c := activeCollector.Load(); c != nil && name != "" {
		r.SetObserver(c.Scope(name))
	}
	return r
}
