// Package distml runs Bulk Synchronous Parallel mini-batch SGD across real
// concurrent workers exchanging gradients over the wire — the two
// synchronization patterns of the paper's Fig. 5 made concrete:
//
//   - TrainObjectStore uses the stateless pattern over the HTTP object
//     store (internal/objstore): every worker uploads its gradient, a
//     designated worker downloads all of them, aggregates, and re-uploads
//     the model, and every worker downloads it again — the (3n-2) transfers
//     the analytical model charges stateless storage for;
//   - TrainParamServer uses the parameter-server pattern over the TCP
//     server (internal/psnet): each worker pushes once and pulls once, the
//     server aggregates locally — the (2n-2) pattern.
//
// Both produce numerically real training: the in-process simulator in
// internal/trainer models these exchanges' timing and billing, and this
// package demonstrates the exchanges themselves working end to end.
package distml

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/ml"
	"repro/internal/objstore"
	"repro/internal/psnet"
	"repro/internal/sim"
)

// Config describes one distributed training run.
type Config struct {
	Objective   ml.Objective
	Data        *dataset.Matrix
	Workers     int
	BatchPerWkr int
	LR          float64
	Epochs      int
	Seed        uint64
}

func (c Config) validate() error {
	if c.Objective == nil || c.Data == nil {
		return fmt.Errorf("distml: nil objective or data")
	}
	if c.Workers < 1 {
		return fmt.Errorf("distml: need at least one worker")
	}
	if c.Data.Rows < c.Workers {
		return fmt.Errorf("distml: %d rows cannot feed %d workers", c.Data.Rows, c.Workers)
	}
	if c.LR <= 0 {
		return fmt.Errorf("distml: non-positive learning rate %g", c.LR)
	}
	if c.Epochs < 1 {
		return fmt.Errorf("distml: need at least one epoch")
	}
	return nil
}

// Result reports a finished distributed run.
type Result struct {
	Weights   []float64
	LossTrace []float64 // full-data loss after each epoch
	Rounds    int       // BSP iterations executed
}

// EncodeVec serializes a float64 vector little-endian (the wire format for
// gradients and models in the object store).
func EncodeVec(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(f))
	}
	return out
}

// DecodeVec parses an EncodeVec payload.
func DecodeVec(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("distml: payload length %d not a multiple of 8", len(b))
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, nil
}

// iterationsPerEpoch mirrors the in-memory trainer: each worker consumes
// its shard once per epoch, batch rows at a time.
func iterationsPerEpoch(shards []*dataset.Matrix, batch int) int {
	min := shards[0].Rows
	for _, s := range shards[1:] {
		if s.Rows < min {
			min = s.Rows
		}
	}
	if batch <= 0 || batch > min {
		batch = min
	}
	k := min / batch
	if k < 1 {
		k = 1
	}
	return k
}

// TrainObjectStore runs the stateless-storage pattern against the object
// store at client. Worker 0 is the designated aggregator.
func TrainObjectStore(cfg Config, client *objstore.Client) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	shards := cfg.Data.Partition(cfg.Workers)
	k := iterationsPerEpoch(shards, cfg.BatchPerWkr)
	dim := cfg.Data.Cols

	// Seed the global model.
	if err := client.Put("model/0", EncodeVec(make([]float64, dim))); err != nil {
		return nil, err
	}

	workers := make([]*ml.Worker, cfg.Workers)
	seedRng := sim.NewRand(cfg.Seed)
	for i := range workers {
		workers[i] = ml.NewWorker(shards[i], sim.NewRand(seedRng.Uint64()+uint64(i)))
	}

	res := &Result{}
	var wg sync.WaitGroup
	errs := make([]error, cfg.Workers)
	totalRounds := cfg.Epochs * k

	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			worker := workers[w]
			for round := 0; round < totalRounds; round++ {
				// Pull the round's model.
				model, err := waitGet(client, fmt.Sprintf("model/%d", round))
				if err != nil {
					errs[w] = err
					return
				}
				// Compute and upload this worker's gradient.
				grad := worker.Gradient(cfg.Objective, model, cfg.BatchPerWkr)
				if err := client.Put(fmt.Sprintf("grads/%d/%d", round, w), EncodeVec(grad)); err != nil {
					errs[w] = err
					return
				}
				// The designated worker aggregates once all n gradients are
				// visible and publishes the next model.
				if w == 0 {
					sum := make([]float64, dim)
					for j := 0; j < cfg.Workers; j++ {
						g, err := waitGet(client, fmt.Sprintf("grads/%d/%d", round, j))
						if err != nil {
							errs[w] = err
							return
						}
						ml.Add(g, sum)
					}
					ml.Axpy(-cfg.LR/float64(cfg.Workers), sum, model)
					if err := client.Put(fmt.Sprintf("model/%d", round+1), EncodeVec(model)); err != nil {
						errs[w] = err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	final, err := waitGet(client, fmt.Sprintf("model/%d", totalRounds))
	if err != nil {
		return nil, err
	}
	res.Weights = final
	res.Rounds = totalRounds
	res.LossTrace = lossTrace(cfg, k, func(round int) ([]float64, error) {
		return waitGet(client, fmt.Sprintf("model/%d", round))
	})
	return res, nil
}

// waitGet polls the store until key appears (the workers' "poll for the
// aggregated model" step the paper's request accounting includes).
func waitGet(client *objstore.Client, key string) ([]float64, error) {
	for attempt := 0; ; attempt++ {
		data, ok, err := client.Get(key)
		if err != nil {
			return nil, err
		}
		if ok {
			return DecodeVec(data)
		}
		if attempt > 100000 {
			return nil, fmt.Errorf("distml: %s never appeared", key)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// lossTrace evaluates the full-data loss at each epoch boundary.
func lossTrace(cfg Config, k int, modelAt func(round int) ([]float64, error)) []float64 {
	var trace []float64
	for e := 1; e <= cfg.Epochs; e++ {
		model, err := modelAt(e * k)
		if err != nil {
			break
		}
		trace = append(trace, cfg.Objective.Loss(model, cfg.Data))
	}
	return trace
}

// TrainParamServer runs the parameter-server pattern against a psnet server
// listening at addr.
func TrainParamServer(cfg Config, addr string) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	shards := cfg.Data.Partition(cfg.Workers)
	k := iterationsPerEpoch(shards, cfg.BatchPerWkr)
	dim := cfg.Data.Cols
	totalRounds := cfg.Epochs * k

	workers := make([]*ml.Worker, cfg.Workers)
	seedRng := sim.NewRand(cfg.Seed)
	for i := range workers {
		workers[i] = ml.NewWorker(shards[i], sim.NewRand(seedRng.Uint64()+uint64(i)))
	}

	// Epoch-boundary snapshots for the loss trace, captured by worker 0.
	snapshots := make([][]float64, 0, cfg.Epochs)

	var wg sync.WaitGroup
	errs := make([]error, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client, err := psnet.Dial(addr, w)
			if err != nil {
				errs[w] = err
				return
			}
			defer client.Close()
			if err := client.Init(make([]float64, dim)); err != nil {
				errs[w] = err
				return
			}
			worker := workers[w]
			for round := 0; round < totalRounds; round++ {
				model, srvRound, err := client.Pull()
				if err != nil {
					errs[w] = err
					return
				}
				if srvRound != round {
					errs[w] = fmt.Errorf("distml: worker %d expected round %d, server at %d", w, round, srvRound)
					return
				}
				grad := worker.Gradient(cfg.Objective, model, cfg.BatchPerWkr)
				if _, err := client.Push(round, grad); err != nil {
					errs[w] = err
					return
				}
				if w == 0 && (round+1)%k == 0 {
					m, _, err := client.Pull()
					if err != nil {
						errs[w] = err
						return
					}
					snapshots = append(snapshots, m)
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &Result{Rounds: totalRounds}
	for _, m := range snapshots {
		res.LossTrace = append(res.LossTrace, cfg.Objective.Loss(m, cfg.Data))
	}
	if n := len(snapshots); n > 0 {
		res.Weights = snapshots[n-1]
	}
	return res, nil
}
