package cost

import (
	"math"
	"sync"
	"testing"

	"repro/internal/workload"
)

// uncachedEpochTime recomputes t'(θ) from the component models, bypassing
// the memo entirely.
func uncachedEpochTime(m *Model, a Allocation) float64 {
	return m.ComputeTime(a) + m.SyncTime(a)
}

// uncachedEpochCost recomputes c'(θ) from the component models.
func uncachedEpochCost(m *Model, a Allocation) float64 {
	t := uncachedEpochTime(m, a)
	return m.functionEpochCost(a, t) + m.storageEpochCost(a, t)
}

// TestEpochMemoCoherent asserts the memoized estimates are bit-identical to
// an uncached recomputation for every feasible point of the default grid —
// cached and cold paths must produce the same float arithmetic.
func TestEpochMemoCoherent(t *testing.T) {
	for _, w := range workload.Evaluated() {
		m := NewModel(w)
		g := DefaultGrid()
		for _, n := range g.Ns {
			for _, mem := range g.MemsMB {
				for _, s := range g.Storages {
					a := Allocation{N: n, MemMB: mem, Storage: s}
					if !m.Feasible(a) {
						continue
					}
					wantT, wantC := uncachedEpochTime(m, a), uncachedEpochCost(m, a)
					// Ask twice: first call populates the memo, second hits it.
					for pass := 0; pass < 2; pass++ {
						if got := m.EpochTime(a); got != wantT {
							t.Fatalf("%s %v pass %d: EpochTime = %v, uncached %v", w.Name, a, pass, got, wantT)
						}
						if got := m.EpochCost(a); got != wantC {
							t.Fatalf("%s %v pass %d: EpochCost = %v, uncached %v", w.Name, a, pass, got, wantC)
						}
					}
				}
			}
		}
	}
}

// TestParetoSetMemoized asserts repeated ParetoSet calls return equal
// boundaries and that the returned slice is a private copy (mutating it must
// not poison the cache).
func TestParetoSetMemoized(t *testing.T) {
	m := NewModel(workload.MobileNet())
	g := DefaultGrid()
	first := m.ParetoSet(g)
	if len(first) == 0 {
		t.Fatal("empty Pareto set")
	}
	// Sabotage the caller's copy.
	for i := range first {
		first[i].Time = math.NaN()
		first[i].Cost = -1
	}
	second := m.ParetoSet(g)
	want := Pareto(m.Enumerate(g))
	if len(second) != len(want) {
		t.Fatalf("cached ParetoSet has %d points, recomputed %d", len(second), len(want))
	}
	for i := range second {
		if second[i] != want[i] {
			t.Fatalf("cached ParetoSet[%d] = %+v, recomputed %+v (cache poisoned by caller mutation?)", i, second[i], want[i])
		}
	}
}

// TestEpochMemoConcurrent hammers the memo from many goroutines on a cold
// model; run under -race this is the cache's thread-safety gate.
func TestEpochMemoConcurrent(t *testing.T) {
	m := NewModel(workload.ResNet50())
	g := DefaultGrid()
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, n := range g.Ns {
				for _, mem := range g.MemsMB {
					a := Allocation{N: n, MemMB: mem, Storage: g.Storages[n%len(g.Storages)]}
					if !m.Feasible(a) {
						continue
					}
					if got, want := m.EpochTime(a), uncachedEpochTime(m, a); got != want {
						select {
						case errs <- a.String():
						default:
						}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if bad, ok := <-errs; ok {
		t.Fatalf("concurrent EpochTime diverged from uncached at %s", bad)
	}
}

// BenchmarkEpochEstimatesCold measures the uncached estimate path (memo
// bypassed), the per-point price before this PR.
func BenchmarkEpochEstimatesCold(b *testing.B) {
	m := NewModel(workload.MobileNet())
	a := Allocation{N: 50, MemMB: 3072, Storage: DefaultGrid().Storages[0]}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if uncachedEpochTime(m, a)+uncachedEpochCost(m, a) <= 0 {
			b.Fatal("bad estimate")
		}
	}
}

// BenchmarkEpochEstimatesCached measures a memo hit: what the planner pays
// per candidate probe after the first evaluation of an allocation.
func BenchmarkEpochEstimatesCached(b *testing.B) {
	m := NewModel(workload.MobileNet())
	a := Allocation{N: 50, MemMB: 3072, Storage: DefaultGrid().Storages[0]}
	m.EpochTime(a) // warm the memo
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.EpochTime(a)+m.EpochCost(a) <= 0 {
			b.Fatal("bad estimate")
		}
	}
}

// BenchmarkParetoSetCached measures a warm ParetoSet call (one defensive
// copy instead of a full grid enumeration + sort).
func BenchmarkParetoSetCached(b *testing.B) {
	m := NewModel(workload.MobileNet())
	g := DefaultGrid()
	m.ParetoSet(g) // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if front := m.ParetoSet(g); len(front) == 0 {
			b.Fatal("no front")
		}
	}
}
