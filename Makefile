GO ?= go

# Packages that run real goroutine concurrency (live substrate) and must
# stay race-clean.
RACE_PKGS := ./internal/distml/... ./internal/psnet/... ./internal/objstore/... \
             ./internal/lambda/... ./internal/platform/livebackend/...

.PHONY: check fmt vet build test race bench

check: fmt vet build test race

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)
	$(GO) test -race -run 'TestCells|TestRunAll|Memo|Concurrent' \
		./internal/experiments/ ./internal/cost/

bench:
	$(GO) test -bench=. -benchtime=1x ./...
