// Package storage models the external storage services serverless ML
// workflows use for parameter synchronization: S3, DynamoDB, ElastiCache and
// a VM-based parameter server (VM-PS). Each service is described by its
// latency, bandwidth, pricing pattern (per-request vs per-runtime), object
// size limit and synchronization pattern, matching Table I and Fig. 5 of the
// paper:
//
//   - stateless services (S3, DynamoDB, ElastiCache) cannot aggregate, so a
//     synchronization of n functions serializes (3n-2) model-sized transfers:
//     a designated function must pull every gradient, aggregate, and re-upload
//     the global model for everyone to re-pull;
//   - VM-PS aggregates locally, so a synchronization costs (2n-2) transfers.
//
// The package also provides Store, a real in-memory key-value store the
// simulated trainer uses to actually exchange and aggregate gradient
// vectors, so that training results are numerically real even though timing
// and billing come from the models here.
package storage

import (
	"fmt"

	"repro/internal/pricing"
)

// Kind identifies one of the four modeled services.
type Kind int

const (
	S3 Kind = iota
	DynamoDB
	ElastiCache
	VMPS
	// Pocket is an optional fifth service modeling Pocket-style elastic
	// ephemeral storage (Klimovic et al., OSDI'18 — the paper's [22]):
	// auto-scaling and low-latency like ElastiCache but request-charged at
	// a premium. Not part of the paper's evaluation; enabled by extended
	// grids only.
	Pocket
	numKinds
)

// Kinds lists the paper's four evaluated services in display order.
func Kinds() []Kind { return []Kind{S3, DynamoDB, ElastiCache, VMPS} }

// ExtendedKinds adds the optional Pocket service to the evaluated four.
func ExtendedKinds() []Kind { return []Kind{S3, DynamoDB, ElastiCache, VMPS, Pocket} }

func (k Kind) String() string {
	switch k {
	case S3:
		return "S3"
	case DynamoDB:
		return "DynamoDB"
	case ElastiCache:
		return "ElastiCache"
	case VMPS:
		return "VM-PS"
	case Pocket:
		return "Pocket"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Short returns the single-letter label the paper uses in Fig. 18.
func (k Kind) Short() string {
	switch k {
	case S3:
		return "S"
	case DynamoDB:
		return "D"
	case ElastiCache:
		return "E"
	case VMPS:
		return "V"
	case Pocket:
		return "P"
	default:
		return "?"
	}
}

// ChargeModel distinguishes the two pricing patterns of Eq. 5.
type ChargeModel int

const (
	// ByRequest bills each storage request (S3, DynamoDB).
	ByRequest ChargeModel = iota
	// ByRuntime bills wall-clock time the service is provisioned
	// (ElastiCache, VM-PS).
	ByRuntime
)

func (c ChargeModel) String() string {
	if c == ByRequest {
		return "request"
	}
	return "runtime"
}

// Service is the performance/price model of one external storage service.
type Service struct {
	kind Kind

	// Stateless services follow the (3n-2) sync pattern; a parameter server
	// follows (2n-2).
	stateless bool

	// latency is the per-request latency in seconds.
	latency float64

	// perConnMBps is the bandwidth one client connection achieves, in MB/s.
	perConnMBps float64

	// aggregateMBps caps the total bandwidth across all concurrent clients
	// (a single VM's NIC, for example). Zero means the service auto-scales
	// and has no aggregate cap.
	aggregateMBps float64

	// maxObjectMB limits stored object size (DynamoDB's 400 KB item limit).
	// Zero means unlimited.
	maxObjectMB float64

	// provisionDelay is the time before a manually-scaled service is usable.
	provisionDelay float64

	charge ChargeModel
	prices pricing.PriceBook
}

// NewS3 returns the S3 model: auto-scaling, high latency, request-charged.
func NewS3(pb pricing.PriceBook) *Service {
	return &Service{
		kind: S3, stateless: true,
		latency: 0.015, perConnMBps: 80, aggregateMBps: 0,
		charge: ByRequest, prices: pb,
	}
}

// NewDynamoDB returns the DynamoDB model: auto-scaling, medium latency,
// request-charged, 400 KB object limit.
func NewDynamoDB(pb pricing.PriceBook) *Service {
	return &Service{
		kind: DynamoDB, stateless: true,
		latency: 0.005, perConnMBps: 40, aggregateMBps: 0,
		maxObjectMB: 0.4,
		charge:      ByRequest, prices: pb,
	}
}

// NewElastiCache returns the ElastiCache model: manually scaled, low
// latency, runtime-charged, in-memory bandwidth that holds up well under
// concurrency.
func NewElastiCache(pb pricing.PriceBook) *Service {
	return &Service{
		kind: ElastiCache, stateless: true,
		latency: 0.001, perConnMBps: 200, aggregateMBps: 0,
		provisionDelay: 30,
		charge:         ByRuntime, prices: pb,
	}
}

// NewVMPS returns the VM parameter-server model: manually scaled, low
// latency, runtime-charged, aggregates locally but bounded by one NIC.
func NewVMPS(pb pricing.PriceBook) *Service {
	return &Service{
		kind: VMPS, stateless: false,
		latency: 0.0005, perConnMBps: 150, aggregateMBps: 3125,
		provisionDelay: 40,
		charge:         ByRuntime, prices: pb,
	}
}

// NewPocket returns the Pocket model: auto-scaling ephemeral storage with
// in-memory latency, request-charged at a premium over S3.
func NewPocket(pb pricing.PriceBook) *Service {
	return &Service{
		kind: Pocket, stateless: true,
		latency: 0.0015, perConnMBps: 250, aggregateMBps: 0,
		charge: ByRequest, prices: pb,
	}
}

// New returns the model for kind under price book pb.
func New(kind Kind, pb pricing.PriceBook) *Service {
	switch kind {
	case S3:
		return NewS3(pb)
	case DynamoDB:
		return NewDynamoDB(pb)
	case ElastiCache:
		return NewElastiCache(pb)
	case VMPS:
		return NewVMPS(pb)
	case Pocket:
		return NewPocket(pb)
	default:
		panic(fmt.Sprintf("storage: unknown kind %d", int(kind)))
	}
}

// All returns one model per service kind, in display order.
func All(pb pricing.PriceBook) []*Service {
	ks := Kinds()
	out := make([]*Service, len(ks))
	for i, k := range ks {
		out[i] = New(k, pb)
	}
	return out
}

// Kind reports which service this model describes.
func (s *Service) Kind() Kind { return s.kind }

// Name returns the human-readable service name.
func (s *Service) Name() string { return s.kind.String() }

// Stateless reports whether the service needs function-side aggregation
// (the (3n-2) pattern of Fig. 5).
func (s *Service) Stateless() bool { return s.stateless }

// ChargeModel reports how the service bills.
func (s *Service) ChargeModel() ChargeModel { return s.charge }

// ChargesByRequest reports whether the service bills per request rather than
// per provisioned runtime (the two pricing patterns of Eq. 5).
func (s *Service) ChargesByRequest() bool { return s.charge == ByRequest }

// Latency returns the per-request latency in seconds.
func (s *Service) Latency() float64 { return s.latency }

// ProvisionDelay returns the startup delay before a manually-scaled service
// is usable; zero for auto-scaling services.
func (s *Service) ProvisionDelay() float64 { return s.provisionDelay }

// MaxObjectMB returns the object size limit in MB (0 = unlimited).
func (s *Service) MaxObjectMB() float64 { return s.maxObjectMB }

// Supports reports whether a model of modelMB fits the service's object
// size limit (the DynamoDB "N/A" cases in Table II and Fig. 18).
func (s *Service) Supports(modelMB float64) bool {
	return s.maxObjectMB == 0 || modelMB <= s.maxObjectMB
}

// EffectiveMBps returns the bandwidth one of n concurrent clients sees for
// small objects; large objects additionally benefit from the multipart ramp
// (see TransferTime).
func (s *Service) EffectiveMBps(n int) float64 {
	if n < 1 {
		n = 1
	}
	b := s.perConnMBps
	if s.aggregateMBps > 0 {
		if shared := s.aggregateMBps / float64(n); shared < b {
			b = shared
		}
	}
	return b
}

// rampFactor models multipart/parallel transfers: large objects are
// sharded across keys/connections, raising effective per-client bandwidth
// up to 4x, still subject to the service's aggregate capacity.
func rampFactor(sizeMB float64) float64 {
	r := 1 + sizeMB/64
	if r > 4 {
		r = 4
	}
	return r
}

// TransferTime returns the time to move one object of sizeMB between a
// function and the service, for one of n concurrent clients.
func (s *Service) TransferTime(n int, sizeMB float64) float64 {
	if n < 1 {
		n = 1
	}
	b := s.perConnMBps * rampFactor(sizeMB)
	if s.aggregateMBps > 0 {
		if shared := s.aggregateMBps / float64(n); shared < b {
			b = shared
		}
	}
	return sizeMB/b + s.latency
}

// SyncTransfers returns the number of serialized model-sized transfers one
// parameter synchronization of n functions requires (Eq. 3).
func (s *Service) SyncTransfers(n int) int {
	if n <= 1 {
		return 0
	}
	if s.stateless {
		return 3*n - 2
	}
	return 2*n - 2
}

// SyncTime returns the wall-clock time of one parameter synchronization of
// a model of modelMB across n functions (Eq. 3):
//
//	stateless: (3n-2) * (M/b_s + l_s)
//	VM-PS:     (2n-2) * (M/b_s + l_s)
func (s *Service) SyncTime(n int, modelMB float64) float64 {
	return float64(s.SyncTransfers(n)) * s.TransferTime(n, modelMB)
}

// SyncRequests returns the number of billable storage requests one
// synchronization issues. Beyond the 3n+1 data requests of the stateless
// pattern, workers poll for the aggregated model to appear, which the paper
// folds into its (10n+2)-requests-per-iteration cost term; we reproduce that
// count for request-charged services.
func (s *Service) SyncRequests(n int) int {
	if n <= 1 || s.charge != ByRequest {
		return 0
	}
	return 10*n + 2
}

// syncRequestMix splits SyncRequests into writes and reads: per sync there
// are n gradient PUTs plus 1 aggregated-model PUT; everything else (gradient
// pulls, model pulls, polling) is a read.
func (s *Service) syncRequestMix(n int) (writes, reads int) {
	total := s.SyncRequests(n)
	if total == 0 {
		return 0, 0
	}
	writes = n + 1
	reads = total - writes
	return writes, reads
}

// SyncRequestCost returns the $ cost of the requests of one synchronization
// for request-charged services; 0 for runtime-charged services.
func (s *Service) SyncRequestCost(n int, modelMB float64) float64 {
	writes, reads := s.syncRequestMix(n)
	if writes == 0 {
		return 0
	}
	switch s.kind {
	case DynamoDB:
		kb := modelMB * 1024
		return float64(writes)*s.prices.DynamoWriteCost(kb) +
			float64(reads)*s.prices.DynamoReadCost(kb)
	case Pocket:
		// Premium per-request pricing buys the in-memory latency.
		return 5 * (float64(writes)*s.prices.S3PutRequest +
			float64(reads)*s.prices.S3GetRequest)
	default: // S3 and any future request-charged service
		return float64(writes)*s.prices.S3PutRequest +
			float64(reads)*s.prices.S3GetRequest
	}
}

// RuntimeCost returns the $ cost of keeping a runtime-charged service
// provisioned for seconds; 0 for request-charged services.
func (s *Service) RuntimeCost(seconds float64) float64 {
	if s.charge != ByRuntime {
		return 0
	}
	switch s.kind {
	case ElastiCache:
		return pricing.HourlyCost(s.prices.ElastiCacheNodeHour, seconds)
	case VMPS:
		return pricing.HourlyCost(s.prices.VMHour, seconds)
	default:
		return 0
	}
}

// LoadCost returns the $ cost of the initial dataset load: each of n
// functions issues one GET against S3 regardless of the sync service (the
// paper keeps training data in S3; Eq. 2's load term uses B_S3).
func LoadCost(pb pricing.PriceBook, n int) float64 {
	return float64(n) * pb.S3GetRequest
}

// Characteristics summarizes a service for Table I.
type Characteristics struct {
	Name           string
	ElasticScaling string // "Auto" or "Manual"
	LatencyClass   string // "Low", "Medium", "High"
	PricingPattern string // "Data request" or "Execution time"
	CostClass      string // "$", "$$", "$$$"
}

// Characterize returns the Table I row for the service.
func (s *Service) Characterize() Characteristics {
	c := Characteristics{Name: s.Name()}
	if s.provisionDelay > 0 {
		c.ElasticScaling = "Manual"
	} else {
		c.ElasticScaling = "Auto"
	}
	switch {
	case s.latency >= 0.015:
		c.LatencyClass = "High"
	case s.latency >= 0.003:
		c.LatencyClass = "Medium"
	default:
		c.LatencyClass = "Low"
	}
	if s.charge == ByRequest {
		c.PricingPattern = "Data request"
	} else {
		c.PricingPattern = "Execution time"
	}
	switch s.kind {
	case S3:
		c.CostClass = "$"
	case DynamoDB, Pocket:
		c.CostClass = "$$"
	default:
		c.CostClass = "$$$"
	}
	return c
}
