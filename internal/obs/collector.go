package obs

import (
	"fmt"
	"sort"
	"sync"
)

// Collector merges many independent observers — one per experiment cell —
// into a single exportable trace. Each scope has exactly one writer (the
// goroutine running that cell), so events within a scope are recorded in
// that cell's deterministic order; the exporters then emit scopes in sorted
// name order. Together those two properties make the merged trace
// byte-identical regardless of how many worker goroutines the experiment
// engine ran, because nothing about the output depends on cross-scope
// interleaving.
//
// A nil *Collector is a valid disabled sink: Scope returns nil, which every
// obs method treats as no-op.
type Collector struct {
	mu     sync.Mutex
	scopes map[string]*Observer
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{scopes: make(map[string]*Observer)}
}

// Enabled reports whether the collector records anything.
func (c *Collector) Enabled() bool { return c != nil }

// Scope returns the observer for name, creating it on first use. Scope
// names must be unique per logical unit of work (e.g. "fig13/ce/budget=1.0")
// — two cells sharing a name would interleave nondeterministically.
func (c *Collector) Scope(name string) *Observer {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	o := c.scopes[name]
	if o == nil {
		o = New()
		c.scopes[name] = o
	}
	return o
}

// ScopeName builds the canonical indexed scope name "<prefix>/<unit><idx>"
// with idx zero-padded to the width of count-1 (e.g. ScopeName("macro-day",
// "t", 7, 64) = "macro-day/t07"). Exporters emit scopes in sorted name
// order, so zero-padding keeps the numeric order and the lexicographic
// order identical — unit 10 must not sort between unit 1 and unit 2 —
// which in turn keeps the merged export byte-identical however the units
// were sharded across workers.
func ScopeName(prefix, unit string, idx, count int) string {
	width := 1
	for n := count - 1; n >= 10; n /= 10 {
		width++
	}
	return fmt.Sprintf("%s/%s%0*d", prefix, unit, width, idx)
}

// NamedScope pairs a scope name with its observer for export.
type NamedScope struct {
	Name string
	Obs  *Observer
}

// Scopes returns the collector's scopes sorted by name.
func (c *Collector) Scopes() []NamedScope {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.scopes))
	for k := range c.scopes {
		names = append(names, k)
	}
	sort.Strings(names)
	out := make([]NamedScope, 0, len(names))
	for _, n := range names {
		out = append(out, NamedScope{Name: n, Obs: c.scopes[n]})
	}
	return out
}
