// Package fpreducetest seeds scheduling-order-dependent float reductions
// for the fpreduce analyzer's golden test.
package fpreducetest

import "sync"

// BadGoroutineSum races float addition order against the scheduler.
func BadGoroutineSum(xs [][]float64) float64 {
	var sum float64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, shard := range xs {
		wg.Add(1)
		go func(shard []float64) {
			defer wg.Done()
			local := 0.0
			for _, x := range shard {
				local += x
			}
			mu.Lock()
			sum += local // finding: shared float += in goroutine
			mu.Unlock()
		}(shard)
	}
	wg.Wait()
	return sum
}

// BadMapSum sums in randomized map order.
func BadMapSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // finding: shared float += in map range
	}
	return sum
}

// LegalSlotted reduces into per-index slots, then sums serially in fixed
// order — the sanctioned pattern, no findings.
func LegalSlotted(xs [][]float64) float64 {
	partial := make([]float64, len(xs))
	var wg sync.WaitGroup
	for i := range xs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, x := range xs[i] {
				partial[i] += x
			}
		}(i)
	}
	wg.Wait()
	sum := 0.0
	for _, p := range partial {
		sum += p
	}
	return sum
}

// LegalIntCount is integer accumulation: associative, order-free.
func LegalIntCount(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
