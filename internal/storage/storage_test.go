package storage

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/pricing"
)

func services() []*Service { return All(pricing.Default()) }

func byKind(k Kind) *Service { return New(k, pricing.Default()) }

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{S3: "S3", DynamoDB: "DynamoDB", ElastiCache: "ElastiCache", VMPS: "VM-PS"}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), name)
		}
	}
	shorts := map[Kind]string{S3: "S", DynamoDB: "D", ElastiCache: "E", VMPS: "V"}
	for k, s := range shorts {
		if k.Short() != s {
			t.Errorf("Kind(%d).Short() = %q, want %q", int(k), k.Short(), s)
		}
	}
}

func TestAllReturnsFourDistinctServices(t *testing.T) {
	all := services()
	if len(all) != 4 {
		t.Fatalf("All returned %d services, want 4", len(all))
	}
	seen := map[Kind]bool{}
	for _, s := range all {
		if seen[s.Kind()] {
			t.Errorf("duplicate kind %v", s.Kind())
		}
		seen[s.Kind()] = true
	}
}

func TestSyncTransfersPatterns(t *testing.T) {
	for _, tc := range []struct {
		kind Kind
		n    int
		want int
	}{
		{S3, 10, 28}, // 3n-2
		{DynamoDB, 10, 28},
		{ElastiCache, 10, 28},
		{VMPS, 10, 18}, // 2n-2
		{S3, 1, 0},     // single worker never synchronizes
		{VMPS, 1, 0},
	} {
		if got := byKind(tc.kind).SyncTransfers(tc.n); got != tc.want {
			t.Errorf("%v.SyncTransfers(%d) = %d, want %d", tc.kind, tc.n, got, tc.want)
		}
	}
}

func TestVMPSFewerTransfersThanStateless(t *testing.T) {
	if err := quick.Check(func(raw uint8) bool {
		n := int(raw%100) + 2
		return byKind(VMPS).SyncTransfers(n) < byKind(S3).SyncTransfers(n)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestDynamoObjectLimit(t *testing.T) {
	d := byKind(DynamoDB)
	if !d.Supports(0.1) {
		t.Error("DynamoDB should support a 100KB model")
	}
	if d.Supports(12) {
		t.Error("DynamoDB must reject a 12MB model (400KB item limit)")
	}
	for _, k := range []Kind{S3, ElastiCache, VMPS} {
		if !byKind(k).Supports(340) {
			t.Errorf("%v should support a 340MB model", k)
		}
	}
}

func TestLatencyOrdering(t *testing.T) {
	// Table I: S3 high, DynamoDB medium, ElastiCache/VM-PS low.
	s3, dy, ec, vm := byKind(S3), byKind(DynamoDB), byKind(ElastiCache), byKind(VMPS)
	if !(s3.Latency() > dy.Latency() && dy.Latency() > ec.Latency() && dy.Latency() > vm.Latency()) {
		t.Errorf("latency ordering violated: s3=%g dynamo=%g ec=%g vm=%g",
			s3.Latency(), dy.Latency(), ec.Latency(), vm.Latency())
	}
}

func TestEffectiveBandwidthContention(t *testing.T) {
	vm := byKind(VMPS)
	if vm.EffectiveMBps(1) != 150 {
		t.Errorf("VM-PS single-client bandwidth = %g, want 150", vm.EffectiveMBps(1))
	}
	if got := vm.EffectiveMBps(50); math.Abs(got-62.5) > 1e-9 {
		t.Errorf("VM-PS 50-client bandwidth = %g, want 62.5 (3125/50)", got)
	}
	s3 := byKind(S3)
	if s3.EffectiveMBps(1) != s3.EffectiveMBps(1000) {
		t.Error("S3 auto-scales; bandwidth should not degrade with concurrency")
	}
}

func TestSyncTimeMonotoneInModelSize(t *testing.T) {
	for _, s := range services() {
		if s.SyncTime(10, 1) >= s.SyncTime(10, 10) {
			t.Errorf("%v: SyncTime not increasing in model size", s.Kind())
		}
	}
}

func TestSyncTimeMonotoneInWorkers(t *testing.T) {
	for _, s := range services() {
		if err := quick.Check(func(raw uint8) bool {
			n := int(raw%60) + 2
			return s.SyncTime(n, 1) < s.SyncTime(n+1, 1)
		}, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%v: %v", s.Kind(), err)
		}
	}
}

func TestSyncRequestCostOnlyForRequestCharged(t *testing.T) {
	for _, s := range services() {
		cost := s.SyncRequestCost(10, 0.1)
		if s.ChargeModel() == ByRequest && cost <= 0 {
			t.Errorf("%v: request-charged service has zero sync request cost", s.Kind())
		}
		if s.ChargeModel() == ByRuntime && cost != 0 {
			t.Errorf("%v: runtime-charged service has nonzero request cost %g", s.Kind(), cost)
		}
	}
}

func TestRuntimeCostOnlyForRuntimeCharged(t *testing.T) {
	for _, s := range services() {
		cost := s.RuntimeCost(3600)
		if s.ChargeModel() == ByRuntime && cost <= 0 {
			t.Errorf("%v: runtime-charged service has zero runtime cost", s.Kind())
		}
		if s.ChargeModel() == ByRequest && cost != 0 {
			t.Errorf("%v: request-charged service has nonzero runtime cost %g", s.Kind(), cost)
		}
	}
}

func TestSyncRequestsMatchPaperCount(t *testing.T) {
	// The paper's Eq. 5 bills (10n+2) requests per iteration for
	// request-charged storage.
	s3 := byKind(S3)
	if got := s3.SyncRequests(10); got != 102 {
		t.Errorf("S3.SyncRequests(10) = %d, want 102", got)
	}
	if got := byKind(VMPS).SyncRequests(10); got != 0 {
		t.Errorf("VM-PS.SyncRequests = %d, want 0", got)
	}
}

func TestDynamoSyncCostScalesWithModelSize(t *testing.T) {
	d := byKind(DynamoDB)
	small := d.SyncRequestCost(10, 0.01)
	big := d.SyncRequestCost(10, 0.4)
	if big <= small {
		t.Errorf("DynamoDB cost should grow with object size: %g vs %g", small, big)
	}
	// S3 charges per request regardless of size.
	s3 := byKind(S3)
	if s3.SyncRequestCost(10, 0.01) != s3.SyncRequestCost(10, 100) {
		t.Error("S3 per-request cost should not depend on object size")
	}
}

func TestProvisionDelayOnlyManualServices(t *testing.T) {
	for _, s := range services() {
		manual := s.Kind() == ElastiCache || s.Kind() == VMPS
		if manual && s.ProvisionDelay() <= 0 {
			t.Errorf("%v should have a provision delay", s.Kind())
		}
		if !manual && s.ProvisionDelay() != 0 {
			t.Errorf("%v should not have a provision delay", s.Kind())
		}
	}
}

func TestCharacterizeMatchesTableI(t *testing.T) {
	want := map[Kind]Characteristics{
		S3:          {Name: "S3", ElasticScaling: "Auto", LatencyClass: "High", PricingPattern: "Data request", CostClass: "$"},
		DynamoDB:    {Name: "DynamoDB", ElasticScaling: "Auto", LatencyClass: "Medium", PricingPattern: "Data request", CostClass: "$$"},
		ElastiCache: {Name: "ElastiCache", ElasticScaling: "Manual", LatencyClass: "Low", PricingPattern: "Execution time", CostClass: "$$$"},
		VMPS:        {Name: "VM-PS", ElasticScaling: "Manual", LatencyClass: "Low", PricingPattern: "Execution time", CostClass: "$$$"},
	}
	for _, s := range services() {
		if got := s.Characterize(); got != want[s.Kind()] {
			t.Errorf("%v.Characterize() = %+v, want %+v", s.Kind(), got, want[s.Kind()])
		}
	}
}

func TestLoadCost(t *testing.T) {
	pb := pricing.Default()
	if got, want := LoadCost(pb, 10), 10*pb.S3GetRequest; math.Abs(got-want) > 1e-15 {
		t.Errorf("LoadCost(10) = %g, want %g", got, want)
	}
}

func TestTransferTimeIncludesLatency(t *testing.T) {
	s3 := byKind(S3)
	if got := s3.TransferTime(1, 0); got != s3.Latency() {
		t.Errorf("zero-byte transfer time = %g, want latency %g", got, s3.Latency())
	}
}
