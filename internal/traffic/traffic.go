// Package traffic generates deterministic arrival processes for
// trace-driven serverless experiments: Poisson, two-state bursty (MMPP),
// diurnal (nonhomogeneous Poisson), and replay of per-minute invocation
// counts parsed from Azure-style trace files.
//
// Every process is exposed as a lazy Cursor that yields one arrival time
// per call. The simulator schedules only the next arrival per tenant, so
// pending-event count and memory stay O(tenants) no matter how long the
// horizon or the trace is — the arrival stream is never materialized.
//
// Determinism: a cursor draws exclusively from the *sim.Rand it was
// constructed with, so per-tenant named streams give every tenant an
// arrival sequence independent of tenant count, shard layout and worker
// count.
package traffic

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Cursor yields successive arrival times (seconds, strictly increasing)
// for one tenant. Next returns ok=false once the process is exhausted —
// past its horizon or, for trace replay, past the end of the trace row.
// After the first false, every subsequent call returns false.
type Cursor interface {
	// Next runs once per arrival — tens of millions of times per scenario —
	// so every implementation must be allocation-free (cescalint enforces
	// this via the hotpath annotation).
	//
	//cescalint:hotpath
	Next() (t float64, ok bool)
}

// Kind selects an arrival process.
type Kind uint8

const (
	// Poisson is a homogeneous Poisson process at Config.Rate.
	Poisson Kind = iota
	// Bursty is a two-state Markov-modulated Poisson process: calm
	// periods at Config.Rate punctuated by bursts at Rate×BurstFactor.
	Bursty
	// Diurnal is a nonhomogeneous Poisson process whose rate follows a
	// sinusoidal day/night cycle around Config.Rate.
	Diurnal
	// TraceReplay replays one row of per-minute invocation counts,
	// spreading each minute's arrivals stratified-uniformly inside it.
	TraceReplay
)

// String returns the flag-facing name of the kind.
func (k Kind) String() string {
	switch k {
	case Poisson:
		return "poisson"
	case Bursty:
		return "bursty"
	case Diurnal:
		return "diurnal"
	case TraceReplay:
		return "trace"
	}
	return fmt.Sprintf("traffic.Kind(%d)", uint8(k))
}

// ParseKind maps a flag value to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "poisson":
		return Poisson, nil
	case "bursty":
		return Bursty, nil
	case "diurnal":
		return Diurnal, nil
	case "trace":
		return TraceReplay, nil
	}
	return 0, fmt.Errorf("traffic: unknown kind %q (want poisson|bursty|diurnal|trace)", s)
}

// Config describes one tenant's arrival process. Zero values for the
// kind-specific knobs take the documented defaults.
type Config struct {
	Kind    Kind
	Rate    float64 // mean arrivals per second (calm-state rate for Bursty)
	Horizon float64 // stop time in seconds; no arrival at or past it

	// Bursty knobs.
	BurstFactor float64 // burst-state rate multiplier (default 8)
	MeanBurst   float64 // mean burst dwell, seconds (default 60)
	MeanCalm    float64 // mean calm dwell, seconds (default 540)

	// Diurnal knobs: rate(t) = Rate·(1 + Amplitude·sin(2π(t+Phase)/Period)).
	Amplitude float64 // relative swing in [0, 1] (default 0.8)
	Period    float64 // cycle length, seconds (default 86400)
	Phase     float64 // cycle offset, seconds

	// TraceReplay knobs.
	Trace Trace // parsed per-minute counts
	Row   int   // which trace row this tenant replays
}

// withDefaults fills zero-valued knobs.
func (c Config) withDefaults() Config {
	if c.BurstFactor == 0 {
		c.BurstFactor = 8
	}
	if c.MeanBurst == 0 {
		c.MeanBurst = 60
	}
	if c.MeanCalm == 0 {
		c.MeanCalm = 540
	}
	if c.Amplitude == 0 {
		c.Amplitude = 0.8
	}
	if c.Period == 0 {
		c.Period = 86400
	}
	return c
}

// Validate reports whether the config describes a runnable process.
func (c Config) Validate() error {
	c = c.withDefaults()
	switch c.Kind {
	case Poisson, Bursty, Diurnal:
		if !(c.Rate > 0) || math.IsInf(c.Rate, 0) {
			return fmt.Errorf("traffic: rate %v must be positive and finite", c.Rate)
		}
		if !(c.Horizon > 0) || math.IsInf(c.Horizon, 0) {
			return fmt.Errorf("traffic: horizon %v must be positive and finite", c.Horizon)
		}
	case TraceReplay:
		if c.Row < 0 || c.Row >= c.Trace.Rows() {
			return fmt.Errorf("traffic: trace row %d outside [0, %d)", c.Row, c.Trace.Rows())
		}
	default:
		return fmt.Errorf("traffic: unknown kind %d", c.Kind)
	}
	if c.Kind == Bursty && (c.BurstFactor < 1 || c.MeanBurst <= 0 || c.MeanCalm <= 0) {
		return fmt.Errorf("traffic: bursty knobs factor=%v burst=%v calm=%v invalid",
			c.BurstFactor, c.MeanBurst, c.MeanCalm)
	}
	if c.Kind == Diurnal && (c.Amplitude < 0 || c.Amplitude > 1 || c.Period <= 0) {
		return fmt.Errorf("traffic: diurnal knobs amp=%v period=%v invalid", c.Amplitude, c.Period)
	}
	return nil
}

// Cursor builds the arrival cursor for this config, drawing randomness
// from rng. It panics on an invalid config (front-ends validate flag
// input with Validate before building scenarios).
func (c Config) Cursor(rng *sim.Rand) Cursor {
	c = c.withDefaults()
	if err := c.Validate(); err != nil {
		panic(err)
	}
	switch c.Kind {
	case Poisson:
		return NewPoisson(rng, c.Rate, c.Horizon)
	case Bursty:
		return NewBursty(rng, c.Rate, c.Rate*c.BurstFactor, c.MeanCalm, c.MeanBurst, c.Horizon)
	case Diurnal:
		return NewDiurnal(rng, c.Rate, c.Amplitude, c.Period, c.Phase, c.Horizon)
	default:
		return NewTraceCursor(rng, c.Trace, c.Row, c.Horizon)
	}
}

// poisson is a homogeneous Poisson process: i.i.d. exponential
// interarrivals with mean 1/rate.
type poisson struct {
	rng  *sim.Rand
	mean float64 // mean interarrival, seconds
	t    float64
	stop float64
}

// NewPoisson returns a Poisson cursor at rate arrivals/second up to
// horizon seconds.
func NewPoisson(rng *sim.Rand, rate, horizon float64) Cursor {
	return &poisson{rng: rng, mean: 1 / rate, stop: horizon}
}

func (c *poisson) Next() (float64, bool) {
	c.t += c.rng.Exp(c.mean)
	if c.t >= c.stop {
		return 0, false
	}
	return c.t, true
}

// bursty is a two-state MMPP: the process alternates between
// exponentially distributed calm and burst dwells, emitting Poisson
// arrivals at the state's rate. Because exponentials are memoryless, an
// arrival candidate that overshoots the next state switch is discarded
// and redrawn at the new state's rate from the switch instant — the
// standard exact MMPP simulation.
type bursty struct {
	rng      *sim.Rand
	meanIA   [2]float64 // mean interarrival per state: 0=calm, 1=burst
	dwell    [2]float64 // mean dwell per state
	state    int
	t        float64
	switchAt float64
	stop     float64
}

// NewBursty returns an MMPP-2 cursor: calmRate arrivals/s during calm
// dwells (mean meanCalm seconds), burstRate during bursts (mean
// meanBurst), up to horizon.
func NewBursty(rng *sim.Rand, calmRate, burstRate, meanCalm, meanBurst, horizon float64) Cursor {
	c := &bursty{
		rng:    rng,
		meanIA: [2]float64{1 / calmRate, 1 / burstRate},
		dwell:  [2]float64{meanCalm, meanBurst},
		stop:   horizon,
	}
	c.switchAt = rng.Exp(c.dwell[0])
	return c
}

func (c *bursty) Next() (float64, bool) {
	for {
		cand := c.t + c.rng.Exp(c.meanIA[c.state])
		if cand >= c.switchAt {
			c.t = c.switchAt
			if c.t >= c.stop {
				return 0, false
			}
			c.state ^= 1
			c.switchAt = c.t + c.rng.Exp(c.dwell[c.state])
			continue
		}
		c.t = cand
		if c.t >= c.stop {
			return 0, false
		}
		return c.t, true
	}
}

// diurnal is a nonhomogeneous Poisson process generated by
// Lewis-Shedler thinning against the peak rate base·(1+amp): candidates
// arrive at the peak rate and survive with probability rate(t)/peak.
type diurnal struct {
	rng     *sim.Rand
	base    float64
	amp     float64
	period  float64
	phase   float64
	peakIA  float64 // mean interarrival at the peak rate
	peak    float64
	t, stop float64
}

// NewDiurnal returns a sinusoidal-rate cursor:
// rate(t) = base·(1 + amp·sin(2π(t+phase)/period)), up to horizon.
func NewDiurnal(rng *sim.Rand, base, amp, period, phase, horizon float64) Cursor {
	peak := base * (1 + amp)
	return &diurnal{
		rng: rng, base: base, amp: amp, period: period, phase: phase,
		peak: peak, peakIA: 1 / peak, stop: horizon,
	}
}

func (c *diurnal) Next() (float64, bool) {
	for {
		c.t += c.rng.Exp(c.peakIA)
		if c.t >= c.stop {
			return 0, false
		}
		rate := c.base * (1 + c.amp*math.Sin(2*math.Pi*(c.t+c.phase)/c.period))
		if c.rng.Float64()*c.peak <= rate {
			return c.t, true
		}
	}
}

// traceCursor replays one trace row. A minute with count n emits its
// k-th arrival at 60·(minute + (k+u)/n) with u uniform in [0,1):
// stratified positions, strictly increasing within the minute, never
// crossing the minute boundary.
type traceCursor struct {
	rng  *sim.Rand
	row  []uint32
	next int // index of the next minute to load
	cur  int // minute currently being emitted
	k, n uint32
	stop float64
}

// NewTraceCursor returns a cursor replaying trace row `row`, truncated
// at horizon seconds (pass math.Inf(1) or 60×minutes for the full row).
func NewTraceCursor(rng *sim.Rand, tr Trace, row int, horizon float64) Cursor {
	return &traceCursor{rng: rng, row: tr.Row(row), stop: horizon}
}

func (c *traceCursor) Next() (float64, bool) {
	for c.k >= c.n {
		if c.next >= len(c.row) {
			return 0, false
		}
		c.cur = c.next
		c.n = c.row[c.next]
		c.k = 0
		c.next++
	}
	t := 60 * (float64(c.cur) + (float64(c.k)+c.rng.Float64())/float64(c.n))
	c.k++
	if t >= c.stop {
		// Arrivals are monotone, so everything after is past the horizon
		// too; park the cursor in the exhausted state.
		c.next = len(c.row)
		c.k, c.n = 0, 0
		return 0, false
	}
	return t, true
}
