#!/bin/sh
# Performance snapshot for the PR 10 fault-injection pass: the macro-chaos
# scenario — the macro-day tenant fleet with a compiled per-tenant fault
# schedule (kills with completion-cancel bookkeeping, warm reclaims,
# cold-start spike windows, browned-out checkpoint stores with bounded
# retries, straggler windows, plus the shard-0 distress monitor) — at
# shards=1 and shards=8 with the parallel window executor, against a
# macro-day run at the identical population as the no-fault reference.
# Writes BENCH_PR10.json plus the unified BENCH.json ({bench, value, unit,
# pr} rows) covering the measured PR10 numbers and the recorded headline
# numbers from BENCH_PR2/3/6/7/8.
#
# Honesty notes:
#   - macro-chaos fires more events per arrival than macro-day (compiled
#     fault events, kill re-submissions, checkpoint retries, the monitor's
#     10-minute report loop), so its events/sec is not a like-for-like rate;
#     the macro-day run at the same population is printed next to it so the
#     fault machinery's total wall-clock overhead is visible directly.
#   - The throughput bar is relative: macro-chaos events/sec must stay
#     within 1.5x of the same-run, same-population macro-day per-event
#     cost. A same-run reference is robust to host noise, and the 1.5x
#     headroom covers the fault bookkeeping each event now carries
#     (live-record scans, error gates, monitor reports) while still
#     failing if fault injection de-optimizes the kernel's event path.
#   - On a 1-CPU container the shards=8/workers=8 run measures executor
#     overhead, not speedup; determinism holds at every setting regardless.
#
#   scripts/bench.sh                  # full run, writes BENCH_PR10.json + BENCH.json
#   CHAOS_TENANTS=128 scripts/bench.sh
#   BENCH_OUT=/tmp/b.json scripts/bench.sh
set -eu

cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-BENCH_PR10.json}"
UNIFIED="${BENCH_UNIFIED_OUT:-BENCH.json}"
SEED=2023
TENANTS="${CHAOS_TENANTS:-64}"
PER_TENANT="${CHAOS_PER_TENANT:-15625}"

echo "== zero-alloc gates (steady-state fit/observe/decision/traffic/invoke must not touch the heap)"
go test -run 'TestFitterZeroAlloc|TestFixedWindowObserveZeroAlloc|TestDecisionZeroAlloc' \
	./internal/fit/ ./internal/predictor/ ./internal/scheduler/
go test -run 'TestHistObserveZeroAlloc|TestCursorNextZeroAlloc|TestInvoke1SteadyStateZeroAlloc|TestInvoke1DenialZeroAlloc' \
	./internal/obs/ ./internal/traffic/ ./internal/faas/

echo "== macro-chaos: $TENANTS tenants x $PER_TENANT arrivals under per-tenant fault schedules (seed $SEED)"
go build -o /tmp/cebench.bench ./cmd/cebench

run_chaos() { # $1=shards $2=workers $3=stdout-file $4=stderr-file
	/tmp/cebench.bench -seed "$SEED" -rusage \
		-chaos-tenants "$TENANTS" -chaos-per-tenant "$PER_TENANT" \
		-shards "$1" -sim-workers "$2" macro-chaos >"$3" 2>"$4"
}

t0=$(date +%s%3N)
run_chaos 1 1 /tmp/chaos.s1.txt /tmp/chaos.s1.err
t1=$(date +%s%3N)
s1_ms=$((t1 - t0))

t0=$(date +%s%3N)
run_chaos 8 8 /tmp/chaos.s8.txt /tmp/chaos.s8.err
t1=$(date +%s%3N)
s8_ms=$((t1 - t0))

cmp /tmp/chaos.s1.txt /tmp/chaos.s8.txt || {
	echo "macro-chaos stdout differs between shards=1 and shards=8"; exit 1;
}

echo "== macro-day at the same population (no-fault reference)"
t0=$(date +%s%3N)
/tmp/cebench.bench -seed "$SEED" -rusage \
	-macro-tenants "$TENANTS" -macro-per-tenant "$PER_TENANT" \
	-shards 1 -sim-workers 1 macro-day >/tmp/chaos.day.txt 2>/tmp/chaos.day.err
t1=$(date +%s%3N)
day_ms=$((t1 - t0))

EVENTS="$(sed -n 's/.*events=\([0-9]*\).*/\1/p' /tmp/chaos.s1.txt | tail -1)"
FAULTS="$(sed -n 's/.*fault events compiled=\([0-9]*\).*/\1/p' /tmp/chaos.s1.txt | tail -1)"
RSS1="$(sed -n 's/.*peak RSS \([0-9]*\) kB.*/\1/p' /tmp/chaos.s1.err | tail -1)"
RSS8="$(sed -n 's/.*peak RSS \([0-9]*\) kB.*/\1/p' /tmp/chaos.s8.err | tail -1)"
CORES="$(sed -n 's/.*cores=\([0-9]*\).*/\1/p' /tmp/chaos.s1.err | tail -1)"
DAY_EVENTS="$(sed -n 's/.*events=\([0-9]*\).*/\1/p' /tmp/chaos.day.txt | tail -1)"
DAY_RSS="$(sed -n 's/.*peak RSS \([0-9]*\) kB.*/\1/p' /tmp/chaos.day.err | tail -1)"
[ -n "$EVENTS" ] || EVENTS=0
[ -n "$FAULTS" ] || FAULTS=0
[ -n "$RSS1" ] || RSS1=0
[ -n "$RSS8" ] || RSS8=0
[ -n "$CORES" ] || CORES=0
[ -n "$DAY_EVENTS" ] || DAY_EVENTS=0
[ -n "$DAY_RSS" ] || DAY_RSS=0

echo "macro-chaos shards=1/workers=1: ${s1_ms}ms, ${EVENTS} events (${FAULTS} fault events), peak RSS ${RSS1}kB"
echo "macro-chaos shards=8/workers=8: ${s8_ms}ms, peak RSS ${RSS8}kB (byte-identical stdout)"
echo "macro-day   shards=1/workers=1: ${day_ms}ms, ${DAY_EVENTS} events, peak RSS ${DAY_RSS}kB (no-fault reference)"

awk -v e="$EVENTS" -v ms="$s1_ms" -v de="$DAY_EVENTS" -v dms="$day_ms" 'BEGIN {
	eps = ms > 0 ? e * 1000.0 / ms : 0
	day_eps = dms > 0 ? de * 1000.0 / dms : 0
	bar = day_eps / 1.5
	printf "events/sec (shards=1): %.0f (bar: %.0f = same-run macro-day %.0f / 1.5)\n", eps, bar, day_eps
	if (eps < bar) { print "macro-chaos per-event cost over 1.5x the same-run macro-day reference"; exit 1 }
}'

awk -v s1_ms="$s1_ms" -v s8_ms="$s8_ms" -v day_ms="$day_ms" \
	-v events="$EVENTS" -v faults="$FAULTS" -v day_events="$DAY_EVENTS" \
	-v rss1="$RSS1" -v rss8="$RSS8" -v day_rss="$DAY_RSS" -v cores="$CORES" \
	-v seed="$SEED" -v tenants="$TENANTS" -v per_tenant="$PER_TENANT" '
BEGIN {
	eps1 = s1_ms > 0 ? events * 1000.0 / s1_ms : 0
	eps8 = s8_ms > 0 ? events * 1000.0 / s8_ms : 0
	day_eps = day_ms > 0 ? day_events * 1000.0 / day_ms : 0
	printf "{\n"
	printf "  \"pr\": 10,\n"
	printf "  \"seed\": %d,\n", seed
	printf "  \"note\": \"Fault injection: per-tenant fault schedules compiled onto the sharded kernel (kills with live-record completion cancels, warm reclaims, cold-spike windows, browned-out checkpoint stores with bounded retries, straggler windows, shard-0 distress monitor). macro-chaos fires more events per arrival than macro-day (fault events, kill re-submissions, checkpoint retries, monitor loop) and each event carries fault bookkeeping, so the bar is relative: chaos events/sec must stay within 1.5x of the same-run macro-day per-event cost at the identical population, recorded here as macro_day_reference. With cores=1 the shards=8/workers=8 run measures executor overhead, not speedup.\",\n"
	printf "  \"after\": {\n"
	printf "    \"macro_chaos\": {\n"
	printf "      \"tenants\": %d,\n", tenants
	printf "      \"per_tenant\": %d,\n", per_tenant
	printf "      \"events\": %d,\n", events
	printf "      \"fault_events_compiled\": %d,\n", faults
	printf "      \"cores\": %d,\n", cores
	printf "      \"shards1_ms\": %d,\n", s1_ms
	printf "      \"shards1_events_per_sec\": %.0f,\n", eps1
	printf "      \"shards1_peak_rss_kb\": %d,\n", rss1
	printf "      \"shards8_workers8_ms\": %d,\n", s8_ms
	printf "      \"shards8_workers8_events_per_sec\": %.0f,\n", eps8
	printf "      \"shards8_workers8_peak_rss_kb\": %d,\n", rss8
	printf "      \"events_per_sec_bar\": %.0f,\n", day_eps / 1.5
	printf "      \"stdout_identical_across_configs\": true\n"
	printf "    },\n"
	printf "    \"macro_day_reference\": {\n"
	printf "      \"tenants\": %d,\n", tenants
	printf "      \"per_tenant\": %d,\n", per_tenant
	printf "      \"events\": %d,\n", day_events
	printf "      \"shards1_ms\": %d,\n", day_ms
	printf "      \"shards1_events_per_sec\": %.0f,\n", day_eps
	printf "      \"shards1_peak_rss_kb\": %d\n", day_rss
	printf "    }\n"
	printf "  }\n"
	printf "}\n"
}' > "$OUT"

echo "wrote $OUT"

# The unified perf trajectory: one flat {bench, value, unit, pr} row per
# headline number. PR2/3/6/7/8 rows are the recorded results from
# BENCH_PR2/3/6/7/8.json (same host); PR10 rows are this run.
awk -v s1_ms="$s1_ms" -v events="$EVENTS" -v rss1="$RSS1" -v day_ms="$day_ms" \
	-v day_events="$DAY_EVENTS" '
BEGIN {
	eps1 = s1_ms > 0 ? events * 1000.0 / s1_ms : 0
	day_eps = day_ms > 0 ? day_events * 1000.0 / day_ms : 0
	printf "[\n"
	printf "  {\"bench\": \"sim_schedule_run\", \"value\": 12.33, \"unit\": \"ns/op\", \"pr\": 2},\n"
	printf "  {\"bench\": \"cebench_all_parallel\", \"value\": 7518, \"unit\": \"ms\", \"pr\": 2},\n"
	printf "  {\"bench\": \"ml_run_epoch\", \"value\": 507633, \"unit\": \"ns/op\", \"pr\": 3},\n"
	printf "  {\"bench\": \"cebench_all_serial\", \"value\": 3768, \"unit\": \"ms\", \"pr\": 3},\n"
	printf "  {\"bench\": \"macro_day_shards1\", \"value\": 1839964, \"unit\": \"events/s\", \"pr\": 6},\n"
	printf "  {\"bench\": \"macro_day_shards1_peak_rss\", \"value\": 10024, \"unit\": \"kB\", \"pr\": 6},\n"
	printf "  {\"bench\": \"decision_fleet\", \"value\": 1398, \"unit\": \"ns/op\", \"pr\": 7},\n"
	printf "  {\"bench\": \"macro_fleet_shards1\", \"value\": 138182, \"unit\": \"decisions/s\", \"pr\": 7},\n"
	printf "  {\"bench\": \"trace_parse\", \"value\": 611.96, \"unit\": \"MB/s\", \"pr\": 8},\n"
	printf "  {\"bench\": \"sim_schedule_batch\", \"value\": 57.58, \"unit\": \"ns/op\", \"pr\": 8},\n"
	printf "  {\"bench\": \"macro_trace_invocations\", \"value\": 11769377, \"unit\": \"invocations\", \"pr\": 8},\n"
	printf "  {\"bench\": \"macro_trace_shards1\", \"value\": 2293120, \"unit\": \"events/s\", \"pr\": 8},\n"
	printf "  {\"bench\": \"macro_trace_shards1_peak_rss\", \"value\": 35224, \"unit\": \"kB\", \"pr\": 8},\n"
	printf "  {\"bench\": \"macro_trace_half_horizon_peak_rss\", \"value\": 35336, \"unit\": \"kB\", \"pr\": 8},\n"
	printf "  {\"bench\": \"macro_chaos_shards1\", \"value\": %.0f, \"unit\": \"events/s\", \"pr\": 10},\n", eps1
	printf "  {\"bench\": \"macro_chaos_shards1_peak_rss\", \"value\": %d, \"unit\": \"kB\", \"pr\": 10},\n", rss1
	printf "  {\"bench\": \"macro_day_ref_shards1\", \"value\": %.0f, \"unit\": \"events/s\", \"pr\": 10}\n", day_eps
	printf "]\n"
}' > "$UNIFIED"

echo "wrote $UNIFIED"
