package storage

import (
	"fmt"
	"sync"
)

// Store is a real in-memory key-value store for float64 vectors. The
// simulated trainer exchanges actual gradient and model vectors through a
// Store so that aggregation, staleness and convergence are numerically real;
// the Service models above supply the virtual timing and billing.
//
// Store is safe for concurrent use; the simulator itself is single-threaded
// but worker gradient computation may fan out across OS threads.
type Store struct {
	mu   sync.RWMutex
	data map[string][]float64

	puts, gets, misses uint64
	bytesIn, bytesOut  uint64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{data: make(map[string][]float64)}
}

// Put stores a copy of vec under key, overwriting any previous value.
func (st *Store) Put(key string, vec []float64) {
	cp := make([]float64, len(vec))
	copy(cp, vec)
	st.mu.Lock()
	st.data[key] = cp
	st.puts++
	st.bytesIn += uint64(8 * len(vec))
	st.mu.Unlock()
}

// Get returns a copy of the vector stored under key, or ok=false.
func (st *Store) Get(key string) (vec []float64, ok bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.gets++
	v, ok := st.data[key]
	if !ok {
		st.misses++
		return nil, false
	}
	st.bytesOut += uint64(8 * len(v))
	cp := make([]float64, len(v))
	copy(cp, v)
	return cp, true
}

// Delete removes key; deleting an absent key is a no-op.
func (st *Store) Delete(key string) {
	st.mu.Lock()
	delete(st.data, key)
	st.mu.Unlock()
}

// Len returns the number of stored keys.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.data)
}

// Clear removes every key but keeps the operation counters.
func (st *Store) Clear() {
	st.mu.Lock()
	st.data = make(map[string][]float64)
	st.mu.Unlock()
}

// Stats reports cumulative operation counts.
type Stats struct {
	Puts, Gets, Misses uint64
	BytesIn, BytesOut  uint64
}

// Stats returns a snapshot of the operation counters.
func (st *Store) Stats() Stats {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return Stats{Puts: st.puts, Gets: st.gets, Misses: st.misses, BytesIn: st.bytesIn, BytesOut: st.bytesOut}
}

// Aggregate sums the vectors stored under keys into a new vector. All
// vectors must exist and share one length; Aggregate returns an error
// naming the first offending key otherwise. This is the reduction a
// designated worker (stateless storage) or the parameter server (VM-PS)
// performs during each synchronization.
func (st *Store) Aggregate(keys []string) ([]float64, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if len(keys) == 0 {
		return nil, fmt.Errorf("storage: Aggregate with no keys")
	}
	first, ok := st.data[keys[0]]
	if !ok {
		return nil, fmt.Errorf("storage: Aggregate missing key %q", keys[0])
	}
	sum := make([]float64, len(first))
	copy(sum, first)
	for _, k := range keys[1:] {
		v, ok := st.data[k]
		if !ok {
			return nil, fmt.Errorf("storage: Aggregate missing key %q", k)
		}
		if len(v) != len(sum) {
			return nil, fmt.Errorf("storage: Aggregate length mismatch at %q: %d != %d", k, len(v), len(sum))
		}
		for i, x := range v {
			sum[i] += x
		}
	}
	st.gets += uint64(len(keys))
	return sum, nil
}
