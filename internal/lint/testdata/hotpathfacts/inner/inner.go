// Package inner exports one clean and one dirty helper; the annotated
// callers live in package outer, so the verdicts must travel across the
// package boundary as facts.
package inner

// Scale is allocation-free.
func Scale(v, k float64) float64 { return v * k }

// Grow allocates.
func Grow(n int) []float64 { return make([]float64, n) }
