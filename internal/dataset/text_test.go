package dataset

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func corpus(t *testing.T, signal float64, seed uint64) *TextCorpus {
	t.Helper()
	return GenerateText(sim.NewRand(seed), TextConfig{
		Docs: 1000, Vocab: 2000, AvgLen: 60, LexiconFrac: 0.1, Signal: signal,
	})
}

func TestGenerateTextShape(t *testing.T) {
	c := corpus(t, 3, 1)
	if len(c.Docs) != 1000 || len(c.Labels) != 1000 {
		t.Fatalf("docs %d labels %d", len(c.Docs), len(c.Labels))
	}
	for i, d := range c.Docs {
		if len(d) == 0 {
			t.Fatalf("doc %d empty", i)
		}
		for _, tok := range d {
			if tok < 0 || tok >= c.Vocab {
				t.Fatalf("token %d outside vocab %d", tok, c.Vocab)
			}
		}
		if c.Labels[i] != 1 && c.Labels[i] != -1 {
			t.Fatalf("label %g", c.Labels[i])
		}
	}
	if avg := c.AvgLen(); avg < 30 || avg > 120 {
		t.Errorf("avg length %g far from the configured 60", avg)
	}
}

func TestGenerateTextDeterministic(t *testing.T) {
	a, b := corpus(t, 3, 7), corpus(t, 3, 7)
	for i := range a.Docs {
		if len(a.Docs[i]) != len(b.Docs[i]) || a.Labels[i] != b.Labels[i] {
			t.Fatal("corpus generation is not deterministic")
		}
	}
}

func TestZipfShape(t *testing.T) {
	// Common (low-id) tokens should dominate the corpus.
	c := corpus(t, 0, 3)
	counts := make([]int, c.Vocab)
	total := 0
	for _, d := range c.Docs {
		for _, tok := range d {
			counts[tok]++
			total++
		}
	}
	topDecile := 0
	for i := 0; i < c.Vocab/10; i++ {
		topDecile += counts[i]
	}
	if frac := float64(topDecile) / float64(total); frac < 0.4 {
		t.Errorf("top-decile token share %g; distribution not head-heavy", frac)
	}
}

func TestVectorizeShapeAndNormalization(t *testing.T) {
	c := corpus(t, 3, 5)
	m := c.Vectorize(256)
	if m.Rows != 1000 || m.Cols != 256 {
		t.Fatalf("matrix %dx%d", m.Rows, m.Cols)
	}
	for r := 0; r < m.Rows; r++ {
		var norm float64
		for _, v := range m.Row(r) {
			norm += v * v
		}
		if math.Abs(norm-1) > 1e-9 {
			t.Fatalf("row %d norm %g, want 1", r, norm)
		}
	}
}

func TestTextSignalControlsLearnability(t *testing.T) {
	// Train the same linear model on a signal-rich and a signal-free
	// corpus: accuracy must separate clearly. (A tiny inline perceptron
	// keeps this package free of an ml import cycle.)
	accuracy := func(signal float64) float64 {
		c := corpus(t, signal, 11)
		m := c.Vectorize(256)
		w := make([]float64, m.Cols)
		for pass := 0; pass < 20; pass++ {
			for r := 0; r < m.Rows; r++ {
				row := m.Row(r)
				var dot float64
				for i, v := range row {
					dot += w[i] * v
				}
				if c.Labels[r]*dot <= 0 {
					for i, v := range row {
						w[i] += 0.5 * c.Labels[r] * v
					}
				}
			}
		}
		correct := 0
		for r := 0; r < m.Rows; r++ {
			var dot float64
			for i, v := range m.Row(r) {
				dot += w[i] * v
			}
			if (dot > 0) == (c.Labels[r] > 0) {
				correct++
			}
		}
		return float64(correct) / float64(m.Rows)
	}
	strong, none := accuracy(4), accuracy(0)
	if strong < 0.8 {
		t.Errorf("signal-rich corpus accuracy %g, want > 0.8", strong)
	}
	if none > 0.75 {
		t.Errorf("signal-free corpus accuracy %g; labels should be near-unlearnable", none)
	}
	if strong-none < 0.1 {
		t.Errorf("signal should separate accuracies: %g vs %g", strong, none)
	}
}

func TestVectorizeHashStability(t *testing.T) {
	c := corpus(t, 2, 13)
	a, b := c.Vectorize(128), c.Vectorize(128)
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatal("hashing vectorizer is not deterministic")
		}
	}
}
