package experiments

import (
	"bytes"
	"fmt"
	"strconv"
	"testing"

	"repro/internal/obs"
)

// renderFleet runs macro-fleet at the given kernel configuration and returns
// the rendered table plus the merged trace and metrics exports.
func renderFleet(t *testing.T, seed uint64, shards, workers int) (table, trace, metrics string) {
	t.Helper()
	SetMacroSharding(shards, workers)
	defer SetMacroSharding(0, 0)
	c := obs.NewCollector()
	SetCollector(c)
	defer SetCollector(nil)

	tab, err := Run("macro-fleet", seed)
	if err != nil {
		t.Fatalf("macro-fleet(shards=%d workers=%d): %v", shards, workers, err)
	}
	var tb, mb bytes.Buffer
	if err := obs.WriteJSONL(&tb, c.Scopes()); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteMetricsJSON(&mb, c.Scopes()); err != nil {
		t.Fatal(err)
	}
	return tab.String(), tb.String(), mb.String()
}

// TestMacroFleetShardMatrix is the PR7 control-path acceptance gate: the
// fleet scenario's table, trace export (which includes every controller's
// per-epoch decision log) and metrics export must be byte-identical at every
// (shards, workers) combination.
func TestMacroFleetShardMatrix(t *testing.T) {
	SetFleetScale(12)
	defer SetFleetScale(0)

	refTab, refTrace, refMetrics := renderFleet(t, 11, 1, 1)
	if len(refTrace) < 100 {
		t.Fatalf("reference trace implausibly small: %d bytes", len(refTrace))
	}
	for _, shards := range []int{1, 2, 8} {
		for _, workers := range []int{1, 8} {
			if shards == 1 && workers == 1 {
				continue
			}
			name := fmt.Sprintf("shards=%d,workers=%d", shards, workers)
			tab, trace, metrics := renderFleet(t, 11, shards, workers)
			if tab != refTab {
				t.Errorf("%s: table diverges from shards=1,workers=1:\n--- ref\n%s\n--- got\n%s", name, refTab, tab)
			}
			if trace != refTrace {
				t.Errorf("%s: trace export diverges (%d vs %d bytes)", name, len(refTrace), len(trace))
			}
			if metrics != refMetrics {
				t.Errorf("%s: metrics export diverges", name)
			}
		}
	}
}

// TestMacroFleetSeedSensitivity guards against the scenario collapsing into
// a constant: different seeds must draw different fleets.
func TestMacroFleetSeedSensitivity(t *testing.T) {
	SetFleetScale(9)
	defer SetFleetScale(0)
	a, err := Run("macro-fleet", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("macro-fleet", 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() == b.String() {
		t.Fatal("macro-fleet output identical across seeds")
	}
}

// TestMacroFleetExercisesControl checks the default-scale scenario genuinely
// stresses the Algorithm-2 control path: most tenants converge, the
// schedulers issue restarts (which go through the shared account), every
// tenant produces per-epoch decisions, and the shared account pushes back
// (denials under the sized-down concurrency cap).
func TestMacroFleetExercisesControl(t *testing.T) {
	tab, err := Run("macro-fleet", 7)
	if err != nil {
		t.Fatal(err)
	}
	total := tab.Rows[len(tab.Rows)-1]
	// Columns: class tenants converged budget-met qos-met restarts dropped decisions modeled$.
	atoi := func(col int) int {
		v, err := strconv.Atoi(total[col])
		if err != nil {
			t.Fatalf("column %d %q: %v", col, total[col], err)
		}
		return v
	}
	tenants := atoi(1)
	if conv := atoi(2); conv < tenants/2 {
		t.Errorf("only %d/%d tenants converged", conv, tenants)
	}
	if atoi(5) == 0 {
		t.Error("no restarts: controllers never adjusted allocations")
	}
	if dec := atoi(7); dec < tenants*4 {
		t.Errorf("implausibly few decisions (%d) for %d tenants", dec, tenants)
	}
	if atoi(3) == 0 || atoi(4) == 0 {
		t.Error("no tenants met their budget/QoS constraints")
	}
}
