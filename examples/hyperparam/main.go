// Hyperparameter tuning: run Successive Halving over MobileNet learning
// rates under a budget, comparing CE-scaling's greedy heuristic resource
// partitioning against the optimal static plan.
//
// Run with:
//
//	go run ./examples/hyperparam
package main

import (
	"fmt"
	"log"

	"repro/cescaling"
)

const (
	trials         = 64
	eta            = 2
	epochsPerStage = 2
	seed           = 7
)

func main() {
	w, err := cescaling.ModelByName("MobileNet-Cifar10")
	if err != nil {
		log.Fatal(err)
	}
	fw := cescaling.New(w)
	stages := cescaling.SHAStages(trials, eta, epochsPerStage)
	fmt.Printf("tuning %s: %d trials, %d stages, %d epochs per stage\n\n",
		w.Name, trials, len(stages), epochsPerStage)

	// A budget 30% above the cheapest static plan: tight enough that
	// partitioning matters.
	static, _, err := fw.PlanHPT(trials, eta, epochsPerStage, cescaling.Options{QoS: 1e15, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	budget := static.Cost * 1.3

	// CE-scaling's greedy heuristic planner recycles resources from early
	// stages (where most trials will be terminated) to later stages.
	plan, _, err := fw.PlanHPT(trials, eta, epochsPerStage, cescaling.Options{Budget: budget, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("budget $%.2f — planned partitioning (CE-scaling):\n", budget)
	fmt.Printf("%-6s %-8s %-34s %s\n", "stage", "trials", "allocation", "")
	for i, a := range plan.Plan.Stages {
		fmt.Printf("%-6d %-8d %-34v\n", i+1, stages[i].Trials, a)
	}
	fmt.Printf("predicted JCT %.0fs, predicted cost $%.2f (feasible=%v)\n\n",
		plan.JCT, plan.Cost, plan.Feasible)

	// Execute the tuning workflow on the simulated substrate.
	out, err := fw.RunHPT(trials, eta, epochsPerStage, cescaling.Options{Budget: budget, Seed: seed}, cescaling.NewRunner(seed))
	if err != nil {
		log.Fatal(err)
	}
	run := out.Run
	fmt.Printf("executed: JCT %.0fs, cost $%.2f\n", run.JCT, run.TotalCost)
	fmt.Printf("winner: trial %d with lr=%.5f momentum=%.2f (loss %.4f after %d epochs)\n",
		run.BestTrial.ID, run.BestTrial.HP.LR, run.BestTrial.HP.Momentum,
		run.BestTrial.Loss, run.BestTrial.Epochs)
	fmt.Printf("the optimum learning rate for this workload is %.5f\n\n", w.LROpt)

	fmt.Println("per-stage execution:")
	fmt.Printf("%-6s %-8s %-7s %-12s %s\n", "stage", "trials", "waves", "wall time", "cost")
	for _, st := range run.Stages {
		fmt.Printf("%-6d %-8d %-7d %-12s $%.2f\n",
			st.Stage+1, st.Trials, st.Waves, fmt.Sprintf("%.0fs", st.WallTime), st.Cost)
	}
}
