package cluster

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/storage"
	"repro/internal/trainer"
	"repro/internal/workload"
)

func job(t *testing.T, name string, n int, seed uint64, arrival float64) Submission {
	t.Helper()
	w := workload.MobileNet()
	return Submission{
		Name:    name,
		Arrival: arrival,
		Config: trainer.Config{
			Workload:   w,
			Engine:     w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, seed),
			Alloc:      cost.Allocation{N: n, MemMB: 1769, Storage: storage.S3},
			TargetLoss: w.TargetLoss,
			MaxEpochs:  400,
		},
	}
}

func TestSingleJobMatchesDirectRun(t *testing.T) {
	outs, err := Run(trainer.NewRunner(1), []Submission{job(t, "a", 10, 7, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("%d outcomes", len(outs))
	}
	o := outs[0]
	if !o.Result.Converged {
		t.Fatal("job did not converge")
	}
	if o.QueueDelay != 0 {
		t.Errorf("lone job queued %gs", o.QueueDelay)
	}
	// Same substrate seed, same engine seed: the direct run must agree.
	direct, err := trainer.NewRunner(1).Run(job(t, "a", 10, 7, 0).Config)
	if err != nil {
		t.Fatal(err)
	}
	if o.Result.Epochs != direct.Epochs {
		t.Errorf("cluster run epochs %d != direct %d", o.Result.Epochs, direct.Epochs)
	}
}

func TestConcurrentJobsShareCapacity(t *testing.T) {
	// Two 1000-function jobs fit the 3000 cap together: no queueing.
	outs, err := Run(trainer.NewRunner(2), []Submission{
		job(t, "a", 1000, 1, 0),
		job(t, "b", 1000, 2, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outs {
		if o.QueueDelay != 0 {
			t.Errorf("%s queued %gs though capacity sufficed", o.Name, o.QueueDelay)
		}
	}
}

func TestOversubscribedJobQueues(t *testing.T) {
	// Three 1500-function jobs cannot all run: the third must wait for a
	// completion.
	outs, err := Run(trainer.NewRunner(3), []Submission{
		job(t, "a", 1500, 1, 0),
		job(t, "b", 1500, 2, 0),
		job(t, "c", 1500, 3, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*Outcome{}
	for _, o := range outs {
		byName[o.Name] = o
	}
	if byName["a"].QueueDelay != 0 || byName["b"].QueueDelay != 0 {
		t.Error("first two jobs should be admitted immediately")
	}
	c := byName["c"]
	if c.QueueDelay <= 0 {
		t.Fatal("third job should have queued")
	}
	// It was admitted exactly when the earliest job finished.
	first := outs[0]
	if c.Admitted < first.Finished-1e-6 {
		t.Errorf("c admitted at %g before the first completion %g", c.Admitted, first.Finished)
	}
	if !c.Result.Converged {
		t.Error("queued job should still converge")
	}
}

func TestStaggeredArrivals(t *testing.T) {
	outs, err := Run(trainer.NewRunner(4), []Submission{
		job(t, "early", 10, 1, 0),
		job(t, "late", 10, 2, 5000),
	})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*Outcome{}
	for _, o := range outs {
		byName[o.Name] = o
	}
	if byName["late"].Admitted < 5000 {
		t.Errorf("late job admitted at %g before its arrival", byName["late"].Admitted)
	}
	if got := Makespan(outs); got < byName["late"].Finished {
		t.Errorf("makespan %g below the last completion", got)
	}
}

func TestControllerRejected(t *testing.T) {
	s := job(t, "a", 10, 1, 0)
	s.Config.Controller = func(int, float64, float64, float64) trainer.Decision { return trainer.Decision{} }
	if _, err := Run(trainer.NewRunner(5), []Submission{s}); err == nil {
		t.Error("controller-driven jobs should be rejected")
	}
}

func TestNegativeArrivalRejected(t *testing.T) {
	if _, err := Run(trainer.NewRunner(6), []Submission{job(t, "a", 10, 1, -1)}); err == nil {
		t.Error("negative arrival should be rejected")
	}
}

func TestDeterministicSchedule(t *testing.T) {
	run := func() []float64 {
		outs, err := Run(trainer.NewRunner(7), []Submission{
			job(t, "a", 1500, 1, 0),
			job(t, "b", 1500, 2, 100),
			job(t, "c", 1500, 3, 200),
		})
		if err != nil {
			t.Fatal(err)
		}
		var times []float64
		for _, o := range outs {
			times = append(times, o.Finished)
		}
		return times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("cluster schedule is not deterministic")
		}
	}
}
