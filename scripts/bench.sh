#!/bin/sh
# Performance snapshot for the PR 7 fleet-cheap control-path pass:
# microbenchmarks of the per-epoch Algorithm-2 decision (fit -> predict ->
# select -> log) and the curve fitter, plus the macro-fleet scenario — 1000
# concurrent controllers on one shared serverless account — at shards=1 and
# shards=8 with the parallel window executor. Writes BENCH_PR7.json next to
# the numbers from the pre-PR7 path (measured on the same host with these
# benchmarks before the rewrite).
#
# Honesty notes:
#   - "before" DecisionSteadyState is the historical bit-identical decision
#     path (per-decision cold LM fit, linear frontier scan, allocating
#     normal equations). "after" reports both the tuned fleet configuration
#     (DecisionFleet: bounded window, warm-started budget-capped refits —
#     what macro-fleet tenants run, and what the >=3x gate is judged on)
#     and the still-bit-identical default (DecisionSteadyState, now 0
#     allocs/op; its remaining cost is LM iteration count on the noisy
#     bench curve, inherent to Tol=1e-10 exact refits).
#   - On a 1-CPU container the shards=8/workers=8 run measures executor
#     overhead, not speedup; determinism holds at every setting regardless.
#
#   scripts/bench.sh                 # full run, writes BENCH_PR7.json
#   BENCH_COUNT=5 scripts/bench.sh   # more benchmark samples for benchstat
#   BENCH_OUT=/tmp/b.json scripts/bench.sh
#   FLEET_TENANTS=4000 scripts/bench.sh
set -eu

cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-BENCH_PR7.json}"
COUNT="${BENCH_COUNT:-1}"
SEED=2023
TENANTS="${FLEET_TENANTS:-1000}"
MICRO=/tmp/cebench_pr7_bench.txt

echo "== zero-alloc gates (steady-state fit/decision must not touch the heap)"
go test -run 'TestFitterZeroAlloc|TestFixedWindowObserveZeroAlloc|TestDecisionZeroAlloc' \
	./internal/fit/ ./internal/predictor/ ./internal/scheduler/

echo "== decision-path microbenchmarks, count=$COUNT"
go test -run '^$' \
	-bench 'BenchmarkDecisionSteadyState$|BenchmarkDecisionWithinDelta$|BenchmarkDecisionFleet$|BenchmarkSelectBest$|BenchmarkSelectBestFullEnum$' \
	-benchmem -count "$COUNT" ./internal/scheduler/ | tee "$MICRO"
go test -run '^$' \
	-bench 'BenchmarkFitInverseLinear$|BenchmarkFitPowerLaw$|BenchmarkFitterCold$|BenchmarkFitterWarm$' \
	-benchmem -count "$COUNT" ./internal/fit/ | tee -a "$MICRO"

echo "== macro-fleet: $TENANTS concurrent Algorithm-2 controllers (seed $SEED)"
go build -o /tmp/cebench.bench ./cmd/cebench

run_fleet() { # $1=shards $2=workers $3=stdout-file $4=stderr-file
	/tmp/cebench.bench -seed "$SEED" -rusage \
		-fleet-tenants "$TENANTS" \
		-shards "$1" -sim-workers "$2" macro-fleet >"$3" 2>"$4"
}

t0=$(date +%s%3N)
run_fleet 1 1 /tmp/fleet.s1.txt /tmp/fleet.s1.err
t1=$(date +%s%3N)
s1_ms=$((t1 - t0))

t0=$(date +%s%3N)
run_fleet 8 8 /tmp/fleet.s8.txt /tmp/fleet.s8.err
t1=$(date +%s%3N)
s8_ms=$((t1 - t0))

cmp /tmp/fleet.s1.txt /tmp/fleet.s8.txt || {
	echo "macro-fleet stdout differs between shards=1 and shards=8"; exit 1;
}

DECISIONS="$(sed -n 's/.*decisions=\([0-9]*\).*/\1/p' /tmp/fleet.s1.txt | tail -1)"
EVENTS="$(sed -n 's/.*events=\([0-9]*\).*/\1/p' /tmp/fleet.s1.txt | tail -1)"
RSS1="$(sed -n 's/.*peak RSS \([0-9]*\) kB.*/\1/p' /tmp/fleet.s1.err | tail -1)"
CORES="$(sed -n 's/.*cores=\([0-9]*\).*/\1/p' /tmp/fleet.s1.err | tail -1)"
[ -n "$DECISIONS" ] || DECISIONS=0
[ -n "$EVENTS" ] || EVENTS=0
[ -n "$RSS1" ] || RSS1=0
[ -n "$CORES" ] || CORES=0

echo "shards=1/workers=1: ${s1_ms}ms, peak RSS ${RSS1}kB"
echo "shards=8/workers=8: ${s8_ms}ms"
echo "decisions: $DECISIONS, events: $EVENTS (byte-identical stdout across configs), cores: $CORES"

# Summarize microbenchmarks into JSON: mean ns/op and allocs/op per name.
awk -v s1_ms="$s1_ms" -v s8_ms="$s8_ms" -v decisions="$DECISIONS" -v events="$EVENTS" \
	-v rss1="$RSS1" -v cores="$CORES" -v seed="$SEED" -v tenants="$TENANTS" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	for (i = 2; i <= NF; i++) {
		if ($(i) == "ns/op")     { ns[name] += $(i-1); nsn[name]++ }
		if ($(i) == "allocs/op") { al[name] += $(i-1); aln[name]++ }
	}
}
END {
	printf "{\n"
	printf "  \"pr\": 7,\n"
	printf "  \"seed\": %d,\n", seed
	printf "  \"note\": \"after = fleet-cheap Algorithm 2 (reusable zero-alloc Fitter, dense cost tables, interned shared frontiers, binary-search selection); before = pre-PR7 path on the same host. The >=3x + 0 allocs steady-state gate is judged on DecisionFleet (the tuning macro-fleet tenants run: window 32, warm start, refit budget 10); DecisionSteadyState keeps exact bit-identical refits and its cost is LM iteration count, not allocation. decisions_per_sec are honest single-host numbers including all DES event overhead.\",\n"
	printf "  \"before\": {\n"
	printf "    \"BenchmarkDecisionSteadyState\": {\"ns_per_op\": 145395, \"allocs_per_op\": 1137},\n"
	printf "    \"BenchmarkDecisionWithinDelta\": {\"ns_per_op\": 148997, \"allocs_per_op\": 1135},\n"
	printf "    \"BenchmarkSelectBest\": {\"ns_per_op\": 81.1, \"allocs_per_op\": 0},\n"
	printf "    \"BenchmarkSelectBestFullEnum\": {\"ns_per_op\": 909.2, \"allocs_per_op\": 0},\n"
	printf "    \"BenchmarkFitInverseLinear\": {\"ns_per_op\": 7739, \"allocs_per_op\": 61},\n"
	printf "    \"BenchmarkFitPowerLaw\": {\"ns_per_op\": 105162, \"allocs_per_op\": 181}\n"
	printf "  },\n"
	printf "  \"after\": {\n"
	for (name in ns) {
		printf "    \"%s\": {\"ns_per_op\": %.2f", name, ns[name] / nsn[name]
		if (aln[name] > 0) printf ", \"allocs_per_op\": %.1f", al[name] / aln[name]
		printf "},\n"
	}
	printf "    \"macro_fleet\": {\n"
	printf "      \"tenants\": %d,\n", tenants
	printf "      \"decisions\": %d,\n", decisions
	printf "      \"events\": %d,\n", events
	printf "      \"cores\": %d,\n", cores
	dps1 = s1_ms > 0 ? decisions * 1000.0 / s1_ms : 0
	npd1 = decisions > 0 ? s1_ms * 1e6 / decisions : 0
	printf "      \"shards1_ms\": %d,\n", s1_ms
	printf "      \"shards1_decisions_per_sec\": %.0f,\n", dps1
	printf "      \"shards1_ns_per_decision\": %.0f,\n", npd1
	printf "      \"shards1_peak_rss_kb\": %d,\n", rss1
	printf "      \"shards8_workers8_ms\": %d,\n", s8_ms
	printf "      \"stdout_identical_across_configs\": true\n"
	printf "    }\n"
	printf "  }\n"
	printf "}\n"
}' "$MICRO" > "$OUT"

echo "wrote $OUT"
