package sha

import (
	"math"
	"testing"

	"repro/internal/cost"
	"repro/internal/planner"
	"repro/internal/sim"
	"repro/internal/trainer"
	"repro/internal/workload"
)

func TestTPESamplerUniformUntilMinObs(t *testing.T) {
	w := workload.MobileNet()
	s := NewTPESampler(1)
	for i := 0; i < s.MinObs-1; i++ {
		hp := s.Suggest(w)
		if hp.LR <= 0 {
			t.Fatal("invalid suggestion")
		}
		s.Observe(hp, 1.0)
	}
	if s.Observations() != s.MinObs-1 {
		t.Errorf("Observations = %d", s.Observations())
	}
}

func TestTPESamplerConcentratesNearGoodRegion(t *testing.T) {
	w := workload.MobileNet()
	s := NewTPESampler(2)
	// Feed a clear signal: configurations near lr*=0.01 score well,
	// everything else scores badly.
	lrs := []float64{0.008, 0.009, 0.01, 0.011, 0.012, 0.3, 0.5, 1.0, 1e-4, 3e-4, 5, 10}
	for _, lr := range lrs {
		loss := 0.2
		if lr < 0.005 || lr > 0.02 {
			loss = 2.0
		}
		s.Observe(workload.Hyperparams{LR: lr, Momentum: 0.9}, loss)
	}
	within := 0
	const draws = 40
	for i := 0; i < draws; i++ {
		hp := s.Suggest(w)
		if d := math.Abs(math.Log10(hp.LR / 0.01)); d < 1 {
			within++
		}
		if hp.Momentum < 0 || hp.Momentum > 0.99 {
			t.Fatalf("momentum %g out of range", hp.Momentum)
		}
	}
	if within < draws*3/4 {
		t.Errorf("only %d/%d suggestions within a decade of the good region", within, draws)
	}
}

func TestTPESamplerIgnoresInvalidObservations(t *testing.T) {
	s := NewTPESampler(3)
	s.Observe(workload.Hyperparams{LR: 0}, 1)
	s.Observe(workload.Hyperparams{LR: 0.01}, math.NaN())
	s.Observe(workload.Hyperparams{LR: 0.01}, math.Inf(1))
	if s.Observations() != 0 {
		t.Errorf("invalid observations recorded: %d", s.Observations())
	}
}

func TestKDEDensityPeaksAtData(t *testing.T) {
	k := newKDE([]float64{-2, -2.1, -1.9})
	if k.density(-2) <= k.density(0) {
		t.Error("density should peak near the data")
	}
	if k.bandwidth <= 0 {
		t.Error("non-positive bandwidth")
	}
}

func TestRunBOHBEndToEnd(t *testing.T) {
	w := workload.MobileNet()
	m := cost.NewModel(w)
	pareto := m.ParetoSet(cost.DefaultGrid())
	res, sampler, err := RunBOHB(HyperbandConfig{
		Workload:  w,
		MaxEpochs: 9,
		Eta:       3,
		Runner:    trainer.NewRunner(19),
		Seed:      19,
		PlanBracket: func(stages []planner.Stage) (planner.Plan, error) {
			pl, err := planner.New(m, stages, pareto)
			if err != nil {
				return planner.Plan{}, err
			}
			return pl.OptimalStatic(0, 1e15).Plan, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no winner")
	}
	// The sampler must have learned from every stage of every bracket.
	if sampler.Observations() < 9 {
		t.Errorf("sampler saw only %d results", sampler.Observations())
	}
	// The winner's lr should be within roughly a decade of the optimum.
	if d := math.Abs(math.Log10(res.Best.HP.LR / w.LROpt)); d > 1.3 {
		t.Errorf("BOHB winner lr %g is %.1f decades from the optimum", res.Best.HP.LR, d)
	}
}

func TestRunBOHBValidation(t *testing.T) {
	if _, _, err := RunBOHB(HyperbandConfig{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestSampleHookUsed(t *testing.T) {
	w := workload.MobileNet()
	m := cost.NewModel(w)
	pareto := m.ParetoSet(cost.DefaultGrid())
	fixed := workload.Hyperparams{LR: w.LROpt, Momentum: 0.5}
	calls := 0
	res, err := Run(Config{
		Workload: w, Trials: 8, Eta: 2, EpochsPerStage: 1,
		Plan:   planner.Uniform(pareto[0].Alloc, len(planner.SHAStages(8, 2, 1))),
		Runner: trainer.NewRunner(23), Seed: 23,
		Sample: func(rng *sim.Rand) workload.Hyperparams {
			calls++
			return fixed
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 8 {
		t.Errorf("Sample called %d times, want 8", calls)
	}
	if res.BestTrial.HP != fixed {
		t.Errorf("winner hp = %+v, want the fixed config", res.BestTrial.HP)
	}
}
