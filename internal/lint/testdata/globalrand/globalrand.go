// Package globalrandtest seeds process-global math/rand violations for the
// globalrand analyzer's golden test.
package globalrandtest

import "math/rand"

// Bad draws from (and reseeds) the process-global generator.
func Bad(n int) int {
	rand.Seed(42)           // finding: Seed
	v := rand.Intn(n)       // finding: Intn
	_ = rand.Float64()      // finding: Float64
	rand.Shuffle(n, swap)   // finding: Shuffle
	return v + rand.Int()%2 // finding: Int
}

func swap(i, j int) {}

// Legal threads an explicitly seeded generator.
func Legal(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

// LegalType names the rand types without touching the global stream.
func LegalType(r *rand.Rand, s rand.Source) {}
