// Package sim provides a small deterministic discrete-event simulation
// kernel: a virtual clock, sharded event queues ordered by (time, priority,
// insertion order), and named pseudo-random streams.
//
// The kernel is deliberately callback-based rather than goroutine-based so
// that simulations are fully deterministic and cheap: an event is a closure
// scheduled at an absolute virtual time, and Run drains the queues in order.
// All simulated subsystems in this repository (the serverless platform, the
// storage services, the distributed trainer) advance time only through this
// kernel.
//
// # Shards
//
// A Simulation owns one or more Shards. Each shard has its own clock, its
// own event heap and its own event arena; a single-shard simulation (the
// default — New returns one shard, and the Simulation-level Schedule
// methods target it) behaves exactly like the historical single-queue
// kernel. Multi-shard simulations partition the workload by ownership — one
// shard per job or tenant — and may execute shards concurrently inside
// conservative lookahead windows (see RunUntil) while producing the same
// event order, clocks and observable output at every shard count and
// worker count, provided the workload follows the shard ownership rules:
//
//   - Every piece of mutable state belongs to exactly one shard, and only
//     events running on that shard touch it.
//   - An event may Schedule freely onto its own shard; sends to another
//     shard go through Post, which delays them by at least the configured
//     lookahead and delivers them at window barriers.
//   - Named random streams are created during setup (or sequential
//     execution) and each stream is drawn from by a single shard.
//
// Cross-shard events that may collide on (time, priority) with events from
// another shard should carry a priority that identifies the sender (e.g.
// the tenant index): the merge order is then fully determined by
// (time, priority) and cannot depend on how the workload was sharded.
//
// # Performance
//
// Each shard's queue is an inlined binary heap over a slice of small
// struct-of-arrays entries — the (time, priority, sequence) comparison keys
// live in the heap entries, the closures and bookkeeping in arena-backed
// slots — and fired or reaped slots return to a per-shard free list, so the
// steady-state hot loop (schedule, pop, fire) allocates nothing. The total
// order is identical to the reference container/heap implementation
// (asserted by the kernel equivalence tests).
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, measured in seconds since the start of
// the simulation. A float64 keeps the arithmetic in the analytical models
// and the simulator identical.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration = float64

// Seconds returns the time as a plain float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) }

// AsStdDuration converts a virtual duration to a time.Duration for display.
func AsStdDuration(d Duration) time.Duration {
	return time.Duration(d * float64(time.Second))
}

func (t Time) String() string {
	return fmt.Sprintf("t=%.3fs", float64(t))
}

// Simulation owns the virtual clocks, the shard set and the named random
// streams. The zero value is not usable; construct with New.
type Simulation struct {
	shards  []*Shard
	main    *Shard // shards[0]; the target of the legacy Schedule methods
	running bool
	rng     map[string]*Rand
	seed    uint64

	// lookahead is the conservative parallel-window width: a Post from an
	// event at time t is delivered no earlier than t+lookahead, so shards
	// never interact inside a window of that width. +Inf (the default)
	// means "no cross-shard traffic": Post panics and RunUntil drains in
	// one window, which is exactly the historical single-queue behavior.
	lookahead float64

	// workers bounds how many shards drain concurrently inside one window;
	// 1 (the default) keeps execution fully sequential.
	workers int

	// strictCancel upgrades a stale Event.Cancel/Canceled (handle to an
	// already-recycled event) from a no-op to a panic, for debugging.
	strictCancel bool

	// draining is the shard currently executing events on the sequential
	// path (nil otherwise); parallelActive is true while worker goroutines
	// drain a window. Both exist to catch shard-ownership violations:
	// scheduling or canceling across shards mid-run panics instead of
	// silently breaking shard-count invariance.
	draining       *Shard
	parallelActive bool
}

// New returns a single-shard simulation whose named random streams derive
// from seed.
func New(seed uint64) *Simulation {
	s := &Simulation{
		rng:       make(map[string]*Rand),
		seed:      seed,
		lookahead: math.Inf(1),
		workers:   1,
	}
	s.main = newShard(s, 0)
	s.shards = []*Shard{s.main}
	return s
}

// EnsureShards grows the shard set to at least n shards (it never shrinks).
// Shard 0 always exists and is the target of the Simulation-level Schedule
// methods. Must be called outside Run.
func (s *Simulation) EnsureShards(n int) {
	if s.running {
		panic("sim: EnsureShards during Run")
	}
	for len(s.shards) < n {
		s.shards = append(s.shards, newShard(s, len(s.shards)))
	}
}

// NumShards reports the current shard count.
func (s *Simulation) NumShards() int { return len(s.shards) }

// Shard returns shard i (0 <= i < NumShards).
func (s *Simulation) Shard(i int) *Shard { return s.shards[i] }

// Main returns shard 0, the default owner of all legacy single-queue
// workloads.
func (s *Simulation) Main() *Shard { return s.main }

// SetLookahead sets the conservative window width used to bound parallel
// advancement and the minimum delay of every Post. L must be positive;
// +Inf (the default) disables cross-shard traffic entirely. Must be called
// outside Run.
func (s *Simulation) SetLookahead(L float64) {
	if s.running {
		panic("sim: SetLookahead during Run")
	}
	if !(L > 0) {
		panic(fmt.Sprintf("sim: SetLookahead(%g): lookahead must be positive", L))
	}
	s.lookahead = L
}

// Lookahead reports the configured lookahead window width.
func (s *Simulation) Lookahead() float64 { return s.lookahead }

// SetWorkers bounds how many shards execute concurrently inside one
// lookahead window; w < 1 is clamped to 1 (fully sequential). The results
// are byte-identical at every worker count. Must be called outside Run.
func (s *Simulation) SetWorkers(w int) {
	if s.running {
		panic("sim: SetWorkers during Run")
	}
	if w < 1 {
		w = 1
	}
	s.workers = w
}

// SetStrictCancel makes a stale Event.Cancel or Event.Canceled (a handle
// whose event already fired or was reaped and recycled) panic instead of
// being a no-op — a debug mode for flushing out use-after-fire bugs.
func (s *Simulation) SetStrictCancel(on bool) { s.strictCancel = on }

// Now returns the current virtual time of the main shard (shard 0). In a
// single-shard simulation this is the simulation clock; multi-shard
// workloads read their own Shard.Now instead.
func (s *Simulation) Now() Time { return s.main.now }

// Horizon returns the maximum clock over all shards: how far the
// simulation as a whole has advanced.
func (s *Simulation) Horizon() Time {
	h := s.shards[0].now
	for _, sh := range s.shards[1:] {
		if sh.now > h {
			h = sh.now
		}
	}
	return h
}

// EventsFired reports how many events have executed so far, over all
// shards.
func (s *Simulation) EventsFired() uint64 {
	var n uint64
	for _, sh := range s.shards {
		n += sh.fired
	}
	return n
}

// Pending reports how many events are queued over all shards (including
// canceled ones that have not yet been skipped and posts not yet delivered
// to their target shard).
func (s *Simulation) Pending() int {
	n := 0
	for _, sh := range s.shards {
		n += len(sh.heap) + len(sh.outbox)
	}
	return n
}

// Schedule queues fn to run on the main shard at absolute virtual time at.
// Scheduling in the past (before Now) panics: that is always a bug in the
// caller.
func (s *Simulation) Schedule(at Time, fn func()) Event {
	return s.main.SchedulePriority(at, 0, fn)
}

// ScheduleAfter queues fn to run on the main shard d seconds from now.
// Negative d panics.
func (s *Simulation) ScheduleAfter(d Duration, fn func()) Event {
	return s.main.ScheduleAfter(d, fn)
}

// SchedulePriority is Schedule with an explicit tie-break priority; among
// events at the same instant, lower priority values run first.
func (s *Simulation) SchedulePriority(at Time, priority int, fn func()) Event {
	return s.main.SchedulePriority(at, priority, fn)
}

// Run drains every shard until no events remain, advancing each shard's
// clock to its events' times. Events may schedule further events.
func (s *Simulation) Run() {
	s.RunUntil(Time(math.Inf(1)))
}

// RunUntil drains events with time <= limit, over all shards. Each shard's
// clock is left at its last executed event's time, or at limit when limit
// is finite and ahead of that clock (RunUntil never moves a clock
// backwards: a limit already in the past leaves the clock where it is).
//
// Execution proceeds in conservative lookahead windows: with the earliest
// pending event across all shards at Tmin, every shard drains its events in
// [Tmin, Tmin+L) — where L is the configured lookahead — then cross-shard
// posts are delivered and the next window starts. Because a Post sent at
// time t arrives no earlier than t+L >= Tmin+L, shards cannot observe each
// other inside a window, so the windows may execute shards concurrently
// (SetWorkers) without changing any result. With the default L=+Inf the
// whole run is one window, which reduces to the historical single-queue
// semantics.
func (s *Simulation) RunUntil(limit Time) {
	if s.running {
		panic("sim: Run re-entered")
	}
	s.running = true
	defer func() { s.running = false }()
	for {
		s.flushPosts()
		min := s.peekMin()
		if min == nil {
			break
		}
		tmin := min.heap[0].at
		if tmin > limit {
			break
		}
		// The window bound: exclusive at Tmin+L, unless the caller's limit
		// cuts in first — the limit itself is inclusive, matching the
		// historical "drain events with time <= limit" contract.
		bound, inclusive := tmin+Time(s.lookahead), false
		if !(bound <= limit) {
			bound, inclusive = limit, true
		}
		s.drainWindow(bound, inclusive)
	}
	if !math.IsInf(float64(limit), 1) {
		for _, sh := range s.shards {
			if limit > sh.now {
				sh.now = limit
			}
		}
	}
}

// peekMin returns the shard whose head event is globally earliest by
// (time, priority, sequence, shard index), or nil when every heap is empty.
func (s *Simulation) peekMin() *Shard {
	var best *Shard
	for _, sh := range s.shards {
		if len(sh.heap) == 0 {
			continue
		}
		if best == nil || headBefore(sh, best) {
			best = sh
		}
	}
	return best
}

// headBefore reports whether a's head event merges before b's. The shard
// index is the final tie-break; per-shard sequence counters make the first
// three keys identical however the run is executed.
func headBefore(a, b *Shard) bool {
	x, y := &a.heap[0], &b.heap[0]
	if x.at != y.at {
		return x.at < y.at
	}
	if x.pri != y.pri {
		return x.pri < y.pri
	}
	if x.seq != y.seq {
		return x.seq < y.seq
	}
	return a.idx < b.idx
}

// drainWindow executes every shard's events inside the window.
//
// Sequentially (workers=1) the shards interleave in the global
// lowest-(time, priority, sequence, shard) merge order — a multi-shard
// simulation stepped serially behaves like one big event queue. With
// workers > 1 each shard drains its window independently (possibly
// concurrently): the per-shard event sequences are identical to the merged
// order's, so any state observed through the shard-ownership rules — which
// is all state, for a conforming workload — sees the exact same history.
func (s *Simulation) drainWindow(bound Time, inclusive bool) {
	if len(s.shards) == 1 {
		// Fast path: no merge scan per event, exactly the historical loop.
		sh := s.main
		s.draining = sh
		sh.drain(bound, inclusive)
		s.draining = nil
		return
	}
	if s.workers > 1 {
		busy := 0
		var lone *Shard
		for _, sh := range s.shards {
			if sh.eligible(bound, inclusive) {
				busy++
				lone = sh
			}
		}
		if busy > 1 {
			s.drainWindowParallel(bound, inclusive)
			return
		}
		if busy == 1 {
			s.draining = lone
			lone.drain(bound, inclusive)
			s.draining = nil
		}
		return
	}
	for {
		min := s.peekMin()
		if min == nil || !min.eligible(bound, inclusive) {
			return
		}
		s.draining = min
		min.drainOne()
		s.draining = nil
	}
}

// flushPosts delivers every shard's outbox to the target shards, in
// (sender shard index, send order) order. Flushing only happens at window
// barriers, so target-shard sequence numbers are assigned identically
// however the previous window was executed.
func (s *Simulation) flushPosts() {
	for _, sh := range s.shards {
		if len(sh.outbox) == 0 {
			continue
		}
		for i := range sh.outbox {
			m := &sh.outbox[i]
			if m.at < m.to.now {
				panic(fmt.Sprintf("sim: post delivered at %v behind shard %d clock %v", m.at, m.to.idx, m.to.now))
			}
			m.to.enqueue(m.at, m.pri, m.fn)
			m.to, m.fn = nil, nil
		}
		sh.outbox = sh.outbox[:0]
	}
}

// Step executes exactly one pending (non-canceled) event — the globally
// earliest across all shards — and reports whether one was executed. Step
// is a sequential debugging/test interface; it delivers pending posts
// before picking the event.
func (s *Simulation) Step() bool {
	s.flushPosts()
	for {
		min := s.peekMin()
		if min == nil {
			return false
		}
		e := min.heapPop()
		slot := e.slot
		if slot.canceled {
			min.recycle(slot)
			continue
		}
		min.now = e.at
		min.fired++
		fn := slot.fn
		slot.fn = nil
		s.draining = min
		min.executing = true
		fn()
		min.executing = false
		s.draining = nil
		min.recycle(slot)
		return true
	}
}

// Rand returns the named deterministic random stream, creating it on first
// use. Streams with the same name under the same simulation seed always
// produce the same sequence, independent of other streams, so adding a new
// consumer of randomness does not perturb existing experiments.
//
// Streams must be created during setup or sequential execution; the first
// use of a new name inside a parallel window panics (the stream map is
// shared across shards and only safe to read concurrently). A stream
// should be drawn from by a single shard.
func (s *Simulation) Rand(name string) *Rand {
	if r, ok := s.rng[name]; ok {
		return r
	}
	if s.parallelActive {
		panic(fmt.Sprintf("sim: Rand(%q) would create a stream inside a parallel window; create streams during setup", name))
	}
	r := NewRand(s.seed ^ hashString(name))
	s.rng[name] = r
	return r
}

func hashString(name string) uint64 {
	// FNV-1a, inlined to avoid pulling hash/fnv into the hot path.
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}
