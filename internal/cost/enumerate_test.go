package cost

import (
	"runtime"
	"testing"

	"repro/internal/workload"
)

// TestEnumerateMatchesSerial asserts the concurrent enumeration produces
// exactly the serial scan's output: same points, same grid order. The
// worker pool is forced on even on single-CPU hosts.
func TestEnumerateMatchesSerial(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	grids := map[string]Grid{
		"default": DefaultGrid(),
		"dense":   denseGrid(),
		"single":  {Ns: []int{10}, MemsMB: []int{1769}, Storages: DefaultGrid().Storages},
		"empty":   {},
	}
	for _, w := range workload.Evaluated() {
		m := NewModel(w)
		for name, g := range grids {
			got := m.Enumerate(g)
			want := m.enumerateSerial(g)
			if len(got) != len(want) {
				t.Fatalf("%s/%s: %d points, want %d", w.Name, name, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s/%s: point %d = %+v, want %+v", w.Name, name, i, got[i], want[i])
				}
			}
		}
	}
}
