package predictor

import (
	"testing"
)

func obsCurve(e int) float64 { return 1/(0.05*float64(e)+1) + 0.3 }

// TestFixedWindowRetainsRecent: once the bounded history fills, the
// predictor holds exactly the last w observations in chronological order.
func TestFixedWindowRetainsRecent(t *testing.T) {
	o := NewOnline()
	o.SetFixedWindow(8)
	for e := 1; e <= 20; e++ {
		o.Observe(e, obsCurve(e))
	}
	if o.Observations() != 8 {
		t.Fatalf("retained %d observations, want 8", o.Observations())
	}
	for i, x := range o.xs {
		if want := float64(13 + i); x != want {
			t.Errorf("xs[%d] = %v, want %v", i, x, want)
		}
		if o.ys[i] != obsCurve(13+i) {
			t.Errorf("ys[%d] mismatch", i)
		}
	}
}

// TestFixedWindowMidstream: enabling the window after observations exist
// keeps the most recent ones.
func TestFixedWindowMidstream(t *testing.T) {
	o := NewOnline()
	for e := 1; e <= 10; e++ {
		o.Observe(e, obsCurve(e))
	}
	o.SetFixedWindow(4)
	if o.Observations() != 4 || o.xs[0] != 7 {
		t.Fatalf("midstream window: got %d obs starting at %v", o.Observations(), o.xs[0])
	}
	if _, ok := o.PredictTotalEpochs(0.31); !ok {
		t.Error("prediction should still work on the retained window")
	}
}

// TestFixedWindowObserveZeroAlloc: the steady-state observe+refit+predict
// cycle under the fleet tuning must not allocate.
//
// hotpath-gate: predictor.Online.Observe
// hotpath-gate: predictor.Online.PredictTotalEpochs
func TestFixedWindowObserveZeroAlloc(t *testing.T) {
	o := NewOnline()
	o.ApplyTuning(Tuning{FixedWindow: 16, WarmStart: true, RefitBudget: 10})
	for e := 1; e <= 32; e++ {
		o.Observe(e, obsCurve(e))
	}
	e := 33
	if avg := testing.AllocsPerRun(100, func() {
		o.Observe(e, obsCurve(e))
		if _, ok := o.PredictTotalEpochs(0.5); !ok {
			t.Fatal("prediction failed")
		}
		e++
	}); avg != 0 {
		t.Errorf("fleet-tuned observe+predict allocates %.2f/op, want 0", avg)
	}
}

// TestTunedPredictionStaysAccurate: warm-started, budget-limited refits
// over a bounded window must still track the curve — the amortized
// optimization converges across epochs even though each refit is capped.
func TestTunedPredictionStaysAccurate(t *testing.T) {
	exact := NewOnline()
	tuned := NewOnline()
	tuned.ApplyTuning(Tuning{FixedWindow: 32, WarmStart: true, RefitBudget: 8})
	const target = 0.32 // curve hits it around e=44
	for e := 1; e <= 40; e++ {
		exact.Observe(e, obsCurve(e))
		tuned.Observe(e, obsCurve(e))
	}
	want, ok1 := exact.PredictTotalEpochs(target)
	got, ok2 := tuned.PredictTotalEpochs(target)
	if !ok1 || !ok2 {
		t.Fatalf("predictions missing: exact=%v tuned=%v", ok1, ok2)
	}
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.15*float64(want) {
		t.Errorf("tuned prediction %d drifted from exact %d by more than 15%%", got, want)
	}
}

// TestDefaultUntouchedByTuningTypes: a default predictor never shifts its
// buffer and keeps unbounded history (the bit-identical configuration).
func TestDefaultUntouchedByTuningTypes(t *testing.T) {
	o := NewOnline()
	for e := 1; e <= 100; e++ {
		o.Observe(e, obsCurve(e))
	}
	if o.Observations() != 100 {
		t.Errorf("default predictor truncated history: %d", o.Observations())
	}
}
