package lint

import (
	"go/ast"
	"go/types"
)

// pkgSel decomposes e as a qualified identifier pkg.Name and returns the
// imported package path and selected name. ok is false for method calls,
// field selections, and anything else that is not a package selector.
func pkgSel(info *types.Info, e ast.Expr) (pkgPath, name string, ok bool) {
	sel, okSel := e.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	id, okID := sel.X.(*ast.Ident)
	if !okID {
		return "", "", false
	}
	pn, okPN := info.Uses[id].(*types.PkgName)
	if !okPN {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// declaredWithin reports whether obj's declaration lies inside node's source
// span.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && obj.Pos() != 0 && obj.Pos() >= node.Pos() && obj.Pos() <= node.End()
}

// rootIdent walks to the base identifier of an lvalue: x, x[i], x.f, (*x).f
// all root at x. Returns nil when the base is not a plain identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.IndexExpr:
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// isMapType reports whether the static type of e is a map.
func isMapType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// isFloat reports whether t's underlying type is a floating-point or
// complex basic type (the kinds whose addition is non-associative).
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// objectOf resolves an identifier through either Uses or Defs.
func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// inspectAll applies f to every node of every file in the pass.
func inspectAll(p *Pass, f func(ast.Node) bool) {
	for _, file := range p.Files {
		ast.Inspect(file, f)
	}
}
