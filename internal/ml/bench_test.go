package ml

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/sim"
)

func benchData(rows int) *dataset.Matrix {
	return dataset.GenerateBinary(sim.NewRand(1), dataset.GenConfig{Samples: rows, Features: 32, NoiseFlip: 0.1})
}

// kernelData is the representative real-engine shape: capped 256 features,
// as used by the SHA trials and the experiment matrix.
func kernelData(rows, cols int) *dataset.Matrix {
	return dataset.GenerateBinary(sim.NewRand(1), dataset.GenConfig{Samples: rows, Features: cols, NoiseFlip: 0.1})
}

func benchGradient(b *testing.B, obj Objective) {
	data := kernelData(2000, 256)
	w := make([]float64, data.Cols)
	rng := sim.NewRand(7)
	for i := range w {
		w[i] = rng.NormFloat64() * 0.1
	}
	idx := make([]int, 256)
	for i := range idx {
		idx[i] = (i * 7) % data.Rows
	}
	grad := make([]float64, data.Cols)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Zero(grad)
		obj.Gradient(w, data, idx, grad)
	}
}

func BenchmarkGradientLogistic(b *testing.B) { benchGradient(b, Logistic{L2: 1e-4}) }
func BenchmarkGradientHinge(b *testing.B)    { benchGradient(b, Hinge{L2: 1e-4}) }
func BenchmarkGradientSquared(b *testing.B)  { benchGradient(b, Squared{L2: 1e-4}) }

// BenchmarkWorkerGradient measures one worker's full mini-batch gradient
// (batch draw + kernel) at the SHA-trial shape; the steady state must not
// allocate.
func BenchmarkWorkerGradient(b *testing.B) {
	shard := kernelData(1500, 256)
	w := NewWorker(shard, sim.NewRand(3))
	model := make([]float64, shard.Cols)
	obj := Logistic{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Gradient(obj, model, 37)
	}
}

// BenchmarkRunEpoch measures the whole BSP epoch path (gradients, in-place
// aggregation, SGD step, full-data loss) at the SHA-trial shape.
func BenchmarkRunEpoch(b *testing.B) {
	tr, err := NewTrainer(kernelData(1500, 256), Config{
		Objective: Logistic{L2: 1e-4}, Workers: 8, BatchPerWkr: 37, LearningRate: 0.1, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.RunEpoch()
	}
}

func BenchmarkLoss(b *testing.B) {
	data := kernelData(2000, 256)
	w := make([]float64, data.Cols)
	obj := Logistic{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj.Loss(w, data)
	}
}

func BenchmarkLogisticLoss(b *testing.B) {
	data := benchData(4000)
	w := make([]float64, data.Cols)
	obj := Logistic{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj.Loss(w, data)
	}
}

func BenchmarkBSPEpoch(b *testing.B) {
	tr, err := NewTrainer(benchData(4000), Config{
		Objective: Logistic{}, Workers: 8, BatchPerWkr: 64, LearningRate: 0.3, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.RunEpoch()
	}
}
