// QoS-driven training: train BERT-base to its target loss under a deadline,
// watching the adaptive scheduler react to online convergence predictions
// (Algorithm 2) with delayed restarts.
//
// Run with:
//
//	go run ./examples/qos-training
package main

import (
	"fmt"
	"log"

	"repro/cescaling"
)

func main() {
	w, err := cescaling.ModelByName("BERT-IMDb")
	if err != nil {
		log.Fatal(err)
	}
	fw := cescaling.New(w)

	// Find the fastest possible run to set a realistic deadline.
	fast, err := fw.Train(cescaling.Options{Budget: 1e15, Seed: 3}, cescaling.NewRunner(3))
	if err != nil {
		log.Fatal(err)
	}
	qos := fast.Result.JCT * 2
	fmt.Printf("fastest possible run: %.0fs for $%.2f\n", fast.Result.JCT, fast.Result.TotalCost)
	fmt.Printf("deadline set to 2x that: %.0fs — now minimize cost\n\n", qos)

	// Train under the deadline with full adaptivity.
	out, err := fw.Train(cescaling.Options{QoS: qos, Seed: 3}, cescaling.NewRunner(4))
	if err != nil {
		log.Fatal(err)
	}
	r := out.Result
	fmt.Printf("adaptive run: JCT %.0fs (deadline %.0fs), cost $%.2f — %.0f%% cheaper than the fastest run\n",
		r.JCT, qos, r.TotalCost, 100*(fast.Result.TotalCost-r.TotalCost)/fast.Result.TotalCost)
	fmt.Printf("offline epoch estimate: %d; actual epochs: %d; restarts: %d; planning time: %.1fs\n\n",
		out.OfflineEstimate, r.Epochs, r.Restarts, r.PlanningTime)

	// Show the allocation timeline: every allocation the scheduler used.
	fmt.Println("allocation timeline:")
	var cur cescaling.Allocation
	start := 1
	for i, e := range r.Trace {
		if i == 0 {
			cur = e.Alloc
			continue
		}
		if e.Alloc != cur {
			fmt.Printf("  epochs %3d-%3d: %v\n", start, i, cur)
			cur = e.Alloc
			start = i + 1
		}
	}
	fmt.Printf("  epochs %3d-%3d: %v\n", start, len(r.Trace), cur)

	// The ablation: the same run without delayed restart pays the full
	// stop-reload-restart price on every adjustment.
	noDR, err := fw.Train(cescaling.Options{QoS: qos, Seed: 3, DisableDelayedRestart: true}, cescaling.NewRunner(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwithout delayed restart: overhead %.1fs vs %.1fs with it\n",
		noDR.Result.OverheadTime, r.OverheadTime)
}
