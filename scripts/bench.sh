#!/bin/sh
# Performance snapshot for the PR 2 perf pass: microbenchmarks of the DES
# kernel and the cost-model caches (benchstat-compatible output), plus the
# end-to-end `cebench all` wall clock at -parallel 1 vs -parallel N. Writes
# the measurements to BENCH_PR2.json next to the hardcoded pre-PR baseline
# (measured on the same substrate before the kernel/cache rewrite), so the
# repo records a perf trajectory.
#
#   scripts/bench.sh                 # full run, writes BENCH_PR2.json
#   BENCH_COUNT=5 scripts/bench.sh   # more benchmark samples for benchstat
#   BENCH_OUT=/tmp/b.json scripts/bench.sh
set -eu

cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-BENCH_PR2.json}"
COUNT="${BENCH_COUNT:-1}"
SEED=2023
MICRO=/tmp/cebench_micro_bench.txt

echo "== microbenchmarks (sim kernel + cost model), count=$COUNT"
go test -run '^$' -bench 'BenchmarkScheduleRun$|BenchmarkScheduleRunFanout|BenchmarkScheduleCancel|BenchmarkEpochEstimates|BenchmarkParetoSetCached' \
	-benchmem -count "$COUNT" ./internal/sim/ ./internal/cost/ | tee "$MICRO"

echo "== cebench all wall clock (seed $SEED)"
go build -o /tmp/cebench.bench ./cmd/cebench
PAR="$(nproc 2>/dev/null || echo 1)"

t0=$(date +%s%3N)
/tmp/cebench.bench -seed "$SEED" -format csv -parallel 1 all >/dev/null 2>&1
t1=$(date +%s%3N)
serial_ms=$((t1 - t0))
echo "serial (parallel=1): ${serial_ms}ms"

t0=$(date +%s%3N)
/tmp/cebench.bench -seed "$SEED" -format csv -parallel "$PAR" all >/dev/null 2>&1
t1=$(date +%s%3N)
parallel_ms=$((t1 - t0))
echo "parallel (parallel=$PAR): ${parallel_ms}ms"

# Summarize microbenchmarks into JSON: mean ns/op and allocs/op per name.
awk -v serial_ms="$serial_ms" -v parallel_ms="$parallel_ms" -v par="$PAR" -v seed="$SEED" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	for (i = 2; i <= NF; i++) {
		if ($(i) == "ns/op")     { ns[name] += $(i-1); nsn[name]++ }
		if ($(i) == "allocs/op") { al[name] += $(i-1); aln[name]++ }
	}
}
END {
	printf "{\n"
	printf "  \"pr\": 2,\n"
	printf "  \"seed\": %d,\n", seed
	printf "  \"note\": \"after = this tree (inlined-heap kernel, event free list, cost memoization, parallel engine); before = pre-PR2 serial kernel measured on the same host\",\n"
	printf "  \"before\": {\n"
	printf "    \"BenchmarkScheduleRun\": {\"ns_per_op\": 65.42, \"bytes_per_op\": 48, \"allocs_per_op\": 1},\n"
	printf "    \"BenchmarkScheduleRunFanout\": {\"ns_per_op\": 189.2, \"bytes_per_op\": 48, \"allocs_per_op\": 1},\n"
	printf "    \"BenchmarkScheduleCancel\": {\"ns_per_op\": 145.6, \"bytes_per_op\": 96, \"allocs_per_op\": 2},\n"
	printf "    \"cebench_all_serial_ms\": 7890\n"
	printf "  },\n"
	printf "  \"after\": {\n"
	first = 1
	for (name in ns) {
		if (!first) printf ",\n"
		first = 0
		printf "    \"%s\": {\"ns_per_op\": %.2f", name, ns[name] / nsn[name]
		if (aln[name] > 0) printf ", \"allocs_per_op\": %.1f", al[name] / aln[name]
		printf "}"
	}
	if (!first) printf ",\n"
	printf "    \"cebench_all_serial_ms\": %d,\n", serial_ms
	printf "    \"cebench_all_parallel_ms\": %d,\n", parallel_ms
	printf "    \"parallelism\": %d\n", par
	printf "  }\n"
	printf "}\n"
}' "$MICRO" > "$OUT"

echo "wrote $OUT"
