// Package repro is a from-scratch Go reproduction of "QoS-Aware and
// Cost-Efficient Dynamic Resource Allocation for Serverless ML Workflows"
// (Wu et al., IPDPS 2023) — the CE-scaling framework — together with the
// simulated serverless substrate (FaaS platform, external storage services,
// real SGD training) its evaluation runs on.
//
// The public API lives in repro/cescaling; the per-subsystem implementation
// is under internal/ (see DESIGN.md for the inventory); every table and
// figure of the paper's evaluation regenerates via cmd/cebench or the
// benchmarks in bench_test.go.
package repro
