package cost

import (
	"fmt"
	"sync"
)

// Frontier is an immutable, shared view of a Pareto boundary: points in
// strictly ascending Time and strictly descending Cost order (the sweep in
// Pareto collapses time ties, so both orders are strict by construction).
// Frontiers are interned per (workload, pricing, limits, bandwidth, noise,
// grid) signature — ten thousand tenants running the same model class hold
// the same *Frontier instead of ten thousand defensive copies — so the
// backing points must never be mutated. Callers that need a private
// mutable slice use Model.ParetoSet, which keeps its copying contract.
type Frontier struct {
	pts []Point
}

// NewFrontier builds a private (non-interned) frontier from arbitrary
// points by taking their Pareto boundary.
func NewFrontier(points []Point) *Frontier {
	return &Frontier{pts: Pareto(points)}
}

// Len returns the number of boundary points.
//
//cescalint:hotpath
func (f *Frontier) Len() int {
	if f == nil {
		return 0
	}
	return len(f.pts)
}

// At returns the i-th boundary point in ascending-Time order.
//
//cescalint:hotpath
func (f *Frontier) At(i int) Point { return f.pts[i] }

// Points returns the shared backing slice in ascending-Time order. It is
// borrowed, not owned: mutating it corrupts every tenant sharing the
// frontier.
//
//cescalint:hotpath
func (f *Frontier) Points() []Point {
	if f == nil {
		return nil
	}
	return f.pts
}

// frontierIntern maps (model signature, grid signature) to the one shared
// *Frontier for that configuration, across all Model instances.
var frontierIntern sync.Map // string -> *Frontier

// gridTable is the dense per-grid estimate table that replaces the
// sync.Map epoch memo on the planning path: every feasible grid point is
// evaluated once at build time into index-addressed slots, so a lookup is
// one map probe and one slice index — no interface boxing, no per-call
// stores. A Model typically holds exactly one table (the default grid).
type gridTable struct {
	grid     Grid
	key      string               // gridKey(grid), computed once per table
	index    map[Allocation]int32 // feasible allocation -> slot in est/points
	est      []epochEst
	points   []Point // feasible grid points in grid order; immutable
	frontier *Frontier
}

// gridsEqual compares grids element-wise (the slice identity is irrelevant).
func gridsEqual(a, b Grid) bool {
	if len(a.Ns) != len(b.Ns) || len(a.MemsMB) != len(b.MemsMB) || len(a.Storages) != len(b.Storages) {
		return false
	}
	for i := range a.Ns {
		if a.Ns[i] != b.Ns[i] {
			return false
		}
	}
	for i := range a.MemsMB {
		if a.MemsMB[i] != b.MemsMB[i] {
			return false
		}
	}
	for i := range a.Storages {
		if a.Storages[i] != b.Storages[i] {
			return false
		}
	}
	return true
}

// signature is the deterministic identity of this model's analytic
// configuration: two models with equal signatures produce bit-identical
// estimates, so they may share interned frontiers. All referenced structs
// are scalar-only (no maps, no pointers), so %+v is stable.
func (m *Model) signature() string {
	return fmt.Sprintf("%+v|%+v|%+v|%g|%g",
		*m.Workload, m.Prices, m.Limits, m.LoadMBps, m.StragglerSigma)
}

// ensureTable returns the dense table for g, building it on first use. The
// fast path is a lock-free scan of the (tiny, append-only) table list.
func (m *Model) ensureTable(g Grid) *gridTable {
	if ts, _ := m.tables.Load().([]*gridTable); ts != nil {
		for _, t := range ts {
			if gridsEqual(t.grid, g) {
				return t
			}
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ts, _ := m.tables.Load().([]*gridTable)
	for _, t := range ts {
		if gridsEqual(t.grid, g) {
			return t
		}
	}
	t := m.buildTable(g)
	next := make([]*gridTable, len(ts)+1)
	copy(next, ts)
	next[len(ts)] = t
	m.tables.Store(next)
	return t
}

// buildTable evaluates every feasible grid point (in parallel, merged in
// grid order) and interns the resulting Pareto frontier.
func (m *Model) buildTable(g Grid) *gridTable {
	t := &gridTable{
		// Private copies: the caller may mutate its grid slices later.
		grid: Grid{
			Ns:       append([]int(nil), g.Ns...),
			MemsMB:   append([]int(nil), g.MemsMB...),
			Storages: append(g.Storages[:0:0], g.Storages...),
		},
		key: gridKey(g),
	}
	slots, feasible := m.scanGrid(g)
	t.index = make(map[Allocation]int32, len(slots))
	for idx, ok := range feasible {
		if !ok {
			continue
		}
		p := slots[idx]
		t.index[p.Alloc] = int32(len(t.points))
		t.points = append(t.points, p)
		t.est = append(t.est, epochEst{time: p.Time, cost: p.Cost})
	}
	front := &Frontier{pts: Pareto(t.points)}
	fkey := m.signature() + "\x00" + t.key
	if shared, loaded := frontierIntern.LoadOrStore(fkey, front); loaded {
		front = shared.(*Frontier)
	}
	t.frontier = front
	return t
}

// ParetoFrontier returns the immutable shared Pareto boundary of the grid —
// the 𝒫 of Table III as one interned object. Schedulers search this view
// directly; use ParetoSet for a private mutable copy.
func (m *Model) ParetoFrontier(g Grid) *Frontier {
	return m.ensureTable(g).frontier
}
