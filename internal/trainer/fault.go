package trainer

import (
	"fmt"

	"repro/internal/faas"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Scheduled fault reaction: when Config.Faults is active, the deterministic
// schedule drives the failure path instead of the synthetic dice roll.
// Kills and warm reclaims mutate the real platform; brownouts exercise the
// bounded retry policy around checkpoint storage; straggler and brownout
// windows inflate the epoch components in runEpoch. Everything lands on the
// same clocks and meters as the synthetic model, so results from the two
// paths are directly comparable.

// platformOf returns the backend's raw simulated platform when available.
// Fault injection mutates real platform state through it; a backend without
// one (the live substrate) keeps the time and cost accounting but skips the
// mutation.
func (r *Runner) platformOf() *faas.Platform {
	if pp, ok := r.Backend.(interface{ Platform() *faas.Platform }); ok {
		return pp.Platform()
	}
	return nil
}

// scheduledFaults processes every instantaneous fault event the schedule
// places before the end of the current epoch attempt. A warm reclaim is a
// pure platform mutation (the job itself is untouched). A sandbox kill
// aborts the BSP epoch exactly like a synthetic crash: the group loses the
// attempt fraction that ran before the kill, the killed sandboxes
// re-invoke at real (possibly cold-spiked) start latency and re-pull the
// checkpoint through possibly browned-out storage, and the epoch retries.
func (r *Runner) scheduledFaults(st *state, epoch int, epochT float64) error {
	sched := st.cfg.Faults
	for {
		ev, idx, ok := sched.NextInstant(st.faultCursor, st.clock+epochT)
		if !ok {
			return nil
		}
		st.faultCursor = idx
		switch ev.Kind {
		case fault.ReclaimWarm:
			if pf := r.platformOf(); pf != nil {
				n := pf.ReclaimWarm(ev.Count)
				if r.obs.Enabled() {
					r.obs.Trace().InstantAt(st.clock, "job", "trainer", "fault_reclaim",
						obs.I("epoch", epoch), obs.I("n", n))
				}
			}
		case fault.KillSandbox:
			if err := r.killDuringEpoch(st, epoch, epochT, ev); err != nil {
				return err
			}
		}
	}
}

// killDuringEpoch handles one scheduled sandbox kill mid-epoch.
func (r *Runner) killDuringEpoch(st *state, epoch int, epochT float64, ev fault.Event) error {
	sched := st.cfg.Faults
	a := st.alloc
	w := st.cfg.Workload
	k := ev.Count
	if k > a.N {
		k = a.N
	}
	if k <= 0 {
		return nil
	}
	// The attempt fraction that ran before the kill is wasted (the BSP
	// barrier cannot complete without the killed members).
	wasted := ev.At - st.clock
	if wasted < 0 {
		wasted = 0
	}
	if wasted > epochT {
		wasted = epochT
	}
	pf := r.platformOf()
	if pf != nil {
		pf.KillSandboxes(k)
		// Replacements pay the platform's real start latency, spiked if the
		// kill lands inside a cold-start spike window.
		pf.SetColdSpikeFactor(sched.ColdSpikeFactor(ev.At))
	}
	invs, err := r.Compute().InvokeGroup(k, a.MemMB)
	if pf != nil {
		pf.SetColdSpikeFactor(1)
	}
	if err != nil {
		return fmt.Errorf("trainer: re-invoking %d killed sandboxes: %w", k, err)
	}
	start := 0.0
	for _, inv := range invs {
		if inv.StartDelay > start {
			start = inv.StartDelay
		}
	}
	// The checkpoint re-pull crosses storage that may be browned out.
	lat := 1.0
	if l, _, on := sched.BrownoutAt(ev.At); on {
		lat = l
	}
	recover := start + r.Service(a.Storage).TransferTime(a.N, w.ParamsMB)*lat
	st.clock += wasted + recover
	st.res.OverheadTime += wasted + recover
	st.res.FailureTime += wasted + recover
	st.res.Failures++
	if r.obs.Enabled() {
		r.obs.Trace().InstantAt(st.clock, "job", "trainer", "fault_kill",
			obs.I("epoch", epoch), obs.I("killed", k),
			obs.F("wasted_s", wasted), obs.F("recover_s", recover))
		r.obs.Stats().Inc("trainer.failures")
		r.obs.Stats().Add("trainer.failure_s", wasted+recover)
		r.obs.Stats().Add("trainer.fault_kills", float64(k))
	}
	// Same billing shape as the synthetic path: the whole group is charged
	// for the wasted attempt, the k replacements for their recovery run and
	// invocation fees.
	r.Compute().BillCompute(a.N, a.MemMB, wasted)
	r.Compute().BillCompute(k, a.MemMB, recover)
	computeSpent := float64(k) * r.Prices.ComputeOnlyCost(recover, float64(a.MemMB))
	if wasted > 0 { // a kill at the attempt boundary wasted no compute
		computeSpent += float64(a.N) * r.Prices.ComputeOnlyCost(wasted, float64(a.MemMB))
	}
	invokeSpent := float64(k) * r.Prices.FunctionInvoke
	st.res.FunctionCost += computeSpent
	st.res.InvokeCost += invokeSpent
	st.res.TotalCost += computeSpent + invokeSpent
	// Without a usable checkpoint the crash loses all progress, exactly as
	// in the synthetic model.
	if (st.cfg.DisableCheckpoint || st.ckptOff) && st.initialState != nil {
		if snap, ok := st.cfg.Engine.(workload.Snapshotter); ok {
			if err := snap.Restore(st.initialState); err != nil {
				return fmt.Errorf("trainer: restoring initial state: %w", err)
			}
		}
	}
	return nil
}

// brownoutOp gates one checkpoint storage operation through an active
// brownout window. Failed attempts back off on the job clock per the retry
// policy; returning false means the policy was exhausted and the job just
// degraded to checkpoint-less mode (Result.Degraded) — the graceful path,
// where the old behavior for unusable checkpoints was a panic.
func (r *Runner) brownoutOp(st *state, op string) bool {
	sched := st.cfg.Faults
	if !sched.Active() {
		return true
	}
	_, errRate, on := sched.BrownoutAt(st.clock)
	if !on || errRate == 0 {
		return true
	}
	pol := st.cfg.Retry.OrDefault()
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		if !st.gate.Fail(errRate) {
			return true
		}
		backoff := pol.Backoff(attempt)
		st.clock += backoff
		st.res.OverheadTime += backoff
		st.res.StorageRetries++
		if r.obs.Enabled() {
			r.obs.Trace().InstantAt(st.clock, "job", "trainer", "storage_retry",
				obs.S("op", op), obs.I("attempt", attempt), obs.F("backoff_s", backoff))
			r.obs.Stats().Inc("trainer.storage_retries")
		}
	}
	r.degrade(st, "brownout retries exhausted during "+op)
	return false
}

// degrade latches the job into checkpoint-less mode with an explicit flag.
func (r *Runner) degrade(st *state, why string) {
	st.res.Degraded = true
	st.ckptOff = true
	if r.obs.Enabled() {
		r.obs.Trace().InstantAt(st.clock, "job", "trainer", "degraded", obs.S("why", why))
		r.obs.Stats().Inc("trainer.degraded")
	}
}
