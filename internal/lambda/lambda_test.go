package lambda

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func echoInvoker(t *testing.T, mem int) *Invoker {
	t.Helper()
	inv := NewInvoker(100)
	err := inv.Register("echo", Registration{
		MemoryMB: mem,
		Handler: func(c Context, payload []byte) ([]byte, error) {
			return append([]byte("echo:"), payload...), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return inv
}

func TestRegisterValidation(t *testing.T) {
	inv := NewInvoker(10)
	if err := inv.Register("", Registration{MemoryMB: 512, Handler: func(Context, []byte) ([]byte, error) { return nil, nil }}); err == nil {
		t.Error("empty name accepted")
	}
	if err := inv.Register("f", Registration{MemoryMB: 512}); err == nil {
		t.Error("nil handler accepted")
	}
	if err := inv.Register("f", Registration{MemoryMB: 64, Handler: func(Context, []byte) ([]byte, error) { return nil, nil }}); err == nil {
		t.Error("64MB accepted")
	}
}

func TestInvokeRoundTrip(t *testing.T) {
	inv := echoInvoker(t, 512)
	resp, err := inv.Invoke("echo", []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, []byte("echo:hi")) {
		t.Errorf("resp = %q", resp)
	}
	if inv.InFlight() != 0 {
		t.Error("invocation leaked a concurrency slot")
	}
}

func TestInvokeUnregistered(t *testing.T) {
	inv := NewInvoker(10)
	if _, err := inv.Invoke("nope", nil); !errors.Is(err, ErrNotRegistered) {
		t.Errorf("err = %v", err)
	}
}

func TestColdThenWarm(t *testing.T) {
	var sawCold, sawWarm bool
	inv := NewInvoker(10)
	inv.Register("f", Registration{MemoryMB: 256, Handler: func(c Context, _ []byte) ([]byte, error) {
		if c.Cold {
			sawCold = true
		} else {
			sawWarm = true
		}
		return nil, nil
	}})
	inv.Invoke("f", nil)
	inv.Invoke("f", nil)
	if !sawCold || !sawWarm {
		t.Errorf("cold=%v warm=%v, want both", sawCold, sawWarm)
	}
	if got := inv.Stats().ColdStarts; got != 1 {
		t.Errorf("ColdStarts = %d, want 1", got)
	}
}

func TestPrewarmSkipsColdStart(t *testing.T) {
	inv := NewInvoker(10)
	cold := 0
	inv.Register("f", Registration{MemoryMB: 256, Handler: func(c Context, _ []byte) ([]byte, error) {
		if c.Cold {
			cold++
		}
		return nil, nil
	}})
	if err := inv.Prewarm("f", 3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		inv.Invoke("f", nil)
	}
	if cold != 0 {
		t.Errorf("%d cold starts after prewarming 3", cold)
	}
	if err := inv.Prewarm("nope", 1); err == nil {
		t.Error("prewarming an unregistered function should fail")
	}
}

func TestThrottleAtCap(t *testing.T) {
	inv := NewInvoker(2)
	block := make(chan struct{})
	inv.Register("slow", Registration{MemoryMB: 256, Handler: func(c Context, _ []byte) ([]byte, error) {
		<-block
		return nil, nil
	}})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); inv.Invoke("slow", nil) }()
	}
	// Wait for both to be admitted.
	for inv.InFlight() != 2 {
		time.Sleep(time.Millisecond)
	}
	if _, err := inv.Invoke("slow", nil); !errors.Is(err, ErrThrottled) {
		t.Errorf("third concurrent invoke: %v, want throttle", err)
	}
	close(block)
	wg.Wait()
	if inv.Stats().Throttles != 1 {
		t.Errorf("Throttles = %d, want 1", inv.Stats().Throttles)
	}
}

func TestTimeout(t *testing.T) {
	inv := NewInvoker(10)
	inv.Register("hang", Registration{
		MemoryMB: 256,
		Timeout:  20 * time.Millisecond,
		Handler: func(c Context, _ []byte) ([]byte, error) {
			<-c.Ctx.Done() // a well-behaved handler observes cancellation
			return nil, c.Ctx.Err()
		},
	})
	if _, err := inv.Invoke("hang", nil); !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, want timeout", err)
	}
	if inv.InFlight() != 0 {
		t.Error("timed-out invocation leaked a slot")
	}
}

func TestHandlerErrorCounted(t *testing.T) {
	inv := NewInvoker(10)
	boom := errors.New("boom")
	inv.Register("f", Registration{MemoryMB: 256, Handler: func(Context, []byte) ([]byte, error) {
		return nil, boom
	}})
	if _, err := inv.Invoke("f", nil); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
	if inv.Stats().Errors != 1 {
		t.Errorf("Errors = %d, want 1", inv.Stats().Errors)
	}
}

func TestMapGathersInOrder(t *testing.T) {
	inv := NewInvoker(4)
	inv.Register("sq", Registration{MemoryMB: 256, Handler: func(c Context, p []byte) ([]byte, error) {
		n := int(p[0])
		return []byte{byte(n * n)}, nil
	}})
	payloads := make([][]byte, 10)
	for i := range payloads {
		payloads[i] = []byte{byte(i)}
	}
	results, err := inv.Map("sq", payloads)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("result %d: %v", i, r.Err)
		}
		if int(r.Response[0]) != i*i {
			t.Errorf("result %d = %d, want %d", i, r.Response[0], i*i)
		}
	}
}

func TestMapQueuesBeyondCap(t *testing.T) {
	inv := NewInvoker(2) // far below the fan-out
	var running, peak atomic.Int32
	inv.Register("f", Registration{MemoryMB: 256, Handler: func(Context, []byte) ([]byte, error) {
		cur := running.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		running.Add(-1)
		return nil, nil
	}})
	results, err := inv.Map("f", make([][]byte, 12))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("queued invocation failed: %v", r.Err)
		}
	}
	if peak.Load() > 2 {
		t.Errorf("peak concurrency %d exceeded the cap 2", peak.Load())
	}
	if inv.Stats().Invocations < 12 {
		t.Errorf("Invocations = %d, want >= 12", inv.Stats().Invocations)
	}
}

func TestMapUnregistered(t *testing.T) {
	inv := NewInvoker(2)
	if _, err := inv.Map("nope", make([][]byte, 3)); !errors.Is(err, ErrNotRegistered) {
		t.Errorf("err = %v", err)
	}
}

func TestBilledMSAccumulates(t *testing.T) {
	inv := NewInvoker(10)
	inv.Register("f", Registration{MemoryMB: 256, Handler: func(Context, []byte) ([]byte, error) {
		time.Sleep(3 * time.Millisecond)
		return nil, nil
	}})
	inv.Invoke("f", nil)
	if got := inv.Stats().BilledMS; got < 2 {
		t.Errorf("BilledMS = %d, want >= 2", got)
	}
}

func TestRequestIDsUnique(t *testing.T) {
	inv := NewInvoker(100)
	var mu sync.Mutex
	seen := map[string]bool{}
	inv.Register("f", Registration{MemoryMB: 256, Handler: func(c Context, _ []byte) ([]byte, error) {
		mu.Lock()
		defer mu.Unlock()
		if seen[c.RequestID] {
			return nil, fmt.Errorf("duplicate request id %s", c.RequestID)
		}
		seen[c.RequestID] = true
		return nil, nil
	}})
	results, err := inv.Map("f", make([][]byte, 50))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
}
