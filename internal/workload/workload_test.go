package workload

import (
	"math"
	"testing"

	"repro/internal/dataset"
)

func TestModelSizesMatchPaper(t *testing.T) {
	if m := MobileNet(); m.ParamsMB != 12 {
		t.Errorf("MobileNet size = %g, want 12", m.ParamsMB)
	}
	if m := ResNet50(); m.ParamsMB != 89 {
		t.Errorf("ResNet50 size = %g, want 89", m.ParamsMB)
	}
	if m := BERT(); m.ParamsMB != 340 {
		t.Errorf("BERT size = %g, want 340", m.ParamsMB)
	}
	if m := LRHiggs(); m.ParamsMB > 0.4 {
		t.Errorf("LR model must fit DynamoDB's 400KB limit, got %g MB", m.ParamsMB)
	}
}

func TestTableIVConfigs(t *testing.T) {
	cases := []struct {
		m      *Model
		batch  int
		lr     float64
		target float64
	}{
		{LRHiggs(), 10000, 0.01, 0.66},
		{SVMHiggs(), 10000, 0.01, 0.48},
		{LRYFCC(), 800, 0.01, 50},
		{MobileNet(), 128, 0.01, 0.2},
		{ResNet50(), 32, 0.01, 0.4},
		{BERT(), 32, 0.00005, 0.6},
	}
	for _, c := range cases {
		if c.m.Batch != c.batch || c.m.DefaultLR != c.lr || c.m.TargetLoss != c.target {
			t.Errorf("%s config = (%d, %g, %g), want (%d, %g, %g)",
				c.m.Name, c.m.Batch, c.m.DefaultLR, c.m.TargetLoss, c.batch, c.lr, c.target)
		}
	}
}

func TestEvaluatedListsFiveModels(t *testing.T) {
	ev := Evaluated()
	if len(ev) != 5 {
		t.Fatalf("Evaluated returned %d models", len(ev))
	}
	real := 0
	for _, m := range ev {
		if m.Real() {
			real++
		}
	}
	if real != 2 {
		t.Errorf("%d real models among evaluated, want 2 (LR, SVM)", real)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"LR-Higgs", "BERT-IMDb", "LR-YFCC"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("GPT-9"); err == nil {
		t.Error("unknown model should error")
	}
}

func TestUDecreasesWithMemoryUntilCap(t *testing.T) {
	m := MobileNet()
	if !(m.U(512) > m.U(1769) && m.U(1769) > m.U(3538)) {
		t.Error("u(m) should decrease with memory")
	}
	// Past the vCPU cap more memory no longer helps.
	capMB := int(m.VCPUCap * 1769)
	if math.Abs(m.U(capMB)-m.U(capMB+2048)) > 1e-12 {
		t.Error("u(m) should flatten past the vCPU cap")
	}
	// One full vCPU processes 1MB in UBase seconds.
	if got := m.U(1769); math.Abs(got-m.UBase) > 1e-9 {
		t.Errorf("U(1769) = %g, want UBase %g", got, m.UBase)
	}
}

func TestLinearModelsCappedAtTwoVCPU(t *testing.T) {
	m := LRHiggs()
	if m.U(2*1769) != m.U(6*1769) {
		t.Error("LR should not speed up past 2 vCPUs")
	}
}

func TestFeasibility(t *testing.T) {
	b := BERT()
	if b.Feasible(10, 512) {
		t.Error("BERT cannot run in 512MB")
	}
	if !b.Feasible(10, 4096) {
		t.Error("BERT should run in 4GB with 10 functions")
	}
	lr := LRHiggs()
	if lr.Feasible(1, 512) {
		t.Error("a single 512MB function cannot hold the whole 2.4GB Higgs")
	}
	if !lr.Feasible(50, 512) {
		t.Error("50-way split of Higgs should fit 512MB functions")
	}
}

func TestIterationsPerEpoch(t *testing.T) {
	m := LRHiggs() // 11M samples, batch 10k
	if got := m.IterationsPerEpoch(10); got != 110 {
		t.Errorf("k = %d, want 110", got)
	}
	if got := m.IterationsPerEpoch(11_000_000); got != 1 {
		t.Errorf("k floor = %d, want 1", got)
	}
}

func TestCurveParamsEpochsToReach(t *testing.T) {
	cp := CurveParams{A: 0.2, B: 0.5, C: 0.1}
	e, ok := cp.EpochsToReach(0.3)
	if !ok {
		t.Fatal("target above floor should be reachable")
	}
	if cp.Eval(float64(e)) > 0.3+1e-9 {
		t.Errorf("after %d epochs curve is %g > 0.3", e, cp.Eval(float64(e)))
	}
	if cp.Eval(float64(e-1)) <= 0.3 {
		t.Errorf("EpochsToReach not minimal: epoch %d already at %g", e-1, cp.Eval(float64(e-1)))
	}
	if _, ok := cp.EpochsToReach(0.05); ok {
		t.Error("target below floor should be unreachable")
	}
}

func TestModelsConvergeToTargets(t *testing.T) {
	// Every evaluated model must be able to reach its Table IV target with
	// the default hyperparameters — otherwise no experiment terminates.
	for _, m := range Evaluated() {
		eng := m.NewEngine(Hyperparams{LR: m.DefaultLR}, 42)
		reached := false
		for e := 0; e < 300; e++ {
			if eng.NextEpoch() <= m.TargetLoss {
				reached = true
				break
			}
		}
		if !reached {
			t.Errorf("%s never reached target %g (last loss %g after %d epochs)",
				m.Name, m.TargetLoss, eng.Loss(), eng.EpochsRun())
		}
	}
}

func TestCurveEngineNoiseBounded(t *testing.T) {
	m := MobileNet()
	eng := m.NewCurveEngine(Hyperparams{LR: m.DefaultLR}, 7)
	prev := eng.Loss()
	increases := 0
	for e := 0; e < 50; e++ {
		l := eng.NextEpoch()
		if l > prev {
			increases++
		}
		prev = l
	}
	// Noise may cause occasional upticks but the trend must be downward.
	if increases > 20 {
		t.Errorf("loss increased on %d of 50 epochs; curve is not converging", increases)
	}
}

func TestBadLearningRateConvergesSlower(t *testing.T) {
	m := ResNet50()
	lossAfter := func(lr float64) float64 {
		eng := m.NewCurveEngine(Hyperparams{LR: lr}, 11)
		var l float64
		for e := 0; e < 20; e++ {
			l = eng.NextEpoch()
		}
		return l
	}
	good, bad := lossAfter(m.LROpt), lossAfter(m.LROpt*300)
	if bad <= good {
		t.Errorf("a wildly wrong lr should converge worse: good=%g bad=%g", good, bad)
	}
}

func TestRealEngineRejectsCurveOnlyModels(t *testing.T) {
	if _, err := MobileNet().NewRealEngine(Hyperparams{}, 100, 1); err == nil {
		t.Error("MobileNet should not offer a real engine")
	}
}

func TestRealEngineTrainsDeterministically(t *testing.T) {
	run := func() []float64 {
		eng, err := LRHiggs().NewRealEngine(Hyperparams{LR: 0.01}, 1000, 5)
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		for e := 0; e < 3; e++ {
			out = append(out, eng.NextEpoch())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("real engine is not deterministic")
		}
	}
}

func TestYFCCRegressionEngineReachesTarget(t *testing.T) {
	m := LRYFCC()
	eng, err := m.NewRealEngine(Hyperparams{LR: m.DefaultLR}, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dataset.Task != dataset.Regression {
		t.Fatal("YFCC should be a regression task")
	}
	reached := false
	for e := 0; e < 200; e++ {
		if eng.NextEpoch() <= m.TargetLoss {
			reached = true
			break
		}
	}
	if !reached {
		t.Errorf("LR-YFCC did not reach target %g, last loss %g", m.TargetLoss, eng.Loss())
	}
}

func TestEngineSeedsVary(t *testing.T) {
	m := BERT()
	a := m.NewCurveEngine(Hyperparams{LR: m.DefaultLR}, 1)
	b := m.NewCurveEngine(Hyperparams{LR: m.DefaultLR}, 2)
	var diff bool
	for e := 0; e < 10; e++ {
		if a.NextEpoch() != b.NextEpoch() {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds should produce different loss traces")
	}
}
