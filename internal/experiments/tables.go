package experiments

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/pricing"
	"repro/internal/storage"
	"repro/internal/trainer"
	"repro/internal/workload"
)

func init() {
	register("tab1", tab1)
	register("tab2", tab2)
	register("tab4", tab4)
}

// tab1 — characteristics of the external storage services.
func tab1(seed uint64) (*Table, error) {
	t := &Table{
		ID:      "tab1",
		Title:   "Comparison of external storage services",
		Headers: []string{"service", "elastic scaling", "latency", "pricing pattern", "cost"},
	}
	for _, s := range storage.All(pricing.Default()) {
		c := s.Characterize()
		t.Rows = append(t.Rows, []string{c.Name, c.ElasticScaling, c.LatencyClass, c.PricingPattern, c.CostClass})
	}
	_ = seed
	return t, nil
}

// tab2 — JCT and cost of Cirrus-style static training under each storage
// service, normalized to S3, for LR-Higgs and MobileNet at 10 and 50
// functions with 1769 MB.
func tab2(seed uint64) (*Table, error) {
	t := &Table{
		ID:      "tab2",
		Title:   "Storage services under a static allocation (normalized to S3; <1 beats S3)",
		Headers: []string{"allocation", "model", "storage", "JCT/S3", "cost/S3"},
		Notes:   "5 epochs per run; N/A: model exceeds DynamoDB's 400KB object limit",
	}
	models := []*workload.Model{workload.LRHiggs(), workload.MobileNet()}
	const epochs = 5
	ns := []int{10, 50}
	// Each (n, model) block is independent: flatten to cells, each running
	// its four storage services.
	blocks, err := cells(len(ns)*len(models), func(bi int) ([][]string, error) {
		n := ns[bi/len(models)]
		w := models[bi%len(models)]
		base := map[storage.Kind]*trainer.Result{}
		for _, kind := range storage.Kinds() {
			a := cost.Allocation{N: n, MemMB: 1769, Storage: kind}
			m := cost.NewModel(w)
			if !m.Feasible(a) {
				continue
			}
			r := trainer.NewRunner(seed + uint64(n) + uint64(kind)*13)
			res, err := r.RunEpochs(w, w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, seed), a, epochs)
			if err != nil {
				return nil, err
			}
			base[kind] = res
		}
		s3 := base[storage.S3]
		if s3 == nil {
			return nil, fmt.Errorf("tab2: no S3 baseline for %s n=%d", w.Name, n)
		}
		var rows [][]string
		for _, kind := range storage.Kinds() {
			label := fmt.Sprintf("%d functions/1769MB", n)
			res := base[kind]
			if res == nil {
				rows = append(rows, []string{label, w.Name, kind.String(), "N/A", "N/A"})
				continue
			}
			rows = append(rows, []string{
				label, w.Name, kind.String(),
				f2(res.JCT / s3.JCT), f2(res.TotalCost / s3.TotalCost),
			})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	for _, rows := range blocks {
		t.Rows = append(t.Rows, rows...)
	}
	return t, nil
}

// tab4 — the experimental configurations (inputs, echoed for completeness).
func tab4(seed uint64) (*Table, error) {
	t := &Table{
		ID:      "tab4",
		Title:   "Experimental configurations of the evaluated models",
		Headers: []string{"model", "dataset", "batch size", "learning rate", "target loss", "model size (MB)"},
	}
	for _, w := range append(workload.Evaluated(), workload.LRYFCC()) {
		t.Rows = append(t.Rows, []string{
			w.Name, w.Dataset.Name,
			fmt.Sprintf("%d", w.Batch),
			fmt.Sprintf("%g", w.DefaultLR),
			fmt.Sprintf("%g", w.TargetLoss),
			fmt.Sprintf("%g", w.ParamsMB),
		})
	}
	_ = seed
	return t, nil
}
