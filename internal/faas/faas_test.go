package faas

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/pricing"
	"repro/internal/sim"
)

func newPlatform() *Platform {
	return NewDefault(sim.New(1))
}

func TestCPUShareLinearUpToCap(t *testing.T) {
	l := DefaultLimits()
	if got := l.CPUShare(1769); math.Abs(got-1) > 1e-12 {
		t.Errorf("CPUShare(1769) = %g, want 1", got)
	}
	if got := l.CPUShare(3538); math.Abs(got-2) > 1e-12 {
		t.Errorf("CPUShare(3538) = %g, want 2", got)
	}
	if got := l.CPUShare(1024 * 1024); got != l.MaxVCPU {
		t.Errorf("CPUShare(huge) = %g, want cap %g", got, l.MaxVCPU)
	}
}

func TestValidateMemory(t *testing.T) {
	l := DefaultLimits()
	if err := l.ValidateMemory(128); err != nil {
		t.Errorf("128MB should be valid: %v", err)
	}
	if err := l.ValidateMemory(10240); err != nil {
		t.Errorf("10240MB should be valid: %v", err)
	}
	if err := l.ValidateMemory(64); err == nil {
		t.Error("64MB should be rejected")
	}
	if err := l.ValidateMemory(20480); err == nil {
		t.Error("20480MB should be rejected")
	}
}

func TestInvokeGroupColdThenWarm(t *testing.T) {
	p := newPlatform()
	invs, err := p.InvokeGroup(4, 1769)
	if err != nil {
		t.Fatal(err)
	}
	for i, inv := range invs {
		if !inv.Cold {
			t.Errorf("invocation %d should be cold on a fresh platform", i)
		}
		if inv.StartDelay < 1 {
			t.Errorf("cold start %g s too fast", inv.StartDelay)
		}
	}
	p.ReleaseGroup(4, 1769, 10)
	if p.WarmCount(1769) != 4 {
		t.Fatalf("warm pool = %d, want 4", p.WarmCount(1769))
	}
	invs, err = p.InvokeGroup(4, 1769)
	if err != nil {
		t.Fatal(err)
	}
	for i, inv := range invs {
		if inv.Cold {
			t.Errorf("invocation %d should be warm after release", i)
		}
		if inv.StartDelay != DefaultStartup().Warm {
			t.Errorf("warm start = %g, want %g", inv.StartDelay, DefaultStartup().Warm)
		}
	}
}

func TestInvokeGroupMixedWarmCold(t *testing.T) {
	p := newPlatform()
	if err := p.Prewarm(2, 1769); err != nil {
		t.Fatal(err)
	}
	invs, err := p.InvokeGroup(5, 1769)
	if err != nil {
		t.Fatal(err)
	}
	cold := 0
	for _, inv := range invs {
		if inv.Cold {
			cold++
		}
	}
	if cold != 3 {
		t.Errorf("cold count = %d, want 3 (2 prewarmed of 5)", cold)
	}
	if p.WarmCount(1769) != 0 {
		t.Errorf("warm pool = %d, want 0 after consumption", p.WarmCount(1769))
	}
}

func TestConcurrencyCap(t *testing.T) {
	p := newPlatform()
	if _, err := p.InvokeGroup(3000, 128); err != nil {
		t.Fatalf("3000 concurrent should be admitted: %v", err)
	}
	if _, err := p.InvokeGroup(1, 128); !errors.Is(err, ErrConcurrencyExceeded) {
		t.Fatalf("expected ErrConcurrencyExceeded, got %v", err)
	}
	p.ReleaseGroup(1, 128, 1)
	if _, err := p.InvokeGroup(1, 128); err != nil {
		t.Fatalf("after release one slot should be free: %v", err)
	}
}

func TestInvokeGroupRejectsBadArgs(t *testing.T) {
	p := newPlatform()
	if _, err := p.InvokeGroup(0, 1769); err == nil {
		t.Error("n=0 should be rejected")
	}
	if _, err := p.InvokeGroup(1, 64); err == nil {
		t.Error("64MB should be rejected")
	}
}

func TestBilling(t *testing.T) {
	p := newPlatform()
	pb := pricing.Default()
	if _, err := p.InvokeGroup(10, 1024); err != nil {
		t.Fatal(err)
	}
	p.ReleaseGroup(10, 1024, 100)
	m := p.Meter()
	if m.Invocations != 10 {
		t.Errorf("Invocations = %d, want 10", m.Invocations)
	}
	wantInvoke := 10 * pb.FunctionInvoke
	if math.Abs(m.InvokeCost-wantInvoke) > 1e-12 {
		t.Errorf("InvokeCost = %g, want %g", m.InvokeCost, wantInvoke)
	}
	wantGBs := 10 * 100 * 1.0 // 10 fns x 100s x 1GB
	if math.Abs(m.GBSeconds-wantGBs) > 1e-9 {
		t.Errorf("GBSeconds = %g, want %g", m.GBSeconds, wantGBs)
	}
	wantCompute := 10 * pb.ComputeOnlyCost(100, 1024)
	if math.Abs(m.ComputeCost-wantCompute) > 1e-12 {
		t.Errorf("ComputeCost = %g, want %g", m.ComputeCost, wantCompute)
	}
	if math.Abs(m.Total()-(wantInvoke+wantCompute)) > 1e-12 {
		t.Errorf("Total = %g, want %g", m.Total(), wantInvoke+wantCompute)
	}
}

func TestBillComputeDoesNotTouchAdmission(t *testing.T) {
	p := newPlatform()
	if _, err := p.InvokeGroup(2, 1769); err != nil {
		t.Fatal(err)
	}
	before := p.InFlight()
	p.BillCompute(2, 1769, 5)
	if p.InFlight() != before {
		t.Error("BillCompute changed admission state")
	}
	if p.Meter().GBSeconds == 0 {
		t.Error("BillCompute did not bill")
	}
}

func TestReleaseMoreThanInFlightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newPlatform().ReleaseGroup(1, 128, 1)
}

func TestColdStartGrowsWithMemory(t *testing.T) {
	p := newPlatform()
	if p.ColdStartEstimate(128) >= p.ColdStartEstimate(10240) {
		t.Error("cold start should grow with memory size")
	}
}

func TestColdStartJitterBounded(t *testing.T) {
	p := newPlatform()
	est := p.ColdStartEstimate(1769)
	frac := DefaultStartup().JitterFrac
	invs, err := p.InvokeGroup(100, 1769)
	if err != nil {
		t.Fatal(err)
	}
	for _, inv := range invs {
		lo, hi := est*(1-frac), est*(1+frac)
		if inv.StartDelay < lo-1e-9 || inv.StartDelay > hi+1e-9 {
			t.Fatalf("cold start %g outside [%g, %g]", inv.StartDelay, lo, hi)
		}
	}
}

func TestPrewarmChargesInvocations(t *testing.T) {
	p := newPlatform()
	if err := p.Prewarm(5, 512); err != nil {
		t.Fatal(err)
	}
	if p.Meter().Invocations != 5 {
		t.Errorf("Invocations = %d, want 5", p.Meter().Invocations)
	}
	if p.Meter().ComputeCost != 0 {
		t.Error("Prewarm should not bill compute")
	}
	if err := p.Prewarm(1, 1); err == nil {
		t.Error("Prewarm with invalid memory should fail")
	}
	if err := p.Prewarm(0, 512); err != nil {
		t.Errorf("Prewarm(0) should be a no-op, got %v", err)
	}
}

func TestDropWarm(t *testing.T) {
	p := newPlatform()
	if err := p.Prewarm(3, 512); err != nil {
		t.Fatal(err)
	}
	p.DropWarm(512)
	if p.WarmCount(512) != 0 {
		t.Error("DropWarm left sandboxes")
	}
}

func TestInvocationAccountingProperty(t *testing.T) {
	p := NewDefault(sim.New(42))
	if err := quick.Check(func(raw uint8) bool {
		n := int(raw%20) + 1
		if _, err := p.InvokeGroup(n, 1769); err != nil {
			return p.InFlight()+n > p.Limits().MaxConcurrency
		}
		p.ReleaseGroup(n, 1769, 1)
		return p.InFlight() >= 0
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	if p.InFlight() != 0 {
		t.Errorf("InFlight = %d after balanced invoke/release, want 0", p.InFlight())
	}
}

func TestWarmSandboxesExpireAfterTTL(t *testing.T) {
	s := sim.New(1)
	p := NewDefault(s)
	if err := p.Prewarm(3, 1769); err != nil {
		t.Fatal(err)
	}
	if p.WarmCount(1769) != 3 {
		t.Fatalf("warm = %d, want 3", p.WarmCount(1769))
	}
	// Just before the TTL nothing expires; just after, everything does.
	s.RunUntil(sim.Time(p.WarmTTL - 1))
	if p.WarmCount(1769) != 3 {
		t.Errorf("warm = %d before TTL, want 3", p.WarmCount(1769))
	}
	s.RunUntil(sim.Time(p.WarmTTL + 1))
	if p.WarmCount(1769) != 0 {
		t.Errorf("warm = %d after TTL, want 0", p.WarmCount(1769))
	}
}

func TestConsumedSandboxDoesNotExpireTwice(t *testing.T) {
	s := sim.New(1)
	p := NewDefault(s)
	p.Prewarm(1, 512)
	// Consume the warm sandbox, then run a long job and release it.
	if _, err := p.InvokeGroup(1, 512); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(sim.Time(p.WarmTTL * 2)) // original reclaim would fire here
	p.ReleaseGroup(1, 512, 100)
	if p.WarmCount(512) != 1 {
		t.Fatalf("warm = %d after release, want 1", p.WarmCount(512))
	}
	// The fresh sandbox only expires a TTL after its release.
	s.RunUntil(s.Now() + sim.Time(p.WarmTTL-1))
	if p.WarmCount(512) != 1 {
		t.Errorf("warm = %d before its own TTL, want 1", p.WarmCount(512))
	}
	s.RunUntil(s.Now() + 2)
	if p.WarmCount(512) != 0 {
		t.Errorf("warm = %d after its TTL, want 0", p.WarmCount(512))
	}
}

func TestZeroTTLDisablesExpiry(t *testing.T) {
	s := sim.New(1)
	p := NewDefault(s)
	p.WarmTTL = 0
	p.Prewarm(2, 512)
	s.RunUntil(1e9)
	if p.WarmCount(512) != 2 {
		t.Errorf("warm = %d with expiry disabled, want 2", p.WarmCount(512))
	}
}

func TestDropWarmCancelsReclaims(t *testing.T) {
	s := sim.New(1)
	p := NewDefault(s)
	p.Prewarm(2, 512)
	p.DropWarm(512)
	p.Prewarm(1, 512) // new sandbox after the drop
	s.RunUntil(sim.Time(p.WarmTTL / 2))
	if p.WarmCount(512) != 1 {
		t.Errorf("warm = %d, want 1 (old reclaims must not fire on the new sandbox)", p.WarmCount(512))
	}
}
