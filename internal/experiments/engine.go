package experiments

// The parallel experiment engine. Every artifact is a matrix of independent
// deterministic simulations (each cell builds its own sim.Simulation from an
// explicit seed), so both the artifact list and the inner system × model
// matrices parallelize trivially: run cells into index-addressed slots, merge
// in request order, and the output is byte-identical to a serial run.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Outcome is the result of one artifact run by RunAll.
type Outcome struct {
	ID      string
	Table   *Table // nil when Err is set
	Err     error
	Elapsed time.Duration // wall-clock of this artifact alone
}

// parallelism is the engine-wide worker bound shared by RunAll and the
// per-artifact inner matrices (cells). Default: one worker per CPU.
var parallelism atomic.Int64

func init() { parallelism.Store(int64(runtime.GOMAXPROCS(0))) }

// Parallelism reports the current worker bound.
func Parallelism() int { return int(parallelism.Load()) }

// SetParallelism bounds the engine's concurrency; p < 1 is clamped to 1
// (fully serial). It applies both across artifacts and inside each
// artifact's experiment matrix.
func SetParallelism(p int) {
	if p < 1 {
		p = 1
	}
	parallelism.Store(int64(p))
}

// RunAll executes the named experiments on a bounded worker pool and returns
// their outcomes in request order. Each artifact (and each cell inside one)
// owns its simulation state, so outputs are byte-identical to a serial run
// at any parallelism. Unknown ids surface as per-outcome errors, not a
// rejected batch.
func RunAll(ids []string, seed uint64) []Outcome {
	out := make([]Outcome, len(ids))
	run := func(i int) {
		start := time.Now() //cescalint:allow walltime -- per-artifact wall time is a stderr-only diagnostic; never printed to stdout
		t, err := Run(ids[i], seed)
		elapsed := time.Since(start) //cescalint:allow walltime -- pairs with the start stamp above; stderr-only
		out[i] = Outcome{ID: ids[i], Table: t, Err: err, Elapsed: elapsed}
	}
	p := Parallelism()
	if p > len(ids) {
		p = len(ids)
	}
	if p <= 1 || len(ids) <= 1 {
		for i := range ids {
			run(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ids) {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// cells evaluates n independent experiment cells with the engine's worker
// bound and returns their results in index order. The first error by index
// wins (deterministically), mirroring where a serial loop would have
// stopped. f must not share mutable state across indices.
func cells[T any](n int, f func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	errs := make([]error, n)
	p := Parallelism()
	if p > n {
		p = n
	}
	if p <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			results[i], errs[i] = f(i)
			if errs[i] != nil {
				return nil, errs[i]
			}
		}
		return results, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i], errs[i] = f(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// cellErr annotates a cell error with its label, matching the serial loops'
// fmt.Errorf("%s: %w", name, err) convention.
func cellErr(label string, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%s: %w", label, err)
}
