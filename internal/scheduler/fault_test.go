package scheduler

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/predictor"
	"repro/internal/trainer"
	"repro/internal/workload"
)

// TestStragglerWindowForcesReplanning: a fault schedule slows every epoch by
// 4x without telling the scheduler anything — the inflation reaches
// Algorithm 2 only through the elapsed time it ordinarily observes. Under a
// deadline calibrated to the calm run, the scheduler must notice the
// pressure through its normal decision path and re-plan: the decision log
// records escalation path= entries and an allocation switch that the calm
// run never needed.
func TestStragglerWindowForcesReplanning(t *testing.T) {
	w := workload.MobileNet()

	run := func(sched *fault.Schedule, qos float64) (*Scheduler, *trainer.Result, *obs.Observer) {
		t.Helper()
		m := cost.NewModel(w)
		o := obs.New()
		s := New(Config{
			Model: m, Candidates: m.ParetoSet(cost.DefaultGrid()),
			Budget: 0, QoS: qos,
			TargetLoss:     w.TargetLoss,
			DelayedRestart: true,
			// A tight δ re-evaluates the selection on small drifts, so the
			// fault pressure is observed promptly in both runs; the calm
			// run still never needs to escalate.
			Delta:       0.01,
			Offline:     predictor.NewOffline(w),
			OfflineSeed: 7,
			Obs:         o,
		})
		if qos == 0 {
			s.cfg.QoS = 0
			s.cfg.Budget = 1e9 // unconstrained probe
		}
		r := trainer.NewRunner(11)
		alloc, _ := s.Initial()
		res, err := r.Run(trainer.Config{
			Workload:   w,
			Engine:     w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, 13),
			Alloc:      alloc,
			TargetLoss: w.TargetLoss,
			MaxEpochs:  500,
			Faults:     sched,
			Controller: s.Controller(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return s, res, o
	}

	// Probe the calm JCT, then set a deadline the calm run meets easily.
	_, probe, _ := run(nil, 0)
	qos := probe.JCT * 1.5

	sCalm, calm, oCalm := run(nil, qos)
	if !calm.Converged || calm.JCT > qos {
		t.Fatalf("calm run missed the calibrated deadline: JCT %g vs %g", calm.JCT, qos)
	}

	sched := fault.MustNew(fault.StragglerWindow(0, 1e9, 4))
	sFault, faulty, oFault := run(sched, qos)
	if faulty.JCT <= calm.JCT {
		t.Fatalf("straggler did not slow the job: %g vs %g", faulty.JCT, calm.JCT)
	}
	// The decision log must show the re-plan: deadline pressure drove the
	// selection off the within-delta path into escalation, well beyond the
	// early prediction-noise escalations the calm run also sees.
	calmEsc := oCalm.Stats().Counter("scheduler.path.escalate-panic")
	faultEsc := oFault.Stats().Counter("scheduler.path.escalate-panic")
	if faultEsc <= calmEsc {
		t.Errorf("escalate-panic decisions: faulted %g <= calm %g — pressure never reached the decision log",
			faultEsc, calmEsc)
	}
	// The pressure produced real allocation switches (the faulted run
	// quickly pins to the fastest allocation and stays, so the calm run may
	// well adjust MORE often on drift noise — the point is that the faulted
	// run re-planned at all, and did it through escalation).
	if sFault.Adjustments == 0 {
		t.Error("faulted scheduler never adjusted")
	}
	_ = sCalm
	if oFault.Stats().Counter("scheduler.decisions") == 0 {
		t.Error("decision log empty under faults")
	}
}
