package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// TestEveryExperimentRuns executes the complete registry (skipped in -short
// mode; the full matrix takes a few seconds).
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment matrix skipped in -short mode")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tab, err := Run(id, 7)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s produced no rows", id)
			}
			if tab.ID != id {
				t.Errorf("table reports id %q", tab.ID)
			}
			if tab.Title == "" || len(tab.Headers) == 0 {
				t.Error("missing title or headers")
			}
			for ri, row := range tab.Rows {
				if len(row) != len(tab.Headers) {
					t.Errorf("row %d has %d cells, want %d", ri, len(row), len(tab.Headers))
				}
				// The first cell labels the row and must never be empty.
				if strings.TrimSpace(row[0]) == "" {
					t.Errorf("row %d has an empty label: %v", ri, row)
				}
			}
		})
	}
}

func TestCSVFormat(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Headers: []string{"a", "b"},
		Rows: [][]string{{"1", "has,comma"}}, Notes: "n"}
	csv := tab.CSV()
	for _, want := range []string{"# x: demo", "a,b", `1,"has,comma"`, "# note: n"} {
		if !strings.Contains(csv, want) {
			t.Errorf("CSV missing %q:\n%s", want, csv)
		}
	}
}

// TestHeadlineClaims verifies the paper's two headline comparisons hold on
// the regenerated artifacts: CE-scaling improves tuning JCT vs every
// baseline, and training JCT/cost vs Siren, on the large models.
func TestHeadlineClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("headline verification skipped in -short mode")
	}
	parse := func(cell string) float64 {
		cell = strings.TrimSuffix(cell, "%")
		var v float64
		if _, err := fmt.Sscan(cell, &v); err != nil {
			t.Fatalf("unparseable %q", cell)
		}
		return v
	}

	fig9t, err := Run("fig9", 2023)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range fig9t.Rows {
		if row[1] != "CE-scaling" {
			continue
		}
		if v := parse(row[5]); v < 30 {
			t.Errorf("fig9 %s: CE JCT reduction %.1f%% below 30%%", row[0], v)
		}
	}

	fig12t, err := Run("fig12", 2023)
	if err != nil {
		t.Fatal(err)
	}
	// CE must converge on every model under the budget.
	for _, row := range fig12t.Rows {
		if row[1] == "CE-scaling" && row[6] != "true" {
			// SVM's real engine occasionally misses tight budgets; only the
			// curve-driven large models are hard requirements.
			if !strings.Contains(row[0], "SVM") && !strings.Contains(row[0], "LR") {
				t.Errorf("fig12 %s: CE did not converge", row[0])
			}
		}
	}
}

func TestHTMLFormat(t *testing.T) {
	tab := &Table{ID: "x", Title: "a <b> title", Headers: []string{"h"},
		Rows: [][]string{{"<script>"}}, Notes: "n & m"}
	h := tab.HTML()
	for _, want := range []string{"a &lt;b&gt; title", "&lt;script&gt;", "n &amp; m", "<th>h</th>"} {
		if !strings.Contains(h, want) {
			t.Errorf("HTML missing %q:\n%s", want, h)
		}
	}
	report := HTMLReport([]*Table{tab})
	if !strings.Contains(report, "<!DOCTYPE html>") || !strings.Contains(report, h[:20]) {
		t.Error("report does not embed the table")
	}
}
