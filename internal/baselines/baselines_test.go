package baselines

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/planner"
	"repro/internal/predictor"
	"repro/internal/storage"
	"repro/internal/trainer"
	"repro/internal/workload"
)

func setup(t *testing.T, w *workload.Model) (*cost.Model, []cost.Point, []planner.Stage) {
	t.Helper()
	m := cost.NewModel(w)
	points := m.Enumerate(cost.DefaultGrid())
	pareto := cost.Pareto(points)
	return m, pareto, planner.SHAStages(512, 2, 2)
}

func TestFilterByStorage(t *testing.T) {
	w := workload.LRHiggs()
	m := cost.NewModel(w)
	points := m.Enumerate(cost.DefaultGrid())
	for _, kind := range storage.Kinds() {
		sub := FilterByStorage(points, kind)
		for _, p := range sub {
			if p.Alloc.Storage != kind {
				t.Fatalf("filter leaked %v into %v subset", p.Alloc.Storage, kind)
			}
		}
		if len(sub) == 0 {
			t.Errorf("no %v allocations for LR", kind)
		}
	}
}

func TestLambdaMLPlanUsesOnlyS3(t *testing.T) {
	w := workload.MobileNet()
	m, pareto, stages := setup(t, w)
	res, err := LambdaMLPlan(m, stages, pareto, 1e9, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range res.Plan.Stages {
		if a.Storage != storage.S3 {
			t.Errorf("stage %d uses %v, want S3", i, a.Storage)
		}
	}
	// Static: all stages identical.
	for _, a := range res.Plan.Stages[1:] {
		if a != res.Plan.Stages[0] {
			t.Error("LambdaML plan is not static")
		}
	}
}

func TestSirenPlanBiasesEarlyStages(t *testing.T) {
	w := workload.MobileNet()
	m, pareto, stages := setup(t, w)
	static, err := LambdaMLPlan(m, stages, pareto, 1e9, 0)
	if err != nil {
		t.Fatal(err)
	}
	budget := static.Cost * 1.4
	siren, err := SirenPlan(m, stages, pareto, budget, 0)
	if err != nil {
		t.Fatal(err)
	}
	if siren.Cost > budget*(1+1e-9) {
		t.Errorf("Siren plan cost %g violates budget %g", siren.Cost, budget)
	}
	// Early stages should be at least as expensive per epoch as late ones.
	first := m.EpochCost(siren.Plan.Stages[0])
	last := m.EpochCost(siren.Plan.Stages[len(stages)-1])
	if first < last {
		t.Errorf("Siren early-stage epoch cost %g below late %g; bias missing", first, last)
	}
}

func TestCirrusPlanUsesOnlyVMPS(t *testing.T) {
	w := workload.MobileNet()
	m, pareto, stages := setup(t, w)
	res, err := CirrusPlan(m, stages, pareto, 1e9, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range res.Plan.Stages {
		if a.Storage != storage.VMPS {
			t.Errorf("stage %d uses %v, want VM-PS", i, a.Storage)
		}
	}
}

func TestPlansErrorWithoutCandidates(t *testing.T) {
	w := workload.MobileNet()
	m, _, stages := setup(t, w)
	if _, err := LambdaMLPlan(m, stages, nil, 1, 0); err == nil {
		t.Error("empty candidate set should error")
	}
}

func TestSirenTrainingRestartsOften(t *testing.T) {
	w := workload.MobileNet()
	m, _, _ := setup(t, w)
	full := m.Enumerate(cost.DefaultGrid())
	siren := NewSirenTraining(full, 1e9, 0, 30, 3)
	r := trainer.NewRunner(4)
	alloc := siren.Initial()
	if alloc.Storage != storage.S3 {
		t.Fatalf("Siren initial storage = %v, want S3", alloc.Storage)
	}
	res, err := r.Run(trainer.Config{
		Workload:   w,
		Engine:     w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, 5),
		Alloc:      alloc,
		TargetLoss: w.TargetLoss,
		MaxEpochs:  200,
		Controller: siren.Controller(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("Siren run did not converge (loss %g)", res.FinalLoss)
	}
	// Exploration noise at every epoch: expect restarts on a large
	// fraction of epochs.
	if res.Restarts < res.Epochs/4 {
		t.Errorf("Siren restarted %d times over %d epochs; per-epoch adjustment missing", res.Restarts, res.Epochs)
	}
	for _, e := range res.Trace {
		if e.Alloc.Storage != storage.S3 {
			t.Fatal("Siren switched off S3")
		}
	}
}

func TestSirenRespectsBudgetStop(t *testing.T) {
	w := workload.BERT()
	m, _, _ := setup(t, w)
	full := m.Enumerate(cost.DefaultGrid())
	siren := NewSirenTraining(full, 0.5, 0, 30, 3)
	r := trainer.NewRunner(5)
	res, err := r.Run(trainer.Config{
		Workload:   w,
		Engine:     w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, 5),
		Alloc:      siren.Initial(),
		TargetLoss: w.TargetLoss,
		MaxEpochs:  300,
		Controller: siren.Controller(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs >= 300 {
		t.Error("Siren should stop when the budget is exhausted")
	}
}

func TestModifiedCirrusPinnedToVMPS(t *testing.T) {
	w := workload.MobileNet()
	m, pareto, _ := setup(t, w)
	sched := ModifiedCirrus(m, pareto, 1e9, 0, w.TargetLoss, predictor.NewOffline(w), 7)
	alloc, _ := sched.Initial()
	if alloc.Storage != storage.VMPS {
		t.Fatalf("modified Cirrus initial storage = %v, want VM-PS", alloc.Storage)
	}
	r := trainer.NewRunner(6)
	res, err := r.Run(trainer.Config{
		Workload:   w,
		Engine:     w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, 6),
		Alloc:      alloc,
		TargetLoss: w.TargetLoss,
		MaxEpochs:  300,
		Controller: sched.Controller(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("modified Cirrus did not converge")
	}
	for _, e := range res.Trace {
		if e.Alloc.Storage != storage.VMPS {
			t.Fatal("modified Cirrus left VM-PS")
		}
	}
}

func TestStaticPlanPinnedEachService(t *testing.T) {
	w := workload.LRHiggs() // small model: every service is feasible
	m := cost.NewModel(w)
	points := m.Enumerate(cost.DefaultGrid())
	stages := planner.SHAStages(64, 2, 2)
	for _, kind := range storage.Kinds() {
		res, err := StaticPlanPinned(m, stages, points, kind, 1e9, 0)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		for _, a := range res.Plan.Stages {
			if a.Storage != kind {
				t.Fatalf("pinned %v plan used %v", kind, a.Storage)
			}
		}
	}
}

func TestSirenPlanPinnedVMPS(t *testing.T) {
	w := workload.MobileNet()
	m := cost.NewModel(w)
	points := m.Enumerate(cost.DefaultGrid())
	stages := planner.SHAStages(128, 2, 2)
	static, err := StaticPlanPinned(m, stages, points, storage.VMPS, 1e9, 0)
	if err != nil {
		t.Fatal(err)
	}
	budget := static.Cost * 1.4
	res, err := SirenPlanPinned(m, stages, points, storage.VMPS, budget, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > budget*(1+1e-9) {
		t.Errorf("pinned Siren cost %g violates budget %g", res.Cost, budget)
	}
	for _, a := range res.Plan.Stages {
		if a.Storage != storage.VMPS {
			t.Fatal("pinned Siren left VM-PS")
		}
	}
}

func TestModifiedCirrusPinnedS3(t *testing.T) {
	w := workload.MobileNet()
	m := cost.NewModel(w)
	points := m.Enumerate(cost.DefaultGrid())
	sched := ModifiedCirrusPinned(m, points, storage.S3, 1e9, 0, w.TargetLoss, predictor.NewOffline(w), 3)
	alloc, _ := sched.Initial()
	if alloc.Storage != storage.S3 {
		t.Fatalf("pinned-S3 Cirrus initial storage = %v", alloc.Storage)
	}
}
