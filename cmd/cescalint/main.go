// Command cescalint runs the determinism-enforcing static-analysis suite
// over the module.
//
// Usage:
//
//	cescalint [-policy file] [-j n] [./... | dir...]
//
// With no arguments (or "./..."), the whole module is linted. Findings
// print to stdout sorted by file:line:column, one per line; the exit
// status is 1 when there are findings, 0 on a clean tree. Analyzer scopes
// and package sets come from cescalint.policy at the module root (see
// internal/lint and DESIGN.md "Determinism invariants").
//
// -j bounds how many packages are analyzed concurrently (default:
// GOMAXPROCS). Packages run in module-dependency order so cross-package
// facts are always available, and findings are merged deterministically —
// the output is byte-identical at every -j level, including -j 1.
//
// Suppress a finding only with a reasoned pragma on the offending line or
// the line above:
//
//	//cescalint:allow walltime -- stderr-only diagnostic, never on stdout
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	policyPath := flag.String("policy", "", "policy file (default: cescalint.policy at the module root)")
	parallel := flag.Int("j", 0, "max packages analyzed concurrently (0 = GOMAXPROCS); output is identical at any level")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cescalint [-policy file] [-j n] [./... | dir...]\n\nanalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-15s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	wd, err := os.Getwd()
	if err != nil {
		return fail(err)
	}
	root, module, err := lint.FindModule(wd)
	if err != nil {
		return fail(err)
	}
	if *policyPath == "" {
		*policyPath = filepath.Join(root, "cescalint.policy")
	}
	policy, err := lint.LoadPolicy(*policyPath)
	if err != nil {
		return fail(err)
	}

	r := lint.NewRunner(root, module, policy)
	r.Parallel = *parallel
	targets, err := resolveTargets(r, flag.Args())
	if err != nil {
		return fail(err)
	}
	findings, err := r.Run(targets)
	if err != nil {
		return fail(err)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "cescalint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// resolveTargets maps command-line arguments to lint targets: no arguments
// or "./..." means the whole module; anything else is a package directory.
func resolveTargets(r *lint.Runner, args []string) ([]lint.Target, error) {
	if len(args) == 0 || (len(args) == 1 && args[0] == "./...") {
		return r.DiscoverTargets()
	}
	var targets []lint.Target
	for _, arg := range args {
		abs, err := filepath.Abs(arg)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(r.Root, abs)
		if err != nil || rel == ".." || filepath.IsAbs(rel) || (len(rel) > 2 && rel[:3] == "../") {
			return nil, fmt.Errorf("%s: outside module root %s", arg, r.Root)
		}
		path := r.Module
		if rel != "." {
			path = r.Module + "/" + filepath.ToSlash(rel)
		}
		targets = append(targets, lint.Target{Dir: abs, Path: path})
	}
	return targets, nil
}

func fail(err error) int {
	fmt.Fprintf(os.Stderr, "cescalint: %v\n", err)
	return 2
}
