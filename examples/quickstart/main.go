// Quickstart: train logistic regression on a Higgs-like dataset with
// CE-scaling under a budget, and compare against a static allocation.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/cescaling"
)

func main() {
	// 1. Pick a workload and profile it: the Pareto profiler enumerates
	//    (functions, memory, storage) allocations and prunes the cost-JCT
	//    plane to its Pareto boundary.
	w, err := cescaling.ModelByName("LR-Higgs")
	if err != nil {
		log.Fatal(err)
	}
	fw := cescaling.New(w)
	fmt.Printf("workload: %s (dataset %s, %.0f MB, model %.3f MB)\n",
		w.Name, w.Dataset.Name, w.Dataset.SizeMB, w.ParamsMB)
	fmt.Printf("profiled %d allocations, Pareto boundary keeps %d\n\n", len(fw.Full), len(fw.Pareto))

	// 2. Train with the adaptive scheduler under a budget: CE-scaling
	//    starts from an offline estimate, fits the convergence curve
	//    online, and re-allocates when predictions drift.
	const budget = 0.50 // dollars
	out, err := fw.Train(cescaling.Options{Budget: budget, Seed: 42}, cescaling.NewRunner(42))
	if err != nil {
		log.Fatal(err)
	}
	r := out.Result
	fmt.Printf("CE-scaling under $%.2f budget:\n", budget)
	fmt.Printf("  converged:  %v (loss %.4f, target %.2f)\n", r.Converged, r.FinalLoss, w.TargetLoss)
	fmt.Printf("  epochs:     %d (offline estimate was %d)\n", r.Epochs, out.OfflineEstimate)
	fmt.Printf("  JCT:        %.1fs  (compute %.1fs, sync %.1fs, overhead %.1fs)\n",
		r.JCT, r.ComputeTime, r.SyncTime, r.OverheadTime)
	fmt.Printf("  cost:       $%.4f (functions $%.4f, storage $%.4f, invocations $%.4f)\n",
		r.TotalCost, r.FunctionCost, r.StorageCost, r.InvokeCost)
	fmt.Printf("  restarts:   %d (delayed restart enabled)\n\n", r.Restarts)

	// 3. Compare with a static baseline: the cheapest single allocation
	//    fitting the same budget, never adjusted.
	static := staticBaseline(fw, budget, r.Epochs)
	if static != nil {
		fmt.Printf("static baseline (best fixed allocation under the same budget):\n")
		fmt.Printf("  allocation: %v\n", static.Trace[0].Alloc)
		fmt.Printf("  JCT:        %.1fs   cost: $%.4f\n", static.JCT, static.TotalCost)
		fmt.Printf("  CE-scaling JCT reduction: %.0f%%\n",
			100*(static.JCT-r.JCT)/static.JCT)
	}
}

// staticBaseline trains the same workload with the single cheapest Pareto
// allocation whose projected cost fits the budget.
func staticBaseline(fw *cescaling.Framework, budget float64, epochs int) *cescaling.TrainResult {
	w := fw.Workload
	var best *cescaling.Point
	for i := range fw.Pareto {
		p := &fw.Pareto[i]
		if float64(epochs)*p.Cost > budget {
			continue
		}
		if best == nil || p.Time < best.Time {
			best = p
		}
	}
	if best == nil {
		return nil
	}
	runner := cescaling.NewRunner(43)
	res, err := runner.Run(cescaling.TrainJob{
		Workload:   w,
		Engine:     w.NewEngine(cescaling.Hyperparams{LR: w.DefaultLR}, 42),
		Alloc:      best.Alloc,
		TargetLoss: w.TargetLoss,
		MaxEpochs:  500,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}
