package sha

import (
	"math"
	"testing"

	"repro/internal/cost"
	"repro/internal/planner"
	"repro/internal/trainer"
	"repro/internal/workload"
)

func TestBracketsStructure(t *testing.T) {
	// R=27, eta=3: s_max=3; brackets s=3..0.
	brs := Brackets(27, 3)
	if len(brs) != 4 {
		t.Fatalf("bracket count = %d, want 4", len(brs))
	}
	// Bracket s=3: 27 trials at 1 epoch, then 9@3, 3@9, 1@27.
	b3 := brs[0]
	if b3.S != 3 {
		t.Fatalf("first bracket s = %d, want 3", b3.S)
	}
	wantTrials := []int{27, 9, 3, 1}
	wantEpochs := []int{1, 3, 9, 27}
	if len(b3.Stages) != 4 {
		t.Fatalf("bracket 3 has %d stages, want 4", len(b3.Stages))
	}
	for i, st := range b3.Stages {
		if st.Trials != wantTrials[i] || st.Epochs != wantEpochs[i] {
			t.Errorf("bracket 3 stage %d = %+v, want (%d, %d)", i, st, wantTrials[i], wantEpochs[i])
		}
	}
	// Bracket s=0: everything trains the full budget, no halving.
	b0 := brs[3]
	if len(b0.Stages) != 1 || b0.Stages[0].Epochs != 27 {
		t.Errorf("bracket 0 = %+v, want one 27-epoch stage", b0.Stages)
	}
	// Total per-bracket work (trial-epochs) is roughly balanced by design.
	work := func(b Bracket) int {
		sum := 0
		for _, st := range b.Stages {
			sum += st.Trials * st.Epochs
		}
		return sum
	}
	w3, w0 := work(brs[0]), work(brs[3])
	if ratio := float64(w3) / float64(w0); ratio < 0.5 || ratio > 3 {
		t.Errorf("bracket work imbalance: s=3 %d vs s=0 %d", w3, w0)
	}
}

func TestRunHyperbandEndToEnd(t *testing.T) {
	w := workload.MobileNet()
	m := cost.NewModel(w)
	pareto := m.ParetoSet(cost.DefaultGrid())
	runner := trainer.NewRunner(13)
	res, err := RunHyperband(HyperbandConfig{
		Workload:  w,
		MaxEpochs: 9,
		Eta:       3,
		Runner:    runner,
		Seed:      13,
		PlanBracket: func(stages []planner.Stage) (planner.Plan, error) {
			pl, err := planner.New(m, stages, pareto)
			if err != nil {
				return planner.Plan{}, err
			}
			return pl.OptimalStatic(0, 1e15).Plan, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Brackets) != 3 { // s_max = 2 for R=9, eta=3
		t.Fatalf("bracket count = %d, want 3", len(res.Brackets))
	}
	if res.Best == nil || math.IsInf(res.Best.Loss, 1) {
		t.Fatal("no overall winner")
	}
	var sumJCT, sumCost float64
	for _, br := range res.Brackets {
		sumJCT += br.Result.JCT
		sumCost += br.Result.TotalCost
		if br.BestLoss < res.Best.Loss {
			t.Error("overall best worse than a bracket best")
		}
	}
	if math.Abs(sumJCT-res.JCT) > 1e-9 || math.Abs(sumCost-res.TotalCost) > 1e-9 {
		t.Error("totals do not aggregate the brackets")
	}
}

func TestRunHyperbandValidation(t *testing.T) {
	w := workload.MobileNet()
	if _, err := RunHyperband(HyperbandConfig{Workload: w}); err == nil {
		t.Error("missing runner/planner should error")
	}
	if _, err := RunHyperband(HyperbandConfig{
		Workload: w, Runner: trainer.NewRunner(1),
		PlanBracket: func([]planner.Stage) (planner.Plan, error) { return planner.Plan{}, nil },
		MaxEpochs:   1,
	}); err == nil {
		t.Error("MaxEpochs below eta should error")
	}
}

func TestExplicitStagesValidation(t *testing.T) {
	w := workload.MobileNet()
	m := cost.NewModel(w)
	pareto := m.ParetoSet(cost.DefaultGrid())
	cfg := Config{
		Workload: w,
		Trials:   8,
		Stages:   []planner.Stage{{Trials: 9, Epochs: 1}}, // mismatch
		Plan:     planner.Uniform(pareto[0].Alloc, 1),
		Runner:   trainer.NewRunner(1),
	}
	if _, err := Run(cfg); err == nil {
		t.Error("stage/trial mismatch should error")
	}
}

func TestHyperbandGrowingEpochBudgets(t *testing.T) {
	// Within a bracket, survivors train longer per stage — verify the
	// winner of an aggressive bracket accumulated the full epoch schedule.
	w := workload.ResNet50()
	m := cost.NewModel(w)
	pareto := m.ParetoSet(cost.DefaultGrid())
	br := Brackets(9, 3)[0] // 9 trials: 1, then 3@3, 1@9
	plan := planner.Uniform(pareto[len(pareto)/2].Alloc, len(br.Stages))
	res, err := Run(Config{
		Workload: w, Trials: br.Stages[0].Trials, Eta: 3,
		Stages: br.Stages, Plan: plan,
		Runner: trainer.NewRunner(5), Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantEpochs := 0
	for _, st := range br.Stages {
		wantEpochs += st.Epochs
	}
	if res.BestTrial.Epochs != wantEpochs {
		t.Errorf("winner trained %d epochs, want the full schedule %d", res.BestTrial.Epochs, wantEpochs)
	}
}
