// Package pricing is the price book for the simulated cloud. All prices are
// in US dollars and follow the public AWS us-east-1 list prices the paper's
// evaluation period used (2022/2023). Every component that bills — the
// serverless platform and the four external storage services — reads its
// rates from a PriceBook so that experiments can vary pricing assumptions.
package pricing

// PriceBook collects every rate the simulator bills against.
type PriceBook struct {
	// Lambda-style function pricing.
	FunctionGBSecond  float64 // $ per GB-second of allocated memory
	FunctionInvoke    float64 // $ per invocation
	FunctionMinBillMS float64 // minimum billed duration per invocation, ms

	// S3-style object storage: charged per request.
	S3PutRequest float64 // $ per PUT/POST
	S3GetRequest float64 // $ per GET

	// DynamoDB-style KV storage: charged per request unit. A write unit
	// covers WriteUnitKB kilobytes; a read unit covers ReadUnitKB.
	DynamoWriteUnit float64 // $ per write request unit
	DynamoReadUnit  float64 // $ per read request unit
	DynamoWriteKB   float64 // KB covered by one write unit
	DynamoReadKB    float64 // KB covered by one read unit

	// ElastiCache-style in-memory store: charged per node-hour.
	ElastiCacheNodeHour float64

	// EC2-style VM used as a parameter server: charged per hour.
	VMHour float64

	// Data transfer within the region is free on AWS; kept as a knob.
	TransferPerGB float64
}

// Default returns the AWS-like price book used throughout the evaluation.
func Default() PriceBook {
	return PriceBook{
		FunctionGBSecond:  0.0000166667, // Lambda x86 $/GB-s
		FunctionInvoke:    0.20 / 1e6,   // $0.20 per 1M requests
		FunctionMinBillMS: 1,            // 1 ms billing granularity

		S3PutRequest: 0.005 / 1000,  // $0.005 per 1k PUT
		S3GetRequest: 0.0004 / 1000, // $0.0004 per 1k GET

		DynamoWriteUnit: 1.25 / 1e6, // on-demand WRU
		DynamoReadUnit:  0.25 / 1e6, // on-demand RRU
		DynamoWriteKB:   1,
		DynamoReadKB:    4,

		ElastiCacheNodeHour: 0.34,  // cache.r6g.large-ish
		VMHour:              0.192, // m5.xlarge-ish

		TransferPerGB: 0,
	}
}

// FunctionCost returns the charge for one function invocation that ran for
// seconds wall-clock with memMB of allocated memory.
func (p PriceBook) FunctionCost(seconds float64, memMB float64) float64 {
	billed := seconds
	min := p.FunctionMinBillMS / 1000
	if billed < min {
		billed = min
	}
	return p.FunctionInvoke + billed*(memMB/1024)*p.FunctionGBSecond
}

// ComputeOnlyCost is FunctionCost without the invocation fee, used when the
// invocation fee is accounted once per function rather than per epoch.
func (p PriceBook) ComputeOnlyCost(seconds float64, memMB float64) float64 {
	billed := seconds
	min := p.FunctionMinBillMS / 1000
	if billed < min {
		billed = min
	}
	return billed * (memMB / 1024) * p.FunctionGBSecond
}

// DynamoWriteCost returns the charge for writing an object of sizeKB.
func (p PriceBook) DynamoWriteCost(sizeKB float64) float64 {
	units := ceilDiv(sizeKB, p.DynamoWriteKB)
	return units * p.DynamoWriteUnit
}

// DynamoReadCost returns the charge for reading an object of sizeKB.
func (p PriceBook) DynamoReadCost(sizeKB float64) float64 {
	units := ceilDiv(sizeKB, p.DynamoReadKB)
	return units * p.DynamoReadUnit
}

// HourlyCost returns the charge for running an hourly-billed resource for
// seconds of wall-clock time, with per-minute rounding (the paper models
// "(t/60 + 1)"-style rounding for runtime-charged storage; we bill whole
// minutes, minimum one).
func HourlyCost(ratePerHour, seconds float64) float64 {
	minutes := ceilDiv(seconds, 60)
	if minutes < 1 {
		minutes = 1
	}
	return ratePerHour / 60 * minutes
}

func ceilDiv(x, unit float64) float64 {
	if unit <= 0 {
		return 0
	}
	n := x / unit
	i := float64(int64(n))
	if n > i {
		i++
	}
	if i < 1 {
		i = 1
	}
	return i
}
