package obs

import "sync"

// Event is one recorded trace event. Span events have Dur > 0 (or a span
// explicitly closed with zero duration); instants have Instant set.
// Timestamps and durations are in seconds on whatever timeline the emitting
// component lives on (DES sim seconds for the deterministic packages,
// seconds since backend start for the live sink).
type Event struct {
	Time    float64 // start time, seconds
	Dur     float64 // duration, seconds (0 for instants)
	Track   string  // Perfetto thread/track name, e.g. "job[0]" or "faas"
	Cat     string  // category, e.g. "trainer", "scheduler", "faas"
	Name    string  // event name, e.g. "epoch", "decision"
	Args    []Arg   // key=value details
	Instant bool
}

// Tracer records events in emission order. All methods are safe on a nil
// receiver (no-op) and safe for concurrent use on a non-nil one — the live
// backend's sink is fed from callback goroutines. Deterministic callers are
// single-threaded per tracer, so the mutex never contends there.
type Tracer struct {
	mu     sync.Mutex
	events []Event
	clock  func() float64
}

// NewTracer returns a tracer. clock, if non-nil, stamps events recorded via
// the clock-relative convenience methods; explicit-timestamp methods ignore
// it.
func NewTracer(clock func() float64) *Tracer {
	return &Tracer{clock: clock}
}

// Enabled reports whether the tracer records events.
func (t *Tracer) Enabled() bool { return t != nil }

// SpanAt records a completed span [start, start+dur) on track.
func (t *Tracer) SpanAt(start, dur float64, track, cat, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, Event{Time: start, Dur: dur, Track: track, Cat: cat, Name: name, Args: args})
	t.mu.Unlock()
}

// InstantAt records a point event at time at on track.
func (t *Tracer) InstantAt(at float64, track, cat, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, Event{Time: at, Track: track, Cat: cat, Name: name, Args: args, Instant: true})
	t.mu.Unlock()
}

// Instant records a point event stamped from the tracer's clock (zero if
// the tracer was built without one).
func (t *Tracer) Instant(track, cat, name string, args ...Arg) {
	if t == nil {
		return
	}
	var at float64
	if t.clock != nil {
		at = t.clock()
	}
	t.InstantAt(at, track, cat, name, args...)
}

// Span records a span whose end is stamped from the tracer's clock and whose
// start is end-dur.
func (t *Tracer) Span(dur float64, track, cat, name string, args ...Arg) {
	if t == nil {
		return
	}
	var end float64
	if t.clock != nil {
		end = t.clock()
	}
	t.SpanAt(end-dur, dur, track, cat, name, args...)
}

// Events returns a copy of the recorded events in emission order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}
