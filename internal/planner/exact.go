package planner

import (
	"math"

	"repro/internal/cost"
)

// ExactMinJCT solves the stage-partitioning problem optimally (up to budget
// discretization) by dynamic programming over the multiple-choice knapsack:
// minimize total JCT subject to total cost <= budget, with one allocation
// chosen per stage from the Pareto set.
//
// The DP state tracks (stage, budget bucket, previous stage's memory size)
// so the warm/cold start transition the JCT model charges between stages of
// different memory sizes is captured exactly. Runtime is
// O(d * buckets * |mems| * |P|); with the default 2000 buckets and the
// evaluation's frontiers it completes in milliseconds.
//
// Stage costs are rounded *up* to bucket granularity, so any returned plan
// is genuinely within budget. ok=false when no assignment fits.
//
// This solver exists to measure the greedy heuristic's optimality gap (the
// paper argues the greedy is good enough; the gap experiment quantifies it
// on this substrate). It is exponentially cheaper than brute force but
// still far too slow to run inside the scheduling loop at production rates,
// which is the paper's point.
func (pl *Planner) ExactMinJCT(budget float64, buckets int) (Result, bool) {
	if buckets <= 0 {
		buckets = 2000
	}
	d := len(pl.Stages)
	unit := budget / float64(buckets)
	if unit <= 0 {
		return Result{}, false
	}

	// Distinct memory sizes appearing in P, for the transition dimension.
	memIdx := map[int]int{}
	var mems []int
	for _, p := range pl.P {
		if _, ok := memIdx[p.Alloc.MemMB]; !ok {
			memIdx[p.Alloc.MemMB] = len(mems)
			mems = append(mems, p.Alloc.MemMB)
		}
	}
	nm := len(mems)

	// Pre-compute per-stage, per-choice cost buckets and times.
	type choice struct {
		alloc    cost.Allocation
		costB    int     // cost in buckets, rounded up
		timeCold float64 // stage time when paying a cold start
		timeWarm float64
		mem      int // index into mems
	}
	choices := make([][]choice, d)
	for i := 0; i < d; i++ {
		for _, p := range pl.P {
			c := pl.StageCost(i, p.Alloc)
			b := int(math.Ceil(c/unit - 1e-12))
			if b > buckets {
				continue // can never fit
			}
			if b < 0 {
				b = 0
			}
			w := pl.waves(i, p.Alloc)
			choices[i] = append(choices[i], choice{
				alloc:    p.Alloc,
				costB:    b,
				timeCold: pl.stageTimeWavesCold(i, p.Alloc, w, true),
				timeWarm: pl.stageTimeWavesCold(i, p.Alloc, w, false),
				mem:      memIdx[p.Alloc.MemMB],
			})
		}
		if len(choices[i]) == 0 {
			return Result{}, false
		}
	}

	// dp[b][m] = min JCT using exactly the stages so far, total cost bucket
	// b, previous stage memory index m. parent pointers reconstruct plans.
	const inf = math.MaxFloat64
	size := (buckets + 1) * nm
	dp := make([]float64, size)
	next := make([]float64, size)
	type parent struct{ b, m, choice int32 }
	parents := make([][]parent, d)

	idx := func(b, m int) int { return b*nm + m }

	// Stage 0: always a cold start; "previous memory" becomes its own.
	for i := range dp {
		dp[i] = inf
	}
	parents[0] = make([]parent, size)
	for ci, ch := range choices[0] {
		at := idx(ch.costB, ch.mem)
		if ch.timeCold < dp[at] {
			dp[at] = ch.timeCold
			parents[0][at] = parent{b: -1, m: -1, choice: int32(ci)}
		}
	}

	for i := 1; i < d; i++ {
		for j := range next {
			next[j] = inf
		}
		parents[i] = make([]parent, size)
		for b := 0; b <= buckets; b++ {
			for m := 0; m < nm; m++ {
				cur := dp[idx(b, m)]
				if cur == inf {
					continue
				}
				for ci, ch := range choices[i] {
					nb := b + ch.costB
					if nb > buckets {
						continue
					}
					t := ch.timeWarm
					if ch.mem != m {
						t = ch.timeCold
					}
					at := idx(nb, ch.mem)
					if v := cur + t; v < next[at] {
						next[at] = v
						parents[i][at] = parent{b: int32(b), m: int32(m), choice: int32(ci)}
					}
				}
			}
		}
		dp, next = next, dp
	}

	// Find the best terminal state.
	bestVal := inf
	bestB, bestM := -1, -1
	for b := 0; b <= buckets; b++ {
		for m := 0; m < nm; m++ {
			if v := dp[idx(b, m)]; v < bestVal {
				bestVal, bestB, bestM = v, b, m
			}
		}
	}
	if bestB < 0 {
		return Result{}, false
	}

	// Reconstruct.
	plan := Plan{Stages: make([]cost.Allocation, d)}
	b, m := bestB, bestM
	for i := d - 1; i >= 0; i-- {
		p := parents[i][idx(b, m)]
		plan.Stages[i] = choices[i][p.choice].alloc
		if i > 0 {
			b, m = int(p.b), int(p.m)
		}
	}
	jct, c := pl.JCT(plan), pl.Cost(plan)
	return Result{Plan: plan, JCT: jct, Cost: c, Feasible: c <= budget*(1+1e-9)}, true
}
