package obs

import (
	"sort"
	"testing"
)

func TestScopeNameZeroPadsToCountWidth(t *testing.T) {
	cases := []struct {
		idx, count int
		want       string
	}{
		{0, 1, "macro-day/t0"},
		{7, 10, "macro-day/t7"},
		{7, 11, "macro-day/t07"},
		{7, 64, "macro-day/t07"},
		{63, 64, "macro-day/t63"},
		{5, 100, "macro-day/t05"},
		{5, 101, "macro-day/t005"},
		{99, 100, "macro-day/t99"},
	}
	for _, c := range cases {
		if got := ScopeName("macro-day", "t", c.idx, c.count); got != c.want {
			t.Errorf("ScopeName(%d, %d) = %q, want %q", c.idx, c.count, got, c.want)
		}
	}
}

func TestScopeNameSortsNumerically(t *testing.T) {
	const count = 12
	names := make([]string, count)
	for i := range names {
		names[i] = ScopeName("m", "t", i, count)
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	for i := range names {
		if names[i] != sorted[i] {
			t.Fatalf("lexicographic order diverges from numeric at %d: %v vs %v", i, names, sorted)
		}
	}
}
