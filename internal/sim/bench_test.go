package sim

import "testing"

// BenchmarkScheduleRun is the kernel's hottest pattern: a self-scheduling
// event chain (every fired event schedules its successor), which is what a
// training job's epoch loop compiles down to. One op = one scheduled +
// fired event; -benchmem makes the per-event allocation count visible.
func BenchmarkScheduleRun(b *testing.B) {
	b.ReportAllocs()
	s := New(1)
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			s.ScheduleAfter(1, step)
		}
	}
	s.ScheduleAfter(1, step)
	s.Run()
	if int(s.EventsFired()) != b.N {
		b.Fatalf("fired %d, want %d", s.EventsFired(), b.N)
	}
}

// BenchmarkScheduleRunFanout keeps 64 events pending at all times, so each
// op pays real sift work in the priority queue, not just a root pop.
func BenchmarkScheduleRunFanout(b *testing.B) {
	b.ReportAllocs()
	s := New(1)
	const width = 64
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			s.ScheduleAfter(1+float64(n%7), step)
		}
	}
	for i := 0; i < width && i < b.N; i++ {
		n++
		s.ScheduleAfter(float64(i%5), step)
	}
	s.Run()
}

// BenchmarkScheduleCancel measures the schedule+cancel round trip: half the
// scheduled events are canceled before they fire (the warm-sandbox expiry
// pattern in internal/faas).
func BenchmarkScheduleCancel(b *testing.B) {
	b.ReportAllocs()
	s := New(1)
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			ev := s.ScheduleAfter(2, func() {})
			ev.Cancel()
			s.ScheduleAfter(1, step)
		}
	}
	s.ScheduleAfter(1, step)
	s.Run()
}

// BenchmarkScheduleBatch measures bulk burst injection: each op is one
// event of a 256-event batch landing on a queue that already holds 256
// pending events, then firing. Compare BenchmarkScheduleBurstIndividual:
// the same burst pushed one SchedulePriority at a time.
func BenchmarkScheduleBatch(b *testing.B) {
	benchBurst(b, true)
}

// BenchmarkScheduleBurstIndividual is the per-event baseline for
// BenchmarkScheduleBatch.
func BenchmarkScheduleBurstIndividual(b *testing.B) {
	benchBurst(b, false)
}

func benchBurst(b *testing.B, batched bool) {
	b.ReportAllocs()
	const burst = 256
	s := New(1)
	sh := s.Main()
	nop := func() {}
	batch := make([]BatchEvent, burst)
	fired := 0
	for fired < b.N {
		base := sh.Now() + 1
		// A standing backlog so the burst pays realistic sift depth.
		for i := 0; i < burst; i++ {
			sh.Schedule(base+Time(2+float64(i)), nop)
		}
		if batched {
			for i := 0; i < burst; i++ {
				batch[i] = BatchEvent{At: base + Time(float64(i)/burst), Fn: nop}
			}
			sh.ScheduleBatch(batch)
		} else {
			for i := 0; i < burst; i++ {
				sh.SchedulePriority(base+Time(float64(i)/burst), 0, nop)
			}
		}
		fired += 2 * burst
		s.Run()
	}
}

// BenchmarkShardedMergeRun runs 8 independent self-scheduling chains, one
// per shard, through the sequential global merge — the cost of sharding
// when no parallelism is available. One op = one fired event; comparing
// against BenchmarkScheduleRun isolates the peekMin merge overhead.
func BenchmarkShardedMergeRun(b *testing.B) {
	b.ReportAllocs()
	s := New(1)
	const shards = 8
	s.EnsureShards(shards)
	n := 0
	for i := 0; i < shards && i < b.N; i++ {
		sh := s.Shard(i)
		var step func()
		step = func() {
			n++
			if n+shards <= b.N {
				sh.ScheduleAfter(1, step)
			}
		}
		n++
		sh.ScheduleAfter(1+float64(i)/16, step)
	}
	s.Run()
}

// BenchmarkShardedPost measures the cross-shard mailbox round trip: every
// op posts an event to the neighbouring shard one lookahead ahead, so the
// kernel pays outbox buffering, a window barrier and the flush on each hop.
func BenchmarkShardedPost(b *testing.B) {
	b.ReportAllocs()
	s := New(1)
	const shards = 2
	s.EnsureShards(shards)
	s.SetLookahead(1)
	n := 0
	var hop0, hop1 func()
	hop0 = func() { // runs on shard 0, posts the next hop to shard 1
		n++
		if n < b.N {
			sh := s.Shard(0)
			sh.Post(s.Shard(1), sh.Now()+1, 0, hop1)
		}
	}
	hop1 = func() { // runs on shard 1, posts back to shard 0
		n++
		if n < b.N {
			sh := s.Shard(1)
			sh.Post(s.Shard(0), sh.Now()+1, 0, hop0)
		}
	}
	s.Shard(0).ScheduleAfter(1, hop0)
	s.Run()
}
