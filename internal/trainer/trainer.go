// Package trainer is the ground-truth executor of distributed training jobs
// on a serverless substrate. It executes a job epoch by epoch against the
// platform interfaces: functions cold-start, load their data partitions,
// compute gradients for k BSP iterations, synchronize through the selected
// storage service, and are billed by the platform and storage meters. On the
// default simulated backend everything happens inside the discrete-event
// simulation; on the live backend each epoch additionally drives one real
// synchronization barrier across real concurrent workers.
//
// Unlike the analytical models in internal/cost, the executor injects the
// effects the paper's validation section attributes its estimation error to
// (Fig. 19-20): per-function straggler noise under BSP (the epoch waits for
// the slowest of n functions), network instability that grows with the
// function count, and cold-start/restart overheads. A controller callback
// can adjust the allocation between epochs, with either a full (immediate)
// restart or the paper's delayed restart (Fig. 8) that overlaps new-function
// startup with the running epoch.
package trainer

import (
	"fmt"
	"math"

	"repro/internal/cost"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/platform/simbackend"
	"repro/internal/pricing"
	"repro/internal/workload"
)

// Noise parameterizes the divergence between ground truth and the analytic
// models.
type Noise struct {
	// StragglerSigma is the per-function log-normal sigma on compute time;
	// the epoch takes the max across n functions (BSP barrier).
	StragglerSigma float64
	// SyncBase and SyncPerN grow synchronization noise with the function
	// count (network instability; worst near n=40 in the paper).
	SyncBase, SyncPerN float64
	// LoadJitter is the multiplicative jitter on dataset loading.
	LoadJitter float64
	// FailureRate is the per-function per-epoch crash probability
	// (timeouts, OOMs, platform preemptions). A single crashed worker
	// aborts the BSP epoch: the group loses a fraction of the epoch, the
	// crashed function restarts, and the epoch retries from the last
	// checkpoint.
	FailureRate float64
}

// failureAttemptCap bounds the synthetic failure model's per-epoch retry
// loop. Hitting it means the model stopped simulating crashes for that epoch
// and proceeded as if it had succeeded; Result.FailureCapped counts those
// truncations.
const failureAttemptCap = 50

// DefaultNoise returns the calibration used in the evaluation.
func DefaultNoise() Noise {
	return Noise{StragglerSigma: 0.05, SyncBase: 0.01, SyncPerN: 0.0012, LoadJitter: 0.08}
}

// NoNoise returns a noiseless ground truth (useful in unit tests).
func NoNoise() Noise { return Noise{} }

// Decision is what a controller may ask for at an epoch boundary.
type Decision struct {
	// NewAlloc, when non-nil, switches the job to this allocation.
	NewAlloc *cost.Allocation
	// Delayed selects the delayed-restart path (overlap startup with the
	// next epoch) instead of an immediate stop-and-restart.
	Delayed bool
	// PlanningSeconds is the controller's own decision latency, added to
	// the JCT as scheduling overhead (the paper includes it, §IV-G).
	PlanningSeconds float64
	// Stop aborts the job (budget exhausted and so on).
	Stop bool
}

// Controller observes each epoch and may adjust resources. epoch is the
// 1-based index of the epoch that just finished.
type Controller func(epoch int, loss float64, elapsed, spent float64) Decision

// EpochReport records one executed epoch.
type EpochReport struct {
	Epoch       int
	Loss        float64
	Alloc       cost.Allocation
	Time        float64 // wall time of this epoch (incl. overheads in it)
	ComputeTime float64
	SyncTime    float64
	Cost        float64 // function + storage cost attributed to this epoch
	StorageCost float64
}

// Result summarizes a finished job.
type Result struct {
	Converged bool
	Epochs    int
	JCT       float64 // wall time from submission to convergence/stop
	TotalCost float64

	ComputeTime  float64 // sum of epoch compute components
	SyncTime     float64 // sum of epoch synchronization components
	OverheadTime float64 // startup + load + restart + planning time
	PlanningTime float64 // portion of overhead spent deciding
	StartupTime  float64 // the initial cold start + load (not adjustment overhead)

	FunctionCost float64
	StorageCost  float64
	InvokeCost   float64

	Restarts  int
	FinalLoss float64
	// Failures counts crashed epoch attempts; FailureTime is the wall time
	// they wasted (part of OverheadTime). FailureCapped counts epochs whose
	// failure retry loop hit the attempt cap and proceeded as if the epoch
	// had succeeded — a truncation of the synthetic failure model that
	// would otherwise be silent.
	Failures      int
	FailureTime   float64
	FailureCapped int
	// Degraded marks that a storage brownout (or a corrupt checkpoint)
	// exhausted the retry policy and the job fell back to checkpoint-less
	// mode for the rest of its run — an explicit flag, not a panic.
	// StorageRetries counts the brownout attempts that failed and backed
	// off before succeeding or degrading.
	Degraded       bool
	StorageRetries int
	Trace          []EpochReport
}

// Config describes one training job.
type Config struct {
	Workload *workload.Model
	Engine   workload.Engine
	Alloc    cost.Allocation

	// TargetLoss stops the job when reached; MaxEpochs is a hard cap.
	TargetLoss float64
	MaxEpochs  int

	// DisableCheckpoint turns off the per-epoch model checkpointing through
	// external storage: a crashed epoch then loses ALL progress (the job
	// restarts from the initial model) instead of retrying from the last
	// epoch boundary. Exists to quantify the checkpoint's value under
	// failure injection.
	DisableCheckpoint bool

	// Async switches from Bulk Synchronous Parallel to asynchronous
	// parameter-server training (Siren's native mode): no barrier, so an
	// epoch's wall time follows the average worker rather than the slowest
	// and each worker synchronizes with two overlapped transfers per
	// iteration instead of the serialized (3n-2)/(2n-2) pattern — but
	// stale gradients slow statistical progress, so more wall-clock epochs
	// are needed per engine epoch (the classic ASP trade).
	Async bool

	// Faults attaches a deterministic fault schedule (internal/fault). When
	// the schedule is active it REPLACES the synthetic dice-roll failure
	// model (Noise.FailureRate is ignored): sandbox kills, straggler
	// slowdowns, storage brownouts and cold-start spikes happen at explicit
	// scheduled times, mutate the real platform, and reach the controller
	// only through the epoch times it ordinarily observes. An attached but
	// empty schedule changes nothing — results stay bit-identical to no
	// schedule at all.
	Faults *fault.Schedule

	// Retry bounds the trainer's storage retries during brownout windows
	// (the zero value means fault.DefaultRetryPolicy). Exhausting it drops
	// the job to checkpoint-less mode with Result.Degraded set.
	Retry fault.RetryPolicy

	Controller Controller // optional
}

// Runner executes jobs on one substrate behind the platform interfaces.
type Runner struct {
	Backend platform.Backend
	Prices  pricing.PriceBook
	Noise   Noise

	// delayPaid tracks manually-scaled services whose provisioning delay has
	// already been paid on this substrate: an ElastiCache cluster or
	// parameter-server VM starts up once per workflow, not once per group or
	// per job (re-using it later in the runner's lifetime is free in time).
	delayPaid map[platform.StorageKind]bool
	// leases counts jobs currently holding each manually-scaled service;
	// accruedSec accumulates the provisioned seconds of closed leases. A
	// service's hourly meter runs only while leases[kind] > 0 — releasing
	// the lease at job end is what stops the bill from accruing.
	leases     map[platform.StorageKind]int
	accruedSec map[platform.StorageKind]float64

	// obs records the executor's trace (startup/epoch/restart spans, failure
	// instants, delayed-restart overlap windows) on the job's own timeline.
	// Nil disables recording.
	obs *obs.Observer
}

// NewRunner returns a runner on a fresh simulated substrate with default
// platform, prices and noise, seeded deterministically.
func NewRunner(seed uint64) *Runner {
	return NewRunnerOn(simbackend.New(seed))
}

// NewRunnerOn returns a runner executing on the given substrate, with the
// substrate's price book and default noise.
func NewRunnerOn(b platform.Backend) *Runner {
	return &Runner{
		Backend:    b,
		Prices:     b.Prices(),
		Noise:      DefaultNoise(),
		delayPaid:  make(map[platform.StorageKind]bool),
		leases:     make(map[platform.StorageKind]int),
		accruedSec: make(map[platform.StorageKind]float64),
	}
}

// SetObserver attaches an observability sink to the runner and its backend:
// trainer events land on the job timeline, substrate events (cold starts,
// warm-pool churn) on the substrate clock. Nil detaches.
func (r *Runner) SetObserver(o *obs.Observer) {
	r.obs = o
	platform.Attach(r.Backend, o)
}

// Observer returns the runner's observability sink (nil when detached).
func (r *Runner) Observer() *obs.Observer { return r.obs }

// Compute returns the substrate's function-execution interface.
func (r *Runner) Compute() platform.Compute { return r.Backend.Compute() }

// Params returns the substrate's model-state interface.
func (r *Runner) Params() platform.ParamStore { return r.Backend.Params() }

// Service returns the substrate's storage metering model for kind.
func (r *Runner) Service(k platform.StorageKind) platform.StorageService {
	return r.Backend.Params().Service(k)
}

// acquireService opens (or re-enters) the job's lease on a manually-scaled
// storage service and returns the provisioning delay to pay for using it now
// (zero if the service auto-scales or its startup was already paid earlier
// in this runner's lifetime).
func (r *Runner) acquireService(st *state, kind platform.StorageKind) float64 {
	svc := r.Service(kind)
	delay := svc.ProvisionDelay()
	if delay > 0 {
		if _, held := st.held[kind]; !held {
			if st.held == nil {
				st.held = make(map[platform.StorageKind]float64)
			}
			st.held[kind] = st.clock
			r.leases[kind]++
		}
	}
	if r.delayPaid[kind] {
		return 0
	}
	r.delayPaid[kind] = true
	return delay
}

// releaseServices closes the job's service leases, folding each lease's
// provisioned wall time into the runner's accrual meter. After the last
// lease on a kind closes, its hourly meter stops.
func (r *Runner) releaseServices(st *state) {
	for kind, since := range st.held {
		r.accruedSec[kind] += st.clock - since
		if r.leases[kind]--; r.leases[kind] <= 0 {
			delete(r.leases, kind)
		}
	}
	st.held = nil
}

// ServiceLeases reports how many running jobs currently hold the
// manually-scaled service kind provisioned.
func (r *Runner) ServiceLeases(kind platform.StorageKind) int { return r.leases[kind] }

// ProvisionedSeconds reports the provisioned wall time accrued against kind
// by finished jobs. It stops growing once every lease is released.
func (r *Runner) ProvisionedSeconds(kind platform.StorageKind) float64 {
	return r.accruedSec[kind]
}

// ProvisionedCost prices the accrued provisioned time of kind under its
// runtime-charged model (zero for request-charged services).
func (r *Runner) ProvisionedCost(kind platform.StorageKind) float64 {
	return r.Service(kind).RuntimeCost(r.accruedSec[kind])
}

// state tracks one running job.
type state struct {
	cfg   Config
	alloc cost.Allocation
	res   *Result

	// pendingSwitch holds a delayed-restart target: the new group starts
	// during the current epoch and takes over at its end.
	pendingSwitch *cost.Allocation
	// pendingReady is the virtual time at which the delayed group is ready.
	pendingReady float64
	// pendingStart is the job clock when the delayed group began starting
	// up (the left edge of the Fig. 8 overlap window in the trace).
	pendingStart float64
	clock        float64 // job-relative elapsed time
	// held maps each manually-scaled service this job has provisioned to
	// the job clock at acquisition (its lease on the hourly meter).
	held map[platform.StorageKind]float64
	// asyncProgress accumulates fractional statistical progress under ASP;
	// the loss engine advances one epoch each time it crosses 1.
	asyncProgress float64
	// initialState snapshots the engine before training so a failure
	// without checkpointing can lose everything (DisableCheckpoint).
	initialState []float64

	// faultCursor walks Config.Faults' instantaneous events (kills and
	// warm reclaims) as the job clock passes them; gate drives the
	// deterministic brownout error injection; ckptOff latches the degraded
	// checkpoint-less mode once the retry policy is exhausted.
	faultCursor int
	gate        fault.Gate
	ckptOff     bool
}

// Run executes the job to convergence, MaxEpochs, or a Stop decision.
func (r *Runner) Run(cfg Config) (*Result, error) {
	job, err := r.StartJob(cfg)
	if err != nil {
		return nil, err
	}
	for !job.Done() {
		if err := job.Step(); err != nil {
			return nil, err
		}
		// Advance the shared clock so time-based substrate events
		// (warm-sandbox expiry) fire as the job progresses. The cluster
		// scheduler drives this itself when jobs interleave.
		r.Backend.Clock().Advance(job.Elapsed() - job.advanced)
		job.advanced = job.Elapsed()
	}
	return job.Finish(), nil
}

// Job is a training job in progress, steppable one epoch at a time (the
// multi-tenant cluster scheduler interleaves jobs this way).
type Job struct {
	r        *Runner
	st       *state
	epoch    int
	done     bool
	finished bool
	// advanced tracks how much of Elapsed has been mirrored onto the
	// shared clock by the driver.
	advanced float64
}

// StartJob validates cfg, admits the function group (startup + load on the
// job's clock) and returns the steppable job.
func (r *Runner) StartJob(cfg Config) (*Job, error) {
	if cfg.Workload == nil || cfg.Engine == nil {
		return nil, fmt.Errorf("trainer: nil workload or engine")
	}
	if cfg.MaxEpochs <= 0 {
		cfg.MaxEpochs = 1000
	}
	st := &state{cfg: cfg, alloc: cfg.Alloc, res: &Result{}, faultCursor: -1}
	if snap, ok := cfg.Engine.(workload.Snapshotter); ok {
		st.initialState = snap.Snapshot()
	}
	if err := r.startGroup(st, st.alloc, true); err != nil {
		return nil, err
	}
	return &Job{r: r, st: st}, nil
}

// Done reports whether the job has converged, stopped or hit its cap.
func (j *Job) Done() bool { return j.done }

// Elapsed returns the job's wall clock so far (its own timeline, not the
// shared substrate clock).
func (j *Job) Elapsed() float64 { return j.st.clock }

// Alloc returns the job's current allocation.
func (j *Job) Alloc() cost.Allocation { return j.st.alloc }

// Step executes one epoch (plus any controller decision). Calling Step on a
// finished job is a no-op.
func (j *Job) Step() error {
	if j.done {
		return nil
	}
	j.epoch++
	st, cfg := j.st, j.st.cfg
	rep, err := j.r.runEpoch(st, j.epoch)
	if err != nil {
		return err
	}
	st.res.Trace = append(st.res.Trace, rep)
	st.res.Epochs = j.epoch
	st.res.FinalLoss = rep.Loss

	if cfg.TargetLoss > 0 && rep.Loss <= cfg.TargetLoss {
		st.res.Converged = true
		j.done = true
		return nil
	}
	if cfg.Controller != nil {
		dec := cfg.Controller(j.epoch, rep.Loss, st.clock, st.res.TotalCost)
		if dec.PlanningSeconds > 0 {
			st.clock += dec.PlanningSeconds
			st.res.OverheadTime += dec.PlanningSeconds
			st.res.PlanningTime += dec.PlanningSeconds
		}
		if dec.Stop {
			j.done = true
			return nil
		}
		if dec.NewAlloc != nil && *dec.NewAlloc != st.alloc {
			if err := j.r.applySwitch(st, *dec.NewAlloc, dec.Delayed); err != nil {
				return err
			}
		}
	}
	if j.epoch >= cfg.MaxEpochs {
		j.done = true
	}
	return nil
}

// Finish releases the job's resources and returns its result. Finish is
// idempotent.
func (j *Job) Finish() *Result {
	if !j.finished {
		j.finished = true
		j.r.finishJob(j.st)
		j.st.res.JCT = j.st.clock
	}
	j.done = true
	return j.st.res
}

// RunEpochs runs exactly epochs epochs under a fixed allocation (used by the
// hyperparameter-tuning driver for one trial in one stage).
func (r *Runner) RunEpochs(w *workload.Model, eng workload.Engine, a cost.Allocation, epochs int) (*Result, error) {
	return r.Run(Config{Workload: w, Engine: eng, Alloc: a, MaxEpochs: epochs})
}

// startGroup invokes the function group for alloc, charging startup and the
// initial data load; initial=false marks restarts (the model is pulled from
// storage as well).
func (r *Runner) startGroup(st *state, a cost.Allocation, initial bool) error {
	w := st.cfg.Workload
	invs, err := r.Compute().InvokeGroup(a.N, a.MemMB)
	if err != nil {
		return fmt.Errorf("trainer: invoking %v: %w", a, err)
	}
	start := 0.0
	for _, inv := range invs {
		if inv.StartDelay > start {
			start = inv.StartDelay
		}
	}
	if p := r.acquireService(st, a.Storage); p > start {
		start = p // storage provisioning overlaps the cold start
	}
	load := r.loadTime(w, a)
	if !initial {
		// A restarted group must also pull the checkpointed model.
		load += r.Service(a.Storage).TransferTime(a.N, w.ParamsMB)
		if err := r.restoreCheckpoint(st); err != nil {
			return err
		}
	}
	st.clock += start + load
	st.res.OverheadTime += start + load
	if initial {
		st.res.StartupTime = start + load
	}
	if r.obs.Enabled() {
		name := "startup"
		if !initial {
			name = "restart_startup"
		}
		r.obs.Trace().SpanAt(st.clock-(start+load), start+load, "job", "trainer", name,
			obs.I("n", a.N), obs.I("mem_mb", a.MemMB), obs.S("storage", a.Storage.String()),
			obs.F("start_s", start), obs.F("load_s", load))
		r.obs.Stats().Observe("trainer.startup_s", start+load)
	}
	r.Compute().BillCompute(a.N, a.MemMB, load)
	st.res.FunctionCost += float64(a.N) * r.Prices.ComputeOnlyCost(load, float64(a.MemMB))
	st.res.InvokeCost += float64(a.N) * r.Prices.FunctionInvoke
	st.res.StorageCost += r.Params().LoadCost(a.N)
	st.res.TotalCost += float64(a.N)*r.Prices.ComputeOnlyCost(load, float64(a.MemMB)) +
		float64(a.N)*r.Prices.FunctionInvoke + r.Params().LoadCost(a.N)
	return nil
}

func (r *Runner) loadTime(w *workload.Model, a cost.Allocation) float64 {
	t := w.Dataset.PartitionSizeMB(a.N) / 80
	if r.Noise.LoadJitter > 0 {
		t *= r.Backend.Rand("trainer.load").Jitter(r.Noise.LoadJitter)
	}
	return t
}

// runEpoch executes one epoch under the current allocation: k iterations of
// compute + sync with ground-truth noise, engine advance, billing, and the
// takeover of a pending delayed switch. On substrates that execute real work
// it also drives one real synchronization barrier across the group.
func (r *Runner) runEpoch(st *state, epoch int) (EpochReport, error) {
	w := st.cfg.Workload
	a := st.alloc
	svc := r.Service(a.Storage)

	var computeT, syncT float64
	if st.cfg.Async {
		computeT = r.asyncCompute(w, a)
		syncT = r.asyncSync(w, a, svc)
	} else {
		computeT = r.groundTruthCompute(w, a)
		syncT = r.groundTruthSync(w, a, svc)
	}
	if sched := st.cfg.Faults; sched.Active() {
		// Active fault windows inflate this epoch's components: stragglers
		// slow compute, brownouts slow the storage-bound synchronization.
		// The controller is not told — it sees the inflated epoch time
		// through its normal observations, which is what forces a genuine
		// re-plan (a path= entry in the decision log) rather than a scripted
		// one.
		computeT *= sched.StragglerFactor(st.clock)
		if lat, _, on := sched.BrownoutAt(st.clock); on {
			syncT *= lat
		}
	}
	epochT := computeT + syncT

	// Failure injection: any crashed worker aborts the BSP epoch. The
	// group loses a fraction of the epoch (billed — the platform charges
	// for the wasted compute), the crashed sandbox restarts and re-pulls
	// the last checkpoint, and the epoch retries. Without checkpointing a
	// single crash throws the job back to the initial model.
	//
	// An active fault schedule replaces the synthetic dice roll entirely:
	// crashes then happen exactly when the schedule says, against the real
	// platform.
	if sched := st.cfg.Faults; sched.Active() {
		if err := r.scheduledFaults(st, epoch, epochT); err != nil {
			return EpochReport{}, err
		}
	} else if p := r.Noise.FailureRate; p > 0 && a.N > 0 {
		rng := r.Backend.Rand("trainer.failure")
		groupP := 1 - math.Pow(1-p, float64(a.N))
		attempt := 0
		for ; attempt < failureAttemptCap && rng.Float64() < groupP; attempt++ {
			wasted := rng.Float64() * epochT
			recover := r.Compute().ColdStartEstimate(a.MemMB) +
				svc.TransferTime(a.N, w.ParamsMB)
			st.clock += wasted + recover
			st.res.OverheadTime += wasted + recover
			st.res.FailureTime += wasted + recover
			st.res.Failures++
			if r.obs.Enabled() {
				r.obs.Trace().InstantAt(st.clock, "job", "trainer", "failure",
					obs.I("epoch", epoch), obs.F("wasted_s", wasted), obs.F("recover_s", recover))
				r.obs.Stats().Inc("trainer.failures")
				r.obs.Stats().Add("trainer.failure_s", wasted+recover)
			}
			// The whole group is billed for the wasted fraction, and the
			// restarted sandbox is billed for its recovery run (cold start +
			// checkpoint re-pull): that time is on the platform's clock, so
			// it must also be on its meter.
			r.Compute().BillCompute(a.N, a.MemMB, wasted)
			r.Compute().BillCompute(1, a.MemMB, recover)
			spent := float64(a.N)*r.Prices.ComputeOnlyCost(wasted, float64(a.MemMB)) +
				r.Prices.ComputeOnlyCost(recover, float64(a.MemMB))
			st.res.FunctionCost += spent
			st.res.TotalCost += spent
			if st.cfg.DisableCheckpoint && st.initialState != nil {
				if snap, ok := st.cfg.Engine.(workload.Snapshotter); ok {
					if err := snap.Restore(st.initialState); err != nil {
						panic(fmt.Sprintf("trainer: restoring initial state: %v", err))
					}
				}
			}
		}
		if attempt == failureAttemptCap {
			// The synthetic model gave up retrying and let the epoch proceed
			// as a success. Surface the truncation instead of dropping it.
			st.res.FailureCapped++
			if r.obs.Enabled() {
				r.obs.Stats().Inc("trainer.failure_cap")
			}
		}
	}

	var loss float64
	if st.cfg.Async {
		// Stale gradients dilute each wall epoch's statistical progress.
		st.asyncProgress += asyncEfficiency(a.N)
		loss = st.cfg.Engine.Loss()
		for st.asyncProgress >= 1 {
			loss = st.cfg.Engine.NextEpoch()
			st.asyncProgress--
		}
	} else {
		loss = st.cfg.Engine.NextEpoch()
	}

	// Billing: n functions ran the epoch; storage billed per its pattern.
	funcCost := float64(a.N) * r.Prices.ComputeOnlyCost(epochT, float64(a.MemMB))
	r.Compute().BillCompute(a.N, a.MemMB, epochT)
	var stoCost float64
	if svc.ChargesByRequest() {
		stoCost = float64(w.IterationsPerEpoch(a.N)) * svc.SyncRequestCost(a.N, w.ParamsMB)
	} else {
		stoCost = svc.RuntimeCost(epochT)
	}

	rep := EpochReport{
		Epoch: epoch, Loss: loss, Alloc: a,
		Time: epochT, ComputeTime: computeT, SyncTime: syncT,
		Cost: funcCost + stoCost, StorageCost: stoCost,
	}
	st.clock += epochT
	st.res.ComputeTime += computeT
	st.res.SyncTime += syncT
	st.res.FunctionCost += funcCost
	st.res.StorageCost += stoCost
	st.res.TotalCost += funcCost + stoCost
	if r.obs.Enabled() {
		r.obs.Trace().SpanAt(st.clock-epochT, epochT, "job", "trainer", "epoch",
			obs.I("epoch", epoch), obs.F("loss", loss),
			obs.F("compute_s", computeT), obs.F("sync_s", syncT),
			obs.I("n", a.N), obs.I("mem_mb", a.MemMB), obs.S("storage", a.Storage.String()))
		r.obs.Stats().Inc("trainer.epochs")
		r.obs.Stats().Observe("trainer.epoch_s", epochT)
		r.obs.Stats().Observe("trainer.barrier_sync_s", syncT)
		r.obs.Stats().Add("trainer.compute_s", computeT)
		r.obs.Stats().Add("trainer.sync_s", syncT)
	}

	// Checkpoint the model state through storage at the epoch boundary
	// (this is the state a restarted group resumes from).
	if err := r.checkpoint(st); err != nil {
		return rep, err
	}

	// Substrates that execute real work run the epoch's synchronization
	// barrier here, across the group currently serving the allocation.
	if gr, ok := r.Backend.(platform.GroupRunner); ok {
		if err := gr.RunEpoch(a.N, a.MemMB, a.Storage); err != nil {
			return rep, fmt.Errorf("trainer: epoch %d barrier: %w", epoch, err)
		}
	}

	// A pending delayed switch takes over here: the new group has been
	// starting up while this epoch ran; any residual startup time not
	// hidden by the epoch surfaces as overhead (Fig. 8).
	if st.pendingSwitch != nil {
		residual := st.pendingReady - st.clock
		if residual > 0 {
			st.clock += residual
			st.res.OverheadTime += residual
		}
		// Old group is released; new group pulls the model directly.
		r.Compute().ReleaseGroup(a.N, a.MemMB, 0)
		handoff := r.Service(st.pendingSwitch.Storage).TransferTime(st.pendingSwitch.N, w.ParamsMB)
		st.clock += handoff
		st.res.OverheadTime += handoff
		next := *st.pendingSwitch
		st.alloc = next
		st.pendingSwitch = nil
		st.res.Restarts++
		if r.obs.Enabled() {
			// The Fig. 8 overlap window: the new group's startup ran
			// concurrently with the old group's epoch; only the residual
			// (plus the model handoff) surfaced as overhead.
			r.obs.Trace().SpanAt(st.pendingStart, st.clock-st.pendingStart, "job", "trainer", "restart_overlap",
				obs.I("n", next.N), obs.I("mem_mb", next.MemMB), obs.S("storage", next.Storage.String()),
				obs.F("residual_s", math.Max(residual, 0)), obs.F("handoff_s", handoff))
			r.obs.Stats().Inc("trainer.delayed_takeovers")
			r.obs.Stats().Add("trainer.restart_residual_s", math.Max(residual, 0))
		}
	}
	return rep, nil
}

// groundTruthCompute is the epoch's gradient computation wall time: the
// slowest of n straggling functions.
func (r *Runner) groundTruthCompute(w *workload.Model, a cost.Allocation) float64 {
	base := w.Dataset.PartitionSizeMB(a.N) * w.U(a.MemMB)
	if r.Noise.StragglerSigma == 0 {
		return base
	}
	rng := r.Backend.Rand("trainer.straggler")
	worst := 0.0
	for i := 0; i < a.N; i++ {
		if f := rng.LogNormal(0, r.Noise.StragglerSigma); f > worst {
			worst = f
		}
	}
	return base * worst
}

// groundTruthSync is the epoch's synchronization wall time with network
// instability that grows with n.
func (r *Runner) groundTruthSync(w *workload.Model, a cost.Allocation, svc platform.StorageService) float64 {
	base := float64(w.IterationsPerEpoch(a.N)) * svc.SyncTime(a.N, w.ParamsMB)
	sigma := r.Noise.SyncBase + r.Noise.SyncPerN*float64(a.N)
	if sigma == 0 {
		return base
	}
	return base * r.Backend.Rand("trainer.sync").LogNormal(0, sigma)
}

// asyncCompute is the epoch's gradient computation wall time under ASP:
// workers proceed independently, so the epoch follows the mean worker.
func (r *Runner) asyncCompute(w *workload.Model, a cost.Allocation) float64 {
	base := w.Dataset.PartitionSizeMB(a.N) * w.U(a.MemMB)
	if r.Noise.StragglerSigma == 0 {
		return base
	}
	return base * r.Backend.Rand("trainer.straggler").LogNormal(0, r.Noise.StragglerSigma)
}

// asyncSync is the epoch's synchronization wall time under ASP: each worker
// pushes its gradient and pulls the model (two transfers) per iteration,
// overlapped across workers rather than serialized.
func (r *Runner) asyncSync(w *workload.Model, a cost.Allocation, svc platform.StorageService) float64 {
	base := float64(w.IterationsPerEpoch(a.N)) * 2 * svc.TransferTime(a.N, w.ParamsMB)
	sigma := r.Noise.SyncBase + r.Noise.SyncPerN*float64(a.N)
	if sigma == 0 {
		return base
	}
	return base * r.Backend.Rand("trainer.sync").LogNormal(0, sigma)
}

// asyncEfficiency is the statistical progress one ASP wall epoch delivers
// relative to a BSP epoch: staleness grows with the worker count
// (Recht/Hogwild-style degradation, calibrated mildly).
func asyncEfficiency(n int) float64 {
	if n <= 1 {
		return 1
	}
	return 1 / (1 + 0.12*math.Log(float64(n)))
}

// applySwitch changes the allocation, either immediately (stop, restart,
// reload: full overhead) or delayed (start the new group now; it takes over
// after the next epoch).
func (r *Runner) applySwitch(st *state, next cost.Allocation, delayed bool) error {
	w := st.cfg.Workload
	if delayed {
		invs, err := r.Compute().InvokeGroup(next.N, next.MemMB)
		if err != nil {
			return fmt.Errorf("trainer: delayed switch to %v: %w", next, err)
		}
		start := 0.0
		for _, inv := range invs {
			if inv.StartDelay > start {
				start = inv.StartDelay
			}
		}
		if p := r.acquireService(st, next.Storage); p > start {
			start = p // a new storage service provisions during the overlap
		}
		load := r.loadTime(w, next)
		st.pendingSwitch = &next
		st.pendingStart = st.clock
		st.pendingReady = st.clock + start + load
		if r.obs.Enabled() {
			r.obs.Trace().InstantAt(st.clock, "job", "trainer", "switch",
				obs.I("n", next.N), obs.I("mem_mb", next.MemMB), obs.S("storage", next.Storage.String()),
				obs.B("delayed", true), obs.F("ready_in_s", start+load))
			r.obs.Stats().Inc("trainer.switches.delayed")
		}
		// The new group bills its load immediately; it runs concurrently
		// with the old group's next epoch.
		r.Compute().BillCompute(next.N, next.MemMB, load)
		spent := float64(next.N)*r.Prices.ComputeOnlyCost(load, float64(next.MemMB)) +
			float64(next.N)*r.Prices.FunctionInvoke + r.Params().LoadCost(next.N)
		st.res.FunctionCost += float64(next.N) * r.Prices.ComputeOnlyCost(load, float64(next.MemMB))
		st.res.InvokeCost += float64(next.N) * r.Prices.FunctionInvoke
		st.res.StorageCost += r.Params().LoadCost(next.N)
		st.res.TotalCost += spent
		return nil
	}
	// Immediate restart: release the old group, start the new one with the
	// full startup + reload + model pull on the critical path.
	r.Compute().ReleaseGroup(st.alloc.N, st.alloc.MemMB, 0)
	old := st.alloc
	st.alloc = next
	if r.obs.Enabled() {
		r.obs.Trace().InstantAt(st.clock, "job", "trainer", "switch",
			obs.I("n", next.N), obs.I("mem_mb", next.MemMB), obs.S("storage", next.Storage.String()),
			obs.B("delayed", false))
		r.obs.Stats().Inc("trainer.switches.immediate")
	}
	if err := r.startGroup(st, next, false); err != nil {
		st.alloc = old
		return err
	}
	st.res.Restarts++
	return nil
}

// checkpoint writes the engine state to the storage substrate. Under an
// active brownout window the write runs through the bounded retry policy;
// exhausting it degrades the job to checkpoint-less mode instead of
// erroring.
func (r *Runner) checkpoint(st *state) error {
	if st.cfg.DisableCheckpoint || st.ckptOff {
		return nil
	}
	if snap, ok := st.cfg.Engine.(workload.Snapshotter); ok {
		if !r.brownoutOp(st, "checkpoint") {
			return nil
		}
		if err := r.Params().Put(checkpointKey, snap.Snapshot()); err != nil {
			return fmt.Errorf("trainer: checkpoint: %w", err)
		}
	}
	return nil
}

// restoreCheckpoint pulls the engine state back after a restart. Storage
// trouble degrades rather than kills the job: a browned-out read that
// exhausts its retries, or a checkpoint that no longer restores, drops the
// job to checkpoint-less mode with Result.Degraded set and training
// continues from the in-memory state.
func (r *Runner) restoreCheckpoint(st *state) error {
	snap, ok := st.cfg.Engine.(workload.Snapshotter)
	if !ok || st.ckptOff {
		return nil
	}
	if !r.brownoutOp(st, "restore") {
		return nil
	}
	state, found, err := r.Params().Get(checkpointKey)
	if err != nil {
		return fmt.Errorf("trainer: reading checkpoint: %w", err)
	}
	if found {
		if err := snap.Restore(state); err != nil {
			r.degrade(st, "corrupt checkpoint: "+err.Error())
			return nil
		}
	}
	return nil
}

const checkpointKey = "model/checkpoint"

// finishJob releases the final group, any pending delayed group, and the
// job's storage-service leases (stopping their hourly meters).
func (r *Runner) finishJob(st *state) {
	r.Compute().ReleaseGroup(st.alloc.N, st.alloc.MemMB, 0)
	if st.pendingSwitch != nil {
		r.Compute().ReleaseGroup(st.pendingSwitch.N, st.pendingSwitch.MemMB, 0)
		st.pendingSwitch = nil
	}
	r.releaseServices(st)
	if math.IsNaN(st.clock) {
		panic("trainer: job clock is NaN")
	}
}
