// End-to-end workflow (the paper's Fig. 1): hyperparameter tuning followed
// by training the winner, under one overall budget — then the same jobs
// submitted as contending tenants on a shared account.
//
// Run with:
//
//	go run ./examples/workflow
package main

import (
	"fmt"
	"log"

	"repro/cescaling"
)

func main() {
	w, err := cescaling.ModelByName("MobileNet-Cifar10")
	if err != nil {
		log.Fatal(err)
	}
	fw := cescaling.New(w)

	// 1. One budget covers both phases; tuning reserves 60% by default.
	const budget = 600.0
	out, err := fw.RunWorkflow(cescaling.WorkflowOptions{
		Budget: budget,
		Trials: 64,
		Seed:   9,
	}, cescaling.NewRunner(9))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workflow for %s under a $%.0f budget:\n\n", w.Name, budget)
	fmt.Printf("phase 1 — hyperparameter tuning (64 trials, SHA):\n")
	fmt.Printf("  winner: lr=%.5f momentum=%.2f (loss %.4f)\n",
		out.BestHyperparams.LR, out.BestHyperparams.Momentum, out.Tune.Run.BestTrial.Loss)
	fmt.Printf("  spent:  %.0fs, $%.2f\n\n", out.Tune.Run.JCT, out.Tune.Run.TotalCost)

	fmt.Printf("phase 2 — training the winner to loss %.2f:\n", w.TargetLoss)
	fmt.Printf("  converged: %v in %d epochs\n", out.Train.Result.Converged, out.Train.Result.Epochs)
	fmt.Printf("  spent:     %.0fs, $%.2f\n\n", out.Train.Result.JCT, out.Train.Result.TotalCost)

	fmt.Printf("total: %.0fs, $%.2f (within budget: %v)\n\n",
		out.TotalJCT, out.TotalCost, out.WithinConstraint)

	// 2. The multi-tenant view: four such training jobs sharing one
	//    3000-function account contend for concurrency and queue.
	fmt.Println("multi-tenant: four 1500-function jobs on one account:")
	runner := cescaling.NewRunner(10)
	var subs []cescaling.ClusterSubmission
	for i := 0; i < 4; i++ {
		subs = append(subs, cescaling.ClusterSubmission{
			Name:    fmt.Sprintf("tenant-%d", i+1),
			Arrival: float64(i) * 60,
			Config: cescaling.TrainJob{
				Workload:   w,
				Engine:     w.NewEngine(out.BestHyperparams, uint64(20+i)),
				Alloc:      cescaling.Allocation{N: 1500, MemMB: 1769, Storage: cescaling.ElastiCache},
				TargetLoss: w.TargetLoss,
				MaxEpochs:  400,
			},
		})
	}
	outs, err := cescaling.RunCluster(runner, subs)
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range outs {
		fmt.Printf("  %s: queued %.0fs, turnaround %.0fs, converged %v\n",
			o.Name, o.QueueDelay, o.TurnaroundTime(), o.Result.Converged)
	}
}
