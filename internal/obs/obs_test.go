package obs

import (
	"testing"
)

func TestNilObserverIsNoOp(t *testing.T) {
	var o *Observer
	if o.Enabled() {
		t.Fatal("nil observer reports enabled")
	}
	// Every path must be callable on the nil receiver without panicking.
	o.Trace().InstantAt(1, "trk", "cat", "ev", F("x", 1))
	o.Trace().SpanAt(0, 1, "trk", "cat", "ev")
	o.Trace().Instant("trk", "cat", "ev")
	o.Trace().Span(1, "trk", "cat", "ev")
	o.Stats().Inc("c")
	o.Stats().Add("c", 2)
	o.Stats().Set("g", 3)
	o.Stats().SetMax("g", 4)
	o.Stats().Observe("h", 5)
	o.Stats().DefineHistogram("h2", []float64{1, 2})
	if got := o.Trace().Len(); got != 0 {
		t.Fatalf("nil tracer Len = %d", got)
	}
	if s := o.Stats().Snapshot(); len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("nil metrics snapshot not empty: %+v", s)
	}
	var c *Collector
	if c.Scope("x") != nil {
		t.Fatal("nil collector Scope != nil")
	}
	if c.Scopes() != nil {
		t.Fatal("nil collector Scopes != nil")
	}
}

func TestTracerRecordsInOrder(t *testing.T) {
	o := New()
	o.Trace().SpanAt(10, 2.5, "job[0]", "trainer", "epoch", I("epoch", 3), F("loss", 0.25))
	o.Trace().InstantAt(12.5, "job[0]", "scheduler", "decision", S("path", "hold"))
	evs := o.Trace().Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	e0 := evs[0]
	if e0.Time != 10 || e0.Dur != 2.5 || e0.Track != "job[0]" || e0.Cat != "trainer" || e0.Name != "epoch" || e0.Instant {
		t.Fatalf("span event mismatch: %+v", e0)
	}
	if len(e0.Args) != 2 || e0.Args[0].Key != "epoch" || e0.Args[0].Num != 3 || e0.Args[1].Key != "loss" || e0.Args[1].Num != 0.25 {
		t.Fatalf("span args mismatch: %+v", e0.Args)
	}
	e1 := evs[1]
	if !e1.Instant || e1.Time != 12.5 || e1.Args[0].Str != "hold" || !e1.Args[0].IsStr {
		t.Fatalf("instant event mismatch: %+v", e1)
	}
}

func TestTracerClockStampsEvents(t *testing.T) {
	now := 0.0
	o := NewWithClock(func() float64 { return now })
	now = 42
	o.Trace().Instant("trk", "cat", "tick")
	now = 50
	o.Trace().Span(8, "trk", "cat", "work")
	evs := o.Trace().Events()
	if evs[0].Time != 42 {
		t.Fatalf("instant stamped %v, want 42", evs[0].Time)
	}
	if evs[1].Time != 42 || evs[1].Dur != 8 {
		t.Fatalf("span stamped start=%v dur=%v, want start=42 dur=8", evs[1].Time, evs[1].Dur)
	}
}

func TestArgConstructors(t *testing.T) {
	if v := F("k", 1.5).value(); v != 1.5 {
		t.Fatalf("F value = %v", v)
	}
	if v := I("k", 7).value(); v != 7.0 {
		t.Fatalf("I value = %v", v)
	}
	if v := S("k", "s").value(); v != "s" {
		t.Fatalf("S value = %v", v)
	}
	if v := B("k", true).value(); v != "true" {
		t.Fatalf("B(true) value = %v", v)
	}
	if v := B("k", false).value(); v != "false" {
		t.Fatalf("B(false) value = %v", v)
	}
}

// TestDisabledPathAllocatesNothing is the package-local half of the
// zero-alloc guarantee (the other half is the RunEpoch benchmark in
// internal/ml staying at 0 allocs/op). The idiom under test is the one
// instrumented hot paths use: guard arg construction behind Enabled().
//
// hotpath-gate: obs.Observer.Enabled
func TestDisabledPathAllocatesNothing(t *testing.T) {
	var o *Observer
	allocs := testing.AllocsPerRun(100, func() {
		if o.Enabled() {
			o.Trace().InstantAt(1, "trk", "cat", "ev", F("x", 1), I("y", 2))
			o.Stats().Inc("n")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled observer path allocates %v per op, want 0", allocs)
	}
}
