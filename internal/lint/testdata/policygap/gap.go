// Package policygap exists in no cescalint.policy set; the driver must
// turn the omission itself into a finding.
package policygap

// Two returns two.
func Two() int { return 2 }
