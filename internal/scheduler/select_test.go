package scheduler

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/predictor"
	"repro/internal/workload"
)

// randFrontier builds a strict frontier: strictly ascending Time, strictly
// descending Cost.
func randFrontier(rng *rand.Rand, n int) []cost.Point {
	pts := make([]cost.Point, n)
	t, c := 1+rng.Float64(), 100+100*rng.Float64()
	for i := range pts {
		pts[i] = cost.Point{
			Alloc: cost.Allocation{N: i + 1, MemMB: 512},
			Time:  t,
			Cost:  c,
		}
		t += 0.01 + 2*rng.Float64()
		c -= 0.01 + 2*rng.Float64()
		if c <= 0 {
			c = math.Nextafter(pts[i].Cost, 0) // keep strictly descending, positive
		}
	}
	return pts
}

// TestSelectBinaryMatchesLinear is the satellite property test: on
// randomized strict frontiers and randomized (remaining, elapsed, spent,
// relax) queries — including exact-boundary and infeasible cases — the
// binary-search selection must return exactly what the retained linear-scan
// reference returns, for both objectives.
func TestSelectBinaryMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 3000; trial++ {
		pts := randFrontier(rng, 1+rng.Intn(40))
		budget, qos := 0.0, 0.0
		if trial%2 == 0 {
			budget = rng.Float64() * 1e5
		} else {
			qos = rng.Float64() * 1e5
		}
		s := New(Config{Candidates: pts, Budget: budget, QoS: qos, TargetLoss: 0.1})
		if !s.ordered {
			t.Fatal("random frontier should be detected as strict")
		}
		remaining := 1 + rng.Intn(500)
		elapsed := rng.Float64() * 1e4
		spent := rng.Float64() * 1e4
		relax := 1.0
		if rng.Intn(3) == 0 {
			relax = 1.15
		}
		switch rng.Intn(8) {
		case 0:
			// Exact-boundary query: the constraint equals one candidate's
			// consumption bit for bit, probing the > vs >= edge.
			p := pts[rng.Intn(len(pts))]
			if budget > 0 {
				spent = 0
				s.cfg.Budget = float64(remaining) * p.Cost
			} else {
				elapsed = 0
				s.cfg.QoS = float64(remaining) * p.Time
			}
			relax = 1
		case 1:
			// Infeasible: constraint below every candidate's consumption.
			if budget > 0 {
				s.cfg.Budget = 1e-12
			} else {
				s.cfg.QoS = 1e-12
			}
		case 2:
			// All feasible.
			if budget > 0 {
				s.cfg.Budget = 1e18
			} else {
				s.cfg.QoS = 1e18
			}
		}
		gotA, gotOK := s.selectBinary(remaining, elapsed, spent, relax)
		wantA, wantOK := s.selectLinear(remaining, elapsed, spent, relax)
		if gotOK != wantOK || gotA != wantA {
			t.Fatalf("trial %d (budget=%g qos=%g rem=%d elapsed=%g spent=%g relax=%g):\nbinary=(%v,%v)\nlinear=(%v,%v)\nfrontier=%v",
				trial, s.cfg.Budget, s.cfg.QoS, remaining, elapsed, spent, relax, gotA, gotOK, wantA, wantOK, pts)
		}
	}
}

// TestSelectBinaryRoundingTies hunts for real r*Cost rounding collisions —
// adjacent representable costs whose scaled values land on the same float —
// and checks the binary path resolves them like the linear scan (first
// index of the tied run).
func TestSelectBinaryRoundingTies(t *testing.T) {
	found := 0
	for _, base := range []float64{1.0, 3.7, 17.3, 123.456} {
		c2 := base
		c1 := math.Nextafter(base, 2*base) // c1 > c2, adjacent floats
		for remaining := 1; remaining <= 2000; remaining++ {
			r := float64(remaining)
			if r*c1 != r*c2 {
				continue
			}
			found++
			pts := []cost.Point{
				{Alloc: cost.Allocation{N: 1}, Time: 1, Cost: c1},
				{Alloc: cost.Allocation{N: 2}, Time: 2, Cost: c2},
			}
			// QoS admits both; the linear scan keeps N=1 (first of the tied
			// run under strict <), so binary must too.
			s := New(Config{Candidates: pts, QoS: 1e9, TargetLoss: 0.1})
			gotA, gotOK := s.selectBinary(remaining, 0, 0, 1)
			wantA, wantOK := s.selectLinear(remaining, 0, 0, 1)
			if gotOK != wantOK || gotA != wantA {
				t.Fatalf("r=%d c1=%v c2=%v: binary=(%v,%v) linear=(%v,%v)",
					remaining, c1, c2, gotA, gotOK, wantA, wantOK)
			}
		}
	}
	if found == 0 {
		t.Skip("no rounding collision in scan range (walk-back path untested here)")
	}
	t.Logf("exercised %d rounding-tie cases", found)
}

// TestNonFrontierFallsBackToLinear: candidate sets that are not strict
// frontiers (duplicate times, non-descending costs — e.g. the WO-pa full
// enumeration) must disable the binary path.
func TestNonFrontierFallsBackToLinear(t *testing.T) {
	dup := []cost.Point{
		{Alloc: cost.Allocation{N: 1}, Time: 1, Cost: 5},
		{Alloc: cost.Allocation{N: 2}, Time: 1, Cost: 4},
		{Alloc: cost.Allocation{N: 3}, Time: 2, Cost: 3},
	}
	if s := New(Config{Candidates: dup, Budget: 10, TargetLoss: 0.1}); s.ordered {
		t.Error("duplicate times should not be treated as a strict frontier")
	}
	rising := []cost.Point{
		{Alloc: cost.Allocation{N: 1}, Time: 1, Cost: 3},
		{Alloc: cost.Allocation{N: 2}, Time: 2, Cost: 4},
	}
	if s := New(Config{Candidates: rising, Budget: 10, TargetLoss: 0.1}); s.ordered {
		t.Error("non-descending costs should not be treated as a strict frontier")
	}
	if s := New(Config{Budget: 10, TargetLoss: 0.1}); s.ordered {
		t.Error("empty candidates should not be ordered")
	}
	m := cost.NewModel(workload.MobileNet())
	full := m.Enumerate(cost.DefaultGrid())
	sFull := New(Config{Model: m, Candidates: full, Budget: 1e12, TargetLoss: 0.42})
	if sFull.ordered {
		t.Error("full enumeration should fall back to the linear reference")
	}
	sPareto := New(Config{Model: m, Frontier: m.ParetoFrontier(cost.DefaultGrid()), Budget: 1e12, TargetLoss: 0.42})
	if !sPareto.ordered {
		t.Error("shared Pareto frontier should enable the binary path")
	}
}

// TestSchedulerSharedFrontier: a scheduler built on Config.Frontier adopts
// the shared points without copying, and selection results match a
// scheduler built on an equivalent private candidate copy.
func TestSchedulerSharedFrontier(t *testing.T) {
	m := cost.NewModel(workload.MobileNet())
	fr := m.ParetoFrontier(cost.DefaultGrid())
	sShared := New(Config{Model: m, Frontier: fr, Budget: 500, TargetLoss: 0.42})
	sCopy := New(Config{Model: m, Candidates: m.ParetoSet(cost.DefaultGrid()), Budget: 500, TargetLoss: 0.42})
	if &sShared.cfg.Candidates[0] != &fr.Points()[0] {
		t.Error("frontier-backed scheduler should share the frontier's backing array")
	}
	if &sCopy.cfg.Candidates[0] == &fr.Points()[0] {
		t.Error("candidate-backed scheduler should hold a private copy")
	}
	for _, rem := range []int{1, 5, 50, 500} {
		a1, ok1 := sShared.selectBest(rem, 0, 100)
		a2, ok2 := sCopy.selectBest(rem, 0, 100)
		if ok1 != ok2 || a1 != a2 {
			t.Errorf("rem=%d: shared (%v,%v) != copy (%v,%v)", rem, a1, ok1, a2, ok2)
		}
	}
}

// TestDecisionZeroAlloc is the PR7 steady-state gate (the Alg. 2 analogue
// of PR5's RunEpoch gate): one full per-epoch decision — observe, fit,
// predict, select, log — must not touch the heap under the fleet tuning
// with tracing disabled.
//
// hotpath-gate: scheduler.Scheduler.decide
func TestDecisionZeroAlloc(t *testing.T) {
	m := cost.NewModel(workload.MobileNet())
	s := New(Config{
		Model:        m,
		Frontier:     m.ParetoFrontier(cost.DefaultGrid()),
		Budget:       1e12,
		TargetLoss:   0.42,
		Delta:        1e-9, // force the full select path every epoch
		OnlineTuning: &predictor.Tuning{FixedWindow: 32, WarmStart: true, RefitBudget: 10},
	})
	s.alloc = s.cfg.Candidates[0].Alloc
	s.lastPrediction = 1
	for e := 1; e <= 32; e++ {
		s.online.Observe(e, benchCurve(e))
	}
	ctrl := s.Controller()
	epoch := 33
	warm := func() {
		dec := ctrl(epoch, benchCurve(epoch), float64(epoch)*10, float64(epoch)*1e-6)
		if dec.Stop {
			t.Fatal("unexpected stop")
		}
		epoch++
	}
	for i := 0; i < 64; i++ {
		warm() // settle the allocation choice so no restarts remain
	}
	if avg := testing.AllocsPerRun(200, warm); avg != 0 {
		t.Errorf("steady-state decision allocates %.2f/op, want 0", avg)
	}
}
