// Storage explorer: train one model under each external storage service and
// see how latency, bandwidth, pricing pattern and synchronization pattern
// shape JCT and cost (the paper's Finding 3 / Table II / Fig. 18).
//
// Run with:
//
//	go run ./examples/storage-explorer [model]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/cescaling"
)

func main() {
	name := "MobileNet-Cifar10"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	w, err := cescaling.ModelByName(name)
	if err != nil {
		log.Fatal(err)
	}
	fw := cescaling.New(w)

	fmt.Printf("model %s: %.3f MB of parameters synchronized per BSP iteration\n\n", w.Name, w.ParamsMB)
	fmt.Println("service characteristics (Table I):")
	fmt.Printf("%-12s %-8s %-8s %-15s %s\n", "service", "scaling", "latency", "pricing", "sync pattern")
	for _, s := range cescaling.StorageServices() {
		c := s.Characterize()
		pattern := "(2n-2) transfers"
		if s.Stateless() {
			pattern = "(3n-2) transfers"
		}
		fmt.Printf("%-12s %-8s %-8s %-15s %s\n", c.Name, c.ElasticScaling, c.LatencyClass, c.PricingPattern, pattern)
	}
	fmt.Println()

	// Fix the classic 10 functions x 1769 MB allocation and swap storages.
	fmt.Println("training to target under 10 functions x 1769MB, one storage at a time:")
	fmt.Printf("%-12s %-10s %-12s %-10s %-12s %s\n", "storage", "JCT", "sync time", "cost", "storage $", "note")
	var s3 *cescaling.TrainResult
	for _, svc := range cescaling.StorageServices() {
		kind := svc.Kind()
		if !svc.Supports(w.ParamsMB) {
			fmt.Printf("%-12s %-10s %-12s %-10s %-12s %s\n", kind, "N/A", "", "", "", "model exceeds object size limit")
			continue
		}
		runner := cescaling.NewRunner(11)
		res, err := runner.Run(cescaling.TrainJob{
			Workload:   w,
			Engine:     w.NewEngine(cescaling.Hyperparams{LR: w.DefaultLR}, 11),
			Alloc:      cescaling.Allocation{N: 10, MemMB: 1769, Storage: kind},
			TargetLoss: w.TargetLoss,
			MaxEpochs:  500,
		})
		if err != nil {
			log.Fatal(err)
		}
		note := ""
		if kind == cescaling.S3 {
			s3 = res
			note = "baseline"
		} else if s3 != nil {
			note = fmt.Sprintf("JCT %.2fx, cost %.2fx of S3", res.JCT/s3.JCT, res.TotalCost/s3.TotalCost)
		}
		fmt.Printf("%-12s %-10s %-12s %-10s %-12s %s\n",
			kind,
			fmt.Sprintf("%.0fs", res.JCT),
			fmt.Sprintf("%.0fs", res.SyncTime),
			fmt.Sprintf("$%.3f", res.TotalCost),
			fmt.Sprintf("$%.4f", res.StorageCost),
			note)
	}
	fmt.Println()

	// What CE-scaling itself would pick, given freedom over all storages.
	out, err := fw.Train(cescaling.Options{QoS: 1e15, Seed: 11}, cescaling.NewRunner(12))
	if err != nil {
		log.Fatal(err)
	}
	last := out.Result.Trace[len(out.Result.Trace)-1]
	fmt.Printf("CE-scaling's own cost-minimizing pick: %v ($%.3f, %.0fs)\n",
		last.Alloc, out.Result.TotalCost, out.Result.JCT)
}
