package dataset

import (
	"testing"

	"repro/internal/sim"
)

func BenchmarkPartition(b *testing.B) {
	m := GenerateBinary(sim.NewRand(1), GenConfig{Samples: 4000, Features: 64, NoiseFlip: 0.1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Partition(8)
	}
}

func BenchmarkShards(b *testing.B) {
	m := GenerateBinary(sim.NewRand(1), GenConfig{Samples: 4000, Features: 64, NoiseFlip: 0.1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Shards(8)
	}
}

func BenchmarkGenerateBinary(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GenerateBinary(sim.NewRand(1), GenConfig{Samples: 1500, Features: 256, NoiseFlip: 0.22})
	}
}

func BenchmarkCachedBinary(b *testing.B) {
	cfg := GenConfig{Samples: 1500, Features: 256, NoiseFlip: 0.22}
	CachedBinary(1, cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CachedBinary(1, cfg)
	}
}
