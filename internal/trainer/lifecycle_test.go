package trainer

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/platform"
	"repro/internal/workload"
)

// TestProvisionedServiceReleasedAtJobEnd is the regression test for the
// storage-service lifecycle: a job that provisions an hourly-billed service
// (ElastiCache, VM-PS) must release its lease when it finishes, so the
// provisioned-seconds meter stops accruing.
func TestProvisionedServiceReleasedAtJobEnd(t *testing.T) {
	r := NewRunner(4)
	r.Noise = NoNoise()
	w := workload.MobileNet()
	a := cost.Allocation{N: 10, MemMB: 1769, Storage: platform.ElastiCache}

	job, err := r.StartJob(Config{
		Workload: w,
		Engine:   w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, 1),
		Alloc:    a, MaxEpochs: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ServiceLeases(platform.ElastiCache); got != 1 {
		t.Fatalf("running job holds %d leases, want 1", got)
	}
	if got := r.ProvisionedSeconds(platform.ElastiCache); got != 0 {
		t.Fatalf("accrued %v provisioned seconds before the job finished", got)
	}
	for !job.Done() {
		if err := job.Step(); err != nil {
			t.Fatal(err)
		}
	}
	res := job.Finish()

	if got := r.ServiceLeases(platform.ElastiCache); got != 0 {
		t.Fatalf("finished job still holds %d leases", got)
	}
	accrued := r.ProvisionedSeconds(platform.ElastiCache)
	if accrued <= 0 || accrued > res.JCT {
		t.Fatalf("accrued %v provisioned seconds, want in (0, %v]", accrued, res.JCT)
	}
	if cost := r.ProvisionedCost(platform.ElastiCache); cost <= 0 {
		t.Fatalf("accrued provisioned cost %v, want > 0", cost)
	}

	// The meter must not accrue while no job holds the service: a second,
	// S3-only job leaves the ElastiCache accrual untouched.
	res2, err := r.RunEpochs(w, w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, 2),
		cost.Allocation{N: 10, MemMB: 1769, Storage: platform.S3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Epochs != 5 {
		t.Fatalf("second job ran %d epochs, want 5", res2.Epochs)
	}
	if got := r.ProvisionedSeconds(platform.ElastiCache); got != accrued {
		t.Fatalf("meter accrued while released: %v -> %v", accrued, got)
	}
	if got := r.ServiceLeases(platform.S3); got != 0 {
		t.Fatalf("auto-scaling S3 should never hold a lease, got %d", got)
	}

	// Re-provisioning later is free in time (the paper provisions once per
	// workflow) but re-opens the lease and resumes the meter.
	res3, err := r.RunEpochs(w, w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, 3), a, 5)
	if err != nil {
		t.Fatal(err)
	}
	after := r.ProvisionedSeconds(platform.ElastiCache)
	if after <= accrued {
		t.Fatalf("re-held service accrued nothing: %v -> %v", accrued, after)
	}
	if after-accrued > res3.JCT {
		t.Fatalf("second lease accrued %v, more than its job's JCT %v", after-accrued, res3.JCT)
	}
	if got := r.ServiceLeases(platform.ElastiCache); got != 0 {
		t.Fatalf("finished second job still holds %d leases", got)
	}
}

// TestDelayedSwitchTransfersLease covers the delayed-restart path: a job
// that switches onto a provisioned service mid-run opens the lease at the
// switch and still releases it at job end.
func TestDelayedSwitchTransfersLease(t *testing.T) {
	r := NewRunner(9)
	r.Noise = NoNoise()
	w := workload.MobileNet()
	next := cost.Allocation{N: 20, MemMB: 2048, Storage: platform.VMPS}
	switched := false
	res, err := r.Run(Config{
		Workload:  w,
		Engine:    w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, 1),
		Alloc:     cost.Allocation{N: 10, MemMB: 1769, Storage: platform.S3},
		MaxEpochs: 6,
		Controller: func(epoch int, loss float64, elapsed, spent float64) Decision {
			if epoch == 2 && !switched {
				switched = true
				return Decision{NewAlloc: &next, Delayed: true}
			}
			return Decision{}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", res.Restarts)
	}
	if got := r.ServiceLeases(platform.VMPS); got != 0 {
		t.Fatalf("finished job still holds %d VM-PS leases", got)
	}
	if got := r.ProvisionedSeconds(platform.VMPS); got <= 0 {
		t.Fatalf("VM-PS lease accrued %v seconds, want > 0", got)
	}
}
