package objstore

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
)

func newPair(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv := NewServer()
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, NewClient(ts.URL)
}

func TestPutGetRoundTrip(t *testing.T) {
	_, c := newPair(t)
	if err := c.Put("models/global", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	data, ok, err := c.Get("models/global")
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if string(data) != "hello" {
		t.Errorf("Get = %q", data)
	}
}

func TestGetMissing(t *testing.T) {
	_, c := newPair(t)
	data, ok, err := c.Get("absent")
	if err != nil {
		t.Fatal(err)
	}
	if ok || data != nil {
		t.Error("absent key reported present")
	}
}

func TestOverwrite(t *testing.T) {
	_, c := newPair(t)
	c.Put("k", []byte("v1"))
	c.Put("k", []byte("v2"))
	data, _, _ := c.Get("k")
	if string(data) != "v2" {
		t.Errorf("overwrite lost: %q", data)
	}
}

func TestDeleteIdempotent(t *testing.T) {
	s, c := newPair(t)
	c.Put("k", []byte("v"))
	if err := c.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("k"); err != nil {
		t.Fatal("second delete should be a no-op:", err)
	}
	if s.Len() != 0 {
		t.Error("key survived delete")
	}
}

func TestListByPrefix(t *testing.T) {
	_, c := newPair(t)
	for _, k := range []string{"grads/0", "grads/1", "grads/10", "model"} {
		if err := c.Put(k, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := c.List("grads/")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"grads/0", "grads/1", "grads/10"}
	if len(keys) != len(want) {
		t.Fatalf("List = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("List = %v, want %v (sorted)", keys, want)
		}
	}
	all, err := c.List("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Errorf("List(\"\") = %d keys, want 4", len(all))
	}
}

func TestListEmpty(t *testing.T) {
	_, c := newPair(t)
	keys, err := c.List("nope/")
	if err != nil {
		t.Fatal(err)
	}
	if keys != nil {
		t.Errorf("empty list = %v", keys)
	}
}

func TestObjectSizeLimit(t *testing.T) {
	srv := NewServer()
	srv.MaxObjectBytes = 4
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL)
	if err := c.Put("small", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("big", []byte("too large")); err == nil {
		t.Error("oversized PUT should fail (the DynamoDB 400KB analogue)")
	}
}

func TestStatsMetering(t *testing.T) {
	s, c := newPair(t)
	c.Put("a", []byte("1234"))
	c.Get("a")
	c.Get("missing")
	c.Delete("a")
	c.List("")
	st := s.Stats()
	if st.Puts != 1 || st.Gets != 2 || st.Deletes != 1 || st.Lists != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.BytesIn != 4 || st.BytesOut < 4 {
		t.Errorf("bytes = in %d out %d", st.BytesIn, st.BytesOut)
	}
}

func TestConcurrentClients(t *testing.T) {
	s, c := newPair(t)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := fmt.Sprintf("worker/%d", w)
			for i := 0; i < 25; i++ {
				if err := c.Put(key, []byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
				if _, ok, err := c.Get(key); err != nil || !ok {
					t.Errorf("worker %d read failed: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 16 {
		t.Errorf("Len = %d, want 16", s.Len())
	}
}

func TestUnsupportedMethods(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := ts.Client().Post(ts.URL+"/key", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Errorf("POST status = %d, want 405", resp.StatusCode)
	}
}
