package scheduler

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/predictor"
	"repro/internal/trainer"
	"repro/internal/workload"
)

func newSession(t *testing.T, w *workload.Model, budget, qos float64, delayed bool) (*Scheduler, *trainer.Runner) {
	t.Helper()
	m := cost.NewModel(w)
	pareto := m.ParetoSet(cost.DefaultGrid())
	if len(pareto) == 0 {
		t.Fatal("empty pareto set")
	}
	s := New(Config{
		Model: m, Candidates: pareto,
		Budget: budget, QoS: qos,
		TargetLoss:     w.TargetLoss,
		DelayedRestart: delayed,
		Offline:        predictor.NewOffline(w),
		OfflineSeed:    7,
	})
	return s, trainer.NewRunner(11)
}

func runSession(t *testing.T, s *Scheduler, r *trainer.Runner, w *workload.Model) *trainer.Result {
	t.Helper()
	alloc, _ := s.Initial()
	if alloc.N == 0 {
		t.Fatal("Initial returned a zero allocation")
	}
	res, err := r.Run(trainer.Config{
		Workload:   w,
		Engine:     w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, 13),
		Alloc:      alloc,
		TargetLoss: w.TargetLoss,
		MaxEpochs:  500,
		Controller: s.Controller(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSchedulerConvergesUnderBudget(t *testing.T) {
	w := workload.MobileNet()
	// A generous budget: the best static plan is well inside it.
	s, r := newSession(t, w, 50, 0, true)
	res := runSession(t, s, r, w)
	if !res.Converged {
		t.Fatalf("did not converge: loss %g after %d epochs", res.FinalLoss, res.Epochs)
	}
	if res.TotalCost > 50 {
		t.Errorf("cost %g exceeded budget 50", res.TotalCost)
	}
}

func TestSchedulerMeetsQoS(t *testing.T) {
	w := workload.MobileNet()
	// First find an unconstrained-ish JCT to set a realistic deadline.
	probe, rp := newSession(t, w, 1e9, 0, true)
	base := runSession(t, probe, rp, w)
	qos := base.JCT * 2
	s, r := newSession(t, w, 0, qos, true)
	res := runSession(t, s, r, w)
	if !res.Converged {
		t.Fatalf("did not converge under QoS %g", qos)
	}
	if res.JCT > qos*1.15 {
		t.Errorf("JCT %g blew the deadline %g by more than tolerance", res.JCT, qos)
	}
}

func TestSchedulerAdjustsAtLeastOnce(t *testing.T) {
	// The offline estimate is noisy by construction, so the online
	// prediction should eventually drift past δ and trigger an adjustment
	// for at least one of several seeds.
	w := workload.ResNet50()
	// Probe an unconstrained run to find a binding budget: with slack to
	// spare the argmin allocation never changes and no restart is needed.
	probe, rp := newSession(t, w, 1e9, 0, true)
	base := runSession(t, probe, rp, w)
	budget := base.TotalCost * 1.05
	adjusted := false
	for seed := uint64(1); seed <= 5 && !adjusted; seed++ {
		m := cost.NewModel(w)
		pareto := m.ParetoSet(cost.DefaultGrid())
		s := New(Config{
			Model: m, Candidates: pareto, Budget: budget,
			TargetLoss: w.TargetLoss, DelayedRestart: true,
			Offline: predictor.NewOffline(w), OfflineSeed: seed,
		})
		r := trainer.NewRunner(seed)
		alloc, _ := s.Initial()
		if _, err := r.Run(trainer.Config{
			Workload:   w,
			Engine:     w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, seed),
			Alloc:      alloc,
			TargetLoss: w.TargetLoss,
			MaxEpochs:  500,
			Controller: s.Controller(),
		}); err != nil {
			t.Fatal(err)
		}
		if s.Adjustments > 0 {
			adjusted = true
		}
	}
	if !adjusted {
		t.Error("scheduler never adjusted across 5 seeds; online prediction is inert")
	}
}

func TestDeltaControlsRestartFrequency(t *testing.T) {
	// Fig. 21(c): a lower δ must trigger at least as many restarts.
	w := workload.ResNet50()
	restarts := func(delta float64) int {
		m := cost.NewModel(w)
		pareto := m.ParetoSet(cost.DefaultGrid())
		s := New(Config{
			Model: m, Candidates: pareto, Budget: 500,
			TargetLoss: w.TargetLoss, Delta: delta, DelayedRestart: true,
			Offline: predictor.NewOffline(w), OfflineSeed: 3,
		})
		r := trainer.NewRunner(5)
		alloc, _ := s.Initial()
		res, err := r.Run(trainer.Config{
			Workload:   w,
			Engine:     w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, 5),
			Alloc:      alloc,
			TargetLoss: w.TargetLoss,
			MaxEpochs:  500,
			Controller: s.Controller(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Restarts
	}
	low, high := restarts(0.01), restarts(0.4)
	if low < high {
		t.Errorf("δ=0.01 restarts %d < δ=0.4 restarts %d", low, high)
	}
}

func TestPlanningOverheadScalesWithCandidateSet(t *testing.T) {
	// §IV-G WO-pa: searching the full enumeration must cost more planning
	// time than searching the Pareto subset.
	w := workload.MobileNet()
	m := cost.NewModel(w)
	full := m.Enumerate(cost.DefaultGrid())
	pareto := cost.Pareto(full)
	if len(pareto) >= len(full) {
		t.Skip("degenerate grid")
	}
	run := func(cands []cost.Point) float64 {
		s := New(Config{
			Model: m, Candidates: cands, Budget: 100,
			TargetLoss: w.TargetLoss, DelayedRestart: true,
			Offline: predictor.NewOffline(w), OfflineSeed: 1,
		})
		r := trainer.NewRunner(2)
		alloc, _ := s.Initial()
		res, err := r.Run(trainer.Config{
			Workload:   w,
			Engine:     w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, 2),
			Alloc:      alloc,
			TargetLoss: w.TargetLoss,
			MaxEpochs:  500,
			Controller: s.Controller(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.PlanningTime + s.PlanningSeconds - res.PlanningTime // total planning incl. Initial
	}
	if p, f := run(pareto), run(full); f <= p {
		t.Errorf("full-set planning %g should exceed pareto planning %g", f, p)
	}
}

func TestBudgetExhaustionStops(t *testing.T) {
	w := workload.BERT()
	s, r := newSession(t, w, 0.5, 0, true) // absurdly small budget
	alloc, _ := s.Initial()
	res, err := r.Run(trainer.Config{
		Workload:   w,
		Engine:     w.NewCurveEngine(workload.Hyperparams{LR: w.DefaultLR}, 3),
		Alloc:      alloc,
		TargetLoss: w.TargetLoss,
		MaxEpochs:  500,
		Controller: s.Controller(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged && res.TotalCost > 0.5 {
		t.Error("job converged while violating an exhausted budget")
	}
	if res.Epochs >= 500 {
		t.Error("job should have stopped early on budget exhaustion")
	}
}

func TestInitialFallbackWhenConstraintImpossible(t *testing.T) {
	w := workload.MobileNet()
	s, _ := newSession(t, w, 1e-9, 0, true)
	alloc, est := s.Initial()
	if est < 1 {
		t.Errorf("offline estimate %d < 1", est)
	}
	if alloc.N == 0 {
		t.Error("Initial should fall back to the cheapest candidate")
	}
}

func TestDefaultsApplied(t *testing.T) {
	s := New(Config{Offline: predictor.NewOffline(workload.MobileNet())})
	if s.cfg.Delta != 0.1 {
		t.Errorf("default delta = %g, want 0.1", s.cfg.Delta)
	}
	if s.cfg.PlanningSecondsPerCandidate <= 0 {
		t.Error("default planning cost missing")
	}
}
