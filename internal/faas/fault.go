package faas

import (
	"sort"

	"repro/internal/obs"
)

// Fault-injection surface: deterministic schedules (internal/fault) mutate
// real platform state through these methods, so faults propagate to the rest
// of the system the same way ordinary platform behavior does — through
// admission counts, warm-pool bookkeeping and start latencies — rather than
// through a parallel synthetic model.

// KillSandboxes terminates up to n in-flight sandboxes (spot reclaims,
// OOM kills, platform preemptions). The victims simply vanish from the
// admitted count: they are not returned to the warm pool and their compute
// is not billed here — the caller decides what the interruption wasted and
// re-invokes replacements, which pay normal (cold or warm) start latency.
// Returns the number actually killed, which is less than n when fewer were
// in flight.
func (p *Platform) KillSandboxes(n int) int {
	if n <= 0 || p.inFlight == 0 {
		return 0
	}
	if n > p.inFlight {
		n = p.inFlight
	}
	p.inFlight -= n
	if p.obs.Enabled() {
		st := p.obs.Stats()
		st.Add("faas.killed", float64(n))
		st.Set("faas.in_flight", float64(p.inFlight))
		p.obs.Trace().InstantAt(float64(p.sh.Now()), "faas", "faas", "kill_sandboxes",
			obs.I("n", n), obs.I("in_flight", p.inFlight))
	}
	return n
}

// ReclaimWarm evicts up to n warm sandboxes before their TTL (capacity
// pressure on the provider side). Eviction order is deterministic: smallest
// memory size first, and within a size the sandbox closest to natural
// expiry (the queue head). Returns the number actually reclaimed.
func (p *Platform) ReclaimWarm(n int) int {
	if n <= 0 || p.warmTotal == 0 {
		return 0
	}
	sizes := make([]int, 0, len(p.warm))
	for memMB, c := range p.warm {
		if c > 0 {
			sizes = append(sizes, memMB)
		}
	}
	sort.Ints(sizes)
	reclaimed := 0
	for _, memMB := range sizes {
		for reclaimed < n && p.warm[memMB] > 0 {
			p.takeWarm(memMB)
			reclaimed++
		}
		if reclaimed == n {
			break
		}
	}
	if reclaimed > 0 && p.obs.Enabled() {
		st := p.obs.Stats()
		st.Add("faas.reclaimed", float64(reclaimed))
		st.Set("faas.warm_total", float64(p.warmTotal))
		p.obs.Trace().InstantAt(float64(p.sh.Now()), "faas", "faas", "reclaim_warm",
			obs.I("n", reclaimed), obs.I("warm_total", p.warmTotal))
	}
	return reclaimed
}

// SetColdSpikeFactor multiplies every subsequent cold-start draw by f
// (cold-start spike windows: image pulls and placement slow down under
// provider load). Factors below 1 reset to the neutral 1. The deterministic
// ColdStartEstimate is intentionally unaffected — planners keep estimating
// with the calm model, so a spike surfaces as estimation error, exactly the
// divergence the fault model exists to exercise.
func (p *Platform) SetColdSpikeFactor(f float64) {
	if f < 1 {
		f = 1
	}
	p.coldSpike = f
}
