// Package cost implements the paper's analytical models (§III-B): the
// execution time (Eq. 2-3) and monetary cost (Eq. 4-5) of one epoch of a
// serverless ML workflow under a resource allocation θ = (n, m, s), the
// enumeration of the allocation space Θ (Eq. 1), and the Pareto boundary of
// the cost-JCT plane used to prune bad allocations (Fig. 7).
package cost

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/faas"
	"repro/internal/pricing"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Allocation is one point θ = (n, m, s) of the allocation space.
type Allocation struct {
	N       int          // number of functions
	MemMB   int          // function memory size
	Storage storage.Kind // external storage service
}

func (a Allocation) String() string {
	return fmt.Sprintf("(n=%d, mem=%dMB, %s)", a.N, a.MemMB, a.Storage)
}

// Model is the analytic estimator for one workload. It is what the
// scheduler *believes*; the simulator in internal/trainer is the ground
// truth the estimates are validated against (Fig. 19-20).
//
// Per-allocation epoch estimates and per-grid Pareto sets are memoized: the
// adaptive scheduler (Algorithm 2) re-derives them on every δ-triggered
// recompute and the planner probes the same allocations thousands of times.
// Grid allocations live in a dense per-grid table built once by the first
// Enumerate/ParetoSet/ParetoFrontier call (one map probe + slice index per
// lookup); off-grid allocations fall back to a sync.Map. The caches assume
// the model is configured once and then treated as immutable: mutate
// LoadMBps / StragglerSigma only before the first estimate call. The caches
// are safe for concurrent readers.
type Model struct {
	Workload *workload.Model
	Prices   pricing.PriceBook
	Limits   faas.Limits

	// LoadMBps is B_S3 of Eq. 2: the bandwidth at which functions load
	// their dataset partitions from object storage.
	LoadMBps float64

	// StragglerSigma is the per-function log-normal compute-noise sigma the
	// model assumes when estimating the BSP barrier penalty (matching
	// trainer.DefaultNoise); the epoch waits for the slowest of n
	// functions, so expected compute time inflates with n. Zero disables
	// the correction.
	StragglerSigma float64

	services map[storage.Kind]*storage.Service

	epochMemo sync.Map     // off-grid Allocation -> epochEst
	mu        sync.Mutex   // guards table builds
	tables    atomic.Value // []*gridTable, copy-on-write append
}

// epochEst is the memoized per-epoch (t'(θ), c'(θ)) pair. Time and cost are
// cached together because every consumer of one is about to ask for the
// other (the cost depends on the epoch time for runtime-charged storage).
type epochEst struct {
	time float64
	cost float64
}

// epochEstimates returns the memoized estimates for θ, computing them once.
// Grid allocations resolve through the dense table; off-grid probes fall
// back to the sync.Map. Concurrent first calls may both compute; the
// arithmetic is deterministic, so whichever Store wins holds the same value.
func (m *Model) epochEstimates(a Allocation) epochEst {
	if ts, _ := m.tables.Load().([]*gridTable); ts != nil {
		for _, t := range ts {
			if idx, ok := t.index[a]; ok {
				return t.est[idx]
			}
		}
	}
	if v, ok := m.epochMemo.Load(a); ok {
		return v.(epochEst)
	}
	e := m.computeEpochEst(a)
	m.epochMemo.Store(a, e)
	return e
}

// computeEpochEst evaluates (t'(θ), c'(θ)) from scratch.
func (m *Model) computeEpochEst(a Allocation) epochEst {
	t := m.ComputeTime(a) + m.SyncTime(a)
	return epochEst{time: t, cost: m.functionEpochCost(a, t) + m.storageEpochCost(a, t)}
}

// NewModel returns an analytic model for w under default prices and limits.
func NewModel(w *workload.Model) *Model {
	return NewModelWith(w, pricing.Default(), faas.DefaultLimits())
}

// NewModelWith returns an analytic model with explicit prices and limits.
func NewModelWith(w *workload.Model, pb pricing.PriceBook, limits faas.Limits) *Model {
	m := &Model{Workload: w, Prices: pb, Limits: limits, LoadMBps: 80,
		StragglerSigma: 0.05,
		services:       make(map[storage.Kind]*storage.Service)}
	for _, k := range storage.ExtendedKinds() {
		m.services[k] = storage.New(k, pb)
	}
	return m
}

// Service returns the storage model for kind.
func (m *Model) Service(kind storage.Kind) *storage.Service { return m.services[kind] }

// Feasible reports whether θ can run the workload at all: the function
// memory must be allocatable and hold the data partition, the storage must
// accept the model size, and the function count must fit the concurrency
// cap.
func (m *Model) Feasible(a Allocation) bool {
	if a.N < 1 || a.N > m.Limits.MaxConcurrency {
		return false
	}
	if m.Limits.ValidateMemory(a.MemMB) != nil {
		return false
	}
	if !m.Workload.Feasible(a.N, a.MemMB) {
		return false
	}
	return m.services[a.Storage].Supports(m.Workload.ParamsMB)
}

// Iterations returns k = D/(n*b_z), the BSP iterations per epoch.
func (m *Model) Iterations(a Allocation) int {
	return m.Workload.IterationsPerEpoch(a.N)
}

// LoadTime returns t^l: the time for each function to load its data
// partition from object storage (Eq. 2 first term, D/(n*B_S3)).
func (m *Model) LoadTime(a Allocation) float64 {
	return m.Workload.Dataset.PartitionSizeMB(a.N) / m.LoadMBps
}

// ComputeTime returns the per-epoch gradient computation time: each
// function processes its D/n partition once per epoch at u(m) seconds/MB,
// inflated by the expected BSP straggler penalty (the barrier waits for the
// slowest of n functions).
func (m *Model) ComputeTime(a Allocation) float64 {
	base := m.Workload.Dataset.PartitionSizeMB(a.N) * m.Workload.U(a.MemMB)
	return base * m.stragglerFactor(a.N)
}

// stragglerFactor approximates E[max of n lognormal(0, sigma)] as
// exp(sigma * sqrt(2 ln n)).
func (m *Model) stragglerFactor(n int) float64 {
	if m.StragglerSigma <= 0 || n <= 1 {
		return 1
	}
	return math.Exp(m.StragglerSigma * math.Sqrt(2*math.Log(float64(n))))
}

// SyncTime returns the per-epoch parameter synchronization time:
// k * t^p(θ) with t^p from Eq. 3.
func (m *Model) SyncTime(a Allocation) float64 {
	svc := m.services[a.Storage]
	return float64(m.Iterations(a)) * svc.SyncTime(a.N, m.Workload.ParamsMB)
}

// EpochTime returns t'(θ) for a steady-state epoch (compute + sync; the
// one-time load and startup are accounted by JobTime).
func (m *Model) EpochTime(a Allocation) float64 {
	return m.epochEstimates(a).time
}

// FunctionEpochCost returns the per-epoch compute bill: n functions each
// running the epoch duration at p_f(m) (Eq. 4 second term).
func (m *Model) FunctionEpochCost(a Allocation) float64 {
	return m.functionEpochCost(a, m.EpochTime(a))
}

func (m *Model) functionEpochCost(a Allocation, epochTime float64) float64 {
	return float64(a.N) * m.Prices.ComputeOnlyCost(epochTime, float64(a.MemMB))
}

// StorageEpochCost returns c^s per epoch (Eq. 5): request charges for the
// k synchronizations (request-charged services) or the epoch's runtime
// share (runtime-charged services).
func (m *Model) StorageEpochCost(a Allocation) float64 {
	return m.storageEpochCost(a, m.EpochTime(a))
}

func (m *Model) storageEpochCost(a Allocation, epochTime float64) float64 {
	svc := m.services[a.Storage]
	if svc.ChargeModel() == storage.ByRequest {
		return float64(m.Iterations(a)) * svc.SyncRequestCost(a.N, m.Workload.ParamsMB)
	}
	return svc.RuntimeCost(epochTime)
}

// EpochCost returns c'(θ): the full per-epoch bill.
func (m *Model) EpochCost(a Allocation) float64 {
	return m.epochEstimates(a).cost
}

// InvocationCost returns the one-time n*p_ivk charge for invoking the
// function group (Eq. 4 first term), paid at start and on every restart.
func (m *Model) InvocationCost(a Allocation) float64 {
	return float64(a.N) * m.Prices.FunctionInvoke
}

// JobTime estimates the JCT of a training job of epochs epochs under one
// fixed allocation: startup + provisioning + load + epochs * epoch time.
func (m *Model) JobTime(a Allocation, epochs int) float64 {
	start := m.startupTime(a)
	return start + m.LoadTime(a) + float64(epochs)*m.EpochTime(a)
}

// StartupEstimate returns the deterministic startup latency of a fresh
// function group under θ: the cold start (or the storage provisioning
// delay when that dominates).
func (m *Model) StartupEstimate(a Allocation) float64 { return m.startupTime(a) }

func (m *Model) startupTime(a Allocation) float64 {
	cold := faas.DefaultStartup()
	t := cold.ColdBase + cold.ColdPerGB*float64(a.MemMB)/1024
	if p := m.services[a.Storage].ProvisionDelay(); p > t {
		t = p // storage provisioning overlaps function cold start
	}
	return t
}

// JobCost estimates the total bill of a training job of epochs epochs under
// one fixed allocation.
func (m *Model) JobCost(a Allocation, epochs int) float64 {
	c := m.InvocationCost(a) + storage.LoadCost(m.Prices, a.N)
	svc := m.services[a.Storage]
	if svc.ChargeModel() == storage.ByRequest {
		c += float64(epochs) * (m.FunctionEpochCost(a) + m.StorageEpochCost(a))
	} else {
		// Runtime-charged storage bills the whole JCT, not per-epoch slices.
		c += float64(epochs)*m.FunctionEpochCost(a) + svc.RuntimeCost(m.JobTime(a, epochs))
	}
	// Functions also bill their load time.
	c += float64(a.N) * m.Prices.ComputeOnlyCost(m.LoadTime(a), float64(a.MemMB))
	return c
}

// Point is one allocation with its per-epoch estimates.
type Point struct {
	Alloc Allocation
	Time  float64 // t'(θ) seconds per epoch
	Cost  float64 // c'(θ) dollars per epoch
}

// Grid describes the allocation space to enumerate.
type Grid struct {
	Ns       []int
	MemsMB   []int
	Storages []storage.Kind
}

// DefaultGrid returns the candidate grid used throughout the evaluation:
// function counts from 5 to 200, Lambda memory steps from 512 MB to 10 GB,
// and all four storage services.
func DefaultGrid() Grid {
	return Grid{
		Ns:       []int{5, 10, 15, 20, 25, 30, 40, 50, 75, 100, 150, 200},
		MemsMB:   []int{512, 1024, 1769, 2048, 3072, 4096, 6144, 8192, 10240},
		Storages: storage.Kinds(),
	}
}

// Enumerate evaluates every feasible allocation of the grid in grid order
// (n, then memory, then storage). The evaluation happens once per grid into
// the dense table (parallel scan, merged in grid order — byte-identical to
// a serial scan); subsequent calls return a fresh copy of the table's
// points.
func (m *Model) Enumerate(g Grid) []Point {
	total := len(g.Ns) * len(g.MemsMB) * len(g.Storages)
	if total == 0 {
		return nil
	}
	t := m.ensureTable(g)
	out := make([]Point, len(t.points))
	copy(out, t.points)
	return out
}

// scanGrid evaluates every grid point into index-addressed slots. The grid
// points are independent, so a bounded worker pool (one worker per
// available CPU) evaluates them concurrently.
func (m *Model) scanGrid(g Grid) (slots []Point, feasible []bool) {
	total := len(g.Ns) * len(g.MemsMB) * len(g.Storages)
	if total == 0 {
		return nil, nil
	}
	at := func(idx int) Allocation {
		k := idx % len(g.Storages)
		j := (idx / len(g.Storages)) % len(g.MemsMB)
		i := idx / (len(g.Storages) * len(g.MemsMB))
		return Allocation{N: g.Ns[i], MemMB: g.MemsMB[j], Storage: g.Storages[k]}
	}
	// One grid point costs ~150ns to evaluate, so workers claim chunks, not
	// points: one atomic op per chunk and contiguous slot writes (no false
	// sharing inside a chunk).
	const chunk = 512
	workers := runtime.GOMAXPROCS(0)
	if max := (total + chunk - 1) / chunk; workers > max {
		workers = max
	}
	slots = make([]Point, total)
	feasible = make([]bool, total)
	if workers <= 1 {
		enumerateRange(m, g, at, slots, feasible, 0, total)
	} else {
		var (
			next int64
			wg   sync.WaitGroup
		)
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					lo := int(atomic.AddInt64(&next, chunk)) - chunk
					if lo >= total {
						return
					}
					hi := lo + chunk
					if hi > total {
						hi = total
					}
					enumerateRange(m, g, at, slots, feasible, lo, hi)
				}
			}()
		}
		wg.Wait()
	}
	return slots, feasible
}

// enumerateRange evaluates grid points [lo, hi) into their slots.
func enumerateRange(m *Model, g Grid, at func(int) Allocation, slots []Point, feasible []bool, lo, hi int) {
	for idx := lo; idx < hi; idx++ {
		a := at(idx)
		if !m.Feasible(a) {
			continue
		}
		est := m.computeEpochEst(a)
		slots[idx] = Point{Alloc: a, Time: est.time, Cost: est.cost}
		feasible[idx] = true
	}
}

// enumerateSerial is the reference single-threaded scan Enumerate must
// match; kept for the equivalence test and the benchmark baseline.
func (m *Model) enumerateSerial(g Grid) []Point {
	var out []Point
	for _, n := range g.Ns {
		for _, mem := range g.MemsMB {
			for _, s := range g.Storages {
				a := Allocation{N: n, MemMB: mem, Storage: s}
				if !m.Feasible(a) {
					continue
				}
				out = append(out, Point{Alloc: a, Time: m.EpochTime(a), Cost: m.EpochCost(a)})
			}
		}
	}
	return out
}

// Pareto returns the Pareto boundary of points in the (time, cost) plane:
// the subset not dominated by any other point (θ2 is dominated when some θ1
// has both lower time and lower cost). The result is sorted by ascending
// time (hence descending cost).
func Pareto(points []Point) []Point {
	if len(points) == 0 {
		return nil
	}
	sorted := points
	if !strictlySorted(points) {
		sorted = make([]Point, len(points))
		copy(sorted, points)
		sort.Slice(sorted, func(i, j int) bool {
			if sorted[i].Time != sorted[j].Time {
				return sorted[i].Time < sorted[j].Time
			}
			return sorted[i].Cost < sorted[j].Cost
		})
	}
	var front []Point
	best := sorted[0].Cost + 1
	for _, p := range sorted {
		if p.Cost < best {
			front = append(front, p)
			best = p.Cost
		}
	}
	return front
}

// strictlySorted reports whether points are strictly increasing in the
// (Time, Cost) lexicographic order Pareto sorts by. On such input the sweep
// can run on the points directly (read-only) and skip the copy+sort: the
// sort would be the identity permutation, and strictness rules out equal
// (Time, Cost) pairs, the only elements an unstable sort may reorder. This
// makes re-deriving a boundary from an already-ordered frontier O(P).
func strictlySorted(points []Point) bool {
	for i := 1; i < len(points); i++ {
		p, q := &points[i-1], &points[i]
		if p.Time < q.Time {
			continue
		}
		if p.Time > q.Time || p.Cost >= q.Cost {
			return false
		}
	}
	return true
}

// ParetoSet enumerates the grid and returns its Pareto boundary — the 𝒫 of
// Table III that every optimization searches instead of the full Θ. The
// boundary is derived once per grid (and shared via the frontier intern);
// the caller receives a fresh copy it may mutate freely. Callers that can
// honor the no-mutation contract should prefer ParetoFrontier, which skips
// the copy.
func (m *Model) ParetoSet(g Grid) []Point {
	return append([]Point(nil), m.ParetoFrontier(g).Points()...)
}

// gridKey is a canonical signature of a grid, used (with the model
// signature) as the frontier intern key. Grids that differ only in slice
// identity hash the same. It is computed once per gridTable, not per
// lookup — table lookups compare the grid slices directly.
func gridKey(g Grid) string {
	return fmt.Sprintf("%v|%v|%v", g.Ns, g.MemsMB, g.Storages)
}

// Dominates reports whether p strictly dominates q (better or equal in both
// dimensions, strictly better in at least one).
func Dominates(p, q Point) bool {
	return p.Time <= q.Time && p.Cost <= q.Cost && (p.Time < q.Time || p.Cost < q.Cost)
}
