package experiments

import (
	"bytes"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
)

// renderMacroTrace runs macro-trace at the given kernel configuration and
// returns the rendered table plus the merged trace and metrics exports.
func renderMacroTrace(t *testing.T, seed uint64, shards, workers int) (table, trace, metrics string) {
	t.Helper()
	SetMacroSharding(shards, workers)
	defer SetMacroSharding(0, 0)
	c := obs.NewCollector()
	SetCollector(c)
	defer SetCollector(nil)

	tab, err := Run("macro-trace", seed)
	if err != nil {
		t.Fatalf("macro-trace(shards=%d workers=%d): %v", shards, workers, err)
	}
	var tb, mb bytes.Buffer
	if err := obs.WriteJSONL(&tb, c.Scopes()); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteMetricsJSON(&mb, c.Scopes()); err != nil {
		t.Fatal(err)
	}
	return tab.String(), tb.String(), mb.String()
}

// TestMacroTraceShardMatrix is the acceptance gate for the traffic engine:
// the scenario's table, trace export and metrics export must be
// byte-identical at every (shards, workers) combination, including the
// parallel executor — arrivals are generated per-tenant from named rand
// streams and every cross-tenant tie is broken by a globally unique
// priority. (scripts/check.sh additionally pins the cebench -parallel
// settings over the same matrix.)
func TestMacroTraceShardMatrix(t *testing.T) {
	SetTrafficScale(9, 1.0, 300)
	defer SetTrafficScale(0, 0, 0)

	refTab, refTrace, refMetrics := renderMacroTrace(t, 11, 1, 1)
	if len(refTrace) < 100 {
		t.Fatalf("reference trace implausibly small: %d bytes", len(refTrace))
	}
	for _, shards := range []int{1, 2, 8} {
		for _, workers := range []int{1, 8} {
			if shards == 1 && workers == 1 {
				continue
			}
			name := fmt.Sprintf("shards=%d,workers=%d", shards, workers)
			tab, trace, metrics := renderMacroTrace(t, 11, shards, workers)
			if tab != refTab {
				t.Errorf("%s: table diverges from shards=1,workers=1:\n--- ref\n%s\n--- got\n%s", name, refTab, tab)
			}
			if trace != refTrace {
				t.Errorf("%s: trace export diverges (%d vs %d bytes)", name, len(refTrace), len(trace))
			}
			if metrics != refMetrics {
				t.Errorf("%s: metrics export diverges", name)
			}
		}
	}
}

// TestMacroTraceKindsShardStable runs the non-default generators (and the
// trace-replay path) through the same byte-identity check at one parallel
// setting, so every cursor kind is pinned, not just the default diurnal.
func TestMacroTraceKindsShardStable(t *testing.T) {
	SetTrafficScale(6, 1.0, 240)
	defer SetTrafficScale(0, 0, 0)
	defer SetTrafficKind("")
	defer SetTraceData(nil)

	// Two synthetic rows, replayed round-robin by 6 tenants.
	if err := SetTraceData([]byte("3,0,9,2\n1,5,0,4\n")); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"poisson", "bursty", "trace"} {
		if err := SetTrafficKind(kind); err != nil {
			t.Fatal(err)
		}
		ref, _, _ := renderMacroTrace(t, 3, 1, 1)
		got, _, _ := renderMacroTrace(t, 3, 8, 8)
		if ref != got {
			t.Errorf("kind=%s: table diverges between shards=1,workers=1 and shards=8,workers=8:\n--- ref\n%s\n--- got\n%s", kind, ref, got)
		}
		if !strings.Contains(ref, "kind="+kind) {
			t.Errorf("kind=%s: note does not record the kind:\n%s", kind, ref)
		}
	}
}

// TestMacroTraceReplayCountsMatchTrace: with kind=trace, the scenario's
// arrival column equals the replayed rows' totals exactly — the cursor
// neither drops nor invents arrivals.
func TestMacroTraceReplayCountsMatchTrace(t *testing.T) {
	SetTrafficScale(2, 1.0, 600)
	defer SetTrafficScale(0, 0, 0)
	defer SetTrafficKind("")
	defer SetTraceData(nil)
	if err := SetTrafficKind("trace"); err != nil {
		t.Fatal(err)
	}
	if err := SetTraceData([]byte("2,7,0,3\n5,0,0,1\n")); err != nil {
		t.Fatal(err)
	}
	tab, err := Run("macro-trace", 5)
	if err != nil {
		t.Fatal(err)
	}
	totalRow := tab.Rows[len(tab.Rows)-1]
	// Columns: class tenants memMB arrivals completed dropped cold p50s p95s cost$.
	if want := "18"; totalRow[3] != want {
		t.Errorf("total arrivals = %s, want %s (sum of both trace rows)", totalRow[3], want)
	}
}

// TestMacroTraceKindRequiresData: the trace kind without installed data is
// a configuration error, not a silent empty run.
func TestMacroTraceKindRequiresData(t *testing.T) {
	defer SetTrafficKind("")
	if err := SetTrafficKind("trace"); err != nil {
		t.Fatal(err)
	}
	if _, err := Run("macro-trace", 1); err == nil {
		t.Fatal("macro-trace ran with kind=trace and no trace data")
	}
}

// TestMacroTraceSeedSensitivity guards against the scenario collapsing
// into a constant: different seeds must produce different traffic.
func TestMacroTraceSeedSensitivity(t *testing.T) {
	SetTrafficScale(4, 1.0, 240)
	defer SetTrafficScale(0, 0, 0)
	a, err := Run("macro-trace", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("macro-trace", 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() == b.String() {
		t.Fatal("macro-trace output identical across seeds")
	}
}

var noteNum = regexp.MustCompile(`(denials|retries|windows|invocations|events)=([0-9]+)`)

// TestMacroTraceExercisesContention checks the default-scale scenario
// stresses the shared-account paths: completions, cold starts, retries
// under the cap, fairness windows, and a conservative latency quantile.
func TestMacroTraceExercisesContention(t *testing.T) {
	if testing.Short() {
		t.Skip("default-scale macro run skipped in -short mode")
	}
	tab, err := Run("macro-trace", 7)
	if err != nil {
		t.Fatal(err)
	}
	total := tab.Rows[len(tab.Rows)-1]
	// Columns: class tenants memMB arrivals completed dropped cold p50s p95s cost$.
	if total[4] == "0" {
		t.Error("no completions")
	}
	if total[6] == "0" {
		t.Error("no cold starts")
	}
	if total[7] == "0" || total[8] == "0" {
		t.Errorf("latency quantiles empty: p50=%s p95=%s", total[7], total[8])
	}
	nums := map[string]int{}
	for _, m := range noteNum.FindAllStringSubmatch(tab.Notes, -1) {
		n, _ := strconv.Atoi(m[2])
		nums[m[1]] = n
	}
	if nums["retries"] == 0 {
		t.Error("no retries: the shared concurrency cap never bound")
	}
	if nums["windows"] < 10 {
		t.Errorf("only %d fairness windows over a 1800s horizon", nums["windows"])
	}
	if nums["invocations"] < 10000 {
		t.Errorf("only %d invocations at the default scale", nums["invocations"])
	}
	if !strings.Contains(tab.Notes, "jain mean=") {
		t.Error("note missing the fairness summary")
	}
}
