// Package outer holds the annotated callers of package inner: the clean
// cross-package call must stay silent, the dirty one must report with
// inner's own allocation site as the reason.
package outer

import "repro/internal/lint/testdata/hotpathfacts/inner"

//cescalint:hotpath
func UsesClean(v float64) float64 {
	return inner.Scale(v, 2)
}

//cescalint:hotpath
func UsesDirty(n int) int {
	return len(inner.Grow(n))
}
