// Package cluster schedules multiple training jobs on one shared serverless
// substrate: the account-level concurrency cap becomes a contended resource,
// jobs queue when their function groups cannot be admitted, and the
// discrete-event kernel interleaves their epochs on the shared virtual
// clock. This is the multi-tenant setting the paper's related work (SLAQ,
// Optimus) schedules for; CE-scaling plans per job, and this package shows
// what happens when those plans meet each other.
package cluster

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/faas"
	"repro/internal/sim"
	"repro/internal/trainer"
)

// Submission is one job plus its arrival time on the cluster clock.
type Submission struct {
	Name    string
	Arrival float64 // seconds
	Config  trainer.Config
}

// Outcome reports one completed job.
type Outcome struct {
	Name    string
	Arrival float64
	// Admitted is when the job's function group was actually admitted
	// (>= Arrival when it had to queue).
	Admitted float64
	// Finished is the cluster time the job completed.
	Finished float64
	// QueueDelay = Admitted - Arrival.
	QueueDelay float64
	Result     *trainer.Result
}

// Makespan helpers.
func (o *Outcome) TurnaroundTime() float64 { return o.Finished - o.Arrival }

// Run executes the submissions on the runner's substrate and returns the
// outcomes in completion order. Jobs whose admission is rejected by the
// concurrency cap wait in FIFO order and are retried whenever another job
// finishes. Jobs should use fixed allocations (no controller-driven
// restarts): a mid-job group change could itself be throttled, which the
// scheduler does not arbitrate.
func Run(r *trainer.Runner, subs []Submission) ([]*Outcome, error) {
	for i, s := range subs {
		if s.Config.Controller != nil {
			return nil, fmt.Errorf("cluster: submission %d (%s) has a controller; cluster jobs must use fixed allocations", i, s.Name)
		}
		if s.Arrival < 0 {
			return nil, fmt.Errorf("cluster: submission %d (%s) arrives at negative time", i, s.Name)
		}
	}

	type runningJob struct {
		sub     Submission
		job     *trainer.Job
		out     *Outcome
		stepped float64 // job-relative time already scheduled
	}
	var (
		outcomes []*Outcome
		waiting  []*runningJob
		errOut   error
	)

	// The cluster scheduler interleaves jobs on the shared virtual clock, so
	// it needs the discrete-event kernel underneath the runner's backend.
	des, ok := r.Backend.(interface{ Sim() *sim.Simulation })
	if !ok {
		return nil, fmt.Errorf("cluster: runner backend %q does not expose a discrete-event kernel", r.Backend.Name())
	}
	s := des.Sim()

	var admit func(rj *runningJob)
	var stepEvent func(rj *runningJob)
	var drainQueue func()

	finish := func(rj *runningJob) {
		rj.out.Result = rj.job.Finish()
		rj.out.Finished = rj.out.Admitted + rj.job.Elapsed()
		outcomes = append(outcomes, rj.out)
		drainQueue()
	}

	stepEvent = func(rj *runningJob) {
		if errOut != nil {
			return
		}
		if rj.job.Done() {
			finish(rj)
			return
		}
		if err := rj.job.Step(); err != nil {
			errOut = err
			return
		}
		// Schedule the next wake-up at the epoch boundary the job reached.
		delta := rj.job.Elapsed() - rj.stepped
		rj.stepped = rj.job.Elapsed()
		if delta < 0 {
			delta = 0
		}
		s.ScheduleAfter(delta, func() { stepEvent(rj) })
	}

	admit = func(rj *runningJob) {
		job, err := r.StartJob(rj.sub.Config)
		if err != nil {
			if errors.Is(err, faas.ErrConcurrencyExceeded) {
				waiting = append(waiting, rj)
				return
			}
			errOut = err
			return
		}
		rj.job = job
		rj.out.Admitted = float64(s.Now())
		rj.out.QueueDelay = rj.out.Admitted - rj.out.Arrival
		// The startup+load already elapsed inside StartJob; schedule the
		// first epoch after it.
		rj.stepped = job.Elapsed()
		s.ScheduleAfter(job.Elapsed(), func() { stepEvent(rj) })
	}

	drainQueue = func() {
		for len(waiting) > 0 {
			head := waiting[0]
			before := len(waiting)
			waiting = waiting[1:]
			admit(head)
			if len(waiting) == before {
				// Re-queued: still no capacity; stop trying (FIFO).
				return
			}
		}
	}

	for _, sub := range subs {
		sub := sub
		rj := &runningJob{sub: sub, out: &Outcome{Name: sub.Name, Arrival: sub.Arrival}}
		s.Schedule(sim.Time(sub.Arrival), func() { admit(rj) })
	}
	s.Run()
	if errOut != nil {
		return nil, errOut
	}
	if len(outcomes) != len(subs) {
		return nil, fmt.Errorf("cluster: %d of %d jobs completed (deadlocked queue?)", len(outcomes), len(subs))
	}
	sort.Slice(outcomes, func(i, j int) bool { return outcomes[i].Finished < outcomes[j].Finished })
	return outcomes, nil
}

// Makespan returns the latest completion time across outcomes.
func Makespan(outs []*Outcome) float64 {
	var m float64
	for _, o := range outs {
		if o.Finished > m {
			m = o.Finished
		}
	}
	return m
}
