// Command cescale produces CE-scaling resource allocation plans as JSON —
// the configuration file the paper's implementation feeds to Lambda
// (§IV-A "CE-scaling outputs a configuration file in JSON").
//
// Usage:
//
//	cescale -model LR-Higgs -mode train -budget 5
//	cescale -model MobileNet-Cifar10 -mode tune -trials 512 -qos 7200
//	cescale -model BERT-IMDb -mode profile
//
// Modes:
//
//	profile  print the workload's Pareto boundary (epoch time/cost per θ)
//	tune     plan hyperparameter tuning: one allocation per SHA stage
//	train    pick the initial training allocation from the offline estimate
//	run      execute a full training job and report the measured JCT, cost
//	         and allocation timeline
//
// The -backend flag selects the substrate run mode executes on: "sim" (the
// default discrete-event simulation) or "live" (real concurrent workers in
// the local serverless executor, synchronizing over HTTP object storage and
// TCP parameter servers).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/cescaling"
	"repro/internal/obs"
	"repro/internal/platform/livebackend"
)

type allocJSON struct {
	Functions int    `json:"functions"`
	MemoryMB  int    `json:"memory_mb"`
	Storage   string `json:"storage"`
}

type pointJSON struct {
	Alloc         allocJSON `json:"allocation"`
	EpochTimeSec  float64   `json:"epoch_time_sec"`
	EpochCostUSD  float64   `json:"epoch_cost_usd"`
	ParetoOptimal bool      `json:"pareto_optimal"`
}

type stageJSON struct {
	Stage  int       `json:"stage"`
	Trials int       `json:"trials"`
	Epochs int       `json:"epochs"`
	Alloc  allocJSON `json:"allocation"`
}

type tuneJSON struct {
	Model        string      `json:"model"`
	Constraint   string      `json:"constraint"`
	Stages       []stageJSON `json:"stages"`
	PredictedJCT float64     `json:"predicted_jct_sec"`
	PredictedUSD float64     `json:"predicted_cost_usd"`
	Feasible     bool        `json:"feasible"`
}

type phaseJSON struct {
	Epochs int       `json:"epochs"`
	Alloc  allocJSON `json:"allocation"`
}

type runJSON struct {
	Model         string      `json:"model"`
	Constraint    string      `json:"constraint"`
	Converged     bool        `json:"converged"`
	Epochs        int         `json:"epochs"`
	FinalLoss     float64     `json:"final_loss"`
	JCTSec        float64     `json:"jct_sec"`
	ComputeSec    float64     `json:"compute_sec"`
	SyncSec       float64     `json:"sync_sec"`
	OverheadSec   float64     `json:"overhead_sec"`
	CostUSD       float64     `json:"cost_usd"`
	FunctionUSD   float64     `json:"function_cost_usd"`
	StorageUSD    float64     `json:"storage_cost_usd"`
	Restarts      int         `json:"restarts"`
	OfflineEpochs int         `json:"offline_epoch_estimate"`
	Timeline      []phaseJSON `json:"allocation_timeline"`
}

type trainJSON struct {
	Model            string    `json:"model"`
	Constraint       string    `json:"constraint"`
	OfflineEpochs    int       `json:"offline_epoch_estimate"`
	InitialAlloc     allocJSON `json:"initial_allocation"`
	Delta            float64   `json:"delta"`
	DelayedRestart   bool      `json:"delayed_restart"`
	ParetoCandidates int       `json:"pareto_candidates"`
}

func toAllocJSON(a cescaling.Allocation) allocJSON {
	return allocJSON{Functions: a.N, MemoryMB: a.MemMB, Storage: a.Storage.String()}
}

func main() {
	var (
		model   = flag.String("model", "LR-Higgs", "workload (LR-Higgs, SVM-Higgs, MobileNet-Cifar10, ResNet50-Cifar10, BERT-IMDb, LR-YFCC, SVM-YFCC)")
		mode    = flag.String("mode", "profile", "profile | tune | train | run")
		budget  = flag.Float64("budget", 0, "budget constraint in USD (minimize JCT)")
		qos     = flag.Float64("qos", 0, "QoS deadline in seconds (minimize cost)")
		trials  = flag.Int("trials", 512, "tuning trial population")
		eta     = flag.Int("eta", 2, "SHA reduction factor")
		epochs  = flag.Int("stage-epochs", 2, "epochs per tuning stage")
		seed    = flag.Uint64("seed", 2023, "deterministic seed")
		trace   = flag.String("trace", "", "run mode: also write the per-epoch trace to this CSV file")
		backend = flag.String("backend", "sim", "run mode substrate: sim | live")
		// Deterministic observability (tune and run modes): event traces are
		// stamped with the simulated clock, so repeat runs with the same seed
		// produce byte-identical files. Stdout is unaffected either way.
		traceOut   = flag.String("trace-out", "", "write an event trace to this file (.jsonl = JSON lines, else Chrome trace-event JSON for Perfetto)")
		metricsOut = flag.String("metrics-out", "", "write a metrics snapshot (counters/gauges/histograms) to this JSON file")
	)
	flag.Parse()

	w, err := cescaling.ModelByName(*model)
	if err != nil {
		fatal(err)
	}
	var observer *obs.Observer
	if *traceOut != "" || *metricsOut != "" {
		observer = obs.New()
	}
	fw := cescaling.New(w)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")

	switch *mode {
	case "profile":
		onFront := map[cescaling.Allocation]bool{}
		for _, p := range fw.Pareto {
			onFront[p.Alloc] = true
		}
		out := make([]pointJSON, 0, len(fw.Full))
		for _, p := range fw.Full {
			out = append(out, pointJSON{
				Alloc: toAllocJSON(p.Alloc), EpochTimeSec: p.Time, EpochCostUSD: p.Cost,
				ParetoOptimal: onFront[p.Alloc],
			})
		}
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}

	case "tune":
		res, pl, err := fw.PlanHPT(*trials, *eta, *epochs, cescaling.Options{Budget: *budget, QoS: *qos, Seed: *seed, Obs: observer})
		if err != nil {
			fatal(err)
		}
		stages := cescaling.SHAStages(*trials, *eta, *epochs)
		out := tuneJSON{
			Model: w.Name, Constraint: constraintString(*budget, *qos),
			PredictedJCT: res.JCT, PredictedUSD: res.Cost, Feasible: res.Feasible,
		}
		for i, a := range res.Plan.Stages {
			out.Stages = append(out.Stages, stageJSON{
				Stage: i + 1, Trials: stages[i].Trials, Epochs: stages[i].Epochs,
				Alloc: toAllocJSON(a),
			})
		}
		_ = pl
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}

	case "train":
		if (*budget > 0) == (*qos > 0) {
			fatal(fmt.Errorf("train mode needs exactly one of -budget or -qos"))
		}
		off := cescaling.NewOffline(w)
		est := off.PredictEpochs(w.TargetLoss, *seed)
		// Reuse the framework's candidate selection by planning the initial
		// allocation the way the adaptive scheduler would.
		best, ok := pickInitial(fw, *budget, *qos, est)
		if !ok {
			fatal(fmt.Errorf("no feasible allocation for %s under the constraint", w.Name))
		}
		out := trainJSON{
			Model: w.Name, Constraint: constraintString(*budget, *qos),
			OfflineEpochs: est, InitialAlloc: toAllocJSON(best),
			Delta: 0.1, DelayedRestart: true, ParetoCandidates: len(fw.Pareto),
		}
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}

	case "run":
		if (*budget > 0) == (*qos > 0) {
			fatal(fmt.Errorf("run mode needs exactly one of -budget or -qos"))
		}
		runner, err := cescaling.NewRunnerWithConfig(cescaling.Config{Backend: *backend, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		if observer != nil {
			runner.SetObserver(observer)
		}
		out, err := fw.Train(cescaling.Options{Budget: *budget, QoS: *qos, Seed: *seed}, runner)
		if err != nil {
			cescaling.CloseRunner(runner)
			fatal(err)
		}
		if lb, ok := runner.Backend.(*livebackend.Backend); ok {
			s := lb.Stats()
			fmt.Fprintf(os.Stderr,
				"cescale: live substrate: %d invocations (%d cold), %d epoch barriers, %d object puts, %d gets, %d parameter-server rounds\n",
				s.Invocations, s.ColdStarts, s.EpochBarriers, s.ObjPuts, s.ObjGets, s.PSRounds)
		}
		if err := cescaling.CloseRunner(runner); err != nil {
			fatal(err)
		}
		r := out.Result
		rep := runJSON{
			Model: w.Name, Constraint: constraintString(*budget, *qos),
			Converged: r.Converged, Epochs: r.Epochs, FinalLoss: r.FinalLoss,
			JCTSec: r.JCT, ComputeSec: r.ComputeTime, SyncSec: r.SyncTime, OverheadSec: r.OverheadTime,
			CostUSD: r.TotalCost, FunctionUSD: r.FunctionCost, StorageUSD: r.StorageCost,
			Restarts: r.Restarts, OfflineEpochs: out.OfflineEstimate,
		}
		// Compress the trace into allocation phases.
		for i := 0; i < len(r.Trace); {
			j := i
			for j < len(r.Trace) && r.Trace[j].Alloc == r.Trace[i].Alloc {
				j++
			}
			rep.Timeline = append(rep.Timeline, phaseJSON{Epochs: j - i, Alloc: toAllocJSON(r.Trace[i].Alloc)})
			i = j
		}
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		if *trace != "" {
			f, err := os.Create(*trace)
			if err != nil {
				fatal(err)
			}
			if err := cescaling.WriteTraceCSV(f, r.Trace); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "cescale: wrote %d-epoch trace to %s\n", len(r.Trace), *trace)
		}

	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	if observer != nil {
		if err := exportObserver(observer, *traceOut, *metricsOut); err != nil {
			fatal(err)
		}
	}
}

// exportObserver writes the collected trace and/or metrics files. Profile
// and train modes run no instrumented work, so their files are valid but
// empty.
func exportObserver(o *obs.Observer, tracePath, metricsPath string) error {
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := o.WriteTrace(f, tracePath); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "cescale: wrote event trace to %s\n", tracePath)
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := o.WriteMetrics(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "cescale: wrote metrics to %s\n", metricsPath)
	}
	return nil
}

func pickInitial(fw *cescaling.Framework, budget, qos float64, est int) (cescaling.Allocation, bool) {
	bestVal := -1.0
	var best cescaling.Allocation
	found := false
	for _, p := range fw.Pareto {
		t := float64(est) * p.Time
		c := float64(est) * p.Cost
		if budget > 0 {
			if c > budget {
				continue
			}
			if !found || t < bestVal {
				bestVal, best, found = t, p.Alloc, true
			}
		} else {
			if t > qos {
				continue
			}
			if !found || c < bestVal {
				bestVal, best, found = c, p.Alloc, true
			}
		}
	}
	return best, found
}

func constraintString(budget, qos float64) string {
	if budget > 0 {
		return fmt.Sprintf("budget $%.2f", budget)
	}
	return fmt.Sprintf("qos %.0fs", qos)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "cescale: %v\n", err)
	os.Exit(1)
}
