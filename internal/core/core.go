// Package core wires the paper's components into the CE-scaling framework
// (Fig. 6): the Pareto profiler builds the per-epoch cost/JCT models and
// prunes the allocation space; the greedy heuristic planner partitions
// resources across hyperparameter-tuning stages before tuning starts; the
// adaptive scheduler adjusts training allocations at runtime from the loss
// curve fitter's online predictions.
package core

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/cost"
	"repro/internal/obs"
	"repro/internal/planner"
	"repro/internal/platform"
	"repro/internal/predictor"
	"repro/internal/scheduler"
	"repro/internal/sha"
	"repro/internal/trainer"
	"repro/internal/workload"
)

// Framework is one CE-scaling instance bound to a workload.
type Framework struct {
	Workload *workload.Model
	Model    *cost.Model
	Grid     cost.Grid
	// Full is the feasible allocation enumeration; Pareto its boundary.
	Full   []cost.Point
	Pareto []cost.Point
	// Frontier is the boundary as an immutable shared view, interned per
	// model configuration: every scheduler session of every framework with
	// the same workload/pricing/grid shares this one instance.
	Frontier *cost.Frontier
}

// New profiles the workload over the default grid.
func New(w *workload.Model) *Framework {
	return NewWithGrid(w, cost.DefaultGrid())
}

// NewWithGrid profiles the workload over an explicit grid.
func NewWithGrid(w *workload.Model, g cost.Grid) *Framework {
	m := cost.NewModel(w)
	return &Framework{
		Workload: w,
		Model:    m,
		Grid:     g,
		Full:     m.Enumerate(g),
		Pareto:   m.ParetoSet(g),
		Frontier: m.ParetoFrontier(g),
	}
}

// Options tune a planning or training session.
type Options struct {
	// Exactly one of Budget (minimize JCT) or QoS (minimize cost, seconds)
	// must be positive.
	Budget float64
	QoS    float64

	// Delta is the online-prediction drift threshold (default 0.1).
	Delta float64
	// DisableDelayedRestart turns off the Fig. 8 overlap (WO-dr ablation).
	DisableDelayedRestart bool
	// DisablePareto searches the full enumeration (WO-pa ablation).
	DisablePareto bool
	// PinStorage, when non-nil, restricts allocations to one storage
	// service (the Fig. 16-18 experiments).
	PinStorage *platform.StorageKind

	// Obs, when set, receives the planner's per-stage decisions and the
	// scheduler's per-epoch Algorithm 2 decision log. Train and RunHPT fall
	// back to the runner's observer when nil, so attaching a sink to the
	// runner instruments the whole session.
	Obs *obs.Observer

	Seed uint64
}

func (o Options) validate() error {
	if (o.Budget > 0) == (o.QoS > 0) {
		return fmt.Errorf("core: exactly one of Budget or QoS must be positive (budget=%g qos=%g)", o.Budget, o.QoS)
	}
	return nil
}

// candidates returns the allocation set a session searches under opt.
// Pinning restricts the space *before* Pareto pruning: CE-scaling limited
// to one storage service computes the frontier of that service's
// allocations, which can differ entirely from the all-service frontier.
func (f *Framework) candidates(opt Options) []cost.Point {
	if opt.PinStorage != nil {
		pinned := baselines.FilterByStorage(f.Full, *opt.PinStorage)
		if opt.DisablePareto {
			return pinned
		}
		return cost.Pareto(pinned)
	}
	if opt.DisablePareto {
		return f.Full
	}
	return f.Pareto
}

// --- Hyperparameter tuning ---

// TuneOutcome carries the plan and, when executed, the measured run.
type TuneOutcome struct {
	Plan    planner.Result
	Planner *planner.Planner
	Run     *sha.Result
}

// PlanHPT builds the stage structure and runs the greedy heuristic planner
// (Algorithm 1) under opt's constraint.
func (f *Framework) PlanHPT(trials, eta, epochsPerStage int, opt Options) (planner.Result, *planner.Planner, error) {
	if err := opt.validate(); err != nil {
		return planner.Result{}, nil, err
	}
	stages := planner.SHAStages(trials, eta, epochsPerStage)
	pts := f.candidates(opt)
	pl, err := planner.New(f.Model, stages, pts)
	if err != nil {
		return planner.Result{}, nil, err
	}
	if opt.Delta > 0 {
		pl.Delta = opt.Delta
	}
	pl.Obs = opt.Obs
	var res planner.Result
	if opt.Budget > 0 {
		res = pl.PlanMinJCT(opt.Budget)
	} else {
		res = pl.PlanMinCost(opt.QoS)
	}
	return res, pl, nil
}

// RunHPT plans and then executes the tuning workflow on the simulated
// substrate, returning both the plan and the measured run.
func (f *Framework) RunHPT(trials, eta, epochsPerStage int, opt Options, runner *trainer.Runner) (*TuneOutcome, error) {
	if opt.Obs == nil {
		opt.Obs = runner.Observer()
	}
	plan, pl, err := f.PlanHPT(trials, eta, epochsPerStage, opt)
	if err != nil {
		return nil, err
	}
	run, err := sha.Run(sha.Config{
		Workload: f.Workload,
		Trials:   trials,
		Eta:      eta, EpochsPerStage: epochsPerStage,
		Plan:   plan.Plan,
		Runner: runner,
		Seed:   opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &TuneOutcome{Plan: plan, Planner: pl, Run: run}, nil
}

// --- Model training ---

// TrainOutcome carries the measured run and the scheduler that drove it.
type TrainOutcome struct {
	Result    *trainer.Result
	Scheduler *scheduler.Scheduler
	// OfflineEstimate is the warm-start epoch prediction.
	OfflineEstimate int
}

// newSchedulerSession builds an adaptive scheduling session for opt and
// returns the scheduler, its initial allocation and the offline estimate.
func (f *Framework) newSchedulerSession(opt Options) (*scheduler.Scheduler, cost.Allocation, int, error) {
	// The plain Pareto case hands the session the shared immutable frontier
	// — no per-session copy; pinned or full-enumeration sessions get their
	// private candidate slice as before.
	var frontier *cost.Frontier
	var candidates []cost.Point
	if opt.PinStorage == nil && !opt.DisablePareto {
		frontier = f.Frontier
	} else {
		candidates = f.candidates(opt)
	}
	sched := scheduler.New(scheduler.Config{
		Model:          f.Model,
		Candidates:     candidates,
		Frontier:       frontier,
		Budget:         opt.Budget,
		QoS:            opt.QoS,
		TargetLoss:     f.Workload.TargetLoss,
		Delta:          opt.Delta,
		DelayedRestart: !opt.DisableDelayedRestart,
		Offline:        predictor.NewOffline(f.Workload),
		OfflineSeed:    opt.Seed,
		Obs:            opt.Obs,
	})
	alloc, est := sched.Initial()
	if alloc.N == 0 {
		return nil, cost.Allocation{}, 0, fmt.Errorf("core: no feasible initial allocation for %s", f.Workload.Name)
	}
	return sched, alloc, est, nil
}

// Train runs a training job to the workload's target loss under the
// adaptive scheduler (Algorithm 2).
func (f *Framework) Train(opt Options, runner *trainer.Runner) (*TrainOutcome, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if opt.Obs == nil {
		opt.Obs = runner.Observer()
	}
	sched, alloc, est, err := f.newSchedulerSession(opt)
	if err != nil {
		return nil, err
	}
	engine := f.Workload.NewEngine(workload.Hyperparams{LR: f.Workload.DefaultLR}, opt.Seed)
	res, err := runner.Run(trainer.Config{
		Workload:   f.Workload,
		Engine:     engine,
		Alloc:      alloc,
		TargetLoss: f.Workload.TargetLoss,
		MaxEpochs:  2000,
		Controller: sched.Controller(),
	})
	if err != nil {
		return nil, err
	}
	return &TrainOutcome{Result: res, Scheduler: sched, OfflineEstimate: est}, nil
}
