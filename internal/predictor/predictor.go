// Package predictor estimates how many epochs a training job needs to reach
// its target loss, in the two styles the paper contrasts (§II-C2, Fig. 4):
//
//   - Offline: the LambdaML-style sampling method — pre-train on a small
//     sample of the data for a few epochs before the job starts and
//     extrapolate. Cheap but inaccurate (the paper measures up to ~40%
//     average error), because a subsample converges differently and early
//     epochs poorly constrain the curve's tail.
//   - Online: observe the real job's loss after every epoch, fit the
//     convergence curve l(e) = 1/(a*e+b) + c, and solve for the target.
//     Error shrinks as epochs accumulate (~5% average in the paper).
package predictor

import (
	"math"

	"repro/internal/fit"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Offline is the sampling-based pre-training predictor.
type Offline struct {
	Model *workload.Model
	// SampleFraction is the fraction of data the sample represents; smaller
	// samples distort convergence speed more.
	SampleFraction float64
}

// NewOffline returns the LambdaML-style predictor with its default sample
// size (10% of the data).
func NewOffline(m *workload.Model) *Offline {
	return &Offline{Model: m, SampleFraction: 0.1}
}

// PredictEpochs estimates the total epochs to reach target with the
// LambdaML sampling method: pre-train on a small sample of the data until
// the target loss (cheap, because the sample is small) and report the epoch
// count. The estimate inherits the sample's convergence bias — a subsample
// converges differently than the full data — which is exactly the ~40%
// average error the paper measures in Fig. 4(a). seed controls the sample
// draw.
func (o *Offline) PredictEpochs(target float64, seed uint64) int {
	const horizon = 400
	eng := o.sampleEngine(seed)
	trace := make([]float64, 0, 64)
	for e := 1; e <= horizon; e++ {
		loss := eng.NextEpoch()
		trace = append(trace, loss)
		if loss <= target {
			return e
		}
	}
	// The sample never reached the target (its loss floor sits above it):
	// extrapolate a curve fit through the sampled trace.
	xs := make([]float64, len(trace))
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	if res, err := fit.Fit(fit.InverseLinear{}, xs, trace, fit.Options{}); err == nil {
		if e, ok := fit.SolveForX(res.Params, target); ok {
			return clampEpochs(e)
		}
	}
	return clampEpochs(horizon * 2)
}

// sampleEngine builds the pre-training engine. Real models genuinely train
// on a reduced sample (whose convergence differs from the full data); curve
// models emulate the sampling distortion by perturbing the curve speed.
func (o *Offline) sampleEngine(seed uint64) workload.Engine {
	hp := workload.Hyperparams{LR: o.Model.DefaultLR}
	if o.Model.Real() {
		rows := int(float64(workload.RealEngineRows) * o.SampleFraction)
		if rows < 200 {
			rows = 200
		}
		if eng, err := o.Model.NewRealEngine(hp, rows, seed^0x5a3f); err == nil {
			return eng
		}
	}
	// Sampling distortion: the subsample's curve speed is a biased draw
	// around the truth; less data, more bias.
	distort := sim.NewRand(seed ^ 0xb1a5)
	m := *o.Model
	sigma := 0.25 + 0.15*(1-o.SampleFraction)
	m.Curve.A *= distort.LogNormal(0, sigma)
	return m.NewCurveEngine(hp, seed^0x0ff1)
}

func clampEpochs(e float64) int {
	if math.IsNaN(e) || e < 1 {
		return 1
	}
	if e > 100000 {
		return 100000
	}
	return int(math.Ceil(e - 1e-9))
}

// Online is the runtime convergence-curve fitter.
type Online struct {
	xs, ys []float64
	// MinPoints is how many observations are required before predictions
	// are offered (the curve has three parameters).
	MinPoints int
	// Window, when positive, fits only the most recent Window points
	// (recency guards against early-epoch transients).
	Window int

	// fixedCap, when positive, bounds the retained history: once full, each
	// Observe shifts the window in place instead of appending, so the
	// steady-state observe+refit path never touches the heap (the fleet
	// configuration; see SetFixedWindow).
	fixedCap int
	// refitBudget, when positive, caps LM iterations per refit. Only
	// sensible with warm start: each epoch's refit then continues from the
	// previous epoch's parameters, so the optimization is amortized across
	// the observation stream instead of re-converging from scratch.
	refitBudget int

	fitter  *fit.Fitter
	lastFit [3]float64
	hasFit  bool
	dirty   bool
}

// Tuning bundles the fleet-scale online-fitter options: a bounded in-place
// history window, warm-started refits, and a per-epoch LM iteration budget.
// All three deviate (in the last float bits, or in which observations the
// pinned-floor fallback sees) from the historical exact configuration, so
// they are opt-in as a set — the fleet scenarios take them for the
// zero-alloc, few-iteration steady state; single-job experiments keep the
// defaults and their bit-identical outputs.
type Tuning struct {
	// FixedWindow bounds the retained history (min 3; see SetFixedWindow).
	FixedWindow int
	// WarmStart seeds each refit from the previous epoch's parameters.
	WarmStart bool
	// RefitBudget caps LM iterations per refit (0 = unlimited). With warm
	// start the budget is amortized: each epoch refines the previous fit a
	// few steps rather than re-converging from the data guess.
	RefitBudget int
}

// ApplyTuning switches the predictor to the fleet configuration.
func (o *Online) ApplyTuning(t Tuning) {
	if t.FixedWindow > 0 {
		o.SetFixedWindow(t.FixedWindow)
	}
	o.SetWarmStart(t.WarmStart)
	o.refitBudget = t.RefitBudget
}

// NewOnline returns an online predictor with defaults.
func NewOnline() *Online {
	return &Online{MinPoints: 4}
}

// SetFixedWindow caps the retained history at w observations (w >= 3) in a
// preallocated buffer: once full, each Observe drops the oldest point with
// an in-place shift, keeping observation allocation-free. Predictions —
// including the pinned-floor fallback, which normally consults the full
// history — then see only the retained window. That behavioral difference
// is why this is opt-in: fleet-scale runs (thousands of controllers) take
// it for the bounded memory and zero-alloc steady state; single-job
// experiments keep the unbounded history and its historical outputs.
func (o *Online) SetFixedWindow(w int) {
	if w < 3 {
		w = 3
	}
	o.fixedCap = w
	xs := make([]float64, 0, w)
	ys := make([]float64, 0, w)
	if drop := len(o.xs) - w; drop > 0 {
		o.xs, o.ys = o.xs[drop:], o.ys[drop:]
	}
	o.xs = append(xs, o.xs...)
	o.ys = append(ys, o.ys...)
	o.dirty = true
}

// SetWarmStart seeds each refit from the previous epoch's fitted
// parameters; steady-state refits then converge in a handful of LM
// iterations instead of dozens. Warm-started fits can differ from cold ones
// in the last float bits, so this is opt-in alongside SetFixedWindow for
// fleet runs; the default cold path stays bit-identical to fit.Fit.
func (o *Online) SetWarmStart(on bool) {
	o.ensureFitter()
	o.fitter.SetWarmStart(on)
}

func (o *Online) ensureFitter() {
	if o.fitter == nil {
		//cescalint:allow hotpath -- one-time lazy init: the solver is built on the first refit and reused forever
		f, err := fit.NewFitter(fit.InverseLinear{})
		if err != nil {
			panic(err) // unreachable: InverseLinear has exactly 3 params
		}
		o.fitter = f
	}
}

// Observe records the loss after epoch (1-based).
//
//cescalint:hotpath
func (o *Online) Observe(epoch int, loss float64) {
	if o.fixedCap > 0 && len(o.xs) == o.fixedCap {
		copy(o.xs, o.xs[1:])
		copy(o.ys, o.ys[1:])
		o.xs[o.fixedCap-1] = float64(epoch)
		o.ys[o.fixedCap-1] = loss
	} else {
		//cescalint:allow hotpath -- unbounded-history mode; the fleet tuning caps the window and takes the in-place branch
		o.xs = append(o.xs, float64(epoch))
		//cescalint:allow hotpath -- unbounded-history mode; the fleet tuning caps the window and takes the in-place branch
		o.ys = append(o.ys, loss)
	}
	o.dirty = true
}

// Observations reports how many epochs have been observed.
func (o *Online) Observations() int { return len(o.xs) }

// Ready reports whether enough observations exist to predict.
func (o *Online) Ready() bool {
	min := o.MinPoints
	if min < 3 {
		min = 3
	}
	return len(o.xs) >= min
}

// refit updates the cached curve parameters. The reusable Fitter's cold
// path is bit-identical to fit.Fit but allocation-free; its Result.Params
// alias solver scratch, so the parameters are copied into the fixed lastFit
// array.
func (o *Online) refit() bool {
	if !o.Ready() {
		return false
	}
	if !o.dirty && o.hasFit {
		return true
	}
	xs, ys := o.xs, o.ys
	if o.Window > 0 && len(xs) > o.Window {
		xs = xs[len(xs)-o.Window:]
		ys = ys[len(ys)-o.Window:]
	}
	o.ensureFitter()
	res, err := o.fitter.Fit(xs, ys, fit.Options{MaxIter: o.refitBudget})
	if err != nil {
		return false
	}
	o.lastFit[0], o.lastFit[1], o.lastFit[2] = res.Params[0], res.Params[1], res.Params[2]
	o.hasFit = true
	o.dirty = false
	return true
}

// Curve returns the latest fitted parameters (a, b, c), refitting if
// needed. The slice is a read-only view of predictor-owned storage.
func (o *Online) Curve() ([]float64, bool) {
	if !o.refit() {
		return nil, false
	}
	return o.lastFit[:], true
}

// PredictTotalEpochs estimates the total number of epochs (from the start of
// training) needed to reach target. ok=false before enough observations.
// Together with Observe it forms the per-epoch observe+refit+predict cycle,
// annotated allocation-free under the fleet tuning.
//
// When the freely fitted floor c sits at or above the target — common early
// in training, when few points barely constrain the curve's tail — the
// prediction would be infinite. The user declared the target reachable, so
// the predictor falls back to a reachability prior: fix c just below the
// target and fit only (a, b), which is a linear least-squares problem in
// z = 1/(loss - c).
//
//cescalint:hotpath
func (o *Online) PredictTotalEpochs(target float64) (int, bool) {
	params, ok := o.Curve()
	if !ok {
		return 0, false
	}
	e, solvable := fit.SolveForX(params, target)
	if !solvable && o.descending() {
		// The free fit put its floor above the target while the loss is
		// still clearly falling — the tail is simply unconstrained yet, so
		// lean on the reachability prior. A plateaued curve (not
		// descending) keeps reporting the target as unreachable.
		e, solvable = o.constrainedSolve(target)
	}
	if !solvable {
		return 0, false
	}
	total := clampEpochs(e)
	last := int(o.xs[len(o.xs)-1])
	// Never predict fewer epochs than already observed, and bound the
	// extrapolation: with few observations the curve's floor is barely
	// constrained and the solved horizon can explode, so cap it at 8x the
	// observed horizon (the fit re-extends the cap as epochs accumulate).
	if total < last {
		total = last
	}
	if cap := 8 * last; total > cap {
		total = cap
	}
	return total, true
}

// descending reports whether the recent observations still trend down
// meaningfully (average of the last three deltas below -0.5% of the
// current loss).
func (o *Online) descending() bool {
	n := len(o.ys)
	if n < 4 {
		return true // too early to call it a plateau
	}
	avgDelta := (o.ys[n-1] - o.ys[n-4]) / 3
	return avgDelta < -0.005*math.Abs(o.ys[n-1])
}

// pinnedFloors is the grid of plausible floor fractions constrainedSolve
// sweeps; a package-level array so the sweep builds no per-call slice.
var pinnedFloors = [...]float64{0.2, 0.4, 0.6, 0.8, 0.9}

// constrainedSolve fits l(e) = 1/(a e + b) + c with c pinned below the
// target — for a grid of plausible floors, keeping the best-SSE fit — and
// returns the e at which that curve reaches the target.
func (o *Online) constrainedSolve(target float64) (float64, bool) {
	bestSSE := math.Inf(1)
	var bestE float64
	found := false
	for _, frac := range pinnedFloors {
		e, sse, ok := o.pinnedFit(target, target*frac)
		if ok && sse < bestSSE {
			bestSSE, bestE, found = sse, e, true
		}
	}
	return bestE, found
}

// pinnedFit solves the linear least squares z = a e + b with z = 1/(y - c)
// for a fixed floor c, returning the solved target epoch and the fit's SSE
// in the original loss space.
func (o *Online) pinnedFit(target, c float64) (e, sse float64, ok bool) {
	var sx, sy, sxx, sxy float64
	n := 0
	for i := range o.xs {
		d := o.ys[i] - c
		if d <= 1e-9 {
			// Already at/below the pinned floor: the target is essentially
			// reached at this epoch.
			return o.xs[i], 0, true
		}
		z := 1 / d
		sx += o.xs[i]
		sy += z
		sxx += o.xs[i] * o.xs[i]
		sxy += o.xs[i] * z
		n++
	}
	if n < 2 {
		return 0, 0, false
	}
	den := float64(n)*sxx - sx*sx
	if den <= 1e-12 {
		return 0, 0, false
	}
	a := (float64(n)*sxy - sx*sy) / den
	b := (sy - a*sx) / float64(n)
	if a <= 0 {
		return 0, 0, false
	}
	for i := range o.xs {
		pred := 1/(a*o.xs[i]+b) + c
		r := pred - o.ys[i]
		sse += r * r
	}
	params := [3]float64{a, b, c}
	e, solved := fit.SolveForX(params[:], target)
	return e, sse, solved
}

// PredictRemaining estimates epochs still needed after the last observation.
func (o *Online) PredictRemaining(target float64) (int, bool) {
	total, ok := o.PredictTotalEpochs(target)
	if !ok {
		return 0, false
	}
	rem := total - int(o.xs[len(o.xs)-1])
	if rem < 0 {
		rem = 0
	}
	return rem, true
}
