package fit

import (
	"fmt"
	"math"
)

// fitterParams is the parameter count the Fitter's fixed-size scratch is
// sized for. Both curve families used in online prediction (InverseLinear,
// PowerLaw) have exactly three parameters, so the normal-equation system is
// always 3x3 and can live in arrays instead of per-iteration [][]float64.
const fitterParams = 3

// guesser is the allocation-free starting-point seam: models that implement
// it (both built-in families do) let the Fitter seed params without the
// []float64 that Guess returns.
type guesser interface {
	// GuessInto writes the starting point into out without allocating.
	//
	//cescalint:hotpath
	GuessInto(xs, ys, out []float64)
}

// Fitter is a reusable Levenberg-Marquardt solver for 3-parameter models.
// It holds all solver scratch (Jacobian row, normal equations, augmented
// elimination matrix, trial point) in fixed-size arrays, so a steady-state
// refit performs zero heap allocations — the property the per-epoch
// Algorithm-2 decision loop is gated on (fit.TestFitterZeroAlloc).
//
// A cold Fit is bit-identical to the package-level Fit: same starting
// guess, same damping schedule, same elimination pivoting, same float
// arithmetic in the same order (enforced by TestFitterColdBitIdentical).
//
// With warm start enabled (SetWarmStart), each Fit seeds the iteration from
// the previous call's converged parameters instead of the model's data
// guess. Online refits move the data by one observation per epoch, so the
// previous optimum is an excellent start and steady-state refits converge
// in a handful of LM iterations instead of dozens. Warm results may differ
// in the last bits from a cold fit (the iteration takes a different path to
// the optimum), so warm start is opt-in: callers that must reproduce
// historical cold-fit outputs leave it off.
//
// A Fitter is not safe for concurrent use; give each goroutine its own.
type Fitter struct {
	m     Model
	guess guesser
	// isIL selects the specialized InverseLinear inner loop: identical
	// arithmetic with the model math inlined, skipping the per-point
	// interface dispatch that dominates the generic path.
	isIL bool

	warm    bool
	hasPrev bool
	prev    [fitterParams]float64

	// out backs Result.Params: valid until the next Fit call.
	out [fitterParams]float64

	params, trial, jac, jtr, delta [fitterParams]float64
	jtj                            [fitterParams][fitterParams]float64
	aug                            [fitterParams][fitterParams + 1]float64
}

// NewFitter returns a reusable solver for m. m must have exactly 3
// parameters (both built-in families do); other arities need the
// general-purpose Fit.
func NewFitter(m Model) (*Fitter, error) {
	if m.NumParams() != fitterParams {
		return nil, fmt.Errorf("fit: Fitter requires %d params, model has %d", fitterParams, m.NumParams())
	}
	f := &Fitter{m: m}
	if g, ok := m.(guesser); ok {
		f.guess = g
	}
	_, f.isIL = m.(InverseLinear)
	return f, nil
}

// SetWarmStart toggles seeding each fit from the previous result. Turning
// it off also forgets any stored parameters.
func (f *Fitter) SetWarmStart(on bool) {
	f.warm = on
	if !on {
		f.hasPrev = false
	}
}

// Reset forgets the stored warm-start parameters (e.g. when the observation
// stream restarts), keeping the warm-start mode itself.
func (f *Fitter) Reset() { f.hasPrev = false }

// Fit solves min_params sum_i (model(x_i) - y_i)^2 by Levenberg-Marquardt
// without heap allocation. The returned Result.Params aliases Fitter-owned
// storage and is only valid until the next Fit call — copy it to keep it.
//
//cescalint:hotpath
func (f *Fitter) Fit(xs, ys []float64, opts Options) (Result, error) {
	if len(xs) != len(ys) {
		//cescalint:allow hotpath -- cold path: malformed-input error, never taken in steady state
		return Result{}, fmt.Errorf("fit: len(xs)=%d != len(ys)=%d", len(xs), len(ys))
	}
	const p = fitterParams
	n := len(xs)
	if n < p {
		//cescalint:allow hotpath -- cold path: short-data error, never taken once the window fills
		return Result{}, fmt.Errorf("%w: %d < %d", ErrInsufficientData, n, p)
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 200
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-10
	}

	if f.warm && f.hasPrev {
		f.params = f.prev
	} else if f.guess != nil {
		f.guess.GuessInto(xs, ys, f.params[:])
	} else {
		//cescalint:allow hotpath -- fallback for models without GuessInto; both built-in families have it
		copy(f.params[:], f.m.Guess(xs, ys))
	}
	f.clamp(&f.params)
	sse := f.sumSquares(&f.params, xs, ys)
	lambda := 1e-3
	iters := 0

	for ; iters < opts.MaxIter; iters++ {
		// Build normal equations J^T J and J^T r, exactly as Fit does.
		for i := range f.jtj {
			for j := range f.jtj[i] {
				f.jtj[i][j] = 0
			}
			f.jtr[i] = 0
		}
		f.buildNormal(xs, ys)
		for i := 0; i < p; i++ {
			for j := i + 1; j < p; j++ {
				f.jtj[i][j] = f.jtj[j][i]
			}
		}

		improved := false
		for attempt := 0; attempt < 20; attempt++ {
			if !f.solveDamped(lambda) {
				lambda *= 10
				continue
			}
			for i := range f.trial {
				f.trial[i] = f.params[i] - f.delta[i]
			}
			f.clamp(&f.trial)
			trialSSE := f.sumSquares(&f.trial, xs, ys)
			if trialSSE < sse {
				rel := (sse - trialSSE) / (sse + 1e-30)
				f.params, sse = f.trial, trialSSE
				lambda = math.Max(lambda/3, 1e-12)
				improved = true
				if rel < opts.Tol {
					iters++
					return f.finish(sse, n, iters), nil
				}
				break
			}
			lambda *= 10
			if lambda > 1e12 {
				break
			}
		}
		if !improved {
			break
		}
	}
	return f.finish(sse, n, iters), nil
}

// buildNormal accumulates J^T J (lower triangle) and J^T r over the data.
// The InverseLinear fast path inlines Eval/Jacobian: den = a*x + b is the
// exact subexpression both compute, so sharing it yields the same bits, and
// the accumulation loop is untouched — bit-identity with the generic path
// (and therefore with the package Fit) is preserved.
func (f *Fitter) buildNormal(xs, ys []float64) {
	const p = fitterParams
	n := len(xs)
	if f.isIL {
		a, b, c := f.params[0], f.params[1], f.params[2]
		for k := 0; k < n; k++ {
			x := xs[k]
			den := a*x + b
			inv2 := -1 / (den * den)
			f.jac[0], f.jac[1], f.jac[2] = inv2*x, inv2, 1
			r := 1/den + c - ys[k]
			for i := 0; i < p; i++ {
				f.jtr[i] += f.jac[i] * r
				for j := 0; j <= i; j++ {
					f.jtj[i][j] += f.jac[i] * f.jac[j]
				}
			}
		}
		return
	}
	for k := 0; k < n; k++ {
		f.m.Jacobian(f.params[:], xs[k], f.jac[:])
		r := f.m.Eval(f.params[:], xs[k]) - ys[k]
		for i := 0; i < p; i++ {
			f.jtr[i] += f.jac[i] * r
			for j := 0; j <= i; j++ {
				f.jtj[i][j] += f.jac[i] * f.jac[j]
			}
		}
	}
}

// sumSquares is the package sumSquares with the InverseLinear evaluation
// inlined on the fast path (same expression, same association order).
func (f *Fitter) sumSquares(params *[fitterParams]float64, xs, ys []float64) float64 {
	if f.isIL {
		a, b, c := params[0], params[1], params[2]
		var s float64
		for i := range xs {
			r := 1/(a*xs[i]+b) + c - ys[i]
			s += r * r
		}
		return s
	}
	return sumSquares(f.m, params[:], xs, ys)
}

// clamp projects params into the model's valid region (InverseLinear's
// bounds inlined on the fast path).
func (f *Fitter) clamp(params *[fitterParams]float64) {
	if f.isIL {
		if params[0] < 1e-9 {
			params[0] = 1e-9
		}
		if params[1] < 1e-9 {
			params[1] = 1e-9
		}
		return
	}
	f.m.Clamp(params[:])
}

func (f *Fitter) finish(sse float64, n, iters int) Result {
	f.out = f.params
	if f.warm {
		f.prev = f.params
		f.hasPrev = true
	}
	return Result{Params: f.out[:], SSE: sse, RMSE: math.Sqrt(sse / float64(n)), Iters: iters}
}

// solveDamped is solveDamped over the Fitter's fixed-size scratch: it
// solves (jtj + lambda*diag(jtj)) delta = jtr into f.delta with the same
// partial-pivoting elimination and the same arithmetic order as the
// slice-based solver, but with the augmented matrix in a [3][4] array.
func (f *Fitter) solveDamped(lambda float64) bool {
	const p = fitterParams
	m := &f.aug
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			m[i][j] = f.jtj[i][j]
		}
		d := f.jtj[i][i] * lambda
		if d == 0 {
			d = lambda
		}
		m[i][i] += d
		m[i][p] = f.jtr[i]
	}
	for col := 0; col < p; col++ {
		pivot := col
		for r := col + 1; r < p; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-300 {
			return false
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := col + 1; r < p; r++ {
			fr := m[r][col] / m[col][col]
			for c := col; c <= p; c++ {
				m[r][c] -= fr * m[col][c]
			}
		}
	}
	for i := p - 1; i >= 0; i-- {
		s := m[i][p]
		for j := i + 1; j < p; j++ {
			s -= m[i][j] * f.delta[j]
		}
		f.delta[i] = s / m[i][i]
	}
	for _, v := range f.delta {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
