// Command cebench regenerates the paper's evaluation artifacts on the
// simulated substrate.
//
// Usage:
//
//	cebench [-seed N] [-parallel P] <experiment-id>... | all | list
//
// Experiment ids follow the paper's numbering: fig3, fig4, fig7, fig9,
// fig10, fig11, fig12, fig13, fig14, fig15, fig16, fig17, fig18, fig19,
// fig20, fig21a, fig21b, fig21c, tab1, tab2, tab4.
//
// Artifacts run on a bounded worker pool (-parallel, default GOMAXPROCS)
// and print in request order; every experiment derives all randomness from
// -seed, so the tables on stdout are byte-identical at any parallelism.
// Wall-clock diagnostics (per-artifact and total) go to stderr in every
// format, keeping stdout deterministic.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", 2023, "deterministic experiment seed")
	format := flag.String("format", "text", "output format: text | json | csv | html")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size across and within artifacts (1 = fully serial)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cebench [-seed N] [-format text|json|csv|html] [-parallel P] <experiment-id>... | all | list\n\nexperiments:\n")
		for _, id := range experiments.IDs() {
			fmt.Fprintf(os.Stderr, "  %s\n", id)
		}
	}
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if args[0] == "list" {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	ids := args
	all := args[0] == "all"
	if all {
		ids = experiments.IDs()
	}

	experiments.SetParallelism(*parallel)
	start := time.Now()
	outcomes := experiments.RunAll(ids, *seed)
	total := time.Since(start)

	exit := 0
	var collected []*experiments.Table
	for _, o := range outcomes {
		if o.Err != nil {
			fmt.Fprintf(os.Stderr, "cebench: %s: %v\n", o.ID, o.Err)
			exit = 1
			continue
		}
		fmt.Fprintf(os.Stderr, "cebench: %s in %s\n", o.ID, o.Elapsed.Round(time.Millisecond))
		switch *format {
		case "json", "html":
			collected = append(collected, o.Table)
		case "csv":
			fmt.Print(o.Table.CSV())
			fmt.Println()
		default:
			fmt.Print(o.Table.String())
			fmt.Println()
		}
	}
	switch {
	case *format == "json" && len(collected) > 0:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(collected); err != nil {
			fmt.Fprintf(os.Stderr, "cebench: encoding: %v\n", err)
			exit = 1
		}
	case *format == "html" && len(collected) > 0:
		fmt.Print(experiments.HTMLReport(collected))
	}
	if all {
		fmt.Fprintf(os.Stderr, "cebench: %d artifacts in %s (parallel=%d)\n",
			len(ids), total.Round(time.Millisecond), experiments.Parallelism())
	}
	os.Exit(exit)
}
