package sha

import (
	"math"
	"testing"

	"repro/internal/cost"
	"repro/internal/planner"
	"repro/internal/sim"
	"repro/internal/trainer"
	"repro/internal/workload"
)

func tuningConfig(t *testing.T, w *workload.Model, trials int, seed uint64) Config {
	t.Helper()
	m := cost.NewModel(w)
	pareto := m.ParetoSet(cost.DefaultGrid())
	stages := planner.SHAStages(trials, 2, 2)
	pl, err := planner.New(m, stages, pareto)
	if err != nil {
		t.Fatal(err)
	}
	static := pl.OptimalStatic(0, 1e15)
	return Config{
		Workload: w,
		Trials:   trials,
		Plan:     static.Plan,
		Runner:   trainer.NewRunner(seed),
		Seed:     seed,
	}
}

func TestRunProducesBestTrial(t *testing.T) {
	cfg := tuningConfig(t, workload.MobileNet(), 32, 1)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestTrial == nil || !res.BestTrial.Alive {
		t.Fatal("no surviving best trial")
	}
	if res.JCT <= 0 || res.TotalCost <= 0 {
		t.Errorf("JCT %g / cost %g must be positive", res.JCT, res.TotalCost)
	}
	// 32 -> 16 -> 8 -> 4 -> 2 survivors: 5 stages.
	if len(res.Stages) != 5 {
		t.Fatalf("stage count = %d, want 5", len(res.Stages))
	}
	for i, st := range res.Stages {
		want := 32 >> uint(i)
		if st.Trials != want {
			t.Errorf("stage %d trials = %d, want %d", i, st.Trials, want)
		}
	}
}

func TestHalvingTerminatesWorstTrials(t *testing.T) {
	cfg := tuningConfig(t, workload.ResNet50(), 16, 3)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The winner's loss should be no worse than any stage's best loss was
	// at the moment of selection (it kept training afterwards).
	final := res.BestTrial.Loss
	if final > res.Stages[0].BestLoss {
		t.Errorf("winner loss %g worse than stage-0 best %g", final, res.Stages[0].BestLoss)
	}
}

func TestBestTrialNearOptimalLR(t *testing.T) {
	// With enough trials, the surviving configuration's learning rate
	// should be within about a decade of the workload optimum.
	cfg := tuningConfig(t, workload.MobileNet(), 64, 5)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ratio := math.Abs(math.Log10(res.BestTrial.HP.LR / cfg.Workload.LROpt))
	if ratio > 1.2 {
		t.Errorf("winner lr %g is %.1f decades from optimum %g", res.BestTrial.HP.LR, ratio, cfg.Workload.LROpt)
	}
}

func TestStageCostsShrinkWithTrials(t *testing.T) {
	cfg := tuningConfig(t, workload.LRHiggs(), 32, 7)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Under a static plan, stage cost is roughly proportional to the trial
	// count, so stage 0 must dominate (the motivation for Finding 1).
	if res.Stages[0].Cost <= res.Stages[len(res.Stages)-1].Cost {
		t.Errorf("stage 0 cost %g should exceed final stage %g under a static plan",
			res.Stages[0].Cost, res.Stages[len(res.Stages)-1].Cost)
	}
	firstTwo := res.Stages[0].Cost + res.Stages[1].Cost
	if firstTwo < res.TotalCost/2 {
		t.Errorf("first two stages cost %g of %g; expected the majority", firstTwo, res.TotalCost)
	}
}

func TestWavesAppearWhenConcurrencyBinds(t *testing.T) {
	w := workload.MobileNet()
	cfg := tuningConfig(t, w, 512, 9)
	// Force a large function count so 512 trials cannot fit one wave.
	for i := range cfg.Plan.Stages {
		cfg.Plan.Stages[i] = cost.Allocation{N: 50, MemMB: cfg.Plan.Stages[i].MemMB, Storage: cfg.Plan.Stages[i].Storage}
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages[0].Waves < 2 {
		t.Errorf("stage 0 waves = %d; 512 trials x 50 fns must exceed the 3000 cap", res.Stages[0].Waves)
	}
	if res.Stages[len(res.Stages)-1].Waves != 1 {
		t.Error("final stage should fit one wave")
	}
}

func TestRunValidation(t *testing.T) {
	w := workload.MobileNet()
	if _, err := Run(Config{Workload: w}); err == nil {
		t.Error("missing runner should error")
	}
	cfg := tuningConfig(t, w, 8, 1)
	cfg.Trials = 1
	if _, err := Run(cfg); err == nil {
		t.Error("single trial cannot be halved")
	}
	cfg = tuningConfig(t, w, 8, 1)
	cfg.Plan.Stages = cfg.Plan.Stages[:1]
	if _, err := Run(cfg); err == nil {
		t.Error("plan/stage mismatch should error")
	}
}

func TestSampleHyperparamsRange(t *testing.T) {
	w := workload.BERT()
	rng := sim.NewRand(1)
	for i := 0; i < 200; i++ {
		hp := SampleHyperparams(w, rng)
		ratio := hp.LR / w.LROpt
		if ratio < 0.009 || ratio > 101 {
			t.Fatalf("lr %g outside two decades of %g", hp.LR, w.LROpt)
		}
		if hp.Momentum < 0 || hp.Momentum >= 1 {
			t.Fatalf("momentum %g out of range", hp.Momentum)
		}
	}
}

func TestDeterministicTuning(t *testing.T) {
	run := func() (float64, float64, int) {
		res, err := Run(tuningConfig(t, workload.MobileNet(), 16, 42))
		if err != nil {
			t.Fatal(err)
		}
		return res.JCT, res.TotalCost, res.BestTrial.ID
	}
	j1, c1, b1 := run()
	j2, c2, b2 := run()
	if j1 != j2 || c1 != c2 || b1 != b2 {
		t.Error("tuning run is not deterministic")
	}
}

func TestRealEnginesForLinearModels(t *testing.T) {
	cfg := tuningConfig(t, workload.LRHiggs(), 8, 11)
	cfg.RealEngines = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestTrial.Loss >= math.Log(2)+0.05 {
		t.Errorf("best real trial loss %g did not improve below chance", res.BestTrial.Loss)
	}
}
