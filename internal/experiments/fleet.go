package experiments

// macro-fleet is the control-path macro scenario: T complete Algorithm-2
// controllers — each with its own online curve fitter, drift detector and
// constrained Pareto selection — training concurrently as tenants of one
// shared serverless account. It is the workload the PR7 fleet-cheap work
// exists for: where macro-day stresses the *kernel* with millions of cheap
// events, macro-fleet multiplies the per-epoch *decision* (fit -> predict ->
// select -> log) by the tenant count, so decisions/sec is the headline
// number (scripts/bench.sh parses "decisions=" from the table notes).
//
// Sharing layout:
//
//   - Tenants of the same model class share one cost.Model and one interned
//     cost.Frontier (scheduler.Config.Frontier) — the candidate set is a
//     single immutable array searched in place by every controller.
//   - All tenants share one faas.Platform (the account) owned by kernel
//     shard 0. Function groups are acquired at job start and at every
//     scheduler restart via sim.Post round trips, so account state mutates
//     only in shard-0 events whose order is pinned by (time, priority).
//   - Everything else — scheduler, predictor buffers, loss stream, budget
//     accounting — is tenant-private on the tenant's shard (t % shards).
//
// Determinism: every event that can share a timestamp with another tenant's
// event carries a globally unique priority (band + tenant id), so the
// kernel's (time, priority) merge order is independent of the shard and
// worker configuration; the table is byte-identical at every setting.
//
// Scaling note: the registered default is 48 tenants so smoke tests run in
// milliseconds; scripts/bench.sh and scripts/check.sh raise it to >=1000
// via SetFleetScale / cebench -fleet-tenants.

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/cost"
	"repro/internal/faas"
	"repro/internal/obs"
	"repro/internal/platform/simbackend"
	"repro/internal/predictor"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/trainer"
	"repro/internal/workload"
)

func init() { register("macro-fleet", runMacroFleet) }

// fleetTenantCount overrides the macro-fleet population; zero means the
// registered default (48). Sharding reuses the macro knobs (SetMacroSharding
// / cebench -shards, -sim-workers).
var fleetTenantCount atomic.Int64

// SetFleetScale overrides the macro-fleet tenant count (0 = default 48).
func SetFleetScale(tenants int) { fleetTenantCount.Store(int64(tenants)) }

const (
	fleetLookahead = 5.0 // conservative window: every cross-shard Post delay
	fleetStagger   = 2.0 // seconds between consecutive tenants' job starts
	fleetMaxRetry  = 8   // invoke attempts per group request before a drop
	fleetMaxEpochs = 400 // hard cap per job (targets converge in tens)

	// Priority bands (+ tenant id within each): releases beat invokes at
	// equal timestamps so freed capacity is visible to same-instant requests.
	priFleetEpoch   = 0
	priFleetRelease = 1_000_000
	priFleetInvoke  = 2_000_000
	priFleetRetry   = 3_000_000
	priFleetGrant   = 4_000_000
)

// fleetTuning is the predictor configuration every fleet controller runs:
// bounded history, warm-started refits with a small LM budget — the
// zero-alloc steady state BenchmarkDecisionFleet measures.
var fleetTuning = predictor.Tuning{FixedWindow: 32, WarmStart: true, RefitBudget: 10}

// fleetClass is the per-model-class shared state: one analytic cost model,
// one interned Pareto frontier, one offline predictor — all read-only during
// the run, shared by every tenant of the class.
type fleetClass struct {
	w       *workload.Model
	model   *cost.Model
	front   *cost.Frontier
	byAlloc map[cost.Allocation]cost.Point
	offline *predictor.Offline

	nomEpochs int     // noiseless epochs to the class target
	cheapCost float64 // cheapest per-epoch cost on the frontier
	fastTime  float64 // fastest per-epoch time on the frontier
}

// fleetAccount is the shared serverless account on shard 0. All InvokeGroup
// and ReleaseGroup calls happen inside shard-0 events, so the platform's
// warm pool, meter and concurrency gate mutate in one deterministic order.
type fleetAccount struct {
	sh      *sim.Shard
	plat    *faas.Platform
	denials uint64
}

// invoke tries to admit a tenant's function group, retrying with exponential
// backoff while the account is at its concurrency cap; the grant (or the
// final denial) posts back to the tenant's shard one lookahead later.
func (ac *fleetAccount) invoke(tn *fleetTenant, n, memMB, attempt int) {
	invs, err := ac.plat.InvokeGroup(n, memMB)
	if err != nil {
		ac.denials++
		if attempt+1 >= fleetMaxRetry {
			ac.sh.Post(tn.sh, ac.sh.Now()+sim.Time(fleetLookahead), priFleetGrant+tn.id, tn.denied)
			return
		}
		at := ac.sh.Now() + sim.Time(math.Ldexp(fleetLookahead, attempt))
		ac.sh.SchedulePriority(at, priFleetRetry+tn.id, func() { ac.invoke(tn, n, memMB, attempt+1) })
		return
	}
	var delay float64
	cold := 0
	for _, inv := range invs {
		if inv.StartDelay > delay {
			delay = inv.StartDelay
		}
		if inv.Cold {
			cold++
		}
	}
	ac.sh.Post(tn.sh, ac.sh.Now()+sim.Time(fleetLookahead), priFleetGrant+tn.id, func() { tn.granted(delay, cold) })
}

// fleetTenant is one training job: a full CE-scaling scheduler plus the
// simulated epoch loop that feeds it losses and carries out its decisions.
type fleetTenant struct {
	id    int
	cl    *fleetClass
	sh    *sim.Shard
	ac    *fleetAccount
	sched *scheduler.Scheduler
	ctrl  trainer.Controller
	loss  *sim.Rand
	curve workload.CurveParams

	budget, qos float64 // the tenant's binding constraint (other is 0)
	target      float64

	cur     cost.Point // allocation currently granted (or being requested)
	pending cost.Point
	grantAt sim.Time
	startAt sim.Time

	epoch     int
	spent     float64
	decisions uint64
	restarts  uint64
	cold      uint64
	done      bool
	converged bool
	stopped   bool
	dropped   bool
	jct       float64
}

// lossAt mirrors workload's curveEngine: the tenant's jittered convergence
// curve with multiplicative log-normal noise above the floor.
func (tn *fleetTenant) lossAt(e int) float64 {
	base := tn.curve.Eval(float64(e))
	if tn.curve.Noise > 0 {
		base = tn.curve.C + (base-tn.curve.C)*tn.loss.LogNormal(0, tn.curve.Noise)
	}
	return base
}

func (tn *fleetTenant) start() {
	tn.startAt = tn.sh.Now()
	tn.requestGroup(tn.cur)
}

// requestGroup posts an invoke request for p's allocation to the account;
// epochs resume when the grant comes back.
func (tn *fleetTenant) requestGroup(p cost.Point) {
	tn.pending = p
	at := tn.sh.Now() + sim.Time(fleetLookahead)
	tn.sh.Post(tn.ac.sh, at, priFleetInvoke+tn.id, func() { tn.ac.invoke(tn, p.Alloc.N, p.Alloc.MemMB, 0) })
}

func (tn *fleetTenant) granted(startDelay float64, cold int) {
	tn.cur = tn.pending
	tn.grantAt = tn.sh.Now()
	tn.cold += uint64(cold)
	next := tn.sh.Now() + sim.Time(startDelay+tn.cur.Time)
	tn.sh.SchedulePriority(next, priFleetEpoch+tn.id, tn.epochDone)
}

// releaseCurrent posts the held group back to the account with its held
// wall-clock seconds (what the account bills as compute).
func (tn *fleetTenant) releaseCurrent() {
	held := float64(tn.sh.Now() - tn.grantAt)
	p := tn.cur
	at := tn.sh.Now() + sim.Time(fleetLookahead)
	tn.sh.Post(tn.ac.sh, at, priFleetRelease+tn.id, func() { tn.ac.plat.ReleaseGroup(p.Alloc.N, p.Alloc.MemMB, held) })
}

// denied ends the job after the account refused a group fleetMaxRetry times
// (any previously held group was already released before the request).
func (tn *fleetTenant) denied() {
	tn.done, tn.dropped = true, true
	tn.jct = float64(tn.sh.Now() - tn.startAt)
}

// epochDone is the per-epoch tick: observe the loss, run the full
// Algorithm-2 decision, then carry it out — stop, restart onto a new group,
// or schedule the next epoch (charging the modeled planning overhead).
func (tn *fleetTenant) epochDone() {
	tn.epoch++
	loss := tn.lossAt(tn.epoch)
	tn.spent += tn.cur.Cost
	elapsed := float64(tn.sh.Now() - tn.startAt)
	dec := tn.ctrl(tn.epoch, loss, elapsed, tn.spent)
	tn.decisions++
	switch {
	case loss <= tn.target:
		tn.finish(true, false)
	case dec.Stop:
		tn.finish(false, true)
	case tn.epoch >= fleetMaxEpochs:
		tn.finish(false, false)
	case dec.NewAlloc != nil:
		np, ok := tn.cl.byAlloc[*dec.NewAlloc]
		if !ok {
			np = tn.cur // unreachable: the scheduler selects frontier points
		}
		tn.restarts++
		tn.releaseCurrent()
		tn.requestGroup(np)
	default:
		next := tn.sh.Now() + sim.Time(tn.cur.Time+dec.PlanningSeconds)
		tn.sh.SchedulePriority(next, priFleetEpoch+tn.id, tn.epochDone)
	}
}

func (tn *fleetTenant) finish(converged, stopped bool) {
	tn.done, tn.converged, tn.stopped = true, converged, stopped
	tn.jct = float64(tn.sh.Now() - tn.startAt)
	tn.releaseCurrent()
}

func runMacroFleet(seed uint64) (*Table, error) {
	tenants := int(fleetTenantCount.Load())
	if tenants <= 0 {
		tenants = 48
	}
	shards := int(macroShards.Load())
	workers := int(macroWorkers.Load())
	if shards <= 0 {
		shards = 8
	}
	if workers <= 0 {
		workers = 1
	}

	b := simbackend.New(seed)
	b.ConfigureSharding(shards, workers, fleetLookahead)
	s := b.Sim()
	collector := activeCollector.Load()

	grid := cost.DefaultGrid()
	classModels := []*workload.Model{workload.MobileNet(), workload.ResNet50(), workload.BERT()}
	classes := make([]*fleetClass, len(classModels))
	for i, w := range classModels {
		m := cost.NewModel(w)
		front := m.ParetoFrontier(grid)
		if front.Len() == 0 {
			return nil, fmt.Errorf("macro-fleet: empty Pareto frontier for %s", w.Name)
		}
		byAlloc := make(map[cost.Allocation]cost.Point, front.Len())
		cheap, fast := math.Inf(1), math.Inf(1)
		for _, p := range front.Points() {
			byAlloc[p.Alloc] = p
			if p.Cost < cheap {
				cheap = p.Cost
			}
			if p.Time < fast {
				fast = p.Time
			}
		}
		nom, ok := w.Curve.EpochsToReach(w.TargetLoss)
		if !ok {
			return nil, fmt.Errorf("macro-fleet: %s target %g below its curve floor", w.Name, w.TargetLoss)
		}
		classes[i] = &fleetClass{
			w: w, model: m, front: front, byAlloc: byAlloc,
			offline:   predictor.NewOffline(w),
			nomEpochs: nom, cheapCost: cheap, fastTime: fast,
		}
	}

	// Build every tenant's scheduler and initial allocation first (setup is
	// deterministic in tenant order), so the account's concurrency cap can be
	// sized below the fleet's aggregate initial demand — real contention:
	// denials, backoff retries, and drops under pressure.
	fleet := make([]*fleetTenant, tenants)
	totalN := 0
	for t := 0; t < tenants; t++ {
		name := obs.ScopeName("macro-fleet", "t", t, tenants)
		cl := classes[t%len(classes)]
		shape := s.Rand(name + "/shape")
		cp := cl.w.Curve
		cp.A *= shape.LogNormal(0, 0.10) // per-tenant convergence-speed draw
		var budget, qos float64
		if t%2 == 0 {
			budget = float64(cl.nomEpochs) * cl.cheapCost * (1.2 + 0.8*shape.Float64())
		} else {
			qos = float64(cl.nomEpochs) * cl.fastTime * (1.5 + 2.5*shape.Float64())
		}
		cfg := scheduler.Config{
			Model:        cl.model,
			Frontier:     cl.front,
			Budget:       budget,
			QoS:          qos,
			TargetLoss:   cl.w.TargetLoss,
			OnlineTuning: &fleetTuning,
			Offline:      cl.offline,
			OfflineSeed:  seed ^ (uint64(t)*0x9e3779b97f4a7c15 + 1),
		}
		if collector != nil {
			cfg.Obs = collector.Scope(name)
		}
		sched := scheduler.New(cfg)
		alloc, _ := sched.Initial()
		p, ok := cl.byAlloc[alloc]
		if !ok {
			return nil, fmt.Errorf("macro-fleet: tenant %d initial allocation %v not on the class frontier", t, alloc)
		}
		fleet[t] = &fleetTenant{
			id: t, cl: cl, sh: s.Shard(t % shards),
			sched: sched, ctrl: sched.Controller(),
			loss: s.Rand(name + "/loss"), curve: cp,
			budget: budget, qos: qos, target: cl.w.TargetLoss,
			cur: p,
		}
		totalN += alloc.N
	}

	capacity := totalN * 4 / 5
	if capacity < 64 {
		capacity = 64
	}
	limits := faas.DefaultLimits()
	limits.MaxConcurrency = capacity
	acPlat := b.TenantPlatform("macro-fleet/account", 0, limits)
	if collector != nil {
		acPlat.SetObserver(collector.Scope("macro-fleet/account"))
	}
	ac := &fleetAccount{sh: acPlat.Shard(), plat: acPlat}
	for _, tn := range fleet {
		tn.ac = ac
		tn.sh.SchedulePriority(sim.Time(fleetStagger*float64(tn.id+1)), priFleetEpoch+tn.id, tn.start)
	}

	s.Run()

	if n := s.Pending(); n != 0 {
		return nil, fmt.Errorf("macro-fleet: %d events still pending after Run", n)
	}

	// Aggregate per class, always in tenant order so every float sum has a
	// fixed term order.
	type classRow struct {
		tenants, conv, bMet, qMet, dropped int
		restarts, decisions                uint64
		spent                              float64
	}
	rows := make([]classRow, len(classes))
	var total classRow
	var totalDecisions uint64
	for t, tn := range fleet {
		c := &rows[t%len(classes)]
		c.tenants++
		if tn.converged {
			c.conv++
		}
		if tn.budget > 0 && tn.spent <= tn.budget && !tn.dropped {
			c.bMet++
		}
		if tn.qos > 0 && tn.jct <= tn.qos && !tn.dropped {
			c.qMet++
		}
		if tn.dropped {
			c.dropped++
		}
		c.restarts += tn.restarts
		c.decisions += tn.decisions
		c.spent += tn.spent
		totalDecisions += tn.decisions
	}
	for _, c := range rows {
		total.tenants += c.tenants
		total.conv += c.conv
		total.bMet += c.bMet
		total.qMet += c.qMet
		total.dropped += c.dropped
		total.restarts += c.restarts
		total.decisions += c.decisions
		total.spent += c.spent
	}

	row := func(label string, c classRow) []string {
		return []string{
			label, fmt.Sprintf("%d", c.tenants), fmt.Sprintf("%d", c.conv),
			fmt.Sprintf("%d", c.bMet), fmt.Sprintf("%d", c.qMet),
			fmt.Sprintf("%d", c.restarts), fmt.Sprintf("%d", c.dropped),
			fmt.Sprintf("%d", c.decisions), f4(c.spent),
		}
	}
	tab := &Table{
		ID:      "macro-fleet",
		Title:   "Macro fleet: concurrent Algorithm-2 controllers on one shared account",
		Headers: []string{"class", "tenants", "converged", "budget-met", "qos-met", "restarts", "dropped", "decisions", "modeled$"},
	}
	for i, c := range rows {
		tab.Rows = append(tab.Rows, row(classes[i].w.Name, c))
	}
	tab.Rows = append(tab.Rows, row("TOTAL", total))
	meter := acPlat.Meter()
	tab.Notes = fmt.Sprintf(
		"%d tenants x %d model classes on one shared account (concurrency cap %d, denials=%d, account compute $%.2f); each class shares one interned Pareto frontier; controllers run the fleet tuning (window %d, warm start, refit budget %d); decisions=%d; events=%d",
		tenants, len(classes), capacity, ac.denials, meter.Total(),
		fleetTuning.FixedWindow, fleetTuning.RefitBudget, totalDecisions, s.EventsFired())
	return tab, nil
}
