package lint

import (
	"fmt"
	"os"
	"strings"
)

// Policy declares which packages carry the determinism invariant and which
// imports are off-limits inside them. It is loaded from a plain-text file
// (cescalint.policy at the module root) so the package sets are reviewable
// data, not code:
//
//	# comment
//	deterministic    repro/internal/sim
//	deterministic    repro/internal/platform/simbackend
//	output           repro/internal/experiments
//	unchecked        repro/internal/lambda
//	forbid           repro/internal/lambda
//	forbid           net
//	shard-restricted repro/internal/sim
//	shard-exempt     repro/internal/sim/parallel.go
//	hotpath          repro/internal/fit.Fitter.Fit
//
// Patterns are exact import paths, or a prefix ending in /... which matches
// the path itself and everything below it. "forbid net" bans both "net" and
// every "net/..." subpackage. shard-exempt names one file (as
// "<package-path>/<file>.go") that may use concurrency inside a
// shard-restricted package; exemptions are exact, never patterns.
//
// Every package in the module must appear in exactly one of the
// deterministic, output, or unchecked sets; a package in none of them is a
// policy-completeness finding, so a newly added package cannot silently
// bypass the suite. "hotpath" marks one function (as "<pkg-path>.<Func>" or
// "<pkg-path>.<Type>.<Method>") allocation-free in steady state, equivalent
// to a //cescalint:hotpath comment on its declaration.
type Policy struct {
	deterministic   []string
	output          []string
	unchecked       []string
	forbidden       []string
	shardRestricted []string
	shardExempt     []string
	hotpath         []string
}

// IsDeterministic reports whether pkg is in the deterministic set: packages
// whose observable behaviour must be bit-identical run to run, at any
// parallelism, on any host.
func (p *Policy) IsDeterministic(pkg string) bool { return matchAny(p.deterministic, pkg) }

// IsOutput reports whether pkg may perform process I/O (os.Stdout,
// os.Stderr, fmt.Print*). Only the experiment renderers and commands
// qualify; everything else returns values and lets callers print.
func (p *Policy) IsOutput(pkg string) bool { return matchAny(p.output, pkg) }

// IsUnchecked reports whether pkg is deliberately outside the lint surface
// (live substrate, tooling). Unchecked packages still type-check and export
// allocation facts, but no determinism analyzer runs on them.
func (p *Policy) IsUnchecked(pkg string) bool { return matchAny(p.unchecked, pkg) }

// Covers reports whether pkg appears in any policy set. The driver turns an
// uncovered package into a finding so the policy stays complete as the
// module grows.
func (p *Policy) Covers(pkg string) bool {
	return p.IsDeterministic(pkg) || p.IsOutput(pkg) || p.IsUnchecked(pkg)
}

// IsHotpathFunc reports whether the function key ("<pkg-path>.<Func>" or
// "<pkg-path>.<Type>.<Method>") is declared hotpath by the policy file.
func (p *Policy) IsHotpathFunc(key string) bool {
	for _, h := range p.hotpath {
		if h == key {
			return true
		}
	}
	return false
}

// ForbiddenImport reports whether importPath may not be imported from a
// deterministic package. "forbid net" covers "net" and all "net/..."
// subpackages.
func (p *Policy) ForbiddenImport(importPath string) bool {
	for _, f := range p.forbidden {
		base := strings.TrimSuffix(f, "/...")
		if importPath == base || strings.HasPrefix(importPath, base+"/") {
			return true
		}
	}
	return false
}

// IsShardRestricted reports whether pkg confines concurrency to its
// shard-exempt files (the sharded DES kernel). The shardsafe analyzer
// flags every goroutine, channel, select and sync import elsewhere in it.
func (p *Policy) IsShardRestricted(pkg string) bool { return matchAny(p.shardRestricted, pkg) }

// IsShardExempt reports whether the file named "<pkg-path>/<base>.go" is a
// sanctioned concurrency site inside a shard-restricted package. Exemptions
// are exact file names, never patterns: each one is a reviewed decision.
func (p *Policy) IsShardExempt(file string) bool {
	for _, f := range p.shardExempt {
		if file == f {
			return true
		}
	}
	return false
}

func matchAny(patterns []string, pkg string) bool {
	for _, pat := range patterns {
		if base, ok := strings.CutSuffix(pat, "/..."); ok {
			if pkg == base || strings.HasPrefix(pkg, base+"/") {
				return true
			}
		} else if pkg == pat {
			return true
		}
	}
	return false
}

// ParsePolicy parses policy text. name is used in error messages only.
func ParsePolicy(data []byte, name string) (*Policy, error) {
	p := &Policy{}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want \"<keyword> <package-pattern>\", got %q", name, i+1, line)
		}
		switch fields[0] {
		case "deterministic":
			p.deterministic = append(p.deterministic, fields[1])
		case "output":
			p.output = append(p.output, fields[1])
		case "unchecked":
			p.unchecked = append(p.unchecked, fields[1])
		case "hotpath":
			p.hotpath = append(p.hotpath, fields[1])
		case "forbid":
			p.forbidden = append(p.forbidden, fields[1])
		case "shard-restricted":
			p.shardRestricted = append(p.shardRestricted, fields[1])
		case "shard-exempt":
			p.shardExempt = append(p.shardExempt, fields[1])
		default:
			return nil, fmt.Errorf("%s:%d: unknown keyword %q (want deterministic, output, unchecked, hotpath, forbid, shard-restricted, or shard-exempt)", name, i+1, fields[0])
		}
	}
	return p, nil
}

// LoadPolicy reads and parses a policy file.
func LoadPolicy(path string) (*Policy, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParsePolicy(data, path)
}
