package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// allFixtures returns every testdata package as a lint target.
func allFixtures(t *testing.T) []Target {
	t.Helper()
	var targets []Target
	for _, name := range []string{
		"walltime", "globalrand", "maporder", "fpreduce", "importboundary",
		"pragma", "shardsafe", "hotpath", "hotpathreg",
		"hotpathfacts/inner", "hotpathfacts/outer", "stalepragma",
	} {
		targets = append(targets, fixtureTarget(t, name))
	}
	return targets
}

// TestDriverParallelByteIdentical pins the parallel-driver satellite: the
// rendered output must be byte-identical whether packages are analyzed one
// at a time or with maximum worker fan-out.
func TestDriverParallelByteIdentical(t *testing.T) {
	var outputs []string
	for _, par := range []int{1, 2, 8} {
		r := testRunner(t)
		r.Parallel = par
		findings, err := r.Run(allFixtures(t))
		if err != nil {
			t.Fatalf("parallel=%d: %v", par, err)
		}
		outputs = append(outputs, render(findings))
	}
	for i := 1; i < len(outputs); i++ {
		if outputs[i] != outputs[0] {
			t.Errorf("output differs between parallel=1 and parallel=%d\n--- p=1 ---\n%s--- other ---\n%s", []int{1, 2, 8}[i], outputs[0], outputs[i])
		}
	}
}

// TestOutputByteIdenticalAndSorted is the driver's own determinism
// regression: two independent runs over a multi-package tree with many
// findings must render byte-identically, already sorted by
// file:line:column.
func TestOutputByteIdenticalAndSorted(t *testing.T) {
	var outputs [2]string
	for i := range outputs {
		r := testRunner(t) // fresh FileSet, importer, and caches each run
		findings, err := r.Run(allFixtures(t))
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if len(findings) < 10 {
			t.Fatalf("run %d: want a rich finding set across fixtures, got %d", i, len(findings))
		}
		for j := 1; j < len(findings); j++ {
			a, b := findings[j-1], findings[j]
			if a.File > b.File || (a.File == b.File && (a.Line > b.Line || (a.Line == b.Line && a.Col > b.Col))) {
				t.Errorf("run %d: findings out of order: %v before %v", i, a, b)
			}
		}
		outputs[i] = render(findings)
	}
	if outputs[0] != outputs[1] {
		t.Errorf("output differs across runs\n--- first ---\n%s--- second ---\n%s", outputs[0], outputs[1])
	}
}

// TestTreeIsClean lints the real module with the real policy: the
// acceptance criterion that `go run ./cmd/cescalint ./...` exits 0.
func TestTreeIsClean(t *testing.T) {
	root, module, err := FindModule(".")
	if err != nil {
		t.Fatalf("FindModule: %v", err)
	}
	pol, err := LoadPolicy(filepath.Join(root, "cescalint.policy"))
	if err != nil {
		t.Fatalf("LoadPolicy: %v", err)
	}
	r := NewRunner(root, module, pol)
	targets, err := r.DiscoverTargets()
	if err != nil {
		t.Fatalf("DiscoverTargets: %v", err)
	}
	if len(targets) < 20 {
		t.Fatalf("discovered only %d packages; module walk is broken", len(targets))
	}
	findings, err := r.Run(targets)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding: %v", f)
	}
}

func TestPolicyParse(t *testing.T) {
	pol, err := ParsePolicy([]byte(`
# comment
deterministic repro/internal/sim
deterministic repro/internal/platform/...
output repro/cmd/...
forbid net
forbid repro/internal/lambda
shard-restricted repro/internal/sim
shard-exempt repro/internal/sim/parallel.go
`), "p")
	if err != nil {
		t.Fatal(err)
	}
	for path, want := range map[string]bool{
		"repro/internal/sim":                  true,
		"repro/internal/sim/sub":              false, // exact pattern, no /...
		"repro/internal/platform":             true,
		"repro/internal/platform/simbackend":  true,
		"repro/internal/platform/livebackend": true, // prefix pattern includes it
		"repro/internal/cost":                 false,
	} {
		if got := pol.IsDeterministic(path); got != want {
			t.Errorf("IsDeterministic(%q) = %v, want %v", path, got, want)
		}
	}
	if !pol.IsOutput("repro/cmd/cebench") || pol.IsOutput("repro/internal/sim") {
		t.Error("output set mismatched")
	}
	for path, want := range map[string]bool{
		"net":                   true,
		"net/url":               true,
		"network":               false,
		"repro/internal/lambda": true,
		"repro/internal/ml":     false,
	} {
		if got := pol.ForbiddenImport(path); got != want {
			t.Errorf("ForbiddenImport(%q) = %v, want %v", path, got, want)
		}
	}
	if !pol.IsShardRestricted("repro/internal/sim") || pol.IsShardRestricted("repro/internal/faas") {
		t.Error("shard-restricted set mismatched")
	}
	if !pol.IsShardExempt("repro/internal/sim/parallel.go") {
		t.Error("shard-exempt file not recognized")
	}
	if pol.IsShardExempt("repro/internal/sim/sim.go") || pol.IsShardExempt("repro/internal/sim/parallel.go.bak") {
		t.Error("shard-exempt must match exactly")
	}
}

func TestPolicyParseErrors(t *testing.T) {
	for _, bad := range []string{
		"determinstic repro/internal/sim", // misspelled keyword
		"deterministic",                   // missing pattern
		"forbid net extra",                // too many fields
	} {
		if _, err := ParsePolicy([]byte(bad), "p"); err == nil {
			t.Errorf("ParsePolicy(%q): want error, got nil", bad)
		}
	}
}

// TestPragmaRequiresAdjacency pins the suppression radius: a valid pragma
// only covers its own line and the line below, so a stale pragma cannot
// blanket a whole file.
func TestPragmaRequiresAdjacency(t *testing.T) {
	r := testRunner(t)
	findings, err := r.Run([]Target{fixtureTarget(t, "walltime")})
	if err != nil {
		t.Fatal(err)
	}
	suppressedLineSeen := false
	for _, f := range findings {
		if f.Analyzer == "walltime" && strings.Contains(f.Message, "time.Now") && strings.Contains(f.File, "walltime") {
			// The pragma-covered Allowed() body must not appear; the Bad()
			// body must. Golden covers exact lines; here we just ensure at
			// least one Now finding survived outside the pragma.
			suppressedLineSeen = true
		}
	}
	if !suppressedLineSeen {
		t.Error("expected an unsuppressed time.Now finding in the walltime fixture")
	}
}
