package pricing

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool {
	return math.Abs(a-b) < 1e-12 || math.Abs(a-b) < 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

func TestFunctionCostOneGBSecond(t *testing.T) {
	p := Default()
	got := p.FunctionCost(1, 1024)
	want := p.FunctionInvoke + p.FunctionGBSecond
	if !almost(got, want) {
		t.Errorf("FunctionCost(1s, 1024MB) = %g, want %g", got, want)
	}
}

func TestFunctionCostScalesLinearlyWithMemory(t *testing.T) {
	p := Default()
	base := p.FunctionCost(10, 1024) - p.FunctionInvoke
	doubled := p.FunctionCost(10, 2048) - p.FunctionInvoke
	if !almost(doubled, 2*base) {
		t.Errorf("doubling memory: %g, want %g", doubled, 2*base)
	}
}

func TestFunctionCostMinimumBilling(t *testing.T) {
	p := Default()
	tiny := p.FunctionCost(1e-9, 1024)
	floor := p.FunctionCost(0.001, 1024)
	if !almost(tiny, floor) {
		t.Errorf("sub-millisecond run billed %g, want the 1ms floor %g", tiny, floor)
	}
}

func TestComputeOnlyCostExcludesInvocation(t *testing.T) {
	p := Default()
	if got, want := p.ComputeOnlyCost(2, 512), p.FunctionCost(2, 512)-p.FunctionInvoke; !almost(got, want) {
		t.Errorf("ComputeOnlyCost = %g, want %g", got, want)
	}
}

func TestDynamoWriteCostRoundsUpPerKB(t *testing.T) {
	p := Default()
	if got, want := p.DynamoWriteCost(0.2), p.DynamoWriteUnit; !almost(got, want) {
		t.Errorf("0.2KB write = %g, want one unit %g", got, want)
	}
	if got, want := p.DynamoWriteCost(1.5), 2*p.DynamoWriteUnit; !almost(got, want) {
		t.Errorf("1.5KB write = %g, want two units %g", got, want)
	}
	if got, want := p.DynamoWriteCost(400), 400*p.DynamoWriteUnit; !almost(got, want) {
		t.Errorf("400KB write = %g, want %g", got, want)
	}
}

func TestDynamoReadCheaperThanWrite(t *testing.T) {
	p := Default()
	if p.DynamoReadCost(4) >= p.DynamoWriteCost(4) {
		t.Error("a 4KB read should cost less than a 4KB write under on-demand pricing")
	}
}

func TestHourlyCostMinimumOneMinute(t *testing.T) {
	if got, want := HourlyCost(60, 1), 1.0; !almost(got, want) {
		t.Errorf("1s at $60/h = %g, want one minute = %g", got, want)
	}
}

func TestHourlyCostWholeHour(t *testing.T) {
	if got, want := HourlyCost(0.192, 3600), 0.192; !almost(got, want) {
		t.Errorf("3600s at $0.192/h = %g, want %g", got, want)
	}
}

func TestHourlyCostMonotone(t *testing.T) {
	if err := quick.Check(func(a, b uint16) bool {
		s1, s2 := float64(a), float64(a)+float64(b)
		return HourlyCost(1, s1) <= HourlyCost(1, s2)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestFunctionCostMonotoneInDuration(t *testing.T) {
	p := Default()
	if err := quick.Check(func(a, b uint16) bool {
		s1, s2 := float64(a)/10, float64(a)/10+float64(b)/10
		return p.FunctionCost(s1, 1769) <= p.FunctionCost(s2, 1769)+1e-15
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestDefaultPricesPositive(t *testing.T) {
	p := Default()
	checks := map[string]float64{
		"FunctionGBSecond":    p.FunctionGBSecond,
		"FunctionInvoke":      p.FunctionInvoke,
		"S3PutRequest":        p.S3PutRequest,
		"S3GetRequest":        p.S3GetRequest,
		"DynamoWriteUnit":     p.DynamoWriteUnit,
		"DynamoReadUnit":      p.DynamoReadUnit,
		"ElastiCacheNodeHour": p.ElastiCacheNodeHour,
		"VMHour":              p.VMHour,
	}
	for name, v := range checks {
		if v <= 0 {
			t.Errorf("%s = %g, want > 0", name, v)
		}
	}
	// Relative ordering that Table I depends on: S3 PUT costs more than GET,
	// and per-request storage is far cheaper per op than a VM minute.
	if p.S3PutRequest <= p.S3GetRequest {
		t.Error("S3 PUT should cost more than GET")
	}
	if p.S3PutRequest >= p.VMHour/60 {
		t.Error("one S3 PUT should cost less than one VM minute")
	}
}
