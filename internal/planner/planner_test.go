package planner

import (
	"math"
	"testing"

	"repro/internal/cost"
	"repro/internal/workload"
)

func newPlanner(t *testing.T, w *workload.Model, stages []Stage) *Planner {
	t.Helper()
	m := cost.NewModel(w)
	pareto := m.ParetoSet(cost.DefaultGrid())
	pl, err := New(m, stages, pareto)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func paperStages() []Stage { return SHAStages(16384, 2, 2) }

func TestSHAStagesStructure(t *testing.T) {
	st := paperStages()
	if len(st) != 14 {
		t.Fatalf("stage count = %d, want 14", len(st))
	}
	if st[0].Trials != 16384 || st[13].Trials != 2 {
		t.Errorf("trial counts: first %d last %d, want 16384 and 2", st[0].Trials, st[13].Trials)
	}
	for i := 1; i < len(st); i++ {
		if st[i].Trials*2 != st[i-1].Trials {
			t.Errorf("stage %d: %d trials, want half of %d", i, st[i].Trials, st[i-1].Trials)
		}
		if st[i].Epochs != 2 {
			t.Errorf("stage %d epochs = %d, want 2", i, st[i].Epochs)
		}
	}
}

func TestSHAStagesSmall(t *testing.T) {
	st := SHAStages(8, 2, 1)
	if len(st) != 3 { // 8, 4, 2
		t.Fatalf("stage count = %d, want 3", len(st))
	}
}

func TestNewRejectsEmptyInputs(t *testing.T) {
	m := cost.NewModel(workload.LRHiggs())
	pareto := m.ParetoSet(cost.DefaultGrid())
	if _, err := New(m, nil, pareto); err == nil {
		t.Error("no stages should be rejected")
	}
	if _, err := New(m, paperStages(), nil); err == nil {
		t.Error("empty Pareto set should be rejected")
	}
}

func TestJCTAndCostAccumulate(t *testing.T) {
	pl := newPlanner(t, workload.LRHiggs(), SHAStages(8, 2, 2))
	a := pl.P[len(pl.P)/2].Alloc
	plan := Uniform(a, len(pl.Stages))
	var wantT, wantC float64
	for i := range pl.Stages {
		wantT += pl.StageTime(i, a)
		wantC += pl.StageCost(i, a)
	}
	if got := pl.JCT(plan); math.Abs(got-wantT) > 1e-9 {
		t.Errorf("JCT = %g, want %g", got, wantT)
	}
	if got := pl.Cost(plan); math.Abs(got-wantC) > 1e-9 {
		t.Errorf("Cost = %g, want %g", got, wantC)
	}
}

func TestWavesLimitConcurrency(t *testing.T) {
	pl := newPlanner(t, workload.LRHiggs(), paperStages())
	// Stage 0 has 16384 trials; with 10 functions each that's 163840
	// concurrent functions against a 3000 cap -> many waves.
	a := cost.Allocation{N: 10, MemMB: 1769, Storage: pl.P[0].Alloc.Storage}
	w := pl.waves(0, a)
	if w < 50 {
		t.Errorf("stage 0 waves = %d; expected heavy serialization", w)
	}
	if wl := pl.waves(len(pl.Stages)-1, a); wl != 1 {
		t.Errorf("last stage waves = %d, want 1", wl)
	}
}

func TestOptimalStaticRespectsBudget(t *testing.T) {
	pl := newPlanner(t, workload.LRHiggs(), SHAStages(64, 2, 2))
	loose := pl.OptimalStatic(0, 1e12) // effectively unconstrained QoS
	budget := loose.Cost * 2
	res := pl.OptimalStatic(budget, 0)
	if !res.Feasible {
		t.Fatal("generous budget should be feasible")
	}
	if res.Cost > budget {
		t.Errorf("static plan cost %g exceeds budget %g", res.Cost, budget)
	}
}

func TestOptimalStaticInfeasibleFallback(t *testing.T) {
	pl := newPlanner(t, workload.LRHiggs(), SHAStages(64, 2, 2))
	res := pl.OptimalStatic(1e-9, 0) // impossible budget
	if res.Feasible {
		t.Error("impossible budget cannot be feasible")
	}
	if len(res.Plan.Stages) == 0 {
		t.Error("fallback plan missing")
	}
}

func TestGreedyNeverWorseThanStatic(t *testing.T) {
	for _, w := range []*workload.Model{workload.LRHiggs(), workload.MobileNet(), workload.BERT()} {
		pl := newPlanner(t, w, SHAStages(256, 2, 2))
		static := pl.OptimalStatic(0, 1e12)
		budget := static.Cost * 1.2
		staticB := pl.OptimalStatic(budget, 0)
		res := pl.PlanMinJCT(budget)
		if staticB.Feasible {
			if !res.Feasible {
				t.Errorf("%s: greedy infeasible though static feasible", w.Name)
			}
			if res.JCT > staticB.JCT*(1+1e-9) {
				t.Errorf("%s: greedy JCT %g worse than static %g", w.Name, res.JCT, staticB.JCT)
			}
		}
		if res.Cost > budget*(1+1e-9) {
			t.Errorf("%s: greedy cost %g violates budget %g", w.Name, res.Cost, budget)
		}
	}
}

func TestGreedyImprovesOverStatic(t *testing.T) {
	// The headline claim: with a budget near the static optimum, shifting
	// resources stage-wise must cut JCT meaningfully for at least the big
	// models. (Run at 512 trials: at 16384 trials the concurrency cap makes
	// stage 0's admission waves dominate JCT and mask the effect.)
	pl := newPlanner(t, workload.ResNet50(), SHAStages(512, 2, 2))
	static := pl.OptimalStatic(0, 1e12)
	budget := static.Cost * 1.5
	staticB := pl.OptimalStatic(budget, 0)
	res := pl.PlanMinJCT(budget)
	if res.JCT >= staticB.JCT {
		t.Errorf("greedy JCT %g did not improve on static %g", res.JCT, staticB.JCT)
	}
}

func TestGreedyCostMinRespectsQoS(t *testing.T) {
	pl := newPlanner(t, workload.MobileNet(), SHAStages(256, 2, 2))
	fast := pl.OptimalStatic(0, 1e12)
	qos := fast.JCT * 3
	res := pl.PlanMinCost(qos)
	if !res.Feasible {
		t.Fatalf("QoS %g should be satisfiable (static JCT %g)", qos, fast.JCT)
	}
	if res.JCT > qos*(1+1e-9) {
		t.Errorf("plan JCT %g violates QoS %g", res.JCT, qos)
	}
	staticQ := pl.OptimalStatic(0, qos)
	if res.Cost > staticQ.Cost*(1+1e-9) {
		t.Errorf("greedy cost %g worse than static %g", res.Cost, staticQ.Cost)
	}
}

func TestGreedyShiftsResourcesToLaterStages(t *testing.T) {
	// Fig. 11: per-trial spending in early stages must drop relative to
	// later stages compared to the static plan.
	pl := newPlanner(t, workload.LRHiggs(), paperStages())
	static := pl.OptimalStatic(0, 1e12)
	budget := static.Cost * 1.3
	res := pl.PlanMinJCT(budget)
	d := len(pl.Stages)
	perTrial := func(plan Plan, i int) float64 {
		return pl.StageCost(i, plan.Stages[i]) / float64(pl.Stages[i].Trials)
	}
	firstRatio := perTrial(res.Plan, 0) / perTrial(static.Plan, 0)
	lastRatio := perTrial(res.Plan, d-1) / perTrial(static.Plan, d-1)
	if lastRatio < firstRatio {
		t.Errorf("late-stage per-trial share should grow more: first %.3f last %.3f", firstRatio, lastRatio)
	}
}

func TestFixedPlanStarvesEarlyStages(t *testing.T) {
	pl := newPlanner(t, workload.LRHiggs(), paperStages())
	static := pl.OptimalStatic(0, 1e12)
	budget := static.Cost * 1.2
	fixed := pl.FixedPlan(budget, 0)
	staticB := pl.OptimalStatic(budget, 0)
	// The fixed plan caps every stage at 1/d of the concurrency, so its
	// early stages queue in far more admission waves and its JCT must be
	// strictly worse than the share-free static plan.
	if fixed.JCT <= staticB.JCT {
		t.Errorf("fixed JCT %g should exceed static %g (resource competition)", fixed.JCT, staticB.JCT)
	}
	share := pl.ConcurrencyShare()
	if share >= pl.Model.Limits.MaxConcurrency {
		t.Errorf("share %d should be a fraction of the cap", share)
	}
	// Early-stage slowdown dominates: the share-capped stage-0 time grows
	// by a larger factor than the last stage's.
	a := fixed.Plan.Stages[0]
	d := len(pl.Stages) - 1
	firstRatio := pl.StageTimeCapped(0, a, share) / pl.StageTime(0, a)
	lastRatio := pl.StageTimeCapped(d, fixed.Plan.Stages[d], share) / pl.StageTime(d, fixed.Plan.Stages[d])
	if firstRatio <= lastRatio {
		t.Errorf("stage-0 slowdown %.2f should exceed last-stage %.2f", firstRatio, lastRatio)
	}
}

func TestFixedWorseThanGreedy(t *testing.T) {
	pl := newPlanner(t, workload.MobileNet(), paperStages())
	static := pl.OptimalStatic(0, 1e12)
	budget := static.Cost * 1.3
	greedy := pl.PlanMinJCT(budget)
	fixed := pl.FixedPlan(budget, 0)
	if fixed.JCT <= greedy.JCT {
		t.Errorf("fixed JCT %g should be worse than greedy %g", fixed.JCT, greedy.JCT)
	}
}

func TestEvaluatedCounterGrows(t *testing.T) {
	pl := newPlanner(t, workload.LRHiggs(), SHAStages(64, 2, 2))
	res := pl.PlanMinJCT(pl.OptimalStatic(0, 1e12).Cost * 1.3)
	if res.Evaluated <= 0 {
		t.Error("candidate evaluation counter did not grow")
	}
}

func TestSmallerParetoMeansFewerEvaluations(t *testing.T) {
	// §IV-G: Pareto pruning is what keeps planning overhead low. Planning
	// over the full enumeration must evaluate strictly more candidates.
	w := workload.MobileNet()
	m := cost.NewModel(w)
	full := m.Enumerate(cost.DefaultGrid())
	pareto := cost.Pareto(full)
	if len(pareto) >= len(full) {
		t.Skip("grid degenerated; nothing to compare")
	}
	mkRes := func(points []cost.Point) int {
		pl, err := New(m, paperStages(), points)
		if err != nil {
			t.Fatal(err)
		}
		budget := pl.OptimalStatic(0, 1e12).Cost * 1.3
		return pl.PlanMinJCT(budget).Evaluated
	}
	// Sort the full set like a frontier for a fair comparison of moves.
	fullSorted := cost.Pareto(full)
	fullSorted = append(fullSorted, full...) // pareto first, rest after
	withPareto := mkRes(pareto)
	withFull := mkRes(fullSorted)
	if withFull <= withPareto {
		t.Errorf("full search evaluated %d <= pareto %d; pruning shows no benefit", withFull, withPareto)
	}
}

func TestPlanCloneIndependent(t *testing.T) {
	pl := newPlanner(t, workload.LRHiggs(), SHAStages(8, 2, 1))
	p := Uniform(pl.P[0].Alloc, 3)
	q := p.Clone()
	q.Stages[0] = pl.P[len(pl.P)-1].Alloc
	if p.Stages[0] == q.Stages[0] {
		t.Error("Clone aliases the original")
	}
}
